// When NOT to trust the estimator: intermittent dynamics (paper §5.5,
// Proposition 5.1). The Liverani–Saussol–Vaienti map has polynomially
// decaying covariances for large α', violating Assumption (D); thresholded
// wavelet estimators then lose their risk guarantees while plain kernel
// smoothing stays stable. This example shows the diagnostic a user should
// run, and the estimator comparison on [0.01, 1].
//
//   build/examples/intermittent_maps
#include <cmath>
#include <cstdio>
#include <iostream>

#include "core/adaptive.hpp"
#include "diagnostics/covariance_decay.hpp"
#include "harness/table.hpp"
#include "kernel/bandwidth.hpp"
#include "kernel/kde.hpp"
#include "processes/lsv_map.hpp"
#include "util/string_util.hpp"
#include "wavelet/scaled_function.hpp"

int main() {
  using namespace wde;
  Result<wavelet::WaveletBasis> basis =
      wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8));
  if (!basis.ok()) return 1;

  harness::TextTable table({"alpha'", "decay verdict", "max |f_hat| wavelet",
                            "max f_hat kernel", "mass near 0 (x<0.05)"});
  for (double alpha : {0.3, 0.6, 0.9}) {
    const processes::LsvMapProcess process(alpha);

    // Step 1 — diagnose the dependence before trusting any risk bound.
    const diagnostics::CovarianceDecayReport decay =
        diagnostics::MeasureCovarianceDecay(
            [&](stats::Rng& rng) { return process.Path(30000, rng); },
            [](double x) { return x < 0.2 ? 1.0 : 0.0; },
            /*max_lag=*/25, /*replicates=*/6, /*seed=*/3);

    // Step 2 — fit both estimators on the restricted support [0.01, 1]
    // (the invariant density behaves like x^{-alpha'} near 0).
    stats::Rng rng(99);
    const std::vector<double> path = process.Path(2048, rng);
    std::vector<double> clipped;
    for (double x : path) {
      if (x >= 0.01) clipped.push_back(x);
    }
    core::AdaptiveOptions options;
    options.fit.domain_lo = 0.01;
    options.fit.domain_hi = 1.0;
    Result<core::AdaptiveDensityEstimate> wavelet_fit =
        core::FitAdaptive(*basis, clipped, options);
    if (!wavelet_fit.ok()) return 1;
    Result<kernel::KernelDensityEstimator> kde =
        kernel::KernelDensityEstimator::Create(
            kernel::Kernel(kernel::KernelType::kEpanechnikov),
            kernel::RuleOfThumbBandwidth(clipped), clipped);
    if (!kde.ok()) return 1;

    double wavelet_max = 0.0;
    double kernel_max = 0.0;
    for (int i = 0; i <= 256; ++i) {
      const double x = 0.01 + (1.0 - 0.01) * i / 256.0;
      wavelet_max = std::max(wavelet_max, std::fabs(wavelet_fit->estimate.Evaluate(x)));
      kernel_max = std::max(kernel_max, kde->Evaluate(x));
    }
    size_t near_zero = 0;
    for (double x : path) near_zero += (x < 0.05);
    table.AddRow({Format("%.1f", alpha),
                  decay.Verdict(),
                  Format("%.2f", wavelet_max), Format("%.2f", kernel_max),
                  Format("%.1f%%", 100.0 * static_cast<double>(near_zero) /
                                       static_cast<double>(path.size()))});
  }
  table.Print(std::cout);
  std::printf(
      "\nlesson (Proposition 5.1): once the covariance decay is polynomial,\n"
      "the thresholded estimator's spikes grow with alpha' — check the decay\n"
      "diagnostic before relying on the wavelet sketch.\n");
  return 0;
}
