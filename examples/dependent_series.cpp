// The paper's scenario end to end: density estimation from weakly dependent
// time series. Builds the three dependence cases of §5.2 over the same
// marginal, measures the covariance decay that Assumption (D) is about, fits
// HTCV/STCV estimators and reports their integrated squared errors.
//
//   build/examples/dependent_series
#include <cstdio>
#include <iostream>
#include <memory>

#include "core/adaptive.hpp"
#include "diagnostics/covariance_decay.hpp"
#include "harness/cases.hpp"
#include "harness/table.hpp"
#include "processes/target_density.hpp"
#include "stats/loss.hpp"
#include "util/string_util.hpp"
#include "wavelet/scaled_function.hpp"

int main() {
  using namespace wde;
  Result<wavelet::WaveletBasis> basis =
      wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8));
  if (!basis.ok()) return 1;

  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  const std::vector<double> truth = density->PdfOnGrid(513);
  const size_t n = 2048;

  harness::TextTable table({"sampling", "cov decay", "ISE (HTCV)", "ISE (STCV)",
                            "j1_hat (STCV)"});
  for (harness::DependenceCase c : harness::kAllCases) {
    const processes::TransformedProcess process = harness::MakeCase(c, density);

    // How dependent is this stream, really? Measure the covariance decay of
    // a bounded-variation observable — the quantity Assumption (D) bounds.
    const diagnostics::CovarianceDecayReport decay =
        diagnostics::MeasureCovarianceDecay(
            [&](stats::Rng& rng) { return process.Sample(8192, rng); },
            [](double x) { return x < 0.5 ? 1.0 : 0.0; },
            /*max_lag=*/10, /*replicates=*/4, /*seed=*/11);

    stats::Rng rng(2024 + static_cast<uint64_t>(c));
    const std::vector<double> xs = process.Sample(n, rng);

    Result<core::WaveletDensityFit> fit = core::WaveletDensityFit::Fit(*basis, xs);
    if (!fit.ok()) return 1;
    const core::CrossValidationResult ht_cv =
        core::CrossValidate(fit->coefficients(), core::ThresholdKind::kHard);
    const core::CrossValidationResult st_cv =
        core::CrossValidate(fit->coefficients(), core::ThresholdKind::kSoft);
    const std::vector<double> ht =
        fit->Estimate(ht_cv.Schedule(), core::ThresholdKind::kHard)
            .EvaluateOnGrid(0.0, 1.0, 513);
    const std::vector<double> st =
        fit->Estimate(st_cv.Schedule(), core::ThresholdKind::kSoft)
            .EvaluateOnGrid(0.0, 1.0, 513);

    table.AddRow({harness::CaseName(c),
                  decay.Verdict(),
                  Format("%.4f", stats::IntegratedSquaredError(ht, truth, 1.0 / 512)),
                  Format("%.4f", stats::IntegratedSquaredError(st, truth, 1.0 / 512)),
                  Format("%d", st_cv.j1_hat)});
  }
  table.Print(std::cout);
  std::printf(
      "\nthe paper's message: with exponentially decaying covariances "
      "(Assumption (D)),\ndependence does not degrade the cross-validated "
      "wavelet estimators.\n");
  return 0;
}
