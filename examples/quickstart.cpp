// Quickstart: estimate an unknown density from a sample with the adaptive
// (cross-validated) thresholded wavelet estimator, in five steps.
//
//   build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/adaptive.hpp"
#include "processes/target_density.hpp"
#include "stats/rng.hpp"
#include "wavelet/scaled_function.hpp"

int main() {
  using namespace wde;

  // 1. A wavelet basis. The paper uses Symmlets with 8 vanishing moments;
  //    the basis owns precomputed φ/ψ tables and is cheap to copy around.
  Result<wavelet::WaveletFilter> filter = wavelet::WaveletFilter::Symmlet(8);
  if (!filter.ok()) {
    std::fprintf(stderr, "filter: %s\n", filter.status().ToString().c_str());
    return 1;
  }
  Result<wavelet::WaveletBasis> basis = wavelet::WaveletBasis::Create(*filter);
  if (!basis.ok()) {
    std::fprintf(stderr, "basis: %s\n", basis.status().ToString().c_str());
    return 1;
  }

  // 2. Some data. Here: 2048 draws from a sharp two-mode mixture that a
  //    fixed-bandwidth estimator would oversmooth.
  const processes::TruncatedGaussianMixtureDensity truth =
      processes::TruncatedGaussianMixtureDensity::Bimodal();
  stats::Rng rng(42);
  std::vector<double> sample(2048);
  for (double& x : sample) x = truth.InverseCdf(rng.UniformDouble());

  // 3. Fit. FitAdaptive picks the paper's resolution levels from n, runs the
  //    soft-threshold cross-validation (STCV) per level and reconstructs.
  core::AdaptiveOptions options;
  options.kind = core::ThresholdKind::kSoft;
  Result<core::AdaptiveDensityEstimate> fit =
      core::FitAdaptive(*basis, sample, options);
  if (!fit.ok()) {
    std::fprintf(stderr, "fit: %s\n", fit.status().ToString().c_str());
    return 1;
  }

  // 4. Use the estimate: pointwise values, range probabilities, total mass.
  std::printf("x      f(x)    f_hat(x)\n");
  for (double x : {0.10, 0.30, 0.48, 0.65, 0.90}) {
    std::printf("%.2f   %6.3f  %6.3f\n", x, truth.Pdf(x), fit->estimate.Evaluate(x));
  }
  std::printf("\nP(0.25 <= X <= 0.35): true %.4f, estimated %.4f\n",
              truth.Cdf(0.35) - truth.Cdf(0.25),
              fit->estimate.IntegrateRange(0.25, 0.35));
  std::printf("total estimated mass: %.4f\n", fit->estimate.TotalMass());

  // 5. Inspect what the data-driven thresholding decided.
  std::printf("\nselected top level j1_hat = %d (scanned j0=%d..j*=%d)\n",
              fit->cv.j1_hat, fit->cv.j0, fit->cv.j_star);
  for (const core::LevelCvResult& level : fit->cv.levels) {
    std::printf("  level %2d: kept %3d / %3d coefficients\n", level.j, level.kept,
                level.total);
  }
  return 0;
}
