// Uncertainty quantification for dependent data: pointwise block-bootstrap
// confidence bands around the adaptive wavelet estimate. Blocks (rather than
// single observations) are resampled so the stream's serial dependence
// survives into every bootstrap replicate — resampling rows independently
// would understate the variance.
//
//   build/examples/confidence_bands
#include <cstdio>
#include <memory>

#include "core/confidence.hpp"
#include "harness/cases.hpp"
#include "processes/target_density.hpp"
#include "wavelet/scaled_function.hpp"

int main() {
  using namespace wde;
  Result<wavelet::WaveletBasis> basis =
      wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8));
  if (!basis.ok()) return 1;

  // Dependent stream (Case 2 dynamics) with the sine+uniform marginal.
  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  const processes::TransformedProcess process =
      harness::MakeCase(harness::DependenceCase::kLogisticMap, density);
  stats::Rng rng(7);
  const std::vector<double> xs = process.Sample(2048, rng);

  core::ConfidenceBandOptions options;
  options.resamples = 120;
  options.grid_points = 21;
  options.level = 0.90;
  options.block_length = 0;  // n^{1/3} rule for dependent data
  Result<core::ConfidenceBand> band =
      core::BootstrapConfidenceBand(*basis, xs, options);
  if (!band.ok()) {
    std::fprintf(stderr, "band: %s\n", band.status().ToString().c_str());
    return 1;
  }

  std::printf("90%% pointwise block-bootstrap band (%d resamples, block length "
              "%zu):\n\n",
              band->resamples, band->block_length);
  std::printf("   x     lower   f_hat   upper   true f\n");
  for (size_t i = 0; i < band->grid.size(); ++i) {
    std::printf("  %.2f   %6.3f  %6.3f  %6.3f   %6.3f\n", band->grid[i],
                band->lower[i], band->center[i], band->upper[i],
                density->Pdf(band->grid[i]));
  }
  const std::vector<double> truth = density->PdfOnGrid(band->grid.size());
  std::printf("\npointwise coverage of the true density: %.0f%%\n",
              100.0 * band->CoverageOf(truth));
  return 0;
}
