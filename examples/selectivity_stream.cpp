// DB scenario: streaming range-selectivity estimation for a query optimizer.
//
// A column's values arrive as a *dependent* stream (an autocorrelated
// process — think sensor readings or clustered inserts, not iid rows) with a
// sharply bimodal distribution. We maintain four streaming statistics
// side by side:
//   * the adaptive wavelet sketch (this library's estimator — bounded
//     memory, cross-validated thresholds that adapt to the dependence),
//   * equi-width and equi-depth histograms,
//   * a reservoir sample,
// and compare their answers on a range-query workload, including after a
// distribution drift.
//
//   build/examples/selectivity_stream
#include <cstdio>
#include <iostream>
#include <memory>

#include "harness/cases.hpp"
#include "harness/table.hpp"
#include "processes/target_density.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "util/string_util.hpp"
#include "wavelet/scaled_function.hpp"

int main() {
  using namespace wde;

  Result<wavelet::WaveletBasis> basis =
      wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8));
  if (!basis.ok()) return 1;

  // The stream: logistic-map dynamics pushed through a bimodal marginal.
  auto density = std::make_shared<const processes::TruncatedGaussianMixtureDensity>(
      processes::TruncatedGaussianMixtureDensity::Bimodal());
  const processes::TransformedProcess stream =
      harness::MakeCase(harness::DependenceCase::kLogisticMap, density);

  selectivity::StreamingWaveletSelectivity::Options sketch_options;
  sketch_options.j0 = 2;
  sketch_options.j_max = 10;
  sketch_options.refit_interval = 2048;
  Result<selectivity::StreamingWaveletSelectivity> sketch =
      selectivity::StreamingWaveletSelectivity::Create(*basis, sketch_options);
  if (!sketch.ok()) return 1;
  selectivity::EquiWidthHistogram equi_width(0.0, 1.0, 32);
  selectivity::EquiDepthHistogram equi_depth(0.0, 1.0, 32);
  selectivity::ReservoirSampleSelectivity reservoir(512);
  selectivity::WaveletSynopsisSelectivity::Options synopsis_options;
  synopsis_options.budget = 32;  // comparable space to the 32-bucket histograms
  Result<selectivity::WaveletSynopsisSelectivity> synopsis =
      selectivity::WaveletSynopsisSelectivity::Create(synopsis_options);
  if (!synopsis.ok()) return 1;

  stats::Rng rng(7);
  const size_t kStreamLength = 16384;
  const std::vector<double> values = stream.Sample(kStreamLength, rng);
  // Rows arrive in batches in a real optimizer's statistics pipeline; the
  // batch entry point amortizes the per-sample table setup (and for the
  // baselines falls back to the scalar loop).
  sketch->InsertBatch(values);
  equi_width.InsertBatch(values);
  equi_depth.InsertBatch(values);
  reservoir.InsertBatch(values);
  synopsis->InsertBatch(values);
  std::printf("ingested %zu dependent stream values (logistic-map driven)\n\n",
              kStreamLength);

  // A short-range-scan workload; ground truth from the generating density.
  const std::vector<selectivity::RangeQuery> queries =
      selectivity::CenteredRangeWorkload(rng, 400, 0.0, 1.0, 0.02, 0.25);
  const auto truth = [&](const selectivity::RangeQuery& q) {
    return density->Cdf(q.hi) - density->Cdf(q.lo);
  };

  harness::TextTable table(
      {"estimator", "mean |err|", "rmse", "mean q-error", "max q-error"});
  const auto add = [&](const selectivity::SelectivityEstimator& est) {
    const selectivity::SelectivityAccuracy acc =
        selectivity::EvaluateAccuracy(est, queries, truth);
    table.AddRow({est.name(), Format("%.5f", acc.mean_abs_error),
                  Format("%.5f", acc.rmse), Format("%.2f", acc.mean_qerror),
                  Format("%.1f", acc.max_qerror)});
  };
  add(*sketch);
  add(equi_width);
  add(equi_depth);
  add(reservoir);
  add(*synopsis);
  table.Print(std::cout);

  // Drift: the workload moves to a narrow hot range; the sketch refits.
  std::printf("\n-- drift: stream jumps to U(0.45, 0.55) --\n");
  for (int i = 0; i < 32768; ++i) {
    const double v = rng.Uniform(0.45, 0.55);
    sketch->Insert(v);
    equi_width.Insert(v);
  }
  std::printf("P(0.45 <= X <= 0.55) after drift: wavelet %.3f, equi-width %.3f "
              "(stationary truth was %.3f)\n",
              sketch->EstimateRange(0.45, 0.55), equi_width.EstimateRange(0.45, 0.55),
              density->Cdf(0.55) - density->Cdf(0.45));
  std::printf("\nthe wavelet sketch used %zu inserts, no buffered rows, and "
              "cross-validated its own smoothing.\n",
              sketch->count());
  return 0;
}
