// DB scenario: streaming selectivity estimation for a query optimizer.
//
// A column's values arrive as a *dependent* stream (an autocorrelated
// process — think sensor readings or clustered inserts, not iid rows) with a
// sharply bimodal distribution. We maintain five streaming statistics side
// by side — the adaptive wavelet sketch (this library's estimator — bounded
// memory, cross-validated thresholds that adapt to the dependence),
// equi-width and equi-depth histograms, a reservoir sample and the classic
// Haar synopsis — every one built declaratively from an EstimatorSpec (the
// same description the snapshot registry and the benches use), and compare
// their answers on a range-query workload, including after a distribution
// drift. A mixed-kind section shows the typed query taxonomy: equality,
// one-sided, CDF and quantile probes through the one Answer() surface. The
// run ends with the persistence walkthrough (PR 4): checkpoint the sketch to
// disk, "kill" it, restore it through the snapshot registry without naming
// its type, and continue ingesting — the restored sketch answers
// bit-identically to a twin that was never killed.
//
//   build/examples/selectivity_stream
#include <cmath>
#include <cstdio>
#include <iostream>
#include <memory>
#include <vector>

#include "harness/cases.hpp"
#include "harness/table.hpp"
#include "processes/target_density.hpp"
#include "selectivity/estimator_registry.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/query_workload.hpp"
#include "util/string_util.hpp"

int main() {
  using namespace wde;

  // The stream: logistic-map dynamics pushed through a bimodal marginal.
  auto density = std::make_shared<const processes::TruncatedGaussianMixtureDensity>(
      processes::TruncatedGaussianMixtureDensity::Bimodal());
  const processes::TransformedProcess stream =
      harness::MakeCase(harness::DependenceCase::kLogisticMap, density);

  // Declarative construction: one EstimatorSpec per estimator, built through
  // the same tag -> factory registry that restores snapshots. The shared
  // fields (domain, pacing) are set once; each tag consumes what it needs.
  const auto build = [](const char* tag, auto configure) {
    selectivity::EstimatorSpec spec;
    spec.tag = tag;
    spec.buckets = 32;
    spec.budget = 32;  // synopsis: comparable space to the 32-bucket histograms
    spec.capacity = 512;
    configure(spec);
    Result<std::unique_ptr<selectivity::SelectivityEstimator>> est =
        selectivity::MakeEstimator(spec);
    WDE_CHECK(est.ok(), "example specs are valid");
    return std::move(est).value();
  };
  std::unique_ptr<selectivity::SelectivityEstimator> sketch =
      build("wavelet-cv", [](selectivity::EstimatorSpec& spec) {
        spec.j0 = 2;
        spec.j_max = 10;
        spec.refit_interval = 2048;
      });
  std::unique_ptr<selectivity::SelectivityEstimator> equi_width_ptr =
      build("equi-width", [](selectivity::EstimatorSpec&) {});
  std::unique_ptr<selectivity::SelectivityEstimator> equi_depth_ptr =
      build("equi-depth", [](selectivity::EstimatorSpec&) {});
  std::unique_ptr<selectivity::SelectivityEstimator> reservoir_ptr =
      build("reservoir", [](selectivity::EstimatorSpec&) {});
  std::unique_ptr<selectivity::SelectivityEstimator> synopsis =
      build("haar-synopsis", [](selectivity::EstimatorSpec&) {});
  selectivity::SelectivityEstimator& equi_width = *equi_width_ptr;
  selectivity::SelectivityEstimator& equi_depth = *equi_depth_ptr;
  selectivity::SelectivityEstimator& reservoir = *reservoir_ptr;

  stats::Rng rng(7);
  const size_t kStreamLength = 16384;
  const std::vector<double> values = stream.Sample(kStreamLength, rng);
  // Rows arrive in batches in a real optimizer's statistics pipeline; the
  // batch entry point amortizes the per-sample table setup (and for the
  // baselines falls back to the scalar loop).
  sketch->InsertBatch(values);
  equi_width.InsertBatch(values);
  equi_depth.InsertBatch(values);
  reservoir.InsertBatch(values);
  synopsis->InsertBatch(values);
  std::printf("ingested %zu dependent stream values (logistic-map driven)\n\n",
              kStreamLength);

  // A short-range-scan workload; ground truth from the generating density.
  const std::vector<selectivity::RangeQuery> queries =
      selectivity::CenteredRangeWorkload(rng, 400, 0.0, 1.0, 0.02, 0.25);
  const auto truth = [&](const selectivity::RangeQuery& q) {
    return density->Cdf(q.hi) - density->Cdf(q.lo);
  };

  harness::TextTable table(
      {"estimator", "mean |err|", "rmse", "mean q-error", "max q-error"});
  const auto add = [&](const selectivity::SelectivityEstimator& est) {
    const selectivity::SelectivityAccuracy acc =
        selectivity::EvaluateAccuracy(est, queries, truth);
    table.AddRow({est.name(), Format("%.5f", acc.mean_abs_error),
                  Format("%.5f", acc.rmse), Format("%.2f", acc.mean_qerror),
                  Format("%.1f", acc.max_qerror)});
  };
  add(*sketch);
  add(equi_width);
  add(equi_depth);
  add(reservoir);
  add(*synopsis);
  table.Print(std::cout);

  // -- the typed query taxonomy: one Answer() surface for every kind --
  //
  // Real optimizer traffic mixes equality, one-sided and CDF probes (and
  // planners invert CDFs for histogram-free quantile stats) over the same
  // fitted state. NaN parameters answer 0.0 by contract, like Insert drops
  // NaN.
  std::printf("\n-- mixed-kind probes through Answer() (wavelet sketch) --\n");
  const std::vector<selectivity::Query> probes{
      selectivity::Query::Range(0.25, 0.35),
      selectivity::Query::Point(0.3),
      selectivity::Query::Less(0.5),
      selectivity::Query::Greater(0.5),
      selectivity::Query::Cdf(0.62),
      selectivity::Query::Quantile(0.25),
      selectivity::Query::Range(std::nan(""), 0.5),
  };
  std::vector<double> probe_answers(probes.size());
  sketch->Answer(probes, probe_answers);
  std::printf("P(0.25<=X<=0.35) = %.4f   (truth %.4f)\n", probe_answers[0],
              density->Cdf(0.35) - density->Cdf(0.25));
  std::printf("P(X=0.3)         = %.6f  (one resolution cell, width %.4g)\n",
              probe_answers[1], sketch->EqualityWidth());
  std::printf("P(X<=0.5)        = %.4f   (truth %.4f)\n", probe_answers[2],
              density->Cdf(0.5));
  std::printf("P(X>=0.5)        = %.4f\n", probe_answers[3]);
  std::printf("F(0.62)          = %.4f   (truth %.4f)\n", probe_answers[4],
              density->Cdf(0.62));
  std::printf("F^-1(0.25)       = %.4f   (truth %.4f)\n", probe_answers[5],
              density->InverseCdf(0.25));
  std::printf("range with NaN   = %.1f     (dirty queries answer 0.0)\n",
              probe_answers[6]);

  // Drift: the workload moves to a narrow hot range; the sketch refits.
  std::printf("\n-- drift: stream jumps to U(0.45, 0.55) --\n");
  for (int i = 0; i < 32768; ++i) {
    const double v = rng.Uniform(0.45, 0.55);
    sketch->Insert(v);
    equi_width.Insert(v);
  }
  std::printf("P(0.45 <= X <= 0.55) after drift: wavelet %.3f, equi-width %.3f "
              "(stationary truth was %.3f)\n",
              sketch->EstimateRange(0.45, 0.55), equi_width.EstimateRange(0.45, 0.55),
              density->Cdf(0.55) - density->Cdf(0.45));
  std::printf("\nthe wavelet sketch used %zu inserts, no buffered rows, and "
              "cross-validated its own smoothing.\n",
              sketch->count());

  // -- persistence walkthrough: checkpoint -> kill -> restore -> continue --
  //
  // The fitted sketch is a storable artifact: snapshot it to disk, drop the
  // live object (a node restart), restore it through the registry (the
  // snapshot is self-describing — no concrete type is named here), and keep
  // ingesting. A twin that was never killed proves the restore is lossless.
  std::printf("\n-- checkpoint -> kill -> restore -> continue --\n");
  const std::string snapshot_path = "selectivity_stream.snapshot";
  if (Status saved = selectivity::SaveEstimatorSnapshotFile(*sketch, snapshot_path);
      !saved.ok()) {
    std::fprintf(stderr, "checkpoint failed: %s\n", saved.ToString().c_str());
    return 1;
  }
  std::printf("checkpointed %zu-insert sketch to %s\n", sketch->count(),
              snapshot_path.c_str());

  Result<std::unique_ptr<selectivity::SelectivityEstimator>> restored =
      selectivity::LoadEstimatorSnapshotFile(snapshot_path);
  if (!restored.ok()) {
    std::fprintf(stderr, "restore failed: %s\n", restored.status().ToString().c_str());
    return 1;
  }
  std::remove(snapshot_path.c_str());

  // Both survivors see the same post-restart traffic: the stream drifts back
  // to the original bimodal marginal.
  std::vector<double> resumed = stream.Sample(8192, rng);
  sketch->InsertBatch(resumed);        // the never-killed twin
  (*restored)->InsertBatch(resumed);   // the restored node
  const double twin = sketch->EstimateRange(0.1, 0.3);
  const double revived = (*restored)->EstimateRange(0.1, 0.3);
  std::printf("P(0.1 <= X <= 0.3) after 8192 more rows: twin %.6f, restored %.6f "
              "(bit-identical: %s)\n",
              twin, revived, twin == revived ? "yes" : "NO");
  std::printf("restored estimator: %s with %zu inserts\n",
              (*restored)->name().c_str(), (*restored)->count());
  return twin == revived ? 0 : 1;
}
