// Cross-process distributed-merge demo for the snapshot subsystem (PR 4),
// run as SEPARATE PROCESSES so the wire format — not shared memory — carries
// the state:
//
//   # two ingest nodes, each owning a disjoint partition of one stream
//   snapshot_merge_demo ingest --part=0 --parts=2 --out=node-a
//   snapshot_merge_demo ingest --part=1 --parts=2 --out=node-b
//   # a combiner restores + merges the snapshots and checks the answers
//   snapshot_merge_demo combine --inputs=node-a,node-b
//
// Every process derives the same deterministic stream from a fixed seed;
// partition i of P owns the contiguous slice [i*n/P, (i+1)*n/P). Each ingest
// run feeds an equi-width histogram and the adaptive wavelet sketch and
// writes one snapshot file per estimator (<out>.histogram / <out>.wavelet).
// The combiner merges the snapshots via MergeFromSnapshot, re-runs
// sequential single-process ingest, and enforces the PR 3 merge contract on
// a range workload: bit-exact for the integer-count histogram, within
// 1e-12 · max(1, |seq|) for the wavelet sketch. Exit code 1 on any
// violation — CI runs the three commands as the cross-process gate.
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "selectivity/estimator_registry.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "stats/rng.hpp"
#include "util/string_util.hpp"
#include "wavelet/scaled_function.hpp"

namespace {

using namespace wde;

constexpr uint64_t kStreamSeed = 4242;
constexpr uint64_t kQuerySeed = 5;

/// The shared stream every process re-derives: dependent-looking bimodal
/// values on [0, 1] from the deterministic RNG.
std::vector<double> SharedStream(size_t n) {
  stats::Rng rng(kStreamSeed);
  std::vector<double> xs(n);
  for (double& x : xs) {
    const double u = rng.UniformDouble();
    x = rng.Bernoulli(0.6) ? 0.30 + 0.12 * u : 0.70 + 0.10 * u;
  }
  return xs;
}

selectivity::StreamingWaveletSelectivity MakeSketch() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  selectivity::StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 10;
  // Refits disabled during ingest: the combiner reconstructs once from the
  // merged sums, so sequential and merged answers share one refit point and
  // the 1e-12 contract is observable.
  options.refit_interval = 1u << 30;
  return *selectivity::StreamingWaveletSelectivity::Create(basis, options);
}

selectivity::EquiWidthHistogram MakeHistogram() {
  return selectivity::EquiWidthHistogram(0.0, 1.0, 64);
}

int RunIngest(int argc, char** argv) {
  const size_t n = ArgSize(argc, argv, "n", 200000);
  const size_t part = ArgSize(argc, argv, "part", 0);
  const size_t parts = ArgSize(argc, argv, "parts", 2);
  const std::string out = ArgString(argc, argv, "out", "");
  if (out.empty() || parts == 0 || part >= parts) {
    std::fprintf(stderr, "ingest needs --out=PREFIX, --parts>=1, --part<parts\n");
    return 2;
  }
  const std::vector<double> stream = SharedStream(n);
  const size_t lo = part * n / parts;
  const size_t hi = (part + 1) * n / parts;
  const std::span<const double> slice(stream.data() + lo, hi - lo);

  selectivity::EquiWidthHistogram histogram = MakeHistogram();
  selectivity::StreamingWaveletSelectivity sketch = MakeSketch();
  histogram.InsertBatch(slice);
  sketch.InsertBatch(slice);

  const auto save = [](const selectivity::SelectivityEstimator& est,
                       const std::string& path) {
    Status saved = selectivity::SaveEstimatorSnapshotFile(est, path);
    if (!saved.ok()) {
      std::fprintf(stderr, "writing %s failed: %s\n", path.c_str(),
                   saved.ToString().c_str());
      return false;
    }
    std::printf("wrote %s (%s, %zu rows)\n", path.c_str(), est.name().c_str(),
                est.count());
    return true;
  };
  if (!save(histogram, out + ".histogram")) return 1;
  if (!save(sketch, out + ".wavelet")) return 1;
  return 0;
}

int RunCombine(int argc, char** argv) {
  const size_t n = ArgSize(argc, argv, "n", 200000);
  const std::string inputs = ArgString(argc, argv, "inputs", "");
  if (inputs.empty()) {
    std::fprintf(stderr, "combine needs --inputs=prefixA,prefixB,...\n");
    return 2;
  }
  std::vector<std::string> prefixes;
  size_t pos = 0;
  while (pos <= inputs.size()) {
    const size_t comma = inputs.find(',', pos);
    const size_t end = comma == std::string::npos ? inputs.size() : comma;
    if (end > pos) prefixes.push_back(inputs.substr(pos, end - pos));
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }

  // Restore-and-merge each node's snapshots into fresh combiners.
  selectivity::EquiWidthHistogram histogram = MakeHistogram();
  selectivity::StreamingWaveletSelectivity sketch = MakeSketch();
  for (const std::string& prefix : prefixes) {
    for (const auto& [est, suffix] :
         {std::pair<selectivity::SelectivityEstimator*, const char*>{&histogram,
                                                                     ".histogram"},
          {&sketch, ".wavelet"}}) {
      const std::string path = prefix + suffix;
      Result<io::FileSource> source = io::FileSource::Open(path);
      if (!source.ok()) {
        std::fprintf(stderr, "opening %s failed: %s\n", path.c_str(),
                     source.status().ToString().c_str());
        return 1;
      }
      Status merged = est->MergeFromSnapshot(*source);
      if (!merged.ok()) {
        std::fprintf(stderr, "merging %s failed: %s\n", path.c_str(),
                     merged.ToString().c_str());
        return 1;
      }
    }
  }

  // The single-process reference over the same stream.
  const std::vector<double> stream = SharedStream(n);
  selectivity::EquiWidthHistogram seq_histogram = MakeHistogram();
  selectivity::StreamingWaveletSelectivity seq_sketch = MakeSketch();
  seq_histogram.InsertBatch(stream);
  seq_sketch.InsertBatch(stream);

  stats::Rng query_rng(kQuerySeed);
  const std::vector<selectivity::RangeQuery> queries =
      selectivity::CenteredRangeWorkload(query_rng, 256, 0.0, 1.0, 0.02, 0.3);
  std::vector<double> merged_answers(queries.size());
  std::vector<double> seq_answers(queries.size());

  int violations = 0;
  const auto check = [&](const selectivity::SelectivityEstimator& merged,
                         const selectivity::SelectivityEstimator& sequential,
                         bool bit_exact) {
    merged.EstimateBatch(queries, merged_answers);
    sequential.EstimateBatch(queries, seq_answers);
    double max_err = 0.0;
    bool identical = merged.count() == sequential.count();
    for (size_t i = 0; i < queries.size(); ++i) {
      const double err = std::fabs(merged_answers[i] - seq_answers[i]);
      const double bound = 1e-12 * std::max(1.0, std::fabs(seq_answers[i]));
      max_err = std::max(max_err, err);
      identical = identical && merged_answers[i] == seq_answers[i];
      if (err > bound) ++violations;
    }
    if (bit_exact && !identical) ++violations;
    std::printf("%s: merged %zu rows, max |merged - sequential| = %.3e%s\n",
                merged.name().c_str(), merged.count(), max_err,
                bit_exact ? (identical ? " (bit-exact)" : " (BIT-EXACTNESS LOST)")
                          : "");
  };
  check(histogram, seq_histogram, /*bit_exact=*/true);
  check(sketch, seq_sketch, /*bit_exact=*/false);

  if (violations > 0) {
    std::fprintf(stderr, "cross-process merge contract VIOLATED (%d failures)\n",
                 violations);
    return 1;
  }
  std::printf("cross-process merge matches sequential ingest — contract holds\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  if (mode == "ingest") return RunIngest(argc, argv);
  if (mode == "combine") return RunCombine(argc, argv);
  std::fprintf(stderr,
               "usage: snapshot_merge_demo ingest --part=I --parts=P --out=PREFIX "
               "[--n=N]\n"
               "       snapshot_merge_demo combine --inputs=prefixA,prefixB [--n=N]\n");
  return 2;
}
