// Tests for the mergeability contract (PR 3): the core merge algebra on
// coefficient accumulators and binned fits (associativity, commutativity,
// empty merges, incompatibility rejection), the selectivity-layer
// CloneEmpty/MergeFrom capabilities, and the ShardedSelectivityEstimator's
// determinism contract — fixed-K results bit-identical across pool sizes,
// merged estimates matching the sequential estimator within 1e-12 relative.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/binned.hpp"
#include "core/coefficients.hpp"
#include "core/cross_validation.hpp"
#include "core/estimator.hpp"
#include "parallel/thread_pool.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/kde_selectivity.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"
#include "stats/rng.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace {

const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

const wavelet::WaveletBasis& Daub4Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Daubechies(4), 10);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

std::vector<double> UnitStream(uint64_t seed, size_t n) {
  stats::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.UniformDouble();
  return xs;
}

// |a - b| <= tol * max(1, |b|): the ISSUE's relative-tolerance contract with
// an absolute floor for near-zero values.
void ExpectRelNear(double a, double b, double tol) {
  EXPECT_NEAR(a, b, tol * std::max(1.0, std::fabs(b)));
}

void ExpectCoefficientsEqual(const core::EmpiricalCoefficients& a,
                             const core::EmpiricalCoefficients& b, double tol) {
  ASSERT_EQ(a.count(), b.count());
  const auto compare_level = [tol](const core::CoefficientLevel& x,
                                   const core::CoefficientLevel& y) {
    ASSERT_EQ(x.size(), y.size());
    for (int i = 0; i < x.size(); ++i) {
      const auto idx = static_cast<size_t>(i);
      if (tol == 0.0) {
        EXPECT_EQ(x.s1[idx], y.s1[idx]) << "s1 j=" << x.j << " i=" << i;
        EXPECT_EQ(x.s2[idx], y.s2[idx]) << "s2 j=" << x.j << " i=" << i;
      } else {
        EXPECT_NEAR(x.s1[idx], y.s1[idx], tol * std::max(1.0, std::fabs(y.s1[idx])));
        EXPECT_NEAR(x.s2[idx], y.s2[idx], tol * std::max(1.0, std::fabs(y.s2[idx])));
      }
    }
  };
  compare_level(a.scaling_level(), b.scaling_level());
  ASSERT_EQ(a.j0(), b.j0());
  ASSERT_EQ(a.j_max(), b.j_max());
  for (int j = a.j0(); j <= a.j_max(); ++j) {
    compare_level(a.detail_level(j), b.detail_level(j));
  }
}

// ------------------------------------------------- EmpiricalCoefficients

TEST(CoefficientMergeTest, MergeOfDisjointShardsMatchesFullStream) {
  const std::vector<double> xs = UnitStream(1, 6000);
  core::EmpiricalCoefficients full =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 8);
  full.AddAll(xs);

  core::EmpiricalCoefficients left =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 8);
  core::EmpiricalCoefficients right =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 8);
  const std::span<const double> all(xs);
  left.AddAll(all.first(2500));
  right.AddAll(all.subspan(2500));
  ASSERT_TRUE(left.Merge(right).ok());
  // Summation order differs (per-shard subtotals), so ~1e-12 relative, not
  // bitwise.
  ExpectCoefficientsEqual(left, full, 1e-12);
}

TEST(CoefficientMergeTest, MergeIsCommutative) {
  const std::vector<double> xs = UnitStream(2, 4000);
  const std::span<const double> all(xs);
  core::EmpiricalCoefficients a =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 7);
  core::EmpiricalCoefficients b =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 7);
  a.AddAll(all.first(1000));
  b.AddAll(all.subspan(1000));
  core::EmpiricalCoefficients ab = a;
  ASSERT_TRUE(ab.Merge(b).ok());
  core::EmpiricalCoefficients ba = b;
  ASSERT_TRUE(ba.Merge(a).ok());
  // x + y == y + x exactly in IEEE arithmetic: commutativity is bitwise.
  ExpectCoefficientsEqual(ab, ba, 0.0);
}

TEST(CoefficientMergeTest, MergeIsAssociativeUpToTolerance) {
  const std::vector<double> xs = UnitStream(3, 6000);
  const std::span<const double> all(xs);
  const auto make = [&](size_t lo, size_t hi) {
    core::EmpiricalCoefficients c =
        *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 7);
    c.AddAll(all.subspan(lo, hi - lo));
    return c;
  };
  const core::EmpiricalCoefficients a = make(0, 2000);
  const core::EmpiricalCoefficients b = make(2000, 4000);
  const core::EmpiricalCoefficients c = make(4000, 6000);

  core::EmpiricalCoefficients ab_c = a;
  ASSERT_TRUE(ab_c.Merge(b).ok());
  ASSERT_TRUE(ab_c.Merge(c).ok());

  core::EmpiricalCoefficients bc = b;
  ASSERT_TRUE(bc.Merge(c).ok());
  core::EmpiricalCoefficients a_bc = a;
  ASSERT_TRUE(a_bc.Merge(bc).ok());

  ExpectCoefficientsEqual(ab_c, a_bc, 1e-12);
}

TEST(CoefficientMergeTest, EmptyMergesAreExactNoOps) {
  const std::vector<double> xs = UnitStream(4, 2000);
  core::EmpiricalCoefficients filled =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 6);
  filled.AddAll(xs);
  const core::EmpiricalCoefficients before = filled;
  core::EmpiricalCoefficients empty =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 6);

  ASSERT_TRUE(filled.Merge(empty).ok());
  ExpectCoefficientsEqual(filled, before, 0.0);  // bitwise unchanged

  ASSERT_TRUE(empty.Merge(filled).ok());
  ExpectCoefficientsEqual(empty, filled, 0.0);  // empty absorbs exactly
}

TEST(CoefficientMergeTest, RejectsIncompatibleLevelRangeAndFilter) {
  core::EmpiricalCoefficients base =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 8);
  core::EmpiricalCoefficients narrower =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 7);
  core::EmpiricalCoefficients shifted =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 3, 8);
  core::EmpiricalCoefficients other_filter =
      *core::EmpiricalCoefficients::Create(Daub4Basis(), 2, 8);
  EXPECT_FALSE(base.Merge(narrower).ok());
  EXPECT_FALSE(base.Merge(shifted).ok());
  EXPECT_FALSE(base.Merge(other_filter).ok());
  // A rejected merge leaves the target untouched.
  EXPECT_EQ(base.count(), 0u);
}

// ------------------------------------------------------- BinnedWaveletFit

TEST(BinnedMergeTest, MergeIsBitIdenticalToOneShotFit) {
  const std::vector<double> xs = UnitStream(5, 4096);
  const std::span<const double> all(xs);
  const wavelet::WaveletFilter filter = *wavelet::WaveletFilter::Symmlet(8);
  core::BinnedWaveletFit full = *core::BinnedWaveletFit::Fit(filter, xs, 2, 9);
  core::BinnedWaveletFit left =
      *core::BinnedWaveletFit::Fit(filter, all.first(1700), 2, 9);
  const core::BinnedWaveletFit right =
      *core::BinnedWaveletFit::Fit(filter, all.subspan(1700), 2, 9);
  ASSERT_TRUE(left.Merge(right).ok());
  ASSERT_EQ(left.count(), full.count());
  for (int k = 0; k < 4; ++k) EXPECT_EQ(left.AlphaHat(k), full.AlphaHat(k));
  for (int j = 2; j < 9; ++j) {
    for (int k = 0; k < (1 << j); ++k) {
      EXPECT_EQ(left.BetaHat(j, k), full.BetaHat(j, k)) << "j=" << j << " k=" << k;
    }
  }
}

TEST(BinnedMergeTest, RejectsIncompatibleFits) {
  const std::vector<double> xs = UnitStream(6, 512);
  const wavelet::WaveletFilter sym8 = *wavelet::WaveletFilter::Symmlet(8);
  const wavelet::WaveletFilter haar = wavelet::WaveletFilter::Haar();
  core::BinnedWaveletFit base = *core::BinnedWaveletFit::Fit(sym8, xs, 2, 9);
  const core::BinnedWaveletFit other_levels =
      *core::BinnedWaveletFit::Fit(sym8, xs, 2, 8);
  const core::BinnedWaveletFit other_filter =
      *core::BinnedWaveletFit::Fit(haar, xs, 2, 9);
  const core::BinnedWaveletFit other_domain =
      *core::BinnedWaveletFit::Fit(sym8, xs, 2, 9, 0.0, 2.0);
  EXPECT_FALSE(base.Merge(other_levels).ok());
  EXPECT_FALSE(base.Merge(other_filter).ok());
  EXPECT_FALSE(base.Merge(other_domain).ok());
  EXPECT_EQ(base.count(), xs.size());
}

// ------------------------------------------- WaveletDensityFit + rebuild

TEST(FitMergeTest, EstimateFromMergedFitMatchesFullFit) {
  const std::vector<double> xs = UnitStream(7, 8192);
  const std::span<const double> all(xs);
  core::WaveletDensityFit full =
      *core::WaveletDensityFit::CreateStreaming(Sym8Basis(), 2, 8);
  full.AddBatch(all);
  core::WaveletDensityFit left =
      *core::WaveletDensityFit::CreateStreaming(Sym8Basis(), 2, 8);
  core::WaveletDensityFit right =
      *core::WaveletDensityFit::CreateStreaming(Sym8Basis(), 2, 8);
  left.AddBatch(all.first(4096));
  right.AddBatch(all.subspan(4096));
  ASSERT_TRUE(left.Merge(right).ok());

  // The rebuild-from-merged path: cross-validate and reconstruct from the
  // combined sums, then compare range masses against the full-stream fit.
  const core::CrossValidationResult cv_full =
      core::CrossValidate(full.coefficients(), core::ThresholdKind::kSoft);
  const core::CrossValidationResult cv_merged =
      core::CrossValidate(left.coefficients(), core::ThresholdKind::kSoft);
  const core::WaveletEstimate est_full =
      full.Estimate(cv_full.Schedule(), core::ThresholdKind::kSoft);
  const core::WaveletEstimate est_merged =
      left.Estimate(cv_merged.Schedule(), core::ThresholdKind::kSoft);
  for (double a = 0.0; a < 1.0; a += 0.13) {
    ExpectRelNear(est_merged.IntegrateRange(a, a + 0.1),
                  est_full.IntegrateRange(a, a + 0.1), 1e-12);
  }
}

TEST(FitMergeTest, RejectsDomainMismatch) {
  core::WaveletDensityFit unit =
      *core::WaveletDensityFit::CreateStreaming(Sym8Basis(), 2, 6, 0.0, 1.0);
  const core::WaveletDensityFit wide =
      *core::WaveletDensityFit::CreateStreaming(Sym8Basis(), 2, 6, 0.0, 2.0);
  EXPECT_FALSE(unit.Merge(wide).ok());
}

// ------------------------------------------------- selectivity MergeFrom

selectivity::StreamingWaveletSelectivity MakeSketch(size_t refit_interval) {
  selectivity::StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 8;
  options.refit_interval = refit_interval;
  return *selectivity::StreamingWaveletSelectivity::Create(Sym8Basis(), options);
}

TEST(SelectivityMergeTest, EquiWidthMergeIsExact) {
  const std::vector<double> xs = UnitStream(8, 5000);
  const std::span<const double> all(xs);
  selectivity::EquiWidthHistogram sequential(0.0, 1.0, 64);
  sequential.InsertBatch(all);
  selectivity::EquiWidthHistogram left(0.0, 1.0, 64);
  selectivity::EquiWidthHistogram right(0.0, 1.0, 64);
  left.InsertBatch(all.first(2200));
  right.InsertBatch(all.subspan(2200));
  ASSERT_TRUE(left.MergeFrom(right).ok());
  EXPECT_EQ(left.count(), sequential.count());
  for (double a = 0.0; a < 0.9; a += 0.07) {
    EXPECT_EQ(left.EstimateRange(a, a + 0.1), sequential.EstimateRange(a, a + 0.1));
  }
}

TEST(SelectivityMergeTest, EquiDepthAndKdeMergeMatchSequential) {
  const std::vector<double> xs = UnitStream(9, 4000);
  const std::span<const double> all(xs);

  selectivity::EquiDepthHistogram ed_seq(0.0, 1.0, 16);
  selectivity::EquiDepthHistogram ed_left(0.0, 1.0, 16);
  selectivity::EquiDepthHistogram ed_right(0.0, 1.0, 16);
  selectivity::KdeSelectivity kde_seq(selectivity::KdeSelectivity::Options{});
  selectivity::KdeSelectivity kde_left(selectivity::KdeSelectivity::Options{});
  selectivity::KdeSelectivity kde_right(selectivity::KdeSelectivity::Options{});

  ed_seq.InsertBatch(all);
  kde_seq.InsertBatch(all);
  ed_left.InsertBatch(all.first(1500));
  ed_right.InsertBatch(all.subspan(1500));
  kde_left.InsertBatch(all.first(1500));
  kde_right.InsertBatch(all.subspan(1500));
  ASSERT_TRUE(ed_left.MergeFrom(ed_right).ok());
  ASSERT_TRUE(kde_left.MergeFrom(kde_right).ok());

  // MergeFrom appends in order, so the merged buffers equal the sequential
  // buffers element-for-element: answers are bit-identical.
  for (double a = 0.0; a < 0.9; a += 0.11) {
    EXPECT_EQ(ed_left.EstimateRange(a, a + 0.08), ed_seq.EstimateRange(a, a + 0.08));
    EXPECT_EQ(kde_left.EstimateRange(a, a + 0.08), kde_seq.EstimateRange(a, a + 0.08));
  }
}

TEST(SelectivityMergeTest, SynopsisMergeIsExact) {
  const std::vector<double> xs = UnitStream(10, 6000);
  const std::span<const double> all(xs);
  selectivity::WaveletSynopsisSelectivity::Options options;
  options.grid_log2 = 8;
  options.budget = 32;
  options.rebuild_interval = 1 << 20;  // rebuild once, at query time
  selectivity::WaveletSynopsisSelectivity sequential =
      *selectivity::WaveletSynopsisSelectivity::Create(options);
  selectivity::WaveletSynopsisSelectivity left =
      *selectivity::WaveletSynopsisSelectivity::Create(options);
  selectivity::WaveletSynopsisSelectivity right =
      *selectivity::WaveletSynopsisSelectivity::Create(options);
  sequential.InsertBatch(all);
  left.InsertBatch(all.first(2700));
  right.InsertBatch(all.subspan(2700));
  ASSERT_TRUE(left.MergeFrom(right).ok());
  for (double a = 0.0; a < 0.9; a += 0.09) {
    EXPECT_EQ(left.EstimateRange(a, a + 0.1), sequential.EstimateRange(a, a + 0.1));
  }
}

TEST(SelectivityMergeTest, SketchMergeMatchesSequentialWithinTolerance) {
  const std::vector<double> xs = UnitStream(11, 1 << 14);
  const std::span<const double> all(xs);
  // refit_interval > n: both sides reconstruct exactly once, at query time,
  // from the full-count sums.
  selectivity::StreamingWaveletSelectivity sequential = MakeSketch(1 << 30);
  selectivity::StreamingWaveletSelectivity left = MakeSketch(1 << 30);
  selectivity::StreamingWaveletSelectivity right = MakeSketch(1 << 30);
  sequential.InsertBatch(all);
  left.InsertBatch(all.first(6000));
  right.InsertBatch(all.subspan(6000));
  ASSERT_TRUE(left.MergeFrom(right).ok());
  EXPECT_EQ(left.count(), sequential.count());
  for (double a = 0.0; a < 0.9; a += 0.07) {
    ExpectRelNear(left.EstimateRange(a, a + 0.1),
                  sequential.EstimateRange(a, a + 0.1), 1e-12);
  }
}

TEST(SelectivityMergeTest, SelfMergeIsRejectedEverywhere) {
  // Self-merge would self-insert for the buffer-append estimators (UB: the
  // source range lives inside the destination vector) and silently double
  // every count elsewhere — every merge entry point must reject it cold.
  const std::vector<double> xs = UnitStream(17, 300);
  selectivity::EquiWidthHistogram ew(0.0, 1.0, 8);
  selectivity::EquiDepthHistogram ed(0.0, 1.0, 8);
  selectivity::KdeSelectivity kde(selectivity::KdeSelectivity::Options{});
  selectivity::WaveletSynopsisSelectivity synopsis =
      *selectivity::WaveletSynopsisSelectivity::Create({});
  selectivity::StreamingWaveletSelectivity sketch = MakeSketch(1024);
  selectivity::EquiWidthHistogram prototype(0.0, 1.0, 8);
  selectivity::ShardedSelectivityEstimator sharded =
      *selectivity::ShardedSelectivityEstimator::Create(prototype, {});
  const std::vector<selectivity::SelectivityEstimator*> all{
      &ew, &ed, &kde, &synopsis, &sketch, &sharded};
  for (selectivity::SelectivityEstimator* est : all) {
    est->InsertBatch(xs);
    const size_t before = est->count();
    EXPECT_FALSE(est->MergeFrom(*est).ok()) << est->name();
    EXPECT_EQ(est->count(), before) << est->name();
  }

  core::EmpiricalCoefficients coeffs =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 5);
  coeffs.AddAll(xs);
  EXPECT_FALSE(coeffs.Merge(coeffs).ok());
  EXPECT_EQ(coeffs.count(), xs.size());
  core::BinnedWaveletFit binned =
      *core::BinnedWaveletFit::Fit(*wavelet::WaveletFilter::Symmlet(8), xs, 2, 6);
  EXPECT_FALSE(binned.Merge(binned).ok());
  core::WaveletDensityFit fit =
      *core::WaveletDensityFit::CreateStreaming(Sym8Basis(), 2, 5);
  fit.AddBatch(xs);
  EXPECT_FALSE(fit.Merge(fit).ok());  // caught by the coefficients guard
}

TEST(SelectivityMergeTest, SketchMergeIgnoresRefitCadence) {
  // refit_interval paces only the owner's staleness, so replicas with
  // refits disabled must merge into a normally paced sketch — the
  // recommended sharded-ingest configuration.
  const std::vector<double> xs = UnitStream(18, 4096);
  selectivity::StreamingWaveletSelectivity paced = MakeSketch(1024);
  selectivity::StreamingWaveletSelectivity unpaced = MakeSketch(1 << 30);
  paced.InsertBatch(std::span<const double>(xs).first(2048));
  unpaced.InsertBatch(std::span<const double>(xs).subspan(2048));
  EXPECT_TRUE(paced.MergeFrom(unpaced).ok());
  EXPECT_EQ(paced.count(), xs.size());
}

// ------------------------------------------------ reservoir MergeFrom (PR 4)
//
// The reservoir's merge contract is *distributional*, not pointwise: the
// weighted union is exactly a uniform capacity-sample of the concatenated
// stream, drawn from this estimator's own seeded RNG — deterministic, but not
// the bitwise sample a sequential reservoir would have produced.

TEST(ReservoirMergeTest, PeerBelowCapacityMergesAsExactReplay) {
  const std::vector<double> xs = UnitStream(20, 3000);
  const std::vector<double> tail = UnitStream(21, 40);
  selectivity::ReservoirSampleSelectivity merged(64, 7);
  selectivity::ReservoirSampleSelectivity sequential(64, 7);
  merged.InsertBatch(xs);
  sequential.InsertBatch(xs);
  selectivity::ReservoirSampleSelectivity peer(64, 9);
  peer.InsertBatch(tail);  // 40 < capacity: the reservoir IS the sub-stream
  ASSERT_TRUE(merged.MergeFrom(peer).ok());
  sequential.InsertBatch(tail);
  EXPECT_EQ(merged.count(), sequential.count());
  EXPECT_EQ(merged.reservoir(), sequential.reservoir());  // bitwise replay
}

TEST(ReservoirMergeTest, WeightedUnionIsDeterministicAndCountAdditive) {
  const std::vector<double> xs = UnitStream(22, 20000);
  const std::span<const double> all(xs);
  const auto run = [&]() {
    selectivity::ReservoirSampleSelectivity left(256, 5);
    selectivity::ReservoirSampleSelectivity right(256, 6);
    left.InsertBatch(all.first(12000));
    right.InsertBatch(all.subspan(12000));
    WDE_CHECK_OK(left.MergeFrom(right));
    return left.reservoir();
  };
  const std::vector<double> first = run();
  EXPECT_EQ(first.size(), 256u);
  EXPECT_EQ(first, run());  // same states + seed => bitwise identical draw

  selectivity::ReservoirSampleSelectivity left(256, 5);
  selectivity::ReservoirSampleSelectivity right(256, 6);
  left.InsertBatch(all.first(12000));
  right.InsertBatch(all.subspan(12000));
  ASSERT_TRUE(left.MergeFrom(right).ok());
  EXPECT_EQ(left.count(), xs.size());
}

TEST(ReservoirMergeTest, WeightedUnionSamplesBothSidesProportionally) {
  // Side A streams values in [0, 0.5), side B in [0.5, 1]: the union sample
  // must mix them by stream mass, so the merged selectivity of [0, 0.5)
  // estimates A's share of the union (2/3 here) within sampling error.
  stats::Rng rng(23);
  selectivity::ReservoirSampleSelectivity a(1024, 11);
  selectivity::ReservoirSampleSelectivity b(1024, 12);
  for (int i = 0; i < 40000; ++i) a.Insert(rng.Uniform(0.0, 0.5));
  for (int i = 0; i < 20000; ++i) b.Insert(rng.Uniform(0.5, 1.0));
  ASSERT_TRUE(a.MergeFrom(b).ok());
  EXPECT_EQ(a.count(), 60000u);
  // Binomial sd at p=2/3, n=1024 is ~0.015; 0.08 is a > 5 sigma margin.
  EXPECT_NEAR(a.EstimateRange(0.0, 0.5), 2.0 / 3.0, 0.08);
}

TEST(ReservoirMergeTest, RejectsCapacityMismatchAndSelfMerge) {
  const std::vector<double> xs = UnitStream(24, 500);
  selectivity::ReservoirSampleSelectivity a(64), other_capacity(32);
  a.InsertBatch(xs);
  other_capacity.InsertBatch(xs);
  EXPECT_TRUE(a.mergeable());
  EXPECT_FALSE(a.MergeFrom(other_capacity).ok());
  EXPECT_FALSE(a.MergeFrom(a).ok());
  EXPECT_EQ(a.count(), xs.size());

  std::unique_ptr<selectivity::SelectivityEstimator> clone = a.CloneEmpty();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->count(), 0u);
  EXPECT_TRUE(a.MergeFrom(*clone).ok());  // empty peer: exact no-op replay
  EXPECT_EQ(a.count(), xs.size());
}

TEST(ReservoirMergeTest, ShardedReservoirIsDeterministicAcrossPoolWidths) {
  // Now that the reservoir merges, it can ride the sharded engine; fixed-K
  // answers must stay bit-identical across pool widths like every estimator.
  const std::vector<double> xs = UnitStream(25, 30000);
  const auto run = [&](parallel::ThreadPool* pool) {
    selectivity::ReservoirSampleSelectivity prototype(128, 3);
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = 4;
    options.block_size = 512;
    options.pool = pool;
    selectivity::ShardedSelectivityEstimator sharded =
        *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
    sharded.InsertBatch(xs);
    std::vector<double> answers;
    for (double a = 0.0; a < 0.9; a += 0.1) {
      answers.push_back(sharded.EstimateRange(a, a + 0.1));
    }
    return answers;
  };
  parallel::ThreadPool serial(0);
  parallel::ThreadPool wide(4);
  EXPECT_EQ(run(&serial), run(&wide));
}

TEST(SelectivityMergeTest, RejectsTypeAndConfigMismatches) {
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 64);
  selectivity::EquiWidthHistogram more_buckets(0.0, 1.0, 32);
  selectivity::EquiWidthHistogram other_domain(0.0, 2.0, 64);
  selectivity::StreamingWaveletSelectivity sketch = MakeSketch(1024);
  selectivity::StreamingWaveletSelectivity narrower = []() {
    selectivity::StreamingWaveletSelectivity::Options options;
    options.j0 = 2;
    options.j_max = 6;
    return *selectivity::StreamingWaveletSelectivity::Create(Sym8Basis(), options);
  }();

  EXPECT_FALSE(hist.MergeFrom(sketch).ok());  // different concrete type
  EXPECT_FALSE(sketch.MergeFrom(hist).ok());
  EXPECT_FALSE(hist.MergeFrom(more_buckets).ok());
  EXPECT_FALSE(hist.MergeFrom(other_domain).ok());
  EXPECT_FALSE(sketch.MergeFrom(narrower).ok());  // level-range mismatch

  // CloneEmpty produces a merge-compatible twin.
  std::unique_ptr<selectivity::SelectivityEstimator> clone = hist.CloneEmpty();
  ASSERT_NE(clone, nullptr);
  EXPECT_EQ(clone->count(), 0u);
  EXPECT_TRUE(hist.MergeFrom(*clone).ok());
}

// --------------------------------------------- ShardedSelectivityEstimator

// A minimal estimator without the mergeability capabilities (the reservoir
// gained them in PR 4, so the "cannot shard" case needs a dedicated stub).
class NotMergeableEstimator : public selectivity::SelectivityEstimator {
 public:
  void Insert(double) override {}
  size_t count() const override { return 0; }
  std::string name() const override { return "not-mergeable"; }

 protected:
  double EstimateRangeImpl(double, double) const override { return 0.0; }
};

TEST(ShardedTest, CreateValidatesOptions) {
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 64);
  NotMergeableEstimator not_mergeable;
  selectivity::ShardedSelectivityEstimator::Options options;
  options.shards = 0;
  EXPECT_FALSE(
      selectivity::ShardedSelectivityEstimator::Create(hist, options).ok());
  options = {};
  options.block_size = 0;
  EXPECT_FALSE(
      selectivity::ShardedSelectivityEstimator::Create(hist, options).ok());
  options = {};
  // Non-mergeable prototypes cannot be sharded.
  EXPECT_FALSE(
      selectivity::ShardedSelectivityEstimator::Create(not_mergeable, options)
          .ok());
}

TEST(ShardedTest, ShardedHistogramMatchesSequentialExactly) {
  const std::vector<double> xs = UnitStream(12, 50000);
  selectivity::EquiWidthHistogram sequential(0.0, 1.0, 64);
  sequential.InsertBatch(xs);

  selectivity::EquiWidthHistogram prototype(0.0, 1.0, 64);
  selectivity::ShardedSelectivityEstimator::Options options;
  options.shards = 4;
  options.block_size = 1024;
  selectivity::ShardedSelectivityEstimator sharded =
      *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
  sharded.InsertBatch(xs);

  EXPECT_EQ(sharded.count(), sequential.count());
  stats::Rng rng(121);
  const std::vector<selectivity::RangeQuery> queries =
      selectivity::UniformRangeWorkload(rng, 100, 0.0, 1.0);
  std::vector<double> got(queries.size());
  sharded.EstimateBatch(queries, got);
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(got[i], sequential.EstimateRange(queries[i].lo, queries[i].hi));
  }
}

TEST(ShardedTest, ShardedSketchMatchesSequentialWithinTolerance) {
  const std::vector<double> xs = UnitStream(13, 1 << 14);
  selectivity::StreamingWaveletSelectivity sequential = MakeSketch(1 << 30);
  sequential.InsertBatch(xs);

  const selectivity::StreamingWaveletSelectivity prototype = MakeSketch(1 << 30);
  selectivity::ShardedSelectivityEstimator::Options options;
  options.shards = 4;
  options.block_size = 512;
  selectivity::ShardedSelectivityEstimator sharded =
      *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
  sharded.InsertBatch(xs);

  EXPECT_EQ(sharded.count(), sequential.count());
  for (double a = 0.0; a < 0.9; a += 0.07) {
    ExpectRelNear(sharded.EstimateRange(a, a + 0.1),
                  sequential.EstimateRange(a, a + 0.1), 1e-12);
  }
}

TEST(ShardedTest, FixedShardCountIsBitIdenticalAcrossPoolSizes) {
  const std::vector<double> xs = UnitStream(14, 1 << 14);
  stats::Rng rng(141);
  const std::vector<selectivity::RangeQuery> queries =
      selectivity::UniformRangeWorkload(rng, 64, 0.0, 1.0);

  const auto run = [&](parallel::ThreadPool* pool) {
    const selectivity::StreamingWaveletSelectivity prototype = MakeSketch(2048);
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = 4;
    options.block_size = 777;  // deliberately unaligned with the batch sizes
    options.pool = pool;
    selectivity::ShardedSelectivityEstimator sharded =
        *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
    // Several batches so chunks straddle batch boundaries.
    const std::span<const double> all(xs);
    sharded.InsertBatch(all.first(5000));
    sharded.InsertBatch(all.subspan(5000, 3));
    sharded.InsertBatch(all.subspan(5003));
    std::vector<double> answers(queries.size());
    sharded.EstimateBatch(queries, answers);
    return answers;
  };

  parallel::ThreadPool serial(0);
  parallel::ThreadPool narrow(1);
  parallel::ThreadPool wide(4);
  const std::vector<double> baseline = run(&serial);
  EXPECT_EQ(baseline, run(&narrow));
  EXPECT_EQ(baseline, run(&wide));
  EXPECT_EQ(baseline, run(nullptr));  // shared pool
}

TEST(ShardedTest, ScalarInsertMatchesInsertBatchBitwise) {
  const std::vector<double> xs = UnitStream(15, 20000);
  const auto make = []() {
    selectivity::EquiWidthHistogram prototype(0.0, 1.0, 32);
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = 3;
    options.block_size = 64;
    return *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
  };
  selectivity::ShardedSelectivityEstimator scalar = make();
  selectivity::ShardedSelectivityEstimator batch = make();
  for (double x : xs) scalar.Insert(x);
  batch.InsertBatch(xs);
  ASSERT_EQ(scalar.count(), batch.count());
  for (size_t s = 0; s < scalar.shards(); ++s) {
    EXPECT_EQ(scalar.shard(s).count(), batch.shard(s).count()) << "shard " << s;
  }
  for (double a = 0.0; a < 0.9; a += 0.05) {
    EXPECT_EQ(scalar.EstimateRange(a, a + 0.1), batch.EstimateRange(a, a + 0.1));
  }
}

TEST(ShardedTest, EmptyBatchesAreNoOps) {
  selectivity::EquiWidthHistogram prototype(0.0, 1.0, 16);
  selectivity::ShardedSelectivityEstimator sharded =
      *selectivity::ShardedSelectivityEstimator::Create(prototype, {});
  sharded.InsertBatch(std::span<const double>());
  sharded.InsertBatch(std::span<const double>(static_cast<const double*>(nullptr), 0));
  EXPECT_EQ(sharded.count(), 0u);
  sharded.EstimateBatch({}, {});
  EXPECT_DOUBLE_EQ(sharded.EstimateRange(0.2, 0.8), 0.0);
}

TEST(ShardedTest, MergeRefreshIntervalAnswersFromStaleView) {
  selectivity::EquiWidthHistogram prototype(0.0, 1.0, 16);
  selectivity::ShardedSelectivityEstimator::Options options;
  options.shards = 2;
  options.merge_refresh_interval = 100;
  selectivity::ShardedSelectivityEstimator sharded =
      *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
  selectivity::ShardedSelectivityEstimator::Options invalid = options;
  invalid.merge_refresh_interval = 0;
  EXPECT_FALSE(
      selectivity::ShardedSelectivityEstimator::Create(prototype, invalid).ok());

  const std::vector<double> first(10, 0.25);
  sharded.InsertBatch(first);
  EXPECT_EQ(sharded.MergedView().count(), 10u);  // first query builds the view
  const std::vector<double> second(50, 0.75);
  sharded.InsertBatch(second);
  // 50 < 100 pending values: the view is allowed to stay stale...
  EXPECT_EQ(sharded.count(), 60u);
  EXPECT_EQ(sharded.MergedView().count(), 10u);
  EXPECT_DOUBLE_EQ(sharded.EstimateRange(0.5, 1.0), 0.0);
  // ...until the cadence is crossed, which refreshes it.
  sharded.InsertBatch(second);
  EXPECT_EQ(sharded.MergedView().count(), 110u);
  EXPECT_NEAR(sharded.EstimateRange(0.5, 1.0), 100.0 / 110.0, 1e-12);
}

TEST(ShardedTest, ShardedMergesShardWise) {
  const std::vector<double> xs = UnitStream(16, 30000);
  const std::span<const double> all(xs);
  const auto make = []() {
    selectivity::EquiWidthHistogram prototype(0.0, 1.0, 64);
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = 4;
    return *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
  };
  selectivity::ShardedSelectivityEstimator node_a = make();
  selectivity::ShardedSelectivityEstimator node_b = make();
  node_a.InsertBatch(all.first(17000));
  node_b.InsertBatch(all.subspan(17000));
  ASSERT_TRUE(node_a.MergeFrom(node_b).ok());

  selectivity::EquiWidthHistogram sequential(0.0, 1.0, 64);
  sequential.InsertBatch(all);
  EXPECT_EQ(node_a.count(), sequential.count());
  for (double a = 0.0; a < 0.9; a += 0.06) {
    EXPECT_EQ(node_a.EstimateRange(a, a + 0.1),
              sequential.EstimateRange(a, a + 0.1));
  }

  // Layout mismatches are rejected.
  selectivity::EquiWidthHistogram prototype(0.0, 1.0, 64);
  selectivity::ShardedSelectivityEstimator::Options other_layout;
  other_layout.shards = 2;
  selectivity::ShardedSelectivityEstimator two_shards =
      *selectivity::ShardedSelectivityEstimator::Create(prototype, other_layout);
  EXPECT_FALSE(node_a.MergeFrom(two_shards).ok());
}

}  // namespace
}  // namespace wde
