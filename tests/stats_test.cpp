#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "numerics/special_functions.hpp"
#include "stats/autocovariance.hpp"
#include "stats/descriptive.hpp"
#include "stats/empirical.hpp"
#include "stats/loss.hpp"
#include "stats/rng.hpp"

namespace wde {
namespace stats {
namespace {

// --------------------------------------------------------------------- RNG

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.NextUint64() == b.NextUint64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsDeterministicAndDecorrelated) {
  Rng root(99);
  Rng f1 = root.Fork(7);
  Rng f2 = Rng(99).Fork(7);
  EXPECT_EQ(f1.NextUint64(), f2.NextUint64());
  Rng g = root.Fork(8);
  EXPECT_NE(root.Fork(7).NextUint64(), g.NextUint64());
}

TEST(RngTest, UniformMomentsAndRange) {
  Rng rng(5);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double u = rng.UniformDouble();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
    sum2 += u * u;
  }
  EXPECT_NEAR(sum / n, 0.5, 5e-3);
  EXPECT_NEAR(sum2 / n - 0.25, 1.0 / 12.0, 5e-3);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0, sum3 = 0.0, sum4 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double z = rng.Gaussian();
    sum += z;
    sum2 += z * z;
    sum3 += z * z * z;
    sum4 += z * z * z * z;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
  EXPECT_NEAR(sum3 / n, 0.0, 0.05);
  EXPECT_NEAR(sum4 / n, 3.0, 0.12);
}

TEST(RngTest, GaussianDistributionKs) {
  Rng rng(13);
  std::vector<double> sample(5000);
  for (double& x : sample) x = rng.Gaussian();
  const double d = KolmogorovSmirnovDistance(
      sample, [](double x) { return numerics::NormalCdf(x); });
  EXPECT_LT(d, 0.03);  // ~1.63/sqrt(5000) at the 1% level
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, UniformIntIsUnbiased) {
  Rng rng(19);
  std::vector<int> counts(7, 0);
  const int n = 70000;
  for (int i = 0; i < n; ++i) ++counts[static_cast<size_t>(rng.UniformInt(7))];
  for (int c : counts) EXPECT_NEAR(static_cast<double>(c), 10000.0, 450.0);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(23);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

// ------------------------------------------------------------- descriptive

TEST(DescriptiveTest, MeanVarianceKnown) {
  const std::vector<double> xs{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  EXPECT_DOUBLE_EQ(Mean(xs), 5.0);
  EXPECT_NEAR(Variance(xs), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(StdDev(xs), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(Min(xs), 2.0);
  EXPECT_DOUBLE_EQ(Max(xs), 9.0);
}

TEST(DescriptiveTest, VarianceOfSingleton) {
  const std::vector<double> xs{3.0};
  EXPECT_DOUBLE_EQ(Variance(xs), 0.0);
}

TEST(DescriptiveTest, QuantileType7MatchesR) {
  // R: quantile(1:5, c(.25,.5,.75)) -> 2.0, 3.0, 4.0
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 5.0};
  EXPECT_NEAR(Quantile(xs, 0.25), 2.0, 1e-12);
  EXPECT_NEAR(Quantile(xs, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(Quantile(xs, 0.75), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(Quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Quantile(xs, 1.0), 5.0);
}

TEST(DescriptiveTest, QuantileMatlabConvention) {
  // MATLAB: quantile(1:4, 0.5) = 2.5; quantile(1:4, 0.25) = 1.5.
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(Quantile(xs, 0.5, QuantileMethod::kMatlab), 2.5, 1e-12);
  EXPECT_NEAR(Quantile(xs, 0.25, QuantileMethod::kMatlab), 1.5, 1e-12);
  EXPECT_NEAR(Quantile(xs, 0.75, QuantileMethod::kMatlab), 3.5, 1e-12);
}

TEST(DescriptiveTest, QuantileUnsortedInput) {
  const std::vector<double> xs{5.0, 1.0, 3.0, 2.0, 4.0};
  EXPECT_NEAR(Quantile(xs, 0.5), 3.0, 1e-12);
  EXPECT_NEAR(Median(xs), 3.0, 1e-12);
}

TEST(DescriptiveTest, IqrMatlab) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_NEAR(Iqr(xs), 2.0, 1e-12);
}

// ---------------------------------------------------------------- empirical

TEST(EcdfTest, StepValues) {
  const std::vector<double> xs{1.0, 2.0, 2.0, 3.0};
  Ecdf ecdf(xs);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(0.5), 0.0);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(1.0), 0.25);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(2.0), 0.75);
  EXPECT_DOUBLE_EQ(ecdf.Evaluate(10.0), 1.0);
}

TEST(KsTest, ZeroForPerfectFit) {
  // Sample at the exact quantiles of U[0,1]: KS = 1/(2n).
  std::vector<double> xs;
  const int n = 100;
  for (int i = 0; i < n; ++i) xs.push_back((i + 0.5) / n);
  const double d = KolmogorovSmirnovDistance(xs, [](double x) { return x; });
  EXPECT_NEAR(d, 0.005, 1e-12);
}

TEST(KsTest, DetectsWrongDistribution) {
  Rng rng(3);
  std::vector<double> xs(2000);
  for (double& x : xs) x = rng.UniformDouble() * rng.UniformDouble();  // not uniform
  const double d = KolmogorovSmirnovDistance(xs, [](double x) { return x; });
  EXPECT_GT(d, 0.1);
}

TEST(KsTest, TwoSampleAgreesForIdenticalSamples) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovDistance(a, a), 0.0);
}

TEST(KsTest, TwoSampleDisjointSamplesGiveOne) {
  const std::vector<double> a{1.0, 2.0};
  const std::vector<double> b{10.0, 20.0};
  EXPECT_DOUBLE_EQ(KolmogorovSmirnovDistance(a, b), 1.0);
}

// ------------------------------------------------------------ autocovariance

TEST(AutocovarianceTest, WhiteNoiseDecorrelated) {
  Rng rng(31);
  std::vector<double> xs(20000);
  for (double& x : xs) x = rng.Gaussian();
  const std::vector<double> gamma = Autocovariance(xs, 5);
  EXPECT_NEAR(gamma[0], 1.0, 0.05);
  for (int r = 1; r <= 5; ++r) EXPECT_NEAR(gamma[static_cast<size_t>(r)], 0.0, 0.03);
}

TEST(AutocovarianceTest, Ar1GeometricDecay) {
  Rng rng(37);
  const double rho = 0.6;
  std::vector<double> xs(50000);
  double y = 0.0;
  for (double& x : xs) {
    y = rho * y + rng.Gaussian();
    x = y;
  }
  const std::vector<double> acf = Autocorrelation(xs, 4);
  for (int r = 1; r <= 4; ++r) {
    EXPECT_NEAR(acf[static_cast<size_t>(r)], std::pow(rho, r), 0.03) << "lag " << r;
  }
}

TEST(AutocovarianceTest, TransformApplied) {
  const std::vector<double> xs{-1.0, 1.0, -1.0, 1.0};
  // g = |.| makes the series constant: all covariances vanish.
  const std::vector<double> gamma =
      AutocovarianceOfTransform(xs, [](double x) { return std::fabs(x); }, 1);
  EXPECT_NEAR(gamma[0], 0.0, 1e-15);
  EXPECT_NEAR(gamma[1], 0.0, 1e-15);
}

// --------------------------------------------------------------------- loss

TEST(LossTest, IseOfKnownDifference) {
  // estimate - truth = 1 everywhere on [0,1] -> ISE = 1.
  const std::vector<double> est(101, 2.0);
  const std::vector<double> tru(101, 1.0);
  EXPECT_NEAR(IntegratedSquaredError(est, tru, 0.01), 1.0, 1e-12);
}

TEST(LossTest, LpErrorPowScalesCorrectly) {
  const std::vector<double> est(101, 3.0);
  const std::vector<double> tru(101, 1.0);
  // ∫ |2|^p = 2^p over a unit interval.
  EXPECT_NEAR(LpErrorPow(est, tru, 0.01, 1.0), 2.0, 1e-12);
  EXPECT_NEAR(LpErrorPow(est, tru, 0.01, 3.0), 8.0, 1e-12);
}

TEST(LossTest, SupError) {
  const std::vector<double> est{0.0, 2.0, 0.0};
  const std::vector<double> tru{0.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(SupError(est, tru), 2.0);
}

}  // namespace
}  // namespace stats
}  // namespace wde
