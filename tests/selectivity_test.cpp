#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "processes/target_density.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/kde_selectivity.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"
#include "stats/rng.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace selectivity {
namespace {

const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

// -------------------------------------------------------------- histograms

TEST(EquiWidthTest, ExactForAlignedRanges) {
  EquiWidthHistogram hist(0.0, 1.0, 10);
  for (int i = 0; i < 1000; ++i) hist.Insert((i % 10) / 10.0 + 0.05);
  EXPECT_EQ(hist.count(), 1000u);
  EXPECT_NEAR(hist.EstimateRange(0.0, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(hist.EstimateRange(0.3, 0.4), 0.1, 1e-12);
  EXPECT_NEAR(hist.EstimateRange(0.0, 1.0), 1.0, 1e-12);
}

TEST(EquiWidthTest, InterpolatesWithinBuckets) {
  EquiWidthHistogram hist(0.0, 1.0, 2);
  for (int i = 0; i < 100; ++i) hist.Insert(0.25);  // all in bucket [0, 0.5)
  // Continuous-uniform assumption: half of bucket 0 -> half the mass.
  EXPECT_NEAR(hist.EstimateRange(0.0, 0.25), 0.5, 1e-12);
  EXPECT_NEAR(hist.EstimateRange(0.5, 1.0), 0.0, 1e-12);
}

TEST(EquiWidthTest, ClampsOutOfDomainValues) {
  EquiWidthHistogram hist(0.0, 1.0, 4);
  hist.Insert(-3.0);
  hist.Insert(7.0);
  EXPECT_EQ(hist.count(), 2u);
  EXPECT_NEAR(hist.EstimateRange(0.0, 1.0), 1.0, 1e-12);
}

TEST(EquiWidthTest, EmptyHistogramReturnsZero) {
  EquiWidthHistogram hist(0.0, 1.0, 4);
  EXPECT_DOUBLE_EQ(hist.EstimateRange(0.2, 0.8), 0.0);
}

TEST(EquiDepthTest, QuantileBoundaries) {
  EquiDepthHistogram hist(0.0, 1.0, 4);
  stats::Rng rng(3);
  for (int i = 0; i < 4000; ++i) hist.Insert(rng.UniformDouble());
  // Uniform data: equi-depth ≈ equi-width.
  EXPECT_NEAR(hist.EstimateRange(0.0, 0.25), 0.25, 0.03);
  EXPECT_NEAR(hist.EstimateRange(0.25, 0.75), 0.5, 0.03);
}

TEST(EquiDepthTest, AdaptsToSkew) {
  // 90% of mass in [0, 0.1]: equi-depth should resolve it much better than a
  // 4-bucket equi-width histogram resolves [0.0, 0.05].
  EquiDepthHistogram deep(0.0, 1.0, 8);
  EquiWidthHistogram wide(0.0, 1.0, 4);
  stats::Rng rng(5);
  for (int i = 0; i < 20000; ++i) {
    const double x =
        rng.Bernoulli(0.9) ? rng.Uniform(0.0, 0.1) : rng.Uniform(0.1, 1.0);
    deep.Insert(x);
    wide.Insert(x);
  }
  const double truth = 0.45;  // P(X <= 0.05)
  EXPECT_NEAR(deep.EstimateRange(0.0, 0.05), truth, 0.05);
  EXPECT_GT(std::fabs(wide.EstimateRange(0.0, 0.05) - truth), 0.2);
}

TEST(EquiDepthTest, RebuildIsLazyButConsistent) {
  EquiDepthHistogram hist(0.0, 1.0, 4);
  for (int i = 1; i <= 100; ++i) hist.Insert(i / 101.0);
  const double first = hist.EstimateRange(0.0, 0.5);
  for (int i = 1; i <= 100; ++i) hist.Insert(i / 101.0);
  const double second = hist.EstimateRange(0.0, 0.5);
  EXPECT_NEAR(first, second, 0.02);  // same distribution, rebuilt boundaries
}

// ---------------------------------------------------------------- reservoir

TEST(ReservoirTest, KeepsEverythingBelowCapacity) {
  ReservoirSampleSelectivity res(100);
  for (int i = 0; i < 50; ++i) res.Insert(i / 50.0);
  EXPECT_EQ(res.reservoir().size(), 50u);
  EXPECT_EQ(res.count(), 50u);
  EXPECT_NEAR(res.EstimateRange(0.0, 0.5), 0.5, 0.03);
}

TEST(ReservoirTest, CapacityBounded) {
  ReservoirSampleSelectivity res(64);
  for (int i = 0; i < 10000; ++i) res.Insert(0.5);
  EXPECT_EQ(res.reservoir().size(), 64u);
  EXPECT_EQ(res.count(), 10000u);
}

TEST(ReservoirTest, UnbiasedOnStream) {
  ReservoirSampleSelectivity res(512, 9);
  stats::Rng rng(11);
  for (int i = 0; i < 50000; ++i) res.Insert(rng.UniformDouble());
  EXPECT_NEAR(res.EstimateRange(0.2, 0.6), 0.4, 0.08);
}

// ---------------------------------------------------------- wavelet sketch

TEST(StreamingWaveletTest, CreateValidatesOptions) {
  StreamingWaveletSelectivity::Options options;
  options.refit_interval = 0;
  EXPECT_FALSE(StreamingWaveletSelectivity::Create(Sym8Basis(), options).ok());
  options = {};
  options.j0 = 5;
  options.j_max = 3;
  EXPECT_FALSE(StreamingWaveletSelectivity::Create(Sym8Basis(), options).ok());
}

TEST(StreamingWaveletTest, MatchesBatchEstimate) {
  StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 8;
  options.kind = core::ThresholdKind::kSoft;
  Result<StreamingWaveletSelectivity> streaming =
      StreamingWaveletSelectivity::Create(Sym8Basis(), options);
  ASSERT_TRUE(streaming.ok());

  stats::Rng rng(13);
  std::vector<double> xs(2000);
  for (double& x : xs) x = rng.UniformDouble();
  for (double x : xs) streaming->Insert(x);

  // Batch fit with the same levels on the same data.
  Result<core::WaveletDensityFit> batch =
      core::WaveletDensityFit::CreateStreaming(Sym8Basis(), 2, 8, 0.0, 1.0);
  ASSERT_TRUE(batch.ok());
  for (double x : xs) batch->Add(x);
  const core::CrossValidationResult cv =
      core::CrossValidate(batch->coefficients(), core::ThresholdKind::kSoft);
  const core::WaveletEstimate estimate =
      batch->Estimate(cv.Schedule(), core::ThresholdKind::kSoft);

  streaming->Refit();
  for (const auto& [a, b] : std::vector<std::pair<double, double>>{
           {0.1, 0.4}, {0.0, 1.0}, {0.6, 0.61}}) {
    EXPECT_NEAR(streaming->EstimateRange(a, b),
                std::clamp(estimate.IntegrateRange(a, b), 0.0, 1.0), 1e-12);
  }
}

TEST(StreamingWaveletTest, AccurateOnBimodalStream) {
  StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 9;
  Result<StreamingWaveletSelectivity> sketch =
      StreamingWaveletSelectivity::Create(Sym8Basis(), options);
  ASSERT_TRUE(sketch.ok());
  const auto density = processes::TruncatedGaussianMixtureDensity::Bimodal();
  stats::Rng rng(17);
  for (int i = 0; i < 8192; ++i) sketch->Insert(density.InverseCdf(rng.UniformDouble()));
  for (const auto& [a, b] : std::vector<std::pair<double, double>>{
           {0.25, 0.35}, {0.6, 0.7}, {0.45, 0.55}, {0.0, 0.5}}) {
    const double truth = density.Cdf(b) - density.Cdf(a);
    EXPECT_NEAR(sketch->EstimateRange(a, b), truth, 0.05)
        << "[" << a << "," << b << "]";
  }
}

TEST(StreamingWaveletTest, EmptySketchReturnsZero) {
  StreamingWaveletSelectivity::Options options;
  Result<StreamingWaveletSelectivity> sketch =
      StreamingWaveletSelectivity::Create(Sym8Basis(), options);
  ASSERT_TRUE(sketch.ok());
  EXPECT_DOUBLE_EQ(sketch->EstimateRange(0.1, 0.9), 0.0);
  EXPECT_DOUBLE_EQ(sketch->EstimateDensity(0.5), 0.0);
}

TEST(StreamingWaveletTest, ClampsDirtyInput) {
  StreamingWaveletSelectivity::Options options;
  Result<StreamingWaveletSelectivity> sketch =
      StreamingWaveletSelectivity::Create(Sym8Basis(), options);
  ASSERT_TRUE(sketch.ok());
  for (int i = 0; i < 100; ++i) sketch->Insert(i % 2 == 0 ? -10.0 : 10.0);
  EXPECT_EQ(sketch->count(), 100u);
}

TEST(StreamingWaveletTest, ExposesCvDiagnostics) {
  StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 6;
  Result<StreamingWaveletSelectivity> sketch =
      StreamingWaveletSelectivity::Create(Sym8Basis(), options);
  ASSERT_TRUE(sketch.ok());
  stats::Rng rng(19);
  for (int i = 0; i < 512; ++i) sketch->Insert(rng.UniformDouble());
  sketch->Refit();
  ASSERT_TRUE(sketch->last_cv().has_value());
  EXPECT_EQ(sketch->last_cv()->j0, 2);
  EXPECT_EQ(sketch->last_cv()->j_star, 6);
}

// ------------------------------------------------------------ Haar synopsis

TEST(WaveletSynopsisTest, ValidatesOptions) {
  WaveletSynopsisSelectivity::Options options;
  options.budget = 0;
  EXPECT_FALSE(WaveletSynopsisSelectivity::Create(options).ok());
  options = {};
  options.grid_log2 = 30;
  EXPECT_FALSE(WaveletSynopsisSelectivity::Create(options).ok());
  options = {};
  options.domain_lo = 1.0;
  options.domain_hi = 0.0;
  EXPECT_FALSE(WaveletSynopsisSelectivity::Create(options).ok());
}

TEST(WaveletSynopsisTest, ExactOnUniformWithGenerousBudget) {
  WaveletSynopsisSelectivity::Options options;
  options.grid_log2 = 6;
  options.budget = 1000;  // keep everything: lossless synopsis
  Result<WaveletSynopsisSelectivity> synopsis =
      WaveletSynopsisSelectivity::Create(options);
  ASSERT_TRUE(synopsis.ok());
  for (int i = 0; i < 6400; ++i) synopsis->Insert((i % 64 + 0.5) / 64.0);
  EXPECT_NEAR(synopsis->EstimateRange(0.0, 0.5), 0.5, 1e-9);
  EXPECT_NEAR(synopsis->EstimateRange(0.25, 0.75), 0.5, 1e-9);
}

TEST(WaveletSynopsisTest, BudgetBoundsRetainedCoefficients) {
  WaveletSynopsisSelectivity::Options options;
  options.grid_log2 = 8;
  options.budget = 16;
  Result<WaveletSynopsisSelectivity> synopsis =
      WaveletSynopsisSelectivity::Create(options);
  ASSERT_TRUE(synopsis.ok());
  stats::Rng rng(5);
  for (int i = 0; i < 5000; ++i) synopsis->Insert(rng.UniformDouble());
  EXPECT_LE(synopsis->RetainedCoefficients(), 16u);
}

TEST(WaveletSynopsisTest, CapturesCoarseStructureUnderTightBudget) {
  // 80% of the mass in [0, 0.25]: even a tiny budget must see the skew
  // (coarse Haar coefficients carry it).
  WaveletSynopsisSelectivity::Options options;
  options.grid_log2 = 10;
  options.budget = 8;
  Result<WaveletSynopsisSelectivity> synopsis =
      WaveletSynopsisSelectivity::Create(options);
  ASSERT_TRUE(synopsis.ok());
  stats::Rng rng(7);
  for (int i = 0; i < 20000; ++i) {
    synopsis->Insert(rng.Bernoulli(0.8) ? rng.Uniform(0.0, 0.25)
                                        : rng.Uniform(0.25, 1.0));
  }
  EXPECT_NEAR(synopsis->EstimateRange(0.0, 0.25), 0.8, 0.05);
}

TEST(WaveletSynopsisTest, AdaptiveSketchBeatsSynopsisOnSharpBimodal) {
  // The thematic comparison: a fixed-budget Haar synopsis vs the paper's
  // CV-thresholded estimator on a sharply bimodal stream.
  auto density = processes::TruncatedGaussianMixtureDensity::Bimodal();
  WaveletSynopsisSelectivity::Options syn_options;
  syn_options.budget = 24;
  Result<WaveletSynopsisSelectivity> synopsis =
      WaveletSynopsisSelectivity::Create(syn_options);
  ASSERT_TRUE(synopsis.ok());
  StreamingWaveletSelectivity::Options sketch_options;
  sketch_options.j0 = 2;
  sketch_options.j_max = 9;
  Result<StreamingWaveletSelectivity> sketch =
      StreamingWaveletSelectivity::Create(Sym8Basis(), sketch_options);
  ASSERT_TRUE(sketch.ok());
  stats::Rng rng(11);
  for (int i = 0; i < 8192; ++i) {
    const double x = density.InverseCdf(rng.UniformDouble());
    synopsis->Insert(x);
    sketch->Insert(x);
  }
  const std::vector<RangeQuery> queries =
      CenteredRangeWorkload(rng, 200, 0.0, 1.0, 0.02, 0.15);
  const auto truth = [&](const RangeQuery& q) {
    return density.Cdf(q.hi) - density.Cdf(q.lo);
  };
  const SelectivityAccuracy syn_acc = EvaluateAccuracy(*synopsis, queries, truth);
  const SelectivityAccuracy sketch_acc = EvaluateAccuracy(*sketch, queries, truth);
  EXPECT_LT(sketch_acc.mean_abs_error, syn_acc.mean_abs_error);
}

// ------------------------------------------------------------- dirty input

TEST(DirtyInputTest, NonFiniteValuesAreDropped) {
  const double kNan = std::nan("");
  const double kInf = std::numeric_limits<double>::infinity();

  EquiWidthHistogram ew(0.0, 1.0, 4);
  EquiDepthHistogram ed(0.0, 1.0, 4);
  ReservoirSampleSelectivity res(16);
  KdeSelectivity kde(KdeSelectivity::Options{});
  StreamingWaveletSelectivity::Options sk_options;
  Result<StreamingWaveletSelectivity> sketch =
      StreamingWaveletSelectivity::Create(Sym8Basis(), sk_options);
  ASSERT_TRUE(sketch.ok());
  WaveletSynopsisSelectivity::Options syn_options;
  Result<WaveletSynopsisSelectivity> synopsis =
      WaveletSynopsisSelectivity::Create(syn_options);
  ASSERT_TRUE(synopsis.ok());

  std::vector<SelectivityEstimator*> all{&ew, &ed, &res, &kde,
                                         &sketch.value(), &synopsis.value()};
  for (SelectivityEstimator* est : all) {
    est->Insert(0.5);
    est->Insert(kNan);
    est->Insert(kInf);
    est->Insert(-kInf);
    EXPECT_EQ(est->count(), 1u) << est->name();
    // Queries still work after dirty input.
    const double sel = est->EstimateRange(0.0, 1.0);
    EXPECT_GE(sel, 0.0) << est->name();
    EXPECT_LE(sel, 1.0 + 1e-9) << est->name();
  }
}

// ----------------------------------------------------------- inverted ranges

TEST(InvertedRangeTest, EstimateRangeNormalizesSwappedEndpoints) {
  // One documented choice, made at the interface: EstimateRange(a, b) with
  // a > b denotes the same predicate as [b, a] — every implementation (and
  // any future one: the swap lives in the non-virtual entry point) must give
  // identical answers for both orders.
  EquiWidthHistogram ew(0.0, 1.0, 16);
  EquiDepthHistogram ed(0.0, 1.0, 8);
  ReservoirSampleSelectivity res(128);
  KdeSelectivity kde(KdeSelectivity::Options{});
  Result<StreamingWaveletSelectivity> sketch =
      StreamingWaveletSelectivity::Create(Sym8Basis(), {});
  ASSERT_TRUE(sketch.ok());
  Result<WaveletSynopsisSelectivity> synopsis =
      WaveletSynopsisSelectivity::Create({});
  ASSERT_TRUE(synopsis.ok());

  stats::Rng rng(43);
  std::vector<SelectivityEstimator*> all{&ew,             &ed,
                                         &res,            &kde,
                                         &sketch.value(), &synopsis.value()};
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.UniformDouble();
    for (SelectivityEstimator* est : all) est->Insert(x);
  }
  for (SelectivityEstimator* est : all) {
    for (const auto& [a, b] : std::vector<std::pair<double, double>>{
             {0.2, 0.7}, {0.0, 1.0}, {0.45, 0.55}, {-0.5, 1.5}}) {
      EXPECT_EQ(est->EstimateRange(b, a), est->EstimateRange(a, b))
          << est->name() << " [" << b << ", " << a << "]";
      EXPECT_GE(est->EstimateRange(b, a), 0.0) << est->name();
    }
    // The batch path answers inverted queries identically to the scalar path.
    const std::vector<RangeQuery> inverted{{0.7, 0.2}, {1.0, 0.0}, {0.55, 0.45}};
    std::vector<double> answers(inverted.size());
    est->EstimateBatch(inverted, answers);
    for (size_t i = 0; i < inverted.size(); ++i) {
      EXPECT_EQ(answers[i], est->EstimateRange(inverted[i].lo, inverted[i].hi))
          << est->name();
    }
  }
}

// ------------------------------------------------------------- empty spans

TEST(EmptySpanTest, BatchEntryPointsAreNoOps) {
  EquiWidthHistogram ew(0.0, 1.0, 16);
  EquiDepthHistogram ed(0.0, 1.0, 8);
  ReservoirSampleSelectivity res(128);
  KdeSelectivity kde(KdeSelectivity::Options{});
  Result<StreamingWaveletSelectivity> sketch =
      StreamingWaveletSelectivity::Create(Sym8Basis(), {});
  ASSERT_TRUE(sketch.ok());
  Result<WaveletSynopsisSelectivity> synopsis =
      WaveletSynopsisSelectivity::Create({});
  ASSERT_TRUE(synopsis.ok());

  std::vector<SelectivityEstimator*> all{&ew,             &ed,
                                         &res,            &kde,
                                         &sketch.value(), &synopsis.value()};
  // Zero-length spans — default-constructed and over null data — must leave
  // the estimator untouched before and after real inserts.
  const std::span<const double> null_span(static_cast<const double*>(nullptr), 0);
  for (SelectivityEstimator* est : all) {
    est->InsertBatch({});
    est->InsertBatch(null_span);
    EXPECT_EQ(est->count(), 0u) << est->name();
    est->EstimateBatch({}, {});  // zero queries: touches nothing
    est->Insert(0.5);
    est->InsertBatch(null_span);
    EXPECT_EQ(est->count(), 1u) << est->name();
    const double before = est->EstimateRange(0.0, 1.0);
    est->EstimateBatch(std::span<const RangeQuery>(), std::span<double>());
    EXPECT_EQ(est->EstimateRange(0.0, 1.0), before) << est->name();
  }
}

// ---------------------------------------------------------------------- KDE

TEST(KdeSelectivityTest, MatchesTruthOnUniform) {
  KdeSelectivity::Options options;
  KdeSelectivity kde(options);
  stats::Rng rng(23);
  for (int i = 0; i < 4000; ++i) kde.Insert(rng.UniformDouble());
  EXPECT_NEAR(kde.EstimateRange(0.2, 0.7), 0.5, 0.05);
}

TEST(KdeSelectivityTest, TinySampleFallback) {
  KdeSelectivity::Options options;
  KdeSelectivity kde(options);
  kde.Insert(0.3);
  kde.Insert(0.6);
  EXPECT_NEAR(kde.EstimateRange(0.0, 0.5), 0.5, 1e-12);
}

// ------------------------------------------------------------------ workload

TEST(WorkloadTest, UniformQueriesAreOrderedAndInDomain) {
  stats::Rng rng(29);
  for (const RangeQuery& q : UniformRangeWorkload(rng, 200, -2.0, 3.0)) {
    EXPECT_LE(q.lo, q.hi);
    EXPECT_GE(q.lo, -2.0);
    EXPECT_LE(q.hi, 3.0);
  }
}

TEST(WorkloadTest, CenteredQueriesRespectWidths) {
  stats::Rng rng(31);
  for (const RangeQuery& q : CenteredRangeWorkload(rng, 200, 0.0, 1.0, 0.05, 0.2)) {
    EXPECT_LE(q.hi - q.lo, 0.2 + 1e-12);
    EXPECT_GE(q.lo, 0.0);
    EXPECT_LE(q.hi, 1.0);
  }
}

TEST(WorkloadTest, AccuracyOfPerfectEstimatorIsIdeal) {
  // An estimator that answers with the truth must have zero error and
  // q-error exactly 1.
  class Oracle : public SelectivityEstimator {
   public:
    void Insert(double) override {}
    size_t count() const override { return 1; }
    std::string name() const override { return "oracle"; }

   protected:
    double EstimateRangeImpl(double a, double b) const override { return (b - a); }
  };
  stats::Rng rng(37);
  const std::vector<RangeQuery> queries = UniformRangeWorkload(rng, 100, 0.0, 1.0);
  const Oracle oracle;
  const SelectivityAccuracy acc = EvaluateAccuracy(
      oracle, queries, [](const RangeQuery& q) { return q.hi - q.lo; });
  EXPECT_DOUBLE_EQ(acc.mean_abs_error, 0.0);
  EXPECT_DOUBLE_EQ(acc.rmse, 0.0);
  EXPECT_DOUBLE_EQ(acc.mean_qerror, 1.0);
  EXPECT_DOUBLE_EQ(acc.max_qerror, 1.0);
}

TEST(WorkloadTest, AccuracyDetectsBias) {
  class Biased : public SelectivityEstimator {
   public:
    void Insert(double) override {}
    size_t count() const override { return 1; }
    std::string name() const override { return "biased"; }

   protected:
    double EstimateRangeImpl(double a, double b) const override {
      return 2.0 * (b - a);
    }
  };
  stats::Rng rng(41);
  const std::vector<RangeQuery> queries =
      CenteredRangeWorkload(rng, 100, 0.0, 1.0, 0.1, 0.3);
  const Biased biased;
  const SelectivityAccuracy acc = EvaluateAccuracy(
      biased, queries, [](const RangeQuery& q) { return q.hi - q.lo; });
  EXPECT_NEAR(acc.mean_qerror, 2.0, 1e-9);
  EXPECT_GT(acc.mean_abs_error, 0.05);
}

}  // namespace
}  // namespace selectivity
}  // namespace wde
