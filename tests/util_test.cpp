#include <gtest/gtest.h>

#include <cstdlib>

#include "util/result.hpp"
#include "util/status.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInvalidArgument), "InvalidArgument");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kFailedPrecondition),
               "FailedPrecondition");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

TEST(ResultDeathTest, AccessingErrorValueAborts) {
  Result<int> r = Status::Internal("boom");
  EXPECT_DEATH((void)r.value(), "boom");
}

TEST(CheckDeathTest, FailedCheckAborts) {
  EXPECT_DEATH(WDE_CHECK(false, "custom message"), "custom message");
}

TEST(StringUtilTest, FormatBehavesLikePrintf) {
  EXPECT_EQ(Format("x=%d y=%.2f", 3, 1.5), "x=3 y=1.50");
  EXPECT_EQ(Format("%s", ""), "");
}

TEST(StringUtilTest, FormatLongStrings) {
  const std::string long_str(500, 'a');
  EXPECT_EQ(Format("%s!", long_str.c_str()).size(), 501u);
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({}, ","), "");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
}

TEST(StringUtilTest, EnvIntFallbacks) {
  ::unsetenv("WDE_TEST_ENV_INT");
  EXPECT_EQ(EnvInt("WDE_TEST_ENV_INT", 5), 5);
  ::setenv("WDE_TEST_ENV_INT", "12", 1);
  EXPECT_EQ(EnvInt("WDE_TEST_ENV_INT", 5), 12);
  ::setenv("WDE_TEST_ENV_INT", "garbage", 1);
  EXPECT_EQ(EnvInt("WDE_TEST_ENV_INT", 5), 5);
  ::unsetenv("WDE_TEST_ENV_INT");
}

TEST(StringUtilTest, EnvDoubleFallbacks) {
  ::unsetenv("WDE_TEST_ENV_DBL");
  EXPECT_DOUBLE_EQ(EnvDouble("WDE_TEST_ENV_DBL", 2.5), 2.5);
  ::setenv("WDE_TEST_ENV_DBL", "0.125", 1);
  EXPECT_DOUBLE_EQ(EnvDouble("WDE_TEST_ENV_DBL", 2.5), 0.125);
  ::unsetenv("WDE_TEST_ENV_DBL");
}

}  // namespace
}  // namespace wde
