// Tier-1 tests for the multi-dimensional estimation subsystem: the pure 2-D
// lattice and product-KDE math in src/multidim (cell indexing, summed-area
// prefix tables, lex sorting and the incremental tail merge, adaptive
// bandwidth factors, the windowed product-kernel rectangle sum vs a
// no-pruning reference), the correlated synthetic-data generators, and the
// estimator-level contracts of the two registered 2-D tags: rectangle
// accuracy against analytic truth, correlation capture on the anti-product
// distribution (where any product-of-marginals answer is badly wrong),
// merge-of-disjoint-substreams ≡ sequential bitwise, and the sharded engine
// over a 2-D prototype.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "kernel/kernels.hpp"
#include "multidim/grid2d.hpp"
#include "multidim/prod_kde2d.hpp"
#include "multidim/synthetic2d.hpp"
#include "selectivity/estimator_registry.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/selectivity_estimator.hpp"
#include "stats/rng.hpp"

namespace wde {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double NormalCdf(double x, double mean, double stddev) {
  return 0.5 * std::erfc((mean - x) / (stddev * std::sqrt(2.0)));
}

// ----------------------------------------------------------- grid2d lattice

TEST(Grid2dMathTest, CellIndexClampsAndCoversTheDomain) {
  EXPECT_EQ(multidim::CellIndex1d(0.0, 0.0, 1.0, 8), 0u);
  EXPECT_EQ(multidim::CellIndex1d(0.124, 0.0, 1.0, 8), 0u);
  EXPECT_EQ(multidim::CellIndex1d(0.126, 0.0, 1.0, 8), 1u);
  // The last cell is closed: hi lands in g-1, not g.
  EXPECT_EQ(multidim::CellIndex1d(1.0, 0.0, 1.0, 8), 7u);
  EXPECT_EQ(multidim::CellIndex1d(-5.0, 0.0, 1.0, 8), 0u);
  EXPECT_EQ(multidim::CellIndex1d(5.0, 0.0, 1.0, 8), 7u);
}

TEST(Grid2dMathTest, CellSpaceClampsInfinitiesToTheEdges) {
  EXPECT_EQ(multidim::CellSpace1d(-kInf, 0.0, 1.0, 8), 0.0);
  EXPECT_EQ(multidim::CellSpace1d(kInf, 0.0, 1.0, 8), 8.0);
  EXPECT_EQ(multidim::CellSpace1d(0.5, 0.0, 1.0, 8), 4.0);
  EXPECT_EQ(multidim::CellSpace1d(-3.0, 0.0, 1.0, 8), 0.0);
  EXPECT_EQ(multidim::CellSpace1d(42.0, 0.0, 1.0, 8), 8.0);
}

TEST(Grid2dMathTest, InclusivePrefixMatchesBruteForce) {
  stats::Rng rng(31);
  const size_t g = 8;
  std::vector<double> counts(g * g);
  for (double& c : counts) c = static_cast<double>(rng.UniformInt(9));
  std::vector<double> prefix(g * g);
  multidim::InclusivePrefix2d(counts, prefix, g);
  for (size_t i = 0; i < g; ++i) {
    for (size_t j = 0; j < g; ++j) {
      double want = 0.0;
      for (size_t a = 0; a <= i; ++a) {
        for (size_t b = 0; b <= j; ++b) want += counts[a * g + b];
      }
      // Integer-valued counts: every partial sum is exact, so the table is
      // equal to ANY summation order, not merely close.
      EXPECT_EQ(prefix[i * g + j], want) << i << "," << j;
    }
  }
}

TEST(Grid2dMathTest, RectCountIsExactOnCellAlignedRectanglesAndClamps) {
  stats::Rng rng(37);
  const size_t g = 8;
  std::vector<double> counts(g * g);
  for (double& c : counts) c = static_cast<double>(rng.UniformInt(5));
  std::vector<double> prefix(g * g);
  multidim::InclusivePrefix2d(counts, prefix, g);
  const double total = prefix[g * g - 1];
  // The all-space rectangle is the total count, exactly.
  EXPECT_EQ(multidim::RectCount(prefix, g, -kInf, kInf, -kInf, kInf, 0.0, 1.0,
                                0.0, 1.0),
            total);
  // Cell-aligned rectangles hit lattice corners, where the bilinear CDF is
  // the table value itself: the answer is the exact cell-block sum.
  for (int rep = 0; rep < 32; ++rep) {
    size_t i0 = rng.UniformInt(g), i1 = rng.UniformInt(g);
    size_t j0 = rng.UniformInt(g), j1 = rng.UniformInt(g);
    if (i1 < i0) std::swap(i0, i1);
    if (j1 < j0) std::swap(j0, j1);
    double want = 0.0;
    for (size_t a = i0; a <= i1; ++a) {
      for (size_t b = j0; b <= j1; ++b) want += counts[a * g + b];
    }
    const double got = multidim::RectCount(
        prefix, g, static_cast<double>(i0) / g, static_cast<double>(i1 + 1) / g,
        static_cast<double>(j0) / g, static_cast<double>(j1 + 1) / g, 0.0, 1.0,
        0.0, 1.0);
    EXPECT_EQ(got, want) << i0 << ".." << i1 << " x " << j0 << ".." << j1;
  }
  // Degenerate and off-domain rectangles answer 0, never negative.
  EXPECT_EQ(multidim::RectCount(prefix, g, 0.3, 0.3, 0.2, 0.2, 0.0, 1.0, 0.0,
                                1.0),
            0.0);
  EXPECT_EQ(multidim::RectCount(prefix, g, 2.0, 3.0, 2.0, 3.0, 0.0, 1.0, 0.0,
                                1.0),
            0.0);
}

// -------------------------------------------------------- lex sort / merge

TEST(ProdKde2dMathTest, MergeSortedTailMatchesFullSortBitwise) {
  stats::Rng rng(41);
  for (const size_t n : {size_t{5}, size_t{64}, size_t{513}}) {
    for (const size_t split : {size_t{0}, size_t{1}, n / 2, n - 1, n}) {
      std::vector<double> xs(n), ys(n);
      // Coarse values force ties in x (and some full (x, y) ties), the cases
      // where lex order and multiset-determinism actually bite.
      for (double& x : xs) x = static_cast<double>(rng.UniformInt(16)) / 16.0;
      for (double& y : ys) y = static_cast<double>(rng.UniformInt(16)) / 16.0;
      std::vector<double> fx = xs, fy = ys;
      multidim::SortPointsLex(fx, fy);
      ASSERT_TRUE(multidim::IsLexSorted(fx, fy));

      std::vector<double> mx = xs, my = ys;
      multidim::SortPointsLex(std::span<double>(mx).first(split),
                              std::span<double>(my).first(split));
      multidim::MergeSortedTailLex(mx, my, split);
      EXPECT_EQ(mx, fx) << "n=" << n << " split=" << split;
      EXPECT_EQ(my, fy) << "n=" << n << " split=" << split;
    }
  }
}

TEST(ProdKde2dMathTest, IsLexSortedRejectsDisorderAndNonFinite) {
  std::vector<double> xs = {0.1, 0.2, 0.2, 0.5};
  std::vector<double> ys = {0.9, 0.1, 0.4, 0.2};
  EXPECT_TRUE(multidim::IsLexSorted(xs, ys));
  std::swap(ys[1], ys[2]);  // tie in x, y out of order
  EXPECT_FALSE(multidim::IsLexSorted(xs, ys));
  std::swap(ys[1], ys[2]);
  xs[3] = 0.0;  // x out of order
  EXPECT_FALSE(multidim::IsLexSorted(xs, ys));
  xs[3] = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(multidim::IsLexSorted(xs, ys));
  xs[3] = kInf;
  EXPECT_FALSE(multidim::IsLexSorted(xs, ys));
}

TEST(ProdKde2dMathTest, AdaptiveLambdasSharpenDenseRegions) {
  // A dense clump plus sparse outliers: the clump's pilot density is far
  // above the geometric mean, so its λ must be below the outliers' λ.
  std::vector<double> xs, ys;
  stats::Rng rng(43);
  for (int i = 0; i < 400; ++i) {
    xs.push_back(0.25 + 0.02 * rng.UniformDouble());
    ys.push_back(0.25 + 0.02 * rng.UniformDouble());
  }
  for (int i = 0; i < 8; ++i) {
    xs.push_back(rng.Uniform(0.6, 1.0));
    ys.push_back(rng.Uniform(0.6, 1.0));
  }
  std::vector<double> lambdas(xs.size());
  const double lambda_max = multidim::AdaptiveLambdas(
      xs, ys, 0.0, 1.0, 0.0, 1.0, 0.5, 5, lambdas);
  double max_seen = 0.0;
  for (const double l : lambdas) {
    EXPECT_GE(l, 0.25);
    EXPECT_LE(l, 4.0);
    max_seen = std::max(max_seen, l);
  }
  EXPECT_EQ(lambda_max, max_seen);
  EXPECT_LT(lambdas[0], lambdas[xs.size() - 1]);  // clump sharper than outlier

  // α = 0 disables adaptivity entirely.
  const double flat_max = multidim::AdaptiveLambdas(
      xs, ys, 0.0, 1.0, 0.0, 1.0, 0.0, 5, lambdas);
  EXPECT_EQ(flat_max, 1.0);
  for (const double l : lambdas) EXPECT_EQ(l, 1.0);
}

TEST(ProdKde2dMathTest, WindowedRectSumMatchesNoPruningReference) {
  stats::Rng rng(47);
  const size_t n = 500;
  std::vector<double> xs(n), ys(n), lambdas(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = rng.UniformDouble();
    ys[i] = rng.UniformDouble();
  }
  multidim::SortPointsLex(xs, ys);
  for (double& l : lambdas) l = rng.Uniform(0.25, 4.0);
  const double lambda_max = *std::max_element(lambdas.begin(), lambdas.end());
  const kernel::Kernel k(kernel::KernelType::kEpanechnikov);
  const double hx = 0.04, hy = 0.07;
  multidim::ProdKde2dScratch scratch;
  for (int rep = 0; rep < 64; ++rep) {
    double lo0 = rng.Uniform(-0.2, 1.2), hi0 = rng.Uniform(-0.2, 1.2);
    double lo1 = rng.Uniform(-0.2, 1.2), hi1 = rng.Uniform(-0.2, 1.2);
    if (hi0 < lo0) std::swap(lo0, hi0);
    if (hi1 < lo1) std::swap(lo1, hi1);
    if (rep % 7 == 0) lo0 = -kInf;
    if (rep % 11 == 0) hi1 = kInf;
    const double got = multidim::ProdKde2dRectSum(
        k, xs, ys, lambdas, hx, hy, lambda_max, lo0, hi0, lo1, hi1, scratch);
    double want = 0.0;
    for (size_t i = 0; i < n; ++i) {
      const double sx = hx * lambdas[i];
      const double sy = hy * lambdas[i];
      const double fx = (std::isinf(hi0) ? 1.0 : k.Cdf((hi0 - xs[i]) / sx)) -
                        (std::isinf(lo0) ? 0.0 : k.Cdf((lo0 - xs[i]) / sx));
      const double fy = (std::isinf(hi1) ? 1.0 : k.Cdf((hi1 - ys[i]) / sy)) -
                        (std::isinf(lo1) ? 0.0 : k.Cdf((lo1 - ys[i]) / sy));
      want += fx * fy;
    }
    EXPECT_NEAR(got, want, 1e-11 * static_cast<double>(n)) << "rep " << rep;
  }
  // The all-space rectangle is exactly n: the compact-support CDF saturates
  // to exactly 0/1, so no tolerance is needed.
  EXPECT_EQ(multidim::ProdKde2dRectSum(k, xs, ys, lambdas, hx, hy, lambda_max,
                                       -kInf, kInf, -kInf, kInf, scratch),
            static_cast<double>(n));
}

// --------------------------------------------------------- synthetic data

TEST(Synthetic2dTest, GaussianPairRealizesTheRequestedCorrelation) {
  stats::Rng rng(53);
  const size_t n = 20000;
  for (const double rho : {-0.8, 0.0, 0.6}) {
    double sum0 = 0.0, sum1 = 0.0, sum00 = 0.0, sum11 = 0.0, sum01 = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double z0 = 0.0, z1 = 0.0;
      rng.GaussianPair(rho, &z0, &z1);
      sum0 += z0;
      sum1 += z1;
      sum00 += z0 * z0;
      sum11 += z1 * z1;
      sum01 += z0 * z1;
    }
    const double m0 = sum0 / n, m1 = sum1 / n;
    const double v0 = sum00 / n - m0 * m0, v1 = sum11 / n - m1 * m1;
    const double cov = sum01 / n - m0 * m1;
    EXPECT_NEAR(cov / std::sqrt(v0 * v1), rho, 0.03) << "rho=" << rho;
  }
  // ρ = ±1 are exact, not statistical.
  double z0 = 0.0, z1 = 0.0;
  rng.GaussianPair(1.0, &z0, &z1);
  EXPECT_EQ(z1, z0);
  rng.GaussianPair(-1.0, &z0, &z1);
  EXPECT_EQ(z1, -z0);
}

TEST(Synthetic2dTest, GeneratorsAreDeterministicAndInterleaved) {
  const std::vector<multidim::GaussianComponent2d> components = {
      {1.0, 0.3, 0.3, 0.05, 0.08, 0.5}, {2.0, 0.7, 0.6, 0.1, 0.05, -0.3}};
  std::vector<double> a, b;
  stats::Rng rng_a(61), rng_b(61);
  multidim::SampleGaussianMixture2d(rng_a, components, 500, &a);
  multidim::SampleGaussianMixture2d(rng_b, components, 500, &b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 1000u);

  std::vector<double> c, d;
  stats::Rng rng_c(62), rng_d(62);
  multidim::SampleAntiProduct2d(rng_c, 300, 0.05, &c);
  multidim::SampleAntiProduct2d(rng_d, 300, 0.05, &d);
  EXPECT_EQ(c, d);
  EXPECT_EQ(c.size(), 600u);
  for (size_t i = 0; i < c.size(); i += 2) {
    EXPECT_GE(c[i + 1], 0.0);  // y reflected into [0, 1]
    EXPECT_LE(c[i + 1], 1.0);
  }
}

TEST(Synthetic2dTest, AntiProductConcentratesOnTheDiagonals) {
  stats::Rng rng(67);
  std::vector<double> data;
  const size_t n = 10000;
  multidim::SampleAntiProduct2d(rng, n, 0.03, &data);
  size_t on_diagonals = 0;
  double x_sum = 0.0, y_sum = 0.0;
  for (size_t i = 0; i < 2 * n; i += 2) {
    const double x = data[i], y = data[i + 1];
    if (std::fabs(y - x) < 0.1 || std::fabs(y - (1.0 - x)) < 0.1) {
      ++on_diagonals;
    }
    x_sum += x;
    y_sum += y;
  }
  EXPECT_GT(static_cast<double>(on_diagonals) / n, 0.9);
  // ... while both marginals stay centered like uniforms.
  EXPECT_NEAR(x_sum / n, 0.5, 0.02);
  EXPECT_NEAR(y_sum / n, 0.5, 0.02);
}

// ------------------------------------------------------ estimator contracts

std::unique_ptr<selectivity::SelectivityEstimator> Make2d(
    const std::string& tag) {
  selectivity::EstimatorSpec spec;
  spec.tag = tag;
  spec.dims = 2;
  spec.grid_log2 = 6;
  spec.refit_interval = 512;
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> est =
      selectivity::MakeEstimator(spec);
  WDE_CHECK(est.ok(), est.status().ToString().c_str());
  return std::move(est).value();
}

const char* const k2dTags[] = {"grid2d", "kde2d-prod"};

TEST(MultiDimEstimatorTest, RegistryDeclaresNativeDims) {
  EXPECT_EQ(selectivity::EstimatorRegistry::Global().NativeDims("grid2d"), 2);
  EXPECT_EQ(selectivity::EstimatorRegistry::Global().NativeDims("kde2d-prod"),
            2);
  EXPECT_EQ(selectivity::EstimatorRegistry::Global().NativeDims("equi-width"),
            1);
  EXPECT_EQ(selectivity::EstimatorRegistry::Global().NativeDims("no-such"), 0);
  for (const char* tag : k2dTags) {
    EXPECT_EQ(Make2d(tag)->dims(), 2) << tag;
  }
}

TEST(MultiDimEstimatorTest, RectAnswersMatchAnalyticTruthOnAMixture) {
  // Uncorrelated components so the rect truth factors per component:
  // P(rect) = Σ w_k · [Φ_x(hi0) − Φ_x(lo0)] · [Φ_y(hi1) − Φ_y(lo1)].
  const std::vector<multidim::GaussianComponent2d> components = {
      {0.6, 0.3, 0.35, 0.07, 0.06, 0.0}, {0.4, 0.7, 0.65, 0.06, 0.08, 0.0}};
  stats::Rng rng(71);
  std::vector<double> data;
  multidim::SampleGaussianMixture2d(rng, components, 20000, &data);
  const auto truth = [&](double lo0, double hi0, double lo1, double hi1) {
    double p = 0.0;
    for (const auto& c : components) {
      p += c.weight *
           (NormalCdf(hi0, c.mean_x, c.stddev_x) -
            NormalCdf(lo0, c.mean_x, c.stddev_x)) *
           (NormalCdf(hi1, c.mean_y, c.stddev_y) -
            NormalCdf(lo1, c.mean_y, c.stddev_y));
    }
    return p;
  };
  for (const char* tag : k2dTags) {
    std::unique_ptr<selectivity::SelectivityEstimator> est = Make2d(tag);
    est->InsertBatch(data);
    stats::Rng query_rng(73);
    for (int rep = 0; rep < 40; ++rep) {
      double lo0 = query_rng.UniformDouble(), hi0 = query_rng.UniformDouble();
      double lo1 = query_rng.UniformDouble(), hi1 = query_rng.UniformDouble();
      if (hi0 < lo0) std::swap(lo0, hi0);
      if (hi1 < lo1) std::swap(lo1, hi1);
      const double got =
          est->Answer(selectivity::Query::Rect(lo0, hi0, lo1, hi1));
      EXPECT_NEAR(got, truth(lo0, hi0, lo1, hi1), 0.04)
          << tag << " rect [" << lo0 << "," << hi0 << "]x[" << lo1 << ","
          << hi1 << "]";
    }
  }
}

TEST(MultiDimEstimatorTest, BothEstimatorsCaptureAntiProductCorrelation) {
  // The discriminating case for 2-D estimation: the anti-product joint puts
  // ~5x more mass in the central square than the product of its marginals
  // claims. Any estimator that factorizes would answer ~0.04 here.
  stats::Rng rng(79);
  std::vector<double> data;
  multidim::SampleAntiProduct2d(rng, 20000, 0.03, &data);
  for (const char* tag : k2dTags) {
    std::unique_ptr<selectivity::SelectivityEstimator> est = Make2d(tag);
    est->InsertBatch(data);
    const double joint =
        est->Answer(selectivity::Query::Rect(0.4, 0.6, 0.4, 0.6));
    const double m0 = est->Answer(selectivity::Query::Marginal(0, 0.4, 0.6));
    const double m1 = est->Answer(selectivity::Query::Marginal(1, 0.4, 0.6));
    EXPECT_GT(joint, 2.5 * m0 * m1) << tag;
    EXPECT_NEAR(m0, 0.2, 0.05) << tag;  // marginals still near-uniform
    EXPECT_NEAR(m1, 0.2, 0.05) << tag;
  }
}

TEST(MultiDimEstimatorTest, MergeOfDisjointSubstreamsMatchesSequentialBitwise) {
  // Answers are functions of the observation multiset for both 2-D tags, so
  // CloneEmpty + per-substream ingest + MergeFrom must be indistinguishable
  // from one sequential estimator — bitwise, after both quiesce.
  stats::Rng rng(83);
  std::vector<double> data;
  multidim::SampleAntiProduct2d(rng, 3000, 0.05, &data);
  const size_t cut = 2 * 1000;  // observation-aligned split
  const std::span<const double> head(data.data(), cut);
  const std::span<const double> tail(data.data() + cut, data.size() - cut);
  stats::Rng query_rng(89);
  for (const char* tag : k2dTags) {
    std::unique_ptr<selectivity::SelectivityEstimator> sequential = Make2d(tag);
    sequential->InsertBatch(data);
    std::unique_ptr<selectivity::SelectivityEstimator> merged = Make2d(tag);
    std::unique_ptr<selectivity::SelectivityEstimator> peer =
        merged->CloneEmpty();
    merged->InsertBatch(head);
    peer->InsertBatch(tail);
    ASSERT_TRUE(merged->MergeFrom(*peer).ok()) << tag;
    ASSERT_EQ(merged->count(), sequential->count()) << tag;
    sequential->ForceRefit();
    merged->ForceRefit();
    for (int rep = 0; rep < 32; ++rep) {
      double lo0 = query_rng.UniformDouble(), hi0 = query_rng.UniformDouble();
      double lo1 = query_rng.UniformDouble(), hi1 = query_rng.UniformDouble();
      if (hi0 < lo0) std::swap(lo0, hi0);
      if (hi1 < lo1) std::swap(lo1, hi1);
      const selectivity::Query q =
          selectivity::Query::Rect(lo0, hi0, lo1, hi1);
      EXPECT_EQ(merged->Answer(q), sequential->Answer(q)) << tag;
    }
  }
}

TEST(MultiDimEstimatorTest, ShardedEngineOverA2dPrototypeMatchesSequential) {
  // The sharded engine splits the interleaved stream into blocks; Create
  // guarantees block_size % dims == 0, so observations never straddle
  // shards, and the grid's integer cell counts make the merged view
  // bit-identical to sequential ingest.
  stats::Rng rng(97);
  std::vector<double> data;
  multidim::SampleAntiProduct2d(rng, 10000, 0.05, &data);
  selectivity::EstimatorSpec spec;
  spec.tag = "sharded";
  spec.sharded_inner_tag = "grid2d";
  spec.dims = 2;
  spec.grid_log2 = 6;
  spec.shards = 3;
  spec.block_size = 128;
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> sharded =
      selectivity::MakeEstimator(spec);
  ASSERT_TRUE(sharded.ok()) << sharded.status().ToString();
  EXPECT_EQ((*sharded)->dims(), 2);
  std::unique_ptr<selectivity::SelectivityEstimator> plain = Make2d("grid2d");
  (*sharded)->InsertBatch(data);
  plain->InsertBatch(data);
  EXPECT_EQ((*sharded)->count(), plain->count());
  stats::Rng query_rng(101);
  for (int rep = 0; rep < 32; ++rep) {
    double lo0 = query_rng.UniformDouble(), hi0 = query_rng.UniformDouble();
    double lo1 = query_rng.UniformDouble(), hi1 = query_rng.UniformDouble();
    if (hi0 < lo0) std::swap(lo0, hi0);
    if (hi1 < lo1) std::swap(lo1, hi1);
    const selectivity::Query q = selectivity::Query::Rect(lo0, hi0, lo1, hi1);
    EXPECT_EQ((*sharded)->Answer(q), plain->Answer(q)) << "rep " << rep;
  }
}

TEST(MultiDimEstimatorTest, InterleaveParitySurvivesNonFiniteCoordinates) {
  // A non-finite value anywhere in the pair drops the WHOLE observation;
  // dropping a single coordinate would shift the interleave and silently
  // pair x's with the wrong y's forever after.
  for (const char* tag : k2dTags) {
    std::unique_ptr<selectivity::SelectivityEstimator> est = Make2d(tag);
    std::unique_ptr<selectivity::SelectivityEstimator> clean = Make2d(tag);
    const double nan = std::nan("");
    est->InsertBatch(std::vector<double>{0.1, 0.2, nan, 0.9, 0.3, 0.4, 0.5,
                                         kInf, 0.7, 0.8});
    clean->InsertBatch(std::vector<double>{0.1, 0.2, 0.3, 0.4, 0.7, 0.8});
    EXPECT_EQ(est->count(), 3u) << tag;
    const selectivity::Query q = selectivity::Query::Rect(0.0, 0.45, 0.0, 0.45);
    EXPECT_EQ(est->Answer(q), clean->Answer(q)) << tag;
  }
}

}  // namespace
}  // namespace wde
