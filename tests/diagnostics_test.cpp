#include <gtest/gtest.h>

#include <cmath>

#include "diagnostics/covariance_decay.hpp"
#include "processes/ar1_process.hpp"
#include "processes/logistic_map.hpp"
#include "processes/lsv_map.hpp"

namespace wde {
namespace diagnostics {
namespace {

TEST(CovarianceDecayTest, Ar1IsExponentialWithKnownRate) {
  const processes::Ar1GaussianProcess process(0.6);
  const CovarianceDecayReport report = MeasureCovarianceDecay(
      [&](stats::Rng& rng) { return process.Path(20000, rng); },
      [](double x) { return x; }, 8, 8, /*seed=*/5);
  EXPECT_TRUE(report.exponential_preferred);
  // Cov(X_0, X_r) = σ_X² ρ^r -> rate = −log ρ ≈ 0.511.
  EXPECT_NEAR(report.exponential.rate, -std::log(0.6), 0.08);
  EXPECT_GT(report.exponential.r_squared, 0.98);
}

TEST(CovarianceDecayTest, CovariancesDecreaseForAr1) {
  const processes::Ar1GaussianProcess process(0.8);
  const CovarianceDecayReport report = MeasureCovarianceDecay(
      [&](stats::Rng& rng) { return process.Path(8000, rng); },
      [](double x) { return x; }, 6, 4, 7);
  for (size_t i = 1; i < report.covariance.size(); ++i) {
    EXPECT_LT(report.covariance[i], report.covariance[i - 1] * 1.1);
  }
}

TEST(CovarianceDecayTest, LsvMapDecaysPolynomially) {
  // For α' = 0.8 the covariances decay like r^{1−1/α'} = r^{-0.25}: slow,
  // so the power-law model should dominate the exponential one over a long
  // lag window. Indicator observable avoids the unbounded density near 0.
  const processes::LsvMapProcess process(0.8);
  const CovarianceDecayReport report = MeasureCovarianceDecay(
      [&](stats::Rng& rng) { return process.Path(40000, rng); },
      [](double x) { return x < 0.2 ? 1.0 : 0.0; }, 30, 10, 11);
  EXPECT_FALSE(report.exponential_preferred);
}

TEST(CovarianceDecayTest, LogisticMapDecaysFast) {
  // The logistic map (through a bounded-variation observable) has
  // exponentially decaying correlations — Assumption (D) holds.
  const processes::LogisticMapProcess process;
  const CovarianceDecayReport report = MeasureCovarianceDecay(
      [&](stats::Rng& rng) { return process.Path(20000, rng); },
      [](double x) { return x < 0.25 ? 1.0 : 0.0; }, 10, 8, 13);
  // Fast decay: by lag 5 the covariance is tiny relative to lag 1.
  ASSERT_GE(report.covariance.size(), 5u);
  EXPECT_LT(report.covariance[4], 0.2 * report.covariance[0] + 1e-4);
}

TEST(CovarianceDecayTest, IidStreamIsNegligible) {
  const CovarianceDecayReport report = MeasureCovarianceDecay(
      [](stats::Rng& rng) {
        std::vector<double> xs(8000);
        for (double& x : xs) x = rng.UniformDouble();
        return xs;
      },
      [](double x) { return x; }, 6, 6, 19);
  EXPECT_FALSE(report.dependence_detected);
  EXPECT_STREQ(report.Verdict(), "negligible");
  EXPECT_NEAR(report.variance, 1.0 / 12.0, 0.01);
}

TEST(CovarianceDecayTest, Ar1VerdictIsExponential) {
  const processes::Ar1GaussianProcess process(0.7);
  const CovarianceDecayReport report = MeasureCovarianceDecay(
      [&](stats::Rng& rng) { return process.Path(20000, rng); },
      [](double x) { return x; }, 8, 6, 23);
  EXPECT_TRUE(report.dependence_detected);
  EXPECT_STREQ(report.Verdict(), "exponential");
}

TEST(CovarianceDecayTest, SummaryMentionsDecision) {
  const processes::Ar1GaussianProcess process(0.5);
  const CovarianceDecayReport report = MeasureCovarianceDecay(
      [&](stats::Rng& rng) { return process.Path(4000, rng); },
      [](double x) { return x; }, 5, 2, 17);
  const std::string summary = report.Summary();
  EXPECT_NE(summary.find("exp fit"), std::string::npos);
  EXPECT_NE(summary.find("decay"), std::string::npos);
}

}  // namespace
}  // namespace diagnostics
}  // namespace wde
