#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <string>

#include "numerics/integration.hpp"
#include "stats/rng.hpp"
#include "wavelet/cascade.hpp"
#include "wavelet/daubechies_lagarias.hpp"
#include "wavelet/dwt.hpp"
#include "wavelet/filter.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace wavelet {
namespace {

constexpr double kSqrt2 = 1.4142135623730951;

struct FilterSpec {
  std::string family;  // "db" or "sym"
  int moments;
};

WaveletFilter MakeFilter(const FilterSpec& spec) {
  Result<WaveletFilter> f = spec.family == "db"
                                ? WaveletFilter::Daubechies(spec.moments)
                                : WaveletFilter::Symmlet(spec.moments);
  WDE_CHECK(f.ok(), "filter construction failed in test setup");
  return *f;
}

std::string SpecName(const testing::TestParamInfo<FilterSpec>& info) {
  return info.param.family + std::to_string(info.param.moments);
}

// ------------------------------------------------------ parameterized sweep

class FilterSweepTest : public testing::TestWithParam<FilterSpec> {};

TEST_P(FilterSweepTest, LengthAndName) {
  const WaveletFilter f = MakeFilter(GetParam());
  EXPECT_EQ(f.length(), 2 * GetParam().moments);
  EXPECT_EQ(f.vanishing_moments(), GetParam().moments);
  EXPECT_EQ(f.support_length(), f.length() - 1);
}

TEST_P(FilterSweepTest, CoefficientSumIsSqrt2) {
  const WaveletFilter f = MakeFilter(GetParam());
  double sum = 0.0;
  for (double h : f.h()) sum += h;
  EXPECT_NEAR(sum, kSqrt2, 1e-12);
}

TEST_P(FilterSweepTest, CqfOrthonormality) {
  const WaveletFilter f = MakeFilter(GetParam());
  EXPECT_LT(f.OrthonormalityDefect(), 1e-9);
}

TEST_P(FilterSweepTest, HighpassHasVanishingMoments) {
  const WaveletFilter f = MakeFilter(GetParam());
  // Σ_k g_k k^m = 0 for m < N (discrete moments; tolerance grows with m).
  for (int m = 0; m < f.vanishing_moments(); ++m) {
    double acc = 0.0;
    for (int k = 0; k < f.length(); ++k) {
      acc += f.g()[static_cast<size_t>(k)] * std::pow(static_cast<double>(k), m);
    }
    EXPECT_NEAR(acc, 0.0, 1e-6 * std::pow(10.0, m / 2.0)) << "moment " << m;
  }
}

TEST_P(FilterSweepTest, HighpassIsOrthogonalToLowpass) {
  const WaveletFilter f = MakeFilter(GetParam());
  for (int m = -f.length() / 2; m <= f.length() / 2; ++m) {
    double acc = 0.0;
    for (int k = 0; k < f.length(); ++k) {
      const int shifted = k + 2 * m;
      if (shifted < 0 || shifted >= f.length()) continue;
      acc += f.h()[static_cast<size_t>(k)] * f.g()[static_cast<size_t>(shifted)];
    }
    EXPECT_NEAR(acc, 0.0, 1e-10) << "shift " << m;
  }
}

TEST_P(FilterSweepTest, CascadeTablesSatisfyMassAndNorm) {
  const WaveletFilter f = MakeFilter(GetParam());
  Result<CascadeTables> tables = ComputeCascadeTables(f, 10);
  ASSERT_TRUE(tables.ok());
  const double dx = tables->dx();
  EXPECT_NEAR(numerics::TrapezoidIntegral(tables->phi, dx), 1.0, 1e-6);
  EXPECT_NEAR(numerics::TrapezoidIntegral(tables->psi, dx), 0.0, 1e-6);
  double phi2 = 0.0, psi2 = 0.0;
  for (double v : tables->phi) phi2 += v * v;
  for (double v : tables->psi) psi2 += v * v;
  EXPECT_NEAR(phi2 * dx, 1.0, 2e-3);
  EXPECT_NEAR(psi2 * dx, 1.0, 2e-3);
}

TEST_P(FilterSweepTest, PartitionOfUnity) {
  const WaveletFilter f = MakeFilter(GetParam());
  Result<WaveletBasis> basis = WaveletBasis::Create(f, 10);
  ASSERT_TRUE(basis.ok());
  // Σ_k φ(x − k) = 1 for all x.
  for (double x : {0.1, 0.37, 0.5, 0.73, 0.99}) {
    double acc = 0.0;
    for (int k = -f.length(); k <= f.length(); ++k) {
      acc += basis->Phi(x - static_cast<double>(k));
    }
    EXPECT_NEAR(acc, 1.0, 2e-4) << "x=" << x;
  }
}

TEST_P(FilterSweepTest, DaubechiesLagariasAgreesWithCascade) {
  const WaveletFilter f = MakeFilter(GetParam());
  Result<WaveletBasis> basis = WaveletBasis::Create(f, 12);
  ASSERT_TRUE(basis.ok());
  const DaubechiesLagariasEvaluator dl(f);
  double max_diff = 0.0;
  const double hi = static_cast<double>(f.support_length());
  for (double x = 0.013; x < hi; x += hi / 57.0) {
    max_diff = std::max(max_diff, std::fabs(dl.Phi(x) - basis->Phi(x)));
    max_diff = std::max(max_diff, std::fabs(dl.Psi(x) - basis->Psi(x)));
  }
  // The table error is interpolation-bound: db2's φ is only ~Hölder-0.55
  // regular, so its tables are an order rougher than the smoother filters'.
  const double tolerance = GetParam().moments == 2 ? 5e-3 : 5e-5;
  EXPECT_LT(max_diff, tolerance);
}

TEST_P(FilterSweepTest, TranslateOrthonormalityByQuadrature) {
  const WaveletFilter f = MakeFilter(GetParam());
  Result<WaveletBasis> basis = WaveletBasis::Create(f, 12);
  ASSERT_TRUE(basis.ok());
  // <φ(·), φ(· − m)> = δ_{m0} and <φ, ψ(· − m)> = 0 by numeric quadrature.
  const double hi = static_cast<double>(f.support_length());
  const int points = 1 << 13;
  const double dx = (hi + 3.0) / points;
  for (int m : {0, 1, 2}) {
    double pp = 0.0, pw = 0.0;
    for (int i = 0; i <= points; ++i) {
      const double x = -1.0 + dx * i;
      pp += basis->Phi(x) * basis->Phi(x - m);
      pw += basis->Phi(x) * basis->Psi(x - m);
    }
    EXPECT_NEAR(pp * dx, m == 0 ? 1.0 : 0.0, 3e-3) << "m=" << m;
    EXPECT_NEAR(pw * dx, 0.0, 3e-3) << "m=" << m;
  }
}

TEST_P(FilterSweepTest, DwtPerfectReconstructionAndParseval) {
  const WaveletFilter f = MakeFilter(GetParam());
  stats::Rng rng(7);
  std::vector<double> signal(128);
  for (double& s : signal) s = rng.Gaussian();
  Result<DwtCoefficients> coeffs = ForwardDwt(f, signal, 3);
  ASSERT_TRUE(coeffs.ok());
  // Parseval: energy preserved by the orthonormal transform.
  double energy_in = 0.0, energy_out = 0.0;
  for (double s : signal) energy_in += s * s;
  for (double a : coeffs->approximation) energy_out += a * a;
  for (const auto& level : coeffs->details) {
    for (double d : level) energy_out += d * d;
  }
  EXPECT_NEAR(energy_in, energy_out, 1e-8 * energy_in);

  Result<std::vector<double>> rec = InverseDwt(f, *coeffs);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->size(), signal.size());
  for (size_t i = 0; i < signal.size(); ++i) EXPECT_NEAR((*rec)[i], signal[i], 1e-10);
}

TEST_P(FilterSweepTest, AntiderivativeMatchesCumulativeQuadrature) {
  const WaveletFilter f = MakeFilter(GetParam());
  Result<WaveletBasis> basis = WaveletBasis::Create(f, 12);
  ASSERT_TRUE(basis.ok());
  const double hi = static_cast<double>(f.support_length());
  EXPECT_NEAR(basis->PhiAntiderivative(hi), 1.0, 1e-6);
  EXPECT_NEAR(basis->PsiAntiderivative(hi), 0.0, 1e-6);
  // Midpoint consistency: numeric integral of the table equals the stored one.
  const double x_mid = hi * 0.4;
  const double direct = numerics::IntegrateFunction(
      [&](double x) { return basis->Phi(x); }, 0.0, x_mid, 4096);
  EXPECT_NEAR(basis->PhiAntiderivative(x_mid), direct, 1e-5);
}

INSTANTIATE_TEST_SUITE_P(AllFilters, FilterSweepTest,
                         testing::Values(FilterSpec{"db", 2}, FilterSpec{"db", 3},
                                         FilterSpec{"db", 4}, FilterSpec{"db", 5},
                                         FilterSpec{"db", 6}, FilterSpec{"db", 8},
                                         FilterSpec{"db", 10}, FilterSpec{"sym", 4},
                                         FilterSpec{"sym", 6}, FilterSpec{"sym", 8},
                                         FilterSpec{"sym", 10}),
                         SpecName);

// --------------------------------------------------------- specific checks

TEST(FilterTest, HaarIsExact) {
  const WaveletFilter haar = WaveletFilter::Haar();
  EXPECT_EQ(haar.length(), 2);
  EXPECT_NEAR(haar.h()[0], 1.0 / kSqrt2, 1e-15);
  EXPECT_NEAR(haar.h()[1], 1.0 / kSqrt2, 1e-15);
  EXPECT_NEAR(haar.g()[0], 1.0 / kSqrt2, 1e-15);
  EXPECT_NEAR(haar.g()[1], -1.0 / kSqrt2, 1e-15);
}

TEST(FilterTest, Db2MatchesClosedForm) {
  Result<WaveletFilter> db2 = WaveletFilter::Daubechies(2);
  ASSERT_TRUE(db2.ok());
  const double s3 = std::sqrt(3.0);
  const double expected[4] = {(1 + s3) / (4 * kSqrt2), (3 + s3) / (4 * kSqrt2),
                              (3 - s3) / (4 * kSqrt2), (1 - s3) / (4 * kSqrt2)};
  // Either orientation of the extremal-phase filter is acceptable.
  double err_fwd = 0.0, err_rev = 0.0;
  for (int k = 0; k < 4; ++k) {
    err_fwd = std::max(err_fwd, std::fabs(db2->h()[static_cast<size_t>(k)] -
                                          expected[k]));
    err_rev = std::max(err_rev, std::fabs(db2->h()[static_cast<size_t>(k)] -
                                          expected[3 - k]));
  }
  EXPECT_LT(std::min(err_fwd, err_rev), 1e-10);
}

TEST(FilterTest, RejectsUnsupportedOrders) {
  EXPECT_FALSE(WaveletFilter::Daubechies(0).ok());
  EXPECT_FALSE(WaveletFilter::Daubechies(11).ok());
  EXPECT_FALSE(WaveletFilter::Symmlet(-1).ok());
  EXPECT_FALSE(WaveletFilter::Symmlet(42).ok());
}

TEST(FilterTest, SymmletIsMoreSymmetricThanDaubechies) {
  // Least-asymmetric selection should concentrate the filter's mass closer
  // to its center: compare centered second moments of |h|².
  for (int n : {6, 8, 10}) {
    const WaveletFilter db = *WaveletFilter::Daubechies(n);
    const WaveletFilter sym = *WaveletFilter::Symmlet(n);
    const auto spread = [](const WaveletFilter& f) {
      double c = 0.0, mass = 0.0;
      for (int k = 0; k < f.length(); ++k) {
        const double w = f.h()[static_cast<size_t>(k)] * f.h()[static_cast<size_t>(k)];
        c += k * w;
        mass += w;
      }
      c /= mass;
      double s = 0.0;
      for (int k = 0; k < f.length(); ++k) {
        const double w = f.h()[static_cast<size_t>(k)] * f.h()[static_cast<size_t>(k)];
        s += (k - c) * (k - c) * w;
      }
      return s / mass;
    };
    EXPECT_LT(spread(sym), spread(db) + 1e-9) << "N=" << n;
  }
}

TEST(FilterTest, Sym1IsHaar) {
  Result<WaveletFilter> sym1 = WaveletFilter::Symmlet(1);
  ASSERT_TRUE(sym1.ok());
  EXPECT_EQ(sym1->length(), 2);
}

TEST(CascadeTest, HaarTablesAreIndicator) {
  Result<CascadeTables> tables = ComputeCascadeTables(WaveletFilter::Haar(), 3);
  ASSERT_TRUE(tables.ok());
  ASSERT_EQ(tables->phi.size(), 9u);  // grid 0,...,1 step 1/8
  for (size_t i = 0; i < 8; ++i) EXPECT_DOUBLE_EQ(tables->phi[i], 1.0);
  EXPECT_DOUBLE_EQ(tables->phi[8], 0.0);
  // Haar ψ: +1 on [0, 1/2), −1 on [1/2, 1).
  EXPECT_DOUBLE_EQ(tables->psi[0], 1.0);
  EXPECT_DOUBLE_EQ(tables->psi[3], 1.0);
  EXPECT_DOUBLE_EQ(tables->psi[4], -1.0);
  EXPECT_DOUBLE_EQ(tables->psi[7], -1.0);
}

TEST(CascadeTest, ScalingValuesAtIntegersSumToOne) {
  const WaveletFilter f = *WaveletFilter::Daubechies(4);
  Result<std::vector<double>> values = ScalingFunctionAtIntegers(f);
  ASSERT_TRUE(values.ok());
  ASSERT_EQ(values->size(), static_cast<size_t>(f.length()));
  double sum = 0.0;
  for (double v : *values) sum += v;
  EXPECT_NEAR(sum, 1.0, 1e-10);
  EXPECT_NEAR(values->front(), 0.0, 1e-10);
  EXPECT_NEAR(values->back(), 0.0, 1e-10);
}

TEST(CascadeTest, RefinementEquationHoldsOnTables) {
  const WaveletFilter f = *WaveletFilter::Symmlet(4);
  Result<CascadeTables> tables = ComputeCascadeTables(f, 8);
  ASSERT_TRUE(tables.ok());
  // φ(x) = √2 Σ h_k φ(2x − k) checked at interior grid points.
  const long scale = 1L << 8;
  const long size = static_cast<long>(tables->phi.size());
  for (long i = 16; i < size; i += 97) {
    if (2 * i >= size) break;
    double acc = 0.0;
    for (int k = 0; k < f.length(); ++k) {
      const long idx = 2 * i - static_cast<long>(k) * scale;
      if (idx >= 0 && idx < size) {
        acc += f.h()[static_cast<size_t>(k)] * tables->phi[static_cast<size_t>(idx)];
      }
    }
    EXPECT_NEAR(tables->phi[static_cast<size_t>(i)], kSqrt2 * acc, 1e-10);
  }
}

TEST(CascadeTest, RejectsBadLevels) {
  EXPECT_FALSE(ComputeCascadeTables(WaveletFilter::Haar(), 0).ok());
  EXPECT_FALSE(ComputeCascadeTables(WaveletFilter::Haar(), 99).ok());
}

TEST(BasisTest, ScalingIdentity) {
  Result<WaveletBasis> basis = WaveletBasis::Create(*WaveletFilter::Symmlet(8), 12);
  ASSERT_TRUE(basis.ok());
  // φ_{j,k}(x) = 2^{j/2} φ(2^j x − k).
  const double x = 0.3517;
  for (int j : {0, 2, 5}) {
    for (int k : {-3, 0, 4}) {
      const double direct = std::sqrt(std::ldexp(1.0, j)) *
                            basis->Phi(std::ldexp(x, j) - static_cast<double>(k));
      EXPECT_NEAR(basis->PhiJk(j, k, x), direct, 1e-12);
      const double direct_psi = std::sqrt(std::ldexp(1.0, j)) *
                                basis->Psi(std::ldexp(x, j) - static_cast<double>(k));
      EXPECT_NEAR(basis->PsiJk(j, k, x), direct_psi, 1e-12);
    }
  }
}

TEST(BasisTest, PointWindowCoversSupport) {
  Result<WaveletBasis> basis = WaveletBasis::Create(*WaveletFilter::Symmlet(8), 10);
  ASSERT_TRUE(basis.ok());
  stats::Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const double x = rng.UniformDouble();
    for (int j : {1, 4, 7}) {
      const TranslationWindow window = basis->PointWindow(j, x);
      const TranslationWindow level = basis->LevelWindow(j);
      // Every k outside the window must evaluate to zero.
      for (int k = level.lo; k <= level.hi; ++k) {
        if (k >= window.lo && k <= window.hi) continue;
        EXPECT_EQ(basis->PhiJk(j, k, x), 0.0) << "j=" << j << " k=" << k << " x=" << x;
        EXPECT_EQ(basis->PsiJk(j, k, x), 0.0) << "j=" << j << " k=" << k << " x=" << x;
      }
      EXPECT_LE(window.size(), basis->support_length() + 1);
    }
  }
}

TEST(BasisTest, LevelWindowShape) {
  Result<WaveletBasis> basis = WaveletBasis::Create(*WaveletFilter::Symmlet(8), 8);
  ASSERT_TRUE(basis.ok());
  const TranslationWindow w = basis->LevelWindow(4);
  EXPECT_EQ(w.lo, -(basis->support_length() - 1));
  EXPECT_EQ(w.hi, 15);
  EXPECT_EQ(w.size(), 16 + basis->support_length() - 1);
}

TEST(DwtTest, RejectsBadInput) {
  const WaveletFilter haar = WaveletFilter::Haar();
  EXPECT_FALSE(ForwardDwt(haar, std::vector<double>(100, 1.0), 2).ok());  // not pow2
  EXPECT_FALSE(ForwardDwt(haar, std::vector<double>(8, 1.0), 5).ok());    // too deep
  DwtCoefficients empty;
  EXPECT_FALSE(InverseDwt(haar, empty).ok());
}

TEST(DwtTest, HaarAveragesAndDifferences) {
  const WaveletFilter haar = WaveletFilter::Haar();
  Result<DwtCoefficients> coeffs = ForwardDwt(haar, {1.0, 3.0, 5.0, 7.0}, 1);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_NEAR(coeffs->approximation[0], 4.0 / kSqrt2, 1e-12);
  EXPECT_NEAR(coeffs->approximation[1], 12.0 / kSqrt2, 1e-12);
  EXPECT_NEAR(coeffs->details[0][0], -2.0 / kSqrt2, 1e-12);
  EXPECT_NEAR(coeffs->details[0][1], -2.0 / kSqrt2, 1e-12);
}

}  // namespace
}  // namespace wavelet
}  // namespace wde
