// End-to-end tests exercising the full paper pipeline across modules:
// process generation -> quantile transform -> coefficient accumulation ->
// cross-validated thresholding -> risk evaluation, plus the DB-facing
// selectivity stack on dependent streams.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/adaptive.hpp"
#include "harness/cases.hpp"
#include "harness/monte_carlo.hpp"
#include "kernel/bandwidth.hpp"
#include "kernel/kde.hpp"
#include "processes/lsv_map.hpp"
#include "processes/target_density.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "stats/loss.hpp"

namespace wde {
namespace {

const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

double CaseMise(harness::DependenceCase c, core::ThresholdKind kind, int reps,
                size_t n) {
  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  const processes::TransformedProcess process = harness::MakeCase(c, density);
  const std::vector<double> truth = density->PdfOnGrid(513);
  const std::vector<double> ises = harness::RunReplicates(
      reps, /*seed=*/2024, /*threads=*/1, [&](stats::Rng& rng, int) {
        const std::vector<double> xs = process.Sample(n, rng);
        core::AdaptiveOptions options;
        options.kind = kind;
        Result<core::AdaptiveDensityEstimate> fit =
            core::FitAdaptive(Sym8Basis(), xs, options);
        WDE_CHECK(fit.ok());
        const std::vector<double> est = fit->estimate.EvaluateOnGrid(0.0, 1.0, 513);
        return stats::IntegratedSquaredError(est, truth, 1.0 / 512.0);
      });
  return harness::Summarize(ises).mean;
}

TEST(PaperPipelineTest, MiseIsSmallAndComparableAcrossCases) {
  // The paper's central empirical claim (Table 1): weak dependence does not
  // degrade the CV-thresholded estimator. With a small replicate budget we
  // check all three cases stay within a factor ~2.5 of each other and all
  // are small in absolute terms.
  const double m1 = CaseMise(harness::DependenceCase::kIid,
                             core::ThresholdKind::kSoft, 8, 1024);
  const double m2 = CaseMise(harness::DependenceCase::kLogisticMap,
                             core::ThresholdKind::kSoft, 8, 1024);
  const double m3 = CaseMise(harness::DependenceCase::kNoncausalMa,
                             core::ThresholdKind::kSoft, 8, 1024);
  for (double m : {m1, m2, m3}) {
    EXPECT_GT(m, 0.0);
    EXPECT_LT(m, 0.2);
  }
  const double lo = std::min({m1, m2, m3});
  const double hi = std::max({m1, m2, m3});
  EXPECT_LT(hi / lo, 2.5);
}

TEST(PaperPipelineTest, AdaptiveBeatsFullLinearEstimator) {
  // Donoho et al.'s point, inherited by the paper: thresholding beats the
  // non-thresholded estimator that keeps every level.
  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  const processes::TransformedProcess process =
      harness::MakeCase(harness::DependenceCase::kLogisticMap, density);
  const std::vector<double> truth = density->PdfOnGrid(513);
  double adaptive_total = 0.0;
  double linear_total = 0.0;
  stats::Rng root(77);
  for (int rep = 0; rep < 5; ++rep) {
    stats::Rng rng = root.Fork(static_cast<uint64_t>(rep));
    const std::vector<double> xs = process.Sample(1024, rng);
    Result<core::WaveletDensityFit> fit = core::WaveletDensityFit::Fit(Sym8Basis(), xs);
    ASSERT_TRUE(fit.ok());
    const core::CrossValidationResult cv =
        core::CrossValidate(fit->coefficients(), core::ThresholdKind::kSoft);
    const core::WaveletEstimate adaptive =
        fit->Estimate(cv.Schedule(), core::ThresholdKind::kSoft);
    const core::WaveletEstimate linear =
        fit->LinearEstimate(fit->coefficients().j_max());
    adaptive_total += stats::IntegratedSquaredError(
        adaptive.EvaluateOnGrid(0.0, 1.0, 513), truth, 1.0 / 512.0);
    linear_total += stats::IntegratedSquaredError(
        linear.EvaluateOnGrid(0.0, 1.0, 513), truth, 1.0 / 512.0);
  }
  EXPECT_LT(adaptive_total, linear_total);
}

TEST(PaperPipelineTest, EstimatorIsGenuinelyNonlinear) {
  // Figure 4's point: at intermediate levels the thresholded fraction is
  // strictly between 0 and 1, so the estimator is not a linear projection.
  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  const processes::TransformedProcess process =
      harness::MakeCase(harness::DependenceCase::kIid, density);
  stats::Rng rng(123);
  const std::vector<double> xs = process.Sample(1024, rng);
  Result<core::AdaptiveDensityEstimate> fit = core::FitAdaptive(Sym8Basis(), xs);
  ASSERT_TRUE(fit.ok());
  bool found_partial_level = false;
  for (const core::LevelCvResult& level : fit->cv.levels) {
    if (level.kept > 0 && level.kept < level.total) found_partial_level = true;
  }
  EXPECT_TRUE(found_partial_level);
}

TEST(PaperPipelineTest, LsvHigherMomentsExceedKernel) {
  // Proposition 5.1 empirically (Figures 7-8): on the intermittent map with
  // large α' the wavelet estimate's high moments inflate relative to the
  // rule-of-thumb kernel estimate on [0.01, 1].
  const processes::LsvMapProcess process(0.8);
  stats::Rng rng(321);
  const std::vector<double> xs = process.Path(1024, rng);
  std::vector<double> clipped;
  for (double x : xs) {
    if (x >= 0.01) clipped.push_back(x);
  }
  core::AdaptiveOptions options;
  options.kind = core::ThresholdKind::kSoft;
  options.fit.domain_lo = 0.01;
  options.fit.domain_hi = 1.0;
  Result<core::AdaptiveDensityEstimate> wavelet_fit =
      core::FitAdaptive(Sym8Basis(), clipped, options);
  ASSERT_TRUE(wavelet_fit.ok());
  const double h = kernel::RuleOfThumbBandwidth(clipped);
  const auto kde = kernel::KernelDensityEstimator::Create(
      kernel::Kernel(kernel::KernelType::kEpanechnikov), h, clipped);
  ASSERT_TRUE(kde.ok());
  // Compare max absolute values on the grid (a cheap stand-in for the k=20
  // integrated moment that bench_fig8 computes in full).
  const std::vector<double> wv = wavelet_fit->estimate.EvaluateOnGrid(0.01, 1.0, 513);
  const std::vector<double> kv = kde->EvaluateOnGrid(0.01, 1.0, 513);
  double wmax = 0.0, kmax = 0.0;
  for (double v : wv) wmax = std::max(wmax, std::fabs(v));
  for (double v : kv) kmax = std::max(kmax, std::fabs(v));
  EXPECT_GT(wmax, 0.8 * kmax);  // wavelet at least as spiky
}

TEST(SelectivityStackTest, WaveletSketchBeatsCoarseHistogramOnBimodalStream) {
  auto density = std::make_shared<const processes::TruncatedGaussianMixtureDensity>(
      processes::TruncatedGaussianMixtureDensity::Bimodal());
  const processes::TransformedProcess process =
      harness::MakeCase(harness::DependenceCase::kLogisticMap, density);
  stats::Rng rng(55);
  const std::vector<double> xs = process.Sample(8192, rng);

  selectivity::StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 9;
  Result<selectivity::StreamingWaveletSelectivity> sketch =
      selectivity::StreamingWaveletSelectivity::Create(Sym8Basis(), options);
  ASSERT_TRUE(sketch.ok());
  selectivity::EquiWidthHistogram coarse(0.0, 1.0, 8);
  for (double x : xs) {
    sketch->Insert(x);
    coarse.Insert(x);
  }
  const std::vector<selectivity::RangeQuery> queries =
      selectivity::CenteredRangeWorkload(rng, 200, 0.0, 1.0, 0.02, 0.2);
  const auto truth = [&](const selectivity::RangeQuery& q) {
    return density->Cdf(q.hi) - density->Cdf(q.lo);
  };
  const selectivity::SelectivityAccuracy wavelet_acc =
      selectivity::EvaluateAccuracy(*sketch, queries, truth);
  const selectivity::SelectivityAccuracy hist_acc =
      selectivity::EvaluateAccuracy(coarse, queries, truth);
  EXPECT_LT(wavelet_acc.mean_abs_error, hist_acc.mean_abs_error);
}

TEST(SelectivityStackTest, SketchTracksDistributionDrift) {
  // Streams drift; periodic refits must follow. Feed uniform data, then
  // concentrated data, and check the estimate moves.
  selectivity::StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 8;
  options.refit_interval = 512;
  Result<selectivity::StreamingWaveletSelectivity> sketch =
      selectivity::StreamingWaveletSelectivity::Create(Sym8Basis(), options);
  ASSERT_TRUE(sketch.ok());
  stats::Rng rng(66);
  for (int i = 0; i < 4096; ++i) sketch->Insert(rng.UniformDouble());
  const double before = sketch->EstimateRange(0.4, 0.6);
  for (int i = 0; i < 32768; ++i) sketch->Insert(rng.Uniform(0.45, 0.55));
  const double after = sketch->EstimateRange(0.4, 0.6);
  EXPECT_NEAR(before, 0.2, 0.05);
  EXPECT_GT(after, 0.6);
}

TEST(PaperPipelineTest, HigherRegularityDoesNotBreakPipeline) {
  // Run the full pipeline across wavelet families as a compatibility sweep.
  for (int n_moments : {2, 4, 6}) {
    Result<wavelet::WaveletBasis> basis =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(n_moments), 11);
    ASSERT_TRUE(basis.ok());
    auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
    const processes::TransformedProcess process =
        harness::MakeCase(harness::DependenceCase::kNoncausalMa, density);
    stats::Rng rng(777 + static_cast<uint64_t>(n_moments));
    const std::vector<double> xs = process.Sample(512, rng);
    Result<core::AdaptiveDensityEstimate> fit = core::FitAdaptive(*basis, xs);
    ASSERT_TRUE(fit.ok()) << "N=" << n_moments;
    EXPECT_NEAR(fit->estimate.TotalMass(), 1.0, 0.12) << "N=" << n_moments;
  }
}

}  // namespace
}  // namespace wde
