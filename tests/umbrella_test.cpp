// Regression guard for the umbrella header: this translation unit includes
// ONLY wde/wde.hpp (plus GoogleTest) so that a stale or broken include in the
// umbrella fails the tier1 gate instead of rotting silently. (It cannot catch
// a header that merely lost self-containment — earlier umbrella includes can
// mask that — only the umbrella surface itself.) Keep it free of other
// includes.
#include "wde/wde.hpp"

#include <gtest/gtest.h>

namespace wde {
namespace {

TEST(UmbrellaTest, PublicTypesAreVisible) {
  // Touch one symbol from each layer so a header that goes missing from the
  // umbrella breaks this build, not just a downstream user's.
  Status st;
  EXPECT_TRUE(st.ok());
  Result<double> r = 1.0;
  EXPECT_TRUE(r.ok());
}

TEST(UmbrellaTest, HeaderIsSelfContained) {
  SUCCEED() << "wde/wde.hpp compiled as the sole library include";
}

}  // namespace
}  // namespace wde
