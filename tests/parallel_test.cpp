// Tests for the shared ThreadPool executor: full index coverage, serial
// degradation, nested regions (no deadlock because callers participate),
// Submit, and the determinism contract that routing harness replication
// through the pool must preserve.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "harness/monte_carlo.hpp"
#include "parallel/thread_pool.hpp"
#include "stats/rng.hpp"

namespace wde {
namespace parallel {
namespace {

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (int count : {1, 2, 64, 1000}) {
    std::vector<std::atomic<int>> hits(static_cast<size_t>(count));
    for (auto& h : hits) h.store(0);
    pool.ParallelFor(count, [&](int i) { hits[static_cast<size_t>(i)]++; });
    for (int i = 0; i < count; ++i) {
      EXPECT_EQ(hits[static_cast<size_t>(i)].load(), 1) << "index " << i;
    }
  }
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  pool.ParallelFor(0, [](int) { FAIL() << "body must not run"; });
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsSerially) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.thread_count(), 0);
  std::vector<int> order;
  pool.ParallelFor(8, [&](int i) { order.push_back(i); });  // no sync needed
  ASSERT_EQ(order.size(), 8u);
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, MaxWorkersOneRunsOnTheCallerInOrder) {
  ThreadPool pool(4);
  std::vector<int> order;
  pool.ParallelFor(16, /*max_workers=*/1, [&](int i) { order.push_back(i); });
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(ThreadPoolTest, SubmitRunsTheTask) {
  ThreadPool pool(2);
  std::mutex mu;
  std::condition_variable cv;
  bool ran = false;
  pool.Submit([&]() {
    std::lock_guard<std::mutex> lock(mu);
    ran = true;
    cv.notify_all();
  });
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&]() { return ran; });
  EXPECT_TRUE(ran);
}

TEST(ThreadPoolTest, SubmitOnZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  bool ran = false;
  pool.Submit([&]() { ran = true; });
  EXPECT_TRUE(ran);  // inline: visible immediately, no sync needed
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // Every region's caller participates, so even a 1-worker pool saturated by
  // the outer region completes the inner regions.
  ThreadPool pool(1);
  std::atomic<int> total{0};
  pool.ParallelFor(4, [&](int) {
    pool.ParallelFor(8, [&](int) { total.fetch_add(1); });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(ThreadPoolTest, SharedPoolIsASingleton) {
  EXPECT_EQ(&ThreadPool::Shared(), &ThreadPool::Shared());
  EXPECT_GE(ThreadPool::Shared().thread_count(), 1);  // even if hw detection fails
}

TEST(ThreadPoolTest, CallerSideBodyExceptionWaitsForHelpers) {
  // A body that throws on the caller thread must not let ParallelFor unwind
  // while helpers still execute bodies capturing the caller's frame (the
  // `hits` vector below) — ASan/TSan runs of this test guard that contract.
  // Whether the caller claims an index at all is a scheduling race (helpers
  // can drain everything first, especially on one core), so helpers run a
  // slow body and the region is retried until the caller loses an attempt.
  ThreadPool pool(2);
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::atomic<int>> hits(64);
  bool threw = false;
  for (int attempt = 0; attempt < 50 && !threw; ++attempt) {
    for (auto& h : hits) h.store(0);
    try {
      pool.ParallelFor(static_cast<int>(hits.size()), [&](int i) {
        if (std::this_thread::get_id() == caller) {
          throw std::runtime_error("caller body failure");
        }
        std::this_thread::sleep_for(std::chrono::microseconds(50));
        hits[static_cast<size_t>(i)]++;
      });
    } catch (const std::runtime_error&) {
      threw = true;
    }
  }
  EXPECT_TRUE(threw) << "caller never claimed an index in 50 attempts";
  // The pool survives and runs further regions normally.
  std::atomic<int> total{0};
  pool.ParallelFor(64, [&](int) { total.fetch_add(1); });
  EXPECT_EQ(total.load(), 64);
}

TEST(ThreadPoolTest, ResultsIdenticalAcrossPoolAndWidth) {
  // The scheduling-independence contract: bodies writing disjoint slots give
  // bit-identical results for every pool size and max_workers value.
  const auto fill = [](ThreadPool& pool, int width) {
    std::vector<double> out(257);
    pool.ParallelFor(257, width, [&](int i) {
      stats::Rng rng(42);
      out[static_cast<size_t>(i)] = rng.Fork(static_cast<uint64_t>(i)).Gaussian();
    });
    return out;
  };
  ThreadPool serial(0);
  ThreadPool narrow(1);
  ThreadPool wide(8);
  const std::vector<double> baseline = fill(serial, 1);
  EXPECT_EQ(baseline, fill(narrow, 2));
  EXPECT_EQ(baseline, fill(wide, 8));
  EXPECT_EQ(baseline, fill(wide, 3));
}

TEST(HarnessOnPoolTest, RunReplicatesIdenticalForAnyThreadCount) {
  // RunReplicates now executes on the shared pool; the (seed, r) forking
  // contract must keep results bit-identical for any `threads` value.
  const auto body = [](stats::Rng& rng, int rep) {
    return rng.Gaussian() + static_cast<double>(rep);
  };
  const std::vector<double> serial = harness::RunReplicates(64, 7, 1, body);
  EXPECT_EQ(serial, harness::RunReplicates(64, 7, 2, body));
  EXPECT_EQ(serial, harness::RunReplicates(64, 7, 8, body));
}

TEST(HarnessOnPoolTest, MeanCurveIdenticalForAnyThreadCount) {
  const auto body = [](stats::Rng& rng, int) {
    std::vector<double> row(16);
    for (double& v : row) v = rng.UniformDouble();
    return row;
  };
  const std::vector<double> serial = harness::MeanCurve(32, 11, 1, 16, body);
  EXPECT_EQ(serial, harness::MeanCurve(32, 11, 4, 16, body));
}

}  // namespace
}  // namespace parallel
}  // namespace wde
