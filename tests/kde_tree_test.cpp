// Property tests for the kd-tree-pruned KDE evaluation paths (kernel/kde_tree):
//   - tolerance 0 is BIT-IDENTICAL to the linear windowed pass for every
//     shipped kernel type, across sizes straddling the leaf width and on
//     degenerate/duplicate-point data (the tree may prune exactly, never
//     approximate);
//   - positive tolerances carry the certified absolute bound derived in
//     kde_tree.hpp, checked against the exact answer for random tolerances;
//   - the batch entry points dispatch to the same paths bitwise;
//   - copies share the lazily built tree safely (indices + aggregates only).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "kernel/kde.hpp"
#include "kernel/kde_tree.hpp"
#include "kernel/kernels.hpp"
#include "stats/rng.hpp"

namespace wde {
namespace kernel {
namespace {

constexpr KernelType kAllTypes[] = {KernelType::kEpanechnikov,
                                    KernelType::kGaussian, KernelType::kBiweight,
                                    KernelType::kTriangular};

KernelDensityEstimator MakeKde(KernelType type, const std::vector<double>& data,
                               double bandwidth) {
  Result<KernelDensityEstimator> kde =
      KernelDensityEstimator::Create(Kernel(type), bandwidth, data);
  WDE_CHECK(kde.ok(), kde.status().ToString().c_str());
  return *std::move(kde);
}

// Queries spanning the data range, its exact edges, sample values themselves,
// and points far outside the support (empty windows / saturated CDFs).
std::vector<double> Probes(stats::Rng& rng, const std::vector<double>& data) {
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(rng.Uniform(-0.5, 1.5));
  xs.push_back(-10.0);
  xs.push_back(10.0);
  xs.push_back(0.0);
  xs.push_back(1.0);
  for (size_t i = 0; i < data.size(); i += std::max<size_t>(1, data.size() / 8)) {
    xs.push_back(data[i]);
  }
  return xs;
}

TEST(KdeTreeTest, ToleranceZeroBitIdenticalToLinearPassAcrossSizes) {
  stats::Rng rng(11);
  // Sizes straddling the linear cutover and the leaf width so the direct
  // pass, root-is-leaf, one-split, and deep trees are all exercised.
  for (size_t n : {1u, 2u, 31u, 100u, 512u, 513u, 1000u, 5000u}) {
    std::vector<double> data(n);
    for (double& x : data) x = rng.UniformDouble();
    for (KernelType type : kAllTypes) {
      const KernelDensityEstimator kde = MakeKde(type, data, 0.05);
      for (double x : Probes(rng, data)) {
        EXPECT_EQ(kde.Evaluate(x, 0.0), kde.Evaluate(x))
            << kde.kernel().name() << " n=" << n << " x=" << x;
        EXPECT_EQ(kde.CdfAt(x, 0.0), kde.CdfAt(x))
            << kde.kernel().name() << " n=" << n << " x=" << x;
      }
    }
  }
}

TEST(KdeTreeTest, ToleranceZeroBitIdenticalOnDegenerateData) {
  stats::Rng rng(13);
  // All-equal samples: every tree node has xmin == xmax, so both the exact
  // prunes and (at tolerance 0, forbidden) collapses sit on their edge cases.
  std::vector<double> flat(257, 0.5);
  // Heavy duplication: a few distinct values repeated across leaf boundaries.
  std::vector<double> dup(300);
  for (double& x : dup) x = 0.1 * static_cast<double>(rng.UniformDouble() * 5.0);
  for (const std::vector<double>* data : {&flat, &dup}) {
    for (KernelType type : kAllTypes) {
      const KernelDensityEstimator kde = MakeKde(type, *data, 0.03);
      for (double x : Probes(rng, *data)) {
        EXPECT_EQ(kde.Evaluate(x, 0.0), kde.Evaluate(x))
            << kde.kernel().name() << " x=" << x;
        EXPECT_EQ(kde.CdfAt(x, 0.0), kde.CdfAt(x))
            << kde.kernel().name() << " x=" << x;
      }
    }
  }
}

TEST(KdeTreeTest, RandomTolerancesStayWithinCertifiedBound) {
  stats::Rng rng(17);
  std::vector<double> data(2000);
  for (double& x : data) x = rng.UniformDouble();
  for (KernelType type : kAllTypes) {
    const KernelDensityEstimator kde = MakeKde(type, data, 0.04);
    for (int rep = 0; rep < 100; ++rep) {
      const double tol = std::pow(10.0, rng.Uniform(-8.0, -2.0));
      const double x = rng.Uniform(-0.3, 1.3);
      // 1e-12 slack: the bounds are certified in exact arithmetic; the
      // accumulations themselves round.
      EXPECT_LE(std::fabs(kde.Evaluate(x, tol) - kde.Evaluate(x)), tol + 1e-12)
          << kde.kernel().name() << " tol=" << tol << " x=" << x;
      EXPECT_LE(std::fabs(kde.CdfAt(x, tol) - kde.CdfAt(x)), tol + 1e-12)
          << kde.kernel().name() << " tol=" << tol << " x=" << x;
    }
  }
}

TEST(KdeTreeTest, BatchEntryPointsDispatchBitwise) {
  stats::Rng rng(19);
  std::vector<double> data(500);
  for (double& x : data) x = rng.UniformDouble();
  for (KernelType type : kAllTypes) {
    const KernelDensityEstimator kde = MakeKde(type, data, 0.05);
    const std::vector<double> xs = Probes(rng, data);
    std::vector<double> out(xs.size());
    for (double tol : {0.0, 1e-4}) {
      kde.EvaluateMany(xs, out, tol);
      for (size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(out[i], kde.Evaluate(xs[i], tol))
            << kde.kernel().name() << " tol=" << tol;
      }
      kde.CdfAtMany(xs, out, tol);
      for (size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(out[i], kde.CdfAt(xs[i], tol))
            << kde.kernel().name() << " tol=" << tol;
      }
    }
  }
}

TEST(KdeTreeTest, CopiesShareTheLazilyBuiltTree) {
  stats::Rng rng(23);
  std::vector<double> data(300);
  for (double& x : data) x = rng.UniformDouble();
  const KernelDensityEstimator kde =
      MakeKde(KernelType::kEpanechnikov, data, 0.05);
  // Warm the tree on the original, then copy: the copy's buffer has equal
  // contents, so the shared index-only tree must answer identically.
  const double warmed = kde.Evaluate(0.37, 1e-3);
  const KernelDensityEstimator copy = kde;
  EXPECT_EQ(copy.Evaluate(0.37, 1e-3), warmed);
  for (double x : Probes(rng, data)) {
    EXPECT_EQ(copy.Evaluate(x, 0.0), kde.Evaluate(x));
    EXPECT_EQ(copy.CdfAt(x, 0.0), kde.CdfAt(x));
  }
}

TEST(KdeTreeTest, TreeStructureCoversTheBuffer) {
  stats::Rng rng(29);
  std::vector<double> data(257);
  for (double& x : data) x = rng.UniformDouble();
  std::vector<double> sorted = data;
  std::sort(sorted.begin(), sorted.end());
  const KdeEvalTree tree{std::span<const double>(sorted)};
  EXPECT_EQ(tree.sample_size(), sorted.size());
  EXPECT_GT(tree.node_count(), 1u);
  // DensitySum at tolerance 0 over the whole support equals the plain sum of
  // kernel terms (normalization is the caller's).
  const Kernel kernel(KernelType::kBiweight);
  const double bandwidth = 0.07;
  const double x = 0.5;
  double expected = 0.0;
  const double radius = kernel.support_radius() * bandwidth;
  for (double xi : sorted) {
    if (xi >= x - radius && xi <= x + radius) {
      expected += kernel.Evaluate((x - xi) / bandwidth);
    }
  }
  EXPECT_EQ(tree.DensitySum(sorted, kernel, bandwidth, x, 0.0), expected);
}

}  // namespace
}  // namespace kernel
}  // namespace wde
