// Tests for the incremental refit engine: every estimator with a RefitMode
// knob must answer bitwise-identically in kIncremental (delta-merge fitted
// state) and kScratch (rebuild from zero — the oracle) across interleaved
// insert/query/merge schedules, across mid-refit-interval snapshot
// save -> restore -> continue, and — for the sharded engine — across the
// delta-refreshed merged view vs the full CloneEmpty + K MergeFrom rebuild
// at every pool width. ForceRefit() must quiesce any registered estimator.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "parallel/thread_pool.hpp"
#include "selectivity/estimator_registry.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/selectivity_estimator.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "stats/rng.hpp"

namespace wde {
namespace {

std::vector<double> UnitStream(uint64_t seed, size_t n) {
  stats::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.UniformDouble();
  return xs;
}

std::vector<selectivity::Query> Workload(uint64_t seed, size_t count) {
  stats::Rng rng(seed);
  return selectivity::MixedQueryWorkload(rng, count, 0.0, 1.0);
}

std::vector<double> Answers(const selectivity::SelectivityEstimator& estimator,
                            const std::vector<selectivity::Query>& queries) {
  std::vector<double> out(queries.size());
  estimator.Answer(queries, out);
  return out;
}

/// A spec for `tag` sized so the interleaved schedules below cross several
/// refit intervals (many warm-started refits) without slowing the suite.
selectivity::EstimatorSpec SpecFor(const std::string& tag,
                                   selectivity::RefitMode mode) {
  selectivity::EstimatorSpec spec;
  spec.tag = tag;
  spec.dims = selectivity::EstimatorRegistry::Global().NativeDims(tag);
  if (spec.dims == 0) spec.dims = 1;  // non-registry tags in the loops below
  spec.refit_mode = mode;
  spec.refit_interval = 256;
  spec.j_max = 8;
  if (tag == "sharded") {
    spec.sharded_inner_tag = "kde-rot";
    spec.shards = 3;
    spec.block_size = 64;
    spec.merge_refresh_interval = 256;
  }
  return spec;
}

std::unique_ptr<selectivity::SelectivityEstimator> Make(
    const selectivity::EstimatorSpec& spec) {
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> estimator =
      selectivity::MakeEstimator(spec);
  WDE_CHECK(estimator.ok(), estimator.status().ToString().c_str());
  return std::move(estimator).value();
}

std::unique_ptr<selectivity::SelectivityEstimator> CloneViaSnapshotRoundTrip(
    const selectivity::SelectivityEstimator& estimator) {
  io::VectorSink sink;
  WDE_CHECK_OK(selectivity::SaveEstimatorSnapshot(estimator, sink));
  io::SpanSource source(sink.bytes());
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> restored =
      selectivity::LoadEstimatorSnapshot(source);
  WDE_CHECK(restored.ok(), restored.status().ToString().c_str());
  return std::move(restored).value();
}

// Uneven chunk sizes so refits land mid-chunk, at chunk boundaries, and via
// the scalar Insert path; the total crosses refit_interval = 256 many times.
constexpr size_t kChunks[] = {1, 3, 130, 256, 511, 64, 1024, 7, 389, 500};

// ---------------------------------------------------------------------------
// Incremental == scratch, bitwise, for every registered tag, over an
// interleaved insert/query/merge schedule.
// ---------------------------------------------------------------------------

TEST(RefitEquivalenceTest, EveryTagAnswersBitIdenticallyInBothModes) {
  const std::vector<selectivity::Query> queries = Workload(7, 96);
  for (const std::string& tag :
       selectivity::EstimatorRegistry::Global().Tags()) {
    SCOPED_TRACE(tag);
    std::unique_ptr<selectivity::SelectivityEstimator> incremental =
        Make(SpecFor(tag, selectivity::RefitMode::kIncremental));
    std::unique_ptr<selectivity::SelectivityEstimator> scratch =
        Make(SpecFor(tag, selectivity::RefitMode::kScratch));

    size_t offset = 0;
    for (const size_t chunk : kChunks) {
      const std::vector<double> xs = UnitStream(11 + offset, chunk);
      if (chunk == 1) {
        incremental->Insert(xs[0]);
        scratch->Insert(xs[0]);
      } else {
        incremental->InsertBatch(xs);
        scratch->InsertBatch(xs);
      }
      offset += chunk;
      EXPECT_EQ(Answers(*incremental, queries), Answers(*scratch, queries))
          << "diverged after " << offset << " inserts";
    }

    // Merge schedule: fold a separately grown peer (same mode) into each and
    // keep going — a merge resets fitted caches, the next refit must
    // re-converge the modes bitwise.
    if (incremental->mergeable()) {
      std::unique_ptr<selectivity::SelectivityEstimator> peer_inc =
          Make(SpecFor(tag, selectivity::RefitMode::kIncremental));
      std::unique_ptr<selectivity::SelectivityEstimator> peer_scr =
          Make(SpecFor(tag, selectivity::RefitMode::kScratch));
      const std::vector<double> peer_xs = UnitStream(99, 777);
      peer_inc->InsertBatch(peer_xs);
      peer_scr->InsertBatch(peer_xs);
      (void)Answers(*peer_inc, queries);  // fit the peers before merging
      (void)Answers(*peer_scr, queries);
      ASSERT_TRUE(incremental->MergeFrom(*peer_inc).ok());
      ASSERT_TRUE(scratch->MergeFrom(*peer_scr).ok());
      EXPECT_EQ(Answers(*incremental, queries), Answers(*scratch, queries));
      const std::vector<double> more = UnitStream(100, 300);
      incremental->InsertBatch(more);
      scratch->InsertBatch(more);
      EXPECT_EQ(Answers(*incremental, queries), Answers(*scratch, queries));
    }
  }
}

// ---------------------------------------------------------------------------
// ForceRefit() quiesces any registered estimator: idempotent, and answers
// afterwards match the lazily refreshed ones an untouched twin gives at the
// same count once its own refresh runs at full count.
// ---------------------------------------------------------------------------

TEST(RefitEquivalenceTest, ForceRefitIsIdempotentAndAnswerPreserving) {
  const std::vector<selectivity::Query> queries = Workload(17, 64);
  for (const std::string& tag :
       selectivity::EstimatorRegistry::Global().Tags()) {
    SCOPED_TRACE(tag);
    std::unique_ptr<selectivity::SelectivityEstimator> quiesced =
        Make(SpecFor(tag, selectivity::RefitMode::kIncremental));
    // 1000 is NOT a multiple of refit_interval: the forced refit below runs
    // at a count the lazy cadence would not have fitted at.
    quiesced->InsertBatch(UnitStream(18, 1000));
    quiesced->ForceRefit();
    const std::vector<double> first = Answers(*quiesced, queries);
    quiesced->ForceRefit();  // idempotent: fitted at current count already
    EXPECT_EQ(Answers(*quiesced, queries), first);
  }
}

// ---------------------------------------------------------------------------
// Mid-refit-interval snapshot save -> restore -> continue stays bitwise
// equal to the uninterrupted run, in both modes, for the refit-carrying
// estimators the tentpole touched.
// ---------------------------------------------------------------------------

TEST(RefitEquivalenceTest, MidIntervalSnapshotRestoreContinuesBitIdentically) {
  const std::vector<selectivity::Query> queries = Workload(27, 96);
  const std::vector<double> head = UnitStream(28, 1000);  // mid-interval count
  const std::vector<double> tail = UnitStream(29, 700);
  for (const char* tag :
       {"kde-rot", "equi-depth", "wavelet-cv", "haar-synopsis", "sharded"}) {
    SCOPED_TRACE(tag);
    for (const selectivity::RefitMode mode :
         {selectivity::RefitMode::kIncremental,
          selectivity::RefitMode::kScratch}) {
      SCOPED_TRACE(mode == selectivity::RefitMode::kIncremental
                       ? "incremental"
                       : "scratch");
      std::unique_ptr<selectivity::SelectivityEstimator> live =
          Make(SpecFor(tag, mode));
      live->InsertBatch(head);
      (void)Answers(*live, queries);  // fit some caches pre-save

      std::unique_ptr<selectivity::SelectivityEstimator> restored =
          CloneViaSnapshotRoundTrip(*live);
      EXPECT_EQ(Answers(*restored, queries), Answers(*live, queries));

      live->InsertBatch(tail);
      restored->InsertBatch(tail);
      EXPECT_EQ(Answers(*restored, queries), Answers(*live, queries));
    }
  }
}

// ---------------------------------------------------------------------------
// Sharded engine: the delta-refreshed merged view (per-replica high-water
// tail merges + one forced refit) answers bit-identically to the from-zero
// rebuild, across shard and pool widths, for both a buffer inner type (KDE:
// tail-merge path) and an additive-sum inner type (wavelet sketch: full
// re-merge fallback). ExtractMergedView must agree too.
// ---------------------------------------------------------------------------

TEST(RefitEquivalenceTest, ShardedDeltaRefreshMatchesFullRebuild) {
  const std::vector<selectivity::Query> queries = Workload(37, 96);
  for (const char* inner : {"kde-rot", "equi-depth", "wavelet-cv"}) {
    SCOPED_TRACE(inner);
    for (const size_t shards : {1u, 2u, 5u}) {
      SCOPED_TRACE(shards);
      selectivity::EstimatorSpec spec =
          SpecFor("sharded", selectivity::RefitMode::kIncremental);
      spec.sharded_inner_tag = inner;
      spec.shards = shards;
      std::unique_ptr<selectivity::SelectivityEstimator> incremental =
          Make(spec);
      spec.refit_mode = selectivity::RefitMode::kScratch;
      std::unique_ptr<selectivity::SelectivityEstimator> scratch = Make(spec);

      size_t offset = 0;
      for (const size_t chunk : kChunks) {
        const std::vector<double> xs = UnitStream(41 + offset, chunk);
        incremental->InsertBatch(xs);
        scratch->InsertBatch(xs);
        offset += chunk;
        EXPECT_EQ(Answers(*incremental, queries), Answers(*scratch, queries))
            << "diverged after " << offset << " inserts";
      }

      auto* inc_engine =
          static_cast<selectivity::ShardedSelectivityEstimator*>(
              incremental.get());
      auto* scr_engine =
          static_cast<selectivity::ShardedSelectivityEstimator*>(
              scratch.get());
      const std::unique_ptr<selectivity::SelectivityEstimator> inc_view =
          inc_engine->ExtractMergedView();
      const std::unique_ptr<selectivity::SelectivityEstimator> scr_view =
          scr_engine->ExtractMergedView();
      EXPECT_EQ(Answers(*inc_view, queries), Answers(*scr_view, queries));

      // Extraction must not disturb the engines' own view or pacing state:
      // a mid-refresh-interval insert+query schedule after the extract stays
      // bitwise-equal across modes (both engines keep serving equally stale
      // views until the same pacing threshold).
      const std::vector<double> more = UnitStream(43, 100);
      incremental->InsertBatch(more);
      scratch->InsertBatch(more);
      EXPECT_EQ(Answers(*incremental, queries), Answers(*scratch, queries))
          << "post-extract divergence";
    }
  }
}

TEST(RefitEquivalenceTest, ShardedAnswersIdenticalAcrossPoolWidths) {
  const std::vector<selectivity::Query> queries = Workload(47, 96);
  const std::vector<double> xs = UnitStream(48, 5000);
  std::vector<std::vector<double>> per_pool;
  for (const int threads : {1, 3}) {
    parallel::ThreadPool pool(threads);
    selectivity::EstimatorSpec spec =
        SpecFor("sharded", selectivity::RefitMode::kIncremental);
    spec.pool = &pool;
    std::unique_ptr<selectivity::SelectivityEstimator> engine = Make(spec);
    engine->InsertBatch(xs);
    per_pool.push_back(Answers(*engine, queries));
  }
  EXPECT_EQ(per_pool[0], per_pool[1]);
}

}  // namespace
}  // namespace wde
