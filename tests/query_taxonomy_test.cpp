// Contract tests for the typed query taxonomy and the declarative estimator
// specs: every kind's documented lowering onto the range primitive (bitwise,
// for every estimator — overrides with cheaper per-kind paths must be
// indistinguishable from the lowering), the interface-level normalization
// (NaN parameters answer 0.0, inverted ranges swap, quantile levels clamp),
// CDF/quantile round-trip consistency, and MakeEstimator building every
// registered tag from one EstimatorSpec description.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "selectivity/estimator_registry.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/selectivity_estimator.hpp"
#include "serving/estimator_service.hpp"
#include "stats/rng.hpp"

namespace wde {
namespace selectivity {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
const double kNan = std::nan("");

// One estimator per registered tag, built declaratively. Moderate sizes keep
// the suite fast while giving quantiles and CDFs enough resolution.
std::vector<std::unique_ptr<SelectivityEstimator>> MakeAllEstimators() {
  std::vector<std::unique_ptr<SelectivityEstimator>> all;
  for (const std::string& tag : EstimatorRegistry::Global().Tags()) {
    EstimatorSpec spec;
    spec.tag = tag;
    // Every tag builds at its native dimensionality (factories reject any
    // other value, pinned in SpecValidationRejectsBadFields below).
    spec.dims = EstimatorRegistry::Global().NativeDims(tag);
    spec.buckets = 64;
    spec.grid_log2 = 8;
    spec.budget = 48;
    spec.j_max = 8;
    spec.refit_interval = 512;
    spec.capacity = 512;
    spec.shards = 3;
    spec.block_size = 64;
    spec.sharded_inner_tag = "equi-width";
    Result<std::unique_ptr<SelectivityEstimator>> est = MakeEstimator(spec);
    WDE_CHECK(est.ok(), "every registered tag must build from a spec");
    all.push_back(std::move(est).value());
  }
  return all;
}

std::vector<std::unique_ptr<SelectivityEstimator>> MakeIngestedEstimators(
    uint64_t seed, size_t n) {
  std::vector<std::unique_ptr<SelectivityEstimator>> all = MakeAllEstimators();
  stats::Rng rng(seed);
  std::vector<double> values(n);
  for (double& v : values) v = rng.UniformDouble();
  for (auto& est : all) est->InsertBatch(values);
  return all;
}

TEST(QueryTaxonomyTest, SpecBuildsEveryRegisteredTag) {
  const std::vector<std::string> tags = EstimatorRegistry::Global().Tags();
  ASSERT_GE(tags.size(), 7u);
  std::vector<std::unique_ptr<SelectivityEstimator>> all = MakeAllEstimators();
  ASSERT_EQ(all.size(), tags.size());
  for (size_t i = 0; i < tags.size(); ++i) {
    ASSERT_NE(all[i], nullptr) << tags[i];
    // The spec tag IS the snapshot tag: one string names the estimator in
    // construction and on the wire.
    EXPECT_STREQ(all[i]->snapshot_type_tag(), tags[i].c_str());
  }
}

TEST(QueryTaxonomyTest, SpecValidationRejectsBadFields) {
  EstimatorSpec spec;
  spec.tag = "no-such-estimator";
  EXPECT_FALSE(MakeEstimator(spec).ok());

  spec = EstimatorSpec{};
  spec.tag = "equi-width";
  spec.buckets = 0;
  EXPECT_FALSE(MakeEstimator(spec).ok());

  spec = EstimatorSpec{};
  spec.tag = "equi-depth";
  spec.domain_lo = 1.0;
  spec.domain_hi = 0.0;
  EXPECT_FALSE(MakeEstimator(spec).ok());

  spec = EstimatorSpec{};
  spec.tag = "kde-rot";
  spec.refit_interval = 0;
  EXPECT_FALSE(MakeEstimator(spec).ok());

  spec = EstimatorSpec{};
  spec.tag = "reservoir";
  spec.capacity = 0;
  EXPECT_FALSE(MakeEstimator(spec).ok());

  spec = EstimatorSpec{};
  spec.tag = "haar-synopsis";
  spec.grid_log2 = 30;
  EXPECT_FALSE(MakeEstimator(spec).ok());

  spec = EstimatorSpec{};
  spec.tag = "wavelet-cv";
  spec.filter = "not-a-filter";
  EXPECT_FALSE(MakeEstimator(spec).ok());

  spec = EstimatorSpec{};
  spec.tag = "sharded";
  spec.sharded_inner_tag = "sharded";
  EXPECT_FALSE(MakeEstimator(spec).ok());

  // Every non-sharded builtin is mergeable (the reservoir via its weighted
  // union), so any of them is a valid sharded prototype.
  spec = EstimatorSpec{};
  spec.tag = "sharded";
  spec.sharded_inner_tag = "reservoir";
  EXPECT_TRUE(MakeEstimator(spec).ok());

  // Dimensionality is validated, not inferred: a 2-D tag refuses the default
  // dims = 1, a 1-D tag refuses dims = 2, and the axis-1 domain of a 2-D tag
  // must be a real interval.
  spec = EstimatorSpec{};
  spec.tag = "kde2d-prod";
  EXPECT_FALSE(MakeEstimator(spec).ok());  // dims left at 1
  spec.dims = 2;
  EXPECT_TRUE(MakeEstimator(spec).ok());
  spec.domain2_lo = 1.0;
  spec.domain2_hi = 0.0;
  EXPECT_FALSE(MakeEstimator(spec).ok());

  spec = EstimatorSpec{};
  spec.tag = "grid2d";
  EXPECT_FALSE(MakeEstimator(spec).ok());  // dims left at 1
  spec.dims = 2;
  EXPECT_TRUE(MakeEstimator(spec).ok());
  spec.grid_log2 = 11;
  EXPECT_FALSE(MakeEstimator(spec).ok());

  spec = EstimatorSpec{};
  spec.tag = "equi-width";
  spec.dims = 2;
  EXPECT_FALSE(MakeEstimator(spec).ok());

  spec = EstimatorSpec{};
  spec.tag = "kde2d-prod";
  spec.dims = 2;
  spec.kde2d_alpha = 1.5;
  EXPECT_FALSE(MakeEstimator(spec).ok());

  // A sharded 2-D prototype needs block_size aligned to whole observations.
  spec = EstimatorSpec{};
  spec.tag = "sharded";
  spec.sharded_inner_tag = "grid2d";
  spec.dims = 2;
  spec.block_size = 63;
  EXPECT_FALSE(MakeEstimator(spec).ok());
  spec.block_size = 64;
  EXPECT_TRUE(MakeEstimator(spec).ok());
}

TEST(QueryTaxonomyTest, EveryKindLowersOntoTheRangePrimitive) {
  // The documented lowering, asserted bitwise against the legacy range entry
  // point for every estimator — including the ones with cheaper per-kind
  // override paths (prefix sums, windowed kernel CDF, batched signed-CDF).
  for (auto& est : MakeIngestedEstimators(1201, 4000)) {
    stats::Rng rng(7);
    for (int rep = 0; rep < 40; ++rep) {
      const double x = rng.Uniform(-0.1, 1.1);
      EXPECT_EQ(est->Answer(Query::Less(x)), est->EstimateRange(-kInf, x))
          << est->name() << " x=" << x;
      EXPECT_EQ(est->Answer(Query::Cdf(x)), est->EstimateRange(-kInf, x))
          << est->name() << " x=" << x;
      EXPECT_EQ(est->Answer(Query::Greater(x)), est->EstimateRange(x, kInf))
          << est->name() << " x=" << x;
      const double half = 0.5 * est->EqualityWidth();
      EXPECT_EQ(est->Answer(Query::Point(x)),
                est->EstimateRange(x - half, x + half))
          << est->name() << " x=" << x;
      const double y = rng.Uniform(-0.1, 1.1);
      EXPECT_EQ(est->Answer(Query::Range(x, y)), est->EstimateRange(x, y))
          << est->name();
    }
  }
}

TEST(QueryTaxonomyTest, NanParametersAnswerZeroForEveryKind) {
  for (auto& est : MakeIngestedEstimators(1301, 1000)) {
    EXPECT_EQ(est->Answer(Query::Range(kNan, 0.5)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Range(0.2, kNan)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Range(kNan, kNan)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Point(kNan)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Less(kNan)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Greater(kNan)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Cdf(kNan)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Quantile(kNan)), 0.0) << est->name();
    // The legacy entry points inherit the same normalization.
    EXPECT_EQ(est->EstimateRange(kNan, 0.5), 0.0) << est->name();
    EXPECT_EQ(est->EstimateRange(0.5, kNan), 0.0) << est->name();
    const std::vector<RangeQuery> queries{{0.2, 0.8}, {kNan, 0.5}, {0.1, 0.9}};
    std::vector<double> answers(queries.size());
    est->EstimateBatch(queries, answers);
    EXPECT_EQ(answers[0], est->EstimateRange(0.2, 0.8)) << est->name();
    EXPECT_EQ(answers[1], 0.0) << est->name();
    EXPECT_EQ(answers[2], est->EstimateRange(0.1, 0.9)) << est->name();
  }
}

TEST(QueryTaxonomyTest, InvertedRangesAndOutOfRangeQuantilesNormalize) {
  for (auto& est : MakeIngestedEstimators(1401, 2000)) {
    EXPECT_EQ(est->Answer(Query::Range(0.8, 0.2)),
              est->Answer(Query::Range(0.2, 0.8)))
        << est->name();
    EXPECT_EQ(est->Answer(Query::Quantile(-0.5)),
              est->Answer(Query::Quantile(0.0)))
        << est->name();
    EXPECT_EQ(est->Answer(Query::Quantile(2.0)),
              est->Answer(Query::Quantile(1.0)))
        << est->name();
  }
}

TEST(QueryTaxonomyTest, MultiDimKindsNormalizeLikeTheOneDimensionalOnes) {
  // The interface-level normalization of the new kinds, pinned for EVERY
  // registered estimator (1-D estimators answer rect/conditional 0.0, but
  // must normalize — not crash or UB — on hostile parameters all the same):
  // any NaN endpoint answers 0.0, inverted bounds swap per axis
  // independently, and ±inf endpoints are legal limits.
  for (auto& est : MakeIngestedEstimators(2101, 4000)) {
    // NaN in any of the four rect endpoints answers 0.0.
    EXPECT_EQ(est->Answer(Query::Rect(kNan, 0.8, 0.2, 0.8)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Rect(0.2, kNan, 0.2, 0.8)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Rect(0.2, 0.8, kNan, 0.8)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Rect(0.2, 0.8, 0.2, kNan)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Marginal(0, kNan, 0.8)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Marginal(1, 0.2, kNan)), 0.0) << est->name();
    EXPECT_EQ(est->Answer(Query::Conditional(kNan, 0.8, 0.2, 0.8)), 0.0)
        << est->name();
    EXPECT_EQ(est->Answer(Query::Conditional(0.2, 0.8, 0.2, kNan)), 0.0)
        << est->name();
    // Inverted bounds swap per axis, each axis independently.
    EXPECT_EQ(est->Answer(Query::Rect(0.8, 0.2, 0.3, 0.7)),
              est->Answer(Query::Rect(0.2, 0.8, 0.3, 0.7)))
        << est->name();
    EXPECT_EQ(est->Answer(Query::Rect(0.2, 0.8, 0.7, 0.3)),
              est->Answer(Query::Rect(0.2, 0.8, 0.3, 0.7)))
        << est->name();
    EXPECT_EQ(est->Answer(Query::Rect(0.8, 0.2, 0.7, 0.3)),
              est->Answer(Query::Rect(0.2, 0.8, 0.3, 0.7)))
        << est->name();
    EXPECT_EQ(est->Answer(Query::Marginal(1, 0.7, 0.3)),
              est->Answer(Query::Marginal(1, 0.3, 0.7)))
        << est->name();
    EXPECT_EQ(est->Answer(Query::Conditional(0.8, 0.2, 0.7, 0.3)),
              est->Answer(Query::Conditional(0.2, 0.8, 0.3, 0.7)))
        << est->name();
    // ±inf endpoints are legal limits; the all-space rect is the total mass.
    const double total = est->Answer(Query::Rect(-kInf, kInf, -kInf, kInf));
    if (est->dims() >= 2) {
      EXPECT_GE(total, 0.9) << est->name();
      EXPECT_LE(total, 1.0 + 1e-9) << est->name();
    } else {
      EXPECT_EQ(total, 0.0) << est->name();
    }
  }
}

TEST(QueryTaxonomyTest, MultiDimKindsLowerAsDocumented) {
  for (auto& est : MakeIngestedEstimators(2201, 4000)) {
    // Axis-0 marginal IS the range primitive — for every estimator, 1-D
    // included; a marginal on an axis the estimator does not model is 0.0.
    stats::Rng rng(11);
    for (int rep = 0; rep < 20; ++rep) {
      double a = rng.Uniform(-0.1, 1.1);
      double b = rng.Uniform(-0.1, 1.1);
      if (b < a) std::swap(a, b);
      EXPECT_EQ(est->Answer(Query::Marginal(0, a, b)), est->EstimateRange(a, b))
          << est->name();
    }
    EXPECT_EQ(est->Answer(Query::Marginal(7, 0.2, 0.8)), 0.0) << est->name();
    if (est->dims() < 2) {
      EXPECT_EQ(est->Answer(Query::Rect(0.2, 0.8, 0.2, 0.8)), 0.0)
          << est->name();
      EXPECT_EQ(est->Answer(Query::Conditional(0.2, 0.8, 0.2, 0.8)), 0.0)
          << est->name();
      continue;
    }
    // 2-D: a rect unbounded on axis 1 is the axis-0 marginal, a rect
    // unbounded on axis 0 is the axis-1 marginal, and the conditional is the
    // documented clamped ratio.
    EXPECT_EQ(est->Answer(Query::Rect(0.2, 0.8, -kInf, kInf)),
              est->Answer(Query::Marginal(0, 0.2, 0.8)))
        << est->name();
    EXPECT_EQ(est->Answer(Query::Rect(-kInf, kInf, 0.2, 0.8)),
              est->Answer(Query::Marginal(1, 0.2, 0.8)))
        << est->name();
    const double joint = est->Answer(Query::Rect(0.2, 0.8, 0.3, 0.7));
    const double given = est->Answer(Query::Marginal(1, 0.3, 0.7));
    const double conditional = est->Answer(Query::Conditional(0.2, 0.8, 0.3, 0.7));
    if (given > 0.0) {
      EXPECT_EQ(conditional, std::clamp(joint / given, 0.0, 1.0)) << est->name();
    } else {
      EXPECT_EQ(conditional, 0.0) << est->name();
    }
    // Conditioning on an empty axis-1 slice answers 0.0, not a 0/0 NaN.
    EXPECT_EQ(est->Answer(Query::Conditional(0.2, 0.8, 9.0, 9.5)), 0.0)
        << est->name();
  }
}

TEST(QueryTaxonomyTest, InfiniteEndpointsAreLegalRangeLimits) {
  for (auto& est : MakeIngestedEstimators(1501, 2000)) {
    const double total = est->EstimateRange(-kInf, kInf);
    EXPECT_GE(total, 0.9) << est->name();
    EXPECT_LE(total, 1.0 + 1e-9) << est->name();
    EXPECT_EQ(est->Answer(Query::Less(kInf)), total) << est->name();
  }
}

TEST(QueryTaxonomyTest, QuantilesLandInsideTheDomainAndMatchUniformTruth) {
  for (auto& est : MakeIngestedEstimators(1601, 6000)) {
    const RangeQuery domain = est->Domain();
    for (double p : {0.0, 0.1, 0.5, 0.9, 1.0}) {
      const double q = est->Answer(Query::Quantile(p));
      EXPECT_GE(q, domain.lo) << est->name() << " p=" << p;
      EXPECT_LE(q, domain.hi) << est->name() << " p=" << p;
    }
    // Uniform[0, 1] data: the p-quantile is p up to estimator bias.
    for (double p : {0.2, 0.5, 0.8}) {
      EXPECT_NEAR(est->Answer(Query::Quantile(p)), p, 0.08)
          << est->name() << " p=" << p;
    }
  }
}

TEST(QueryTaxonomyTest, CdfQuantileRoundTrip) {
  // Answer(Cdf(Answer(Quantile(p)))) ≈ p: the tolerance covers estimator
  // granularity (reservoir jumps of 1/sample, histogram bucket fractions)
  // and the signed wavelet estimate's local wiggle.
  for (auto& est : MakeIngestedEstimators(1701, 6000)) {
    for (double p : {0.1, 0.25, 0.5, 0.75, 0.9}) {
      const double quantile = est->Answer(Query::Quantile(p));
      const double round_trip = est->Answer(Query::Cdf(quantile));
      EXPECT_NEAR(round_trip, p, 0.05) << est->name() << " p=" << p;
    }
  }
}

TEST(QueryTaxonomyTest, EmptyEstimatorsAnswerZeroForEveryKind) {
  for (auto& est : MakeAllEstimators()) {
    const std::vector<Query> queries{
        Query::Range(0.2, 0.8), Query::Point(0.5), Query::Less(0.5),
        Query::Greater(0.5),    Query::Cdf(0.5),   Query::Quantile(0.5)};
    std::vector<double> answers(queries.size());
    est->Answer(queries, answers);
    for (size_t i = 0; i < answers.size(); ++i) {
      EXPECT_EQ(answers[i], 0.0) << est->name() << " kind " << i;
    }
  }
}

TEST(QueryTaxonomyTest, EqualityWidthReflectsEstimatorResolution) {
  for (auto& est : MakeAllEstimators()) {
    EXPECT_GE(est->EqualityWidth(), 0.0) << est->name();
    EXPECT_LT(est->EqualityWidth(), 1.0) << est->name();
  }
  // Spot-check the documented widths: one bucket / one grid cell / one
  // finest-level cell.
  EstimatorSpec spec;
  spec.tag = "equi-width";
  spec.buckets = 32;
  EXPECT_DOUBLE_EQ((*MakeEstimator(spec))->EqualityWidth(), 1.0 / 32.0);
  spec = EstimatorSpec{};
  spec.tag = "haar-synopsis";
  spec.grid_log2 = 8;
  EXPECT_DOUBLE_EQ((*MakeEstimator(spec))->EqualityWidth(), 1.0 / 256.0);
  spec = EstimatorSpec{};
  spec.tag = "wavelet-cv";
  spec.j_max = 8;
  spec.table_levels = 6;
  EXPECT_DOUBLE_EQ((*MakeEstimator(spec))->EqualityWidth(), 1.0 / 256.0);
}

TEST(QueryTaxonomyTest, SpecBuiltEstimatorsSnapshotRoundTrip) {
  // The spec ⇄ snapshot-tag relationship end to end: build from a spec,
  // ingest, snapshot, restore through the registry (which rebuilds the shell
  // from the SAME factory), and require bitwise-identical mixed-kind answers.
  stats::Rng rng(1801);
  std::vector<double> values(3000);
  for (double& v : values) v = rng.UniformDouble();
  const std::vector<Query> queries = MixedQueryWorkload(rng, 64, 0.0, 1.0);
  for (auto& est : MakeAllEstimators()) {
    est->InsertBatch(values);
    io::VectorSink sink;
    ASSERT_TRUE(SaveEstimatorSnapshot(*est, sink).ok()) << est->name();
    io::SpanSource source(sink.bytes());
    Result<std::unique_ptr<SelectivityEstimator>> restored =
        LoadEstimatorSnapshot(source);
    ASSERT_TRUE(restored.ok()) << est->name();
    std::vector<double> want(queries.size()), got(queries.size());
    est->Answer(queries, want);
    (*restored)->Answer(queries, got);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(got[i], want[i]) << est->name() << " query " << i;
    }
  }
}

TEST(QueryTaxonomyTest, ServingCacheNeverChangesAnAnswerForAnyTag) {
  // Property over the whole registry: wrapping any spec-built estimator in
  // the serving engine with the result cache enabled answers every mixed-kind
  // workload — dirty queries included — bitwise identically to the
  // cache-disabled service. Two passes per service so the second pass is
  // served from cache, which is exactly where a key-normalization or
  // epoch-tag bug would show up.
  stats::Rng data_rng(1901);
  std::vector<double> values(3000);
  for (double& v : values) v = data_rng.UniformDouble();
  stats::Rng query_rng(1902);
  std::vector<Query> queries = MixedQueryWorkload(query_rng, 96, 0.0, 1.0);
  queries.push_back(Query::Range(0.8, 0.2));  // inverted
  queries.push_back(Query::Range(kNan, 0.5));
  queries.push_back(Query::Point(kNan));
  queries.push_back(Query::Quantile(-0.5));
  queries.push_back(Query::Quantile(2.0));
  queries.push_back(Query::Less(-kInf));
  queries.push_back(Query::Greater(kInf));
  // Multi-dimensional kinds — clean, inverted, NaN, unbounded — so the cache
  // key provably covers the c/d/axis fields on every tag (1-D tags answer
  // them 0.0, which must still round-trip the cache unchanged).
  queries.push_back(Query::Rect(0.2, 0.8, 0.3, 0.7));
  queries.push_back(Query::Rect(0.8, 0.2, 0.7, 0.3));
  queries.push_back(Query::Rect(0.2, 0.8, kNan, 0.7));
  queries.push_back(Query::Rect(-kInf, kInf, -kInf, kInf));
  queries.push_back(Query::Marginal(0, 0.2, 0.8));
  queries.push_back(Query::Marginal(1, 0.2, 0.8));
  queries.push_back(Query::Marginal(7, 0.2, 0.8));
  queries.push_back(Query::Conditional(0.2, 0.8, 0.3, 0.7));
  queries.push_back(Query::Conditional(0.2, 0.8, 9.0, 9.5));

  for (const std::string& tag : EstimatorRegistry::Global().Tags()) {
    EstimatorSpec spec;
    spec.tag = tag;
    spec.dims = EstimatorRegistry::Global().NativeDims(tag);
    spec.buckets = 64;
    spec.grid_log2 = 8;
    spec.budget = 48;
    spec.j_max = 8;
    spec.refit_interval = 512;
    spec.capacity = 512;
    spec.shards = 3;
    spec.block_size = 64;
    spec.sharded_inner_tag = "equi-width";

    serving::ServiceOptions cached;
    cached.publish_interval = 0;
    cached.cache_shards = 4;
    cached.cache_slots_per_shard = 512;
    serving::ServiceOptions uncached = cached;
    uncached.cache_shards = 0;
    Result<std::unique_ptr<serving::EstimatorService>> with_cache =
        serving::EstimatorService::Create(spec, cached);
    Result<std::unique_ptr<serving::EstimatorService>> without_cache =
        serving::EstimatorService::Create(spec, uncached);
    ASSERT_TRUE(with_cache.ok()) << tag;
    ASSERT_TRUE(without_cache.ok()) << tag;
    (*with_cache)->InsertBatch(values);
    (*without_cache)->InsertBatch(values);
    (*with_cache)->Publish();
    (*without_cache)->Publish();

    std::vector<double> want(queries.size());
    (*without_cache)->Answer(queries, want);
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<double> got(queries.size(), -1.0);
      (*with_cache)->Answer(queries, got);
      for (size_t i = 0; i < queries.size(); ++i) {
        // Bitwise comparison (EXPECT_EQ on doubles) on purpose: the cache
        // must be invisible, not merely close.
        EXPECT_EQ(got[i], want[i]) << tag << " query " << i << " pass " << pass;
      }
    }
    EXPECT_GT((*with_cache)->cache_stats().hits, 0u) << tag;
  }
}

}  // namespace
}  // namespace selectivity
}  // namespace wde
