// Tests for the extension modules: the paper's §4.4 model families
// (LARCH(∞), ARCH, generic two-sided linear processes), block-bootstrap
// confidence bands, and the WaveLab-style binned/DWT fast fitting path.
#include <gtest/gtest.h>

#include <cmath>

#include "core/binned.hpp"
#include "core/confidence.hpp"
#include "core/estimator.hpp"
#include "processes/arch_process.hpp"
#include "processes/larch_process.hpp"
#include "processes/linear_process.hpp"
#include "processes/target_density.hpp"
#include "stats/autocovariance.hpp"
#include "stats/block_bootstrap.hpp"
#include "stats/descriptive.hpp"
#include "stats/loss.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace {

const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

// ------------------------------------------------------------------- LARCH

TEST(LarchTest, StationaryAndDeterministic) {
  const processes::LarchProcess process;
  stats::Rng a(3);
  stats::Rng b(3);
  const std::vector<double> pa = process.Path(256, a);
  const std::vector<double> pb = process.Path(256, b);
  EXPECT_EQ(pa, pb);
  EXPECT_EQ(pa.size(), 256u);
}

TEST(LarchTest, CenteredWithBoundedValues) {
  const processes::LarchProcess process;
  stats::Rng rng(5);
  const std::vector<double> path = process.Path(40000, rng);
  EXPECT_NEAR(stats::Mean(path), 0.0, 0.02);  // E X = E ξ · E(...) = 0
  // |X| <= |ξ| (intercept + Σ|a_j| sup|X|): crude bound ~0.65 here.
  for (double x : path) ASSERT_LT(std::fabs(x), 1.0);
}

TEST(LarchDeathTest, RejectsExplosiveCoefficients) {
  EXPECT_DEATH(processes::LarchProcess(1.0, 9.0, 0.9), "stationarity");
}

// -------------------------------------------------------------------- ARCH

TEST(ArchTest, StationaryVarianceMatchesTheory) {
  const processes::ArchProcess process(0.2, 0.5);
  EXPECT_NEAR(process.StationaryVariance(), 0.4, 1e-12);
  stats::Rng rng(7);
  const std::vector<double> path = process.Path(60000, rng);
  EXPECT_NEAR(stats::Variance(path), 0.4, 0.05);
}

TEST(ArchTest, UncorrelatedLevelsCorrelatedSquares) {
  // The ARCH signature: Corr(X_0, X_r) = 0 but Corr(X²_0, X²_r) = α^r.
  const processes::ArchProcess process(0.2, 0.6);
  stats::Rng rng(9);
  const std::vector<double> path = process.Path(120000, rng);
  const std::vector<double> level_acf = stats::Autocorrelation(path, 3);
  for (int r = 1; r <= 3; ++r) {
    EXPECT_NEAR(level_acf[static_cast<size_t>(r)], 0.0, 0.03) << "lag " << r;
  }
  std::vector<double> squares(path.size());
  for (size_t i = 0; i < path.size(); ++i) squares[i] = path[i] * path[i];
  const std::vector<double> square_acf = stats::Autocorrelation(squares, 2);
  EXPECT_GT(square_acf[1], 0.3);
  EXPECT_GT(square_acf[2], 0.1);
}

// --------------------------------------------------------- two-sided linear

TEST(TwoSidedLinearTest, Case3WeightsReproduceKnownCovariance) {
  // scale 1/3, decay 1/2, Bernoulli innovations = the paper's Case 3 model;
  // its lag-0 theoretical covariance is Var((U+U'+ξ)/3) = (1/12+1/12+1/4)/9.
  const processes::TwoSidedLinearProcess process(
      1.0 / 3.0, 0.5, processes::TwoSidedLinearProcess::Innovation::kBernoulli);
  EXPECT_NEAR(process.TheoreticalAutocovariance(0), (1.0 / 12 + 1.0 / 12 + 0.25) / 9.0,
              1e-12);
}

class LinearInnovationSweep
    : public testing::TestWithParam<processes::TwoSidedLinearProcess::Innovation> {};

TEST_P(LinearInnovationSweep, SampleAutocovarianceMatchesTheory) {
  const processes::TwoSidedLinearProcess process(0.5, 0.6, GetParam());
  stats::Rng rng(11);
  const std::vector<double> path = process.Path(60000, rng);
  const std::vector<double> gamma = stats::Autocovariance(path, 4);
  for (int r = 0; r <= 4; ++r) {
    const double expected = process.TheoreticalAutocovariance(r);
    EXPECT_NEAR(gamma[static_cast<size_t>(r)], expected, 0.05 * expected + 0.01)
        << "lag " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Innovations, LinearInnovationSweep,
    testing::Values(processes::TwoSidedLinearProcess::Innovation::kGaussian,
                    processes::TwoSidedLinearProcess::Innovation::kUniform,
                    processes::TwoSidedLinearProcess::Innovation::kBernoulli));

// --------------------------------------------------------------- bootstrap

TEST(BlockBootstrapTest, DefaultBlockLengthRule) {
  EXPECT_EQ(stats::DefaultBlockLength(1000), 10u);
  EXPECT_EQ(stats::DefaultBlockLength(1), 1u);
  EXPECT_EQ(stats::DefaultBlockLength(1024), 11u);
}

TEST(BlockBootstrapTest, ResamplePreservesLengthAndValues) {
  const std::vector<double> data{1.0, 2.0, 3.0, 4.0, 5.0};
  stats::Rng rng(13);
  const std::vector<double> resample =
      stats::CircularBlockBootstrapResample(data, 2, rng);
  EXPECT_EQ(resample.size(), data.size());
  for (double v : resample) {
    EXPECT_TRUE(std::find(data.begin(), data.end(), v) != data.end());
  }
}

TEST(BlockBootstrapTest, BlocksPreserveAdjacency) {
  // With block length 3 on strictly increasing data, most consecutive pairs
  // in the resample differ by exactly 1 (within-block neighbours).
  std::vector<double> data(100);
  for (size_t i = 0; i < data.size(); ++i) data[i] = static_cast<double>(i);
  stats::Rng rng(17);
  const std::vector<double> resample =
      stats::CircularBlockBootstrapResample(data, 3, rng);
  size_t adjacent = 0;
  for (size_t i = 0; i + 1 < resample.size(); ++i) {
    adjacent += (std::fabs(resample[i + 1] - resample[i] - 1.0) < 1e-12 ||
                 std::fabs(resample[i + 1] - resample[i] + 99.0) < 1e-12);
  }
  EXPECT_GT(adjacent, resample.size() / 2);
}

TEST(ConfidenceBandTest, ValidatesOptions) {
  const std::vector<double> xs{0.1, 0.5, 0.9};
  core::ConfidenceBandOptions options;
  options.resamples = 3;
  EXPECT_FALSE(core::BootstrapConfidenceBand(Sym8Basis(), xs, options).ok());
  options = {};
  options.level = 1.5;
  EXPECT_FALSE(core::BootstrapConfidenceBand(Sym8Basis(), xs, options).ok());
}

TEST(ConfidenceBandTest, BandCoversTruthOnIidSample) {
  const processes::SineUniformMixtureDensity density;
  stats::Rng rng(19);
  std::vector<double> xs(1024);
  for (double& x : xs) x = density.InverseCdf(rng.UniformDouble());
  core::ConfidenceBandOptions options;
  options.resamples = 60;
  options.grid_points = 101;
  options.level = 0.90;
  options.block_length = 1;  // iid
  Result<core::ConfidenceBand> band =
      core::BootstrapConfidenceBand(Sym8Basis(), xs, options);
  ASSERT_TRUE(band.ok());
  EXPECT_EQ(band->grid.size(), 101u);
  // Band is ordered and non-degenerate.
  double total_width = 0.0;
  for (size_t i = 0; i < band->grid.size(); ++i) {
    EXPECT_LE(band->lower[i], band->upper[i] + 1e-12);
    total_width += band->upper[i] - band->lower[i];
  }
  EXPECT_GT(total_width, 0.0);
  // Percentile bands inherit smoothing bias, so demand good-but-not-nominal
  // pointwise coverage of the truth.
  const std::vector<double> truth = density.PdfOnGrid(101);
  EXPECT_GT(band->CoverageOf(truth), 0.6);
  // The center curve is the full-sample fit while the band tracks the
  // bootstrap distribution (whose mean carries resampling bias), so demand
  // substantial but not near-total coverage of the center.
  EXPECT_GT(band->CoverageOf(band->center), 0.6);
}

TEST(ConfidenceBandTest, WiderBlocksForDependentData) {
  // Smoke: the band machinery runs with dependent-data block lengths.
  stats::Rng rng(23);
  std::vector<double> xs(512);
  for (double& x : xs) x = rng.UniformDouble();
  core::ConfidenceBandOptions options;
  options.resamples = 20;
  options.grid_points = 33;
  options.block_length = 0;  // n^{1/3} rule
  Result<core::ConfidenceBand> band =
      core::BootstrapConfidenceBand(Sym8Basis(), xs, options);
  ASSERT_TRUE(band.ok());
  EXPECT_EQ(band->block_length, 8u);
}

// ------------------------------------------------------------- binned path

TEST(BinnedFitTest, ValidatesInput) {
  const wavelet::WaveletFilter filter = *wavelet::WaveletFilter::Symmlet(8);
  EXPECT_FALSE(core::BinnedWaveletFit::Fit(filter, {}, 2, 8).ok());
  const std::vector<double> xs{0.5};
  EXPECT_FALSE(core::BinnedWaveletFit::Fit(filter, xs, 5, 5).ok());
  EXPECT_FALSE(core::BinnedWaveletFit::Fit(filter, std::vector<double>{2.0}, 2, 8).ok());
}

TEST(BinnedFitTest, LevelEnergiesMatchExactPath) {
  // The periodized pyramid's translates are index-shifted relative to the
  // interval convention (non-symmetric filters have non-trivial phase), so
  // coefficients cannot be compared index by index. Level *energies*
  // Σ_k β̂²_{j,k} are alignment-free and must agree between the two paths —
  // both measure the detail content of the same sample at scale j.
  const processes::TruncatedGaussianMixtureDensity density =
      processes::TruncatedGaussianMixtureDensity::Bimodal();
  stats::Rng rng(29);
  std::vector<double> xs(4096);
  for (double& x : xs) x = density.InverseCdf(rng.UniformDouble());

  const wavelet::WaveletFilter filter = *wavelet::WaveletFilter::Symmlet(8);
  Result<core::BinnedWaveletFit> binned =
      core::BinnedWaveletFit::Fit(filter, xs, 2, 11);
  ASSERT_TRUE(binned.ok());
  Result<core::EmpiricalCoefficients> exact =
      core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 10);
  ASSERT_TRUE(exact.ok());
  exact->AddAll(xs);

  for (int j : {3, 4, 5, 6}) {
    double binned_energy = 0.0;
    for (int k = 0; k < (1 << j); ++k) {
      binned_energy += binned->BetaHat(j, k) * binned->BetaHat(j, k);
    }
    double exact_energy = 0.0;
    const wavelet::TranslationWindow window = Sym8Basis().LevelWindow(j);
    for (int k = window.lo; k <= window.hi; ++k) {
      exact_energy += exact->BetaHat(j, k) * exact->BetaHat(j, k);
    }
    EXPECT_GT(binned_energy, 0.5 * exact_energy) << "j=" << j;
    EXPECT_LT(binned_energy, 2.0 * exact_energy + 1e-4) << "j=" << j;
  }
}

TEST(BinnedFitTest, LinearReconstructionAccuracyMatchesExactEstimator) {
  // The two linear estimators live in slightly shifted approximation spaces,
  // so they differ pointwise by O(projection noise); what must match is the
  // estimation *accuracy*: both ISEs against the true (uniform) density are
  // small and of the same order.
  stats::Rng rng(31);
  std::vector<double> xs(2048);
  for (double& x : xs) x = rng.UniformDouble();

  const wavelet::WaveletFilter filter = *wavelet::WaveletFilter::Symmlet(8);
  Result<core::BinnedWaveletFit> binned =
      core::BinnedWaveletFit::Fit(filter, xs, 2, 10);
  ASSERT_TRUE(binned.ok());
  core::ThresholdSchedule keep_all;
  keep_all.j0 = 2;
  keep_all.lambda.assign(4, 0.0);  // keep levels 2..5
  Result<std::vector<double>> grid =
      binned->EstimateOnGrid(keep_all, core::ThresholdKind::kHard);
  ASSERT_TRUE(grid.ok());

  core::FitOptions options;
  options.j0 = 2;
  options.j_max = 5;
  Result<core::WaveletDensityFit> exact_fit =
      core::WaveletDensityFit::Fit(Sym8Basis(), xs, options);
  ASSERT_TRUE(exact_fit.ok());
  const core::WaveletEstimate exact = exact_fit->LinearEstimate(5);

  const std::vector<double> centers = binned->GridCenters();
  double binned_ise = 0.0;
  double exact_ise = 0.0;
  size_t counted = 0;
  for (size_t i = 0; i < centers.size(); ++i) {
    if (centers[i] < 0.05 || centers[i] > 0.95) continue;  // periodization zone
    const double db = (*grid)[i] - 1.0;
    const double de = exact.Evaluate(centers[i]) - 1.0;
    binned_ise += db * db;
    exact_ise += de * de;
    ++counted;
  }
  binned_ise /= static_cast<double>(counted);
  exact_ise /= static_cast<double>(counted);
  EXPECT_LT(binned_ise, 0.05);
  EXPECT_LT(exact_ise, 0.05);
  EXPECT_LT(binned_ise, 3.0 * exact_ise + 0.005);
}

TEST(BinnedFitTest, ThresholdingZeroesLevels) {
  stats::Rng rng(37);
  std::vector<double> xs(512);
  for (double& x : xs) x = rng.UniformDouble();
  const wavelet::WaveletFilter filter = *wavelet::WaveletFilter::Symmlet(8);
  Result<core::BinnedWaveletFit> binned =
      core::BinnedWaveletFit::Fit(filter, xs, 3, 9);
  ASSERT_TRUE(binned.ok());
  // An empty schedule kills every detail level -> reconstruction is the
  // projection onto V_{j0} and integrates to ~1.
  core::ThresholdSchedule kill;
  kill.j0 = 3;
  Result<std::vector<double>> grid =
      binned->EstimateOnGrid(kill, core::ThresholdKind::kHard);
  ASSERT_TRUE(grid.ok());
  double mass = 0.0;
  for (double v : *grid) mass += v;
  mass /= static_cast<double>(grid->size());
  EXPECT_NEAR(mass, 1.0, 0.02);
}

TEST(BinnedFitTest, MassIsPreserved) {
  const processes::SineUniformMixtureDensity density;
  stats::Rng rng(41);
  std::vector<double> xs(1024);
  for (double& x : xs) x = density.InverseCdf(rng.UniformDouble());
  const wavelet::WaveletFilter filter = *wavelet::WaveletFilter::Symmlet(8);
  Result<core::BinnedWaveletFit> binned =
      core::BinnedWaveletFit::Fit(filter, xs, 2, 10);
  ASSERT_TRUE(binned.ok());
  const core::ThresholdSchedule schedule = core::TheoreticalSchedule(1.0, 2, 9, 1024);
  Result<std::vector<double>> grid =
      binned->EstimateOnGrid(schedule, core::ThresholdKind::kSoft);
  ASSERT_TRUE(grid.ok());
  double mass = 0.0;
  for (double v : *grid) mass += v;
  mass /= static_cast<double>(grid->size());
  EXPECT_NEAR(mass, 1.0, 0.02);
}

}  // namespace
}  // namespace wde
