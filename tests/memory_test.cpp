// Tier-1 tests for the memory module (arena + snapshot fast path): canonical
// column layout, 64-byte alignment of every column, zero-initialization,
// copy-on-write sharing and first-mutation divergence, zero-copy borrowing
// from aligned images with keepalive (and the copy fallback), bitwise
// relocation, the ARN1 fast-state frame (round trip, absolute-offset
// alignment of the column region, hostile-input rejection), zero-copy chunk
// reads, the slicing-by-8 CRC's equivalence to the bytewise definition, and
// the mmap-backed FileSource. Run under ASan in CI.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <memory>
#include <numeric>
#include <span>
#include <string>
#include <vector>

#include "io/chunk.hpp"
#include "io/serialize.hpp"
#include "memory/arena.hpp"
#include "memory/fast_state.hpp"

namespace wde {
namespace {

using memory::Arena;
using memory::ColumnKind;
using memory::ColumnSpec;
using memory::kColumnAlignment;

bool Aligned(const void* p) {
  return reinterpret_cast<uintptr_t>(p) % kColumnAlignment == 0;
}

TEST(ColumnLayout, CanonicalOffsetsAndTotal) {
  const ColumnSpec specs[] = {{ColumnKind::kF64, 3},
                              {ColumnKind::kU8, 1},
                              {ColumnKind::kI64, 10}};
  uint64_t total = 0;
  auto columns = memory::ComputeColumnLayout(specs, &total);
  ASSERT_TRUE(columns.ok());
  ASSERT_EQ(columns->size(), 3u);
  EXPECT_EQ((*columns)[0].offset, 0u);
  EXPECT_EQ((*columns)[1].offset, 64u);   // 24 bytes rounded up
  EXPECT_EQ((*columns)[2].offset, 128u);  // 65 bytes rounded up
  EXPECT_EQ(total, 128u + 80u);           // unpadded end of the last column
}

TEST(ColumnLayout, EmptyAndZeroCountColumns) {
  uint64_t total = 1;
  auto none = memory::ComputeColumnLayout({}, &total);
  ASSERT_TRUE(none.ok());
  EXPECT_EQ(total, 0u);

  const ColumnSpec specs[] = {{ColumnKind::kF64, 0}, {ColumnKind::kU8, 5}};
  auto columns = memory::ComputeColumnLayout(specs, &total);
  ASSERT_TRUE(columns.ok());
  EXPECT_EQ((*columns)[0].offset, 0u);
  EXPECT_EQ((*columns)[1].offset, 0u);  // empty column consumes no space
  EXPECT_EQ(total, 5u);
}

TEST(ColumnLayout, RejectsOverflowingCounts) {
  const ColumnSpec specs[] = {{ColumnKind::kF64, UINT64_MAX / 4}};
  uint64_t total = 0;
  EXPECT_FALSE(memory::ComputeColumnLayout(specs, &total).ok());
}

TEST(Arena, CreateAlignsAndZeroInitializes) {
  const ColumnSpec specs[] = {{ColumnKind::kF64, 7},
                              {ColumnKind::kI64, 3},
                              {ColumnKind::kU8, 100}};
  Arena arena = Arena::Create(specs);
  EXPECT_TRUE(Aligned(arena.payload()));
  EXPECT_TRUE(Aligned(arena.F64(0).data()));
  EXPECT_TRUE(Aligned(arena.I64(1).data()));
  EXPECT_TRUE(Aligned(arena.U8(2).data()));
  for (double v : arena.F64(0)) EXPECT_EQ(v, 0.0);
  for (int64_t v : arena.I64(1)) EXPECT_EQ(v, 0);
  for (uint8_t v : arena.U8(2)) EXPECT_EQ(v, 0);
}

TEST(Arena, CopySharesUntilMutation) {
  const ColumnSpec specs[] = {{ColumnKind::kF64, 4}};
  Arena a = Arena::Create(specs);
  std::iota(a.MutableF64(0).begin(), a.MutableF64(0).end(), 1.0);

  Arena b = a;  // CoW share: publishing a view costs two pointer copies
  EXPECT_TRUE(a.shares_storage_with(b));
  EXPECT_EQ(a.payload(), b.payload());

  b.MutableF64(0)[2] = 99.0;  // first mutation un-shares
  EXPECT_FALSE(a.shares_storage_with(b));
  EXPECT_EQ(a.F64(0)[2], 3.0);
  EXPECT_EQ(b.F64(0)[2], 99.0);
  EXPECT_EQ(b.F64(0)[0], 1.0);  // relocation preserved the other elements
}

TEST(Arena, EnsureWritableIsNoOpForSoleOwner) {
  const ColumnSpec specs[] = {{ColumnKind::kU8, 16}};
  Arena arena = Arena::Create(specs);
  const uint8_t* before = arena.payload();
  arena.EnsureWritable();
  arena.MutableU8(0)[0] = 42;
  EXPECT_EQ(arena.payload(), before);
}

TEST(Arena, FromImageBorrowsAlignedAnchoredBytes) {
  const ColumnSpec specs[] = {{ColumnKind::kF64, 2}, {ColumnKind::kF64, 2}};
  Arena source = Arena::Create(specs);
  std::iota(source.MutableF64(0).begin(), source.MutableF64(0).end(), 1.0);
  std::iota(source.MutableF64(1).begin(), source.MutableF64(1).end(), 3.0);

  std::span<const uint8_t> image(source.payload(), source.payload_bytes());
  auto borrowed = Arena::FromImage(specs, image, source.storage_keepalive());
  ASSERT_TRUE(borrowed.ok());
  EXPECT_TRUE(borrowed->borrowed());
  EXPECT_EQ(borrowed->payload(), source.payload());  // zero-copy
  EXPECT_EQ(borrowed->F64(1)[1], 4.0);

  // First mutation relocates away from the image, bitwise.
  borrowed->MutableF64(0)[0] = -1.0;
  EXPECT_FALSE(borrowed->borrowed());
  EXPECT_NE(borrowed->payload(), source.payload());
  EXPECT_EQ(borrowed->F64(1)[1], 4.0);
  EXPECT_EQ(source.F64(0)[0], 1.0);  // the image never changes
}

TEST(Arena, FromImageCopiesUnanchoredOrMisalignedBytes) {
  const ColumnSpec specs[] = {{ColumnKind::kU8, 8}};
  std::vector<uint8_t> image = {1, 2, 3, 4, 5, 6, 7, 8};
  auto copied = Arena::FromImage(specs, image, nullptr);
  ASSERT_TRUE(copied.ok());
  EXPECT_FALSE(copied->borrowed());
  EXPECT_TRUE(Aligned(copied->payload()));
  EXPECT_EQ(copied->U8(0)[7], 8);

  // Anchored but misaligned: the copy fallback still restores alignment.
  auto misaligned_holder = std::make_shared<std::vector<uint8_t>>(
      kColumnAlignment + image.size(), 0);
  uint8_t* base = misaligned_holder->data();
  while (Aligned(base)) ++base;  // guaranteed misaligned within one line
  std::memcpy(base, image.data(), image.size());
  auto fixed = Arena::FromImage(specs, {base, image.size()}, misaligned_holder);
  ASSERT_TRUE(fixed.ok());
  EXPECT_FALSE(fixed->borrowed());
  EXPECT_TRUE(Aligned(fixed->payload()));
  EXPECT_EQ(fixed->U8(0)[0], 1);
}

TEST(Arena, FromImageRejectsSizeMismatch) {
  const ColumnSpec specs[] = {{ColumnKind::kF64, 4}};
  std::vector<uint8_t> image(31, 0);  // needs 32
  EXPECT_FALSE(Arena::FromImage(specs, image, nullptr).ok());
}

// ------------------------------------------------------------- fast state

/// Builds a writer with a recognizable head and three columns.
void FillWriter(memory::FastStateWriter& writer,
                const std::vector<double>& f64s,
                const std::vector<int64_t>& i64s,
                const std::vector<uint8_t>& u8s) {
  EXPECT_TRUE(io::WriteU32(writer.head(), 0xFEEDBEEF).ok());
  EXPECT_TRUE(io::WriteDouble(writer.head(), 2.5).ok());
  writer.AddF64(f64s);
  writer.AddI64(i64s);
  writer.AddU8(u8s);
}

TEST(FastState, RoundTripsHeadAndColumns) {
  const std::vector<double> f64s = {1.0, -2.0, 3.5};
  const std::vector<int64_t> i64s = {-7, 1 << 20};
  const std::vector<uint8_t> u8s = {9, 8, 7, 6};

  memory::FastStateWriter writer;
  FillWriter(writer, f64s, i64s, u8s);
  io::VectorSink sink;
  const uint64_t payload_offset = 24;  // an arbitrary artifact position
  ASSERT_TRUE(writer.Finish(sink, payload_offset).ok());

  auto reader = memory::FastStateReader::Parse(sink.bytes(), nullptr);
  ASSERT_TRUE(reader.ok());
  auto magic = io::ReadU32(reader->head());
  auto scale = io::ReadDouble(reader->head());
  ASSERT_TRUE(magic.ok() && scale.ok());
  EXPECT_EQ(*magic, 0xFEEDBEEFu);
  EXPECT_EQ(*scale, 2.5);
  EXPECT_EQ(reader->head().remaining(), 0u);

  const Arena& arena = reader->arena();
  ASSERT_EQ(arena.num_columns(), 3u);
  EXPECT_TRUE(std::equal(f64s.begin(), f64s.end(), arena.F64(0).begin()));
  EXPECT_TRUE(std::equal(i64s.begin(), i64s.end(), arena.I64(1).begin()));
  EXPECT_TRUE(std::equal(u8s.begin(), u8s.end(), arena.U8(2).begin()));
}

TEST(FastState, ColumnRegionLandsAtAlignedArtifactOffset) {
  for (uint64_t payload_offset : {0ull, 1ull, 24ull, 63ull, 64ull, 1000ull}) {
    memory::FastStateWriter writer;
    std::vector<double> f64s = {1.0};
    writer.AddF64(f64s);
    io::VectorSink sink;
    ASSERT_TRUE(writer.Finish(sink, payload_offset).ok());

    // The first column's bytes must sit at a 64-byte absolute offset, so a
    // page-aligned mapping presents them aligned in memory.
    auto reader = memory::FastStateReader::Parse(sink.bytes(), nullptr);
    ASSERT_TRUE(reader.ok());
    uint64_t region_pos = 0;
    while (region_pos + sizeof(double) <= sink.bytes().size()) {
      double v;
      std::memcpy(&v, sink.bytes().data() + region_pos, sizeof v);
      if (v == 1.0) break;
      ++region_pos;
    }
    EXPECT_EQ((payload_offset + region_pos) % kColumnAlignment, 0u)
        << "payload_offset=" << payload_offset;
  }
}

TEST(FastState, BorrowsWhenImageIsAnchoredAndAligned) {
  memory::FastStateWriter writer;
  std::vector<double> f64s(100, 0.5);
  writer.AddF64(f64s);
  io::VectorSink sink;
  // Offset 0 + a 64-byte-aligned base below makes the region aligned.
  ASSERT_TRUE(writer.Finish(sink, 0).ok());

  auto holder = std::make_shared<std::vector<uint8_t>>(
      sink.bytes().size() + kColumnAlignment, 0);
  uint8_t* base = holder->data();
  while (!Aligned(base)) ++base;
  std::memcpy(base, sink.bytes().data(), sink.bytes().size());

  auto reader = memory::FastStateReader::Parse({base, sink.bytes().size()},
                                               holder);
  ASSERT_TRUE(reader.ok());
  EXPECT_TRUE(reader->arena().borrowed());
  EXPECT_GE(reader->arena().F64(0).data(),
            reinterpret_cast<const double*>(base));  // points into the image
  EXPECT_EQ(reader->arena().F64(0)[99], 0.5);
}

TEST(FastState, RejectsHostileFrames) {
  memory::FastStateWriter writer;
  std::vector<double> f64s = {1.0, 2.0};
  writer.AddF64(f64s);
  io::VectorSink sink;
  ASSERT_TRUE(writer.Finish(sink, 0).ok());
  const std::vector<uint8_t> good(sink.bytes().begin(), sink.bytes().end());

  // Bad magic.
  {
    std::vector<uint8_t> bad = good;
    bad[0] ^= 0xFF;
    EXPECT_FALSE(memory::FastStateReader::Parse(bad, nullptr).ok());
  }
  // Truncation at every prefix length must degrade into a Status.
  for (size_t len = 0; len < good.size(); ++len) {
    std::span<const uint8_t> prefix(good.data(), len);
    EXPECT_FALSE(memory::FastStateReader::Parse(prefix, nullptr).ok());
  }
  // Invalid column kind in the directory (kind byte follows the count u32
  // after magic + head-length prefix + empty head).
  {
    std::vector<uint8_t> bad = good;
    const size_t kind_pos = 4 + 4 + 0 + 4;
    bad[kind_pos] = 0x7F;
    EXPECT_FALSE(memory::FastStateReader::Parse(bad, nullptr).ok());
  }
  // Oversized pad.
  {
    std::vector<uint8_t> bad = good;
    const size_t pad_pos = 4 + 4 + 0 + 4 + 9 + 8;
    bad[pad_pos] = 0xFF;
    EXPECT_FALSE(memory::FastStateReader::Parse(bad, nullptr).ok());
  }
}

// ----------------------------------------------------- chunk + crc + mmap

TEST(ChunkRef, ViewsPayloadZeroCopyAndValidatesCrc) {
  io::VectorSink artifact;
  const std::vector<uint8_t> payload = {10, 20, 30, 40, 50};
  ASSERT_TRUE(io::WriteChunk(artifact, 0x41424344, payload).ok());

  io::SpanSource source(artifact.bytes());
  auto chunk = io::ReadChunkRef(source);
  ASSERT_TRUE(chunk.ok());
  EXPECT_EQ(chunk->tag, 0x41424344u);
  ASSERT_EQ(chunk->payload.size(), payload.size());
  EXPECT_TRUE(chunk->owned.empty());  // zero-copy: views the artifact buffer
  EXPECT_GE(chunk->payload.data(), artifact.bytes().data());
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         chunk->payload.begin()));

  // Any flipped payload bit must fail the CRC.
  std::vector<uint8_t> corrupt(artifact.bytes().begin(),
                               artifact.bytes().end());
  corrupt[4 + 8 + 2] ^= 0x01;
  io::SpanSource corrupt_source(corrupt);
  EXPECT_FALSE(io::ReadChunkRef(corrupt_source).ok());
}

TEST(Crc32, SlicedImplementationMatchesBytewiseDefinition) {
  std::vector<uint8_t> bytes(4099);
  uint32_t state = 0x12345678;
  for (uint8_t& b : bytes) {
    state = state * 1664525u + 1013904223u;
    b = static_cast<uint8_t>(state >> 24);
  }
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 63u, 64u, 4099u}) {
    std::span<const uint8_t> view(bytes.data(), len);
    // Bytewise reference straight from the CRC-32 definition.
    uint32_t crc = 0xFFFFFFFFu;
    for (uint8_t byte : view) {
      crc ^= byte;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
      }
    }
    EXPECT_EQ(io::Crc32(view), crc ^ 0xFFFFFFFFu) << "len=" << len;
  }
}

TEST(FileSource, MappedModeReadsViewsAndAnchors) {
  const std::string path = "wde_memory_test_mapped.bin";
  std::vector<uint8_t> bytes(1000);
  for (size_t i = 0; i < bytes.size(); ++i) bytes[i] = static_cast<uint8_t>(i);
  {
    auto sink = io::FileSink::Open(path);
    ASSERT_TRUE(sink.ok());
    ASSERT_TRUE(sink->Append(bytes.data(), bytes.size()).ok());
    ASSERT_TRUE(sink->Close().ok());
  }

  auto source = io::FileSource::OpenMapped(path);
  ASSERT_TRUE(source.ok());
  EXPECT_EQ(source->remaining(), bytes.size());

  uint8_t first[10];
  ASSERT_TRUE(source->Read(first, sizeof first).ok());
  EXPECT_TRUE(std::equal(first, first + sizeof first, bytes.begin()));

  const uint8_t* view = source->View(100);
  ASSERT_NE(view, nullptr);
  EXPECT_EQ(view[0], bytes[10]);

  // The backing handle keeps viewed bytes alive past the source object.
  std::shared_ptr<const void> keepalive = source->backing();
  source = io::FileSource::OpenMapped(path);  // drop the original source
  ASSERT_TRUE(source.ok());
  if (keepalive != nullptr) {
    EXPECT_EQ(view[89], bytes[99]);
  }

  EXPECT_FALSE(io::FileSource::OpenMapped("does_not_exist.bin").ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wde
