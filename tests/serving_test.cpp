// Tier-1 tests for the concurrent serving engine (src/serving): epoch
// monotonicity under insert-/time-/explicitly-paced publishing, immutability
// of held views across later publishes (the RCU pinning contract), reader
// answers bit-identical to the quiesced merged view at the same epoch, the
// typed-query result cache's hit/miss/epoch-invalidation semantics and its
// cache-on ≡ cache-off bit-identity, admission batching, and the
// checkpoint → kill → restore → continue cycle including the strict epoch
// bump on restore. The multi-threaded hammering of the same surface lives in
// serving_stress_test.cpp (tsan CI job).
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "selectivity/estimator_registry.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "serving/estimator_service.hpp"
#include "serving/query_cache.hpp"
#include "stats/rng.hpp"
#include "util/check.hpp"

namespace wde {
namespace {

constexpr double kNanQ = std::numeric_limits<double>::quiet_NaN();

std::vector<double> UnitStream(uint64_t seed, size_t n) {
  stats::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.UniformDouble();
  return xs;
}

/// A mixed-kind workload with a dirty tail: NaN parameters, an inverted
/// range, an out-of-range quantile — everything the Answer() normalization
/// must absorb identically with and without the cache.
std::vector<selectivity::Query> MixedWorkload(uint64_t seed, size_t count) {
  stats::Rng rng(seed);
  std::vector<selectivity::Query> queries =
      selectivity::MixedQueryWorkload(rng, count, 0.0, 1.0);
  queries.push_back(selectivity::Query::Range(0.8, 0.2));  // inverted
  queries.push_back(selectivity::Query::Point(kNanQ));
  queries.push_back(selectivity::Query::Range(kNanQ, 0.5));
  queries.push_back(selectivity::Query::Quantile(2.5));  // clamps to 1
  queries.push_back(selectivity::Query::Less(-std::numeric_limits<double>::infinity()));
  return queries;
}

selectivity::EstimatorSpec ShardedHistogramSpec() {
  selectivity::EstimatorSpec spec;
  spec.tag = "sharded";
  spec.sharded_inner_tag = "equi-width";
  spec.buckets = 64;
  spec.shards = 3;
  spec.block_size = 256;
  return spec;
}

std::unique_ptr<serving::EstimatorService> MakeService(
    const serving::ServiceOptions& options,
    const selectivity::EstimatorSpec& spec = ShardedHistogramSpec()) {
  Result<std::unique_ptr<serving::EstimatorService>> service =
      serving::EstimatorService::Create(spec, options);
  WDE_CHECK(service.ok(), service.status().ToString().c_str());
  return std::move(service).value();
}

std::vector<double> Answers(const serving::EstimatorService& service,
                            const std::vector<selectivity::Query>& queries) {
  std::vector<double> out(queries.size());
  service.Answer(queries, out);
  return out;
}

std::vector<double> Answers(const selectivity::SelectivityEstimator& estimator,
                            const std::vector<selectivity::Query>& queries) {
  std::vector<double> out(queries.size());
  estimator.Answer(queries, out);
  return out;
}

TEST(EstimatorServiceTest, EpochStartsAtOneAndPublishesAreStrictlyMonotone) {
  serving::ServiceOptions options;
  options.publish_interval = 0;  // explicit publishes only
  std::unique_ptr<serving::EstimatorService> service = MakeService(options);
  EXPECT_EQ(service->epoch(), 1u);
  uint64_t last = service->epoch();
  for (int i = 0; i < 5; ++i) {
    const uint64_t next = service->Publish();
    EXPECT_EQ(next, last + 1);
    EXPECT_EQ(service->epoch(), next);
    last = next;
  }
}

TEST(EstimatorServiceTest, InsertPacedPublishFiresExactlyAtTheInterval) {
  serving::ServiceOptions options;
  options.publish_interval = 1000;
  std::unique_ptr<serving::EstimatorService> service = MakeService(options);
  const std::vector<double> xs = UnitStream(7, 999);
  service->InsertBatch(xs);
  EXPECT_EQ(service->epoch(), 1u);  // one short of the pacing budget
  service->Insert(0.5);
  EXPECT_EQ(service->epoch(), 2u);
  // The published view contains everything admitted before the publish.
  EXPECT_EQ(service->CurrentView().estimator->count(), 1000u);
}

TEST(EstimatorServiceTest, StalenessBudgetPublishesOnNextAdmission) {
  serving::ServiceOptions options;
  options.publish_interval = 0;
  options.max_staleness_ms = 1;
  std::unique_ptr<serving::EstimatorService> service = MakeService(options);
  service->Insert(0.25);  // within budget: epoch may or may not have advanced
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const uint64_t before = service->epoch();
  service->Insert(0.75);  // view is now over budget: must publish
  EXPECT_GT(service->epoch(), before);
}

TEST(EstimatorServiceTest, HeldViewsAreImmutableAcrossLaterPublishes) {
  serving::ServiceOptions options;
  options.publish_interval = 0;
  std::unique_ptr<serving::EstimatorService> service = MakeService(options);
  const std::vector<selectivity::Query> queries = MixedWorkload(11, 64);

  service->InsertBatch(UnitStream(12, 4000));
  service->Publish();
  const serving::EstimatorService::View held = service->CurrentView();
  const std::vector<double> before = Answers(*held.estimator, queries);

  service->InsertBatch(UnitStream(13, 4000));
  service->Publish();
  service->InsertBatch(UnitStream(14, 4000));
  service->Publish();

  // The pinned epoch still answers bit-identically; the current epoch moved
  // on to a view over more data.
  EXPECT_EQ(Answers(*held.estimator, queries), before);
  EXPECT_GT(service->CurrentView().epoch, held.epoch);
  EXPECT_EQ(held.estimator->count(), 4000u);
  EXPECT_EQ(service->CurrentView().estimator->count(), 12000u);
}

// Non-sharded writers publish through CloneForView: the view shares the
// writer's fitted arenas copy-on-write. Continuing to ingest into the writer
// must un-share — never mutate — the held view's storage, and the next
// publish must reflect the new data.
TEST(EstimatorServiceTest, CowClonedViewsStayBitStableWhileWriterMutates) {
  const std::vector<selectivity::Query> queries = MixedWorkload(21, 64);
  for (const char* tag :
       {"equi-width", "equi-depth", "wavelet-cv", "kde-rot", "haar-synopsis",
        "reservoir"}) {
    SCOPED_TRACE(tag);
    selectivity::EstimatorSpec spec;
    spec.tag = tag;
    serving::ServiceOptions options;
    options.publish_interval = 0;
    std::unique_ptr<serving::EstimatorService> service =
        MakeService(options, spec);

    service->InsertBatch(UnitStream(22, 4000));
    service->Publish();
    const serving::EstimatorService::View held = service->CurrentView();
    const std::vector<double> before = Answers(*held.estimator, queries);

    // Hammer the writer's shared arenas after the publish: more inserts, a
    // forced refit (publish), more inserts again.
    service->InsertBatch(UnitStream(23, 4000));
    service->Publish();
    service->InsertBatch(UnitStream(24, 4000));
    service->Publish();

    EXPECT_EQ(Answers(*held.estimator, queries), before);
    EXPECT_EQ(held.estimator->count(), 4000u);
    const serving::EstimatorService::View current = service->CurrentView();
    EXPECT_GT(current.epoch, held.epoch);
    EXPECT_EQ(current.estimator->count(), 12000u);
  }
}

TEST(EstimatorServiceTest, ReaderAnswersMatchQuiescedMergedViewAtSameEpoch) {
  serving::ServiceOptions options;
  options.publish_interval = 0;
  std::unique_ptr<serving::EstimatorService> service = MakeService(options);
  const std::vector<double> xs = UnitStream(21, 9000);
  service->InsertBatch(xs);
  service->Publish();

  // A quiesced reference: the same sharded configuration ingested the same
  // stream; its merged view is the ground truth for the published epoch.
  selectivity::EstimatorSpec spec = ShardedHistogramSpec();
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> reference =
      selectivity::MakeEstimator(spec);
  ASSERT_TRUE(reference.ok());
  (*reference)->InsertBatch(xs);

  const std::vector<selectivity::Query> queries = MixedWorkload(22, 128);
  const std::vector<double> via_service = Answers(*service, queries);
  const std::vector<double> via_view =
      Answers(*service->CurrentView().estimator, queries);
  const std::vector<double> via_reference = Answers(**reference, queries);
  EXPECT_EQ(via_service, via_view);
  EXPECT_EQ(via_service, via_reference);
}

TEST(EstimatorServiceTest, CacheHitsMissesAndEpochInvalidation) {
  serving::ServiceOptions options;
  options.publish_interval = 0;
  options.cache_shards = 4;
  options.cache_slots_per_shard = 1024;
  std::unique_ptr<serving::EstimatorService> service = MakeService(options);
  service->InsertBatch(UnitStream(31, 3000));
  service->Publish();

  const std::vector<selectivity::Query> queries = MixedWorkload(32, 50);
  const std::vector<double> first = Answers(*service, queries);
  const serving::CacheStats after_first = service->cache_stats();
  EXPECT_EQ(after_first.hits, 0u);
  EXPECT_EQ(after_first.misses, queries.size());

  // Same batch again: every answer must come from the cache, bit-identically.
  const std::vector<double> second = Answers(*service, queries);
  const serving::CacheStats after_second = service->cache_stats();
  EXPECT_EQ(second, first);
  EXPECT_EQ(after_second.hits, queries.size());
  EXPECT_EQ(after_second.misses, queries.size());

  // Publishing a new epoch invalidates every entry — all misses again, and
  // (same data, no inserts in between) the same bitwise answers.
  service->Publish();
  const std::vector<double> third = Answers(*service, queries);
  const serving::CacheStats after_third = service->cache_stats();
  EXPECT_EQ(third, first);
  EXPECT_EQ(after_third.hits, queries.size());
  EXPECT_EQ(after_third.misses, 2 * queries.size());
}

TEST(EstimatorServiceTest, CacheOnAnswersEqualCacheOffBitwise) {
  serving::ServiceOptions cached;
  cached.publish_interval = 500;
  serving::ServiceOptions uncached = cached;
  uncached.cache_shards = 0;
  std::unique_ptr<serving::EstimatorService> with_cache = MakeService(cached);
  std::unique_ptr<serving::EstimatorService> without_cache =
      MakeService(uncached);

  const std::vector<double> xs = UnitStream(41, 5000);
  with_cache->InsertBatch(xs);
  without_cache->InsertBatch(xs);
  const std::vector<selectivity::Query> queries = MixedWorkload(42, 200);
  // Two passes so the second pass serves mostly from cache.
  EXPECT_EQ(Answers(*with_cache, queries), Answers(*without_cache, queries));
  EXPECT_EQ(Answers(*with_cache, queries), Answers(*without_cache, queries));
  EXPECT_GT(with_cache->cache_stats().hits, 0u);
}

TEST(EstimatorServiceTest, CheckpointRestoreContinueMatchesUninterrupted) {
  const std::string path = testing::TempDir() + "/wde_service_checkpoint.snap";
  serving::ServiceOptions options;
  options.publish_interval = 1024;
  const std::vector<double> xs = UnitStream(51, 20000);
  const std::span<const double> all(xs);

  std::unique_ptr<serving::EstimatorService> uninterrupted =
      MakeService(options);
  uninterrupted->InsertBatch(all);
  uninterrupted->Publish();

  uint64_t checkpoint_epoch = 0;
  {
    std::unique_ptr<serving::EstimatorService> leader = MakeService(options);
    leader->InsertBatch(all.first(9000));
    checkpoint_epoch = leader->epoch();
    ASSERT_TRUE(leader->Checkpoint(path).ok());
  }  // leader "killed"

  std::unique_ptr<serving::EstimatorService> standby = MakeService(options);
  ASSERT_TRUE(standby->Restore(path).ok());
  EXPECT_GT(standby->epoch(), checkpoint_epoch);  // the epoch bump on restore
  EXPECT_EQ(standby->count(), 9000u);
  standby->InsertBatch(all.subspan(9000));
  standby->Publish();

  const std::vector<selectivity::Query> queries = MixedWorkload(52, 128);
  EXPECT_EQ(standby->count(), uninterrupted->count());
  EXPECT_EQ(Answers(*standby, queries), Answers(*uninterrupted, queries));
  std::remove(path.c_str());
}

TEST(EstimatorServiceTest, RestoreEpochExceedsBothHistories) {
  const std::string path = testing::TempDir() + "/wde_service_epochs.snap";
  serving::ServiceOptions options;
  options.publish_interval = 0;

  std::unique_ptr<serving::EstimatorService> leader = MakeService(options);
  leader->InsertBatch(UnitStream(61, 1000));
  for (int i = 0; i < 3; ++i) leader->Publish();
  const uint64_t leader_epoch = leader->epoch();
  ASSERT_TRUE(leader->Checkpoint(path).ok());

  // A standby that has already published PAST the leader's epoch: restore
  // must land strictly above both, so neither side's cached results or held
  // views can collide with post-restore epochs.
  std::unique_ptr<serving::EstimatorService> busy_standby = MakeService(options);
  for (int i = 0; i < 9; ++i) busy_standby->Publish();
  const uint64_t standby_epoch = busy_standby->epoch();
  ASSERT_GT(standby_epoch, leader_epoch);
  ASSERT_TRUE(busy_standby->Restore(path).ok());
  EXPECT_GT(busy_standby->epoch(), standby_epoch);

  // A fresh standby restores to exactly leader_epoch + 1.
  std::unique_ptr<serving::EstimatorService> fresh_standby =
      MakeService(options);
  ASSERT_TRUE(fresh_standby->Restore(path).ok());
  EXPECT_EQ(fresh_standby->epoch(), leader_epoch + 1);
  EXPECT_EQ(fresh_standby->count(), 1000u);
  std::remove(path.c_str());
}

TEST(EstimatorServiceTest, RestoreRejectsCorruptCheckpointsUntouched) {
  const std::string path = testing::TempDir() + "/wde_service_corrupt.snap";
  serving::ServiceOptions options;
  options.publish_interval = 0;
  std::unique_ptr<serving::EstimatorService> leader = MakeService(options);
  leader->InsertBatch(UnitStream(71, 500));
  ASSERT_TRUE(leader->Checkpoint(path).ok());

  // Truncate the checkpoint; Restore must fail and change nothing.
  {
    std::FILE* f = std::fopen(path.c_str(), "r+");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
    const long size = std::ftell(f);
    ASSERT_EQ(std::fclose(f), 0);
    ASSERT_EQ(truncate(path.c_str(), size / 2), 0);
  }
  std::unique_ptr<serving::EstimatorService> target = MakeService(options);
  target->InsertBatch(UnitStream(72, 50));
  const uint64_t epoch_before = target->Publish();
  EXPECT_FALSE(target->Restore(path).ok());
  EXPECT_EQ(target->count(), 50u);
  EXPECT_EQ(target->epoch(), epoch_before);
  std::remove(path.c_str());
}

TEST(EstimatorServiceTest, AdmissionBatcherMatchesDirectAnswersBitwise) {
  serving::ServiceOptions options;
  options.publish_interval = 0;
  std::unique_ptr<serving::EstimatorService> service = MakeService(options);
  service->InsertBatch(UnitStream(81, 4000));
  service->Publish();

  const std::vector<selectivity::Query> queries = MixedWorkload(82, 100);
  const std::vector<double> direct = Answers(*service, queries);

  std::vector<double> batched(queries.size(), -1.0);
  {
    serving::AdmissionBatcher batcher(*service, 16);
    for (size_t i = 0; i < queries.size(); ++i) {
      batcher.Enqueue(queries[i], &batched[i]);
      EXPECT_LT(batcher.pending(), 16u);  // auto-flush keeps the buffer bounded
    }
  }  // destructor flushes the partial tail
  EXPECT_EQ(batched, direct);
}

TEST(EstimatorServiceTest, ServesEveryRegisteredWriterIncludingUnmergeable) {
  // The reservoir cannot be sharded (no MergeFrom), but the service's
  // snapshot-clone publish path serves it all the same.
  selectivity::EstimatorSpec spec;
  spec.tag = "reservoir";
  spec.capacity = 256;
  spec.seed = 9;
  serving::ServiceOptions options;
  options.publish_interval = 512;
  std::unique_ptr<serving::EstimatorService> service =
      MakeService(options, spec);
  service->InsertBatch(UnitStream(91, 2000));
  service->Publish();
  const std::vector<selectivity::Query> queries = MixedWorkload(92, 64);
  const std::vector<double> via_service = Answers(*service, queries);
  EXPECT_EQ(via_service, Answers(*service->CurrentView().estimator, queries));
}

TEST(EstimatorServiceTest, CreateValidatesWriterAndOptions) {
  EXPECT_FALSE(
      serving::EstimatorService::Create(nullptr, serving::ServiceOptions{})
          .ok());
  serving::ServiceOptions no_slots;
  no_slots.cache_shards = 2;
  no_slots.cache_slots_per_shard = 0;
  EXPECT_FALSE(
      serving::EstimatorService::Create(ShardedHistogramSpec(), no_slots).ok());
  serving::ServiceOptions negative_staleness;
  negative_staleness.max_staleness_ms = -5;
  EXPECT_FALSE(serving::EstimatorService::Create(ShardedHistogramSpec(),
                                                 negative_staleness)
                   .ok());
  selectivity::EstimatorSpec bad_spec;
  bad_spec.tag = "no-such-estimator";
  EXPECT_FALSE(
      serving::EstimatorService::Create(bad_spec, serving::ServiceOptions{})
          .ok());
}

TEST(QueryResultCacheTest, KeysHashAndCompareBitwise) {
  const selectivity::Query a = selectivity::Query::Range(0.1, 0.9);
  const selectivity::Query b = selectivity::Query::Range(0.1, 0.9);
  const selectivity::Query c = selectivity::Query::Cdf(0.1);
  EXPECT_TRUE(serving::QueryKeyEquals(a, b));
  EXPECT_EQ(serving::QueryKeyHash(a), serving::QueryKeyHash(b));
  EXPECT_FALSE(serving::QueryKeyEquals(a, c));
  // NaN payloads are honest keys (bit-pattern identity, not ==).
  const selectivity::Query nan1 = selectivity::Query::Point(kNanQ);
  const selectivity::Query nan2 = selectivity::Query::Point(kNanQ);
  EXPECT_TRUE(serving::QueryKeyEquals(nan1, nan2));
  // ±0.0 are distinct keys even though they compare == as doubles.
  EXPECT_FALSE(serving::QueryKeyEquals(selectivity::Query::Cdf(0.0),
                                       selectivity::Query::Cdf(-0.0)));
}

TEST(QueryResultCacheTest, LookupInsertAndEpochSemantics) {
  serving::QueryResultCache cache(2, 100);  // rounds up to 128 slots
  EXPECT_EQ(cache.slots_per_shard(), 128u);
  const selectivity::Query q = selectivity::Query::Less(0.3);
  double out = 0.0;
  EXPECT_FALSE(cache.Lookup(q, 1, &out));
  cache.Insert(q, 1, 0.25);
  ASSERT_TRUE(cache.Lookup(q, 1, &out));
  EXPECT_EQ(out, 0.25);
  // A different epoch never hits, in either direction.
  EXPECT_FALSE(cache.Lookup(q, 2, &out));
  cache.Insert(q, 2, 0.5);
  ASSERT_TRUE(cache.Lookup(q, 2, &out));
  EXPECT_EQ(out, 0.5);
  EXPECT_FALSE(cache.Lookup(q, 1, &out));
  // Epoch 0 is the reserved empty tag: inserts are ignored, lookups miss.
  cache.Insert(q, 0, 0.75);
  EXPECT_FALSE(cache.Lookup(q, 0, &out));
  const serving::CacheStats stats = cache.stats();
  EXPECT_EQ(stats.hits, 2u);
  EXPECT_EQ(stats.misses, 4u);
}

}  // namespace
}  // namespace wde
