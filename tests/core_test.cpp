#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "core/adaptive.hpp"
#include "core/besov.hpp"
#include "core/binned.hpp"
#include "core/coefficients.hpp"
#include "core/cross_validation.hpp"
#include "core/estimator.hpp"
#include "core/thresholding.hpp"
#include "numerics/integration.hpp"
#include "processes/target_density.hpp"
#include "stats/loss.hpp"
#include "stats/rng.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace core {
namespace {

const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

const wavelet::WaveletBasis& Db4Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Daubechies(4), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

std::vector<double> UniformData(size_t n, uint64_t seed) {
  stats::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.UniformDouble();
  return xs;
}

// ----------------------------------------------------------- level defaults

TEST(LevelDefaultsTest, PaperPrimaryLevel) {
  // n = 1024, N = 8: ln(1024)/9 ≈ 0.77 -> j0 = 1 (the paper's setting).
  EXPECT_EQ(DefaultPrimaryLevel(1024, 8), 1);
  // Larger n raises j0 slowly.
  EXPECT_EQ(DefaultPrimaryLevel(1 << 20, 8), 2);
  // Lower regularity raises j0.
  EXPECT_EQ(DefaultPrimaryLevel(1024, 1), 4);
}

TEST(LevelDefaultsTest, TopLevelIsLog2) {
  EXPECT_EQ(DefaultTopLevel(1024), 10);
  EXPECT_EQ(DefaultTopLevel(1023), 9);
  EXPECT_EQ(DefaultTopLevel(2), 1);
}

// -------------------------------------------------------------- coefficients

TEST(CoefficientsTest, CreateValidatesLevels) {
  EXPECT_FALSE(EmpiricalCoefficients::Create(Sym8Basis(), -1, 3).ok());
  EXPECT_FALSE(EmpiricalCoefficients::Create(Sym8Basis(), 4, 3).ok());
  EXPECT_TRUE(EmpiricalCoefficients::Create(Sym8Basis(), 2, 6).ok());
}

TEST(CoefficientsTest, StreamingMatchesDirectComputation) {
  const std::vector<double> xs = UniformData(200, 31);
  Result<EmpiricalCoefficients> coeffs = EmpiricalCoefficients::Create(Sym8Basis(), 2, 6);
  ASSERT_TRUE(coeffs.ok());
  coeffs->AddAll(xs);
  const double n = static_cast<double>(xs.size());
  for (int j : {2, 4, 6}) {
    const wavelet::TranslationWindow window = Sym8Basis().LevelWindow(j);
    for (int k = window.lo; k <= window.hi; k += 3) {
      double direct = 0.0;
      for (double x : xs) direct += Sym8Basis().PsiJk(j, k, x);
      EXPECT_NEAR(coeffs->BetaHat(j, k), direct / n, 1e-12)
          << "j=" << j << " k=" << k;
    }
  }
  const wavelet::TranslationWindow w0 = Sym8Basis().LevelWindow(2);
  for (int k = w0.lo; k <= w0.hi; ++k) {
    double direct = 0.0;
    for (double x : xs) direct += Sym8Basis().PhiJk(2, k, x);
    EXPECT_NEAR(coeffs->AlphaHat(k), direct / n, 1e-12);
  }
}

TEST(CoefficientsTest, CrossValidationTermMatchesPairwiseSum) {
  const std::vector<double> xs = UniformData(60, 37);
  Result<EmpiricalCoefficients> coeffs = EmpiricalCoefficients::Create(Sym8Basis(), 2, 4);
  ASSERT_TRUE(coeffs.ok());
  coeffs->AddAll(xs);
  const double n = static_cast<double>(xs.size());
  for (int j : {2, 3, 4}) {
    const wavelet::TranslationWindow window = Sym8Basis().LevelWindow(j);
    for (int k = window.lo; k <= window.hi; k += 2) {
      // Brute force: β̂² − 2/(n(n−1)) Σ_{i≠h} ψ(X_i)ψ(X_h).
      double beta = 0.0;
      for (double x : xs) beta += Sym8Basis().PsiJk(j, k, x);
      beta /= n;
      double pair_sum = 0.0;
      for (size_t i = 0; i < xs.size(); ++i) {
        for (size_t h = 0; h < xs.size(); ++h) {
          if (i == h) continue;
          pair_sum += Sym8Basis().PsiJk(j, k, xs[i]) * Sym8Basis().PsiJk(j, k, xs[h]);
        }
      }
      const double expected = beta * beta - 2.0 * pair_sum / (n * (n - 1.0));
      EXPECT_NEAR(coeffs->CrossValidationTerm(j, k), expected, 1e-10)
          << "j=" << j << " k=" << k;
    }
  }
}

TEST(CoefficientsTest, OutOfWindowCoefficientsAreZero) {
  Result<EmpiricalCoefficients> coeffs = EmpiricalCoefficients::Create(Sym8Basis(), 2, 4);
  ASSERT_TRUE(coeffs.ok());
  coeffs->Add(0.5);
  EXPECT_EQ(coeffs->BetaHat(3, 1000), 0.0);
  EXPECT_EQ(coeffs->AlphaHat(-500), 0.0);
}

TEST(CoefficientsTest, EmptySpansAreNoOps) {
  Result<EmpiricalCoefficients> coeffs = EmpiricalCoefficients::Create(Sym8Basis(), 2, 5);
  ASSERT_TRUE(coeffs.ok());
  coeffs->AddAll({});
  coeffs->AddAll(std::span<const double>(static_cast<const double*>(nullptr), 0));
  EXPECT_EQ(coeffs->count(), 0u);
  coeffs->Add(0.5);
  const double before = coeffs->AlphaHat(1);
  coeffs->AddAll({});
  EXPECT_EQ(coeffs->count(), 1u);
  EXPECT_EQ(coeffs->AlphaHat(1), before);

  const wavelet::WaveletFilter filter = *wavelet::WaveletFilter::Symmlet(8);
  const std::vector<double> seed{0.25, 0.5, 0.75};
  Result<BinnedWaveletFit> binned = BinnedWaveletFit::Fit(filter, seed, 2, 6);
  ASSERT_TRUE(binned.ok());
  EXPECT_TRUE(binned->AddBatch({}).ok());
  EXPECT_TRUE(
      binned->AddBatch(std::span<const double>(static_cast<const double*>(nullptr), 0))
          .ok());
  EXPECT_EQ(binned->count(), seed.size());
}

TEST(CoefficientsDeathTest, RejectsOutOfRangeObservation) {
  Result<EmpiricalCoefficients> coeffs = EmpiricalCoefficients::Create(Sym8Basis(), 2, 3);
  ASSERT_TRUE(coeffs.ok());
  EXPECT_DEATH(coeffs->Add(1.5), "unit interval");
  EXPECT_DEATH(coeffs->Add(-0.1), "unit interval");
}

// -------------------------------------------------------------- thresholding

TEST(ThresholdTest, HardThreshold) {
  EXPECT_DOUBLE_EQ(ApplyThreshold(ThresholdKind::kHard, 0.5, 0.3), 0.5);
  EXPECT_DOUBLE_EQ(ApplyThreshold(ThresholdKind::kHard, -0.5, 0.3), -0.5);
  EXPECT_DOUBLE_EQ(ApplyThreshold(ThresholdKind::kHard, 0.2, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(ApplyThreshold(ThresholdKind::kHard, 0.3, 0.3), 0.0);  // strict >
}

TEST(ThresholdTest, SoftThresholdShrinks) {
  EXPECT_DOUBLE_EQ(ApplyThreshold(ThresholdKind::kSoft, 0.5, 0.3), 0.2);
  EXPECT_DOUBLE_EQ(ApplyThreshold(ThresholdKind::kSoft, -0.5, 0.3), -0.2);
  EXPECT_DOUBLE_EQ(ApplyThreshold(ThresholdKind::kSoft, 0.2, 0.3), 0.0);
  EXPECT_DOUBLE_EQ(ApplyThreshold(ThresholdKind::kSoft, 0.3, 0.3), 0.0);
}

TEST(ThresholdTest, InfiniteLambdaKills) {
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(ApplyThreshold(ThresholdKind::kHard, 100.0, inf), 0.0);
  EXPECT_DOUBLE_EQ(ApplyThreshold(ThresholdKind::kSoft, 100.0, inf), 0.0);
}

TEST(ThresholdTest, TheoreticalScheduleShape) {
  const ThresholdSchedule schedule = TheoreticalSchedule(2.0, 1, 5, 1024);
  EXPECT_EQ(schedule.j0, 1);
  EXPECT_EQ(schedule.j_max(), 5);
  for (int j = 1; j <= 5; ++j) {
    EXPECT_NEAR(schedule.LevelLambda(j), 2.0 * std::sqrt(j / 1024.0), 1e-12);
  }
  // Outside the schedule the level is dead.
  EXPECT_TRUE(std::isinf(schedule.LevelLambda(0)));
  EXPECT_TRUE(std::isinf(schedule.LevelLambda(6)));
}

TEST(ThresholdTest, TheoreticalTopLevelClamped) {
  // At n = 1024, b = 1 the asymptotic formula is far negative -> clamps to j0.
  EXPECT_EQ(TheoreticalTopLevel(1024, 1.0, 1), 1);
  // At astronomical n it grows and stays below log2 n.
  const int j1 = TheoreticalTopLevel(1ULL << 40, 1.0, 1);
  EXPECT_GT(j1, 1);
  EXPECT_LE(j1, 40);
}

TEST(ThresholdKindTest, Names) {
  EXPECT_STREQ(ThresholdKindName(ThresholdKind::kHard), "hard");
  EXPECT_STREQ(ThresholdKindName(ThresholdKind::kSoft), "soft");
}

// ----------------------------------------------------------------- estimator

TEST(EstimatorTest, FitValidatesInput) {
  EXPECT_FALSE(WaveletDensityFit::Fit(Sym8Basis(), std::vector<double>{0.5}).ok());
  FitOptions bad;
  bad.domain_lo = 1.0;
  bad.domain_hi = 0.0;
  const std::vector<double> xs{0.1, 0.2};
  EXPECT_FALSE(WaveletDensityFit::Fit(Sym8Basis(), xs, bad).ok());
  FitOptions narrow;
  narrow.domain_lo = 0.0;
  narrow.domain_hi = 0.15;
  EXPECT_FALSE(WaveletDensityFit::Fit(Sym8Basis(), xs, narrow).ok());  // 0.2 outside
}

TEST(EstimatorTest, PaperDefaultLevels) {
  const std::vector<double> xs = UniformData(1024, 41);
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs);
  ASSERT_TRUE(fit.ok());
  EXPECT_EQ(fit->coefficients().j0(), 1);
  EXPECT_EQ(fit->coefficients().j_max(), 10);
}

TEST(EstimatorTest, LinearProjectionIntegratesToOne) {
  const std::vector<double> xs = UniformData(512, 43);
  FitOptions options;
  options.j0 = 3;
  options.j_max = 6;
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs, options);
  ASSERT_TRUE(fit.ok());
  const WaveletEstimate projection = fit->LinearEstimate(2);  // V_{j0} only
  // Mass of the projection: Σ_k α̂_k ∫φ_{j,k} = (1/n) Σ_i Σ_k φ...; on [0,1]
  // boundary translates lose a little mass, so allow a few percent.
  EXPECT_NEAR(projection.TotalMass(), 1.0, 0.05);
}

TEST(EstimatorTest, LinearEstimateRecoversUniformDensity) {
  const std::vector<double> xs = UniformData(4096, 47);
  FitOptions options;
  options.j0 = 2;
  options.j_max = 4;
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs, options);
  ASSERT_TRUE(fit.ok());
  const WaveletEstimate estimate = fit->LinearEstimate(4);
  // Away from the boundary the estimate should be close to 1 (the linear
  // estimator's stochastic wiggles at j1 = 4 have sd ≈ 0.08).
  for (double x = 0.15; x <= 0.85; x += 0.1) {
    EXPECT_NEAR(estimate.Evaluate(x), 1.0, 0.25) << "x=" << x;
  }
}

TEST(EstimatorTest, EvaluateOnGridMatchesPointwise) {
  const std::vector<double> xs = UniformData(256, 53);
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs);
  ASSERT_TRUE(fit.ok());
  const WaveletEstimate estimate = fit->LinearEstimate(3);
  const std::vector<double> grid = estimate.EvaluateOnGrid(0.0, 1.0, 21);
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(grid[i], estimate.Evaluate(0.05 * static_cast<double>(i)));
  }
}

TEST(EstimatorTest, IntegrateRangeMatchesQuadrature) {
  const std::vector<double> xs = UniformData(512, 59);
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs);
  ASSERT_TRUE(fit.ok());
  const CrossValidationResult cv = CrossValidate(fit->coefficients(),
                                                 ThresholdKind::kSoft);
  const WaveletEstimate estimate = fit->Estimate(cv.Schedule(), ThresholdKind::kSoft);
  for (const auto& [a, b] : std::vector<std::pair<double, double>>{
           {0.0, 1.0}, {0.2, 0.7}, {0.45, 0.55}}) {
    const double quad = numerics::IntegrateFunction(
        [&](double x) { return estimate.Evaluate(x); }, a, b, 8192);
    EXPECT_NEAR(estimate.IntegrateRange(a, b), quad, 2e-4)
        << "[" << a << "," << b << "]";
  }
}

TEST(EstimatorTest, DomainMappingPreservesShape) {
  // Fit the same (rescaled) data on [0,1] and on [-5, 5]; densities must map
  // by the affine change of variables.
  const std::vector<double> unit = UniformData(800, 61);
  std::vector<double> wide(unit.size());
  for (size_t i = 0; i < unit.size(); ++i) wide[i] = -5.0 + 10.0 * unit[i];
  FitOptions narrow_options;
  narrow_options.j0 = 2;
  narrow_options.j_max = 5;
  FitOptions wide_options = narrow_options;
  wide_options.domain_lo = -5.0;
  wide_options.domain_hi = 5.0;
  Result<WaveletDensityFit> fit_unit =
      WaveletDensityFit::Fit(Sym8Basis(), unit, narrow_options);
  Result<WaveletDensityFit> fit_wide =
      WaveletDensityFit::Fit(Sym8Basis(), wide, wide_options);
  ASSERT_TRUE(fit_unit.ok());
  ASSERT_TRUE(fit_wide.ok());
  const WaveletEstimate est_unit = fit_unit->LinearEstimate(5);
  const WaveletEstimate est_wide = fit_wide->LinearEstimate(5);
  for (double t : {0.1, 0.37, 0.62, 0.9}) {
    EXPECT_NEAR(est_wide.Evaluate(-5.0 + 10.0 * t), est_unit.Evaluate(t) / 10.0, 1e-9);
  }
  EXPECT_NEAR(est_wide.TotalMass(), est_unit.TotalMass(), 1e-9);
}

TEST(EstimatorTest, QuantileInvertsEstimateCdf) {
  const processes::TruncatedGaussianMixtureDensity density =
      processes::TruncatedGaussianMixtureDensity::Bimodal();
  stats::Rng rng(137);
  std::vector<double> xs(2048);
  for (double& x : xs) x = density.InverseCdf(rng.UniformDouble());
  Result<AdaptiveDensityEstimate> fit = FitAdaptive(Sym8Basis(), xs);
  ASSERT_TRUE(fit.ok());
  const WaveletEstimate& estimate = fit->estimate;
  for (double u : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double q = estimate.Quantile(u);
    EXPECT_NEAR(estimate.IntegrateRange(0.0, q) / estimate.TotalMass(), u, 1e-6)
        << "u=" << u;
    // Compare through the true CDF rather than the quantile itself: in the
    // near-zero-density valley between the modes the CDF is flat, so tiny
    // mass errors move the quantile a long way.
    EXPECT_NEAR(density.Cdf(q), u, 0.04) << "u=" << u;
  }
  EXPECT_DOUBLE_EQ(estimate.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(estimate.Quantile(1.0), 1.0);
}

TEST(EstimatorTest, QuantileEndpointsAreExactOnShiftedDomain) {
  // u = 0 and u = 1 must return the domain endpoints bit-exactly (not the
  // midpoint of a bisection bracket), including on non-unit domains.
  stats::Rng rng(139);
  std::vector<double> xs(1024);
  for (double& x : xs) x = rng.Uniform(-3.0, 5.0);
  FitOptions options;
  options.domain_lo = -3.0;
  options.domain_hi = 5.0;
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs, options);
  ASSERT_TRUE(fit.ok());
  const WaveletEstimate estimate = fit->LinearEstimate(5);
  EXPECT_EQ(estimate.Quantile(0.0), -3.0);
  EXPECT_EQ(estimate.Quantile(1.0), 5.0);
}

TEST(EstimatorTest, QuantileOnHeavilyThresholdedSignedEstimate) {
  // Regression: a large soft threshold kills (or shrinks) every detail
  // coefficient, leaving the coarse scaling projection of a sharply bimodal
  // density — a *signed* estimate whose running integral is locally
  // non-monotone. Quantile must still return usable values: inside the
  // domain, non-decreasing in u, exact at the endpoints, and consistent with
  // the (normalized) CDF at the bisection root.
  const processes::TruncatedGaussianMixtureDensity density =
      processes::TruncatedGaussianMixtureDensity::Bimodal();
  stats::Rng rng(149);
  std::vector<double> xs(2048);
  for (double& x : xs) x = density.InverseCdf(rng.UniformDouble());
  FitOptions options;
  options.j0 = 2;
  options.j_max = 8;
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs, options);
  ASSERT_TRUE(fit.ok());
  ThresholdSchedule schedule;
  schedule.j0 = 2;
  schedule.lambda.assign(7, ThresholdSchedule::kKillLevel);  // kill every detail
  const WaveletEstimate estimate = fit->Estimate(schedule, ThresholdKind::kSoft);
  for (int j = 2; j <= 8; ++j) EXPECT_EQ(estimate.ThresholdedFraction(j), 1.0);

  // The coarse projection of a bimodal density with Symmlet-8 undershoots:
  // the estimate is genuinely signed (this is what makes the CDF
  // non-monotone between the modes).
  double min_value = std::numeric_limits<double>::infinity();
  for (double v : estimate.EvaluateOnGrid(0.0, 1.0, 513)) {
    min_value = std::min(min_value, v);
  }
  ASSERT_LT(min_value, 0.0);

  EXPECT_EQ(estimate.Quantile(0.0), 0.0);
  EXPECT_EQ(estimate.Quantile(1.0), 1.0);
  const double mass = estimate.TotalMass();
  ASSERT_GT(mass, 0.0);
  double previous = 0.0;
  for (double u : {0.05, 0.2, 0.35, 0.5, 0.65, 0.8, 0.95}) {
    const double q = estimate.Quantile(u);
    EXPECT_GE(q, 0.0) << "u=" << u;
    EXPECT_LE(q, 1.0) << "u=" << u;
    EXPECT_GE(q, previous) << "u=" << u;  // monotone in u
    EXPECT_NEAR(estimate.IntegrateRange(0.0, q) / mass, u, 1e-6) << "u=" << u;
    previous = q;
  }
}

TEST(EstimatorTest, ThresholdedFractionReflectsSchedule) {
  const std::vector<double> xs = UniformData(512, 67);
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs);
  ASSERT_TRUE(fit.ok());
  // Infinite thresholds: everything dies.
  ThresholdSchedule kill;
  kill.j0 = fit->coefficients().j0();
  kill.lambda.assign(3, std::numeric_limits<double>::infinity());
  const WaveletEstimate dead = fit->Estimate(kill, ThresholdKind::kHard);
  for (const auto& level : dead.details()) {
    EXPECT_EQ(level.kept, 0);
    EXPECT_DOUBLE_EQ(dead.ThresholdedFraction(level.j), 1.0);
  }
  // Zero thresholds: (almost) everything survives.
  const WaveletEstimate alive = fit->LinearEstimate(kill.j0 + 2);
  for (const auto& level : alive.details()) {
    EXPECT_GT(level.kept, 0);
    EXPECT_LT(alive.ThresholdedFraction(level.j), 0.7);
  }
}

// ----------------------------------------------------------- cross-validation

TEST(CrossValidationTest, MatchesBruteForceMinimization) {
  const std::vector<double> xs = UniformData(128, 71);
  Result<EmpiricalCoefficients> coeffs = EmpiricalCoefficients::Create(Sym8Basis(), 2, 5);
  ASSERT_TRUE(coeffs.ok());
  coeffs->AddAll(xs);
  for (ThresholdKind kind : {ThresholdKind::kHard, ThresholdKind::kSoft}) {
    // The brute force below implements the paper's literal criterion, so
    // compare against the unstabilized minimization.
    const CrossValidationResult cv =
        CrossValidate(*coeffs, kind, CvStabilization::kNone);
    for (int j = 2; j <= 5; ++j) {
      // Brute force over the candidate grid: all observed |β̂| plus +inf.
      const wavelet::TranslationWindow window = Sym8Basis().LevelWindow(j);
      std::vector<double> candidates;
      for (int k = window.lo; k <= window.hi; ++k) {
        const double mag = std::fabs(coeffs->BetaHat(j, k));
        if (mag > 0.0) candidates.push_back(mag);
      }
      double best = 0.0;  // value for λ = +inf (empty sum)
      for (double lambda : candidates) {
        double value = 0.0;
        for (int k = window.lo; k <= window.hi; ++k) {
          if (std::fabs(coeffs->BetaHat(j, k)) >= lambda) {
            value += coeffs->CrossValidationTerm(j, k);
            if (kind == ThresholdKind::kSoft) value += lambda * lambda;
          }
        }
        best = std::min(best, value);
      }
      EXPECT_NEAR(cv.Level(j).cv_value, best, 1e-12)
          << "kind=" << ThresholdKindName(kind) << " j=" << j;
    }
  }
}

TEST(CrossValidationTest, LambdaHatReproducesKeptCount) {
  const std::vector<double> xs = UniformData(400, 73);
  Result<EmpiricalCoefficients> coeffs = EmpiricalCoefficients::Create(Sym8Basis(), 2, 6);
  ASSERT_TRUE(coeffs.ok());
  coeffs->AddAll(xs);
  const CrossValidationResult cv = CrossValidate(*coeffs, ThresholdKind::kSoft);
  for (int j = 2; j <= 6; ++j) {
    const LevelCvResult& level = cv.Level(j);
    int kept = 0;
    const wavelet::TranslationWindow window = Sym8Basis().LevelWindow(j);
    for (int k = window.lo; k <= window.hi; ++k) {
      if (std::fabs(coeffs->BetaHat(j, k)) >= level.lambda_hat) ++kept;
    }
    EXPECT_EQ(kept, level.kept) << "j=" << j;
  }
}

TEST(CrossValidationTest, J1HatWithinRange) {
  const std::vector<double> xs = UniformData(1024, 79);
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs);
  ASSERT_TRUE(fit.ok());
  for (ThresholdKind kind : {ThresholdKind::kHard, ThresholdKind::kSoft}) {
    const CrossValidationResult cv = CrossValidate(fit->coefficients(), kind);
    EXPECT_GE(cv.j1_hat, cv.j0);
    EXPECT_LE(cv.j1_hat, cv.j_star);
    if (cv.Level(cv.j_star).kept > 0) {
      // Saturated case: the convention is ĵ1 = j*.
      EXPECT_EQ(cv.j1_hat, cv.j_star);
    } else {
      // All levels from ĵ1 up are empty, and ĵ1 is minimal.
      for (int j = cv.j1_hat; j <= cv.j_star; ++j) EXPECT_EQ(cv.Level(j).kept, 0);
      if (cv.j1_hat > cv.j0) {
        EXPECT_GT(cv.Level(cv.j1_hat - 1).kept, 0);
      }
    }
  }
}

TEST(CrossValidationTest, UniversalFloorStabilizesHardCvOnPureNoise) {
  // On uniform data every detail coefficient is pure noise. The literal hard
  // criterion keeps top order-statistic noise at fine levels; the universal
  // floor (the default for hard) must remove (nearly) all of it.
  const std::vector<double> xs = UniformData(1024, 113);
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs);
  ASSERT_TRUE(fit.ok());
  const CrossValidationResult literal = CrossValidate(
      fit->coefficients(), ThresholdKind::kHard, CvStabilization::kNone);
  const CrossValidationResult floored = CrossValidate(
      fit->coefficients(), ThresholdKind::kHard, CvStabilization::kUniversalFloor);
  int literal_kept = 0;
  int floored_kept = 0;
  for (int j = literal.j_star - 2; j <= literal.j_star; ++j) {
    literal_kept += literal.Level(j).kept;
    floored_kept += floored.Level(j).kept;
  }
  EXPECT_GT(literal_kept, 10);  // the degeneracy is real...
  EXPECT_LE(floored_kept, 2);   // ...and the floor removes it.
}

TEST(CrossValidationTest, FinestLevelNoiseScaleMatchesTheory) {
  // sd(β̂) ≈ sqrt(E ψ² / n) ≈ 1/sqrt(n) for a uniform density.
  const std::vector<double> xs = UniformData(4096, 127);
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs);
  ASSERT_TRUE(fit.ok());
  const double sigma = FinestLevelNoiseScale(fit->coefficients());
  EXPECT_NEAR(sigma, 1.0 / 64.0, 0.6 / 64.0);
}

TEST(CrossValidationTest, ScheduleKillsEmptyLevels) {
  const std::vector<double> xs = UniformData(256, 83);
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs);
  ASSERT_TRUE(fit.ok());
  const CrossValidationResult cv = CrossValidate(fit->coefficients(),
                                                 ThresholdKind::kSoft);
  const ThresholdSchedule schedule = cv.Schedule();
  for (int j = cv.j0; j <= cv.j_star; ++j) {
    if (cv.Level(j).kept == 0) {
      EXPECT_TRUE(std::isinf(schedule.LevelLambda(j))) << "j=" << j;
    } else {
      EXPECT_GT(schedule.LevelLambda(j), 0.0);
      EXPECT_TRUE(std::isfinite(schedule.LevelLambda(j)));
    }
  }
}

// ------------------------------------------------------------------ adaptive

class AdaptiveSweepTest : public testing::TestWithParam<ThresholdKind> {};

TEST_P(AdaptiveSweepTest, RecoversSineUniformDensity) {
  const processes::SineUniformMixtureDensity density;
  stats::Rng rng(89);
  std::vector<double> xs(2048);
  for (double& x : xs) x = density.InverseCdf(rng.UniformDouble());
  AdaptiveOptions options;
  options.kind = GetParam();
  Result<AdaptiveDensityEstimate> fit = FitAdaptive(Sym8Basis(), xs, options);
  ASSERT_TRUE(fit.ok());
  const std::vector<double> est = fit->estimate.EvaluateOnGrid(0.0, 1.0, 513);
  const std::vector<double> tru = density.PdfOnGrid(513);
  EXPECT_LT(stats::IntegratedSquaredError(est, tru, 1.0 / 512.0), 0.12);
  EXPECT_NEAR(fit->estimate.TotalMass(), 1.0, 0.05);
}

TEST_P(AdaptiveSweepTest, ErrorShrinksWithSampleSize) {
  const processes::TruncatedGaussianMixtureDensity density =
      processes::TruncatedGaussianMixtureDensity::Bimodal();
  const auto ise_at = [&](size_t n, uint64_t seed) {
    stats::Rng rng(seed);
    std::vector<double> xs(n);
    for (double& x : xs) x = density.InverseCdf(rng.UniformDouble());
    AdaptiveOptions options;
    options.kind = GetParam();
    Result<AdaptiveDensityEstimate> fit = FitAdaptive(Sym8Basis(), xs, options);
    WDE_CHECK(fit.ok());
    const std::vector<double> est = fit->estimate.EvaluateOnGrid(0.0, 1.0, 513);
    const std::vector<double> tru = density.PdfOnGrid(513);
    return stats::IntegratedSquaredError(est, tru, 1.0 / 512.0);
  };
  // Average a few seeds to avoid flakiness.
  double small = 0.0, large = 0.0;
  for (uint64_t s = 0; s < 3; ++s) {
    small += ise_at(256, 100 + s);
    large += ise_at(4096, 200 + s);
  }
  EXPECT_LT(large, small);
}

TEST_P(AdaptiveSweepTest, WorksWithDb4Basis) {
  const std::vector<double> xs = UniformData(512, 97);
  AdaptiveOptions options;
  options.kind = GetParam();
  Result<AdaptiveDensityEstimate> fit = FitAdaptive(Db4Basis(), xs, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->estimate.TotalMass(), 1.0, 0.1);
}

INSTANTIATE_TEST_SUITE_P(BothKinds, AdaptiveSweepTest,
                         testing::Values(ThresholdKind::kHard, ThresholdKind::kSoft),
                         [](const testing::TestParamInfo<ThresholdKind>& info) {
                           return std::string(ThresholdKindName(info.param));
                         });

TEST(AdaptiveTest, SoftEstimateIsSmootherThanLinear) {
  // Thresholding should reduce the wiggliness (L2 norm of the detail part)
  // relative to keeping everything at the top level.
  const std::vector<double> xs = UniformData(512, 101);
  Result<WaveletDensityFit> fit = WaveletDensityFit::Fit(Sym8Basis(), xs);
  ASSERT_TRUE(fit.ok());
  const CrossValidationResult cv = CrossValidate(fit->coefficients(),
                                                 ThresholdKind::kSoft);
  const WaveletEstimate adaptive = fit->Estimate(cv.Schedule(), ThresholdKind::kSoft);
  const WaveletEstimate linear = fit->LinearEstimate(fit->coefficients().j_max());
  const std::vector<double> grid_a = adaptive.EvaluateOnGrid(0.0, 1.0, 1025);
  const std::vector<double> grid_l = linear.EvaluateOnGrid(0.0, 1.0, 1025);
  const std::vector<double> ones(1025, 1.0);
  EXPECT_LT(stats::IntegratedSquaredError(grid_a, ones, 1.0 / 1024.0),
            stats::IntegratedSquaredError(grid_l, ones, 1.0 / 1024.0));
}

// --------------------------------------------------------------------- Besov

TEST(BesovTest, SmoothDensityHasSmallerNormThanRough) {
  stats::Rng rng(103);
  // Smooth: uniform. Rough: two sharp spikes.
  std::vector<double> smooth(2048), rough(2048);
  for (double& x : smooth) x = rng.UniformDouble();
  for (double& x : rough) {
    x = rng.Bernoulli(0.5) ? rng.Uniform(0.30, 0.31) : rng.Uniform(0.70, 0.71);
  }
  Result<EmpiricalCoefficients> cs = EmpiricalCoefficients::Create(Sym8Basis(), 2, 8);
  Result<EmpiricalCoefficients> cr = EmpiricalCoefficients::Create(Sym8Basis(), 2, 8);
  ASSERT_TRUE(cs.ok());
  ASSERT_TRUE(cr.ok());
  cs->AddAll(smooth);
  cr->AddAll(rough);
  EXPECT_LT(BesovSequenceNorm(*cs, 1.0, 2.0, 2.0),
            BesovSequenceNorm(*cr, 1.0, 2.0, 2.0));
}

TEST(BesovTest, LevelNormsHaveOneEntryPerLevel) {
  const std::vector<double> xs = UniformData(128, 107);
  Result<EmpiricalCoefficients> coeffs = EmpiricalCoefficients::Create(Sym8Basis(), 2, 6);
  ASSERT_TRUE(coeffs.ok());
  coeffs->AddAll(xs);
  EXPECT_EQ(LevelCoefficientNorms(*coeffs, 2.0).size(), 5u);
}

}  // namespace
}  // namespace core
}  // namespace wde
