#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "harness/cases.hpp"
#include "numerics/integration.hpp"
#include "processes/ar1_process.hpp"
#include "processes/doubling_map.hpp"
#include "processes/iid_process.hpp"
#include "processes/logistic_map.hpp"
#include "processes/lsv_map.hpp"
#include "processes/noncausal_ma.hpp"
#include "processes/target_density.hpp"
#include "processes/transformed_process.hpp"
#include "stats/empirical.hpp"

namespace wde {
namespace processes {
namespace {

// ---------------------------------------------------------- target densities

class DensitySweepTest
    : public testing::TestWithParam<std::shared_ptr<const TargetDensity>> {};

TEST_P(DensitySweepTest, PdfIntegratesToOne) {
  const TargetDensity& d = *GetParam();
  const double mass = numerics::IntegrateFunction([&](double x) { return d.Pdf(x); },
                                                  d.support_lo(), d.support_hi(), 4096);
  // Simpson converges only O(h) across the sine-uniform jump, hence the
  // tolerance well above the smooth-case 1e-10.
  EXPECT_NEAR(mass, 1.0, 2e-4);
}

TEST_P(DensitySweepTest, CdfMatchesIntegratedPdf) {
  const TargetDensity& d = *GetParam();
  for (double x : {0.1, 0.33, 0.5, 0.71, 0.9}) {
    const double integral = numerics::IntegrateFunction(
        [&](double t) { return d.Pdf(t); }, d.support_lo(), x, 4096);
    EXPECT_NEAR(d.Cdf(x), integral, 2e-4) << "x=" << x;
  }
}

TEST_P(DensitySweepTest, CdfIsMonotoneWithCorrectEndpoints) {
  const TargetDensity& d = *GetParam();
  EXPECT_DOUBLE_EQ(d.Cdf(d.support_lo() - 1.0), 0.0);
  EXPECT_DOUBLE_EQ(d.Cdf(d.support_hi() + 1.0), 1.0);
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double x = d.support_lo() +
                     (d.support_hi() - d.support_lo()) * static_cast<double>(i) / 100.0;
    const double c = d.Cdf(x);
    EXPECT_GE(c, prev - 1e-12);
    prev = c;
  }
}

TEST_P(DensitySweepTest, InverseCdfInverts) {
  const TargetDensity& d = *GetParam();
  for (double u : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    EXPECT_NEAR(d.Cdf(d.InverseCdf(u)), u, 1e-8) << "u=" << u;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Densities, DensitySweepTest,
    testing::Values(std::make_shared<const SineUniformMixtureDensity>(),
                    std::make_shared<const TruncatedGaussianMixtureDensity>(
                        TruncatedGaussianMixtureDensity::Bimodal()),
                    std::make_shared<const UniformDensity>()));

TEST(SineUniformDensityTest, HasVisibleJump) {
  const SineUniformMixtureDensity d;
  EXPECT_GT(d.JumpSize(), 0.1);
  const double just_left = d.Pdf(d.breakpoint() - 1e-9);
  const double just_right = d.Pdf(d.breakpoint() + 1e-9);
  EXPECT_NEAR(std::fabs(just_left - just_right), d.JumpSize(), 1e-6);
}

TEST(GaussianMixtureDensityTest, BimodalPeaks) {
  const auto d = TruncatedGaussianMixtureDensity::Bimodal();
  // Two modes near the component means, second one higher.
  const double p1 = d.Pdf(0.30);
  const double p2 = d.Pdf(0.65);
  EXPECT_GT(p1, 4.0);
  EXPECT_GT(p2, 8.0);
  EXPECT_LT(d.Pdf(0.475), std::min(p1, p2) / 2.0);  // valley between modes
}

// ----------------------------------------------------------- raw processes

class RawProcessSweepTest
    : public testing::TestWithParam<std::shared_ptr<const RawProcess>> {};

TEST_P(RawProcessSweepTest, PathHasRequestedLength) {
  stats::Rng rng(41);
  EXPECT_EQ(GetParam()->Path(100, rng).size(), 100u);
}

TEST_P(RawProcessSweepTest, MarginalMatchesDeclaredCdf) {
  // Dependent data inflate KS fluctuations relative to iid, so the bound is
  // loose; it still catches wrong marginals (errors are O(1)).
  stats::Rng rng(43);
  const std::shared_ptr<const RawProcess>& process = GetParam();
  const std::vector<double> path = process->Path(8192, rng);
  const double d = stats::KolmogorovSmirnovDistance(
      path, [&](double y) { return process->MarginalCdf(y); });
  EXPECT_LT(d, 0.06) << process->name();
}

TEST_P(RawProcessSweepTest, DeterministicGivenSeed) {
  const std::shared_ptr<const RawProcess>& process = GetParam();
  stats::Rng a(7);
  stats::Rng b(7);
  const std::vector<double> pa = process->Path(64, a);
  const std::vector<double> pb = process->Path(64, b);
  EXPECT_EQ(pa, pb);
}

INSTANTIATE_TEST_SUITE_P(
    Processes, RawProcessSweepTest,
    testing::Values(std::make_shared<const IidUniformProcess>(),
                    std::make_shared<const LogisticMapProcess>(),
                    std::make_shared<const DoublingMapProcess>(),
                    std::make_shared<const NoncausalMaProcess>(),
                    std::make_shared<const Ar1GaussianProcess>(0.5)));

// ------------------------------------------------------------ logistic map

TEST(LogisticMapTest, MapFixedPoints) {
  EXPECT_DOUBLE_EQ(LogisticMapProcess::Map(0.0), 0.0);
  EXPECT_DOUBLE_EQ(LogisticMapProcess::Map(0.75), 0.75);
  EXPECT_DOUBLE_EQ(LogisticMapProcess::Map(0.5), 1.0);
}

TEST(LogisticMapTest, InvariantQuantileInvertsCdf) {
  const LogisticMapProcess process;
  for (double u : {0.1, 0.4, 0.8}) {
    EXPECT_NEAR(process.MarginalCdf(LogisticMapProcess::InvariantQuantile(u)), u, 1e-12);
  }
}

TEST(LogisticMapTest, PathIsOrbitOfMap) {
  stats::Rng rng(3);
  const LogisticMapProcess process(0);
  const std::vector<double> path = process.Path(64, rng);
  for (size_t i = 0; i + 1 < path.size(); ++i) {
    EXPECT_NEAR(path[i + 1], LogisticMapProcess::Map(path[i]), 1e-12);
  }
}

// ------------------------------------------------------------- doubling map

TEST(DoublingMapTest, ValuesStayInUnitInterval) {
  stats::Rng rng(5);
  for (double y : DoublingMapProcess().Path(512, rng)) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
}

// ------------------------------------------------------------ non-causal MA

TEST(NoncausalMaTest, TriangularSumCdfShape) {
  EXPECT_DOUBLE_EQ(NoncausalMaProcess::TriangularSumCdf(-0.5), 0.0);
  EXPECT_DOUBLE_EQ(NoncausalMaProcess::TriangularSumCdf(1.0), 0.5);
  EXPECT_DOUBLE_EQ(NoncausalMaProcess::TriangularSumCdf(2.5), 1.0);
  EXPECT_NEAR(NoncausalMaProcess::TriangularSumCdf(0.5), 0.125, 1e-15);
  EXPECT_NEAR(NoncausalMaProcess::TriangularSumCdf(1.5), 0.875, 1e-15);
}

TEST(NoncausalMaTest, MarginalCdfIsMixture) {
  const NoncausalMaProcess process;
  // At y = 1/3: ½ H2(1) + ½ H2(0) = 0.25. At y = 2/3: ½ H2(2) + ½ H2(1) = 0.75.
  EXPECT_NEAR(process.MarginalCdf(1.0 / 3.0), 0.25, 1e-12);
  EXPECT_NEAR(process.MarginalCdf(2.0 / 3.0), 0.75, 1e-12);
}

TEST(NoncausalMaTest, PathSolvesRecursionInTheInterior) {
  // The fixed-point iterate converges to Y_t = 0.4 (Y_{t-1} + Y_{t+1}) + 0.2 ξ_t.
  // Verify the recursion residual is small and ξ-consistent: residual/0.2 must
  // be a {0,1} value.
  stats::Rng rng(11);
  const NoncausalMaProcess process;
  const std::vector<double> path = process.Path(512, rng);
  int checked = 0;
  for (size_t t = 1; t + 1 < path.size(); ++t) {
    const double xi = (path[t] - 0.4 * (path[t - 1] + path[t + 1])) / 0.2;
    const double nearest = std::round(xi);
    ASSERT_NEAR(xi, nearest, 1e-6);
    ASSERT_TRUE(nearest == 0.0 || nearest == 1.0);
    ++checked;
  }
  EXPECT_GT(checked, 500);
}

TEST(NoncausalMaTest, ValuesStayInUnitInterval) {
  stats::Rng rng(13);
  for (double y : NoncausalMaProcess().Path(1024, rng)) {
    EXPECT_GE(y, 0.0);
    EXPECT_LE(y, 1.0);
  }
}

// ---------------------------------------------------------------- LSV map

TEST(LsvMapTest, MapBranches) {
  const LsvMapProcess process(0.5);
  EXPECT_DOUBLE_EQ(process.Map(0.75), 0.5);
  EXPECT_DOUBLE_EQ(process.Map(1.0), 1.0);
  // Left branch: x(1 + (2x)^α).
  EXPECT_NEAR(process.Map(0.5), 0.5 * (1.0 + 1.0), 1e-12);
  EXPECT_NEAR(process.Map(0.125), 0.125 * (1.0 + std::pow(0.25, 0.5)), 1e-12);
}

TEST(LsvMapTest, NeutralFixedPointAtZero) {
  const LsvMapProcess process(0.3);
  // Near 0 the map is nearly the identity (intermittency).
  const double x = 1e-6;
  EXPECT_NEAR(process.Map(x), x, 1e-7);
}

TEST(LsvMapTest, OrbitStaysInUnitInterval) {
  stats::Rng rng(17);
  for (double alpha : {0.1, 0.5, 0.9}) {
    const LsvMapProcess process(alpha);
    for (double y : process.Path(2048, rng)) {
      ASSERT_GT(y, 0.0);
      ASSERT_LE(y, 1.0);
    }
  }
}

TEST(LsvMapTest, LargerAlphaSpendsMoreTimeNearZero) {
  // Intermittency: mass near the neutral fixed point grows with α.
  stats::Rng rng(19);
  const auto low_mass_fraction = [&](double alpha) {
    const LsvMapProcess process(alpha);
    const std::vector<double> path = process.Path(20000, rng);
    size_t low = 0;
    for (double y : path) low += (y < 0.05);
    return static_cast<double>(low) / static_cast<double>(path.size());
  };
  EXPECT_GT(low_mass_fraction(0.9), low_mass_fraction(0.1));
}

TEST(LsvMapDeathTest, MarginalCdfUnsupported) {
  const LsvMapProcess process(0.5);
  EXPECT_DEATH(process.MarginalCdf(0.5), "no closed form");
}

TEST(LsvMapDeathTest, RejectsBadAlpha) {
  EXPECT_DEATH(LsvMapProcess(0.0), "in \\(0,1\\)");
  EXPECT_DEATH(LsvMapProcess(1.0), "in \\(0,1\\)");
}

// -------------------------------------------------------------------- AR(1)

TEST(Ar1Test, MarginalVariance) {
  const Ar1GaussianProcess process(0.8, 0.6);
  EXPECT_NEAR(process.marginal_stddev(), 0.6 / std::sqrt(1.0 - 0.64), 1e-12);
}

// -------------------------------------------------------------- transforms

class CaseSweepTest : public testing::TestWithParam<harness::DependenceCase> {};

TEST_P(CaseSweepTest, TransformedMarginalMatchesTarget) {
  auto target = std::make_shared<const SineUniformMixtureDensity>();
  const TransformedProcess process = harness::MakeCase(GetParam(), target);
  stats::Rng rng(101);
  const std::vector<double> xs = process.Sample(8192, rng);
  for (double x : xs) {
    ASSERT_GE(x, 0.0);
    ASSERT_LE(x, 1.0);
  }
  const double d = stats::KolmogorovSmirnovDistance(
      xs, [&](double x) { return target->Cdf(x); });
  EXPECT_LT(d, 0.06) << harness::CaseName(GetParam());
}

TEST_P(CaseSweepTest, GaussianMixtureMarginalMatchesTarget) {
  auto target = std::make_shared<const TruncatedGaussianMixtureDensity>(
      TruncatedGaussianMixtureDensity::Bimodal());
  const TransformedProcess process = harness::MakeCase(GetParam(), target);
  stats::Rng rng(103);
  const std::vector<double> xs = process.Sample(8192, rng);
  const double d = stats::KolmogorovSmirnovDistance(
      xs, [&](double x) { return target->Cdf(x); });
  EXPECT_LT(d, 0.06) << harness::CaseName(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Cases, CaseSweepTest,
                         testing::Values(harness::DependenceCase::kIid,
                                         harness::DependenceCase::kLogisticMap,
                                         harness::DependenceCase::kNoncausalMa));

TEST(TransformedProcessTest, DependenceSurvivesTransform) {
  // The logistic map has zero *linear* autocorrelation (it is conjugate to
  // the doubling map), so dependence must be probed through indicators:
  // P(X_i < q, X_{i+1} < q) differs from P(X_i < q)² for Case 2 but not
  // Case 1. With q at the 0.3-quantile the exact joint mass for the
  // transformed tent/doubling pair is 0.15 vs 0.09 independent.
  auto target = std::make_shared<const UniformDensity>();
  stats::Rng rng(107);
  const std::vector<double> dependent =
      harness::MakeCase(harness::DependenceCase::kLogisticMap, target).Sample(8192, rng);
  const std::vector<double> independent =
      harness::MakeCase(harness::DependenceCase::kIid, target).Sample(8192, rng);
  const auto joint_excess = [](const std::vector<double>& xs) {
    const double q = 0.3;
    double joint = 0.0, single = 0.0;
    for (size_t i = 0; i + 1 < xs.size(); ++i) {
      joint += (xs[i] < q && xs[i + 1] < q);
      single += (xs[i] < q);
    }
    const double n = static_cast<double>(xs.size() - 1);
    joint /= n;
    single /= n;
    return std::fabs(joint - single * single);
  };
  EXPECT_GT(joint_excess(dependent), 0.03);
  EXPECT_LT(joint_excess(independent), 0.02);
}

}  // namespace
}  // namespace processes
}  // namespace wde
