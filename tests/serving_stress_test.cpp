// Concurrency stress suite for the serving engine, designed to run under
// ThreadSanitizer (the tsan CI preset includes it by name). N writer threads
// ingest and publish while M reader threads answer mixed batches, pin views,
// and re-answer through them; a checkpointer thread snapshots and a standby
// restores mid-traffic. The assertions are the invariants tsan cannot see:
// per-reader epoch monotonicity, and answers through a HELD view staying
// bit-identical no matter how many publishes happen in between (the RCU
// immutability contract). Every schedule runs over a deterministic seed
// matrix so failures reproduce.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "selectivity/estimator_spec.hpp"
#include "selectivity/query_workload.hpp"
#include "serving/estimator_service.hpp"
#include "stats/rng.hpp"
#include "util/check.hpp"

namespace wde {
namespace {

selectivity::EstimatorSpec ShardedHistogramSpec() {
  selectivity::EstimatorSpec spec;
  spec.tag = "sharded";
  spec.sharded_inner_tag = "equi-width";
  spec.buckets = 64;
  spec.shards = 3;
  spec.block_size = 128;
  return spec;
}

std::unique_ptr<serving::EstimatorService> MakeService(
    const serving::ServiceOptions& options) {
  Result<std::unique_ptr<serving::EstimatorService>> service =
      serving::EstimatorService::Create(ShardedHistogramSpec(), options);
  WDE_CHECK(service.ok(), service.status().ToString().c_str());
  return std::move(service).value();
}

std::vector<double> AnswersOf(const selectivity::SelectivityEstimator& view,
                              const std::vector<selectivity::Query>& queries) {
  std::vector<double> out(queries.size());
  view.Answer(queries, out);
  return out;
}

/// One full schedule: `writers` ingest threads racing `readers` answer
/// threads (plus an optional checkpoint/restore thread) over one service.
/// Readers check epoch monotonicity and held-view bit-stability inline;
/// failures are counted atomically and asserted on the joined thread,
/// because gtest EXPECT_* is not thread-safe.
void RunSchedule(uint64_t seed, int writers, int readers,
                 bool with_checkpointer, const serving::ServiceOptions& options,
                 int batches_per_reader) {
  std::unique_ptr<serving::EstimatorService> service = MakeService(options);
  std::atomic<uint64_t> epoch_regressions{0};
  std::atomic<uint64_t> held_view_divergences{0};
  std::atomic<bool> stop_writers{false};

  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(writers + readers) + 1);
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      stats::Rng rng(seed * 1000003 + static_cast<uint64_t>(w));
      std::vector<double> block(257);
      while (!stop_writers.load(std::memory_order_relaxed)) {
        for (double& x : block) x = rng.UniformDouble();
        service->InsertBatch(block);
        if (rng.UniformDouble() < 0.05) service->Publish();
      }
    });
  }
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      stats::Rng rng(seed * 2000003 + static_cast<uint64_t>(r));
      uint64_t last_epoch = 0;
      for (int b = 0; b < batches_per_reader; ++b) {
        const std::vector<selectivity::Query> queries =
            selectivity::MixedQueryWorkload(rng, 32, 0.0, 1.0);
        std::vector<double> out(queries.size());
        service->Answer(queries, out);
        const serving::EstimatorService::View held = service->CurrentView();
        if (held.epoch < last_epoch) {
          epoch_regressions.fetch_add(1, std::memory_order_relaxed);
        }
        last_epoch = held.epoch;
        // The pinned view must answer bit-identically now and after many
        // more concurrent publishes have retired it.
        const std::vector<double> first = AnswersOf(*held.estimator, queries);
        std::this_thread::yield();
        if (AnswersOf(*held.estimator, queries) != first) {
          held_view_divergences.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  if (with_checkpointer) {
    threads.emplace_back([&] {
      const std::string path = testing::TempDir() + "/wde_stress_" +
                               std::to_string(seed) + ".snap";
      std::unique_ptr<serving::EstimatorService> standby =
          MakeService(options);
      for (int i = 0; i < 4; ++i) {
        WDE_CHECK(service->Checkpoint(path).ok(), "stress checkpoint failed");
        // Warm-standby restore races the leader's writers and publishes.
        WDE_CHECK(standby->Restore(path).ok(), "stress restore failed");
        std::this_thread::yield();
      }
      std::remove(path.c_str());
    });
  }

  // Readers decide the schedule length; writers spin until they finish.
  for (size_t t = threads.size(); t-- > static_cast<size_t>(writers);) {
    threads[t].join();
    threads.pop_back();
  }
  stop_writers.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(epoch_regressions.load(), 0u) << "seed " << seed;
  EXPECT_EQ(held_view_divergences.load(), 0u) << "seed " << seed;
  EXPECT_GE(service->epoch(), 1u);
}

TEST(ServingStressTest, WritersVersusCachedReaders) {
  serving::ServiceOptions options;
  options.publish_interval = 2048;
  options.cache_shards = 4;
  options.cache_slots_per_shard = 512;
  for (uint64_t seed : {1u, 2u, 3u}) {
    RunSchedule(seed, /*writers=*/2, /*readers=*/3,
                /*with_checkpointer=*/false, options,
                /*batches_per_reader=*/60);
  }
}

TEST(ServingStressTest, WritersVersusUncachedReaders) {
  serving::ServiceOptions options;
  options.publish_interval = 1024;
  options.cache_shards = 0;  // every answer goes to the view
  for (uint64_t seed : {4u, 5u}) {
    RunSchedule(seed, /*writers=*/3, /*readers=*/2,
                /*with_checkpointer=*/false, options,
                /*batches_per_reader=*/60);
  }
}

TEST(ServingStressTest, CheckpointAndRestoreRaceTraffic) {
  serving::ServiceOptions options;
  options.publish_interval = 1024;
  options.cache_shards = 2;
  options.cache_slots_per_shard = 256;
  for (uint64_t seed : {6u, 7u}) {
    RunSchedule(seed, /*writers=*/2, /*readers=*/2,
                /*with_checkpointer=*/true, options,
                /*batches_per_reader=*/40);
  }
}

TEST(ServingStressTest, TimePacedPublishesUnderTrickleIngest) {
  serving::ServiceOptions options;
  options.publish_interval = 0;
  options.max_staleness_ms = 1;  // every admission is effectively over budget
  options.cache_shards = 2;
  options.cache_slots_per_shard = 256;
  RunSchedule(/*seed=*/8, /*writers=*/2, /*readers=*/2,
              /*with_checkpointer=*/false, options,
              /*batches_per_reader=*/40);
}

}  // namespace
}  // namespace wde
