#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "kernel/bandwidth.hpp"
#include "kernel/kde.hpp"
#include "kernel/kernels.hpp"
#include "numerics/integration.hpp"
#include "numerics/special_functions.hpp"
#include "stats/descriptive.hpp"
#include "stats/rng.hpp"

namespace wde {
namespace kernel {
namespace {

class KernelSweepTest : public testing::TestWithParam<KernelType> {};

TEST_P(KernelSweepTest, UnitMass) {
  const Kernel k(GetParam());
  const double mass = numerics::IntegrateFunction(
      [&](double u) { return k.Evaluate(u); }, -k.support_radius(),
      k.support_radius(), 4096);
  EXPECT_NEAR(mass, 1.0, 1e-6);
}

TEST_P(KernelSweepTest, Symmetry) {
  const Kernel k(GetParam());
  for (double u : {0.1, 0.33, 0.8, 0.99}) {
    EXPECT_DOUBLE_EQ(k.Evaluate(u), k.Evaluate(-u));
  }
}

TEST_P(KernelSweepTest, CdfEndpointsAndMidpoint) {
  const Kernel k(GetParam());
  EXPECT_DOUBLE_EQ(k.Cdf(-k.support_radius() - 1.0), 0.0);
  EXPECT_DOUBLE_EQ(k.Cdf(k.support_radius() + 1.0), 1.0);
  EXPECT_NEAR(k.Cdf(0.0), 0.5, 1e-6);
}

TEST_P(KernelSweepTest, EvaluateManyBitIdenticalToScalar) {
  const Kernel k(GetParam());
  stats::Rng rng(71);
  std::vector<double> us;
  for (int i = 0; i < 500; ++i) {
    us.push_back(rng.Uniform(-k.support_radius() - 1.0, k.support_radius() + 1.0));
  }
  // The exact branch points of the scalar paths.
  us.push_back(-k.support_radius());
  us.push_back(k.support_radius());
  us.push_back(-1.0);
  us.push_back(0.0);
  us.push_back(1.0);
  std::vector<double> batch(us.size());
  k.EvaluateMany(us, batch);
  for (size_t i = 0; i < us.size(); ++i) {
    EXPECT_EQ(batch[i], k.Evaluate(us[i])) << k.name() << " u=" << us[i];
  }
  k.CdfMany(us, batch);
  for (size_t i = 0; i < us.size(); ++i) {
    EXPECT_EQ(batch[i], k.Cdf(us[i])) << k.name() << " u=" << us[i];
  }
}

TEST_P(KernelSweepTest, SelfConvolutionIsADensity) {
  const Kernel k(GetParam());
  const double mass = numerics::IntegrateFunction(
      [&](double t) { return k.SelfConvolution(t); }, -2.0 * k.support_radius(),
      2.0 * k.support_radius(), 4096);
  EXPECT_NEAR(mass, 1.0, 1e-4);
  EXPECT_GT(k.Roughness(), 0.0);
  // K*K peaks at 0 for symmetric unimodal kernels.
  EXPECT_GE(k.SelfConvolution(0.0), k.SelfConvolution(0.5));
}

INSTANTIATE_TEST_SUITE_P(AllKernels, KernelSweepTest,
                         testing::Values(KernelType::kEpanechnikov,
                                         KernelType::kGaussian, KernelType::kBiweight,
                                         KernelType::kTriangular));

TEST(EpanechnikovTest, ClosedFormValues) {
  const Kernel k(KernelType::kEpanechnikov);
  EXPECT_DOUBLE_EQ(k.Evaluate(0.0), 0.75);
  EXPECT_DOUBLE_EQ(k.Evaluate(0.5), 0.75 * 0.75);
  EXPECT_DOUBLE_EQ(k.Evaluate(1.1), 0.0);
  // CDF closed form: (2 + 3u − u³)/4.
  for (double u : {-0.5, 0.0, 0.3, 0.9}) {
    EXPECT_NEAR(k.Cdf(u), 0.25 * (2.0 + 3.0 * u - u * u * u), 1e-6);
  }
  // Roughness ∫K² = 3/5.
  EXPECT_NEAR(k.Roughness(), 0.6, 1e-5);
}

TEST(EpanechnikovTest, SelfConvolutionClosedForm) {
  const Kernel k(KernelType::kEpanechnikov);
  // (K*K)(t) = (3/160)(2−|t|)³(t² + 6|t| + 4) on |t| ≤ 2.
  for (double t : {0.0, 0.4, 1.0, 1.7}) {
    const double a = std::fabs(t);
    const double expected =
        3.0 / 160.0 * std::pow(2.0 - a, 3.0) * (a * a + 6.0 * a + 4.0);
    EXPECT_NEAR(k.SelfConvolution(t), expected, 1e-5) << "t=" << t;
    EXPECT_NEAR(k.SelfConvolution(-t), expected, 1e-5);
  }
  EXPECT_NEAR(k.SelfConvolution(2.1), 0.0, 1e-12);
}

TEST(GaussianKernelTest, SelfConvolutionIsWiderGaussian) {
  const Kernel k(KernelType::kGaussian);
  // K*K for N(0,1) is the N(0,2) density.
  for (double t : {0.0, 0.7, 1.9}) {
    EXPECT_NEAR(k.SelfConvolution(t),
                numerics::NormalPdf(t / std::sqrt(2.0)) / std::sqrt(2.0), 1e-6);
  }
}

// ---------------------------------------------------------------------- KDE

TEST(KdeTest, RejectsBadInput) {
  const Kernel k(KernelType::kEpanechnikov);
  EXPECT_FALSE(KernelDensityEstimator::Create(k, 0.1, {}).ok());
  const std::vector<double> xs{1.0, 2.0};
  EXPECT_FALSE(KernelDensityEstimator::Create(k, 0.0, xs).ok());
  EXPECT_FALSE(KernelDensityEstimator::Create(k, -1.0, xs).ok());
}

TEST(KdeTest, IntegratesToOne) {
  stats::Rng rng(3);
  std::vector<double> xs(500);
  for (double& x : xs) x = rng.UniformDouble();
  const auto kde = KernelDensityEstimator::Create(
      Kernel(KernelType::kEpanechnikov), 0.1, xs);
  ASSERT_TRUE(kde.ok());
  const double mass = numerics::IntegrateFunction(
      [&](double x) { return kde->Evaluate(x); }, -0.5, 1.5, 4096);
  EXPECT_NEAR(mass, 1.0, 1e-3);
  EXPECT_NEAR(kde->IntegrateRange(-0.5, 1.5), 1.0, 1e-6);
}

TEST(KdeTest, SinglePointMass) {
  const std::vector<double> xs{0.5};
  const auto kde = KernelDensityEstimator::Create(
      Kernel(KernelType::kEpanechnikov), 0.25, xs);
  ASSERT_TRUE(kde.ok());
  EXPECT_NEAR(kde->Evaluate(0.5), 0.75 / 0.25, 1e-12);  // K(0)/h
  EXPECT_DOUBLE_EQ(kde->Evaluate(0.76), 0.0);
  EXPECT_DOUBLE_EQ(kde->Evaluate(0.24), 0.0);
}

TEST(KdeTest, RecoversGaussianDensity) {
  stats::Rng rng(5);
  std::vector<double> xs(8000);
  for (double& x : xs) x = rng.Gaussian();
  const double h = RuleOfThumbBandwidth(xs);
  const auto kde =
      KernelDensityEstimator::Create(Kernel(KernelType::kEpanechnikov), h, xs);
  ASSERT_TRUE(kde.ok());
  for (double x : {-1.0, 0.0, 1.0}) {
    EXPECT_NEAR(kde->Evaluate(x), numerics::NormalPdf(x), 0.03) << "x=" << x;
  }
}

TEST(KdeTest, IntegrateRangeMatchesQuadrature) {
  stats::Rng rng(7);
  std::vector<double> xs(300);
  for (double& x : xs) x = rng.UniformDouble();
  const auto kde =
      KernelDensityEstimator::Create(Kernel(KernelType::kEpanechnikov), 0.07, xs);
  ASSERT_TRUE(kde.ok());
  const double direct = numerics::IntegrateFunction(
      [&](double x) { return kde->Evaluate(x); }, 0.2, 0.7, 4096);
  EXPECT_NEAR(kde->IntegrateRange(0.2, 0.7), direct, 1e-5);
}

TEST(KdeTest, GridEvaluationMatchesPointwise) {
  const std::vector<double> xs{0.2, 0.5, 0.8};
  const auto kde =
      KernelDensityEstimator::Create(Kernel(KernelType::kEpanechnikov), 0.2, xs);
  ASSERT_TRUE(kde.ok());
  const std::vector<double> grid = kde->EvaluateOnGrid(0.0, 1.0, 11);
  for (size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(grid[i], kde->Evaluate(0.1 * static_cast<double>(i)));
  }
}

// ---------------------------------------------------------------- bandwidth

TEST(BandwidthTest, RuleOfThumbFormula) {
  // Deterministic sample with known MATLAB quartiles.
  std::vector<double> xs;
  for (int i = 1; i <= 100; ++i) xs.push_back(static_cast<double>(i));
  const double q1 = stats::Quantile(xs, 0.25, stats::QuantileMethod::kMatlab);
  const double q3 = stats::Quantile(xs, 0.75, stats::QuantileMethod::kMatlab);
  const double expected =
      (q3 - q1) / (2.0 * 0.6745) * std::pow(4.0 / (3.0 * 100.0), 0.2);
  EXPECT_NEAR(RuleOfThumbBandwidth(xs), expected, 1e-12);
}

TEST(BandwidthTest, RuleOfThumbShrinksWithN) {
  stats::Rng rng(11);
  std::vector<double> small(100), large(10000);
  for (double& x : small) x = rng.Gaussian();
  for (double& x : large) x = rng.Gaussian();
  EXPECT_GT(RuleOfThumbBandwidth(small), RuleOfThumbBandwidth(large));
}

TEST(BandwidthTest, SilvermanCloseToRuleOfThumbOnGaussian) {
  stats::Rng rng(13);
  std::vector<double> xs(5000);
  for (double& x : xs) x = rng.Gaussian();
  const double rot = RuleOfThumbBandwidth(xs);
  const double silverman = SilvermanBandwidth(xs);
  EXPECT_NEAR(silverman / rot, 0.85, 0.15);  // both ~ c·σ·n^{-1/5}
}

TEST(BandwidthTest, LscvCriterionMatchesBruteForce) {
  stats::Rng rng(17);
  std::vector<double> xs(60);
  for (double& x : xs) x = rng.UniformDouble();
  std::sort(xs.begin(), xs.end());
  const Kernel k(KernelType::kEpanechnikov);
  const double h = 0.08;
  // Brute force: ∫f̂² by quadrature, leave-one-out by the double loop.
  const auto kde = KernelDensityEstimator::Create(k, h, xs);
  ASSERT_TRUE(kde.ok());
  const double int_f2 = numerics::IntegrateFunction(
      [&](double x) {
        const double f = kde->Evaluate(x);
        return f * f;
      },
      -0.5, 1.5, 8192);
  double loo = 0.0;
  const double n = static_cast<double>(xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    double fi = 0.0;
    for (size_t j = 0; j < xs.size(); ++j) {
      if (i == j) continue;
      fi += k.Evaluate((xs[i] - xs[j]) / h);
    }
    loo += fi / ((n - 1.0) * h);
  }
  const double brute = int_f2 - 2.0 * loo / n;
  EXPECT_NEAR(LeastSquaresCvCriterion(k, xs, h), brute, 5e-4);
}

TEST(BandwidthTest, LscvPicksSmallerBandwidthForBimodalData) {
  // The rule of thumb oversmooths a sharp mixture; LSCV should undercut it.
  stats::Rng rng(19);
  std::vector<double> xs(1500);
  for (double& x : xs) {
    x = rng.Bernoulli(0.5) ? rng.Gaussian(0.3, 0.03) : rng.Gaussian(0.7, 0.03);
  }
  const Kernel k(KernelType::kEpanechnikov);
  const double rot = RuleOfThumbBandwidth(xs);
  const double lscv = LeastSquaresCvBandwidth(k, xs);
  EXPECT_LT(lscv, 0.8 * rot);
}

TEST(BandwidthTest, LscvNearOptimalForGaussian) {
  // For Gaussian data LSCV should land within a factor ~2 of the asymptotic
  // optimum h_AMISE = (40√π)^{1/5} σ n^{-1/5} for the Epanechnikov kernel.
  stats::Rng rng(23);
  std::vector<double> xs(2000);
  for (double& x : xs) x = rng.Gaussian();
  const Kernel k(KernelType::kEpanechnikov);
  const double lscv = LeastSquaresCvBandwidth(k, xs);
  const double amise =
      std::pow(40.0 * std::sqrt(M_PI), 0.2) * std::pow(2000.0, -0.2);
  EXPECT_GT(lscv, amise / 2.0);
  EXPECT_LT(lscv, amise * 2.0);
}

}  // namespace
}  // namespace kernel
}  // namespace wde
