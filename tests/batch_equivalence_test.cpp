// Property tests for the batch-first hot paths: every batch entry point
// (EvaluateMany / AntiderivativeMany / AddAll / AddBatch / InsertBatch /
// EstimateBatch and the hoisted per-level evaluators) must produce results
// BIT-IDENTICAL to the scalar loop it replaces, across all estimators and
// random domains. These tests are the contract that lets the scalar virtuals
// stay the extension point while the batch paths carry production traffic.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "core/binned.hpp"
#include "core/coefficients.hpp"
#include "core/cross_validation.hpp"
#include "core/estimator.hpp"
#include "kernel/kde.hpp"
#include "kernel/kernels.hpp"
#include "selectivity/estimator_registry.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/kde_selectivity.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"
#include "stats/rng.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace {

const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

const wavelet::WaveletBasis& Daub4Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Daubechies(4), 10);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

// Points spread over (and beyond) the mother support / unit interval,
// including the exact edges where the scalar paths branch.
std::vector<double> ProbePoints(stats::Rng& rng, size_t n, double lo, double hi) {
  std::vector<double> xs;
  xs.reserve(n + 4);
  for (size_t i = 0; i < n; ++i) xs.push_back(rng.Uniform(lo, hi));
  xs.push_back(lo);
  xs.push_back(hi);
  xs.push_back(0.0);
  xs.push_back(1.0);
  return xs;
}

// ------------------------------------------------------- numerics / wavelet

TEST(BatchEquivalenceTest, InterpolatorEvaluateMany) {
  stats::Rng rng(101);
  std::vector<double> values(257);
  for (double& v : values) v = rng.Gaussian();
  const numerics::UniformGridInterpolator interp(-1.5, 0.03125, values);
  const std::vector<double> xs = ProbePoints(rng, 500, -3.0, 9.0);
  std::vector<double> batch(xs.size());
  interp.EvaluateMany(xs, batch);
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(batch[i], interp.Evaluate(xs[i])) << "x=" << xs[i];
  }
}

TEST(BatchEquivalenceTest, MotherEvaluateManyAndAntiderivativeMany) {
  stats::Rng rng(103);
  for (const wavelet::WaveletBasis* basis : {&Sym8Basis(), &Daub4Basis()}) {
    const double support = static_cast<double>(basis->support_length());
    const std::vector<double> xs = ProbePoints(rng, 400, -2.0, support + 2.0);
    std::vector<double> batch(xs.size());
    basis->EvaluateMany(wavelet::MotherFunction::kPhi, xs, batch);
    for (size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(batch[i], basis->Phi(xs[i]));
    basis->EvaluateMany(wavelet::MotherFunction::kPsi, xs, batch);
    for (size_t i = 0; i < xs.size(); ++i) EXPECT_EQ(batch[i], basis->Psi(xs[i]));
    basis->AntiderivativeMany(wavelet::MotherFunction::kPhi, xs, batch);
    for (size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(batch[i], basis->PhiAntiderivative(xs[i]));
    }
    basis->AntiderivativeMany(wavelet::MotherFunction::kPsi, xs, batch);
    for (size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(batch[i], basis->PsiAntiderivative(xs[i]));
    }
  }
}

TEST(BatchEquivalenceTest, ScaledLevelEvaluatorMatchesScalarEntryPoints) {
  stats::Rng rng(107);
  const wavelet::WaveletBasis& basis = Sym8Basis();
  for (int j : {0, 2, 5, 9}) {
    const wavelet::ScaledLevelEvaluator phi = basis.PhiLevel(j);
    const wavelet::ScaledLevelEvaluator psi = basis.PsiLevel(j);
    const double scale = std::ldexp(1.0, j);
    for (int rep = 0; rep < 200; ++rep) {
      const double x = rng.Uniform(-0.25, 1.25);
      const wavelet::TranslationWindow expected = basis.PointWindow(j, x);
      const wavelet::TranslationWindow got = phi.PointWindow(x);
      EXPECT_EQ(got.lo, expected.lo);
      EXPECT_EQ(got.hi, expected.hi);
      for (int k = expected.lo; k <= expected.hi; ++k) {
        EXPECT_EQ(phi.Value(k, x), basis.PhiJk(j, k, x));
        EXPECT_EQ(psi.Value(k, x), basis.PsiJk(j, k, x));
        EXPECT_EQ(phi.AntiderivativeAt(k, x),
                  basis.PhiAntiderivative(scale * x - k));
        EXPECT_EQ(psi.AntiderivativeAt(k, x),
                  basis.PsiAntiderivative(scale * x - k));
      }
    }
  }
}

// ------------------------------------------------------------------- core

TEST(BatchEquivalenceTest, CoefficientAddAllMatchesScalarAddBitwise) {
  stats::Rng rng(109);
  std::vector<double> xs(3000);
  for (double& x : xs) x = rng.UniformDouble();
  Result<core::EmpiricalCoefficients> scalar =
      core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 8);
  Result<core::EmpiricalCoefficients> batch =
      core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 8);
  ASSERT_TRUE(scalar.ok() && batch.ok());
  for (double x : xs) scalar->Add(x);
  batch->AddAll(xs);
  ASSERT_EQ(scalar->count(), batch->count());
  const auto expect_level_eq = [](const core::CoefficientLevel& a,
                                  const core::CoefficientLevel& b) {
    ASSERT_EQ(a.size(), b.size());
    for (int i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.s1[static_cast<size_t>(i)], b.s1[static_cast<size_t>(i)])
          << "s1 at level " << a.j << " index " << i;
      EXPECT_EQ(a.s2[static_cast<size_t>(i)], b.s2[static_cast<size_t>(i)])
          << "s2 at level " << a.j << " index " << i;
    }
  };
  expect_level_eq(scalar->scaling_level(), batch->scaling_level());
  for (int j = 2; j <= 8; ++j) {
    expect_level_eq(scalar->detail_level(j), batch->detail_level(j));
  }
}

TEST(BatchEquivalenceTest, EstimateEvaluateManyMatchesScalarBitwise) {
  stats::Rng rng(113);
  std::vector<double> data(2048);
  for (double& x : data) x = rng.Uniform(-3.0, 5.0);
  core::FitOptions options;
  options.domain_lo = -3.0;
  options.domain_hi = 5.0;
  Result<core::WaveletDensityFit> fit =
      core::WaveletDensityFit::Fit(Sym8Basis(), data, options);
  ASSERT_TRUE(fit.ok());
  const core::CrossValidationResult cv =
      core::CrossValidate(fit->coefficients(), core::ThresholdKind::kSoft);
  const core::WaveletEstimate estimate =
      fit->Estimate(cv.Schedule(), core::ThresholdKind::kSoft);

  const std::vector<double> xs = ProbePoints(rng, 800, -4.0, 6.0);
  std::vector<double> batch(xs.size());
  estimate.EvaluateMany(xs, batch);
  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(batch[i], estimate.Evaluate(xs[i])) << "x=" << xs[i];
  }
  const std::vector<double> grid = estimate.EvaluateOnGrid(-3.0, 5.0, 257);
  for (size_t i = 0; i < grid.size(); ++i) {
    const double x = -3.0 + 8.0 * static_cast<double>(i) / 256.0;
    EXPECT_EQ(grid[i], estimate.Evaluate(-3.0 + (8.0 / 256.0) * static_cast<double>(i)))
        << "grid x=" << x;
  }
}

TEST(BatchEquivalenceTest, IntegrateRangeManyMatchesScalarBitwise) {
  stats::Rng rng(127);
  std::vector<double> data(2048);
  for (double& x : data) x = rng.UniformDouble();
  Result<core::WaveletDensityFit> fit =
      core::WaveletDensityFit::Fit(Sym8Basis(), data);
  ASSERT_TRUE(fit.ok());
  const core::CrossValidationResult cv =
      core::CrossValidate(fit->coefficients(), core::ThresholdKind::kHard);
  const core::WaveletEstimate estimate =
      fit->Estimate(cv.Schedule(), core::ThresholdKind::kHard);

  const size_t n = 500;
  std::vector<double> a(n), b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.Uniform(-0.2, 1.2);
    b[i] = rng.Uniform(-0.2, 1.2);  // unsorted: some reversed, some empty
  }
  a[0] = 0.3;
  b[0] = 0.3;  // degenerate range
  a[1] = 0.9;
  b[1] = 0.1;  // reversed
  a[2] = -5.0;
  b[2] = 7.0;  // fully clamped
  std::vector<double> batch(n);
  estimate.IntegrateRangeMany(a, b, batch);
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(batch[i], estimate.IntegrateRange(a[i], b[i]))
        << "[" << a[i] << ", " << b[i] << "]";
  }
}

TEST(BatchEquivalenceTest, BinnedAddBatchMatchesOneShotFitBitwise) {
  stats::Rng rng(131);
  std::vector<double> xs(4096);
  for (double& x : xs) x = rng.UniformDouble();
  const wavelet::WaveletFilter filter = *wavelet::WaveletFilter::Symmlet(8);
  Result<core::BinnedWaveletFit> oneshot =
      core::BinnedWaveletFit::Fit(filter, xs, 2, 9);
  ASSERT_TRUE(oneshot.ok());
  const std::span<const double> all(xs);
  Result<core::BinnedWaveletFit> incremental =
      core::BinnedWaveletFit::Fit(filter, all.first(1000), 2, 9);
  ASSERT_TRUE(incremental.ok());
  ASSERT_TRUE(incremental->AddBatch(all.subspan(1000, 96)).ok());
  ASSERT_TRUE(incremental->AddBatch(all.subspan(1096)).ok());
  ASSERT_EQ(oneshot->count(), incremental->count());
  for (int k = 0; k < 4; ++k) EXPECT_EQ(oneshot->AlphaHat(k), incremental->AlphaHat(k));
  for (int j = 2; j < 9; ++j) {
    for (int k = 0; k < (1 << j); ++k) {
      EXPECT_EQ(oneshot->BetaHat(j, k), incremental->BetaHat(j, k))
          << "j=" << j << " k=" << k;
    }
  }
  // Out-of-range batches are rejected atomically.
  const std::vector<double> bad{0.5, 1.5};
  EXPECT_FALSE(incremental->AddBatch(bad).ok());
  EXPECT_EQ(incremental->count(), xs.size());
  EXPECT_EQ(oneshot->BetaHat(5, 7), incremental->BetaHat(5, 7));
}

// ------------------------------------------------------------------ kernel

TEST(BatchEquivalenceTest, KdeEvaluateManyAndCdfAtManyMatchScalarBitwise) {
  stats::Rng rng(137);
  std::vector<double> data(1500);
  for (double& x : data) x = rng.UniformDouble();
  for (kernel::KernelType type :
       {kernel::KernelType::kEpanechnikov, kernel::KernelType::kGaussian,
        kernel::KernelType::kBiweight, kernel::KernelType::kTriangular}) {
    Result<kernel::KernelDensityEstimator> kde =
        kernel::KernelDensityEstimator::Create(kernel::Kernel(type), 0.05, data);
    ASSERT_TRUE(kde.ok());
    const std::vector<double> xs = ProbePoints(rng, 400, -0.5, 1.5);
    std::vector<double> batch(xs.size());
    // tolerance 0 (the default): the SIMD-gathered windowed pass must be
    // bit-identical to the scalar evaluation; positive tolerances must
    // dispatch to the same tree-pruned path the scalar overload runs.
    for (double tol : {0.0, 1e-4}) {
      kde->EvaluateMany(xs, batch, tol);
      for (size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(batch[i], kde->Evaluate(xs[i], tol))
            << kde->kernel().name() << " tol=" << tol << " x=" << xs[i];
      }
      kde->CdfAtMany(xs, batch, tol);
      for (size_t i = 0; i < xs.size(); ++i) {
        EXPECT_EQ(batch[i], kde->CdfAt(xs[i], tol))
            << kde->kernel().name() << " tol=" << tol << " x=" << xs[i];
      }
    }
    // And tolerance 0 equals the plain scalar entry points.
    for (double x : xs) {
      EXPECT_EQ(kde->Evaluate(x, 0.0), kde->Evaluate(x));
      EXPECT_EQ(kde->CdfAt(x, 0.0), kde->CdfAt(x));
    }
  }
}

// ------------------------------------------------------------- selectivity

// Drives one estimator pair through an identical dirty stream — scalar
// inserts on `scalar`, batched inserts on `batch` — with queries interleaved
// between chunks, and requires bit-identical answers throughout.
void ExpectStreamEquivalence(selectivity::SelectivityEstimator* scalar,
                             selectivity::SelectivityEstimator* batch,
                             uint64_t seed) {
  stats::Rng data_rng(seed);
  stats::Rng query_rng(seed + 1);
  const std::vector<size_t> chunk_sizes{1, 137, 256, 1000, 3, 0, 777, 2048};
  for (size_t chunk : chunk_sizes) {
    std::vector<double> values(chunk);
    for (double& v : values) {
      const double u = data_rng.UniformDouble();
      if (u < 0.01) {
        v = std::nan("");
      } else if (u < 0.02) {
        v = std::numeric_limits<double>::infinity();
      } else if (u < 0.04) {
        v = data_rng.Uniform(-2.0, 3.0);  // out of domain: clamped
      } else {
        v = data_rng.UniformDouble();
      }
    }
    for (double v : values) scalar->Insert(v);
    batch->InsertBatch(values);
    ASSERT_EQ(scalar->count(), batch->count()) << scalar->name();

    const std::vector<selectivity::RangeQuery> queries =
        selectivity::UniformRangeWorkload(query_rng, 50, -0.1, 1.1);
    std::vector<double> batch_answers(queries.size());
    batch->EstimateBatch(queries, batch_answers);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batch_answers[i],
                scalar->EstimateRange(queries[i].lo, queries[i].hi))
          << scalar->name() << " [" << queries[i].lo << ", " << queries[i].hi
          << "] after " << scalar->count() << " inserts";
    }
  }
}

TEST(BatchEquivalenceTest, WaveletSketchInsertBatchAndEstimateBatch) {
  selectivity::StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 8;
  options.refit_interval = 100;  // force many mid-batch refits
  Result<selectivity::StreamingWaveletSelectivity> scalar =
      selectivity::StreamingWaveletSelectivity::Create(Sym8Basis(), options);
  Result<selectivity::StreamingWaveletSelectivity> batch =
      selectivity::StreamingWaveletSelectivity::Create(Sym8Basis(), options);
  ASSERT_TRUE(scalar.ok() && batch.ok());
  ExpectStreamEquivalence(&scalar.value(), &batch.value(), 1001);
}

TEST(BatchEquivalenceTest, KdeSelectivityBatchOverrides) {
  selectivity::KdeSelectivity::Options options;
  options.refit_interval = 100;
  selectivity::KdeSelectivity scalar(options);
  selectivity::KdeSelectivity batch(options);
  ExpectStreamEquivalence(&scalar, &batch, 2002);
}

TEST(BatchEquivalenceTest, KdeSelectivityBoundedToleranceBatchOverrides) {
  // The bounded tree-pruned evaluation mode must satisfy the same
  // batch-equals-scalar bitwise contract as the exact default.
  selectivity::KdeSelectivity::Options options;
  options.refit_interval = 100;
  options.eval_tolerance = 1e-5;
  selectivity::KdeSelectivity scalar(options);
  selectivity::KdeSelectivity batch(options);
  ExpectStreamEquivalence(&scalar, &batch, 2112);
}

TEST(BatchEquivalenceTest, KdeSelectivityToleranceContractVsExact) {
  // A range answer is CdfAt(hi) − CdfAt(lo), each endpoint within the
  // certified eval_tolerance of exact, so the bounded estimator may deviate
  // from the exact one by at most 2·tolerance (plus rounding slack).
  const double tol = 1e-4;
  selectivity::KdeSelectivity::Options exact_options;
  selectivity::KdeSelectivity::Options bounded_options;
  bounded_options.eval_tolerance = tol;
  selectivity::KdeSelectivity exact(exact_options);
  selectivity::KdeSelectivity bounded(bounded_options);
  stats::Rng rng(2222);
  std::vector<double> values(4000);
  for (double& v : values) v = rng.UniformDouble();
  exact.InsertBatch(values);
  bounded.InsertBatch(values);
  const std::vector<selectivity::RangeQuery> queries =
      selectivity::UniformRangeWorkload(rng, 200, -0.1, 1.1);
  for (const selectivity::RangeQuery& q : queries) {
    EXPECT_LE(std::fabs(bounded.EstimateRange(q.lo, q.hi) -
                        exact.EstimateRange(q.lo, q.hi)),
              2.0 * tol + 1e-12)
        << "[" << q.lo << ", " << q.hi << "]";
  }
}

TEST(BatchEquivalenceTest, DefaultBatchImplementations) {
  // Estimators relying on the interface's default batch loops must satisfy
  // the same equivalence contract.
  selectivity::EquiWidthHistogram ew_scalar(0.0, 1.0, 64);
  selectivity::EquiWidthHistogram ew_batch(0.0, 1.0, 64);
  ExpectStreamEquivalence(&ew_scalar, &ew_batch, 3003);

  selectivity::EquiDepthHistogram ed_scalar(0.0, 1.0, 16);
  selectivity::EquiDepthHistogram ed_batch(0.0, 1.0, 16);
  ExpectStreamEquivalence(&ed_scalar, &ed_batch, 4004);

  selectivity::ReservoirSampleSelectivity res_scalar(256, 7);
  selectivity::ReservoirSampleSelectivity res_batch(256, 7);
  ExpectStreamEquivalence(&res_scalar, &res_batch, 5005);

  Result<selectivity::WaveletSynopsisSelectivity> syn_scalar =
      selectivity::WaveletSynopsisSelectivity::Create({});
  Result<selectivity::WaveletSynopsisSelectivity> syn_batch =
      selectivity::WaveletSynopsisSelectivity::Create({});
  ASSERT_TRUE(syn_scalar.ok() && syn_batch.ok());
  ExpectStreamEquivalence(&syn_scalar.value(), &syn_batch.value(), 6006);
}

TEST(BatchEquivalenceTest, ShardedWrapperInsertBatchAndEstimateBatch) {
  // The sharded engine routes scalar inserts and batch inserts through the
  // same position-based partition, so the wrapper satisfies the bitwise
  // equivalence contract like any other estimator.
  const auto make = []() {
    selectivity::StreamingWaveletSelectivity::Options sketch_options;
    sketch_options.j0 = 2;
    sketch_options.j_max = 7;
    sketch_options.refit_interval = 500;
    Result<selectivity::StreamingWaveletSelectivity> prototype =
        selectivity::StreamingWaveletSelectivity::Create(Sym8Basis(),
                                                         sketch_options);
    WDE_CHECK(prototype.ok());
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = 3;
    options.block_size = 193;
    return *selectivity::ShardedSelectivityEstimator::Create(*prototype, options);
  };
  selectivity::ShardedSelectivityEstimator scalar = make();
  selectivity::ShardedSelectivityEstimator batch = make();
  ExpectStreamEquivalence(&scalar, &batch, 8008);
}

// ------------------------------------------------------- typed query batches

// Mixed-kind Answer() batches must match the per-query scalar loop bitwise,
// including dirty queries (NaN parameters, inverted ranges, out-of-range
// quantile levels — the wrapper normalizes both paths identically) and
// across interleaved ingest.
void ExpectAnswerEquivalence(selectivity::SelectivityEstimator* est,
                             uint64_t seed) {
  stats::Rng data_rng(seed);
  stats::Rng query_rng(seed + 1);
  for (size_t chunk : {500u, 1500u, 137u}) {
    std::vector<double> values(chunk);
    for (double& v : values) v = data_rng.UniformDouble();
    est->InsertBatch(values);

    // Every kind, the multi-dimensional ones included: 1-D estimators answer
    // rect/conditional (and axis >= dims marginals) 0.0, and that zero must
    // be batch == scalar like any other answer.
    selectivity::QueryKindMix mix;
    mix.rect = 0.10;
    mix.marginal = 0.10;
    mix.conditional = 0.05;
    std::vector<selectivity::Query> queries =
        selectivity::MixedQueryWorkload(query_rng, 120, -0.1, 1.1, mix);
    // Sprinkle in the abnormal forms the wrapper normalizes.
    queries.push_back(selectivity::Query::Range(0.9, 0.1));  // inverted
    queries.push_back(selectivity::Query::Range(std::nan(""), 0.5));
    queries.push_back(selectivity::Query::Rect(0.9, 0.1, 0.8, 0.2));
    queries.push_back(selectivity::Query::Rect(std::nan(""), 0.5, 0.2, 0.8));
    queries.push_back(selectivity::Query::Marginal(1, 0.7, 0.3));
    queries.push_back(selectivity::Query::Marginal(9, 0.2, 0.8));
    queries.push_back(selectivity::Query::Conditional(0.2, 0.8, 0.9, 0.1));
    queries.push_back(selectivity::Query::Conditional(0.2, 0.8, std::nan(""), 1.0));
    queries.push_back(selectivity::Query::Point(std::nan("")));
    queries.push_back(selectivity::Query::Quantile(1.5));
    queries.push_back(selectivity::Query::Quantile(-2.0));
    queries.push_back(selectivity::Query::Quantile(std::nan("")));
    queries.push_back(selectivity::Query::Less(std::nan("")));
    queries.push_back(
        selectivity::Query::Range(-std::numeric_limits<double>::infinity(),
                                  std::numeric_limits<double>::infinity()));

    std::vector<double> batch(queries.size());
    est->Answer(queries, batch);
    for (size_t i = 0; i < queries.size(); ++i) {
      EXPECT_EQ(batch[i], est->Answer(queries[i]))
          << est->name() << " query " << i << " after " << est->count()
          << " inserts";
    }
  }
}

TEST(BatchEquivalenceTest, AnswerMixedKindBatchMatchesScalarLoop) {
  for (const std::string& tag : selectivity::EstimatorRegistry::Global().Tags()) {
    selectivity::EstimatorSpec spec;
    spec.tag = tag;
    spec.dims = selectivity::EstimatorRegistry::Global().NativeDims(tag);
    spec.buckets = 32;
    spec.grid_log2 = 7;
    spec.budget = 32;
    spec.filter = "sym8";
    spec.j_max = 7;
    spec.refit_interval = 300;  // force refits between query rounds
    spec.capacity = 256;
    spec.shards = 3;
    spec.block_size = 193;
    spec.sharded_inner_tag = "equi-width";
    Result<std::unique_ptr<selectivity::SelectivityEstimator>> est =
        selectivity::MakeEstimator(spec);
    ASSERT_TRUE(est.ok()) << tag;
    ExpectAnswerEquivalence(est->get(), 9000 + std::hash<std::string>{}(tag) % 97);
  }
}

TEST(BatchEquivalenceTest, AnswerRangeMatchesLegacyEstimateRange) {
  // The acceptance contract of the redesign: Answer({kRange}) and the legacy
  // EstimateRange/EstimateBatch wrappers are one path, bitwise.
  for (const std::string& tag : selectivity::EstimatorRegistry::Global().Tags()) {
    selectivity::EstimatorSpec spec;
    spec.tag = tag;
    spec.dims = selectivity::EstimatorRegistry::Global().NativeDims(tag);
    spec.j_max = 7;
    spec.grid_log2 = 7;
    Result<std::unique_ptr<selectivity::SelectivityEstimator>> est =
        selectivity::MakeEstimator(spec);
    ASSERT_TRUE(est.ok()) << tag;
    stats::Rng rng(4242);
    std::vector<double> values(2000);
    for (double& v : values) v = rng.UniformDouble();
    (*est)->InsertBatch(values);
    const std::vector<selectivity::RangeQuery> ranges =
        selectivity::UniformRangeWorkload(rng, 100, -0.1, 1.1);
    std::vector<double> legacy(ranges.size());
    (*est)->EstimateBatch(ranges, legacy);
    for (size_t i = 0; i < ranges.size(); ++i) {
      const selectivity::Query q =
          selectivity::Query::Range(ranges[i].lo, ranges[i].hi);
      EXPECT_EQ(legacy[i], (*est)->Answer(q)) << tag;
      EXPECT_EQ(legacy[i], (*est)->EstimateRange(ranges[i].lo, ranges[i].hi))
          << tag;
    }
  }
}

TEST(BatchEquivalenceTest, WorkloadScoringUsesBatchPathConsistently) {
  // EvaluateAccuracy now routes through EstimateBatch; its aggregates must
  // match a hand-rolled scalar evaluation exactly.
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 32);
  stats::Rng rng(7007);
  for (int i = 0; i < 5000; ++i) hist.Insert(rng.UniformDouble());
  const std::vector<selectivity::RangeQuery> queries =
      selectivity::CenteredRangeWorkload(rng, 200, 0.0, 1.0, 0.05, 0.3);
  const auto truth = [](const selectivity::RangeQuery& q) { return q.hi - q.lo; };
  const selectivity::SelectivityAccuracy acc =
      selectivity::EvaluateAccuracy(hist, queries, truth);
  double mean_abs = 0.0;
  for (const selectivity::RangeQuery& q : queries) {
    mean_abs += std::fabs(hist.EstimateRange(q.lo, q.hi) - truth(q));
  }
  mean_abs /= static_cast<double>(queries.size());
  EXPECT_EQ(acc.mean_abs_error, mean_abs);
}

}  // namespace
}  // namespace wde
