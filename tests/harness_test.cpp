#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "harness/cases.hpp"
#include "harness/experiment_config.hpp"
#include "harness/monte_carlo.hpp"
#include "harness/table.hpp"
#include "processes/target_density.hpp"

namespace wde {
namespace harness {
namespace {

TEST(SummarizeTest, KnownValues) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  const SummaryStats s = Summarize(xs);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_EQ(s.count, 4u);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(SummarizeTest, EmptyInput) {
  const SummaryStats s = Summarize(std::vector<double>{});
  EXPECT_EQ(s.count, 0u);
  EXPECT_DOUBLE_EQ(s.mean, 0.0);
}

TEST(ParallelForTest, CoversAllIndicesOnce) {
  for (int threads : {1, 4}) {
    std::vector<std::atomic<int>> hits(100);
    ParallelFor(100, threads, [&](int i) { hits[static_cast<size_t>(i)]++; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ParallelForTest, ZeroCountIsNoop) {
  ParallelFor(0, 4, [](int) { FAIL() << "must not be called"; });
}

TEST(RunReplicatesTest, DeterministicAcrossThreadCounts) {
  const auto body = [](stats::Rng& rng, int rep) {
    return rng.UniformDouble() + rep;
  };
  const std::vector<double> serial = RunReplicates(16, 99, 1, body);
  const std::vector<double> parallel = RunReplicates(16, 99, 4, body);
  EXPECT_EQ(serial, parallel);
}

TEST(RunReplicatesTest, RepsGetDistinctStreams) {
  const std::vector<double> values =
      RunReplicates(8, 7, 1, [](stats::Rng& rng, int) { return rng.UniformDouble(); });
  for (size_t i = 0; i < values.size(); ++i) {
    for (size_t j = i + 1; j < values.size(); ++j) {
      EXPECT_NE(values[i], values[j]);
    }
  }
}

TEST(MeanCurveTest, AveragesRows) {
  const std::vector<double> mean = MeanCurve(
      4, 1, 1, 3, [](stats::Rng&, int rep) {
        return std::vector<double>{static_cast<double>(rep), 1.0, 2.0 * rep};
      });
  EXPECT_DOUBLE_EQ(mean[0], 1.5);
  EXPECT_DOUBLE_EQ(mean[1], 1.0);
  EXPECT_DOUBLE_EQ(mean[2], 3.0);
}

TEST(CollectCurvesTest, ShapeAndDeterminism) {
  const auto body = [](stats::Rng& rng, int) {
    return std::vector<double>{rng.UniformDouble(), rng.UniformDouble()};
  };
  const auto rows1 = CollectCurves(5, 3, 1, 2, body);
  const auto rows2 = CollectCurves(5, 3, 2, 2, body);
  EXPECT_EQ(rows1, rows2);
  EXPECT_EQ(rows1.size(), 5u);
}

TEST(ExperimentConfigTest, EnvOverrides) {
  ::setenv("WDE_N", "256", 1);
  ::setenv("WDE_REPS", "17", 1);
  ::setenv("WDE_SEED", "5", 1);
  ::setenv("WDE_GRID", "129", 1);
  ::setenv("WDE_THREADS", "2", 1);
  const ExperimentConfig config = ExperimentConfig::FromEnv();
  EXPECT_EQ(config.n, 256u);
  EXPECT_EQ(config.replicates, 17);
  EXPECT_EQ(config.seed, 5u);
  EXPECT_EQ(config.grid_points, 129u);
  EXPECT_EQ(config.threads, 2);
  ::unsetenv("WDE_N");
  ::unsetenv("WDE_REPS");
  ::unsetenv("WDE_SEED");
  ::unsetenv("WDE_GRID");
  ::unsetenv("WDE_THREADS");
  const ExperimentConfig defaults = ExperimentConfig::FromEnv(2048, 100, 513);
  EXPECT_EQ(defaults.n, 2048u);
  EXPECT_EQ(defaults.replicates, 100);
  EXPECT_EQ(defaults.grid_points, 513u);
  EXPECT_FALSE(defaults.Describe().empty());
}

TEST(TextTableTest, AlignedOutput) {
  TextTable table({"case", "value"});
  table.AddRow({"Case 1", "0.10"});
  table.AddRow({"Case 22", "0.2"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("case"), std::string::npos);
  EXPECT_NE(out.find("Case 22"), std::string::npos);
  // Four lines: header, separator, two rows.
  EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTableDeathTest, RejectsRaggedRows) {
  TextTable table({"a", "b"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "row width");
}

TEST(PrintSeriesTest, FormatsColumns) {
  std::ostringstream os;
  PrintSeries(os, "demo", {0.0, 0.5},
              {{"f", {1.0, 2.0}}, {"g", {3.0, 4.0}}});
  const std::string out = os.str();
  EXPECT_NE(out.find("# demo"), std::string::npos);
  EXPECT_NE(out.find("x f g"), std::string::npos);
  EXPECT_NE(out.find("0.5 2 4"), std::string::npos);
}

TEST(CasesTest, NamesAndConstruction) {
  auto target = std::make_shared<const processes::UniformDensity>();
  for (DependenceCase c : kAllCases) {
    EXPECT_NE(std::string(CaseName(c)).find("Case"), std::string::npos);
    const processes::TransformedProcess process = MakeCase(c, target);
    stats::Rng rng(1);
    EXPECT_EQ(process.Sample(16, rng).size(), 16u);
  }
}

}  // namespace
}  // namespace harness
}  // namespace wde
