// Property-based sweeps over the paper-level invariants: exact algebraic
// properties of the streaming coefficient sketch, and statistical properties
// of the adaptive estimator across all dependence cases × densities × basis
// choices.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "core/adaptive.hpp"
#include "harness/cases.hpp"
#include "processes/target_density.hpp"
#include "stats/loss.hpp"
#include "stats/rng.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace {

const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

// ------------------------------------------------ exact sketch properties

TEST(SketchAlgebraTest, InsertionOrderIsIrrelevant) {
  // The sufficient statistics are sums, so any permutation of the stream
  // yields bit-identical coefficients — the property that makes the sketch
  // mergeable and restart-safe.
  stats::Rng rng(1);
  std::vector<double> xs(257);
  for (double& x : xs) x = rng.UniformDouble();
  std::vector<double> shuffled = xs;
  std::shuffle(shuffled.begin(), shuffled.end(), rng);

  Result<core::EmpiricalCoefficients> a = core::EmpiricalCoefficients::Create(
      Sym8Basis(), 2, 6);
  Result<core::EmpiricalCoefficients> b = core::EmpiricalCoefficients::Create(
      Sym8Basis(), 2, 6);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  a->AddAll(xs);
  b->AddAll(shuffled);
  for (int j = 2; j <= 6; ++j) {
    const wavelet::TranslationWindow window = Sym8Basis().LevelWindow(j);
    for (int k = window.lo; k <= window.hi; ++k) {
      // Sums of the same doubles in different order agree to rounding only;
      // demand near-exact equality.
      EXPECT_NEAR(a->BetaHat(j, k), b->BetaHat(j, k), 1e-14);
    }
  }
}

TEST(SketchAlgebraTest, CoefficientsAreMixtureLinear) {
  // β̂(A ∪ B) = (n_A β̂(A) + n_B β̂(B)) / (n_A + n_B): the sketch of a merged
  // stream is the weighted average of the part sketches.
  stats::Rng rng(2);
  std::vector<double> part_a(100), part_b(300);
  for (double& x : part_a) x = rng.UniformDouble();
  for (double& x : part_b) x = rng.Uniform(0.2, 0.9);
  std::vector<double> merged = part_a;
  merged.insert(merged.end(), part_b.begin(), part_b.end());

  const auto fit = [&](const std::vector<double>& data) {
    Result<core::EmpiricalCoefficients> c =
        core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 5);
    WDE_CHECK(c.ok());
    c->AddAll(data);
    return std::move(c).value();
  };
  const core::EmpiricalCoefficients ca = fit(part_a);
  const core::EmpiricalCoefficients cb = fit(part_b);
  const core::EmpiricalCoefficients cm = fit(merged);
  for (int j = 2; j <= 5; ++j) {
    const wavelet::TranslationWindow window = Sym8Basis().LevelWindow(j);
    for (int k = window.lo; k <= window.hi; k += 2) {
      const double expected = (100.0 * ca.BetaHat(j, k) + 300.0 * cb.BetaHat(j, k)) /
                              400.0;
      EXPECT_NEAR(cm.BetaHat(j, k), expected, 1e-13);
    }
  }
}

TEST(SketchAlgebraTest, ScalingCoefficientsReconstructSampleMassExactly) {
  // Σ_k α̂_{j,k} ∫φ_{j,k} = (1/n) Σ_i Σ_k 2^{-j/2} φ(2^j X_i − k)·... with
  // partition of unity this is exactly 1 when every translate is tracked.
  stats::Rng rng(3);
  Result<core::EmpiricalCoefficients> coeffs =
      core::EmpiricalCoefficients::Create(Sym8Basis(), 3, 4);
  ASSERT_TRUE(coeffs.ok());
  for (int i = 0; i < 200; ++i) coeffs->Add(rng.UniformDouble());
  const core::CoefficientLevel& scaling = coeffs->scaling_level();
  double mass = 0.0;
  for (int k = scaling.k_lo; k <= scaling.k_hi(); ++k) {
    mass += coeffs->AlphaHat(k) * std::exp2(-1.5);  // 2^{-j/2}, j = 3
  }
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

// -------------------------------------------- statistical paper invariants

struct SweepCase {
  harness::DependenceCase dependence;
  bool bimodal;
  core::ThresholdKind kind;
};

std::string SweepName(const testing::TestParamInfo<SweepCase>& info) {
  std::string name = "case";
  name += std::to_string(static_cast<int>(info.param.dependence));
  name += info.param.bimodal ? "_bimodal_" : "_sine_";
  name += core::ThresholdKindName(info.param.kind);
  return name;
}

class PaperSweepTest : public testing::TestWithParam<SweepCase> {
 protected:
  std::shared_ptr<const processes::TargetDensity> Density() const {
    if (GetParam().bimodal) {
      return std::make_shared<const processes::TruncatedGaussianMixtureDensity>(
          processes::TruncatedGaussianMixtureDensity::Bimodal());
    }
    return std::make_shared<const processes::SineUniformMixtureDensity>();
  }
};

TEST_P(PaperSweepTest, EstimateHasUnitMassAndBoundedIse) {
  auto density = Density();
  const processes::TransformedProcess process =
      harness::MakeCase(GetParam().dependence, density);
  stats::Rng rng(1000 + static_cast<uint64_t>(GetParam().dependence));
  const std::vector<double> xs = process.Sample(1024, rng);
  core::AdaptiveOptions options;
  options.kind = GetParam().kind;
  Result<core::AdaptiveDensityEstimate> fit =
      core::FitAdaptive(Sym8Basis(), xs, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->estimate.TotalMass(), 1.0, 0.08);
  const std::vector<double> est = fit->estimate.EvaluateOnGrid(0.0, 1.0, 257);
  const std::vector<double> truth = density->PdfOnGrid(257);
  // Loose per-realization bound; the Monte-Carlo benches measure the means.
  const double bound = GetParam().bimodal ? 2.5 : 0.35;
  EXPECT_LT(stats::IntegratedSquaredError(est, truth, 1.0 / 256.0), bound);
}

TEST_P(PaperSweepTest, SelectedTopLevelWithinScannedRange) {
  auto density = Density();
  const processes::TransformedProcess process =
      harness::MakeCase(GetParam().dependence, density);
  stats::Rng rng(2000 + static_cast<uint64_t>(GetParam().dependence));
  const std::vector<double> xs = process.Sample(512, rng);
  core::AdaptiveOptions options;
  options.kind = GetParam().kind;
  Result<core::AdaptiveDensityEstimate> fit =
      core::FitAdaptive(Sym8Basis(), xs, options);
  ASSERT_TRUE(fit.ok());
  EXPECT_GE(fit->cv.j1_hat, fit->cv.j0);
  EXPECT_LE(fit->cv.j1_hat, fit->cv.j_star);
  EXPECT_EQ(fit->cv.j_star, 9);  // log2(512)
}

TEST_P(PaperSweepTest, RangeQueriesAreConsistentWithPointEvaluations) {
  auto density = Density();
  const processes::TransformedProcess process =
      harness::MakeCase(GetParam().dependence, density);
  stats::Rng rng(3000 + static_cast<uint64_t>(GetParam().dependence));
  const std::vector<double> xs = process.Sample(1024, rng);
  core::AdaptiveOptions options;
  options.kind = GetParam().kind;
  Result<core::AdaptiveDensityEstimate> fit =
      core::FitAdaptive(Sym8Basis(), xs, options);
  ASSERT_TRUE(fit.ok());
  // Additivity and telescoping of range integrals.
  const double whole = fit->estimate.IntegrateRange(0.0, 1.0);
  const double left = fit->estimate.IntegrateRange(0.0, 0.37);
  const double right = fit->estimate.IntegrateRange(0.37, 1.0);
  EXPECT_NEAR(left + right, whole, 1e-9);
  EXPECT_NEAR(fit->estimate.IntegrateRange(0.5, 0.5), 0.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    AllCases, PaperSweepTest,
    testing::Values(
        SweepCase{harness::DependenceCase::kIid, false, core::ThresholdKind::kSoft},
        SweepCase{harness::DependenceCase::kIid, true, core::ThresholdKind::kHard},
        SweepCase{harness::DependenceCase::kLogisticMap, false,
                  core::ThresholdKind::kHard},
        SweepCase{harness::DependenceCase::kLogisticMap, true,
                  core::ThresholdKind::kSoft},
        SweepCase{harness::DependenceCase::kNoncausalMa, false,
                  core::ThresholdKind::kSoft},
        SweepCase{harness::DependenceCase::kNoncausalMa, true,
                  core::ThresholdKind::kHard}),
    SweepName);

// --------------------------------------------------- basis-choice sweep

class BasisSweepTest : public testing::TestWithParam<int> {};

TEST_P(BasisSweepTest, AdaptiveFitWorksAcrossSymmletOrders) {
  Result<wavelet::WaveletBasis> basis =
      wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(GetParam()), 11);
  ASSERT_TRUE(basis.ok());
  const processes::SineUniformMixtureDensity density;
  stats::Rng rng(42);
  std::vector<double> xs(1024);
  for (double& x : xs) x = density.InverseCdf(rng.UniformDouble());
  Result<core::AdaptiveDensityEstimate> fit = core::FitAdaptive(*basis, xs);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->estimate.TotalMass(), 1.0, 0.08);
  const std::vector<double> est = fit->estimate.EvaluateOnGrid(0.0, 1.0, 257);
  const std::vector<double> truth = density.PdfOnGrid(257);
  EXPECT_LT(stats::IntegratedSquaredError(est, truth, 1.0 / 256.0), 0.3)
      << "N=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(SymmletOrders, BasisSweepTest,
                         testing::Values(3, 4, 6, 8, 10));

}  // namespace
}  // namespace wde
