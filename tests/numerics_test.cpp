#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstdint>

#include "numerics/integration.hpp"
#include "numerics/interpolation.hpp"
#include "numerics/matrix.hpp"
#include "numerics/optimize.hpp"
#include "numerics/polynomial.hpp"
#include "numerics/simd.hpp"
#include "numerics/special_functions.hpp"

namespace wde {
namespace numerics {
namespace {

// ---------------------------------------------------------------- matrices

TEST(MatrixTest, IdentityProduct) {
  Matrix a(3, 3);
  a.at(0, 0) = 2.0;
  a.at(1, 2) = -1.0;
  a.at(2, 1) = 4.0;
  const Matrix prod = a * Matrix::Identity(3);
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(prod.at(r, c), a.at(r, c));
  }
}

TEST(MatrixTest, ApplyMatchesManualProduct) {
  Matrix a(2, 3);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(0, 2) = 3.0;
  a.at(1, 0) = -1.0;
  a.at(1, 2) = 1.0;
  const std::vector<double> v{1.0, 1.0, 2.0};
  const std::vector<double> out = a.Apply(v);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 9.0);
  EXPECT_DOUBLE_EQ(out[1], 1.0);
}

TEST(MatrixTest, SolveRecoversKnownSolution) {
  Matrix a(3, 3);
  const double rows[3][3] = {{4, 1, 0}, {1, 3, -1}, {0, -1, 2}};
  for (size_t r = 0; r < 3; ++r) {
    for (size_t c = 0; c < 3; ++c) a.at(r, c) = rows[r][c];
  }
  const std::vector<double> x_true{1.0, -2.0, 0.5};
  const std::vector<double> b = a.Apply(x_true);
  Result<std::vector<double>> solved = SolveLinearSystem(a, b);
  ASSERT_TRUE(solved.ok());
  for (size_t i = 0; i < 3; ++i) EXPECT_NEAR((*solved)[i], x_true[i], 1e-12);
}

TEST(MatrixTest, SolveDetectsSingularity) {
  Matrix a(2, 2);
  a.at(0, 0) = 1.0;
  a.at(0, 1) = 2.0;
  a.at(1, 0) = 2.0;
  a.at(1, 1) = 4.0;
  Result<std::vector<double>> solved = SolveLinearSystem(a, {1.0, 2.0});
  EXPECT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kFailedPrecondition);
}

TEST(MatrixTest, SolveRejectsShapeMismatch) {
  Matrix a(2, 2);
  Result<std::vector<double>> solved = SolveLinearSystem(a, {1.0, 2.0, 3.0});
  EXPECT_FALSE(solved.ok());
  EXPECT_EQ(solved.status().code(), StatusCode::kInvalidArgument);
}

TEST(MatrixTest, UnitEigenvectorOfStochasticMatrix) {
  // Column-stochastic matrix transposed: rows sum to 1 -> A^T has eigenvalue 1.
  // Use a doubly structured example with known stationary vector.
  Matrix a(2, 2);
  a.at(0, 0) = 0.9;
  a.at(0, 1) = 0.2;
  a.at(1, 0) = 0.1;
  a.at(1, 1) = 0.8;
  Result<std::vector<double>> v = UnitEigenvector(a);
  ASSERT_TRUE(v.ok());
  // Stationary distribution of the chain: (2/3, 1/3).
  EXPECT_NEAR((*v)[0], 2.0 / 3.0, 1e-10);
  EXPECT_NEAR((*v)[1], 1.0 / 3.0, 1e-10);
}

TEST(MatrixTest, UnitEigenvectorFailsWithoutUnitEigenvalue) {
  Matrix a(2, 2);
  a.at(0, 0) = 0.5;
  a.at(1, 1) = 0.25;
  Result<std::vector<double>> v = UnitEigenvector(a);
  EXPECT_FALSE(v.ok());
}

// ------------------------------------------------------------- polynomials

TEST(PolynomialTest, HornerEvaluation) {
  // p(x) = 1 - 2x + x^3
  const std::vector<double> p{1.0, -2.0, 0.0, 1.0};
  EXPECT_DOUBLE_EQ(EvaluatePolynomial(p, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(EvaluatePolynomial(p, 2.0), 5.0);
  EXPECT_DOUBLE_EQ(EvaluatePolynomial(p, -1.0), 2.0);
}

TEST(PolynomialTest, MultiplyMatchesConvolution) {
  const std::vector<double> a{1.0, 1.0};         // 1 + x
  const std::vector<double> b{1.0, -1.0, 1.0};   // 1 - x + x^2
  const std::vector<double> prod = MultiplyPolynomials(a, b);  // 1 + x^3
  ASSERT_EQ(prod.size(), 4u);
  EXPECT_DOUBLE_EQ(prod[0], 1.0);
  EXPECT_NEAR(prod[1], 0.0, 1e-15);
  EXPECT_NEAR(prod[2], 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(prod[3], 1.0);
}

TEST(PolynomialTest, RootsOfQuadratic) {
  // (x - 2)(x + 3) = x^2 + x - 6
  Result<std::vector<Complex>> roots =
      FindPolynomialRoots(std::vector<double>{-6.0, 1.0, 1.0});
  ASSERT_TRUE(roots.ok());
  ASSERT_EQ(roots->size(), 2u);
  std::vector<double> reals{(*roots)[0].real(), (*roots)[1].real()};
  std::sort(reals.begin(), reals.end());
  EXPECT_NEAR(reals[0], -3.0, 1e-10);
  EXPECT_NEAR(reals[1], 2.0, 1e-10);
  EXPECT_NEAR(std::abs((*roots)[0].imag()), 0.0, 1e-10);
}

TEST(PolynomialTest, ComplexConjugateRoots) {
  // x^2 + 1: roots ±i.
  Result<std::vector<Complex>> roots =
      FindPolynomialRoots(std::vector<double>{1.0, 0.0, 1.0});
  ASSERT_TRUE(roots.ok());
  ASSERT_EQ(roots->size(), 2u);
  for (const Complex& r : *roots) {
    EXPECT_NEAR(std::abs(r), 1.0, 1e-10);
    EXPECT_NEAR(std::fabs(r.imag()), 1.0, 1e-10);
  }
}

TEST(PolynomialTest, HighDegreeRootsResiduals) {
  // Wilkinson-lite: (x-1)(x-2)...(x-8) expanded by repeated multiplication.
  std::vector<double> poly{1.0};
  for (int r = 1; r <= 8; ++r) {
    poly = MultiplyPolynomials(poly, {-static_cast<double>(r), 1.0});
  }
  // Wilkinson-type polynomials are ill-conditioned; accept a looser
  // fixed-point tolerance than the default.
  Result<std::vector<Complex>> roots = FindPolynomialRoots(poly, 1e-10);
  ASSERT_TRUE(roots.ok());
  ASSERT_EQ(roots->size(), 8u);
  std::vector<Complex> cpoly(poly.size());
  for (size_t i = 0; i < poly.size(); ++i) cpoly[i] = Complex(poly[i], 0.0);
  for (const Complex& r : *roots) {
    EXPECT_LT(std::abs(EvaluatePolynomial(cpoly, r)), 1e-5);
  }
}

TEST(PolynomialTest, DegenerateInputs) {
  Result<std::vector<Complex>> none = FindPolynomialRoots(std::vector<double>{3.0});
  ASSERT_TRUE(none.ok());
  EXPECT_TRUE(none->empty());
}

// -------------------------------------------------------- special functions

TEST(SpecialFunctionsTest, NormalCdfKnownValues) {
  EXPECT_NEAR(NormalCdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(NormalCdf(1.959963984540054), 0.975, 1e-12);
  EXPECT_NEAR(NormalCdf(-1.959963984540054), 0.025, 1e-12);
}

TEST(SpecialFunctionsTest, QuantileInvertsCdf) {
  for (double p : {1e-6, 1e-3, 0.025, 0.2, 0.5, 0.8, 0.975, 0.999, 1.0 - 1e-6}) {
    const double x = NormalQuantile(p);
    EXPECT_NEAR(NormalCdf(x), p, 1e-12) << "p=" << p;
  }
}

TEST(SpecialFunctionsTest, QuantileKnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-14);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963984540054, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.841344746068543), 1.0, 1e-9);
}

TEST(SpecialFunctionsDeathTest, QuantileRejectsBoundary) {
  EXPECT_DEATH(NormalQuantile(0.0), "requires p");
  EXPECT_DEATH(NormalQuantile(1.0), "requires p");
}

TEST(SpecialFunctionsTest, BinomialCoefficients) {
  EXPECT_DOUBLE_EQ(BinomialCoefficient(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(5, 2), 10.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(10, 10), 1.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(3, 5), 0.0);
  EXPECT_DOUBLE_EQ(BinomialCoefficient(20, 10), 184756.0);
}

TEST(SpecialFunctionsTest, FactorialValues) {
  EXPECT_DOUBLE_EQ(Factorial(0), 1.0);
  EXPECT_DOUBLE_EQ(Factorial(5), 120.0);
  EXPECT_DOUBLE_EQ(Factorial(10), 3628800.0);
}

// -------------------------------------------------------------- quadrature

TEST(IntegrationTest, TrapezoidExactForLinear) {
  std::vector<double> values{0.0, 1.0, 2.0, 3.0};
  EXPECT_NEAR(TrapezoidIntegral(values, 0.5), 2.25, 1e-15);
}

TEST(IntegrationTest, SimpsonExactForCubic) {
  // ∫_0^1 x^3 = 0.25; Simpson is exact for cubics.
  const size_t points = 101;
  std::vector<double> values(points);
  const double dx = 1.0 / static_cast<double>(points - 1);
  for (size_t i = 0; i < points; ++i) {
    const double x = dx * static_cast<double>(i);
    values[i] = x * x * x;
  }
  EXPECT_NEAR(SimpsonIntegral(values, dx), 0.25, 1e-14);
}

TEST(IntegrationTest, SimpsonFallsBackOnEvenLength) {
  std::vector<double> values{1.0, 1.0, 1.0, 1.0};
  EXPECT_NEAR(SimpsonIntegral(values, 1.0), 3.0, 1e-15);
}

TEST(IntegrationTest, IntegrateFunctionSine) {
  EXPECT_NEAR(IntegrateFunction([](double x) { return std::sin(x); }, 0.0, M_PI, 512),
              2.0, 1e-10);
}

TEST(IntegrationTest, CumulativeTrapezoidEndpoints) {
  std::vector<double> values{1.0, 1.0, 1.0};
  const std::vector<double> cum = CumulativeTrapezoid(values, 0.5);
  ASSERT_EQ(cum.size(), 3u);
  EXPECT_DOUBLE_EQ(cum[0], 0.0);
  EXPECT_DOUBLE_EQ(cum[1], 0.5);
  EXPECT_DOUBLE_EQ(cum[2], 1.0);
}

// -------------------------------------------------------------- prefix sums

TEST(PrefixSumTest, SequentialDefinition) {
  const std::vector<double> in{3.0, 1.0, 4.0, 1.0, 5.0};
  std::vector<double> out(in.size());
  const double total = PrefixSumExclusiveSequential(in, out);
  EXPECT_DOUBLE_EQ(total, 14.0);
  const std::vector<double> want{0.0, 3.0, 4.0, 8.0, 9.0};
  for (size_t i = 0; i < in.size(); ++i) EXPECT_EQ(out[i], want[i]);
}

TEST(PrefixSumTest, BlockedBitIdenticalToSequentialOnIntegerCounts) {
  // The production input: histogram bucket counts — integer-valued doubles
  // whose running sums stay far below 2^53, where any association is exact.
  // Sizes straddle the block width (8) and include the empty/tiny edges.
  uint64_t state = 0x2545F4914F6CDD1DULL;
  const auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (size_t n : {0u, 1u, 3u, 7u, 8u, 9u, 15u, 16u, 17u, 255u, 256u, 1000u}) {
    std::vector<double> in(n);
    for (double& v : in) v = static_cast<double>(next() % 100000);
    std::vector<double> seq(n), blocked(n);
    const double total_seq = PrefixSumExclusiveSequential(in, seq);
    const double total_blocked = PrefixSumExclusiveBlocked(in, blocked);
    EXPECT_EQ(total_blocked, total_seq) << "n=" << n;
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(blocked[i], seq[i]) << "n=" << n << " i=" << i;
    }
  }
}

// ------------------------------------------------------------ interpolation

TEST(InterpolationTest, ExactAtNodesLinearBetween) {
  UniformGridInterpolator interp(1.0, 0.5, {0.0, 1.0, 0.0});
  EXPECT_DOUBLE_EQ(interp.Evaluate(1.0), 0.0);
  EXPECT_DOUBLE_EQ(interp.Evaluate(1.5), 1.0);
  EXPECT_DOUBLE_EQ(interp.Evaluate(2.0), 0.0);
  EXPECT_DOUBLE_EQ(interp.Evaluate(1.25), 0.5);
  EXPECT_DOUBLE_EQ(interp.Evaluate(1.75), 0.5);
}

TEST(InterpolationTest, ZeroOutsideSpan) {
  UniformGridInterpolator interp(0.0, 1.0, {5.0, 5.0});
  EXPECT_DOUBLE_EQ(interp.Evaluate(-0.01), 0.0);
  EXPECT_DOUBLE_EQ(interp.Evaluate(1.01), 0.0);
  EXPECT_DOUBLE_EQ(interp.x1(), 1.0);
}

// ---------------------------------------------------------------- optimize

TEST(OptimizeTest, GoldenSectionFindsParabolaMinimum) {
  const double x = GoldenSectionMinimize(
      [](double t) { return (t - 2.0) * (t - 2.0) + 1.0; }, 0.0, 5.0, 1e-10);
  EXPECT_NEAR(x, 2.0, 1e-7);
}

TEST(OptimizeTest, GridThenGoldenHandlesMultimodal) {
  // sin(3t) has minima near t = π/2 + 2πk/3; the quadratic tilt makes the
  // one near t ≈ 3.67 global. A plain golden-section from [0, 8] would land
  // in a wrong basin; the grid stage must escape it.
  const auto f = [](double t) {
    return std::sin(3.0 * t) + 0.05 * (t - 4.5) * (t - 4.5);
  };
  const double x = GridThenGoldenMinimize(f, 0.0, 8.0, 64, 1e-10);
  EXPECT_NEAR(x, 3.665, 0.05);
}

TEST(OptimizeTest, BisectMonotoneInvertsCdfLikeFunction) {
  const double x = BisectMonotone([](double t) { return t * t; }, 0.25, 0.0, 1.0);
  EXPECT_NEAR(x, 0.5, 1e-10);
}

}  // namespace
}  // namespace numerics
}  // namespace wde
