// Tier-1 tests for the versioned snapshot/restore subsystem (PR 4): the io
// primitives and chunk framing, round-trip fidelity — every registered
// estimator answers bit-identically after save → load, including saves taken
// mid refit/rebuild interval where lazily fitted caches are stale — hostile
// input (truncated, bit-flipped, wrong magic, future version, hostile length
// prefixes) degrading into Status errors rather than UB, the registry's
// restore-without-naming-the-type path, cross-process-style snapshot merges
// matching sequential ingest, and the sharded engine's checkpoint → restore →
// continue-ingesting cycle. Run under ASan in CI.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/binned.hpp"
#include "core/coefficients.hpp"
#include "io/chunk.hpp"
#include "io/serialize.hpp"
#include "selectivity/estimator_registry.hpp"
#include "selectivity/grid2d_selectivity.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/kde2d_selectivity.hpp"
#include "selectivity/kde_selectivity.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"
#include "stats/rng.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace {

const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

std::vector<double> UnitStream(uint64_t seed, size_t n) {
  stats::Rng rng(seed);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.UniformDouble();
  return xs;
}

std::vector<selectivity::RangeQuery> Workload() {
  stats::Rng rng(99);
  return selectivity::UniformRangeWorkload(rng, 64, 0.0, 1.0);
}

std::vector<double> AnswersOf(const selectivity::SelectivityEstimator& est,
                              const std::vector<selectivity::RangeQuery>& queries) {
  std::vector<double> out(queries.size());
  est.EstimateBatch(queries, out);
  return out;
}

selectivity::StreamingWaveletSelectivity MakeSketch(size_t refit_interval) {
  selectivity::StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 8;
  options.refit_interval = refit_interval;
  return *selectivity::StreamingWaveletSelectivity::Create(Sym8Basis(), options);
}

/// One ingested instance of every registered estimator. Stream lengths are
/// deliberately NOT multiples of the refit/rebuild cadences, so saves land
/// mid-interval with stale fitted caches — the hard case for bit-exact
/// restore.
std::vector<std::unique_ptr<selectivity::SelectivityEstimator>>
MakeIngestedEstimators() {
  const std::vector<double> xs = UnitStream(1, 5000);
  std::vector<std::unique_ptr<selectivity::SelectivityEstimator>> estimators;

  estimators.push_back(
      std::make_unique<selectivity::EquiWidthHistogram>(0.0, 1.0, 64));
  estimators.push_back(
      std::make_unique<selectivity::EquiDepthHistogram>(0.0, 1.0, 32));
  estimators.push_back(
      std::make_unique<selectivity::ReservoirSampleSelectivity>(256, 17));
  selectivity::KdeSelectivity::Options kde_options;
  kde_options.refit_interval = 2048;
  estimators.push_back(std::make_unique<selectivity::KdeSelectivity>(kde_options));
  selectivity::WaveletSynopsisSelectivity::Options synopsis_options;
  synopsis_options.grid_log2 = 8;
  synopsis_options.budget = 48;
  synopsis_options.rebuild_interval = 2048;
  estimators.push_back(std::make_unique<selectivity::WaveletSynopsisSelectivity>(
      *selectivity::WaveletSynopsisSelectivity::Create(synopsis_options)));
  estimators.push_back(
      std::make_unique<selectivity::StreamingWaveletSelectivity>(MakeSketch(2048)));
  {
    selectivity::EquiWidthHistogram prototype(0.0, 1.0, 32);
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = 3;
    options.block_size = 512;
    estimators.push_back(std::make_unique<selectivity::ShardedSelectivityEstimator>(
        *selectivity::ShardedSelectivityEstimator::Create(prototype, options)));
  }
  // The 2-D estimators consume the same stream as interleaved (x, y) pairs —
  // 2500 complete observations from 5000 values, with the save again landing
  // mid refit interval for the KDE.
  selectivity::Kde2dSelectivity::Options kde2d_options;
  kde2d_options.refit_interval = 2048;
  estimators.push_back(
      std::make_unique<selectivity::Kde2dSelectivity>(kde2d_options));
  estimators.push_back(
      std::make_unique<selectivity::Grid2dHistogram>(0.0, 1.0, 0.0, 1.0, 6));
  for (auto& est : estimators) est->InsertBatch(xs);
  return estimators;
}

std::vector<uint8_t> SnapshotBytesOf(const selectivity::SelectivityEstimator& est) {
  io::VectorSink sink;
  WDE_CHECK_OK(selectivity::SaveEstimatorSnapshot(est, sink));
  return sink.TakeBytes();
}

// ---------------------------------------------------------- io primitives

TEST(IoTest, PrimitivesRoundTripBitExactly) {
  io::VectorSink sink;
  ASSERT_TRUE(io::WriteU8(sink, 0xAB).ok());
  ASSERT_TRUE(io::WriteU32(sink, 0xDEADBEEF).ok());
  ASSERT_TRUE(io::WriteU64(sink, 0x0123456789ABCDEFULL).ok());
  ASSERT_TRUE(io::WriteI32(sink, -42).ok());
  ASSERT_TRUE(io::WriteDouble(sink, -0.0).ok());
  ASSERT_TRUE(io::WriteDouble(sink, 0x1.fffffffffffffp+1023).ok());
  ASSERT_TRUE(io::WriteString(sink, "snapshot").ok());
  ASSERT_TRUE(io::WriteDoubleVector(sink, std::vector<double>{1.5, -2.25}).ok());

  io::SpanSource source(sink.bytes());
  EXPECT_EQ(*io::ReadU8(source), 0xAB);
  EXPECT_EQ(*io::ReadU32(source), 0xDEADBEEFu);
  EXPECT_EQ(*io::ReadU64(source), 0x0123456789ABCDEFULL);
  EXPECT_EQ(*io::ReadI32(source), -42);
  const double neg_zero = *io::ReadDouble(source);
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(*io::ReadDouble(source), 0x1.fffffffffffffp+1023);
  EXPECT_EQ(*io::ReadString(source), "snapshot");
  EXPECT_EQ(*io::ReadDoubleVector(source), (std::vector<double>{1.5, -2.25}));
  EXPECT_EQ(source.remaining(), 0u);
}

TEST(IoTest, HostileLengthPrefixesAreRejectedBeforeAllocation) {
  // A u64 vector length of ~2^61 with 4 trailing bytes: the reader must
  // reject against remaining(), not attempt the allocation.
  io::VectorSink sink;
  ASSERT_TRUE(io::WriteU64(sink, 1ULL << 61).ok());
  ASSERT_TRUE(io::WriteU32(sink, 0).ok());
  io::SpanSource source(sink.bytes());
  EXPECT_FALSE(io::ReadDoubleVector(source).ok());

  io::VectorSink str_sink;
  ASSERT_TRUE(io::WriteU32(str_sink, 0xFFFFFFFF).ok());
  io::SpanSource str_source(str_sink.bytes());
  EXPECT_FALSE(io::ReadString(str_source).ok());
}

TEST(IoTest, ChunksValidateCrcAndBounds) {
  io::VectorSink sink;
  const std::vector<uint8_t> payload = {1, 2, 3, 4, 5};
  ASSERT_TRUE(io::WriteChunk(sink, 0x1234, payload).ok());
  {
    io::SpanSource source(sink.bytes());
    Result<io::Chunk> chunk = io::ReadChunk(source);
    ASSERT_TRUE(chunk.ok());
    EXPECT_EQ(chunk->tag, 0x1234u);
    EXPECT_EQ(chunk->payload, payload);
    EXPECT_EQ(source.remaining(), 0u);
  }
  // Flip one payload bit: the CRC must catch it.
  std::vector<uint8_t> corrupt(sink.bytes().begin(), sink.bytes().end());
  corrupt[13] ^= 0x40;
  io::SpanSource corrupt_source(corrupt);
  EXPECT_FALSE(io::ReadChunk(corrupt_source).ok());
}

// ------------------------------------------------------- core round trips

TEST(CoreSnapshotTest, EmpiricalCoefficientsRoundTripBitExactly) {
  const std::vector<double> xs = UnitStream(2, 4000);
  core::EmpiricalCoefficients coeffs =
      *core::EmpiricalCoefficients::Create(Sym8Basis(), 2, 7);
  coeffs.AddAll(xs);

  io::VectorSink sink;
  ASSERT_TRUE(coeffs.Serialize(sink).ok());
  io::SpanSource source(sink.bytes());
  Result<core::EmpiricalCoefficients> restored =
      core::EmpiricalCoefficients::Deserialize(source);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(source.remaining(), 0u);
  ASSERT_EQ(restored->count(), coeffs.count());
  for (int j = 2; j <= 7; ++j) {
    const core::CoefficientLevel& a = coeffs.detail_level(j);
    const core::CoefficientLevel& b = restored->detail_level(j);
    ASSERT_EQ(a.size(), b.size());
    for (int i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.s1[static_cast<size_t>(i)], b.s1[static_cast<size_t>(i)]);
      EXPECT_EQ(a.s2[static_cast<size_t>(i)], b.s2[static_cast<size_t>(i)]);
    }
  }
  // The restored accumulator is merge-compatible with a live one: the basis
  // identity survived the round trip.
  EXPECT_TRUE(restored->Merge(coeffs).ok());
}

TEST(CoreSnapshotTest, BinnedFitRoundTripsBinCountsBitExactly) {
  const std::vector<double> xs = UnitStream(3, 4096);
  core::BinnedWaveletFit fit =
      *core::BinnedWaveletFit::Fit(*wavelet::WaveletFilter::Symmlet(8), xs, 2, 9);
  io::VectorSink sink;
  ASSERT_TRUE(fit.Serialize(sink).ok());
  io::SpanSource source(sink.bytes());
  Result<core::BinnedWaveletFit> restored = core::BinnedWaveletFit::Deserialize(source);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->count(), fit.count());
  for (int j = 2; j < 9; ++j) {
    for (int k = 0; k < (1 << j); ++k) {
      EXPECT_EQ(restored->BetaHat(j, k), fit.BetaHat(j, k)) << "j=" << j << " k=" << k;
    }
  }
  EXPECT_TRUE(restored->Merge(fit).ok());
}

// ----------------------------------------------- estimator round trips

TEST(SnapshotRoundTripTest, EveryRegisteredEstimatorAnswersBitIdentically) {
  const std::vector<selectivity::RangeQuery> queries = Workload();
  size_t covered = 0;
  for (const auto& est : MakeIngestedEstimators()) {
    ASSERT_TRUE(est->snapshotable()) << est->name();
    ASSERT_TRUE(
        selectivity::EstimatorRegistry::Global().Contains(est->snapshot_type_tag()))
        << est->name();
    ++covered;
    // Query first so the lazy fit exists (and is stale by save time), then
    // snapshot and restore through the registry.
    const std::vector<double> before = AnswersOf(*est, queries);
    const std::vector<uint8_t> bytes = SnapshotBytesOf(*est);
    io::SpanSource source(bytes);
    Result<std::unique_ptr<selectivity::SelectivityEstimator>> loaded =
        selectivity::LoadEstimatorSnapshot(source);
    ASSERT_TRUE(loaded.ok()) << est->name() << ": " << loaded.status().ToString();
    EXPECT_EQ((*loaded)->name(), est->name());
    EXPECT_EQ((*loaded)->count(), est->count());
    EXPECT_EQ(AnswersOf(**loaded, queries), before) << est->name();
  }
  // Every registered tag must have been exercised.
  EXPECT_EQ(covered, selectivity::EstimatorRegistry::Global().Tags().size());
}

TEST(SnapshotRoundTripTest, UnqueriedEstimatorsRoundTripToo) {
  // Save before any query: caches are empty and the first fit happens on
  // both sides after restore — answers must still agree bitwise.
  const std::vector<selectivity::RangeQuery> queries = Workload();
  for (const auto& est : MakeIngestedEstimators()) {
    const std::vector<uint8_t> bytes = SnapshotBytesOf(*est);
    io::SpanSource source(bytes);
    Result<std::unique_ptr<selectivity::SelectivityEstimator>> loaded =
        selectivity::LoadEstimatorSnapshot(source);
    ASSERT_TRUE(loaded.ok()) << est->name() << ": " << loaded.status().ToString();
    EXPECT_EQ(AnswersOf(**loaded, queries), AnswersOf(*est, queries)) << est->name();
  }
}

TEST(SnapshotRoundTripTest, RestoredEstimatorsContinueIngestingIdentically) {
  // The snapshot captures *everything*, including RNG state: a restored
  // estimator and its never-serialized twin must stay bitwise in lockstep
  // through further ingest. The reservoir is the sharpest probe (its
  // acceptance sequence is pure RNG).
  const std::vector<double> head = UnitStream(4, 6000);
  const std::vector<double> tail = UnitStream(5, 2000);
  selectivity::ReservoirSampleSelectivity twin(128, 31);
  twin.InsertBatch(head);
  const std::vector<uint8_t> bytes = SnapshotBytesOf(twin);
  io::SpanSource source(bytes);
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> restored =
      selectivity::LoadEstimatorSnapshot(source);
  ASSERT_TRUE(restored.ok());
  twin.InsertBatch(tail);
  (*restored)->InsertBatch(tail);
  auto& restored_reservoir =
      static_cast<selectivity::ReservoirSampleSelectivity&>(**restored);
  EXPECT_EQ(restored_reservoir.reservoir(), twin.reservoir());
  EXPECT_EQ(restored_reservoir.count(), twin.count());
}

TEST(SnapshotRoundTripTest, LoadStateRestoresIntoExistingInstance) {
  const std::vector<double> xs = UnitStream(6, 2000);
  selectivity::EquiWidthHistogram saved(0.0, 1.0, 64);
  saved.InsertBatch(xs);
  io::VectorSink sink;
  ASSERT_TRUE(saved.SaveState(sink).ok());

  // A differently configured instance adopts the envelope's configuration.
  selectivity::EquiWidthHistogram target(-3.0, 5.0, 8);
  io::SpanSource source(sink.bytes());
  ASSERT_TRUE(target.LoadState(source).ok());
  EXPECT_EQ(target.buckets(), 64);
  EXPECT_EQ(target.count(), saved.count());
  EXPECT_EQ(target.EstimateRange(0.2, 0.7), saved.EstimateRange(0.2, 0.7));

  // A different concrete type must refuse the same envelope, untouched.
  selectivity::EquiDepthHistogram wrong_type(0.0, 1.0, 8);
  wrong_type.InsertBatch(xs);
  io::SpanSource source_again(sink.bytes());
  EXPECT_FALSE(wrong_type.LoadState(source_again).ok());
  EXPECT_EQ(wrong_type.count(), xs.size());
}

TEST(SnapshotRoundTripTest, FileSnapshotsRoundTrip) {
  const std::string path = testing::TempDir() + "/wde_snapshot_test.snap";
  const std::vector<selectivity::RangeQuery> queries = Workload();
  selectivity::StreamingWaveletSelectivity sketch = MakeSketch(2048);
  sketch.InsertBatch(UnitStream(7, 5000));
  const std::vector<double> before = AnswersOf(sketch, queries);
  ASSERT_TRUE(selectivity::SaveEstimatorSnapshotFile(sketch, path).ok());
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> loaded =
      selectivity::LoadEstimatorSnapshotFile(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(AnswersOf(**loaded, queries), before);
  std::remove(path.c_str());
  EXPECT_FALSE(selectivity::LoadEstimatorSnapshotFile(path).ok());  // gone
}

// ------------------------------------------------------- hostile input

TEST(HostileInputTest, EveryTruncationOfASnapshotErrorsCleanly) {
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 8);
  hist.InsertBatch(UnitStream(8, 300));
  const std::vector<uint8_t> bytes = SnapshotBytesOf(hist);
  for (size_t len = 0; len < bytes.size(); ++len) {
    io::SpanSource source(std::span(bytes.data(), len));
    EXPECT_FALSE(selectivity::LoadEstimatorSnapshot(source).ok()) << "len=" << len;
  }
}

TEST(HostileInputTest, EverySingleBitFlipErrorsCleanly) {
  // CRC framing covers the payloads; magic/version/chunk-header bytes have
  // their own validation. No flip may crash or be silently accepted — except
  // in the version field itself, where a flip can land on a valid *older*
  // version, which readers accept by design (the field gates format features,
  // it is not integrity-protected; the chunk CRCs are).
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 4);
  hist.InsertBatch(UnitStream(9, 100));
  const std::vector<uint8_t> bytes = SnapshotBytesOf(hist);
  std::vector<uint8_t> corrupt(bytes);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    const bool in_version_field = byte >= 8 && byte < 12;
    for (int bit = 0; bit < 8; ++bit) {
      corrupt[byte] = bytes[byte] ^ static_cast<uint8_t>(1 << bit);
      if (in_version_field) {
        uint32_t version = 0;
        std::memcpy(&version, corrupt.data() + 8, 4);
        if constexpr (std::endian::native != std::endian::little) {
          version = __builtin_bswap32(version);
        }
        if (version >= 1 && version <= io::kSnapshotFormatVersion) {
          corrupt[byte] = bytes[byte];
          continue;  // a valid older version: acceptance is the contract
        }
      }
      io::SpanSource source(corrupt);
      EXPECT_FALSE(selectivity::LoadEstimatorSnapshot(source).ok())
          << "byte=" << byte << " bit=" << bit;
    }
    corrupt[byte] = bytes[byte];
  }
}

TEST(HostileInputTest, WrongMagicAndFutureVersionsAreRejected) {
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 4);
  const std::vector<uint8_t> bytes = SnapshotBytesOf(hist);

  std::vector<uint8_t> wrong_magic(bytes);
  wrong_magic[0] = 'X';
  io::SpanSource magic_source(wrong_magic);
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> magic_result =
      selectivity::LoadEstimatorSnapshot(magic_source);
  ASSERT_FALSE(magic_result.ok());
  EXPECT_NE(magic_result.status().message().find("magic"), std::string::npos);

  std::vector<uint8_t> future(bytes);
  future[8] = 0xFF;  // version u32 little-endian follows the 8-byte magic
  io::SpanSource future_source(future);
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> future_result =
      selectivity::LoadEstimatorSnapshot(future_source);
  ASSERT_FALSE(future_result.ok());
  EXPECT_NE(future_result.status().message().find("version"), std::string::npos);
}

TEST(HostileInputTest, ValidFramingWithGarbagePayloadErrors) {
  // A well-formed envelope (valid CRCs) whose state payload is noise must be
  // caught by the estimator's own validation, not trusted.
  io::VectorSink sink;
  ASSERT_TRUE(io::WriteSnapshotHeader(sink).ok());
  const std::string tag = "equi-width";
  ASSERT_TRUE(io::WriteChunk(sink, selectivity::internal::kChunkEstimatorType,
                             std::span(reinterpret_cast<const uint8_t*>(tag.data()),
                                       tag.size()))
                  .ok());
  const std::vector<uint8_t> garbage(64, 0xA5);
  ASSERT_TRUE(
      io::WriteChunk(sink, selectivity::internal::kChunkEstimatorState, garbage).ok());
  io::SpanSource source(sink.bytes());
  EXPECT_FALSE(selectivity::LoadEstimatorSnapshot(source).ok());
}

TEST(HostileInputTest, UnknownTypeTagIsNotFound) {
  io::VectorSink sink;
  ASSERT_TRUE(io::WriteSnapshotHeader(sink).ok());
  const std::string tag = "no-such-estimator";
  ASSERT_TRUE(io::WriteChunk(sink, selectivity::internal::kChunkEstimatorType,
                             std::span(reinterpret_cast<const uint8_t*>(tag.data()),
                                       tag.size()))
                  .ok());
  ASSERT_TRUE(io::WriteChunk(sink, selectivity::internal::kChunkEstimatorState,
                             std::vector<uint8_t>{})
                  .ok());
  io::SpanSource source(sink.bytes());
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> result =
      selectivity::LoadEstimatorSnapshot(source);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

// ------------------------------------------- cross-process-style merging

TEST(SnapshotMergeTest, IntegerStateEstimatorsMergeFromSnapshotsBitExactly) {
  const std::vector<double> xs = UnitStream(10, 8000);
  const std::span<const double> all(xs);
  const std::vector<selectivity::RangeQuery> queries = Workload();

  const auto check = [&](auto make) {
    auto sequential = make();
    sequential.InsertBatch(all);
    auto node_a = make();
    auto node_b = make();
    node_a.InsertBatch(all.first(3500));
    node_b.InsertBatch(all.subspan(3500));
    const std::vector<uint8_t> snap_a = SnapshotBytesOf(node_a);
    const std::vector<uint8_t> snap_b = SnapshotBytesOf(node_b);

    auto combiner = make();
    io::SpanSource source_a(snap_a);
    io::SpanSource source_b(snap_b);
    ASSERT_TRUE(combiner.MergeFromSnapshot(source_a).ok());
    ASSERT_TRUE(combiner.MergeFromSnapshot(source_b).ok());
    EXPECT_EQ(combiner.count(), sequential.count());
    EXPECT_EQ(AnswersOf(combiner, queries), AnswersOf(sequential, queries));
  };
  check([] { return selectivity::EquiWidthHistogram(0.0, 1.0, 64); });
  check([] { return selectivity::EquiDepthHistogram(0.0, 1.0, 16); });
  check([] {
    selectivity::WaveletSynopsisSelectivity::Options options;
    options.grid_log2 = 8;
    options.budget = 32;
    options.rebuild_interval = 1 << 20;
    return *selectivity::WaveletSynopsisSelectivity::Create(options);
  });
}

TEST(SnapshotMergeTest, SketchMergeFromSnapshotsMatchesSequentialWithinTolerance) {
  const std::vector<double> xs = UnitStream(11, 1 << 14);
  const std::span<const double> all(xs);
  selectivity::StreamingWaveletSelectivity sequential = MakeSketch(1 << 30);
  sequential.InsertBatch(all);
  selectivity::StreamingWaveletSelectivity node_a = MakeSketch(1 << 30);
  selectivity::StreamingWaveletSelectivity node_b = MakeSketch(1 << 30);
  node_a.InsertBatch(all.first(6000));
  node_b.InsertBatch(all.subspan(6000));

  selectivity::StreamingWaveletSelectivity combiner = MakeSketch(1 << 30);
  const std::vector<uint8_t> snap_a = SnapshotBytesOf(node_a);
  const std::vector<uint8_t> snap_b = SnapshotBytesOf(node_b);
  io::SpanSource source_a(snap_a);
  io::SpanSource source_b(snap_b);
  ASSERT_TRUE(combiner.MergeFromSnapshot(source_a).ok());
  ASSERT_TRUE(combiner.MergeFromSnapshot(source_b).ok());
  EXPECT_EQ(combiner.count(), sequential.count());
  for (double a = 0.0; a < 0.9; a += 0.07) {
    const double got = combiner.EstimateRange(a, a + 0.1);
    const double want = sequential.EstimateRange(a, a + 0.1);
    EXPECT_NEAR(got, want, 1e-12 * std::max(1.0, std::fabs(want)));
  }
}

TEST(SnapshotMergeTest, MergeFromSnapshotRejectsIncompatibleConfigs) {
  selectivity::EquiWidthHistogram node(0.0, 1.0, 64);
  node.InsertBatch(UnitStream(12, 500));
  const std::vector<uint8_t> snap = SnapshotBytesOf(node);

  selectivity::EquiWidthHistogram other_buckets(0.0, 1.0, 32);
  io::SpanSource source(snap);
  EXPECT_FALSE(other_buckets.MergeFromSnapshot(source).ok());
  EXPECT_EQ(other_buckets.count(), 0u);

  selectivity::EquiDepthHistogram other_type(0.0, 1.0, 64);
  io::SpanSource source_again(snap);
  EXPECT_FALSE(other_type.MergeFromSnapshot(source_again).ok());
}

// ------------------------------------------------- sharded checkpointing

TEST(ShardedCheckpointTest, CheckpointRestoreContinueMatchesUninterruptedRun) {
  const std::string path = testing::TempDir() + "/wde_sharded_checkpoint.snap";
  const std::vector<double> xs = UnitStream(13, 40000);
  const std::span<const double> all(xs);
  const std::vector<selectivity::RangeQuery> queries = Workload();

  const auto make = []() {
    selectivity::EquiWidthHistogram prototype(0.0, 1.0, 64);
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = 4;
    options.block_size = 1024;
    return *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
  };
  selectivity::ShardedSelectivityEstimator uninterrupted = make();
  uninterrupted.InsertBatch(all);

  // Ingest half, checkpoint, "kill" the node, restore into a fresh engine,
  // continue with the second half: partition positions must line up exactly.
  {
    selectivity::ShardedSelectivityEstimator node = make();
    node.InsertBatch(all.first(17000));
    ASSERT_TRUE(node.Checkpoint(path).ok());
  }
  selectivity::ShardedSelectivityEstimator restored = make();
  ASSERT_TRUE(restored.Restore(path).ok());
  EXPECT_EQ(restored.count(), 17000u);
  restored.InsertBatch(all.subspan(17000));
  EXPECT_EQ(restored.count(), uninterrupted.count());
  for (size_t s = 0; s < restored.shards(); ++s) {
    EXPECT_EQ(restored.shard(s).count(), uninterrupted.shard(s).count());
  }
  EXPECT_EQ(AnswersOf(restored, queries), AnswersOf(uninterrupted, queries));
  std::remove(path.c_str());
}

TEST(ShardedCheckpointTest, RestoreRejectsCorruptCheckpointsUntouched) {
  const std::string path = testing::TempDir() + "/wde_sharded_corrupt.snap";
  selectivity::EquiWidthHistogram prototype(0.0, 1.0, 16);
  selectivity::ShardedSelectivityEstimator node =
      *selectivity::ShardedSelectivityEstimator::Create(prototype, {});
  node.InsertBatch(UnitStream(14, 2000));
  ASSERT_TRUE(node.Checkpoint(path).ok());

  // Truncate the file: Restore must fail and leave the target untouched.
  {
    Result<io::FileSource> full = io::FileSource::Open(path);
    ASSERT_TRUE(full.ok());
    std::vector<uint8_t> bytes(full->remaining());
    ASSERT_TRUE(full->Read(bytes.data(), bytes.size()).ok());
    Result<io::FileSink> sink = io::FileSink::Open(path);
    ASSERT_TRUE(sink.ok());
    ASSERT_TRUE(sink->Append(bytes.data(), bytes.size() / 2).ok());
    ASSERT_TRUE(sink->Close().ok());
  }
  selectivity::ShardedSelectivityEstimator target =
      *selectivity::ShardedSelectivityEstimator::Create(prototype, {});
  target.InsertBatch(UnitStream(15, 100));
  EXPECT_FALSE(target.Restore(path).ok());
  EXPECT_EQ(target.count(), 100u);  // untouched
  std::remove(path.c_str());
}

TEST(ShardedCheckpointTest, PacedMergedViewNeverCrossesARestoreBoundary) {
  // Regression for the merge_refresh_interval × restore interaction: with a
  // large refresh interval the engine deliberately serves a stale merged
  // view between rebuilds, but that staleness is a live-pacing contract —
  // it must NOT survive a checkpoint/restore. The restored engine answers
  // from a fresh rebuild of the replicas.
  const std::string path = testing::TempDir() + "/wde_sharded_paced.snap";
  const auto make = []() {
    selectivity::EquiWidthHistogram prototype(0.0, 1.0, 64);
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = 3;
    options.block_size = 256;
    options.merge_refresh_interval = 1000000;  // effectively never refresh
    return *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
  };
  stats::Rng rng(17);
  std::vector<double> low(4000), high(4000);
  for (double& x : low) x = rng.Uniform(0.0, 0.5);
  for (double& x : high) x = rng.Uniform(0.5, 1.0);

  selectivity::ShardedSelectivityEstimator node = make();
  node.InsertBatch(low);
  const double stale = node.EstimateRange(0.5, 1.0);  // builds the view
  EXPECT_EQ(stale, 0.0);  // nothing above 0.5 yet
  node.InsertBatch(high);  // pending < interval: the stale view keeps serving
  EXPECT_EQ(node.EstimateRange(0.5, 1.0), stale);
  ASSERT_TRUE(node.Checkpoint(path).ok());

  // Pre-restore the live node still paces; the RESTORED engine must not.
  selectivity::ShardedSelectivityEstimator restored = make();
  ASSERT_TRUE(restored.Restore(path).ok());
  EXPECT_EQ(restored.count(), 8000u);
  const double fresh = restored.EstimateRange(0.5, 1.0);
  EXPECT_NEAR(fresh, 0.5, 0.05);
  // And the rebuilt answer is exactly a quiesced merge of the same stream:
  // an engine with refresh interval 1 over the identical ingest agrees
  // bitwise (integer histogram state).
  selectivity::EquiWidthHistogram prototype(0.0, 1.0, 64);
  selectivity::ShardedSelectivityEstimator::Options eager_options;
  eager_options.shards = 3;
  eager_options.block_size = 256;
  selectivity::ShardedSelectivityEstimator eager =
      *selectivity::ShardedSelectivityEstimator::Create(prototype, eager_options);
  eager.InsertBatch(low);
  eager.InsertBatch(high);
  EXPECT_EQ(fresh, eager.EstimateRange(0.5, 1.0));
  std::remove(path.c_str());
}

TEST(ShardedCheckpointTest, DistributedNodesMergeViaSnapshots) {
  // The full distributed story: two sharded ingest nodes over disjoint
  // partitions write snapshots; a combiner node restores + merges them and
  // answers exactly like one node over the whole stream.
  const std::vector<double> xs = UnitStream(16, 30000);
  const std::span<const double> all(xs);
  const std::vector<selectivity::RangeQuery> queries = Workload();
  const auto make = []() {
    selectivity::EquiWidthHistogram prototype(0.0, 1.0, 64);
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = 4;
    return *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
  };
  selectivity::ShardedSelectivityEstimator sequential = make();
  sequential.InsertBatch(all);

  selectivity::ShardedSelectivityEstimator node_a = make();
  selectivity::ShardedSelectivityEstimator node_b = make();
  node_a.InsertBatch(all.first(13000));
  node_b.InsertBatch(all.subspan(13000));
  const std::vector<uint8_t> snap_a = SnapshotBytesOf(node_a);
  const std::vector<uint8_t> snap_b = SnapshotBytesOf(node_b);

  selectivity::ShardedSelectivityEstimator combiner = make();
  io::SpanSource source_a(snap_a);
  io::SpanSource source_b(snap_b);
  ASSERT_TRUE(combiner.MergeFromSnapshot(source_a).ok());
  ASSERT_TRUE(combiner.MergeFromSnapshot(source_b).ok());
  EXPECT_EQ(combiner.count(), sequential.count());
  EXPECT_EQ(AnswersOf(combiner, queries), AnswersOf(sequential, queries));
}

// ------------------------------------------------- fast (arena) snapshots

std::vector<uint8_t> FastSnapshotBytesOf(
    const selectivity::SelectivityEstimator& est) {
  io::VectorSink sink;
  WDE_CHECK_OK(selectivity::SaveEstimatorSnapshotFast(est, sink));
  return sink.TakeBytes();
}

TEST(FastSnapshotTest, EveryRegisteredEstimatorRoundTripsBitIdentically) {
  // The fast (ARNA) encoding must be answer-equivalent to the portable one
  // for every registered tag: both restores agree bitwise with the saved
  // estimator, queried or not.
  const std::vector<selectivity::RangeQuery> queries = Workload();
  for (const bool query_first : {true, false}) {
    for (const auto& est : MakeIngestedEstimators()) {
      EXPECT_TRUE(est->supports_fast_snapshot()) << est->name();
      if (query_first) AnswersOf(*est, queries);  // warm the lazy caches
      const std::vector<double> before = AnswersOf(*est, queries);

      const std::vector<uint8_t> fast_bytes = FastSnapshotBytesOf(*est);
      io::SpanSource fast_source(fast_bytes);
      Result<std::unique_ptr<selectivity::SelectivityEstimator>> fast =
          selectivity::LoadEstimatorSnapshot(fast_source);
      ASSERT_TRUE(fast.ok()) << est->name() << ": " << fast.status().ToString();
      EXPECT_EQ((*fast)->name(), est->name());
      EXPECT_EQ((*fast)->count(), est->count());
      EXPECT_EQ(AnswersOf(**fast, queries), before) << est->name();

      const std::vector<uint8_t> portable_bytes = SnapshotBytesOf(*est);
      io::SpanSource portable_source(portable_bytes);
      Result<std::unique_ptr<selectivity::SelectivityEstimator>> portable =
          selectivity::LoadEstimatorSnapshot(portable_source);
      ASSERT_TRUE(portable.ok()) << est->name();
      EXPECT_EQ(AnswersOf(**portable, queries), before) << est->name();
    }
  }
}

TEST(FastSnapshotTest, MappedFileRestoreMatchesPortableForEveryTag) {
  const std::string path = testing::TempDir() + "/wde_fast_snapshot.snap";
  const std::vector<selectivity::RangeQuery> queries = Workload();
  for (const auto& est : MakeIngestedEstimators()) {
    const std::vector<double> before = AnswersOf(*est, queries);
    ASSERT_TRUE(selectivity::SaveEstimatorSnapshotFastFile(*est, path).ok())
        << est->name();
    Result<std::unique_ptr<selectivity::SelectivityEstimator>> mapped =
        selectivity::LoadEstimatorSnapshotFileMapped(path);
    ASSERT_TRUE(mapped.ok()) << est->name() << ": " << mapped.status().ToString();
    EXPECT_EQ(AnswersOf(**mapped, queries), before) << est->name();
    // A mapped restore may borrow the file's pages zero-copy; mutating the
    // estimator must un-share (CoW) rather than write through the mapping,
    // and the estimator keeps working after further ingest.
    (*mapped)->InsertBatch(UnitStream(20, 500));
    // A d-dimensional estimator consumes d interleaved values per observation.
    EXPECT_EQ((*mapped)->count(),
              est->count() + 500 / static_cast<size_t>(est->dims()))
        << est->name();
    AnswersOf(**mapped, queries);  // must not crash or corrupt
  }
  std::remove(path.c_str());
}

TEST(FastSnapshotTest, RestoredEstimatorContinuesIngestingIdentically) {
  // The fast state must capture everything the portable one does, RNG
  // included: the reservoir's acceptance sequence is the sharpest probe.
  const std::vector<double> head = UnitStream(17, 6000);
  const std::vector<double> tail = UnitStream(18, 2000);
  selectivity::ReservoirSampleSelectivity twin(128, 31);
  twin.InsertBatch(head);
  const std::vector<uint8_t> bytes = FastSnapshotBytesOf(twin);
  io::SpanSource source(bytes);
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> restored =
      selectivity::LoadEstimatorSnapshot(source);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  twin.InsertBatch(tail);
  (*restored)->InsertBatch(tail);
  auto& reservoir =
      static_cast<selectivity::ReservoirSampleSelectivity&>(**restored);
  EXPECT_EQ(reservoir.reservoir(), twin.reservoir());
  EXPECT_EQ(reservoir.count(), twin.count());
}

TEST(FastSnapshotTest, ShardedCheckpointRestoresFromEitherEncoding) {
  // Restore() accepts a checkpoint written by either saver; the fast one
  // restores to the same answers.
  const std::string path = testing::TempDir() + "/wde_fast_checkpoint.snap";
  const std::vector<selectivity::RangeQuery> queries = Workload();
  selectivity::KdeSelectivity::Options proto_options;
  proto_options.refit_interval = 512;
  selectivity::KdeSelectivity prototype(proto_options);
  selectivity::ShardedSelectivityEstimator::Options options;
  options.shards = 3;
  options.block_size = 256;
  selectivity::ShardedSelectivityEstimator node =
      *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
  node.InsertBatch(UnitStream(19, 9000));
  const std::vector<double> before = AnswersOf(node, queries);
  ASSERT_TRUE(selectivity::SaveEstimatorSnapshotFastFile(node, path).ok());

  selectivity::ShardedSelectivityEstimator restored =
      *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
  ASSERT_TRUE(restored.Restore(path).ok());
  EXPECT_EQ(restored.count(), node.count());
  EXPECT_EQ(AnswersOf(restored, queries), before);
  std::remove(path.c_str());
}

TEST(FastSnapshotHostileTest, EveryTruncationErrorsCleanly) {
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 8);
  hist.InsertBatch(UnitStream(8, 300));
  AnswersOf(hist, Workload());  // populate the prefix cache column
  const std::vector<uint8_t> bytes = FastSnapshotBytesOf(hist);
  for (size_t len = 0; len < bytes.size(); ++len) {
    io::SpanSource source(std::span(bytes.data(), len));
    EXPECT_FALSE(selectivity::LoadEstimatorSnapshot(source).ok()) << "len=" << len;
  }
}

TEST(FastSnapshotHostileTest, EverySingleBitFlipErrorsCleanly) {
  // Identical contract to the portable artifact: the ARNA chunk is CRC-framed
  // like every other chunk, so no flip may crash or be silently accepted
  // (version-field flips landing on a valid older version excepted, as ever).
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 4);
  hist.InsertBatch(UnitStream(9, 100));
  const std::vector<uint8_t> bytes = FastSnapshotBytesOf(hist);
  std::vector<uint8_t> corrupt(bytes);
  for (size_t byte = 0; byte < bytes.size(); ++byte) {
    const bool in_version_field = byte >= 8 && byte < 12;
    for (int bit = 0; bit < 8; ++bit) {
      corrupt[byte] = bytes[byte] ^ static_cast<uint8_t>(1 << bit);
      if (in_version_field) {
        uint32_t version = 0;
        std::memcpy(&version, corrupt.data() + 8, 4);
        if constexpr (std::endian::native != std::endian::little) {
          version = __builtin_bswap32(version);
        }
        if (version >= 1 && version <= io::kSnapshotFormatVersion) {
          corrupt[byte] = bytes[byte];
          continue;
        }
      }
      io::SpanSource source(corrupt);
      EXPECT_FALSE(selectivity::LoadEstimatorSnapshot(source).ok())
          << "byte=" << byte << " bit=" << bit;
    }
    corrupt[byte] = bytes[byte];
  }
}

TEST(FastSnapshotHostileTest, ValidFramingWithGarbageArenaPayloadErrors) {
  // A well-formed envelope whose ARNA payload is noise must be caught by the
  // frame parser or the estimator's own validation, never trusted.
  io::VectorSink sink;
  ASSERT_TRUE(io::WriteSnapshotHeader(sink).ok());
  const std::string tag = "equi-width";
  ASSERT_TRUE(io::WriteChunk(sink, selectivity::internal::kChunkEstimatorType,
                             std::span(reinterpret_cast<const uint8_t*>(tag.data()),
                                       tag.size()))
                  .ok());
  const std::vector<uint8_t> garbage(128, 0xA5);
  ASSERT_TRUE(
      io::WriteChunk(sink, selectivity::internal::kChunkEstimatorArena, garbage).ok());
  io::SpanSource source(sink.bytes());
  EXPECT_FALSE(selectivity::LoadEstimatorSnapshot(source).ok());
}

TEST(FastSnapshotHostileTest, ColumnDirectoryMismatchIsRejected) {
  // A structurally valid ARN1 frame whose column directory disagrees with the
  // head (wrong kind and wrong count) must fail the shape check, not abort in
  // a typed accessor.
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 4);
  hist.InsertBatch(UnitStream(21, 50));
  io::VectorSink sink;
  ASSERT_TRUE(hist.SaveStateFast(sink, 12).ok());
  std::vector<uint8_t> envelope = sink.TakeBytes();
  // Locate the ARNA payload: header-less envelope = TYPE chunk then ARNA
  // chunk; the payload starts 12 bytes into the second chunk.
  const size_t type_chunk = 16 + std::string("equi-width").size();
  uint32_t head_bytes = 0;
  std::memcpy(&head_bytes, envelope.data() + type_chunk + 12 + 4, 4);
  // Flip the first column's kind byte (column_count u32 precedes it). The
  // CRC no longer matches, so re-frame the chunk instead of patching bytes:
  // parse out the payload, corrupt, rewrite.
  io::SpanSource parse(std::span<const uint8_t>(envelope).subspan(type_chunk));
  Result<io::Chunk> arena_chunk = io::ReadChunk(parse);
  ASSERT_TRUE(arena_chunk.ok());
  std::vector<uint8_t> payload = arena_chunk->payload;
  const size_t kind_at = 8 + head_bytes + 4;
  ASSERT_LT(kind_at, payload.size());
  payload[kind_at] = 2;  // kF64 -> kU8: element size shrinks, head disagrees
  io::VectorSink rebuilt;
  ASSERT_TRUE(io::WriteSnapshotHeader(rebuilt).ok());
  const std::string tag = "equi-width";
  ASSERT_TRUE(io::WriteChunk(rebuilt, selectivity::internal::kChunkEstimatorType,
                             std::span(reinterpret_cast<const uint8_t*>(tag.data()),
                                       tag.size()))
                  .ok());
  ASSERT_TRUE(
      io::WriteChunk(rebuilt, selectivity::internal::kChunkEstimatorArena, payload)
          .ok());
  io::SpanSource source(rebuilt.bytes());
  EXPECT_FALSE(selectivity::LoadEstimatorSnapshot(source).ok());
}

}  // namespace
}  // namespace wde
