// google-benchmark microbenches comparing the streaming selectivity
// estimators: per-insert cost, range-query latency, and refit cost — the
// numbers that decide whether the wavelet sketch is deployable in an
// optimizer's statistics pipeline.
//
// The *Scalar/*Batch pairs measure the same work through the per-point
// virtuals vs the span-based batch entry points (which are bit-identical by
// contract; see tests/batch_equivalence_test.cpp). The batch JSON baseline in
// BENCH_selectivity_batch.json is produced from this binary — see
// docs/BENCHMARKS.md for the exact command.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <span>
#include <vector>

#include "selectivity/histogram.hpp"
#include "selectivity/kde_selectivity.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"
#include "stats/rng.hpp"
#include "wavelet/scaled_function.hpp"

namespace {

using namespace wde;

const wavelet::WaveletBasis& Basis() {
  static const wavelet::WaveletBasis basis =
      *wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
  return basis;
}

selectivity::StreamingWaveletSelectivity MakeSketch(size_t refit_interval = 1ULL << 30) {
  selectivity::StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 11;
  options.refit_interval = refit_interval;  // huge -> inserts never refit
  return *selectivity::StreamingWaveletSelectivity::Create(Basis(), options);
}

const std::vector<double>& Stream(size_t n) {
  static std::vector<double> data;
  if (data.size() < n) {
    stats::Rng rng(1);
    data.resize(n);
    for (double& x : data) x = rng.UniformDouble();
  }
  return data;
}

std::vector<selectivity::RangeQuery> Queries(size_t count) {
  stats::Rng rng(5);
  return selectivity::CenteredRangeWorkload(rng, count, 0.0, 1.0, 0.02, 0.3);
}

// ------------------------------------------------- wavelet sketch: inserts

void BM_WaveletSketchInsertScalar(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double>& data = Stream(n);
  for (auto _ : state) {
    state.PauseTiming();
    selectivity::StreamingWaveletSelectivity sketch = MakeSketch();
    state.ResumeTiming();
    for (size_t i = 0; i < n; ++i) sketch.Insert(data[i]);
    benchmark::DoNotOptimize(sketch.count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_WaveletSketchInsertScalar)->Arg(1 << 16)->Arg(1000000);

void BM_WaveletSketchInsertBatch(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double>& data = Stream(n);
  for (auto _ : state) {
    state.PauseTiming();
    selectivity::StreamingWaveletSelectivity sketch = MakeSketch();
    state.ResumeTiming();
    sketch.InsertBatch(std::span<const double>(data.data(), n));
    benchmark::DoNotOptimize(sketch.count());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_WaveletSketchInsertBatch)->Arg(1 << 16)->Arg(1000000);

// -------------------------------------------------- wavelet sketch: queries

void BM_WaveletSketchQueryScalar(benchmark::State& state) {
  selectivity::StreamingWaveletSelectivity sketch = MakeSketch();
  sketch.InsertBatch(Stream(1000000));
  sketch.Refit();
  const std::vector<selectivity::RangeQuery> queries = Queries(1024);
  for (auto _ : state) {
    double acc = 0.0;
    for (const selectivity::RangeQuery& q : queries) {
      acc += sketch.EstimateRange(q.lo, q.hi);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_WaveletSketchQueryScalar);

void BM_WaveletSketchQueryBatch(benchmark::State& state) {
  selectivity::StreamingWaveletSelectivity sketch = MakeSketch();
  sketch.InsertBatch(Stream(1000000));
  sketch.Refit();
  const std::vector<selectivity::RangeQuery> queries = Queries(1024);
  std::vector<double> answers(queries.size());
  for (auto _ : state) {
    sketch.EstimateBatch(queries, answers);
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(queries.size()));
}
BENCHMARK(BM_WaveletSketchQueryBatch);

// ------------------------------------- wavelet sketch: full stream workload
// The acceptance workload: ingest a 1e6-sample stream (periodic refits on)
// and answer a query batch — scalar virtuals vs batch entry points.

void BM_WaveletSketchStreamScalar(benchmark::State& state) {
  const size_t n = 1000000;
  const std::vector<double>& data = Stream(n);
  const std::vector<selectivity::RangeQuery> queries = Queries(1024);
  for (auto _ : state) {
    state.PauseTiming();
    selectivity::StreamingWaveletSelectivity sketch = MakeSketch(1 << 18);
    state.ResumeTiming();
    for (size_t i = 0; i < n; ++i) sketch.Insert(data[i]);
    double acc = 0.0;
    for (const selectivity::RangeQuery& q : queries) {
      acc += sketch.EstimateRange(q.lo, q.hi);
    }
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n + queries.size()));
}
BENCHMARK(BM_WaveletSketchStreamScalar);

void BM_WaveletSketchStreamBatch(benchmark::State& state) {
  const size_t n = 1000000;
  const std::vector<double>& data = Stream(n);
  const std::vector<selectivity::RangeQuery> queries = Queries(1024);
  std::vector<double> answers(queries.size());
  for (auto _ : state) {
    state.PauseTiming();
    selectivity::StreamingWaveletSelectivity sketch = MakeSketch(1 << 18);
    state.ResumeTiming();
    sketch.InsertBatch(std::span<const double>(data.data(), n));
    sketch.EstimateBatch(queries, answers);
    benchmark::DoNotOptimize(answers.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n + queries.size()));
}
BENCHMARK(BM_WaveletSketchStreamBatch);

// ------------------------------------------------------ baseline estimators

void BM_InsertEquiWidth(benchmark::State& state) {
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 64);
  stats::Rng rng(2);
  for (auto _ : state) {
    hist.Insert(rng.UniformDouble());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertEquiWidth);

void BM_InsertReservoir(benchmark::State& state) {
  selectivity::ReservoirSampleSelectivity res(1024);
  stats::Rng rng(3);
  for (auto _ : state) {
    res.Insert(rng.UniformDouble());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertReservoir);

template <typename Estimator>
void QueryLoop(benchmark::State& state, Estimator& estimator) {
  stats::Rng rng(5);
  for (int i = 0; i < 65536; ++i) estimator.Insert(rng.UniformDouble());
  double a = 0.0;
  for (auto _ : state) {
    a += 0.000917;
    if (a > 0.8) a -= 0.8;
    benchmark::DoNotOptimize(estimator.EstimateRange(a, a + 0.15));
  }
}

void BM_QueryEquiWidth(benchmark::State& state) {
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 64);
  QueryLoop(state, hist);
}
BENCHMARK(BM_QueryEquiWidth);

void BM_QueryEquiDepth(benchmark::State& state) {
  selectivity::EquiDepthHistogram hist(0.0, 1.0, 64);
  QueryLoop(state, hist);
}
BENCHMARK(BM_QueryEquiDepth);

void BM_QueryKde(benchmark::State& state) {
  selectivity::KdeSelectivity::Options options;
  selectivity::KdeSelectivity kde(options);
  QueryLoop(state, kde);
}
BENCHMARK(BM_QueryKde);

void BM_InsertHaarSynopsis(benchmark::State& state) {
  selectivity::WaveletSynopsisSelectivity synopsis =
      *selectivity::WaveletSynopsisSelectivity::Create({});
  stats::Rng rng(4);
  for (auto _ : state) {
    synopsis.Insert(rng.UniformDouble());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertHaarSynopsis);

void BM_QueryHaarSynopsis(benchmark::State& state) {
  selectivity::WaveletSynopsisSelectivity synopsis =
      *selectivity::WaveletSynopsisSelectivity::Create({});
  QueryLoop(state, synopsis);
}
BENCHMARK(BM_QueryHaarSynopsis);

void BM_WaveletRefit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  selectivity::StreamingWaveletSelectivity sketch = MakeSketch();
  sketch.InsertBatch(std::span<const double>(Stream(n).data(), n));
  for (auto _ : state) {
    sketch.Refit();
  }
}
BENCHMARK(BM_WaveletRefit)->Arg(4096)->Arg(65536);

}  // namespace

// Not BENCHMARK_MAIN(): the build-type gate must run before benchmark
// registration parses --benchmark_out, so a debug binary can never write a
// JSON baseline (see bench_common.hpp).
int main(int argc, char** argv) {
  if (!wde::bench::perf::CheckBuildForBaseline(argc, argv)) return 2;
  benchmark::AddCustomContext("build_type", wde::bench::perf::BuildType());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
