// google-benchmark microbenches comparing the streaming selectivity
// estimators: per-insert cost, range-query latency, and refit cost — the
// numbers that decide whether the wavelet sketch is deployable in an
// optimizer's statistics pipeline.
#include <benchmark/benchmark.h>

#include "selectivity/histogram.hpp"
#include "selectivity/kde_selectivity.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"
#include "stats/rng.hpp"
#include "wavelet/scaled_function.hpp"

namespace {

using namespace wde;

const wavelet::WaveletBasis& Basis() {
  static const wavelet::WaveletBasis basis =
      *wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
  return basis;
}

selectivity::StreamingWaveletSelectivity MakeSketch(size_t refit_interval = 1ULL << 30) {
  selectivity::StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 11;
  options.refit_interval = refit_interval;  // huge -> inserts never refit
  return *selectivity::StreamingWaveletSelectivity::Create(Basis(), options);
}

void BM_InsertWaveletSketch(benchmark::State& state) {
  selectivity::StreamingWaveletSelectivity sketch = MakeSketch();
  stats::Rng rng(1);
  for (auto _ : state) {
    sketch.Insert(rng.UniformDouble());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertWaveletSketch);

void BM_InsertEquiWidth(benchmark::State& state) {
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 64);
  stats::Rng rng(2);
  for (auto _ : state) {
    hist.Insert(rng.UniformDouble());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertEquiWidth);

void BM_InsertReservoir(benchmark::State& state) {
  selectivity::ReservoirSampleSelectivity res(1024);
  stats::Rng rng(3);
  for (auto _ : state) {
    res.Insert(rng.UniformDouble());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertReservoir);

template <typename Estimator>
void QueryLoop(benchmark::State& state, Estimator& estimator) {
  stats::Rng rng(5);
  for (int i = 0; i < 65536; ++i) estimator.Insert(rng.UniformDouble());
  double a = 0.0;
  for (auto _ : state) {
    a += 0.000917;
    if (a > 0.8) a -= 0.8;
    benchmark::DoNotOptimize(estimator.EstimateRange(a, a + 0.15));
  }
}

void BM_QueryWaveletSketch(benchmark::State& state) {
  selectivity::StreamingWaveletSelectivity sketch = MakeSketch();
  QueryLoop(state, sketch);
}
BENCHMARK(BM_QueryWaveletSketch);

void BM_QueryEquiWidth(benchmark::State& state) {
  selectivity::EquiWidthHistogram hist(0.0, 1.0, 64);
  QueryLoop(state, hist);
}
BENCHMARK(BM_QueryEquiWidth);

void BM_QueryEquiDepth(benchmark::State& state) {
  selectivity::EquiDepthHistogram hist(0.0, 1.0, 64);
  QueryLoop(state, hist);
}
BENCHMARK(BM_QueryEquiDepth);

void BM_QueryKde(benchmark::State& state) {
  selectivity::KdeSelectivity::Options options;
  selectivity::KdeSelectivity kde(options);
  QueryLoop(state, kde);
}
BENCHMARK(BM_QueryKde);

void BM_InsertHaarSynopsis(benchmark::State& state) {
  selectivity::WaveletSynopsisSelectivity synopsis =
      *selectivity::WaveletSynopsisSelectivity::Create({});
  stats::Rng rng(4);
  for (auto _ : state) {
    synopsis.Insert(rng.UniformDouble());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_InsertHaarSynopsis);

void BM_QueryHaarSynopsis(benchmark::State& state) {
  selectivity::WaveletSynopsisSelectivity synopsis =
      *selectivity::WaveletSynopsisSelectivity::Create({});
  QueryLoop(state, synopsis);
}
BENCHMARK(BM_QueryHaarSynopsis);

void BM_WaveletRefit(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  selectivity::StreamingWaveletSelectivity sketch = MakeSketch();
  stats::Rng rng(7);
  for (size_t i = 0; i < n; ++i) sketch.Insert(rng.UniformDouble());
  for (auto _ : state) {
    sketch.Refit();
  }
}
BENCHMARK(BM_WaveletRefit)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
