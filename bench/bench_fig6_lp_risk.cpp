// Reproduces Figure 6 of the paper: the mean L^p risk
// (E ||g − f||_p^p)^{1/p} for p = 1..20 of the STCV wavelet estimator and
// the two Epanechnikov kernel baselines (rule-of-thumb and LSCV widths) on
// the bimodal Gaussian-mixture density, one series block per case.
//
// Expected shape: kernel 2 (CV width) is best for small p (<= ~4); its risk
// grows with p while the wavelet estimator's stays comparatively stable;
// kernel 1 is worst at small p.
#include "bench_common.hpp"

#include <cmath>

#include "kernel/bandwidth.hpp"
#include "kernel/kde.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config =
      harness::ExperimentConfig::FromEnv(1024, 200, 513);
  bench::PrintHeader("Figure 6: mean Lp risk vs p for the three estimators",
                     config);

  constexpr int kMaxP = 20;
  auto density = std::make_shared<const processes::TruncatedGaussianMixtureDensity>(
      processes::TruncatedGaussianMixtureDensity::Bimodal());
  const std::vector<double> truth = density->PdfOnGrid(config.grid_points);
  const double dx = 1.0 / static_cast<double>(config.grid_points - 1);
  const kernel::Kernel epanechnikov(kernel::KernelType::kEpanechnikov);

  std::vector<double> p_axis(kMaxP);
  for (int p = 1; p <= kMaxP; ++p) p_axis[static_cast<size_t>(p - 1)] = p;

  for (harness::DependenceCase c : harness::kAllCases) {
    const processes::TransformedProcess process = harness::MakeCase(c, density);
    // Per replicate: 3 estimators × kMaxP values of ∫|g−f|^p.
    const std::vector<double> mean_pows = harness::MeanCurve(
        config.replicates, config.seed, config.threads, 3 * kMaxP,
        [&](stats::Rng& rng, int) {
          const std::vector<double> xs = process.Sample(config.n, rng);
          core::AdaptiveOptions options;
          options.kind = core::ThresholdKind::kSoft;
          Result<core::AdaptiveDensityEstimate> fit =
              core::FitAdaptive(bench::Sym8Basis(), xs, options);
          WDE_CHECK(fit.ok());
          const std::vector<double> wavelet =
              fit->estimate.EvaluateOnGrid(0.0, 1.0, config.grid_points);

          const double h_rot = kernel::RuleOfThumbBandwidth(xs);
          const std::vector<double> rot =
              kernel::KernelDensityEstimator::Create(epanechnikov, h_rot, xs)
                  ->EvaluateOnGrid(0.0, 1.0, config.grid_points);
          const double h_cv = kernel::LeastSquaresCvBandwidth(epanechnikov, xs);
          const std::vector<double> cv =
              kernel::KernelDensityEstimator::Create(epanechnikov, h_cv, xs)
                  ->EvaluateOnGrid(0.0, 1.0, config.grid_points);

          std::vector<double> row;
          row.reserve(3 * kMaxP);
          for (const std::vector<double>* est : {&wavelet, &rot, &cv}) {
            for (int p = 1; p <= kMaxP; ++p) {
              row.push_back(stats::LpErrorPow(*est, truth, dx, p));
            }
          }
          return row;
        });
    std::vector<std::pair<std::string, std::vector<double>>> series;
    const char* names[3] = {"stcv_wavelet", "kernel1_rot", "kernel2_cv"};
    for (int e = 0; e < 3; ++e) {
      std::vector<double> risk(kMaxP);
      for (int p = 1; p <= kMaxP; ++p) {
        risk[static_cast<size_t>(p - 1)] = std::pow(
            mean_pows[static_cast<size_t>(e * kMaxP + p - 1)], 1.0 / p);
      }
      series.emplace_back(names[e], std::move(risk));
    }
    harness::PrintSeries(std::cout,
                         Format("Figure 6 / %s: (E||g-f||_p^p)^(1/p) vs p",
                                harness::CaseName(c)),
                         p_axis, series);
    std::cout << '\n';
  }
  std::cout << "expected shape: kernel2 best at small p but growing in p; "
               "stcv stable across p; kernel1 worst at small p.\n";
  return 0;
}
