// Diagnostic bench backing Section 4 and Proposition 5.1: empirical
// covariance decay |Cov(g(X_0), g(X_r))| for every process the library
// ships, with exponential vs power-law model fits. Assumption (D) requires
// exponential decay; the LSV maps violate it with rate r^{1-1/α'}.
//
// Expected shape: Cases 1-3, the doubling map and AR(1) prefer the
// exponential fit; LSV maps with larger α' prefer the power-law fit.
#include "bench_common.hpp"

#include <functional>
#include <memory>

#include "diagnostics/covariance_decay.hpp"
#include "processes/ar1_process.hpp"
#include "processes/arch_process.hpp"
#include "processes/doubling_map.hpp"
#include "processes/iid_process.hpp"
#include "processes/larch_process.hpp"
#include "processes/linear_process.hpp"
#include "processes/logistic_map.hpp"
#include "processes/lsv_map.hpp"
#include "processes/noncausal_ma.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config =
      harness::ExperimentConfig::FromEnv(40000, 20, 0);
  bench::PrintHeader("Diagnostics: covariance decay per process (Assumption D)",
                     config);

  // Bounded-variation observable, as in the φ̃-weak dependence definitions.
  // The threshold deliberately avoids dyadic values: e.g. for the doubling
  // map, 1{x < 0.25} has *exactly zero* covariance beyond lag 1 (the
  // threshold aligns with the map's binary structure).
  const std::function<double(double)> indicator = [](double x) {
    return x < 0.3 ? 1.0 : 0.0;
  };
  // ARCH levels are serially uncorrelated by construction; its dependence
  // lives in the squares (volatility clustering), so probe those.
  const std::function<double(double)> square = [](double x) { return x * x; };

  struct Entry {
    std::string name;
    std::shared_ptr<const processes::RawProcess> process;
    int max_lag;
    std::function<double(double)> g;
  };
  std::vector<Entry> entries;
  entries.push_back(
      {"iid uniform", std::make_shared<processes::IidUniformProcess>(), 8, indicator});
  // Chaotic maps are adversarial for second-order diagnostics: many
  // observables of the logistic map have identically vanishing or
  // sign-flipping correlations (the paper's Remark 1 is about exactly this
  // fragility), so only the first few — reliably positive — lags are fitted.
  entries.push_back({"logistic map", std::make_shared<processes::LogisticMapProcess>(),
                     4, indicator});
  entries.push_back({"non-causal MA", std::make_shared<processes::NoncausalMaProcess>(),
                     12, indicator});
  entries.push_back({"doubling map AR(1)",
                     std::make_shared<processes::DoublingMapProcess>(), 12, indicator});
  entries.push_back({"gaussian AR(1) rho=0.6",
                     std::make_shared<processes::Ar1GaussianProcess>(0.6), 10,
                     indicator});
  entries.push_back(
      {"LARCH(inf)", std::make_shared<processes::LarchProcess>(), 8, indicator});
  entries.push_back(
      {"ARCH(1) (squares)", std::make_shared<processes::ArchProcess>(), 8, square});
  entries.push_back({"two-sided linear (0.5, 0.6)",
                     std::make_shared<processes::TwoSidedLinearProcess>(0.5, 0.6), 10,
                     indicator});
  for (double alpha : {0.3, 0.6, 0.9}) {
    entries.push_back({Format("LSV alpha'=%.1f", alpha),
                       std::make_shared<processes::LsvMapProcess>(alpha), 30,
                       indicator});
  }

  harness::TextTable table({"process", "exp rate", "exp R2", "power exp",
                            "power R2", "verdict"});
  for (const Entry& entry : entries) {
    const diagnostics::CovarianceDecayReport report =
        diagnostics::MeasureCovarianceDecay(
            [&](stats::Rng& rng) { return entry.process->Path(config.n, rng); },
            entry.g, entry.max_lag, config.replicates, config.seed);
    table.AddRow({entry.name, Format("%.3f", report.exponential.rate),
                  Format("%.3f", report.exponential.r_squared),
                  Format("%.3f", report.power.rate),
                  Format("%.3f", report.power.r_squared),
                  report.Verdict()});
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: exponential for Cases 2-3 / doubling / AR(1) "
               "/ ARCH squares;\npolynomial for LSV (more cleanly as alpha' "
               "grows). LARCH decays like exp(-a sqrt(r))\n(the paper's b=1/2 "
               "case), which sits between the two fitted models.\n";
  return 0;
}
