// Reproduces Figure 4 of the paper: mean proportion of thresholded (killed)
// coefficients per resolution level for HTCV and STCV, one curve per
// dependence case.
//
// Expected shape: proportions rise to 1 at high levels but sit strictly
// between 0 and 1 at intermediate levels (the estimators are genuinely
// nonlinear — the paper's argument that CV does not degenerate to a linear
// projection), and the three case curves coincide.
#include "bench_common.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config = harness::ExperimentConfig::FromEnv();
  bench::PrintHeader("Figure 4: mean thresholded-coefficient fractions", config);

  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  const int j0 = core::DefaultPrimaryLevel(config.n, 8);
  const int j_star = core::DefaultTopLevel(config.n);
  const size_t levels = static_cast<size_t>(j_star - j0 + 1);

  std::vector<double> level_axis(levels);
  for (size_t i = 0; i < levels; ++i) level_axis[i] = static_cast<double>(j0) + i;

  for (core::ThresholdKind kind :
       {core::ThresholdKind::kHard, core::ThresholdKind::kSoft}) {
    std::vector<std::pair<std::string, std::vector<double>>> series;
    for (harness::DependenceCase c : harness::kAllCases) {
      const processes::TransformedProcess process = harness::MakeCase(c, density);
      const std::vector<double> mean_fraction = harness::MeanCurve(
          config.replicates, config.seed, config.threads, levels,
          [&](stats::Rng& rng, int) {
            const std::vector<double> xs = process.Sample(config.n, rng);
            Result<core::WaveletDensityFit> fit =
                core::WaveletDensityFit::Fit(bench::Sym8Basis(), xs);
            WDE_CHECK(fit.ok());
            const core::CrossValidationResult cv =
                core::CrossValidate(fit->coefficients(), kind);
            std::vector<double> fractions(levels);
            for (size_t i = 0; i < levels; ++i) {
              const core::LevelCvResult& level = cv.Level(j0 + static_cast<int>(i));
              fractions[i] = 1.0 - static_cast<double>(level.kept) /
                                       static_cast<double>(level.total);
            }
            return fractions;
          });
      series.emplace_back(harness::CaseName(c), mean_fraction);
    }
    harness::PrintSeries(
        std::cout,
        Format("Figure 4 / %s-thresholding: mean killed fraction vs level j",
               core::ThresholdKindName(kind)),
        level_axis, series);
    std::cout << '\n';
  }
  std::cout << "expected shape: increasing to 1, strictly inside (0,1) at "
               "mid levels; case-independent.\n";
  return 0;
}
