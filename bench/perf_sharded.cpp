// Shard-scaling bench for the sharded parallel ingest/query engine: ingest a
// large uniform stream into the adaptive wavelet sketch and answer a range
// workload, sequentially and through ShardedSelectivityEstimator at several
// shard counts (one pool thread per shard). Produces the committed
// BENCH_shard_scaling.json artifact (see docs/BENCHMARKS.md): per-row
// shards/threads metadata, items/second, speedup vs the sequential baseline,
// plus the determinism evidence — max absolute error of sharded vs
// sequential answers (contract: <= 1e-12; selectivities lie in [0, 1], see
// MaxAbsError) and bit-identity of fixed-K
// answers across pool widths.
//
// No google-benchmark dependency: plain steady_clock timing, best of
// --repeats runs, so the binary builds everywhere and CI can always produce
// the artifact. Parallel speedup requires physical cores; the "host" block
// records hardware_concurrency so flat curves on small containers are
// self-explaining.
//
// Usage: perf_sharded [--n=1000000] [--queries=1024] [--shards=1,2,4,8]
//                     [--repeats=3] [--out=BENCH_shard_scaling.json] [--check]
//
// --check turns the two correctness fields into a gate: exit 1 if any row
// violates max_abs_error_vs_sequential <= 1e-12 or loses fixed-K
// bit-identity across pool widths (CI runs with --check so the determinism
// contract is enforced at production scale, not just at test sizes).
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "parallel/thread_pool.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "stats/rng.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"
#include "wavelet/scaled_function.hpp"

namespace {

using namespace wde;

constexpr size_t kIngestChunk = 65536;  // production-style batched ingest
constexpr size_t kShardBlock = 4096;    // ShardedSelectivityEstimator blocks

const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

selectivity::StreamingWaveletSelectivity MakeSketch(size_t refit_interval) {
  selectivity::StreamingWaveletSelectivity::Options options;
  options.j0 = 2;
  options.j_max = 11;
  options.refit_interval = refit_interval;
  return *selectivity::StreamingWaveletSelectivity::Create(Sym8Basis(), options);
}

struct RunResult {
  double seconds = 0.0;
  std::vector<double> answers;
};

/// Ingests the stream in kIngestChunk batches and answers the query batch,
/// timing the whole insert+query workload.
template <typename Estimator>
RunResult RunWorkload(Estimator& estimator, const std::vector<double>& stream,
                      const std::vector<selectivity::RangeQuery>& queries) {
  RunResult result;
  result.answers.resize(queries.size());
  const auto start = std::chrono::steady_clock::now();
  const std::span<const double> all(stream);
  for (size_t offset = 0; offset < all.size(); offset += kIngestChunk) {
    estimator.InsertBatch(all.subspan(offset, std::min(kIngestChunk, all.size() - offset)));
  }
  estimator.EstimateBatch(queries, result.answers);
  result.seconds = bench::perf::SecondsSince(start);
  return result;
}

// Selectivity answers lie in [0, 1], so the determinism contract
// |merged − sequential| <= 1e-12 · max(1, |sequential|) — the same floored
// criterion the tier1 merge tests assert — reduces to plain absolute error
// here. Reported (and gated) as such; calling it "relative" would overstate
// the bound for small selectivities.
double MaxAbsError(const std::vector<double>& got, const std::vector<double>& want) {
  double max_abs = 0.0;
  for (size_t i = 0; i < got.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(got[i] - want[i]));
  }
  return max_abs;
}

struct Row {
  std::string mode;
  size_t shards = 0;
  int threads = 1;
  double seconds = 0.0;
  double items_per_second = 0.0;
  double speedup = 1.0;
  double max_abs_error = 0.0;
  bool bit_identical_across_pool_widths = true;
};

std::vector<size_t> ShardListFlag(int argc, char** argv) {
  const std::string spec = ArgString(argc, argv, "shards", "1,2,4,8");
  std::vector<size_t> shards;
  size_t pos = 0;
  while (pos < spec.size()) {
    const size_t comma = spec.find(',', pos);
    const std::string token = spec.substr(pos, comma == std::string::npos
                                                   ? std::string::npos
                                                   : comma - pos);
    if (!token.empty()) {
      shards.push_back(static_cast<size_t>(std::strtoull(token.c_str(), nullptr, 10)));
    }
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  WDE_CHECK(!shards.empty(), "--shards must name at least one shard count");
  return shards;
}

}  // namespace

int main(int argc, char** argv) {
  // Build-type gate first: a debug binary must never gate CI or
  // regenerate committed numbers (see bench_common.hpp).
  if (!bench::perf::CheckBuildForTiming(ArgBool(argc, argv, "check"))) {
    return 2;
  }
  const size_t n = ArgSize(argc, argv, "n", 1000000);
  const size_t query_count = ArgSize(argc, argv, "queries", 1024);
  const size_t repeats = std::max<size_t>(1, ArgSize(argc, argv, "repeats", 3));
  const std::string out_path =
      ArgString(argc, argv, "out", "BENCH_shard_scaling.json");
  const std::vector<size_t> shard_counts = ShardListFlag(argc, argv);
  // n/4 keeps periodic refits in the workload while landing the final refit
  // exactly at n, so sequential and merged answers reconstruct from the same
  // full-count sums and the 1e-12 contract is observable in the artifact.
  const size_t refit_interval = std::max<size_t>(1, n / 4);

  stats::Rng data_rng(1);
  std::vector<double> stream(n);
  for (double& x : stream) x = data_rng.UniformDouble();
  stats::Rng query_rng(5);
  const std::vector<selectivity::RangeQuery> queries =
      selectivity::CenteredRangeWorkload(query_rng, query_count, 0.0, 1.0, 0.02, 0.3);

  const double total_items = static_cast<double>(n + queries.size());
  std::vector<Row> rows;

  // Sequential baseline: the plain streaming sketch through the batch paths.
  RunResult sequential;
  {
    double best = 0.0;
    for (size_t r = 0; r < repeats; ++r) {
      selectivity::StreamingWaveletSelectivity sketch = MakeSketch(refit_interval);
      RunResult run = RunWorkload(sketch, stream, queries);
      if (r == 0 || run.seconds < best) {
        best = run.seconds;
        sequential = std::move(run);
      }
    }
    Row row;
    row.mode = "sequential";
    row.shards = 0;
    row.threads = 1;
    row.seconds = sequential.seconds;
    row.items_per_second = total_items / sequential.seconds;
    rows.push_back(row);
    std::printf("sequential: %.3fs  %.3g items/s\n", sequential.seconds,
                row.items_per_second);
  }

  const auto run_sharded = [&](size_t shards, parallel::ThreadPool* pool) {
    const selectivity::StreamingWaveletSelectivity prototype =
        MakeSketch(refit_interval);
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = shards;
    options.block_size = kShardBlock;
    options.pool = pool;
    selectivity::ShardedSelectivityEstimator sharded =
        *selectivity::ShardedSelectivityEstimator::Create(prototype, options);
    return RunWorkload(sharded, stream, queries);
  };

  for (size_t shards : shard_counts) {
    parallel::ThreadPool pool(static_cast<int>(shards));
    RunResult best;
    for (size_t r = 0; r < repeats; ++r) {
      RunResult run = run_sharded(shards, &pool);
      if (r == 0 || run.seconds < best.seconds) best = std::move(run);
    }
    // Determinism evidence: the same K on a single-thread pool must answer
    // bit-identically to the multi-thread pool above.
    parallel::ThreadPool serial_pool(0);
    const RunResult serial = run_sharded(shards, &serial_pool);
    bool bit_identical = serial.answers.size() == best.answers.size();
    for (size_t i = 0; bit_identical && i < serial.answers.size(); ++i) {
      bit_identical = serial.answers[i] == best.answers[i];
    }

    Row row;
    row.mode = "sharded";
    row.shards = shards;
    row.threads = static_cast<int>(shards);
    row.seconds = best.seconds;
    row.items_per_second = total_items / best.seconds;
    row.speedup = rows.front().seconds / best.seconds;
    row.max_abs_error = MaxAbsError(best.answers, sequential.answers);
    row.bit_identical_across_pool_widths = bit_identical;
    rows.push_back(row);
    std::printf(
        "sharded K=%zu: %.3fs  %.3g items/s  speedup %.2fx  max_abs_err %.2e  "
        "bit_identical %s\n",
        shards, row.seconds, row.items_per_second, row.speedup,
        row.max_abs_error, bit_identical ? "true" : "false");
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  WDE_CHECK(out != nullptr, "cannot open --out path for writing");
  std::fprintf(out, "{\n  \"bench\": \"perf_sharded\",\n");
  std::fprintf(out,
               "  \"workload\": {\"estimator\": \"wavelet-stcv(j0=2,j*=11)\", "
               "\"n\": %zu, \"queries\": %zu, \"ingest_chunk\": %zu, "
               "\"shard_block_size\": %zu, \"refit_interval\": %zu, "
               "\"repeats\": %zu},\n",
               n, query_count, kIngestChunk, kShardBlock, refit_interval, repeats);
  wde::bench::perf::WriteHostJson(out);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"shards\": %zu, \"threads\": %d, "
                 "\"seconds\": %.6f, \"items_per_second\": %.1f, "
                 "\"speedup_vs_sequential\": %.4f, "
                 "\"max_abs_error_vs_sequential\": %.3e, "
                 "\"bit_identical_across_pool_widths\": %s}%s\n",
                 row.mode.c_str(), row.shards, row.threads, row.seconds,
                 row.items_per_second, row.speedup, row.max_abs_error,
                 row.bit_identical_across_pool_widths ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (ArgBool(argc, argv, "check")) {
    int violations = 0;
    for (const Row& row : rows) {
      if (row.max_abs_error > 1e-12) {
        std::fprintf(stderr,
                     "CHECK FAILED: K=%zu max_abs_error_vs_sequential %.3e > 1e-12\n",
                     row.shards, row.max_abs_error);
        ++violations;
      }
      if (!row.bit_identical_across_pool_widths) {
        std::fprintf(stderr,
                     "CHECK FAILED: K=%zu answers differ across pool widths\n",
                     row.shards);
        ++violations;
      }
    }
    if (violations > 0) return 1;
    std::printf("determinism contract checks passed\n");
  }
  return 0;
}
