// Ablation bench: the exact streaming coefficient path vs the WaveLab-style
// binned/DWT fast path (the computational scheme the paper's own MATLAB
// simulations used). Measures the accuracy cost of binning + periodization
// at several grid resolutions J, against the exact estimator with the same
// fixed threshold schedule and against the full CV estimator, on Case 2.
//
// Expected shape: binned MISE is stable in J once 2^J >> n (the O(2^-J)
// binning error is dominated by estimation error) and is competitive with —
// here slightly better than — the exact path under the same schedule: the
// interval path tracks ~filter_length extra boundary translates per level
// (more variance), while periodization is a reasonable boundary rule for
// densities with mild edge mismatch like this one.
#include "bench_common.hpp"

#include "core/binned.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config =
      harness::ExperimentConfig::FromEnv(1024, 100, 513);
  bench::PrintHeader("Ablation: exact vs binned/DWT coefficient paths", config);

  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  const processes::TransformedProcess process =
      harness::MakeCase(harness::DependenceCase::kLogisticMap, density);
  const wavelet::WaveletFilter filter = bench::Sym8Basis().filter();

  const int j0 = 2;
  const int j1 = 6;
  const double k_const = 2.0;  // the ablation sweep's best fixed constant

  struct Variant {
    std::string name;
    int binned_levels;  // 0 = exact path
    bool cv;
  };
  std::vector<Variant> variants;
  for (int levels : {7, 8, 10, 12}) {
    variants.push_back({Format("binned J=%d, hard K=%.1f", levels, k_const),
                        levels, false});
  }
  variants.push_back({"exact, hard K=2.0", 0, false});
  variants.push_back({"exact, STCV", 0, true});

  const std::vector<std::vector<double>> rows = harness::CollectCurves(
      config.replicates, config.seed, config.threads, variants.size(),
      [&](stats::Rng& rng, int) {
        const std::vector<double> xs = process.Sample(config.n, rng);
        const core::ThresholdSchedule schedule =
            core::TheoreticalSchedule(k_const, j0, j1, xs.size());
        std::vector<double> ises(variants.size(), 0.0);
        for (size_t v = 0; v < variants.size(); ++v) {
          const Variant& variant = variants[v];
          if (variant.binned_levels > 0) {
            Result<core::BinnedWaveletFit> fit =
                core::BinnedWaveletFit::Fit(filter, xs, j0, variant.binned_levels);
            WDE_CHECK(fit.ok());
            Result<std::vector<double>> grid =
                fit->EstimateOnGrid(schedule, core::ThresholdKind::kHard);
            WDE_CHECK(grid.ok());
            // Evaluate the truth at the binned grid's cell centers.
            const std::vector<double> centers = fit->GridCenters();
            double acc = 0.0;
            for (size_t i = 0; i < centers.size(); ++i) {
              const double diff = (*grid)[i] - density->Pdf(centers[i]);
              acc += diff * diff;
            }
            ises[v] = acc / static_cast<double>(centers.size());
          } else {
            core::FitOptions options;
            options.j0 = j0;
            Result<core::WaveletDensityFit> fit =
                core::WaveletDensityFit::Fit(bench::Sym8Basis(), xs, options);
            WDE_CHECK(fit.ok());
            core::WaveletEstimate estimate =
                variant.cv
                    ? fit->Estimate(core::CrossValidate(fit->coefficients(),
                                                        core::ThresholdKind::kSoft)
                                        .Schedule(),
                                    core::ThresholdKind::kSoft)
                    : fit->Estimate(schedule, core::ThresholdKind::kHard);
            const std::vector<double> est =
                estimate.EvaluateOnGrid(0.0, 1.0, config.grid_points);
            const std::vector<double> truth = density->PdfOnGrid(config.grid_points);
            ises[v] = stats::IntegratedSquaredError(
                est, truth, 1.0 / static_cast<double>(config.grid_points - 1));
          }
        }
        return ises;
      });

  harness::TextTable table({"variant", "MISE"});
  for (size_t v = 0; v < variants.size(); ++v) {
    double mise = 0.0;
    for (const std::vector<double>& row : rows) mise += row[v];
    mise /= static_cast<double>(rows.size());
    table.AddRow({variants[v].name, Format("%.5f", mise)});
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: binned MISE stable in J and competitive "
               "with the exact path under the same schedule (see header "
               "comment for the boundary-handling trade-off).\n";
  return 0;
}
