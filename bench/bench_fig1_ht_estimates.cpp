// Reproduces Figure 1 of the paper: example realizations of the
// hard-threshold cross-validated estimator f̂ᴴᵀᶜᵛ on n = 2^10 observations,
// one panel per dependence case, against the true sine+uniform density.
// Output is one labelled series block per case (x, true f, estimate).
//
// Expected shape: visually faithful estimates in all three cases; the jump
// at the breakpoint is smoothed out (finite samples cannot resolve it, as
// the paper notes).
#include "bench_common.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config =
      harness::ExperimentConfig::FromEnv(1024, 1, 257);
  bench::PrintHeader("Figure 1: example HTCV estimates vs true density", config);

  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  const std::vector<double> x = bench::Grid01(config.grid_points);
  const std::vector<double> truth = density->PdfOnGrid(config.grid_points);

  for (harness::DependenceCase c : harness::kAllCases) {
    const processes::TransformedProcess process = harness::MakeCase(c, density);
    stats::Rng rng = stats::Rng(config.seed).Fork(static_cast<uint64_t>(c));
    const std::vector<double> xs = process.Sample(config.n, rng);
    const bench::CvFits fits = bench::FitBothCv(xs);
    const std::vector<double> estimate =
        fits.ht.EvaluateOnGrid(0.0, 1.0, config.grid_points);
    harness::PrintSeries(std::cout, Format("Figure 1 / %s", harness::CaseName(c)), x,
                         {{"true_f", truth}, {"htcv", estimate}});
    const double ise = stats::IntegratedSquaredError(
        estimate, truth, 1.0 / static_cast<double>(config.grid_points - 1));
    std::cout << Format("ISE(%s) = %.5f, j1_hat = %d\n\n", harness::CaseName(c),
                        ise, fits.ht_cv.j1_hat);
  }
  return 0;
}
