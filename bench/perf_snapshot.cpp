// Snapshot-subsystem bench: per registered estimator, ingest a stream, then
// measure snapshot size and save/load throughput through the registry's
// whole-snapshot paths — the portable element-wise encoding AND the fast
// arena encoding (in-memory and the mmap file restore). Produces the
// committed BENCH_snapshot.json artifact (see docs/BENCHMARKS.md) with a
// per-row round-trip verdict: answers of every restored estimator (portable,
// fast, mmapped) must be bit-identical to the saved one on a range workload.
//
// Besides throughput, each row records the restore *latency* of the mmapped
// fast path (the warm-standby metric: how long until a restored estimator
// can answer) and the peak-RSS delta of loading (portable decode
// materializes every buffer; the mmap path touches only headers until
// queries fault pages in). RSS deltas come from /proc/self/status VmHWM
// around a clear_refs peak reset — Linux-only, reported as 0 elsewhere.
//
// No google-benchmark dependency: plain steady_clock timing, best of
// --repeats runs, so the binary builds everywhere and CI can always produce
// the artifact.
//
// Usage: perf_snapshot [--n=200000] [--queries=256] [--repeats=5]
//                      [--out=BENCH_snapshot.json] [--check]
//
// --check: exit 1 if any estimator fails to round-trip bit-identically on
// any path, or if any fast restore disagrees with the portable restore —
// the fidelity contract at bench scale, not just test sizes.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#if defined(__GLIBC__)
#include <malloc.h>
#endif
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "selectivity/estimator_registry.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/kde_selectivity.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"
#include "stats/rng.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"
#include "wavelet/scaled_function.hpp"

namespace {

using namespace wde;

const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

/// One ingest-ready instance per registered estimator, at production-ish
/// configurations (the sketch at the perf_sharded level budget).
std::vector<std::unique_ptr<selectivity::SelectivityEstimator>> MakeEstimators() {
  std::vector<std::unique_ptr<selectivity::SelectivityEstimator>> estimators;
  estimators.push_back(
      std::make_unique<selectivity::EquiWidthHistogram>(0.0, 1.0, 64));
  estimators.push_back(
      std::make_unique<selectivity::EquiDepthHistogram>(0.0, 1.0, 32));
  estimators.push_back(
      std::make_unique<selectivity::ReservoirSampleSelectivity>(4096, 17));
  estimators.push_back(std::make_unique<selectivity::KdeSelectivity>(
      selectivity::KdeSelectivity::Options{}));
  {
    selectivity::WaveletSynopsisSelectivity::Options options;
    options.grid_log2 = 10;
    options.budget = 64;
    estimators.push_back(std::make_unique<selectivity::WaveletSynopsisSelectivity>(
        *selectivity::WaveletSynopsisSelectivity::Create(options)));
  }
  {
    selectivity::StreamingWaveletSelectivity::Options options;
    options.j0 = 2;
    options.j_max = 11;
    options.refit_interval = 65536;
    estimators.push_back(std::make_unique<selectivity::StreamingWaveletSelectivity>(
        *selectivity::StreamingWaveletSelectivity::Create(Sym8Basis(), options)));
  }
  {
    selectivity::EquiWidthHistogram prototype(0.0, 1.0, 64);
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = 4;
    estimators.push_back(std::make_unique<selectivity::ShardedSelectivityEstimator>(
        *selectivity::ShardedSelectivityEstimator::Create(prototype, options)));
  }
  return estimators;
}

/// Reads one "Key:   <n> kB" line of /proc/self/status; 0 off-Linux.
size_t ProcStatusBytes(const char* key) {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t bytes = 0;
  const size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      bytes = std::strtoull(line + key_len + 1, nullptr, 10) * 1024;
      break;
    }
  }
  std::fclose(f);
  return bytes;
}

/// Resets the process peak-RSS high-water mark to the current RSS (Linux
/// clear_refs); no-op elsewhere. Lets one process measure per-phase peaks.
void ResetPeakRss() {
  std::FILE* f = std::fopen("/proc/self/clear_refs", "w");
  if (f == nullptr) return;
  std::fputs("5", f);
  std::fclose(f);
}

/// Peak-RSS delta of running fn() once: how much extra memory the load path
/// needs beyond what is already resident. Trims the allocator first so pages
/// freed by earlier phases do not mask the allocation under test.
template <typename Fn>
size_t PeakRssDeltaOf(Fn&& fn) {
#if defined(__GLIBC__)
  malloc_trim(0);
#endif
  ResetPeakRss();
  const size_t before = ProcStatusBytes("VmRSS");
  fn();
  const size_t peak = ProcStatusBytes("VmHWM");
  return peak > before ? peak - before : 0;
}

struct PathStats {
  size_t bytes = 0;
  double save_seconds = 0.0;
  double load_seconds = 0.0;
};

struct Row {
  std::string tag;
  std::string name;
  PathStats portable;             // in-memory, element-wise encoding
  PathStats fast;                 // in-memory, arena (ARNA) encoding
  double mmap_load_seconds = 0.0; // restore latency from the mmapped file
  size_t portable_peak_rss_bytes = 0;
  size_t mmap_peak_rss_bytes = 0;
  bool roundtrip_bit_identical = false;  // portable restore == saved
  bool fast_equals_portable = false;     // fast + mmap restores == saved
};

double MbPerS(size_t bytes, double seconds) {
  return static_cast<double>(bytes) / 1e6 / seconds;
}

}  // namespace

int main(int argc, char** argv) {
  // Build-type gate first: a debug binary must never gate CI or
  // regenerate committed numbers (see bench_common.hpp).
  if (!bench::perf::CheckBuildForTiming(ArgBool(argc, argv, "check"))) {
    return 2;
  }
  const size_t n = ArgSize(argc, argv, "n", 200000);
  const size_t query_count = ArgSize(argc, argv, "queries", 256);
  const size_t repeats = std::max<size_t>(1, ArgSize(argc, argv, "repeats", 5));
  const std::string out_path =
      ArgString(argc, argv, "out", "BENCH_snapshot.json");
  const std::string tmp_path = out_path + ".fastsnap.tmp";

  stats::Rng data_rng(1);
  std::vector<double> stream(n);
  for (double& x : stream) x = data_rng.UniformDouble();
  stats::Rng query_rng(5);
  const std::vector<selectivity::RangeQuery> queries =
      selectivity::CenteredRangeWorkload(query_rng, query_count, 0.0, 1.0, 0.02, 0.3);

  std::vector<Row> rows;
  for (auto& estimator : MakeEstimators()) {
    estimator->InsertBatch(stream);
    std::vector<double> before(queries.size());
    estimator->EstimateBatch(queries, before);  // realistic: fitted cache exists

    Row row;
    row.tag = estimator->snapshot_type_tag();
    row.name = estimator->name();

    // ---- portable encoding, in-memory ----
    std::vector<uint8_t> portable_bytes;
    row.portable.save_seconds = bench::perf::BestOfSeconds(repeats, [&] {
      io::VectorSink sink;
      WDE_CHECK_OK(selectivity::SaveEstimatorSnapshot(*estimator, sink));
      portable_bytes = sink.TakeBytes();
    });
    row.portable.bytes = portable_bytes.size();

    std::unique_ptr<selectivity::SelectivityEstimator> restored;
    row.portable.load_seconds = bench::perf::BestOfSeconds(repeats, [&] {
      io::SpanSource source(portable_bytes);
      Result<std::unique_ptr<selectivity::SelectivityEstimator>> loaded =
          selectivity::LoadEstimatorSnapshot(source);
      WDE_CHECK(loaded.ok(), loaded.status().ToString().c_str());
      restored = std::move(loaded).value();
    });
    row.portable_peak_rss_bytes = PeakRssDeltaOf([&] {
      io::SpanSource source(portable_bytes);
      Result<std::unique_ptr<selectivity::SelectivityEstimator>> loaded =
          selectivity::LoadEstimatorSnapshot(source);
      WDE_CHECK(loaded.ok());
      std::vector<double> probe(queries.size());
      (*loaded)->EstimateBatch(queries, probe);
    });

    std::vector<double> after(queries.size());
    restored->EstimateBatch(queries, after);
    row.roundtrip_bit_identical =
        restored->count() == estimator->count() && after == before;

    // ---- fast (arena) encoding, in-memory ----
    std::vector<uint8_t> fast_bytes;
    row.fast.save_seconds = bench::perf::BestOfSeconds(repeats, [&] {
      io::VectorSink sink;
      WDE_CHECK_OK(selectivity::SaveEstimatorSnapshotFast(*estimator, sink));
      fast_bytes = sink.TakeBytes();
    });
    row.fast.bytes = fast_bytes.size();

    std::unique_ptr<selectivity::SelectivityEstimator> fast_restored;
    row.fast.load_seconds = bench::perf::BestOfSeconds(repeats, [&] {
      io::SpanSource source(fast_bytes);
      Result<std::unique_ptr<selectivity::SelectivityEstimator>> loaded =
          selectivity::LoadEstimatorSnapshot(source);
      WDE_CHECK(loaded.ok(), loaded.status().ToString().c_str());
      fast_restored = std::move(loaded).value();
    });
    std::vector<double> fast_after(queries.size());
    fast_restored->EstimateBatch(queries, fast_after);

    // ---- fast encoding, mmapped file restore (the warm-standby path) ----
    WDE_CHECK_OK(selectivity::SaveEstimatorSnapshotFastFile(*estimator, tmp_path));
    std::unique_ptr<selectivity::SelectivityEstimator> mapped_restored;
    row.mmap_load_seconds = bench::perf::BestOfSeconds(repeats, [&] {
      Result<std::unique_ptr<selectivity::SelectivityEstimator>> loaded =
          selectivity::LoadEstimatorSnapshotFileMapped(tmp_path);
      WDE_CHECK(loaded.ok(), loaded.status().ToString().c_str());
      mapped_restored = std::move(loaded).value();
    });
    std::vector<double> mapped_after(queries.size());
    mapped_restored->EstimateBatch(queries, mapped_after);
    mapped_restored.reset();
    row.mmap_peak_rss_bytes = PeakRssDeltaOf([&] {
      Result<std::unique_ptr<selectivity::SelectivityEstimator>> loaded =
          selectivity::LoadEstimatorSnapshotFileMapped(tmp_path);
      WDE_CHECK(loaded.ok());
      std::vector<double> probe(queries.size());
      (*loaded)->EstimateBatch(queries, probe);
    });
    std::remove(tmp_path.c_str());

    row.fast_equals_portable = fast_after == before && mapped_after == before;
    rows.push_back(row);
    std::printf(
        "%-28s portable %9zu B  save %8.1f MB/s  load %8.1f MB/s | "
        "fast %9zu B  load %8.1f MB/s  mmap-restore %8.1f us  "
        "rss %5.1f -> %5.1f MB | %s\n",
        row.name.c_str(), row.portable.bytes,
        MbPerS(row.portable.bytes, row.portable.save_seconds),
        MbPerS(row.portable.bytes, row.portable.load_seconds), row.fast.bytes,
        MbPerS(row.fast.bytes, row.fast.load_seconds),
        row.mmap_load_seconds * 1e6,
        static_cast<double>(row.portable_peak_rss_bytes) / 1e6,
        static_cast<double>(row.mmap_peak_rss_bytes) / 1e6,
        row.roundtrip_bit_identical && row.fast_equals_portable
            ? "bit-identical"
            : "MISMATCH");
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  WDE_CHECK(out != nullptr, "cannot open --out path for writing");
  std::fprintf(out, "{\n  \"bench\": \"perf_snapshot\",\n");
  std::fprintf(out,
               "  \"workload\": {\"n\": %zu, \"queries\": %zu, \"repeats\": %zu},\n",
               n, query_count, repeats);
  wde::bench::perf::WriteHostJson(out);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out, "    {\"tag\": \"%s\", \"estimator\": \"%s\",\n",
                 row.tag.c_str(), row.name.c_str());
    std::fprintf(out,
                 "     \"portable\": {\"bytes\": %zu, \"save_seconds\": %.6e, "
                 "\"save_mb_per_s\": %.1f, \"load_seconds\": %.6e, "
                 "\"load_mb_per_s\": %.1f, \"load_peak_rss_bytes\": %zu},\n",
                 row.portable.bytes, row.portable.save_seconds,
                 MbPerS(row.portable.bytes, row.portable.save_seconds),
                 row.portable.load_seconds,
                 MbPerS(row.portable.bytes, row.portable.load_seconds),
                 row.portable_peak_rss_bytes);
    std::fprintf(out,
                 "     \"fast\": {\"bytes\": %zu, \"save_seconds\": %.6e, "
                 "\"save_mb_per_s\": %.1f, \"load_seconds\": %.6e, "
                 "\"load_mb_per_s\": %.1f},\n",
                 row.fast.bytes, row.fast.save_seconds,
                 MbPerS(row.fast.bytes, row.fast.save_seconds),
                 row.fast.load_seconds,
                 MbPerS(row.fast.bytes, row.fast.load_seconds));
    std::fprintf(out,
                 "     \"mmap\": {\"load_seconds\": %.6e, "
                 "\"load_mb_per_s\": %.1f, \"load_peak_rss_bytes\": %zu},\n",
                 row.mmap_load_seconds,
                 MbPerS(row.fast.bytes, row.mmap_load_seconds),
                 row.mmap_peak_rss_bytes);
    std::fprintf(out,
                 "     \"load_speedup_fast_vs_portable\": %.2f, "
                 "\"roundtrip_bit_identical\": %s, "
                 "\"fast_equals_portable\": %s}%s\n",
                 MbPerS(row.fast.bytes, row.fast.load_seconds) /
                     MbPerS(row.portable.bytes, row.portable.load_seconds),
                 row.roundtrip_bit_identical ? "true" : "false",
                 row.fast_equals_portable ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (ArgBool(argc, argv, "check")) {
    int violations = 0;
    for (const Row& row : rows) {
      if (!row.roundtrip_bit_identical) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s did not round-trip bit-identically\n",
                     row.name.c_str());
        ++violations;
      }
      if (!row.fast_equals_portable) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s fast/mmap restore disagrees with the "
                     "portable restore\n",
                     row.name.c_str());
        ++violations;
      }
    }
    if (violations > 0) return 1;
    std::printf("round-trip fidelity checks passed (portable, fast, mmap)\n");
  }
  return 0;
}
