// Snapshot-subsystem bench: per registered estimator, ingest a stream, then
// measure snapshot size and save/load throughput through the registry's
// whole-snapshot path (in-memory sinks/sources — the wire format, not the
// disk, is under test). Produces the committed BENCH_snapshot.json artifact
// (see docs/BENCHMARKS.md) with a per-row round-trip verdict: answers of the
// restored estimator must be bit-identical to the saved one on a range
// workload.
//
// No google-benchmark dependency: plain steady_clock timing, best of
// --repeats runs, so the binary builds everywhere and CI can always produce
// the artifact.
//
// Usage: perf_snapshot [--n=200000] [--queries=256] [--repeats=5]
//                      [--out=BENCH_snapshot.json] [--check]
//
// --check: exit 1 if any estimator fails to round-trip bit-identically —
// the fidelity contract at bench scale, not just test sizes.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "selectivity/estimator_registry.hpp"
#include "selectivity/histogram.hpp"
#include "selectivity/kde_selectivity.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/sample_selectivity.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "selectivity/wavelet_selectivity.hpp"
#include "selectivity/wavelet_synopsis.hpp"
#include "stats/rng.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"
#include "wavelet/scaled_function.hpp"

namespace {

using namespace wde;

const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletBasis> b =
        wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

/// One ingest-ready instance per registered estimator, at production-ish
/// configurations (the sketch at the perf_sharded level budget).
std::vector<std::unique_ptr<selectivity::SelectivityEstimator>> MakeEstimators() {
  std::vector<std::unique_ptr<selectivity::SelectivityEstimator>> estimators;
  estimators.push_back(
      std::make_unique<selectivity::EquiWidthHistogram>(0.0, 1.0, 64));
  estimators.push_back(
      std::make_unique<selectivity::EquiDepthHistogram>(0.0, 1.0, 32));
  estimators.push_back(
      std::make_unique<selectivity::ReservoirSampleSelectivity>(4096, 17));
  estimators.push_back(std::make_unique<selectivity::KdeSelectivity>(
      selectivity::KdeSelectivity::Options{}));
  {
    selectivity::WaveletSynopsisSelectivity::Options options;
    options.grid_log2 = 10;
    options.budget = 64;
    estimators.push_back(std::make_unique<selectivity::WaveletSynopsisSelectivity>(
        *selectivity::WaveletSynopsisSelectivity::Create(options)));
  }
  {
    selectivity::StreamingWaveletSelectivity::Options options;
    options.j0 = 2;
    options.j_max = 11;
    options.refit_interval = 65536;
    estimators.push_back(std::make_unique<selectivity::StreamingWaveletSelectivity>(
        *selectivity::StreamingWaveletSelectivity::Create(Sym8Basis(), options)));
  }
  {
    selectivity::EquiWidthHistogram prototype(0.0, 1.0, 64);
    selectivity::ShardedSelectivityEstimator::Options options;
    options.shards = 4;
    estimators.push_back(std::make_unique<selectivity::ShardedSelectivityEstimator>(
        *selectivity::ShardedSelectivityEstimator::Create(prototype, options)));
  }
  return estimators;
}

struct Row {
  std::string tag;
  std::string name;
  size_t snapshot_bytes = 0;
  double save_seconds = 0.0;
  double load_seconds = 0.0;
  bool roundtrip_bit_identical = false;
};

}  // namespace

int main(int argc, char** argv) {
  const size_t n = ArgSize(argc, argv, "n", 200000);
  const size_t query_count = ArgSize(argc, argv, "queries", 256);
  const size_t repeats = std::max<size_t>(1, ArgSize(argc, argv, "repeats", 5));
  const std::string out_path =
      ArgString(argc, argv, "out", "BENCH_snapshot.json");

  stats::Rng data_rng(1);
  std::vector<double> stream(n);
  for (double& x : stream) x = data_rng.UniformDouble();
  stats::Rng query_rng(5);
  const std::vector<selectivity::RangeQuery> queries =
      selectivity::CenteredRangeWorkload(query_rng, query_count, 0.0, 1.0, 0.02, 0.3);

  std::vector<Row> rows;
  for (auto& estimator : MakeEstimators()) {
    estimator->InsertBatch(stream);
    std::vector<double> before(queries.size());
    estimator->EstimateBatch(queries, before);  // realistic: fitted cache exists

    Row row;
    row.tag = estimator->snapshot_type_tag();
    row.name = estimator->name();

    std::vector<uint8_t> bytes;
    for (size_t r = 0; r < repeats; ++r) {
      io::VectorSink sink;
      const auto start = std::chrono::steady_clock::now();
      WDE_CHECK_OK(selectivity::SaveEstimatorSnapshot(*estimator, sink));
      const auto end = std::chrono::steady_clock::now();
      const double seconds = bench::perf::SecondsBetween(start, end);
      if (r == 0 || seconds < row.save_seconds) row.save_seconds = seconds;
      bytes = sink.TakeBytes();
    }
    row.snapshot_bytes = bytes.size();

    std::unique_ptr<selectivity::SelectivityEstimator> restored;
    for (size_t r = 0; r < repeats; ++r) {
      io::SpanSource source(bytes);
      const auto start = std::chrono::steady_clock::now();
      Result<std::unique_ptr<selectivity::SelectivityEstimator>> loaded =
          selectivity::LoadEstimatorSnapshot(source);
      const auto end = std::chrono::steady_clock::now();
      WDE_CHECK(loaded.ok(), loaded.status().ToString().c_str());
      const double seconds = bench::perf::SecondsBetween(start, end);
      if (r == 0 || seconds < row.load_seconds) row.load_seconds = seconds;
      restored = std::move(loaded).value();
    }

    std::vector<double> after(queries.size());
    restored->EstimateBatch(queries, after);
    row.roundtrip_bit_identical =
        restored->count() == estimator->count() && after == before;
    rows.push_back(row);
    std::printf(
        "%-28s %9zu bytes  save %8.3f MB/s  load %8.3f MB/s  roundtrip %s\n",
        row.name.c_str(), row.snapshot_bytes,
        static_cast<double>(row.snapshot_bytes) / 1e6 / row.save_seconds,
        static_cast<double>(row.snapshot_bytes) / 1e6 / row.load_seconds,
        row.roundtrip_bit_identical ? "bit-identical" : "MISMATCH");
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  WDE_CHECK(out != nullptr, "cannot open --out path for writing");
  std::fprintf(out, "{\n  \"bench\": \"perf_snapshot\",\n");
  std::fprintf(out,
               "  \"workload\": {\"n\": %zu, \"queries\": %zu, \"repeats\": %zu},\n",
               n, query_count, repeats);
  wde::bench::perf::WriteHostJson(out);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"tag\": \"%s\", \"estimator\": \"%s\", "
                 "\"snapshot_bytes\": %zu, \"save_seconds\": %.6e, "
                 "\"save_mb_per_s\": %.1f, \"load_seconds\": %.6e, "
                 "\"load_mb_per_s\": %.1f, \"roundtrip_bit_identical\": %s}%s\n",
                 row.tag.c_str(), row.name.c_str(), row.snapshot_bytes,
                 row.save_seconds,
                 static_cast<double>(row.snapshot_bytes) / 1e6 / row.save_seconds,
                 row.load_seconds,
                 static_cast<double>(row.snapshot_bytes) / 1e6 / row.load_seconds,
                 row.roundtrip_bit_identical ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (ArgBool(argc, argv, "check")) {
    int violations = 0;
    for (const Row& row : rows) {
      if (!row.roundtrip_bit_identical) {
        std::fprintf(stderr, "CHECK FAILED: %s did not round-trip bit-identically\n",
                     row.name.c_str());
        ++violations;
      }
    }
    if (violations > 0) return 1;
    std::printf("round-trip fidelity checks passed\n");
  }
  return 0;
}
