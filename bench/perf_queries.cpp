// Query-taxonomy bench: every registered estimator (built declaratively from
// one EstimatorSpec per tag) ingests a uniform stream, then answers
//   (a) a range-only batch        (the legacy workload shape),
//   (b) a mixed-kind batch        (ranges, points, one-sided, CDF, quantiles
//                                  through the one Answer() surface),
//   (c) the mixed batch as a per-query scalar loop (the batch path's
//                                  amortization baseline).
// Produces the committed BENCH_query_taxonomy.json artifact (see
// docs/BENCHMARKS.md): per-estimator timings, queries/second and the batch
// speedup, plus the correctness evidence — mixed batch ≡ scalar loop
// bitwise, Answer(kRange) ≡ legacy EstimateRange bitwise, and the
// CDF/quantile round-trip error max_p |F(F^{-1}(p)) - p|.
//
// No google-benchmark dependency: plain steady_clock timing, best of
// --repeats runs, so the binary builds everywhere and CI can always produce
// the artifact.
//
// Usage: perf_queries [--n=200000] [--queries=1024] [--repeats=3]
//                     [--out=BENCH_query_taxonomy.json] [--check]
//
// --check turns the three correctness fields into a gate: exit 1 if any
// estimator's mixed batch is not bit-identical to its scalar loop, if
// Answer(kRange) differs from EstimateRange, or if the round-trip error
// exceeds 0.08 (estimator granularity: reservoir jumps, bucket fractions,
// signed-estimate wiggle). CI runs with --check so the taxonomy contract is
// enforced at production scale, not just at test sizes.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "selectivity/estimator_registry.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/query_workload.hpp"
#include "stats/rng.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace {

using namespace wde;

constexpr size_t kIngestChunk = 65536;

struct Row {
  std::string tag;
  std::string name;
  double seconds_range_batch = 0.0;
  double seconds_mixed_batch = 0.0;
  double seconds_mixed_scalar = 0.0;
  double mixed_batch_qps = 0.0;
  double batch_speedup_vs_scalar = 0.0;
  bool mixed_batch_bit_identical_to_scalar = true;
  bool range_answer_bit_identical_to_legacy = true;
  double cdf_quantile_roundtrip_max_error = 0.0;
};

/// Best-of-repeats timing of one Answer() batch.
double TimeAnswer(const selectivity::SelectivityEstimator& est,
                  std::span<const selectivity::Query> queries,
                  std::span<double> out, size_t repeats) {
  double best = 0.0;
  for (size_t r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    est.Answer(queries, out);
    const double elapsed = bench::perf::SecondsSince(start);
    if (r == 0 || elapsed < best) best = elapsed;
  }
  return best;
}

}  // namespace

int main(int argc, char** argv) {
  // Build-type gate first: a debug binary must never gate CI or
  // regenerate committed numbers (see bench_common.hpp).
  if (!bench::perf::CheckBuildForTiming(ArgBool(argc, argv, "check"))) {
    return 2;
  }
  const size_t n = ArgSize(argc, argv, "n", 200000);
  const size_t query_count = ArgSize(argc, argv, "queries", 1024);
  const size_t repeats = std::max<size_t>(1, ArgSize(argc, argv, "repeats", 3));
  const std::string out_path =
      ArgString(argc, argv, "out", "BENCH_query_taxonomy.json");

  stats::Rng data_rng(1);
  std::vector<double> stream(n);
  for (double& x : stream) x = data_rng.UniformDouble();

  stats::Rng query_rng(5);
  const std::vector<selectivity::RangeQuery> range_workload =
      selectivity::CenteredRangeWorkload(query_rng, query_count, 0.0, 1.0, 0.02,
                                         0.3);
  std::vector<selectivity::Query> ranges_as_queries;
  ranges_as_queries.reserve(range_workload.size());
  for (const selectivity::RangeQuery& q : range_workload) {
    ranges_as_queries.push_back(selectivity::Query::Range(q.lo, q.hi));
  }
  const std::vector<selectivity::Query> mixed_workload =
      selectivity::MixedQueryWorkload(query_rng, query_count, 0.0, 1.0);

  std::vector<Row> rows;
  for (const std::string& tag : selectivity::EstimatorRegistry::Global().Tags()) {
    // One description per estimator: the spec is the whole configuration
    // story (the sharded row wraps the flagship wavelet sketch).
    selectivity::EstimatorSpec spec;
    spec.tag = tag;
    spec.dims = selectivity::EstimatorRegistry::Global().NativeDims(tag);
    if (spec.dims == 0) spec.dims = 1;
    spec.buckets = 64;
    spec.grid_log2 = 10;
    spec.budget = 64;
    spec.refit_interval = std::max<size_t>(1, n / 4);
    spec.capacity = 4096;
    spec.sharded_inner_tag = "wavelet-cv";
    spec.shards = 4;
    Result<std::unique_ptr<selectivity::SelectivityEstimator>> made =
        selectivity::MakeEstimator(spec);
    WDE_CHECK(made.ok(), "every registered tag must build from a spec");
    selectivity::SelectivityEstimator& est = **made;

    const std::span<const double> all(stream);
    for (size_t offset = 0; offset < all.size(); offset += kIngestChunk) {
      est.InsertBatch(
          all.subspan(offset, std::min(kIngestChunk, all.size() - offset)));
    }

    Row row;
    row.tag = tag;
    row.name = est.name();

    std::vector<double> range_answers(range_workload.size());
    row.seconds_range_batch =
        TimeAnswer(est, ranges_as_queries, range_answers, repeats);

    std::vector<double> mixed_answers(mixed_workload.size());
    row.seconds_mixed_batch =
        TimeAnswer(est, mixed_workload, mixed_answers, repeats);
    row.mixed_batch_qps =
        static_cast<double>(query_count) / row.seconds_mixed_batch;

    // Scalar loop over the same mixed batch, and the bitwise contract.
    std::vector<double> scalar_answers(mixed_workload.size());
    {
      double best = 0.0;
      for (size_t r = 0; r < repeats; ++r) {
        const auto start = std::chrono::steady_clock::now();
        for (size_t i = 0; i < mixed_workload.size(); ++i) {
          scalar_answers[i] = est.Answer(mixed_workload[i]);
        }
        const double elapsed = bench::perf::SecondsSince(start);
        if (r == 0 || elapsed < best) best = elapsed;
      }
      row.seconds_mixed_scalar = best;
    }
    row.batch_speedup_vs_scalar =
        row.seconds_mixed_scalar / row.seconds_mixed_batch;
    for (size_t i = 0; i < mixed_workload.size(); ++i) {
      if (mixed_answers[i] != scalar_answers[i]) {
        row.mixed_batch_bit_identical_to_scalar = false;
        break;
      }
    }

    // Answer(kRange) ≡ legacy EstimateRange, bitwise.
    for (size_t i = 0; i < range_workload.size(); ++i) {
      if (range_answers[i] !=
          est.EstimateRange(range_workload[i].lo, range_workload[i].hi)) {
        row.range_answer_bit_identical_to_legacy = false;
        break;
      }
    }

    // CDF/quantile round trip on a fixed level grid.
    for (double p = 0.05; p < 1.0; p += 0.05) {
      const double quantile = est.Answer(selectivity::Query::Quantile(p));
      const double round_trip = est.Answer(selectivity::Query::Cdf(quantile));
      row.cdf_quantile_roundtrip_max_error = std::max(
          row.cdf_quantile_roundtrip_max_error, std::fabs(round_trip - p));
    }

    std::printf(
        "%-14s range %.4fs  mixed %.4fs (%.3g q/s)  scalar %.4fs  "
        "speedup %.2fx  bitwise %s/%s  roundtrip %.3g\n",
        tag.c_str(), row.seconds_range_batch, row.seconds_mixed_batch,
        row.mixed_batch_qps, row.seconds_mixed_scalar,
        row.batch_speedup_vs_scalar,
        row.mixed_batch_bit_identical_to_scalar ? "yes" : "NO",
        row.range_answer_bit_identical_to_legacy ? "yes" : "NO",
        row.cdf_quantile_roundtrip_max_error);
    rows.push_back(row);
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  WDE_CHECK(out != nullptr, "cannot open --out path for writing");
  std::fprintf(out, "{\n  \"bench\": \"perf_queries\",\n");
  std::fprintf(out,
               "  \"workload\": {\"n\": %zu, \"queries\": %zu, "
               "\"ingest_chunk\": %zu, \"repeats\": %zu, "
               "\"mix\": \"40%% range / 12%% each point,less,greater,cdf,"
               "quantile\"},\n",
               n, query_count, kIngestChunk, repeats);
  wde::bench::perf::WriteHostJson(out);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(
        out,
        "    {\"tag\": \"%s\", \"estimator\": \"%s\", "
        "\"seconds_range_batch\": %.6f, \"seconds_mixed_batch\": %.6f, "
        "\"seconds_mixed_scalar\": %.6f, \"mixed_batch_qps\": %.1f, "
        "\"batch_speedup_vs_scalar\": %.4f, "
        "\"mixed_batch_bit_identical_to_scalar\": %s, "
        "\"range_answer_bit_identical_to_legacy\": %s, "
        "\"cdf_quantile_roundtrip_max_error\": %.3e}%s\n",
        row.tag.c_str(), row.name.c_str(), row.seconds_range_batch,
        row.seconds_mixed_batch, row.seconds_mixed_scalar, row.mixed_batch_qps,
        row.batch_speedup_vs_scalar,
        row.mixed_batch_bit_identical_to_scalar ? "true" : "false",
        row.range_answer_bit_identical_to_legacy ? "true" : "false",
        row.cdf_quantile_roundtrip_max_error,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (ArgBool(argc, argv, "check")) {
    int violations = 0;
    for (const Row& row : rows) {
      if (!row.mixed_batch_bit_identical_to_scalar) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s mixed batch differs from scalar loop\n",
                     row.tag.c_str());
        ++violations;
      }
      if (!row.range_answer_bit_identical_to_legacy) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s Answer(kRange) differs from "
                     "EstimateRange\n",
                     row.tag.c_str());
        ++violations;
      }
      if (row.cdf_quantile_roundtrip_max_error > 0.08) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s cdf/quantile roundtrip error %.3g > "
                     "0.08\n",
                     row.tag.c_str(), row.cdf_quantile_roundtrip_max_error);
        ++violations;
      }
    }
    if (violations > 0) return 1;
    std::printf("query taxonomy contract checks passed\n");
  }
  return 0;
}
