// google-benchmark microbenches for the wavelet substrate: filter
// derivation, cascade table construction, point evaluation (table vs
// Daubechies-Lagarias), batch vs scalar table walks, and DWT round trips.
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <algorithm>

#include "stats/rng.hpp"
#include "wavelet/cascade.hpp"
#include "wavelet/daubechies_lagarias.hpp"
#include "wavelet/dwt.hpp"
#include "wavelet/filter.hpp"
#include "wavelet/scaled_function.hpp"

namespace {

using namespace wde;

void BM_FilterDaubechies(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wavelet::WaveletFilter::Daubechies(order));
  }
}
BENCHMARK(BM_FilterDaubechies)->Arg(4)->Arg(8)->Arg(10);

void BM_FilterSymmlet(benchmark::State& state) {
  const int order = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(wavelet::WaveletFilter::Symmlet(order));
  }
}
BENCHMARK(BM_FilterSymmlet)->Arg(4)->Arg(8);

void BM_CascadeTables(benchmark::State& state) {
  const int levels = static_cast<int>(state.range(0));
  const wavelet::WaveletFilter filter = *wavelet::WaveletFilter::Symmlet(8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wavelet::ComputeCascadeTables(filter, levels));
  }
}
BENCHMARK(BM_CascadeTables)->Arg(8)->Arg(10)->Arg(12);

void BM_TablePointEvaluation(benchmark::State& state) {
  const wavelet::WaveletBasis basis =
      *wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
  stats::Rng rng(1);
  double x = 0.0;
  for (auto _ : state) {
    x += 0.37;
    if (x > 14.0) x -= 14.0;
    benchmark::DoNotOptimize(basis.Psi(x));
  }
}
BENCHMARK(BM_TablePointEvaluation);

void BM_TableEvaluateManyBatch(benchmark::State& state) {
  // Batch counterpart of BM_TablePointEvaluation; sorted inputs walk the
  // dyadic table cache-coherently.
  const wavelet::WaveletBasis basis =
      *wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
  const size_t n = 4096;
  std::vector<double> xs(n), out(n);
  double x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x += 0.37;
    if (x > 14.0) x -= 14.0;
    xs[i] = x;
  }
  std::sort(xs.begin(), xs.end());
  for (auto _ : state) {
    basis.EvaluateMany(wavelet::MotherFunction::kPsi, xs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_TableEvaluateManyBatch);

void BM_AntiderivativeManyBatch(benchmark::State& state) {
  const wavelet::WaveletBasis basis =
      *wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
  const size_t n = 4096;
  std::vector<double> xs(n), out(n);
  double x = -1.0;
  for (size_t i = 0; i < n; ++i) {
    x += 0.37;
    if (x > 16.0) x -= 17.0;
    xs[i] = x;
  }
  for (auto _ : state) {
    basis.AntiderivativeMany(wavelet::MotherFunction::kPhi, xs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_AntiderivativeManyBatch);

void BM_DaubechiesLagariasPointEvaluation(benchmark::State& state) {
  const wavelet::DaubechiesLagariasEvaluator dl(*wavelet::WaveletFilter::Symmlet(8));
  double x = 0.0;
  for (auto _ : state) {
    x += 0.37;
    if (x > 14.0) x -= 14.0;
    benchmark::DoNotOptimize(dl.Psi(x));
  }
}
BENCHMARK(BM_DaubechiesLagariasPointEvaluation);

void BM_ScaledBasisEvaluation(benchmark::State& state) {
  const wavelet::WaveletBasis basis =
      *wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
  const int j = static_cast<int>(state.range(0));
  double x = 0.0;
  for (auto _ : state) {
    x += 0.000917;
    if (x > 1.0) x -= 1.0;
    const wavelet::TranslationWindow window = basis.PointWindow(j, x);
    double acc = 0.0;
    for (int k = window.lo; k <= window.hi; ++k) acc += basis.PsiJk(j, k, x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ScaledBasisEvaluation)->Arg(3)->Arg(8);

void BM_ScaledBasisEvaluationHoisted(benchmark::State& state) {
  // Same per-point work as BM_ScaledBasisEvaluation through the hoisted
  // level evaluator — the 2^{j/2}/table setup paid once, not per call. This
  // is the inner loop of the batched coefficient accumulator.
  const wavelet::WaveletBasis basis =
      *wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
  const int j = static_cast<int>(state.range(0));
  const wavelet::ScaledLevelEvaluator eval = basis.PsiLevel(j);
  double x = 0.0;
  for (auto _ : state) {
    x += 0.000917;
    if (x > 1.0) x -= 1.0;
    const wavelet::TranslationWindow window = eval.PointWindow(x);
    double acc = 0.0;
    for (int k = window.lo; k <= window.hi; ++k) acc += eval.Value(k, x);
    benchmark::DoNotOptimize(acc);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ScaledBasisEvaluationHoisted)->Arg(3)->Arg(8);

void BM_DwtRoundTrip(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const wavelet::WaveletFilter filter = *wavelet::WaveletFilter::Symmlet(8);
  stats::Rng rng(2);
  std::vector<double> signal(n);
  for (double& s : signal) s = rng.Gaussian();
  for (auto _ : state) {
    Result<wavelet::DwtCoefficients> coeffs = wavelet::ForwardDwt(filter, signal, 4);
    benchmark::DoNotOptimize(wavelet::InverseDwt(filter, *coeffs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_DwtRoundTrip)->Arg(1024)->Arg(16384);

}  // namespace

// Not BENCHMARK_MAIN(): the build-type gate must run before benchmark
// registration parses --benchmark_out, so a debug binary can never write a
// JSON baseline (see bench_common.hpp).
int main(int argc, char** argv) {
  if (!wde::bench::perf::CheckBuildForBaseline(argc, argv)) return 2;
  benchmark::AddCustomContext("build_type", wde::bench::perf::BuildType());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
