// Evaluation-kernel bench: the tree-pruned KDE paths and the SIMD batch
// kernels vs their scalar baselines, on one uniform sample. Produces the
// committed BENCH_kernels.json artifact (see docs/BENCHMARKS.md): per-row
// baseline/optimized seconds, speedup, and the equivalence evidence — either
// bit-identity (rows whose optimized path carries the repo's bitwise
// contract) or a max-abs-error against the row's documented tolerance.
//
// Rows and their contracts:
//   kde_evaluate_many    EvaluateMany(tol=0) vs scalar Evaluate loop —
//                        bitwise, speedup-guarded.
//   kde_range_batch      CdfAt(b)−CdfAt(a) vs IntegrateRange — same windowed
//                        terms reassociated, gated at 1e-9 abs; guarded.
//   kde_tree_density     Epanechnikov Evaluate(x, 1e-3) vs exact — certified
//                        |err| <= tol gate; NOT speedup-guarded: the exact
//                        Epanechnikov path is already windowed by compact
//                        support, so after the kLeafSize 32→128 retune this
//                        row hovers ~0.9-1.0x (pruning wins depend on
//                        tolerance/kernel, see kde_tree.hpp).
//   kde_tree_cdf         Gaussian CdfAt(x, 1e-6) vs exact — certified gate;
//                        NOT speedup-guarded.
//   wavelet_evaluate_many WaveletEstimate::EvaluateMany vs scalar Evaluate
//                        loop — bitwise, guarded.
//   hist_prefix_rebuild  PrefixSumExclusiveBlocked vs Sequential on integer
//                        counts — bitwise (exact reassociation), guarded.
//
// Usage: perf_kernels [--n=200000] [--queries=1024] [--repeats=3]
//                     [--out=BENCH_kernels.json] [--check]
//
// --check turns the contracts into gates: exit 1 if any bitwise row loses
// bit-identity, any tolerance row exceeds its bound, any guarded row's
// optimized path is slower than its scalar baseline (speedup < 1.0), or the
// tolerance-0 tree paths lose bit-identity with the linear pass for ANY of
// the four shipped kernel types.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/estimator.hpp"
#include "kernel/bandwidth.hpp"
#include "kernel/kde.hpp"
#include "kernel/kernels.hpp"
#include "numerics/simd.hpp"
#include "stats/rng.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"
#include "wavelet/scaled_function.hpp"

namespace {

using namespace wde;

struct Row {
  std::string name;
  std::string equivalence;  // "bitwise" | "tolerance"
  size_t items = 0;         // evaluations per timed pass
  double seconds_baseline = 0.0;
  double seconds_optimized = 0.0;
  double speedup = 1.0;
  double tolerance = 0.0;       // tolerance rows: the gated bound
  double max_abs_error = 0.0;   // tolerance rows: observed error
  bool bit_identical = true;    // bitwise rows: observed identity
  bool speedup_guarded = false; // --check fails if guarded && speedup < 1
};

bool BitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

double MaxAbsError(const std::vector<double>& got, const std::vector<double>& want) {
  double max_abs = 0.0;
  for (size_t i = 0; i < got.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(got[i] - want[i]));
  }
  return max_abs;
}

kernel::KernelDensityEstimator MakeKde(kernel::KernelType type,
                                       const std::vector<double>& data) {
  const kernel::Kernel kernel(type);
  const double bandwidth = kernel::RuleOfThumbBandwidth(data);
  Result<kernel::KernelDensityEstimator> kde =
      kernel::KernelDensityEstimator::Create(kernel, bandwidth, data);
  WDE_CHECK(kde.ok(), kde.status().ToString().c_str());
  return *std::move(kde);
}

/// The tentpole equivalence gate: at tolerance 0 the tree-routed density and
/// CDF must be bit-identical to the linear windowed pass for every shipped
/// kernel type (including the tree paths' exact prunes on the Gaussian's
/// effective radius). Checked outside the timed rows so a failure names the
/// kernel.
bool TreeTol0BitwiseAllKernels(const std::vector<double>& data,
                               const std::vector<double>& queries) {
  constexpr kernel::KernelType kTypes[] = {
      kernel::KernelType::kEpanechnikov, kernel::KernelType::kGaussian,
      kernel::KernelType::kBiweight, kernel::KernelType::kTriangular};
  bool ok = true;
  for (kernel::KernelType type : kTypes) {
    const kernel::KernelDensityEstimator kde = MakeKde(type, data);
    for (double x : queries) {
      if (kde.Evaluate(x, 0.0) != kde.Evaluate(x)) {
        std::fprintf(stderr, "tree tol=0 density mismatch (%s) at x=%.17g\n",
                     kde.kernel().name().c_str(), x);
        ok = false;
        break;
      }
      if (kde.CdfAt(x, 0.0) != kde.CdfAt(x)) {
        std::fprintf(stderr, "tree tol=0 cdf mismatch (%s) at x=%.17g\n",
                     kde.kernel().name().c_str(), x);
        ok = false;
        break;
      }
    }
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  // Build-type gate first: a debug binary must never gate CI or
  // regenerate committed numbers (see bench_common.hpp).
  if (!bench::perf::CheckBuildForTiming(ArgBool(argc, argv, "check"))) {
    return 2;
  }
  const size_t n = ArgSize(argc, argv, "n", 200000);
  const size_t query_count = ArgSize(argc, argv, "queries", 1024);
  const size_t repeats = std::max<size_t>(1, ArgSize(argc, argv, "repeats", 3));
  const std::string out_path = ArgString(argc, argv, "out", "BENCH_kernels.json");

  stats::Rng data_rng(1);
  std::vector<double> data(n);
  for (double& x : data) x = data_rng.UniformDouble();

  // Queries slightly overhanging [0, 1] so the saturated/empty-window edges
  // of the CDF and tree paths are exercised, not just interior points.
  stats::Rng query_rng(5);
  std::vector<double> queries(query_count);
  for (double& x : queries) x = -0.1 + 1.2 * query_rng.UniformDouble();
  std::vector<double> range_lo(query_count), range_hi(query_count);
  for (size_t i = 0; i < query_count; ++i) {
    const double a = query_rng.UniformDouble();
    const double b = query_rng.UniformDouble();
    range_lo[i] = std::min(a, b);
    range_hi[i] = std::max(a, b);
  }

  std::vector<Row> rows;
  std::vector<double> baseline(query_count), optimized(query_count);
  double checksum = 0.0;  // keeps the timed passes observable

  // --- kde_evaluate_many: SIMD-gathered batch vs scalar loop (bitwise). ---
  {
    const kernel::KernelDensityEstimator kde =
        MakeKde(kernel::KernelType::kEpanechnikov, data);
    Row row;
    row.name = "kde_evaluate_many";
    row.equivalence = "bitwise";
    row.items = query_count;
    row.speedup_guarded = true;
    row.seconds_baseline = bench::perf::BestOfSeconds(repeats, [&] {
      for (size_t i = 0; i < query_count; ++i) baseline[i] = kde.Evaluate(queries[i]);
      checksum += baseline[0];
    });
    row.seconds_optimized = bench::perf::BestOfSeconds(repeats, [&] {
      kde.EvaluateMany(queries, optimized);
      checksum += optimized[0];
    });
    row.speedup = row.seconds_baseline / row.seconds_optimized;
    row.bit_identical = BitIdentical(optimized, baseline);
    rows.push_back(row);
  }

  // --- kde_range_batch: CdfAt-difference ranges vs IntegrateRange. Same
  // windowed terms, reassociated (two endpoint sums instead of one pass), so
  // the gate is a tight absolute tolerance rather than bit-identity. ---
  {
    const kernel::KernelDensityEstimator kde =
        MakeKde(kernel::KernelType::kEpanechnikov, data);
    Row row;
    row.name = "kde_range_batch";
    row.equivalence = "tolerance";
    row.items = query_count;
    row.tolerance = 1e-9;
    row.speedup_guarded = true;
    row.seconds_baseline = bench::perf::BestOfSeconds(repeats, [&] {
      for (size_t i = 0; i < query_count; ++i) {
        baseline[i] = kde.IntegrateRange(range_lo[i], range_hi[i]);
      }
      checksum += baseline[0];
    });
    row.seconds_optimized = bench::perf::BestOfSeconds(repeats, [&] {
      for (size_t i = 0; i < query_count; ++i) {
        const double mass = kde.CdfAt(range_hi[i]) - kde.CdfAt(range_lo[i]);
        optimized[i] = std::clamp(mass, 0.0, 1.0);
      }
      checksum += optimized[0];
    });
    row.speedup = row.seconds_baseline / row.seconds_optimized;
    row.max_abs_error = MaxAbsError(optimized, baseline);
    rows.push_back(row);
  }

  // --- kde_tree_density: bounded tree pruning at tol=1e-3 (certified). ---
  {
    const kernel::KernelDensityEstimator kde =
        MakeKde(kernel::KernelType::kEpanechnikov, data);
    Row row;
    row.name = "kde_tree_density";
    row.equivalence = "tolerance";
    row.items = query_count;
    row.tolerance = 1e-3;
    row.seconds_baseline = bench::perf::BestOfSeconds(repeats, [&] {
      for (size_t i = 0; i < query_count; ++i) baseline[i] = kde.Evaluate(queries[i]);
      checksum += baseline[0];
    });
    row.seconds_optimized = bench::perf::BestOfSeconds(repeats, [&] {
      for (size_t i = 0; i < query_count; ++i) {
        optimized[i] = kde.Evaluate(queries[i], row.tolerance);
      }
      checksum += optimized[0];
    });
    row.speedup = row.seconds_baseline / row.seconds_optimized;
    row.max_abs_error = MaxAbsError(optimized, baseline);
    rows.push_back(row);
  }

  // --- kde_tree_cdf: Gaussian CDF tree pruning at tol=1e-6. The Gaussian's
  // effective radius makes the linear window nearly the whole sample; the
  // tree collapses its flat tails under the certified CDF bound. ---
  {
    const kernel::KernelDensityEstimator kde =
        MakeKde(kernel::KernelType::kGaussian, data);
    Row row;
    row.name = "kde_tree_cdf";
    row.equivalence = "tolerance";
    row.items = query_count;
    row.tolerance = 1e-6;
    row.seconds_baseline = bench::perf::BestOfSeconds(repeats, [&] {
      for (size_t i = 0; i < query_count; ++i) baseline[i] = kde.CdfAt(queries[i]);
      checksum += baseline[0];
    });
    row.seconds_optimized = bench::perf::BestOfSeconds(repeats, [&] {
      for (size_t i = 0; i < query_count; ++i) {
        optimized[i] = kde.CdfAt(queries[i], row.tolerance);
      }
      checksum += optimized[0];
    });
    row.speedup = row.seconds_baseline / row.seconds_optimized;
    row.max_abs_error = MaxAbsError(optimized, baseline);
    rows.push_back(row);
  }

  // --- wavelet_evaluate_many: level-hoisted + shared-weight-window batch vs
  // the scalar per-point reconstruction (bitwise). ---
  {
    Result<core::WaveletDensityFit> fit =
        core::WaveletDensityFit::Fit(bench::Sym8Basis(), data);
    WDE_CHECK(fit.ok(), fit.status().ToString().c_str());
    const core::WaveletEstimate estimate = fit->LinearEstimate(8);
    // Enough points that the per-level setup amortizes, as in production
    // grid/batch queries.
    const size_t points = std::max<size_t>(query_count, 16384);
    std::vector<double> xs(points), wave_base(points), wave_opt(points);
    stats::Rng xrng(9);
    for (double& x : xs) x = xrng.UniformDouble();
    Row row;
    row.name = "wavelet_evaluate_many";
    row.equivalence = "bitwise";
    row.items = points;
    row.speedup_guarded = true;
    row.seconds_baseline = bench::perf::BestOfSeconds(repeats, [&] {
      for (size_t i = 0; i < points; ++i) wave_base[i] = estimate.Evaluate(xs[i]);
      checksum += wave_base[0];
    });
    row.seconds_optimized = bench::perf::BestOfSeconds(repeats, [&] {
      estimate.EvaluateMany(xs, wave_opt);
      checksum += wave_opt[0];
    });
    row.speedup = row.seconds_baseline / row.seconds_optimized;
    row.bit_identical = BitIdentical(wave_opt, wave_base);
    rows.push_back(row);
  }

  // --- hist_prefix_rebuild: blocked vs sequential exclusive prefix sum over
  // integer-valued counts (exact reassociation ⇒ bitwise). Sized like a large
  // equi-width histogram; repeated per pass so the timing is resolvable. ---
  {
    const size_t buckets = 65536;
    const size_t passes = 64;
    std::vector<double> counts(buckets);
    stats::Rng crng(13);
    for (double& c : counts) {
      c = static_cast<double>(static_cast<uint64_t>(crng.UniformDouble() * 1024.0));
    }
    std::vector<double> prefix_base(buckets), prefix_opt(buckets);
    Row row;
    row.name = "hist_prefix_rebuild";
    row.equivalence = "bitwise";
    row.items = buckets * passes;
    row.speedup_guarded = true;
    row.seconds_baseline = bench::perf::BestOfSeconds(repeats, [&] {
      for (size_t p = 0; p < passes; ++p) {
        checksum += numerics::PrefixSumExclusiveSequential(counts, prefix_base);
      }
    });
    row.seconds_optimized = bench::perf::BestOfSeconds(repeats, [&] {
      for (size_t p = 0; p < passes; ++p) {
        checksum += numerics::PrefixSumExclusiveBlocked(counts, prefix_opt);
      }
    });
    row.speedup = row.seconds_baseline / row.seconds_optimized;
    row.bit_identical = BitIdentical(prefix_opt, prefix_base);
    rows.push_back(row);
  }

  const bool tree_tol0_bitwise = TreeTol0BitwiseAllKernels(data, queries);

  for (const Row& row : rows) {
    std::printf("%-24s %8zu items  base %.4fs  opt %.4fs  speedup %.2fx  %s\n",
                row.name.c_str(), row.items, row.seconds_baseline,
                row.seconds_optimized, row.speedup,
                row.equivalence == "bitwise"
                    ? (row.bit_identical ? "bit_identical" : "MISMATCH")
                    : "tolerance");
  }
  std::printf("tree tol=0 bitwise across kernel types: %s  (checksum %.6g)\n",
              tree_tol0_bitwise ? "true" : "false", checksum);

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  WDE_CHECK(out != nullptr, "cannot open --out path for writing");
  std::fprintf(out, "{\n  \"bench\": \"perf_kernels\",\n");
  std::fprintf(out,
               "  \"workload\": {\"n\": %zu, \"queries\": %zu, \"repeats\": %zu, "
               "\"data\": \"uniform[0,1]\", \"bandwidth\": \"rule-of-thumb\"},\n",
               n, query_count, repeats);
  wde::bench::perf::WriteHostJson(out);
  std::fprintf(out, "  \"checks\": {\"tree_tol0_bitwise_all_kernels\": %s},\n",
               tree_tol0_bitwise ? "true" : "false");
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const Row& row = rows[i];
    std::fprintf(out,
                 "    {\"name\": \"%s\", \"equivalence\": \"%s\", \"items\": %zu, "
                 "\"seconds_baseline\": %.6f, \"seconds_optimized\": %.6f, "
                 "\"speedup\": %.4f, \"tolerance\": %.3e, "
                 "\"max_abs_error\": %.3e, \"bit_identical\": %s, "
                 "\"speedup_guarded\": %s}%s\n",
                 row.name.c_str(), row.equivalence.c_str(), row.items,
                 row.seconds_baseline, row.seconds_optimized, row.speedup,
                 row.tolerance, row.max_abs_error,
                 row.bit_identical ? "true" : "false",
                 row.speedup_guarded ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (ArgBool(argc, argv, "check")) {
    int violations = 0;
    if (!tree_tol0_bitwise) {
      std::fprintf(stderr, "CHECK FAILED: tree tol=0 paths not bit-identical\n");
      ++violations;
    }
    for (const Row& row : rows) {
      if (row.equivalence == "bitwise" && !row.bit_identical) {
        std::fprintf(stderr, "CHECK FAILED: %s lost bit-identity\n",
                     row.name.c_str());
        ++violations;
      }
      // 1e-12 slack: the certified bounds are derived in exact arithmetic;
      // the accumulations themselves round.
      if (row.equivalence == "tolerance" &&
          row.max_abs_error > row.tolerance + 1e-12) {
        std::fprintf(stderr, "CHECK FAILED: %s max_abs_error %.3e > %.3e\n",
                     row.name.c_str(), row.max_abs_error, row.tolerance);
        ++violations;
      }
      if (row.speedup_guarded && row.speedup < 1.0) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s optimized path slower than scalar "
                     "baseline (speedup %.3fx)\n",
                     row.name.c_str(), row.speedup);
        ++violations;
      }
    }
    if (violations > 0) return 1;
    std::printf("evaluation-kernel contract checks passed\n");
  }
  return 0;
}
