// google-benchmark microbenches for the core estimator: streaming
// coefficient updates, cross-validation, reconstruction and range queries —
// the costs a query optimizer would pay. The *Scalar/*Batch pairs compare
// per-point entry points against the span-based batch paths (bit-identical
// by contract; tests/batch_equivalence_test.cpp).
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

#include <span>

#include "core/adaptive.hpp"
#include "core/binned.hpp"
#include "stats/rng.hpp"
#include "wavelet/scaled_function.hpp"

namespace {

using namespace wde;

const wavelet::WaveletBasis& Basis() {
  static const wavelet::WaveletBasis basis =
      *wavelet::WaveletBasis::Create(*wavelet::WaveletFilter::Symmlet(8), 12);
  return basis;
}

std::vector<double> Data(size_t n) {
  stats::Rng rng(7);
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.UniformDouble();
  return xs;
}

void BM_CoefficientInsert(benchmark::State& state) {
  const int j_max = static_cast<int>(state.range(0));
  Result<core::EmpiricalCoefficients> coeffs =
      core::EmpiricalCoefficients::Create(Basis(), 2, j_max);
  stats::Rng rng(3);
  for (auto _ : state) {
    coeffs->Add(rng.UniformDouble());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CoefficientInsert)->Arg(6)->Arg(10)->Arg(12);

void BM_CoefficientAddAll(benchmark::State& state) {
  // The batch counterpart of BM_CoefficientInsert: same per-item work,
  // accumulated level-by-level with hoisted table setup.
  const int j_max = static_cast<int>(state.range(0));
  Result<core::EmpiricalCoefficients> coeffs =
      core::EmpiricalCoefficients::Create(Basis(), 2, j_max);
  const std::vector<double> xs = Data(4096);
  for (auto _ : state) {
    coeffs->AddAll(xs);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(xs.size()));
}
BENCHMARK(BM_CoefficientAddAll)->Arg(6)->Arg(10)->Arg(12);

void BM_CrossValidate(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Result<core::WaveletDensityFit> fit =
      core::WaveletDensityFit::Fit(Basis(), Data(n));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        core::CrossValidate(fit->coefficients(), core::ThresholdKind::kSoft));
  }
}
BENCHMARK(BM_CrossValidate)->Arg(1024)->Arg(8192);

void BM_FitAdaptiveEndToEnd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> xs = Data(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::FitAdaptive(Basis(), xs));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_FitAdaptiveEndToEnd)->Arg(1024)->Arg(4096);

void BM_EstimateReconstruction(benchmark::State& state) {
  Result<core::WaveletDensityFit> fit =
      core::WaveletDensityFit::Fit(Basis(), Data(1024));
  const core::CrossValidationResult cv =
      core::CrossValidate(fit->coefficients(), core::ThresholdKind::kSoft);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fit->Estimate(cv.Schedule(), core::ThresholdKind::kSoft));
  }
}
BENCHMARK(BM_EstimateReconstruction);

void BM_EvaluatePoint(benchmark::State& state) {
  Result<core::AdaptiveDensityEstimate> fit = core::FitAdaptive(Basis(), Data(1024));
  double x = 0.0;
  for (auto _ : state) {
    x += 0.000917;
    if (x > 1.0) x -= 1.0;
    benchmark::DoNotOptimize(fit->estimate.Evaluate(x));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_EvaluatePoint);

void BM_EvaluateManyBatch(benchmark::State& state) {
  // One reconstruction pass per level across the whole grid vs one pass per
  // point (BM_EvaluatePoint).
  Result<core::AdaptiveDensityEstimate> fit = core::FitAdaptive(Basis(), Data(1024));
  const size_t points = 4096;
  std::vector<double> xs(points), out(points);
  for (size_t i = 0; i < points; ++i) {
    xs[i] = static_cast<double>(i) / static_cast<double>(points - 1);
  }
  for (auto _ : state) {
    fit->estimate.EvaluateMany(xs, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(points));
}
BENCHMARK(BM_EvaluateManyBatch);

void BM_BinnedFitAndReconstruct(benchmark::State& state) {
  // The WaveLab-style fast path: bin + pyramid + threshold + inverse.
  const size_t n = static_cast<size_t>(state.range(0));
  const std::vector<double> xs = Data(n);
  const wavelet::WaveletFilter filter = *wavelet::WaveletFilter::Symmlet(8);
  const core::ThresholdSchedule schedule = core::TheoreticalSchedule(1.0, 2, 9, n);
  for (auto _ : state) {
    Result<core::BinnedWaveletFit> fit = core::BinnedWaveletFit::Fit(filter, xs, 2, 10);
    benchmark::DoNotOptimize(fit->EstimateOnGrid(schedule, core::ThresholdKind::kSoft));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_BinnedFitAndReconstruct)->Arg(1024)->Arg(65536);

void BM_IntegrateRange(benchmark::State& state) {
  Result<core::AdaptiveDensityEstimate> fit = core::FitAdaptive(Basis(), Data(4096));
  double a = 0.0;
  for (auto _ : state) {
    a += 0.000917;
    if (a > 0.7) a -= 0.7;
    benchmark::DoNotOptimize(fit->estimate.IntegrateRange(a, a + 0.2));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_IntegrateRange);

void BM_IntegrateRangeManyBatch(benchmark::State& state) {
  // Range-query counterpart: one antiderivative pass per level across all
  // ranges vs per-range setup (BM_IntegrateRange).
  Result<core::AdaptiveDensityEstimate> fit = core::FitAdaptive(Basis(), Data(4096));
  const size_t n = 1024;
  std::vector<double> a(n), b(n), out(n);
  double x = 0.0;
  for (size_t i = 0; i < n; ++i) {
    x += 0.000917;
    if (x > 0.7) x -= 0.7;
    a[i] = x;
    b[i] = x + 0.2;
  }
  for (auto _ : state) {
    fit->estimate.IntegrateRangeMany(a, b, out);
    benchmark::DoNotOptimize(out.data());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(n));
}
BENCHMARK(BM_IntegrateRangeManyBatch);

}  // namespace

// Not BENCHMARK_MAIN(): the build-type gate must run before benchmark
// registration parses --benchmark_out, so a debug binary can never write a
// JSON baseline (see bench_common.hpp).
int main(int argc, char** argv) {
  if (!wde::bench::perf::CheckBuildForBaseline(argc, argv)) return 2;
  benchmark::AddCustomContext("build_type", wde::bench::perf::BuildType());
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
