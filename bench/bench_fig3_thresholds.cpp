// Reproduces Figure 3 of the paper: mean cross-validated threshold levels
// λ̂_j against the resolution level j, for hard and soft thresholding, one
// curve per dependence case. Levels whose optimum empties the level have an
// infinite λ̂; as the finite surrogate we average the smallest threshold that
// achieves the empty level (the level's largest |β̂|), which is the quantity
// a plot can show.
//
// Expected shape: thresholds increase with j; the three case curves are
// close together (dependence does not move the thresholds); the growth is
// NOT ∝ √j (the paper's remark about the theoretical schedule).
#include "bench_common.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config = harness::ExperimentConfig::FromEnv();
  bench::PrintHeader("Figure 3: mean CV threshold levels per resolution", config);

  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  const int j0 = core::DefaultPrimaryLevel(config.n, 8);
  const int j_star = core::DefaultTopLevel(config.n);
  const size_t levels = static_cast<size_t>(j_star - j0 + 1);

  std::vector<double> level_axis(levels);
  for (size_t i = 0; i < levels; ++i) level_axis[i] = static_cast<double>(j0) + i;

  for (core::ThresholdKind kind :
       {core::ThresholdKind::kHard, core::ThresholdKind::kSoft}) {
    std::vector<std::pair<std::string, std::vector<double>>> series;
    for (harness::DependenceCase c : harness::kAllCases) {
      const processes::TransformedProcess process = harness::MakeCase(c, density);
      const std::vector<double> mean_lambda = harness::MeanCurve(
          config.replicates, config.seed, config.threads, levels,
          [&](stats::Rng& rng, int) {
            const std::vector<double> xs = process.Sample(config.n, rng);
            Result<core::WaveletDensityFit> fit =
                core::WaveletDensityFit::Fit(bench::Sym8Basis(), xs);
            WDE_CHECK(fit.ok());
            const core::CrossValidationResult cv =
                core::CrossValidate(fit->coefficients(), kind);
            std::vector<double> lambdas(levels);
            for (size_t i = 0; i < levels; ++i) {
              lambdas[i] = cv.Level(j0 + static_cast<int>(i)).EffectiveLambda();
            }
            return lambdas;
          });
      series.emplace_back(harness::CaseName(c), mean_lambda);
    }
    harness::PrintSeries(
        std::cout,
        Format("Figure 3 / %s-thresholding: mean lambda_j vs level j",
               core::ThresholdKindName(kind)),
        level_axis, series);
    std::cout << '\n';
  }
  std::cout << "expected shape: increasing in j; case curves nearly coincide.\n";
  return 0;
}
