// Steady-state ingest bench for the incremental refit engine: stream n
// values into each refit-carrying estimator in fixed-size chunks, forcing a
// refit after every chunk (ForceRefit — exactly the insert+refit cost, no
// query-path dilution), under both RefitModes. kScratch rebuilds fitted
// state from zero each refit (the oracle); kIncremental delta-merges the
// previous fit (sorted-prefix merge for the KDE and equi-depth buffers,
// warm-started cross-validation for the wavelet sketch). Produces the
// committed BENCH_ingest.json artifact: per-mode amortized insert+refit
// throughput, per-refit latency percentiles, the incremental-vs-scratch
// speedup, and the bitwise-equivalence evidence (a mixed query workload
// answered by both modes after ingest must match bit-for-bit).
//
// A second section times the sharded engine's merged-view refresh after a
// delta of Δ = n/100 inserts: per-replica high-water tail merges + one
// incremental refit (kIncremental) vs the from-zero CloneEmpty + K MergeFrom
// rebuild + full refit (kScratch), over several cycles.
//
// No google-benchmark dependency: plain steady_clock timing, like the other
// chrono drivers. Single-threaded except the sharded section's ingest.
//
// Usage: perf_ingest [--n=1000000] [--chunk=8192] [--cycles=12]
//                    [--repeats=2] [--out=BENCH_ingest.json] [--check]
//
// --check turns the contracts into gates: exit 1 if any mode pair loses
// bitwise equivalence, if the kde-rot amortized insert+refit speedup falls
// below 2x, or if the sharded delta refresh is less than 5x faster than the
// full rebuild. CI runs with --check on the release build; debug binaries
// refuse --check outright (see bench_common.hpp).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "selectivity/estimator_registry.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/query_workload.hpp"
#include "selectivity/selectivity_estimator.hpp"
#include "stats/rng.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace {

using namespace wde;

std::unique_ptr<selectivity::SelectivityEstimator> Make(
    const selectivity::EstimatorSpec& spec) {
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> estimator =
      selectivity::MakeEstimator(spec);
  WDE_CHECK(estimator.ok(), estimator.status().ToString().c_str());
  return std::move(estimator).value();
}

selectivity::EstimatorSpec SpecFor(const std::string& tag,
                                   selectivity::RefitMode mode) {
  selectivity::EstimatorSpec spec;
  spec.tag = tag;
  spec.refit_mode = mode;
  // The cadence is driven by ForceRefit below, not the interval; a huge
  // interval keeps the insert paths from refitting a second time mid-chunk.
  spec.refit_interval = ~size_t{0} >> 1;
  if (tag == "sharded") spec.sharded_inner_tag = "kde-rot";
  return spec;
}

std::vector<double> Answers(const selectivity::SelectivityEstimator& estimator,
                            const std::vector<selectivity::Query>& queries) {
  std::vector<double> out(queries.size());
  estimator.Answer(queries, out);
  return out;
}

double PercentileMs(std::vector<double> seconds, double p) {
  if (seconds.empty()) return 0.0;
  std::sort(seconds.begin(), seconds.end());
  const size_t idx = std::min(
      seconds.size() - 1, static_cast<size_t>(p * static_cast<double>(seconds.size())));
  return seconds[idx] * 1e3;
}

struct IngestRun {
  double seconds = 0.0;             // whole insert+refit loop
  std::vector<double> refit_laps;   // per-cycle (chunk insert + forced refit)
  std::vector<double> answers;      // mixed workload after ingest
};

/// The steady-state loop: InsertBatch(chunk) then ForceRefit(), over the
/// whole stream. Every cycle pays one full refit in kScratch and one
/// delta-merge refit in kIncremental; the answers afterwards must be
/// bit-identical between the modes.
IngestRun RunIngest(selectivity::SelectivityEstimator& estimator,
                    const std::vector<double>& stream, size_t chunk,
                    const std::vector<selectivity::Query>& queries) {
  IngestRun run;
  const std::span<const double> all(stream);
  const auto start = std::chrono::steady_clock::now();
  for (size_t offset = 0; offset < all.size(); offset += chunk) {
    const auto lap = std::chrono::steady_clock::now();
    estimator.InsertBatch(all.subspan(offset, std::min(chunk, all.size() - offset)));
    estimator.ForceRefit();
    run.refit_laps.push_back(bench::perf::SecondsSince(lap));
  }
  run.seconds = bench::perf::SecondsSince(start);
  run.answers = Answers(estimator, queries);
  return run;
}

struct IngestRow {
  std::string estimator;
  std::string mode;
  size_t refits = 0;
  double seconds = 0.0;
  double items_per_second = 0.0;
  double refit_p50_ms = 0.0;
  double refit_p95_ms = 0.0;
  double refit_max_ms = 0.0;
  double speedup_vs_scratch = 1.0;  // 1.0 on the scratch row itself
  bool bitwise_equal_to_scratch = true;
};

struct RefreshRow {
  std::string mode;
  size_t delta = 0;
  size_t cycles = 0;
  double refresh_total_seconds = 0.0;
  double refresh_p50_ms = 0.0;
  double refresh_max_ms = 0.0;
  double speedup_vs_scratch = 1.0;
  bool bitwise_equal_to_scratch = true;
};

}  // namespace

int main(int argc, char** argv) {
  // Build-type gate first: a debug binary must never gate CI or regenerate
  // committed numbers (see bench_common.hpp).
  if (!bench::perf::CheckBuildForTiming(ArgBool(argc, argv, "check"))) {
    return 2;
  }
  const size_t n = ArgSize(argc, argv, "n", 1000000);
  const size_t chunk = std::max<size_t>(1, ArgSize(argc, argv, "chunk", 8192));
  const size_t cycles = std::max<size_t>(1, ArgSize(argc, argv, "cycles", 12));
  const size_t repeats = std::max<size_t>(1, ArgSize(argc, argv, "repeats", 2));
  const std::string out_path = ArgString(argc, argv, "out", "BENCH_ingest.json");

  stats::Rng data_rng(1);
  std::vector<double> stream(n);
  for (double& x : stream) x = data_rng.UniformDouble();
  stats::Rng query_rng(5);
  const std::vector<selectivity::Query> queries =
      selectivity::MixedQueryWorkload(query_rng, 256, 0.0, 1.0);

  // -------------------------------------------------------------------------
  // Section 1: steady-state insert+refit, scratch vs incremental, per tag.
  // -------------------------------------------------------------------------
  std::vector<IngestRow> ingest_rows;
  for (const char* tag : {"kde-rot", "equi-depth", "wavelet-cv"}) {
    IngestRun scratch;
    IngestRun incremental;
    for (size_t r = 0; r < repeats; ++r) {
      std::unique_ptr<selectivity::SelectivityEstimator> scr =
          Make(SpecFor(tag, selectivity::RefitMode::kScratch));
      IngestRun run = RunIngest(*scr, stream, chunk, queries);
      if (r == 0 || run.seconds < scratch.seconds) scratch = std::move(run);
      std::unique_ptr<selectivity::SelectivityEstimator> inc =
          Make(SpecFor(tag, selectivity::RefitMode::kIncremental));
      run = RunIngest(*inc, stream, chunk, queries);
      if (r == 0 || run.seconds < incremental.seconds) incremental = std::move(run);
    }
    const bool bitwise = incremental.answers == scratch.answers;
    for (const IngestRun* run : {&scratch, &incremental}) {
      IngestRow row;
      row.estimator = tag;
      row.mode = run == &scratch ? "scratch" : "incremental";
      row.refits = run->refit_laps.size();
      row.seconds = run->seconds;
      row.items_per_second = static_cast<double>(n) / run->seconds;
      row.refit_p50_ms = PercentileMs(run->refit_laps, 0.50);
      row.refit_p95_ms = PercentileMs(run->refit_laps, 0.95);
      row.refit_max_ms = PercentileMs(run->refit_laps, 1.0);
      row.speedup_vs_scratch =
          run == &scratch ? 1.0 : scratch.seconds / run->seconds;
      row.bitwise_equal_to_scratch = bitwise;
      ingest_rows.push_back(row);
      std::printf(
          "%-10s %-11s %4zu refits  %.3fs  %.3g items/s  "
          "p50 %.2fms p95 %.2fms max %.2fms  speedup %.2fx  bitwise %s\n",
          row.estimator.c_str(), row.mode.c_str(), row.refits, row.seconds,
          row.items_per_second, row.refit_p50_ms, row.refit_p95_ms,
          row.refit_max_ms, row.speedup_vs_scratch, bitwise ? "true" : "false");
    }
  }

  // -------------------------------------------------------------------------
  // Section 2: sharded merged-view refresh after Δ = n/100 inserts.
  // -------------------------------------------------------------------------
  const size_t delta = std::max<size_t>(1, n / 100);
  std::vector<RefreshRow> refresh_rows;
  {
    std::unique_ptr<selectivity::SelectivityEstimator> inc =
        Make(SpecFor("sharded", selectivity::RefitMode::kIncremental));
    std::unique_ptr<selectivity::SelectivityEstimator> scr =
        Make(SpecFor("sharded", selectivity::RefitMode::kScratch));
    inc->InsertBatch(stream);
    scr->InsertBatch(stream);
    inc->ForceRefit();  // both start from a current, fitted merged view
    scr->ForceRefit();

    stats::Rng delta_rng(9);
    std::vector<double> tail(delta);
    std::vector<double> inc_laps, scr_laps;
    bool bitwise = true;
    for (size_t c = 0; c < cycles; ++c) {
      for (double& x : tail) x = delta_rng.UniformDouble();
      inc->InsertBatch(tail);
      scr->InsertBatch(tail);
      const auto inc_start = std::chrono::steady_clock::now();
      inc->ForceRefit();
      inc_laps.push_back(bench::perf::SecondsSince(inc_start));
      const auto scr_start = std::chrono::steady_clock::now();
      scr->ForceRefit();
      scr_laps.push_back(bench::perf::SecondsSince(scr_start));
      bitwise = bitwise && Answers(*inc, queries) == Answers(*scr, queries);
    }
    double inc_total = 0.0, scr_total = 0.0;
    for (double s : inc_laps) inc_total += s;
    for (double s : scr_laps) scr_total += s;
    for (const bool is_scratch : {true, false}) {
      RefreshRow row;
      row.mode = is_scratch ? "scratch" : "incremental";
      row.delta = delta;
      row.cycles = cycles;
      row.refresh_total_seconds = is_scratch ? scr_total : inc_total;
      row.refresh_p50_ms = PercentileMs(is_scratch ? scr_laps : inc_laps, 0.50);
      row.refresh_max_ms = PercentileMs(is_scratch ? scr_laps : inc_laps, 1.0);
      row.speedup_vs_scratch = is_scratch ? 1.0 : scr_total / inc_total;
      row.bitwise_equal_to_scratch = bitwise;
      refresh_rows.push_back(row);
      std::printf(
          "sharded-refresh %-11s Δ=%zu ×%zu  total %.3fs  p50 %.2fms  "
          "max %.2fms  speedup %.2fx  bitwise %s\n",
          row.mode.c_str(), row.delta, row.cycles, row.refresh_total_seconds,
          row.refresh_p50_ms, row.refresh_max_ms, row.speedup_vs_scratch,
          bitwise ? "true" : "false");
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  WDE_CHECK(out != nullptr, "cannot open --out path for writing");
  std::fprintf(out, "{\n  \"bench\": \"perf_ingest\",\n");
  std::fprintf(out,
               "  \"workload\": {\"n\": %zu, \"chunk\": %zu, "
               "\"refresh_delta\": %zu, \"refresh_cycles\": %zu, "
               "\"queries\": %zu, \"repeats\": %zu},\n",
               n, chunk, delta, cycles, queries.size(), repeats);
  bench::perf::WriteHostJson(out);
  std::fprintf(out, "  \"ingest\": [\n");
  for (size_t i = 0; i < ingest_rows.size(); ++i) {
    const IngestRow& row = ingest_rows[i];
    std::fprintf(out,
                 "    {\"estimator\": \"%s\", \"mode\": \"%s\", "
                 "\"refits\": %zu, \"seconds\": %.6f, "
                 "\"items_per_second\": %.1f, \"refit_p50_ms\": %.4f, "
                 "\"refit_p95_ms\": %.4f, \"refit_max_ms\": %.4f, "
                 "\"speedup_vs_scratch\": %.4f, "
                 "\"bitwise_equal_to_scratch\": %s}%s\n",
                 row.estimator.c_str(), row.mode.c_str(), row.refits,
                 row.seconds, row.items_per_second, row.refit_p50_ms,
                 row.refit_p95_ms, row.refit_max_ms, row.speedup_vs_scratch,
                 row.bitwise_equal_to_scratch ? "true" : "false",
                 i + 1 < ingest_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"sharded_refresh\": [\n");
  for (size_t i = 0; i < refresh_rows.size(); ++i) {
    const RefreshRow& row = refresh_rows[i];
    std::fprintf(out,
                 "    {\"mode\": \"%s\", \"delta\": %zu, \"cycles\": %zu, "
                 "\"refresh_total_seconds\": %.6f, \"refresh_p50_ms\": %.4f, "
                 "\"refresh_max_ms\": %.4f, \"speedup_vs_scratch\": %.4f, "
                 "\"bitwise_equal_to_scratch\": %s}%s\n",
                 row.mode.c_str(), row.delta, row.cycles,
                 row.refresh_total_seconds, row.refresh_p50_ms,
                 row.refresh_max_ms, row.speedup_vs_scratch,
                 row.bitwise_equal_to_scratch ? "true" : "false",
                 i + 1 < refresh_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (ArgBool(argc, argv, "check")) {
    int violations = 0;
    for (const IngestRow& row : ingest_rows) {
      if (!row.bitwise_equal_to_scratch) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s %s answers differ from scratch\n",
                     row.estimator.c_str(), row.mode.c_str());
        ++violations;
      }
      if (row.estimator == "kde-rot" && row.mode == "incremental" &&
          row.speedup_vs_scratch < 2.0) {
        std::fprintf(stderr,
                     "CHECK FAILED: kde-rot incremental insert+refit speedup "
                     "%.2fx < 2x\n",
                     row.speedup_vs_scratch);
        ++violations;
      }
    }
    for (const RefreshRow& row : refresh_rows) {
      if (!row.bitwise_equal_to_scratch) {
        std::fprintf(stderr,
                     "CHECK FAILED: sharded %s refresh answers differ\n",
                     row.mode.c_str());
        ++violations;
      }
      if (row.mode == "incremental" && row.speedup_vs_scratch < 5.0) {
        std::fprintf(stderr,
                     "CHECK FAILED: sharded delta refresh speedup %.2fx < 5x\n",
                     row.speedup_vs_scratch);
        ++violations;
      }
    }
    if (violations > 0) return 1;
    std::printf("incremental-refit contract checks passed\n");
  }
  return 0;
}
