// Reproduces Figure 5 of the paper: mean (over replicates) of the STCV
// wavelet estimator against two Epanechnikov kernel baselines — MATLAB's
// rule-of-thumb width ("kernel 1") and the least-squares cross-validated
// width ("kernel 2") — on the bimodal Gaussian-mixture density, one series
// block per dependence case.
//
// Expected shape: kernel 1 oversmooths and misses the two modes; the STCV
// wavelet mean and kernel 2 both resolve them, in all three cases alike.
#include "bench_common.hpp"

#include "kernel/bandwidth.hpp"
#include "kernel/kde.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config =
      harness::ExperimentConfig::FromEnv(1024, 200, 257);
  bench::PrintHeader("Figure 5: mean STCV vs kernel estimators (bimodal f)",
                     config);

  auto density = std::make_shared<const processes::TruncatedGaussianMixtureDensity>(
      processes::TruncatedGaussianMixtureDensity::Bimodal());
  const std::vector<double> x = bench::Grid01(config.grid_points);
  const std::vector<double> truth = density->PdfOnGrid(config.grid_points);
  const kernel::Kernel epanechnikov(kernel::KernelType::kEpanechnikov);
  const size_t g = config.grid_points;

  for (harness::DependenceCase c : harness::kAllCases) {
    const processes::TransformedProcess process = harness::MakeCase(c, density);
    // Each replicate contributes three stacked curves.
    const std::vector<double> mean_all = harness::MeanCurve(
        config.replicates, config.seed, config.threads, 3 * g,
        [&](stats::Rng& rng, int) {
          const std::vector<double> xs = process.Sample(config.n, rng);
          core::AdaptiveOptions options;
          options.kind = core::ThresholdKind::kSoft;
          Result<core::AdaptiveDensityEstimate> fit =
              core::FitAdaptive(bench::Sym8Basis(), xs, options);
          WDE_CHECK(fit.ok());
          std::vector<double> row = fit->estimate.EvaluateOnGrid(0.0, 1.0, g);

          const double h_rot = kernel::RuleOfThumbBandwidth(xs);
          Result<kernel::KernelDensityEstimator> kde_rot =
              kernel::KernelDensityEstimator::Create(epanechnikov, h_rot, xs);
          WDE_CHECK(kde_rot.ok());
          const std::vector<double> rot = kde_rot->EvaluateOnGrid(0.0, 1.0, g);

          const double h_cv = kernel::LeastSquaresCvBandwidth(epanechnikov, xs);
          Result<kernel::KernelDensityEstimator> kde_cv =
              kernel::KernelDensityEstimator::Create(epanechnikov, h_cv, xs);
          WDE_CHECK(kde_cv.ok());
          const std::vector<double> cv = kde_cv->EvaluateOnGrid(0.0, 1.0, g);

          row.insert(row.end(), rot.begin(), rot.end());
          row.insert(row.end(), cv.begin(), cv.end());
          return row;
        });
    const std::vector<double> wavelet(mean_all.begin(), mean_all.begin() + g);
    const std::vector<double> kernel1(mean_all.begin() + g,
                                      mean_all.begin() + 2 * g);
    const std::vector<double> kernel2(mean_all.begin() + 2 * g, mean_all.end());
    harness::PrintSeries(std::cout,
                         Format("Figure 5 / %s", harness::CaseName(c)), x,
                         {{"true_f", truth},
                          {"stcv_wavelet", wavelet},
                          {"kernel1_rot", kernel1},
                          {"kernel2_cv", kernel2}});
    std::cout << '\n';
  }
  std::cout << "expected shape: kernel1 misses the two modes; stcv and "
               "kernel2 resolve them in every case.\n";
  return 0;
}
