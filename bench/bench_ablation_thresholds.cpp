// Ablation bench (DESIGN.md): how much each design choice matters, on the
// paper's Case 2 (logistic map) with the sine+uniform density.
//   * linear projection onto V_{j0} and linear estimators up to j1 = 5, j*
//     (the non-adaptive baselines Donoho et al. prove suboptimal);
//   * the theoretical schedule λ_j = K√(j/n) for a sweep of K — showing that
//     the right K is not knowable a priori (it depends on the dependence
//     constants), which is the paper's motivation for cross-validation;
//   * HTCV with and without the universal-floor stabilization (DESIGN.md
//     §5a), and STCV with and without it.
//
// Expected shape: CV estimators close to the best fixed-K estimator without
// knowing K; full linear estimator clearly worse; literal HTCV much worse
// (the degeneracy); STCV better without the floor.
#include "bench_common.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config =
      harness::ExperimentConfig::FromEnv(1024, 100, 513);
  bench::PrintHeader("Ablation: thresholding rules on Case 2", config);

  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  const processes::TransformedProcess process =
      harness::MakeCase(harness::DependenceCase::kLogisticMap, density);
  const std::vector<double> truth = density->PdfOnGrid(config.grid_points);
  const double dx = 1.0 / static_cast<double>(config.grid_points - 1);

  struct Variant {
    std::string name;
    std::function<core::WaveletEstimate(const core::WaveletDensityFit&)> make;
  };
  std::vector<Variant> variants;
  variants.push_back({"linear proj V_j0", [](const core::WaveletDensityFit& fit) {
                        return fit.LinearEstimate(fit.coefficients().j0() - 1);
                      }});
  variants.push_back({"linear j1=5", [](const core::WaveletDensityFit& fit) {
                        return fit.LinearEstimate(5);
                      }});
  variants.push_back({"linear j1=j*", [](const core::WaveletDensityFit& fit) {
                        return fit.LinearEstimate(fit.coefficients().j_max());
                      }});
  for (double k_const : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    variants.push_back(
        {Format("hard K=%.1f sqrt(j/n)", k_const),
         [k_const](const core::WaveletDensityFit& fit) {
           const core::ThresholdSchedule schedule = core::TheoreticalSchedule(
               k_const, fit.coefficients().j0(), fit.coefficients().j_max(),
               fit.count());
           return fit.Estimate(schedule, core::ThresholdKind::kHard);
         }});
  }
  const auto cv_variant = [](core::ThresholdKind kind, core::CvStabilization stab) {
    return [kind, stab](const core::WaveletDensityFit& fit) {
      const core::CrossValidationResult cv =
          core::CrossValidate(fit.coefficients(), kind, stab);
      return fit.Estimate(cv.Schedule(), kind);
    };
  };
  variants.push_back({"HTCV (literal)",
                      cv_variant(core::ThresholdKind::kHard,
                                 core::CvStabilization::kNone)});
  variants.push_back({"HTCV (universal floor)",
                      cv_variant(core::ThresholdKind::kHard,
                                 core::CvStabilization::kUniversalFloor)});
  variants.push_back({"STCV (literal)",
                      cv_variant(core::ThresholdKind::kSoft,
                                 core::CvStabilization::kNone)});
  variants.push_back({"STCV (universal floor)",
                      cv_variant(core::ThresholdKind::kSoft,
                                 core::CvStabilization::kUniversalFloor)});

  const std::vector<std::vector<double>> rows = harness::CollectCurves(
      config.replicates, config.seed, config.threads, variants.size(),
      [&](stats::Rng& rng, int) {
        const std::vector<double> xs = process.Sample(config.n, rng);
        Result<core::WaveletDensityFit> fit =
            core::WaveletDensityFit::Fit(bench::Sym8Basis(), xs);
        WDE_CHECK(fit.ok());
        std::vector<double> ises(variants.size());
        for (size_t v = 0; v < variants.size(); ++v) {
          const core::WaveletEstimate estimate = variants[v].make(*fit);
          ises[v] = stats::IntegratedSquaredError(
              estimate.EvaluateOnGrid(0.0, 1.0, config.grid_points), truth, dx);
        }
        return ises;
      });

  harness::TextTable table({"variant", "MISE", "vs best"});
  std::vector<double> mise(variants.size(), 0.0);
  for (const std::vector<double>& row : rows) {
    for (size_t v = 0; v < variants.size(); ++v) mise[v] += row[v];
  }
  double best = 1e300;
  for (size_t v = 0; v < variants.size(); ++v) {
    mise[v] /= static_cast<double>(rows.size());
    best = std::min(best, mise[v]);
  }
  for (size_t v = 0; v < variants.size(); ++v) {
    table.AddRow({variants[v].name, Format("%.5f", mise[v]),
                  Format("%.2fx", mise[v] / best)});
  }
  table.Print(std::cout);
  std::cout << "\nexpected shape: CV within a small factor of the best fixed "
               "K; K choice spans a wide MISE range; literal HTCV degenerate; "
               "full linear estimator worst.\n";
  return 0;
}
