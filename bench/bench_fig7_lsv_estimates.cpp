// Reproduces Figure 7 of the paper: mean STCV wavelet estimates and mean
// rule-of-thumb Epanechnikov kernel estimates of the invariant density of
// the Liverani–Saussol–Vaienti map, for α' = 0.1 .. 0.9, on the restricted
// support [0.01, 1] (the invariant density blows up like x^{-α'} at 0 and
// has no closed form, so the two estimators are compared to each other).
//
// Expected shape: the two means nearly coincide for every α'; the density
// level near 0 rises steeply as α' grows.
#include "bench_common.hpp"

#include "kernel/bandwidth.hpp"
#include "kernel/kde.hpp"
#include "processes/lsv_map.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config =
      harness::ExperimentConfig::FromEnv(1024, 100, 199);
  bench::PrintHeader("Figure 7: mean STCV vs kernel estimates on LSV maps",
                     config);

  const double lo = 0.01;
  const double hi = 1.0;
  const size_t g = config.grid_points;
  std::vector<double> x(g);
  for (size_t i = 0; i < g; ++i) {
    x[i] = lo + (hi - lo) * static_cast<double>(i) / static_cast<double>(g - 1);
  }
  const kernel::Kernel epanechnikov(kernel::KernelType::kEpanechnikov);

  for (double alpha : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    const processes::LsvMapProcess process(alpha);
    const std::vector<double> mean_both = harness::MeanCurve(
        config.replicates, config.seed, config.threads, 2 * g,
        [&](stats::Rng& rng, int) {
          // Intermittent orbits can spend an entire path in [0, 0.01)
          // (heavy-tailed sojourns at the neutral fixed point); redraw until
          // the restricted sample is usable. Deterministic: the redraws
          // consume the replicate's own RNG stream.
          std::vector<double> clipped;
          for (int attempt = 0; attempt < 32 && clipped.size() < 32; ++attempt) {
            clipped.clear();
            const std::vector<double> xs = process.Path(config.n, rng);
            for (double v : xs) {
              if (v >= lo && v <= hi) clipped.push_back(v);
            }
          }
          WDE_CHECK_GE(clipped.size(), 32u, "LSV orbit never left [0, 0.01)");
          core::AdaptiveOptions options;
          options.kind = core::ThresholdKind::kSoft;
          options.fit.domain_lo = lo;
          options.fit.domain_hi = hi;
          Result<core::AdaptiveDensityEstimate> fit =
              core::FitAdaptive(bench::Sym8Basis(), clipped, options);
          WDE_CHECK(fit.ok());
          std::vector<double> row = fit->estimate.EvaluateOnGrid(lo, hi, g);
          const double h = kernel::RuleOfThumbBandwidth(clipped);
          const std::vector<double> kde =
              kernel::KernelDensityEstimator::Create(epanechnikov, h, clipped)
                  ->EvaluateOnGrid(lo, hi, g);
          row.insert(row.end(), kde.begin(), kde.end());
          return row;
        });
    const std::vector<double> wavelet(mean_both.begin(), mean_both.begin() + g);
    const std::vector<double> kde(mean_both.begin() + g, mean_both.end());
    harness::PrintSeries(std::cout,
                         Format("Figure 7 / LSV alpha'=%.1f", alpha), x,
                         {{"stcv_wavelet", wavelet}, {"kernel_rot", kde}});
    std::cout << '\n';
  }
  std::cout << "expected shape: wavelet and kernel means close for each "
               "alpha'; mass near x=0 grows with alpha'.\n";
  return 0;
}
