// Mixed read/write load bench for the concurrent serving engine: writer
// threads ingest through EstimatorService (publishing on the insert pacer)
// while reader threads answer mixed typed-query batches from the published
// epoch views. Produces the committed BENCH_serving.json artifact (see
// docs/BENCHMARKS.md): per-row reader/writer counts, per-batch latency
// percentiles (p50/p99 µs), aggregate queries/second, writer ingest rate,
// epochs published, and the cache hit rate — one row with the result cache
// disabled and one with it enabled, so the artifact shows what the cache
// buys under re-probed workloads.
//
// No google-benchmark dependency: plain steady_clock timing, so the binary
// builds everywhere and CI can always produce the artifact. The "host" block
// records hardware_concurrency; on small containers reader/writer threads
// timeshare and the QPS numbers are self-explaining.
//
// Usage: perf_serving [--n=2000000] [--readers=4] [--writers=2] [--batch=64]
//                     [--batches=400] [--publish_interval=65536]
//                     [--out=BENCH_serving.json] [--check]
//
// --check turns the serving correctness contracts into gates (exit 1 on
// violation):
//   * epoch-pinning bit-identity — sampled concurrent batches are re-answered
//     serially through the SAME held view after the run quiesces and must
//     match bitwise (a reader's answers never depend on what writers did
//     concurrently);
//   * cache transparency — a cache-enabled service over a fixed stream must
//     answer a mixed workload (twice, so the second pass hits) bitwise
//     identically to a cache-disabled service over the same stream.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/query_workload.hpp"
#include "serving/estimator_service.hpp"
#include "stats/rng.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace {

using namespace wde;

constexpr size_t kWriterBlock = 4096;  // values per writer admission

selectivity::EstimatorSpec ServingSpec() {
  selectivity::EstimatorSpec spec;
  spec.tag = "sharded";
  spec.sharded_inner_tag = "equi-width";
  spec.buckets = 256;
  spec.shards = 4;
  spec.block_size = kWriterBlock;
  return spec;
}

std::unique_ptr<serving::EstimatorService> MakeService(
    const serving::ServiceOptions& options) {
  Result<std::unique_ptr<serving::EstimatorService>> service =
      serving::EstimatorService::Create(ServingSpec(), options);
  WDE_CHECK(service.ok(), service.status().ToString().c_str());
  return std::move(service).value();
}

/// One sampled concurrent batch: the view the reader answered from, pinned
/// by the held shared_ptr, plus what it answered — the --check gate replays
/// it serially after quiesce.
struct Sample {
  serving::EstimatorService::View view;
  std::vector<selectivity::Query> queries;
  std::vector<double> answers;
};

struct LoadResult {
  double seconds = 0.0;
  size_t total_queries = 0;
  size_t values_ingested = 0;
  uint64_t final_epoch = 0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double mean_us = 0.0;
  double cache_hit_rate = 0.0;
  std::vector<Sample> samples;
};

/// Runs `readers` reader threads for `batches` mixed batches each against
/// `writers` ingest threads; readers re-probe from a fixed pool of workload
/// batches so the cache-enabled row sees realistic hot-query repetition.
LoadResult RunMixedLoad(serving::EstimatorService& service, int readers,
                        int writers, size_t batch, size_t batches,
                        size_t prefill, size_t stream_cap) {
  stats::Rng prefill_rng(11);
  std::vector<double> warm(prefill);
  for (double& x : warm) x = prefill_rng.UniformDouble();
  service.InsertBatch(warm);
  service.Publish();

  // Pre-generate everything measured code touches: per-reader query-batch
  // pools (16 distinct batches re-probed round-robin) and per-writer blocks.
  std::vector<std::vector<std::vector<selectivity::Query>>> pools(
      static_cast<size_t>(readers));
  for (int r = 0; r < readers; ++r) {
    stats::Rng rng(100 + static_cast<uint64_t>(r));
    for (int p = 0; p < 16; ++p) {
      pools[static_cast<size_t>(r)].push_back(
          selectivity::MixedQueryWorkload(rng, batch, 0.0, 1.0));
    }
  }

  std::atomic<bool> stop_writers{false};
  std::atomic<size_t> ingested{0};
  std::vector<std::vector<double>> latencies(static_cast<size_t>(readers));
  std::vector<std::vector<Sample>> sampled(static_cast<size_t>(readers));

  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(writers + readers));
  for (int w = 0; w < writers; ++w) {
    threads.emplace_back([&, w] {
      stats::Rng rng(200 + static_cast<uint64_t>(w));
      std::vector<double> block(kWriterBlock);
      while (!stop_writers.load(std::memory_order_relaxed) &&
             ingested.load(std::memory_order_relaxed) < stream_cap) {
        for (double& x : block) x = rng.UniformDouble();
        service.InsertBatch(block);
        ingested.fetch_add(block.size(), std::memory_order_relaxed);
      }
    });
  }
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      const auto& pool = pools[static_cast<size_t>(r)];
      std::vector<double> out(batch);
      latencies[static_cast<size_t>(r)].reserve(batches);
      for (size_t b = 0; b < batches; ++b) {
        const std::vector<selectivity::Query>& queries = pool[b % pool.size()];
        const auto t0 = std::chrono::steady_clock::now();
        service.Answer(queries, out);
        const auto t1 = std::chrono::steady_clock::now();
        latencies[static_cast<size_t>(r)].push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
        if (b % 64 == 0) {
          // Pin the CURRENT view and what this batch would answer through it
          // for the post-quiesce replay gate. (The timed Answer() above may
          // have straddled a publish; this pinned pair cannot.)
          Sample sample;
          sample.view = service.CurrentView();
          sample.queries = queries;
          sample.answers.resize(queries.size());
          sample.view.estimator->Answer(sample.queries, sample.answers);
          sampled[static_cast<size_t>(r)].push_back(std::move(sample));
        }
      }
    });
  }
  // Readers bound the schedule; writers stop when the last reader finishes.
  for (size_t t = threads.size(); t-- > static_cast<size_t>(writers);) {
    threads[t].join();
    threads.pop_back();
  }
  stop_writers.store(true, std::memory_order_relaxed);
  for (std::thread& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();

  LoadResult result;
  result.seconds = std::chrono::duration<double>(end - start).count();
  result.total_queries = static_cast<size_t>(readers) * batches * batch;
  result.values_ingested = ingested.load();
  result.final_epoch = service.epoch();
  std::vector<double> all;
  for (const std::vector<double>& per_reader : latencies) {
    all.insert(all.end(), per_reader.begin(), per_reader.end());
  }
  std::sort(all.begin(), all.end());
  const auto percentile = [&](double p) {
    const size_t index = std::min(
        all.size() - 1, static_cast<size_t>(p * static_cast<double>(all.size())));
    return all[index];
  };
  result.p50_us = percentile(0.50);
  result.p99_us = percentile(0.99);
  double sum = 0.0;
  for (double v : all) sum += v;
  result.mean_us = sum / static_cast<double>(all.size());
  const serving::CacheStats stats = service.cache_stats();
  const uint64_t probes = stats.hits + stats.misses;
  result.cache_hit_rate =
      probes == 0 ? 0.0
                  : static_cast<double>(stats.hits) / static_cast<double>(probes);
  for (std::vector<Sample>& per_reader : sampled) {
    for (Sample& sample : per_reader) result.samples.push_back(std::move(sample));
  }
  return result;
}

/// Gate: every sampled (view, queries, answers) triple replays bitwise
/// identically through the same pinned view now that all writers are gone.
size_t CountReplayDivergences(const std::vector<Sample>& samples) {
  size_t divergences = 0;
  std::vector<double> replay;
  for (const Sample& sample : samples) {
    replay.resize(sample.queries.size());
    sample.view.estimator->Answer(sample.queries, replay);
    if (replay != sample.answers) ++divergences;
  }
  return divergences;
}

/// Gate: cache-enabled ≡ cache-disabled over an identical fixed stream,
/// two passes so the second is served from cache.
bool CacheTransparencyHolds(size_t batch) {
  serving::ServiceOptions cached;
  cached.publish_interval = 0;
  serving::ServiceOptions uncached = cached;
  uncached.cache_shards = 0;
  std::unique_ptr<serving::EstimatorService> with_cache = MakeService(cached);
  std::unique_ptr<serving::EstimatorService> without_cache =
      MakeService(uncached);
  stats::Rng rng(31);
  std::vector<double> xs(200000);
  for (double& x : xs) x = rng.UniformDouble();
  with_cache->InsertBatch(xs);
  without_cache->InsertBatch(xs);
  with_cache->Publish();
  without_cache->Publish();
  stats::Rng query_rng(32);
  const std::vector<selectivity::Query> queries =
      selectivity::MixedQueryWorkload(query_rng, std::max<size_t>(batch, 256),
                                      0.0, 1.0);
  std::vector<double> want(queries.size()), got(queries.size());
  without_cache->Answer(queries, want);
  for (int pass = 0; pass < 2; ++pass) {
    with_cache->Answer(queries, got);
    if (got != want) return false;
  }
  return true;
}

struct Row {
  std::string mode;
  LoadResult load;
};

}  // namespace

int main(int argc, char** argv) {
  // Build-type gate first: a debug binary must never gate CI or
  // regenerate committed numbers (see bench_common.hpp).
  if (!bench::perf::CheckBuildForTiming(ArgBool(argc, argv, "check"))) {
    return 2;
  }
  const size_t n = ArgSize(argc, argv, "n", 2000000);
  const int readers = static_cast<int>(ArgSize(argc, argv, "readers", 4));
  const int writers = static_cast<int>(ArgSize(argc, argv, "writers", 2));
  const size_t batch = ArgSize(argc, argv, "batch", 64);
  const size_t batches = ArgSize(argc, argv, "batches", 400);
  const size_t publish_interval =
      ArgSize(argc, argv, "publish_interval", 65536);
  const std::string out_path = ArgString(argc, argv, "out", "BENCH_serving.json");
  WDE_CHECK(readers > 0 && writers > 0 && batch > 0 && batches > 0,
            "--readers/--writers/--batch/--batches must be positive");
  const size_t prefill = n / 4;

  std::vector<Row> rows;
  for (const bool cache_on : {false, true}) {
    serving::ServiceOptions options;
    options.publish_interval = publish_interval;
    if (!cache_on) options.cache_shards = 0;
    std::unique_ptr<serving::EstimatorService> service = MakeService(options);
    Row row;
    row.mode = cache_on ? "cache" : "no-cache";
    row.load =
        RunMixedLoad(*service, readers, writers, batch, batches, prefill, n);
    std::printf(
        "%s: %.3fs  %.3g queries/s  p50 %.1fus  p99 %.1fus  "
        "ingest %.3g values/s  epochs %llu  hit_rate %.2f\n",
        row.mode.c_str(), row.load.seconds,
        static_cast<double>(row.load.total_queries) / row.load.seconds,
        row.load.p50_us, row.load.p99_us,
        static_cast<double>(row.load.values_ingested) / row.load.seconds,
        static_cast<unsigned long long>(row.load.final_epoch),
        row.load.cache_hit_rate);
    rows.push_back(std::move(row));
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  WDE_CHECK(out != nullptr, "cannot open --out path for writing");
  std::fprintf(out, "{\n  \"bench\": \"perf_serving\",\n");
  std::fprintf(out,
               "  \"workload\": {\"estimator\": \"sharded(equi-width x256, "
               "K=4)\", \"stream_cap\": %zu, \"prefill\": %zu, \"readers\": "
               "%d, \"writers\": %d, \"batch\": %zu, \"batches_per_reader\": "
               "%zu, \"publish_interval\": %zu, \"writer_block\": %zu},\n",
               n, prefill, readers, writers, batch, batches, publish_interval,
               kWriterBlock);
  wde::bench::perf::WriteHostJson(out);
  std::fprintf(out, "  \"results\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const LoadResult& load = rows[i].load;
    std::fprintf(
        out,
        "    {\"mode\": \"%s\", \"seconds\": %.6f, \"queries_per_second\": "
        "%.1f, \"batch_latency_p50_us\": %.2f, \"batch_latency_p99_us\": "
        "%.2f, \"batch_latency_mean_us\": %.2f, \"values_per_second\": %.1f, "
        "\"epochs_published\": %llu, \"cache_hit_rate\": %.4f}%s\n",
        rows[i].mode.c_str(), load.seconds,
        static_cast<double>(load.total_queries) / load.seconds, load.p50_us,
        load.p99_us, load.mean_us,
        static_cast<double>(load.values_ingested) / load.seconds,
        static_cast<unsigned long long>(load.final_epoch), load.cache_hit_rate,
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (ArgBool(argc, argv, "check")) {
    int violations = 0;
    for (const Row& row : rows) {
      const size_t divergences = CountReplayDivergences(row.load.samples);
      if (divergences != 0) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s: %zu of %zu sampled batches diverge "
                     "from their pinned epoch view after quiesce\n",
                     row.mode.c_str(), divergences, row.load.samples.size());
        ++violations;
      }
    }
    if (!CacheTransparencyHolds(batch)) {
      std::fprintf(stderr,
                   "CHECK FAILED: cache-enabled answers differ from "
                   "cache-disabled answers over an identical stream\n");
      ++violations;
    }
    if (violations > 0) return 1;
    std::printf("serving correctness contract checks passed\n");
  }
  return 0;
}
