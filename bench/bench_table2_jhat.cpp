// Reproduces Table 2 of the paper: mean selected top resolution level ĵ1 of
// the HTCV/STCV procedures across the three dependence cases (M = 500
// replicates of n = 2^10 observations, sine+uniform target density).
//
// Paper's values: HTCV 5.168/5.14/5.13, STCV 5.14/5.04/5.13.
// Expected shape: ĵ1 far below j* = 10, and no significant difference
// between the dependence cases.
#include "bench_common.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config = harness::ExperimentConfig::FromEnv();
  bench::PrintHeader("Table 2: mean cross-validated top level j1-hat", config);

  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  harness::TextTable table({"estimator", "Case 1 (iid)", "Case 2 (logistic)",
                            "Case 3 (MA)"});
  std::vector<std::string> ht_row{"HTCV"};
  std::vector<std::string> st_row{"STCV"};
  for (harness::DependenceCase c : harness::kAllCases) {
    const processes::TransformedProcess process = harness::MakeCase(c, density);
    const std::vector<std::vector<double>> rows = harness::CollectCurves(
        config.replicates, config.seed, config.threads, 2,
        [&](stats::Rng& rng, int) {
          const std::vector<double> xs = process.Sample(config.n, rng);
          const bench::CvFits fits = bench::FitBothCv(xs);
          return std::vector<double>{static_cast<double>(fits.ht_cv.j1_hat),
                                     static_cast<double>(fits.st_cv.j1_hat)};
        });
    double ht_mean = 0.0;
    double st_mean = 0.0;
    for (const std::vector<double>& row : rows) {
      ht_mean += row[0];
      st_mean += row[1];
    }
    ht_mean /= static_cast<double>(rows.size());
    st_mean /= static_cast<double>(rows.size());
    ht_row.push_back(Format("%.3f", ht_mean));
    st_row.push_back(Format("%.3f", st_mean));
  }
  table.AddRow(ht_row);
  table.AddRow(st_row);
  table.Print(std::cout);
  std::cout << "\npaper (Table 2): HTCV 5.168/5.14/5.13 | STCV 5.14/5.04/5.13\n"
               "expected shape: j1-hat well below j* = log2(n); "
               "case-independent.\n";
  return 0;
}
