// Reproduces Figure 8 of the paper: integrated k-th moments of the
// estimators on the LSV maps,
//   M(k) = ∫_{0.01}^{1} (E[g^k(t)])^{1/k} dt,   k = 1..20,
// reported as "fluctuations" M(k)/M(1) for the STCV wavelet estimator and
// the rule-of-thumb Epanechnikov kernel estimator, per α' = 0.1 .. 0.9.
// (E[g^k] can dip below zero for the signed wavelet estimate at odd k; it is
// floored at 0 before the k-th root, which only affects near-zero regions.)
//
// Expected shape (Proposition 5.1 empirically): for small α' the two
// estimators' moment curves grow similarly and slowly; as α' → 1 (covariance
// decay r^{1−1/α'} too slow for Assumption (D)), the wavelet estimator's
// moments blow up faster with k than the kernel estimator's.
#include "bench_common.hpp"

#include <cmath>

#include "kernel/bandwidth.hpp"
#include "kernel/kde.hpp"
#include "numerics/integration.hpp"
#include "processes/lsv_map.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config =
      harness::ExperimentConfig::FromEnv(1024, 100, 199);
  bench::PrintHeader("Figure 8: integrated moments (fluctuations) on LSV maps",
                     config);

  constexpr int kMaxMoment = 20;
  const double lo = 0.01;
  const double hi = 1.0;
  const size_t g = config.grid_points;
  const double dx = (hi - lo) / static_cast<double>(g - 1);
  const kernel::Kernel epanechnikov(kernel::KernelType::kEpanechnikov);

  std::vector<double> k_axis(kMaxMoment);
  for (int k = 1; k <= kMaxMoment; ++k) k_axis[static_cast<size_t>(k - 1)] = k;

  for (double alpha : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
    const processes::LsvMapProcess process(alpha);
    // Accumulate E[g^k(t)] on the grid for both estimators:
    // per replicate, 2 estimators × kMaxMoment × g powers, summed via
    // MeanCurve.
    const std::vector<double> mean_pows = harness::MeanCurve(
        config.replicates, config.seed, config.threads,
        static_cast<size_t>(2 * kMaxMoment) * g, [&](stats::Rng& rng, int) {
          // See bench_fig7: redraw paths that never leave [0, 0.01).
          std::vector<double> clipped;
          for (int attempt = 0; attempt < 32 && clipped.size() < 32; ++attempt) {
            clipped.clear();
            const std::vector<double> xs = process.Path(config.n, rng);
            for (double v : xs) {
              if (v >= lo && v <= hi) clipped.push_back(v);
            }
          }
          WDE_CHECK_GE(clipped.size(), 32u, "LSV orbit never left [0, 0.01)");
          core::AdaptiveOptions options;
          options.kind = core::ThresholdKind::kSoft;
          options.fit.domain_lo = lo;
          options.fit.domain_hi = hi;
          Result<core::AdaptiveDensityEstimate> fit =
              core::FitAdaptive(bench::Sym8Basis(), clipped, options);
          WDE_CHECK(fit.ok());
          const std::vector<double> wavelet =
              fit->estimate.EvaluateOnGrid(lo, hi, g);
          const double h = kernel::RuleOfThumbBandwidth(clipped);
          const std::vector<double> kde =
              kernel::KernelDensityEstimator::Create(epanechnikov, h, clipped)
                  ->EvaluateOnGrid(lo, hi, g);
          std::vector<double> row;
          row.reserve(static_cast<size_t>(2 * kMaxMoment) * g);
          for (const std::vector<double>* est : {&wavelet, &kde}) {
            std::vector<double> power(est->begin(), est->end());
            for (int k = 1; k <= kMaxMoment; ++k) {
              row.insert(row.end(), power.begin(), power.end());
              for (size_t i = 0; i < g; ++i) power[i] *= (*est)[i];
            }
          }
          return row;
        });
    std::vector<std::pair<std::string, std::vector<double>>> series;
    const char* names[2] = {"stcv_wavelet", "kernel_rot"};
    for (int e = 0; e < 2; ++e) {
      std::vector<double> integrated(kMaxMoment);
      for (int k = 1; k <= kMaxMoment; ++k) {
        std::vector<double> rooted(g);
        const size_t base = (static_cast<size_t>(e) * kMaxMoment +
                             static_cast<size_t>(k - 1)) * g;
        for (size_t i = 0; i < g; ++i) {
          rooted[i] = std::pow(std::max(mean_pows[base + i], 0.0), 1.0 / k);
        }
        integrated[static_cast<size_t>(k - 1)] =
            numerics::TrapezoidIntegral(rooted, dx);
      }
      const double normalizer = integrated[0];
      std::vector<double> fluctuations(kMaxMoment);
      for (int k = 0; k < kMaxMoment; ++k) {
        fluctuations[static_cast<size_t>(k)] =
            integrated[static_cast<size_t>(k)] / normalizer;
      }
      series.emplace_back(names[e], std::move(fluctuations));
    }
    harness::PrintSeries(std::cout,
                         Format("Figure 8 / LSV alpha'=%.1f: M(k)/M(1) vs k",
                                alpha),
                         k_axis, series);
    std::cout << '\n';
  }
  std::cout << "expected shape: wavelet fluctuation curves rise faster than "
               "kernel ones as alpha' grows (Assumption (D) failure).\n";
  return 0;
}
