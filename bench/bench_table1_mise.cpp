// Reproduces Table 1 of the paper: MISE (Monte-Carlo, M = 500, n = 2^10) of
// the hard- and soft-threshold cross-validated estimators across the three
// weak-dependence cases, target density = sine+uniform mixture.
//
// Paper's values (their density parameters):
//            Case 1     Case 2     Case 3
//   HTCV     0.096696   0.077064   0.097193
//   STCV     0.082934   0.06586    0.097184
// Expected shape: all three cases the same order; STCV <= HTCV in each case.
#include "bench_common.hpp"

int main() {
  using namespace wde;
  const harness::ExperimentConfig config = harness::ExperimentConfig::FromEnv();
  bench::PrintHeader("Table 1: MISE of HTCV/STCV under weak dependence", config);

  auto density = std::make_shared<const processes::SineUniformMixtureDensity>();
  const std::vector<double> truth = density->PdfOnGrid(config.grid_points);
  const double dx = 1.0 / static_cast<double>(config.grid_points - 1);

  harness::TextTable table({"estimator", "Case 1 (iid)", "Case 2 (logistic)",
                            "Case 3 (MA)"});
  std::vector<std::string> ht_row{"HTCV"};
  std::vector<std::string> st_row{"STCV"};
  for (harness::DependenceCase c : harness::kAllCases) {
    const processes::TransformedProcess process = harness::MakeCase(c, density);
    const std::vector<std::vector<double>> rows = harness::CollectCurves(
        config.replicates, config.seed, config.threads, 2,
        [&](stats::Rng& rng, int) {
          const std::vector<double> xs = process.Sample(config.n, rng);
          const bench::CvFits fits = bench::FitBothCv(xs);
          const std::vector<double> ht =
              fits.ht.EvaluateOnGrid(0.0, 1.0, config.grid_points);
          const std::vector<double> st =
              fits.st.EvaluateOnGrid(0.0, 1.0, config.grid_points);
          return std::vector<double>{
              stats::IntegratedSquaredError(ht, truth, dx),
              stats::IntegratedSquaredError(st, truth, dx)};
        });
    double ht_mise = 0.0;
    double st_mise = 0.0;
    for (const std::vector<double>& row : rows) {
      ht_mise += row[0];
      st_mise += row[1];
    }
    ht_mise /= static_cast<double>(rows.size());
    st_mise /= static_cast<double>(rows.size());
    ht_row.push_back(Format("%.6f", ht_mise));
    st_row.push_back(Format("%.6f", st_mise));
  }
  table.AddRow(ht_row);
  table.AddRow(st_row);
  table.Print(std::cout);
  std::cout << "\npaper (Table 1): HTCV 0.0967/0.0771/0.0972 | "
               "STCV 0.0829/0.0659/0.0972\n"
               "expected shape: same order across cases; STCV <= HTCV.\n";
  return 0;
}
