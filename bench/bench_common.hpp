#ifndef WDE_BENCH_BENCH_COMMON_HPP_
#define WDE_BENCH_BENCH_COMMON_HPP_

// Shared plumbing for the reproduction benches (one binary per table/figure
// of the paper). Each bench prints: a header identifying the experiment, the
// effective configuration, and a table (paper tables) or labelled series
// blocks (paper figures). Absolute numbers depend on our concrete density
// parameter choices (the paper gives its densities only as plots); the
// qualitative shapes are the reproduction targets — see EXPERIMENTS.md.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <iostream>
#include <limits>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/adaptive.hpp"
#include "harness/cases.hpp"
#include "harness/experiment_config.hpp"
#include "harness/monte_carlo.hpp"
#include "harness/table.hpp"
#include "processes/target_density.hpp"
#include "stats/loss.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"
#include "wavelet/scaled_function.hpp"

namespace wde {
namespace bench {

/// The paper's wavelet: Daubechies Symmlet with N = 8 vanishing moments.
inline const wavelet::WaveletBasis& Sym8Basis() {
  static const wavelet::WaveletBasis basis = []() {
    Result<wavelet::WaveletFilter> filter = wavelet::WaveletFilter::Symmlet(8);
    WDE_CHECK(filter.ok());
    Result<wavelet::WaveletBasis> b = wavelet::WaveletBasis::Create(*filter, 12);
    WDE_CHECK(b.ok());
    return *b;
  }();
  return basis;
}

inline void PrintHeader(const std::string& experiment,
                        const harness::ExperimentConfig& config) {
  std::cout << "==== " << experiment << " ====\n";
  std::cout << "wavelet: sym8 | " << config.Describe() << "\n\n";
}

inline std::vector<double> Grid01(size_t points) {
  std::vector<double> x(points);
  for (size_t i = 0; i < points; ++i) {
    x[i] = static_cast<double>(i) / static_cast<double>(points - 1);
  }
  return x;
}

/// Fits both CV estimators from one pass over the data (the coefficients are
/// shared between HTCV and STCV, as in the paper's simulations).
struct CvFits {
  core::CrossValidationResult ht_cv;
  core::CrossValidationResult st_cv;
  core::WaveletEstimate ht;
  core::WaveletEstimate st;
};

inline CvFits FitBothCv(const std::vector<double>& xs) {
  Result<core::WaveletDensityFit> fit =
      core::WaveletDensityFit::Fit(Sym8Basis(), xs);
  WDE_CHECK(fit.ok(), fit.status().ToString().c_str());
  core::CrossValidationResult ht_cv =
      core::CrossValidate(fit->coefficients(), core::ThresholdKind::kHard);
  core::CrossValidationResult st_cv =
      core::CrossValidate(fit->coefficients(), core::ThresholdKind::kSoft);
  core::WaveletEstimate ht = fit->Estimate(ht_cv.Schedule(), core::ThresholdKind::kHard);
  core::WaveletEstimate st = fit->Estimate(st_cv.Schedule(), core::ThresholdKind::kSoft);
  return CvFits{std::move(ht_cv), std::move(st_cv), std::move(ht), std::move(st)};
}

// ---------------------------------------------------------------------------
// Chrono/JSON perf-driver plumbing, shared by the perf_* drivers so every
// emitter records the same host metadata (hardware_concurrency, compiler,
// build flags) and times with the same clock. Committed BENCH_*.json files
// are interpreted against this block: flat scaling curves on a 1-core
// container are expected, not bugs.
// ---------------------------------------------------------------------------

/// The optimization flags the binary was compiled with; injected by
/// bench/CMakeLists.txt for the perf drivers, "unknown" elsewhere.
#ifndef WDE_BENCH_BUILD_FLAGS
#define WDE_BENCH_BUILD_FLAGS "unknown"
#endif

namespace perf {

inline double SecondsBetween(std::chrono::steady_clock::time_point start,
                             std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

inline double SecondsSince(std::chrono::steady_clock::time_point start) {
  return SecondsBetween(start, std::chrono::steady_clock::now());
}

/// Best-of-N wall time of fn(); best-of (not mean) because the drivers run
/// on shared CI machines where the noise is one-sided.
template <typename Fn>
double BestOfSeconds(size_t repeats, Fn&& fn) {
  double best = std::numeric_limits<double>::infinity();
  for (size_t r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    fn();
    best = std::min(best, SecondsSince(start));
  }
  return best;
}

inline const char* CompilerVersion() {
#if defined(__VERSION__)
  return "" __VERSION__;
#else
  return "unknown";
#endif
}

/// Whether this binary is an optimized build. NDEBUG is the one signal the
/// toolchain gives portably, and it is the one that matters: assertions-on
/// builds spend their time in WDE_CHECKs, not the measured kernels.
inline constexpr bool kReleaseBuild =
#if defined(NDEBUG)
    true;
#else
    false;
#endif

inline const char* BuildType() { return kReleaseBuild ? "release" : "debug"; }

/// Build-type gate every chrono driver runs first. A debug binary refuses
/// --check outright (its timings would gate CI on assertion overhead, and a
/// committed JSON regenerated from it would be silently wrong) and loudly
/// stamps plain timing runs. Returns false when the driver must exit
/// non-zero.
inline bool CheckBuildForTiming(bool check_mode) {
  if (kReleaseBuild) return true;
  if (check_mode) {
    std::fprintf(stderr,
                 "FAIL: --check requires a release (NDEBUG) build; this "
                 "binary is a debug build. Rebuild with --preset release.\n");
    return false;
  }
  std::fprintf(stderr,
               "WARNING: debug (assertions-on) build; timings below are NOT "
               "comparable to committed BENCH_*.json numbers.\n");
  return true;
}

/// Build-type gate for the google-benchmark drivers, which have no --check
/// mode: writing a JSON baseline (--benchmark_out=...) is how committed
/// BENCH_*.json artifacts are produced, so a debug binary refuses it outright
/// — the stale debug BENCH_selectivity_batch.json this guards against was
/// committed exactly that way — and loudly stamps plain timing runs. Returns
/// false when the driver must exit non-zero.
inline bool CheckBuildForBaseline(int argc, char** argv) {
  if (kReleaseBuild) return true;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      std::fprintf(stderr,
                   "FAIL: --benchmark_out requires a release (NDEBUG) build; "
                   "this binary is a debug build and its numbers must never "
                   "become a committed baseline. Rebuild with "
                   "--preset release.\n");
      return false;
    }
  }
  std::fprintf(stderr,
               "WARNING: debug (assertions-on) build; timings below are NOT "
               "comparable to committed BENCH_*.json numbers.\n");
  return true;
}

/// Writes the uniform `"host": {...},` JSON line (with trailing comma).
inline void WriteHostJson(std::FILE* out) {
  std::fprintf(out,
               "  \"host\": {\"hardware_concurrency\": %u, "
               "\"compiler\": \"%s\", \"build_flags\": \"%s\", "
               "\"build_type\": \"%s\"},\n",
               std::thread::hardware_concurrency(), CompilerVersion(),
               WDE_BENCH_BUILD_FLAGS, BuildType());
}

}  // namespace perf
}  // namespace bench
}  // namespace wde

#endif  // WDE_BENCH_BENCH_COMMON_HPP_
