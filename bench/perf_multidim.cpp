// Multi-dimensional estimation bench: rectangle-query throughput and
// accuracy of the two registered 2-D estimators — the prefix-sum grid
// ("grid2d") and the product/adaptive KDE ("kde2d-prod") — at an equal
// sample budget (both ingest the same stream; the committed rows carry each
// estimator's snapshot size so the state budgets are visible too).
//
// Section 1 (throughput): batched Answer() over a uniform rect workload vs
// the scalar per-query loop, per tag, on the anti-product data set. The
// batch path must be bit-identical to the scalar loop (the taxonomy
// contract, here exercised through kRect), and the O(1)-per-rect grid must
// out-run the O(window)-per-rect KDE.
//
// Section 2 (accuracy): mean absolute error and mean q-error against exact
// truth (the fraction of ingested observations inside each rect) on two
// workloads — a correlated Gaussian mixture and the anti-product
// distribution, whose joint mass rides the diagonals while its marginals
// stay near-uniform. Each estimator's own product-of-marginals answer
// (marginal0 × marginal1) is scored as a baseline row: the gap between the
// joint and the product rows is exactly what native 2-D estimation buys.
//
// No google-benchmark dependency: plain steady_clock timing, like the other
// chrono drivers. Single-threaded.
//
// Usage: perf_multidim [--n=200000] [--queries=4096] [--repeats=3]
//                      [--out=BENCH_multidim.json] [--check]
//
// --check turns the contracts into gates: exit 1 if any batched rect answer
// differs bitwise from the scalar loop, if grid2d does not out-run
// kde2d-prod on rect throughput, if either estimator's joint answers fail to
// beat its own product-of-marginals baseline on the anti-product workload,
// or if either mean absolute error exceeds 0.05. CI runs with --check on the
// release build; debug binaries refuse --check outright (bench_common.hpp).
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "io/serialize.hpp"
#include "multidim/synthetic2d.hpp"
#include "selectivity/estimator_registry.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/selectivity_estimator.hpp"
#include "stats/rng.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace {

using namespace wde;

std::unique_ptr<selectivity::SelectivityEstimator> Make2d(
    const std::string& tag) {
  selectivity::EstimatorSpec spec;
  spec.tag = tag;
  spec.dims = 2;
  spec.grid_log2 = 6;        // 64 x 64 cells
  spec.refit_interval = 4096;
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> est =
      selectivity::MakeEstimator(spec);
  WDE_CHECK(est.ok(), est.status().ToString().c_str());
  return std::move(est).value();
}

struct RectQuery {
  double lo0, hi0, lo1, hi1;
};

std::vector<RectQuery> RectWorkload(uint64_t seed, size_t count) {
  stats::Rng rng(seed);
  std::vector<RectQuery> out(count);
  for (RectQuery& q : out) {
    q.lo0 = rng.UniformDouble();
    q.hi0 = rng.UniformDouble();
    if (q.hi0 < q.lo0) std::swap(q.lo0, q.hi0);
    q.lo1 = rng.UniformDouble();
    q.hi1 = rng.UniformDouble();
    if (q.hi1 < q.lo1) std::swap(q.lo1, q.hi1);
  }
  return out;
}

std::vector<selectivity::Query> AsQueries(const std::vector<RectQuery>& rects) {
  std::vector<selectivity::Query> out;
  out.reserve(rects.size());
  for (const RectQuery& r : rects) {
    out.push_back(selectivity::Query::Rect(r.lo0, r.hi0, r.lo1, r.hi1));
  }
  return out;
}

/// Exact truth: the fraction of ingested observations inside the rect.
std::vector<double> ExactFractions(const std::vector<double>& interleaved,
                                   const std::vector<RectQuery>& rects) {
  const size_t n = interleaved.size() / 2;
  std::vector<double> out(rects.size());
  for (size_t q = 0; q < rects.size(); ++q) {
    const RectQuery& r = rects[q];
    size_t hits = 0;
    for (size_t i = 0; i < n; ++i) {
      const double x = interleaved[2 * i];
      const double y = interleaved[2 * i + 1];
      if (x >= r.lo0 && x <= r.hi0 && y >= r.lo1 && y <= r.hi1) ++hits;
    }
    out[q] = static_cast<double>(hits) / static_cast<double>(n);
  }
  return out;
}

struct Accuracy {
  double mean_abs_error = 0.0;
  double mean_qerror = 0.0;
};

Accuracy Score(const std::vector<double>& estimates,
               const std::vector<double>& truth) {
  constexpr double kFloor = 1e-4;
  Accuracy acc;
  for (size_t i = 0; i < estimates.size(); ++i) {
    acc.mean_abs_error += std::fabs(estimates[i] - truth[i]);
    const double lo = std::max(std::min(estimates[i], truth[i]), kFloor);
    const double hi = std::max(std::max(estimates[i], truth[i]), kFloor);
    acc.mean_qerror += hi / lo;
  }
  const double m = static_cast<double>(estimates.size());
  acc.mean_abs_error /= m;
  acc.mean_qerror /= m;
  return acc;
}

size_t SnapshotBytes(const selectivity::SelectivityEstimator& est) {
  io::VectorSink sink;
  WDE_CHECK_OK(selectivity::SaveEstimatorSnapshot(est, sink));
  return sink.bytes().size();
}

struct ThroughputRow {
  std::string estimator;
  size_t queries = 0;
  double batch_seconds = 0.0;
  double batch_qps = 0.0;
  double scalar_qps = 0.0;
  bool batch_equals_scalar = true;
};

struct AccuracyRow {
  std::string estimator;
  std::string workload;
  Accuracy joint;
  Accuracy product;  // the estimator's own marginal0 x marginal1 baseline
  size_t snapshot_bytes = 0;
};

}  // namespace

int main(int argc, char** argv) {
  if (!bench::perf::CheckBuildForTiming(ArgBool(argc, argv, "check"))) {
    return 2;
  }
  const size_t n = ArgSize(argc, argv, "n", 200000);
  const size_t num_queries =
      std::max<size_t>(16, ArgSize(argc, argv, "queries", 4096));
  const size_t repeats = std::max<size_t>(1, ArgSize(argc, argv, "repeats", 3));
  const std::string out_path =
      ArgString(argc, argv, "out", "BENCH_multidim.json");

  // Two data sets, both n observations on [0, 1]^2, interleaved.
  stats::Rng mixture_rng(1);
  const std::vector<multidim::GaussianComponent2d> components = {
      {0.45, 0.30, 0.35, 0.08, 0.06, 0.6},
      {0.35, 0.70, 0.60, 0.07, 0.09, -0.5},
      {0.20, 0.50, 0.80, 0.12, 0.05, 0.0}};
  std::vector<double> mixture;
  multidim::SampleGaussianMixture2d(mixture_rng, components, n, &mixture);
  stats::Rng anti_rng(2);
  std::vector<double> anti;
  multidim::SampleAntiProduct2d(anti_rng, n, 0.03, &anti);

  const std::vector<RectQuery> rects = RectWorkload(5, num_queries);
  const std::vector<selectivity::Query> queries = AsQueries(rects);

  // -------------------------------------------------------------------------
  // Section 1: rect throughput (anti-product data), batch vs scalar.
  // -------------------------------------------------------------------------
  std::vector<ThroughputRow> throughput_rows;
  for (const char* tag : {"grid2d", "kde2d-prod"}) {
    std::unique_ptr<selectivity::SelectivityEstimator> est = Make2d(tag);
    est->InsertBatch(anti);
    est->ForceRefit();

    std::vector<double> batch(queries.size());
    double batch_best = 0.0, scalar_best = 0.0;
    for (size_t r = 0; r < repeats; ++r) {
      const auto batch_start = std::chrono::steady_clock::now();
      est->Answer(queries, batch);
      const double batch_s = bench::perf::SecondsSince(batch_start);
      if (r == 0 || batch_s < batch_best) batch_best = batch_s;
      const auto scalar_start = std::chrono::steady_clock::now();
      double sink = 0.0;
      for (const selectivity::Query& q : queries) sink += est->Answer(q);
      const double scalar_s = bench::perf::SecondsSince(scalar_start);
      if (r == 0 || scalar_s < scalar_best) scalar_best = scalar_s;
      volatile double guard = sink;  // keep the scalar loop from folding away
      (void)guard;
    }
    bool bitwise = true;
    for (size_t i = 0; i < queries.size(); ++i) {
      bitwise = bitwise && batch[i] == est->Answer(queries[i]);
    }
    ThroughputRow row;
    row.estimator = tag;
    row.queries = queries.size();
    row.batch_seconds = batch_best;
    row.batch_qps = static_cast<double>(queries.size()) / batch_best;
    row.scalar_qps = static_cast<double>(queries.size()) / scalar_best;
    row.batch_equals_scalar = bitwise;
    throughput_rows.push_back(row);
    std::printf(
        "%-10s rect throughput: batch %.3g q/s  scalar %.3g q/s  bitwise %s\n",
        tag, row.batch_qps, row.scalar_qps, bitwise ? "true" : "false");
  }

  // -------------------------------------------------------------------------
  // Section 2: accuracy vs exact truth at equal sample budget, joint vs the
  // estimator's own product-of-marginals baseline.
  // -------------------------------------------------------------------------
  std::vector<AccuracyRow> accuracy_rows;
  const std::pair<const char*, const std::vector<double>*> workloads[] = {
      {"mixture", &mixture}, {"anti-product", &anti}};
  for (const auto& [workload_name, data] : workloads) {
    const std::vector<double> truth = ExactFractions(*data, rects);
    for (const char* tag : {"grid2d", "kde2d-prod"}) {
      std::unique_ptr<selectivity::SelectivityEstimator> est = Make2d(tag);
      est->InsertBatch(*data);
      est->ForceRefit();
      std::vector<double> joint(queries.size());
      est->Answer(queries, joint);
      std::vector<double> product(queries.size());
      for (size_t i = 0; i < rects.size(); ++i) {
        const double m0 = est->Answer(
            selectivity::Query::Marginal(0, rects[i].lo0, rects[i].hi0));
        const double m1 = est->Answer(
            selectivity::Query::Marginal(1, rects[i].lo1, rects[i].hi1));
        product[i] = m0 * m1;
      }
      AccuracyRow row;
      row.estimator = tag;
      row.workload = workload_name;
      row.joint = Score(joint, truth);
      row.product = Score(product, truth);
      row.snapshot_bytes = SnapshotBytes(*est);
      accuracy_rows.push_back(row);
      std::printf(
          "%-10s %-12s joint mae %.5f qerr %.2f | product mae %.5f qerr %.2f "
          "| snapshot %zu bytes\n",
          tag, workload_name, row.joint.mean_abs_error, row.joint.mean_qerror,
          row.product.mean_abs_error, row.product.mean_qerror,
          row.snapshot_bytes);
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  WDE_CHECK(out != nullptr, "cannot open --out path for writing");
  std::fprintf(out, "{\n  \"bench\": \"perf_multidim\",\n");
  std::fprintf(out,
               "  \"workload\": {\"n\": %zu, \"queries\": %zu, "
               "\"repeats\": %zu, \"grid_log2\": 6},\n",
               n, num_queries, repeats);
  bench::perf::WriteHostJson(out);
  std::fprintf(out, "  \"rect_throughput\": [\n");
  for (size_t i = 0; i < throughput_rows.size(); ++i) {
    const ThroughputRow& row = throughput_rows[i];
    std::fprintf(out,
                 "    {\"estimator\": \"%s\", \"queries\": %zu, "
                 "\"batch_seconds\": %.6f, \"batch_qps\": %.1f, "
                 "\"scalar_qps\": %.1f, \"batch_equals_scalar\": %s}%s\n",
                 row.estimator.c_str(), row.queries, row.batch_seconds,
                 row.batch_qps, row.scalar_qps,
                 row.batch_equals_scalar ? "true" : "false",
                 i + 1 < throughput_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ],\n  \"accuracy\": [\n");
  for (size_t i = 0; i < accuracy_rows.size(); ++i) {
    const AccuracyRow& row = accuracy_rows[i];
    std::fprintf(
        out,
        "    {\"estimator\": \"%s\", \"workload\": \"%s\", "
        "\"mean_abs_error\": %.6f, \"mean_qerror\": %.4f, "
        "\"product_mean_abs_error\": %.6f, \"product_mean_qerror\": %.4f, "
        "\"snapshot_bytes\": %zu}%s\n",
        row.estimator.c_str(), row.workload.c_str(), row.joint.mean_abs_error,
        row.joint.mean_qerror, row.product.mean_abs_error,
        row.product.mean_qerror, row.snapshot_bytes,
        i + 1 < accuracy_rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  std::fclose(out);
  std::printf("wrote %s\n", out_path.c_str());

  if (ArgBool(argc, argv, "check")) {
    int violations = 0;
    for (const ThroughputRow& row : throughput_rows) {
      if (!row.batch_equals_scalar) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s batched rect answers differ from the "
                     "scalar loop\n",
                     row.estimator.c_str());
        ++violations;
      }
    }
    if (throughput_rows[0].batch_qps <= throughput_rows[1].batch_qps) {
      std::fprintf(stderr,
                   "CHECK FAILED: grid2d (%.3g q/s) did not out-run "
                   "kde2d-prod (%.3g q/s) on rect throughput\n",
                   throughput_rows[0].batch_qps, throughput_rows[1].batch_qps);
      ++violations;
    }
    for (const AccuracyRow& row : accuracy_rows) {
      if (row.joint.mean_abs_error > 0.05) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s on %s: mean abs error %.5f > 0.05\n",
                     row.estimator.c_str(), row.workload.c_str(),
                     row.joint.mean_abs_error);
        ++violations;
      }
      if (row.workload == "anti-product" &&
          row.joint.mean_abs_error >= row.product.mean_abs_error) {
        std::fprintf(stderr,
                     "CHECK FAILED: %s joint answers (mae %.5f) no better "
                     "than its product-of-marginals baseline (mae %.5f) on "
                     "the anti-product workload\n",
                     row.estimator.c_str(), row.joint.mean_abs_error,
                     row.product.mean_abs_error);
        ++violations;
      }
    }
    if (violations > 0) return 1;
    std::printf("multidim contract checks passed\n");
  }
  return 0;
}
