#include "processes/logistic_map.hpp"

#include <cmath>

namespace wde {
namespace processes {
namespace {

/// Double-precision orbits can collapse onto the absorbing fixed point 0
/// (e.g. through rounding to exactly 0.5 -> 1 -> 0). Re-inject from the
/// invariant law when that happens; the event is rare enough not to bias the
/// marginal.
double Guard(double y, stats::Rng& rng) {
  if (y > 1e-13 && y < 1.0 - 1e-13) return y;
  return LogisticMapProcess::InvariantQuantile(rng.UniformDouble());
}

}  // namespace

double LogisticMapProcess::InvariantQuantile(double u) {
  const double s = std::sin(M_PI * u / 2.0);
  return s * s;
}

std::vector<double> LogisticMapProcess::Path(size_t n, stats::Rng& rng) const {
  std::vector<double> path(n);
  double y = InvariantQuantile(rng.UniformDouble());
  for (int b = 0; b < burn_in_; ++b) y = Guard(Map(y), rng);
  for (size_t i = 0; i < n; ++i) {
    path[i] = y;
    y = Guard(Map(y), rng);
  }
  return path;
}

double LogisticMapProcess::MarginalCdf(double y) const {
  if (y <= 0.0) return 0.0;
  if (y >= 1.0) return 1.0;
  return 2.0 / M_PI * std::asin(std::sqrt(y));
}

}  // namespace processes
}  // namespace wde
