#ifndef WDE_PROCESSES_DOUBLING_MAP_HPP_
#define WDE_PROCESSES_DOUBLING_MAP_HPP_

#include "processes/process.hpp"

namespace wde {
namespace processes {

/// Andrews' (1984) example, equation (1.1) of the paper: the stationary AR(1)
/// chain X_t = (X_{t-1} + ξ_t)/2 with ξ_t iid Bernoulli(1/2). Its mixing
/// coefficients do NOT vanish (time reversal gives the doubling map
/// T(x) = 2x mod 1), yet it is φ̃-weakly dependent — the paper's motivating
/// case for abandoning mixing conditions. The invariant law is U[0,1].
class DoublingMapProcess : public RawProcess {
 public:
  explicit DoublingMapProcess(int burn_in = 64) : burn_in_(burn_in) {}

  std::vector<double> Path(size_t n, stats::Rng& rng) const override;
  double MarginalCdf(double y) const override;
  std::string name() const override { return "doubling-map-ar1"; }

 private:
  int burn_in_;
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_DOUBLING_MAP_HPP_
