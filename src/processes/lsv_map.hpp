#ifndef WDE_PROCESSES_LSV_MAP_HPP_
#define WDE_PROCESSES_LSV_MAP_HPP_

#include "processes/process.hpp"

namespace wde {
namespace processes {

/// Liverani–Saussol–Vaienti intermittent map (paper §5.5):
///   T(x) = x (1 + 2^α' x^α')  for 0 ≤ x ≤ 1/2,
///   T(x) = 2x − 1             for 1/2 < x ≤ 1,
/// with 0 < α' < 1. The neutral fixed point at 0 makes covariances decay only
/// polynomially, r^{1−1/α'}, so Assumption (D) FAILS and Proposition 5.1 shows
/// thresholded wavelet estimators cannot be near-minimax. The invariant
/// density is unbounded (~x^{-α'} near 0) and has no closed form; experiments
/// therefore restrict to [0.01, 1] and compare estimators against each other,
/// exactly as in the paper.
///
/// Simulation matches the paper: Z_0 ~ Lebesgue on [0,1], apply T 2n times,
/// keep the second half (ergodic-average burn-in).
class LsvMapProcess : public RawProcess {
 public:
  explicit LsvMapProcess(double alpha);

  std::vector<double> Path(size_t n, stats::Rng& rng) const override;

  /// The invariant CDF has no closed form; MarginalCdf is deliberately
  /// unsupported (aborts). LSV experiments never use the quantile transform.
  double MarginalCdf(double y) const override;
  std::string name() const override;

  double alpha() const { return alpha_; }

  /// One application of the map.
  double Map(double x) const;

 private:
  double alpha_;
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_LSV_MAP_HPP_
