#ifndef WDE_PROCESSES_LINEAR_PROCESS_HPP_
#define WDE_PROCESSES_LINEAR_PROCESS_HPP_

#include "processes/process.hpp"

namespace wde {
namespace processes {

/// Generic two-sided (non-causal) linear process of §4.4.1:
///   Y_t = Σ_{j∈Z} a_j ξ_{t−j},   a_j = scale · decay^{|j|},
/// with selectable iid innovations, simulated by direct convolution with a
/// truncation lag chosen so the discarded geometric tail is below 1e−14.
/// Generalizes the paper's Case 3 (which is the Bernoulli(1/2), decay 1/2,
/// scale 1/3 instance with its closed-form marginal — see
/// `NoncausalMaProcess`). With geometric weights, λ(r) decays exponentially
/// and Assumption (D) holds with b = 1.
///
/// The exact marginal CDF is intractable for general weights, so this class
/// serves dependence diagnostics; its second-order structure is fully known:
/// Cov(Y_0, Y_r) = σ²_ξ Σ_j a_j a_{j+r} (closed form below) — which the tests
/// verify against sample autocovariances.
class TwoSidedLinearProcess : public RawProcess {
 public:
  enum class Innovation { kGaussian, kUniform, kBernoulli };

  TwoSidedLinearProcess(double scale, double decay,
                        Innovation innovation = Innovation::kGaussian);

  std::vector<double> Path(size_t n, stats::Rng& rng) const override;
  double MarginalCdf(double y) const override;
  std::string name() const override;

  /// Theoretical autocovariance Cov(Y_0, Y_r) for r >= 0.
  double TheoreticalAutocovariance(int r) const;

  /// Variance of one innovation.
  double InnovationVariance() const;

 private:
  double scale_;
  double decay_;
  Innovation innovation_;
  int truncation_lag_;
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_LINEAR_PROCESS_HPP_
