#ifndef WDE_PROCESSES_AR1_PROCESS_HPP_
#define WDE_PROCESSES_AR1_PROCESS_HPP_

#include "processes/process.hpp"

namespace wde {
namespace processes {

/// Gaussian AR(1): Y_t = ρ Y_{t-1} + ξ_t with ξ_t iid N(0, σ²). A standard
/// λ-weakly dependent model (a causal linear process with geometric
/// coefficients, §4.4.1 of the paper) whose covariances decay like ρ^r; the
/// stationary marginal N(0, σ²/(1−ρ²)) gives a closed-form G for the quantile
/// transform. Included as an extra weakly-dependent sampling beyond the
/// paper's three cases.
class Ar1GaussianProcess : public RawProcess {
 public:
  Ar1GaussianProcess(double rho, double innovation_stddev = 1.0, int burn_in = 256);

  std::vector<double> Path(size_t n, stats::Rng& rng) const override;
  double MarginalCdf(double y) const override;
  std::string name() const override;

  double rho() const { return rho_; }
  double marginal_stddev() const { return marginal_stddev_; }

 private:
  double rho_;
  double innovation_stddev_;
  double marginal_stddev_;
  int burn_in_;
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_AR1_PROCESS_HPP_
