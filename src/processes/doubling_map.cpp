#include "processes/doubling_map.hpp"

namespace wde {
namespace processes {

std::vector<double> DoublingMapProcess::Path(size_t n, stats::Rng& rng) const {
  // Simulate the causal AR(1) form directly: X_t = (X_{t-1} + ξ_t)/2.
  // Starting from U[0,1] the chain is stationary immediately; the burn-in is
  // kept for symmetry with the other generators.
  std::vector<double> path(n);
  double x = rng.UniformDouble();
  for (int b = 0; b < burn_in_; ++b) x = 0.5 * (x + (rng.Bernoulli(0.5) ? 1.0 : 0.0));
  for (size_t i = 0; i < n; ++i) {
    x = 0.5 * (x + (rng.Bernoulli(0.5) ? 1.0 : 0.0));
    path[i] = x;
  }
  return path;
}

double DoublingMapProcess::MarginalCdf(double y) const {
  if (y <= 0.0) return 0.0;
  if (y >= 1.0) return 1.0;
  return y;
}

}  // namespace processes
}  // namespace wde
