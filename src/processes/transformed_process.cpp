#include "processes/transformed_process.hpp"

#include "util/check.hpp"

namespace wde {
namespace processes {

TransformedProcess::TransformedProcess(std::shared_ptr<const RawProcess> raw,
                                       std::shared_ptr<const TargetDensity> target)
    : raw_(std::move(raw)), target_(std::move(target)) {
  WDE_CHECK(raw_ != nullptr && target_ != nullptr);
}

std::vector<double> TransformedProcess::Sample(size_t n, stats::Rng& rng) const {
  std::vector<double> path = raw_->Path(n, rng);
  for (double& y : path) y = target_->InverseCdf(raw_->MarginalCdf(y));
  return path;
}

std::string TransformedProcess::name() const {
  return raw_->name() + "->" + target_->name();
}

}  // namespace processes
}  // namespace wde
