#include "processes/lsv_map.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace processes {

LsvMapProcess::LsvMapProcess(double alpha) : alpha_(alpha) {
  WDE_CHECK(alpha_ > 0.0 && alpha_ < 1.0, "LSV index must lie in (0,1)");
}

double LsvMapProcess::Map(double x) const {
  if (x <= 0.5) {
    return x * (1.0 + std::pow(2.0 * x, alpha_));
  }
  return 2.0 * x - 1.0;
}

std::vector<double> LsvMapProcess::Path(size_t n, stats::Rng& rng) const {
  std::vector<double> path(n);
  double z = rng.UniformDouble();
  // Burn-in of n iterations, then record n values: (X_1..X_n) = (Z_{n+1}..Z_{2n}).
  for (size_t b = 0; b < n; ++b) {
    z = Map(z);
    if (z <= 1e-14 || z >= 1.0) z = rng.UniformDouble();
  }
  for (size_t i = 0; i < n; ++i) {
    z = Map(z);
    if (z <= 1e-14 || z >= 1.0) z = rng.UniformDouble();
    path[i] = z;
  }
  return path;
}

double LsvMapProcess::MarginalCdf(double /*y*/) const {
  WDE_CHECK(false, "LSV invariant CDF has no closed form; do not transform");
  return 0.0;
}

std::string LsvMapProcess::name() const { return Format("lsv-map(%.2f)", alpha_); }

}  // namespace processes
}  // namespace wde
