#include "processes/iid_process.hpp"

namespace wde {
namespace processes {

std::vector<double> IidUniformProcess::Path(size_t n, stats::Rng& rng) const {
  return stats::UniformSample(rng, n);
}

double IidUniformProcess::MarginalCdf(double y) const {
  if (y <= 0.0) return 0.0;
  if (y >= 1.0) return 1.0;
  return y;
}

}  // namespace processes
}  // namespace wde
