#ifndef WDE_PROCESSES_TARGET_DENSITY_HPP_
#define WDE_PROCESSES_TARGET_DENSITY_HPP_

#include <memory>
#include <string>
#include <vector>

namespace wde {
namespace processes {

/// A compactly supported probability density with a computable CDF, used both
/// as the common marginal F of the simulated processes (via the quantile
/// transform) and as the ground truth for risk computations.
/// All densities in the reproduction are supported on [0, 1].
class TargetDensity {
 public:
  virtual ~TargetDensity() = default;

  virtual double Pdf(double x) const = 0;
  virtual double Cdf(double x) const = 0;

  /// Quantile function F^{-1}(u) for u in [0,1]. The default implementation
  /// inverts Cdf by bisection over the support.
  virtual double InverseCdf(double u) const;

  /// Support interval; [0, 1] for all shipped densities.
  virtual double support_lo() const { return 0.0; }
  virtual double support_hi() const { return 1.0; }

  virtual std::string name() const = 0;

  /// Samples Pdf on `points` equally spaced grid points across the support
  /// (including both endpoints).
  std::vector<double> PdfOnGrid(size_t points) const;
};

/// The paper's first simulated density: a mixture of a sine-modulated
/// component on [0, breakpoint) and a uniform component on [breakpoint, 1],
/// exhibiting a jump discontinuity at the breakpoint. Parameters follow
/// DESIGN.md: amplitude 0.4, breakpoint 0.7, left mass 0.75 (range ~[0.59,
/// 1.34], jump ~0.24, matching the paper's Figures 1-2).
class SineUniformMixtureDensity : public TargetDensity {
 public:
  SineUniformMixtureDensity(double amplitude = 0.4, double breakpoint = 0.7,
                            double left_mass = 0.75);

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  std::string name() const override { return "sine-uniform-mixture"; }

  double breakpoint() const { return breakpoint_; }
  /// Size of the jump |f(d^-) - f(d^+)| at the breakpoint.
  double JumpSize() const;

 private:
  double amplitude_;
  double breakpoint_;
  double left_mass_;
  double left_scale_;   // C1
  double right_value_;  // C2
};

/// The paper's second simulated density: a two-component Gaussian mixture
/// truncated/renormalized to [0, 1]. Defaults (0.5 N(0.30, 0.04²) +
/// 0.5 N(0.65, 0.02²)) put the two modes near heights 5 and 10 as in the
/// paper's Figure 5.
class TruncatedGaussianMixtureDensity : public TargetDensity {
 public:
  struct Component {
    double weight;
    double mean;
    double stddev;
  };

  explicit TruncatedGaussianMixtureDensity(std::vector<Component> components);

  /// The paper's two-mode default.
  static TruncatedGaussianMixtureDensity Bimodal();

  double Pdf(double x) const override;
  double Cdf(double x) const override;
  std::string name() const override { return "gaussian-mixture"; }

  const std::vector<Component>& components() const { return components_; }

 private:
  std::vector<Component> components_;
  double normalization_;          // total mass inside [0,1]
  std::vector<double> mass_at_0_; // per-component CDF at 0
};

/// Uniform density on [0, 1]; the simplest smoke-test target.
class UniformDensity : public TargetDensity {
 public:
  double Pdf(double x) const override { return (x >= 0.0 && x <= 1.0) ? 1.0 : 0.0; }
  double Cdf(double x) const override;
  double InverseCdf(double u) const override { return u; }
  std::string name() const override { return "uniform"; }
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_TARGET_DENSITY_HPP_
