/// \file processes/process.hpp
/// Entry header of the `processes` module: the RawProcess interface behind
/// every data generator (paper §5.2 Cases 1–3, §5.5 LSV maps, and the AR/
/// ARCH/LARCH extensions). Invariants: Path() returns a *stationary* sample
/// (burn-in is each implementation's responsibility), MarginalCdf is the
/// exact common CDF G of Y_t, and composing with the quantile transform
/// X = F⁻¹(G(Y)) (transformed_process.hpp) imposes target marginal F while
/// preserving the dependence structure.
#ifndef WDE_PROCESSES_PROCESS_HPP_
#define WDE_PROCESSES_PROCESS_HPP_

#include <string>
#include <vector>

#include "stats/rng.hpp"

namespace wde {
namespace processes {

/// A stationary real-valued process with a known marginal CDF on its own
/// scale. Implementations produce a *stationary* path (burn-in and
/// approximation schemes are internal). The quantile transform
/// X = F^{-1}(G(Y)) in `TransformedProcess` then imposes any target marginal
/// while preserving the dependence structure — the paper's §5.2 scheme.
class RawProcess {
 public:
  virtual ~RawProcess() = default;

  /// Generates a stationary sample path Y_1..Y_n.
  virtual std::vector<double> Path(size_t n, stats::Rng& rng) const = 0;

  /// The common marginal CDF G of Y_t.
  virtual double MarginalCdf(double y) const = 0;

  virtual std::string name() const = 0;
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_PROCESS_HPP_
