#include "processes/ar1_process.hpp"

#include <cmath>

#include "numerics/special_functions.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace processes {

Ar1GaussianProcess::Ar1GaussianProcess(double rho, double innovation_stddev,
                                       int burn_in)
    : rho_(rho), innovation_stddev_(innovation_stddev), burn_in_(burn_in) {
  WDE_CHECK(std::fabs(rho_) < 1.0, "AR(1) requires |rho| < 1 for stationarity");
  WDE_CHECK_GT(innovation_stddev_, 0.0);
  marginal_stddev_ = innovation_stddev_ / std::sqrt(1.0 - rho_ * rho_);
}

std::vector<double> Ar1GaussianProcess::Path(size_t n, stats::Rng& rng) const {
  std::vector<double> path(n);
  // Start from the stationary marginal, so the burn-in is belt and braces.
  double y = rng.Gaussian(0.0, marginal_stddev_);
  for (int b = 0; b < burn_in_; ++b) {
    y = rho_ * y + rng.Gaussian(0.0, innovation_stddev_);
  }
  for (size_t i = 0; i < n; ++i) {
    y = rho_ * y + rng.Gaussian(0.0, innovation_stddev_);
    path[i] = y;
  }
  return path;
}

double Ar1GaussianProcess::MarginalCdf(double y) const {
  return numerics::NormalCdf(y / marginal_stddev_);
}

std::string Ar1GaussianProcess::name() const { return Format("ar1(%.2f)", rho_); }

}  // namespace processes
}  // namespace wde
