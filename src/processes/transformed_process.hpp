#ifndef WDE_PROCESSES_TRANSFORMED_PROCESS_HPP_
#define WDE_PROCESSES_TRANSFORMED_PROCESS_HPP_

#include <memory>

#include "processes/process.hpp"
#include "processes/target_density.hpp"

namespace wde {
namespace processes {

/// The paper's sampling scheme (§5.2): X_i = F^{-1}(G(Y_i)) where Y is a raw
/// stationary process with marginal CDF G and F is the target marginal. The
/// transform is monotone, so it preserves the dependence structure (weak
/// dependence coefficients of bounded-variation transforms) while imposing
/// the target density — the three "cases" differ only in the raw process.
class TransformedProcess {
 public:
  TransformedProcess(std::shared_ptr<const RawProcess> raw,
                     std::shared_ptr<const TargetDensity> target);

  /// Generates X_1..X_n with marginal density `target()`.
  std::vector<double> Sample(size_t n, stats::Rng& rng) const;

  const RawProcess& raw() const { return *raw_; }
  const TargetDensity& target() const { return *target_; }
  std::string name() const;

 private:
  std::shared_ptr<const RawProcess> raw_;
  std::shared_ptr<const TargetDensity> target_;
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_TRANSFORMED_PROCESS_HPP_
