#ifndef WDE_PROCESSES_IID_PROCESS_HPP_
#define WDE_PROCESSES_IID_PROCESS_HPP_

#include "processes/process.hpp"

namespace wde {
namespace processes {

/// Case 1 of the paper: independent U[0,1] observations (the quantile
/// transform then produces iid draws from any target F).
class IidUniformProcess : public RawProcess {
 public:
  std::vector<double> Path(size_t n, stats::Rng& rng) const override;
  double MarginalCdf(double y) const override;
  std::string name() const override { return "iid-uniform"; }
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_IID_PROCESS_HPP_
