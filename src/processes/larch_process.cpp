#include "processes/larch_process.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace processes {

LarchProcess::LarchProcess(double intercept, double scale, double decay,
                           int truncation_lag, int burn_in)
    : intercept_(intercept),
      scale_(scale),
      decay_(decay),
      truncation_lag_(truncation_lag),
      burn_in_(burn_in) {
  WDE_CHECK(decay_ > 0.0 && decay_ < 1.0, "decay must lie in (0,1)");
  WDE_CHECK_GT(truncation_lag_, 0);
  // E|ξ| = 1/4 for U(−1/2, 1/2); stationarity needs E|ξ| Σ|a_j| < 1.
  const double weight_sum = std::fabs(scale_) * decay_ / (1.0 - decay_);
  WDE_CHECK(weight_sum * 0.25 < 1.0, "LARCH coefficients violate stationarity");
}

std::vector<double> LarchProcess::Path(size_t n, stats::Rng& rng) const {
  const size_t lag = static_cast<size_t>(truncation_lag_);
  std::vector<double> history(lag, 0.0);  // ring buffer, most recent at head_
  size_t head = 0;
  std::vector<double> path(n);
  const size_t total = n + static_cast<size_t>(burn_in_);
  for (size_t t = 0; t < total; ++t) {
    double acc = intercept_;
    double weight = scale_;
    for (size_t j = 1; j <= lag; ++j) {
      weight *= decay_;
      acc += weight * history[(head + lag - j) % lag];
    }
    const double xi = rng.Uniform(-0.5, 0.5);
    const double x = xi * acc;
    history[head] = x;
    head = (head + 1) % lag;
    if (t >= static_cast<size_t>(burn_in_)) {
      path[t - static_cast<size_t>(burn_in_)] = x;
    }
  }
  return path;
}

double LarchProcess::MarginalCdf(double /*y*/) const {
  WDE_CHECK(false, "LARCH marginal has no closed form; use diagnostics only");
  return 0.0;
}

std::string LarchProcess::name() const {
  return Format("larch(%.2f,%.2f)", scale_, decay_);
}

}  // namespace processes
}  // namespace wde
