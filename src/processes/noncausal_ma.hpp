#ifndef WDE_PROCESSES_NONCAUSAL_MA_HPP_
#define WDE_PROCESSES_NONCAUSAL_MA_HPP_

#include "processes/process.hpp"

namespace wde {
namespace processes {

/// Case 3 of the paper: the non-causal autoregression
///   Y_t = (2/5)(Y_{t-1} + Y_{t+1}) + (1/5) ξ_t,   ξ_t iid Bernoulli(1/2),
/// whose stationary solution has the two-sided MA representation
///   Y_t = Σ_j a_j ξ_{t-j},  a_j = (1/3) 2^{-|j|},
/// takes values in [0,1], is λ-weakly dependent with exponential decay, and
/// has marginal law (U + U' + ξ)/3 with U, U' iid uniform.
///
/// Note: the paper prints the innovation coefficient as 5/21, which is
/// inconsistent with its own MA representation; substituting Y_t = Σ a_j
/// ξ_{t-j} into the recursion forces a_0 − (2/5)(a_1 + a_{-1}) = 1/5 (see
/// DESIGN.md). We use 1/5, under which the stated marginal is exact (the
/// one-sided tails Σ_{j≥1} 2^{-j} ξ_{t∓j} are exactly U[0,1]).
///
/// Simulation follows the Doukhan–Truquet fixed-point algorithm quoted in the
/// paper: start from Y^{(0)} ≡ 0 on the index range [-N, n+N], iterate the
/// recursion N times; the contraction factor 4/5 makes the approximation
/// error O((4/5)^N) in the middle of the window. The paper sets N = n.
class NoncausalMaProcess : public RawProcess {
 public:
  /// `iterations_factor` scales N relative to n (paper: 1.0 → N = n).
  explicit NoncausalMaProcess(double iterations_factor = 1.0)
      : iterations_factor_(iterations_factor) {}

  std::vector<double> Path(size_t n, stats::Rng& rng) const override;
  double MarginalCdf(double y) const override;
  std::string name() const override { return "noncausal-ma"; }

  /// CDF of U + U' (sum of two independent uniforms), exposed for tests.
  static double TriangularSumCdf(double s);

 private:
  double iterations_factor_;
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_NONCAUSAL_MA_HPP_
