#include "processes/target_density.hpp"

#include <cmath>

#include "numerics/optimize.hpp"
#include "numerics/special_functions.hpp"
#include "util/check.hpp"

namespace wde {
namespace processes {

double TargetDensity::InverseCdf(double u) const {
  WDE_CHECK(u >= 0.0 && u <= 1.0, "quantile level must be in [0,1]");
  if (u <= 0.0) return support_lo();
  if (u >= 1.0) return support_hi();
  return numerics::BisectMonotone([this](double x) { return Cdf(x); }, u,
                                  support_lo(), support_hi());
}

std::vector<double> TargetDensity::PdfOnGrid(size_t points) const {
  WDE_CHECK_GE(points, 2u);
  std::vector<double> out(points);
  const double lo = support_lo();
  const double dx = (support_hi() - lo) / static_cast<double>(points - 1);
  for (size_t i = 0; i < points; ++i) out[i] = Pdf(lo + dx * static_cast<double>(i));
  return out;
}

namespace {
constexpr double kTwoPi = 6.283185307179586;
}  // namespace

SineUniformMixtureDensity::SineUniformMixtureDensity(double amplitude,
                                                     double breakpoint,
                                                     double left_mass)
    : amplitude_(amplitude), breakpoint_(breakpoint), left_mass_(left_mass) {
  WDE_CHECK(amplitude_ > -1.0 && amplitude_ < 1.0, "amplitude must keep f positive");
  WDE_CHECK(breakpoint_ > 0.0 && breakpoint_ < 1.0);
  WDE_CHECK(left_mass_ > 0.0 && left_mass_ < 1.0);
  // ∫_0^d (1 + a sin(2πx)) dx = d + a (1 − cos(2πd)) / (2π).
  const double left_integral =
      breakpoint_ + amplitude_ * (1.0 - std::cos(kTwoPi * breakpoint_)) / kTwoPi;
  left_scale_ = left_mass_ / left_integral;
  right_value_ = (1.0 - left_mass_) / (1.0 - breakpoint_);
}

double SineUniformMixtureDensity::Pdf(double x) const {
  if (x < 0.0 || x > 1.0) return 0.0;
  if (x < breakpoint_) return left_scale_ * (1.0 + amplitude_ * std::sin(kTwoPi * x));
  return right_value_;
}

double SineUniformMixtureDensity::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  if (x < breakpoint_) {
    return left_scale_ * (x + amplitude_ * (1.0 - std::cos(kTwoPi * x)) / kTwoPi);
  }
  return left_mass_ + right_value_ * (x - breakpoint_);
}

double SineUniformMixtureDensity::JumpSize() const {
  const double left_limit =
      left_scale_ * (1.0 + amplitude_ * std::sin(kTwoPi * breakpoint_));
  return std::fabs(left_limit - right_value_);
}

TruncatedGaussianMixtureDensity::TruncatedGaussianMixtureDensity(
    std::vector<Component> components)
    : components_(std::move(components)) {
  WDE_CHECK(!components_.empty());
  double weight_sum = 0.0;
  normalization_ = 0.0;
  for (const Component& c : components_) {
    WDE_CHECK_GT(c.weight, 0.0);
    WDE_CHECK_GT(c.stddev, 0.0);
    weight_sum += c.weight;
  }
  WDE_CHECK(std::fabs(weight_sum - 1.0) < 1e-9, "component weights must sum to 1");
  mass_at_0_.reserve(components_.size());
  for (const Component& c : components_) {
    const double at0 = numerics::NormalCdf((0.0 - c.mean) / c.stddev);
    const double at1 = numerics::NormalCdf((1.0 - c.mean) / c.stddev);
    mass_at_0_.push_back(at0);
    normalization_ += c.weight * (at1 - at0);
  }
  WDE_CHECK_GT(normalization_, 0.0);
}

TruncatedGaussianMixtureDensity TruncatedGaussianMixtureDensity::Bimodal() {
  return TruncatedGaussianMixtureDensity(
      {{0.5, 0.30, 0.04}, {0.5, 0.65, 0.02}});
}

double TruncatedGaussianMixtureDensity::Pdf(double x) const {
  if (x < 0.0 || x > 1.0) return 0.0;
  double acc = 0.0;
  for (const Component& c : components_) {
    acc += c.weight * numerics::NormalPdf((x - c.mean) / c.stddev) / c.stddev;
  }
  return acc / normalization_;
}

double TruncatedGaussianMixtureDensity::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double acc = 0.0;
  for (size_t i = 0; i < components_.size(); ++i) {
    const Component& c = components_[i];
    acc += c.weight *
           (numerics::NormalCdf((x - c.mean) / c.stddev) - mass_at_0_[i]);
  }
  return acc / normalization_;
}

double UniformDensity::Cdf(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  return x;
}

}  // namespace processes
}  // namespace wde
