#include "processes/noncausal_ma.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace wde {
namespace processes {

double NoncausalMaProcess::TriangularSumCdf(double s) {
  if (s <= 0.0) return 0.0;
  if (s >= 2.0) return 1.0;
  if (s <= 1.0) return 0.5 * s * s;
  return 1.0 - 0.5 * (2.0 - s) * (2.0 - s);
}

std::vector<double> NoncausalMaProcess::Path(size_t n, stats::Rng& rng) const {
  WDE_CHECK_GT(n, 0u);
  const long iterations =
      std::max(8L, static_cast<long>(iterations_factor_ * static_cast<double>(n)));
  const long pad = iterations;  // window [-N, n-1+N] in paper indexing
  const long total = static_cast<long>(n) + 2 * pad;

  std::vector<double> noise(static_cast<size_t>(total));
  for (double& xi : noise) xi = rng.Bernoulli(0.5) ? 1.0 : 0.0;

  std::vector<double> current(static_cast<size_t>(total), 0.0);
  std::vector<double> next(static_cast<size_t>(total), 0.0);
  for (long it = 0; it < iterations; ++it) {
    for (long i = 0; i < total; ++i) {
      const double left = (i > 0) ? current[static_cast<size_t>(i - 1)] : 0.0;
      const double right = (i + 1 < total) ? current[static_cast<size_t>(i + 1)] : 0.0;
      next[static_cast<size_t>(i)] =
          0.4 * (left + right) + 0.2 * noise[static_cast<size_t>(i)];
    }
    current.swap(next);
  }

  std::vector<double> path(n);
  for (size_t i = 0; i < n; ++i) path[i] = current[static_cast<size_t>(pad) + i];
  return path;
}

double NoncausalMaProcess::MarginalCdf(double y) const {
  // Y = (U + U' + ξ)/3 with ξ Bernoulli(1/2):
  // G(y) = ½ P(U+U' ≤ 3y) + ½ P(U+U' ≤ 3y − 1).
  if (y <= 0.0) return 0.0;
  if (y >= 1.0) return 1.0;
  return 0.5 * TriangularSumCdf(3.0 * y) + 0.5 * TriangularSumCdf(3.0 * y - 1.0);
}

}  // namespace processes
}  // namespace wde
