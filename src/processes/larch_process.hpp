#ifndef WDE_PROCESSES_LARCH_PROCESS_HPP_
#define WDE_PROCESSES_LARCH_PROCESS_HPP_

#include "processes/process.hpp"

namespace wde {
namespace processes {

/// LARCH(∞) model of §4.4.2:
///   X_t = ξ_t (a + Σ_{j≥1} a_j X_{t−j}),
/// with iid centered innovations and geometric coefficients
/// a_j = scale·decay^j. For Σ_j |a_j| E|ξ| < 1 a stationary solution exists
/// and is λ-weakly dependent with λ(r) ≤ C exp(−a √r) (the paper's b = 1/2
/// case), so Assumption (D) holds. Innovations here are uniform on
/// [−1/2, 1/2].
///
/// The marginal law has no closed form, so the process is exposed for
/// dependence diagnostics and raw-density estimation rather than the
/// quantile transform; `MarginalCdf` aborts like the LSV map's.
class LarchProcess : public RawProcess {
 public:
  /// `scale`·Σ decay^j · E|ξ| must stay below 1 (checked).
  LarchProcess(double intercept = 1.0, double scale = 0.4, double decay = 0.5,
               int truncation_lag = 64, int burn_in = 512);

  std::vector<double> Path(size_t n, stats::Rng& rng) const override;
  double MarginalCdf(double y) const override;
  std::string name() const override;

  double intercept() const { return intercept_; }

 private:
  double intercept_;
  double scale_;
  double decay_;
  int truncation_lag_;
  int burn_in_;
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_LARCH_PROCESS_HPP_
