#include "processes/arch_process.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace processes {

ArchProcess::ArchProcess(double omega, double alpha, int burn_in)
    : omega_(omega), alpha_(alpha), burn_in_(burn_in) {
  WDE_CHECK_GT(omega_, 0.0);
  WDE_CHECK(alpha_ >= 0.0 && alpha_ < 1.0, "ARCH(1) needs alpha in [0,1)");
}

double ArchProcess::StationaryVariance() const { return omega_ / (1.0 - alpha_); }

std::vector<double> ArchProcess::Path(size_t n, stats::Rng& rng) const {
  std::vector<double> path(n);
  double x = rng.Gaussian(0.0, std::sqrt(StationaryVariance()));
  for (int b = 0; b < burn_in_; ++b) {
    x = rng.Gaussian() * std::sqrt(omega_ + alpha_ * x * x);
  }
  for (size_t i = 0; i < n; ++i) {
    x = rng.Gaussian() * std::sqrt(omega_ + alpha_ * x * x);
    path[i] = x;
  }
  return path;
}

double ArchProcess::MarginalCdf(double /*y*/) const {
  WDE_CHECK(false, "ARCH marginal has no closed form; use diagnostics only");
  return 0.0;
}

std::string ArchProcess::name() const {
  return Format("arch(%.2f,%.2f)", omega_, alpha_);
}

}  // namespace processes
}  // namespace wde
