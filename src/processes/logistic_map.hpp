#ifndef WDE_PROCESSES_LOGISTIC_MAP_HPP_
#define WDE_PROCESSES_LOGISTIC_MAP_HPP_

#include "processes/process.hpp"

namespace wde {
namespace processes {

/// Case 2 of the paper: the expanding map T(x) = 4x(1-x), iterated from a
/// draw of its invariant (arcsine) distribution. The associated time-reversed
/// Markov chain is φ̃-weakly dependent with exponentially decaying
/// coefficients (Proposition 4.1 applies); classical mixing coefficients fail
/// for it (Remark 1 of the paper).
///
/// The invariant CDF is G(y) = (2/π) asin(√y) with density 1/(π√(y(1-y))).
/// (The paper's formula "G(x) = 2√(x(1-x))/π" is the plot of a related
/// function; the arcsine law is the logistic map's invariant distribution.)
class LogisticMapProcess : public RawProcess {
 public:
  /// `burn_in` extra iterations are discarded before the recorded path.
  explicit LogisticMapProcess(int burn_in = 256) : burn_in_(burn_in) {}

  std::vector<double> Path(size_t n, stats::Rng& rng) const override;
  double MarginalCdf(double y) const override;
  std::string name() const override { return "logistic-map"; }

  /// The map itself, exposed for tests: T(x) = 4x(1-x).
  static double Map(double x) { return 4.0 * x * (1.0 - x); }

  /// Inverse of the invariant CDF: G^{-1}(u) = sin²(πu/2).
  static double InvariantQuantile(double u);

 private:
  int burn_in_;
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_LOGISTIC_MAP_HPP_
