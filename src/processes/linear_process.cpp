#include "processes/linear_process.hpp"

#include <cmath>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace processes {

TwoSidedLinearProcess::TwoSidedLinearProcess(double scale, double decay,
                                             Innovation innovation)
    : scale_(scale), decay_(decay), innovation_(innovation) {
  WDE_CHECK(decay_ > 0.0 && decay_ < 1.0, "decay must lie in (0,1)");
  WDE_CHECK(scale_ != 0.0);
  truncation_lag_ =
      static_cast<int>(std::ceil(std::log(1e-14) / std::log(decay_)));
}

double TwoSidedLinearProcess::InnovationVariance() const {
  switch (innovation_) {
    case Innovation::kGaussian:
      return 1.0;
    case Innovation::kUniform:
      return 1.0 / 12.0;  // U(-1/2, 1/2)
    case Innovation::kBernoulli:
      return 0.25;  // Bernoulli(1/2)
  }
  return 0.0;
}

double TwoSidedLinearProcess::TheoreticalAutocovariance(int r) const {
  WDE_CHECK_GE(r, 0);
  // Σ_j a_j a_{j+r} with a_j = s·d^{|j|}:
  //   split by sign of j and j+r; geometric sums give
  //   s² d^r [ (1 + d²)/(1 − d²) + r ].
  const double d = decay_;
  const double s = scale_;
  const double factor =
      (1.0 + d * d) / (1.0 - d * d) + static_cast<double>(r);
  return InnovationVariance() * s * s * std::pow(d, r) * factor;
}

std::vector<double> TwoSidedLinearProcess::Path(size_t n, stats::Rng& rng) const {
  const size_t lag = static_cast<size_t>(truncation_lag_);
  const size_t total = n + 2 * lag;
  std::vector<double> noise(total);
  for (double& xi : noise) {
    switch (innovation_) {
      case Innovation::kGaussian:
        xi = rng.Gaussian();
        break;
      case Innovation::kUniform:
        xi = rng.Uniform(-0.5, 0.5);
        break;
      case Innovation::kBernoulli:
        xi = rng.Bernoulli(0.5) ? 1.0 : 0.0;
        break;
    }
  }
  // Precompute the two-sided weights a_{-lag}..a_{lag}.
  std::vector<double> weights(2 * lag + 1);
  for (size_t j = 0; j <= 2 * lag; ++j) {
    const auto offset = static_cast<long>(j) - static_cast<long>(lag);
    weights[j] = scale_ * std::pow(decay_, std::labs(offset));
  }
  std::vector<double> path(n);
  for (size_t t = 0; t < n; ++t) {
    double acc = 0.0;
    for (size_t j = 0; j <= 2 * lag; ++j) acc += weights[j] * noise[t + j];
    path[t] = acc;
  }
  return path;
}

double TwoSidedLinearProcess::MarginalCdf(double /*y*/) const {
  WDE_CHECK(false,
            "two-sided linear marginal has no closed form; use diagnostics only");
  return 0.0;
}

std::string TwoSidedLinearProcess::name() const {
  return Format("two-sided-linear(%.2f,%.2f)", scale_, decay_);
}

}  // namespace processes
}  // namespace wde
