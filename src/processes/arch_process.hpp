#ifndef WDE_PROCESSES_ARCH_PROCESS_HPP_
#define WDE_PROCESSES_ARCH_PROCESS_HPP_

#include "processes/process.hpp"

namespace wde {
namespace processes {

/// ARCH(1), the simplest instance of the paper's affine class (§4.4.3):
///   X_t = ξ_t √(ω + α X²_{t−1}),  ξ_t iid N(0, 1),
/// i.e. M(x) = √(ω + αx²), f ≡ 0. For α < 1 a stationary solution exists;
/// Gaussian innovations have a bounded density, so condition (J) holds and
/// the model satisfies Assumption (D) with b = 1/2 (Proposition 4.2).
///
/// The hallmark dependence structure — X_t serially *uncorrelated* while X²_t
/// is autocorrelated with lag-r correlation α^r — is exactly the kind of
/// dependence classical linear diagnostics miss; tests assert it.
class ArchProcess : public RawProcess {
 public:
  ArchProcess(double omega = 0.2, double alpha = 0.5, int burn_in = 512);

  std::vector<double> Path(size_t n, stats::Rng& rng) const override;
  double MarginalCdf(double y) const override;
  std::string name() const override;

  double omega() const { return omega_; }
  double alpha() const { return alpha_; }
  /// Stationary variance ω/(1−α).
  double StationaryVariance() const;

 private:
  double omega_;
  double alpha_;
  int burn_in_;
};

}  // namespace processes
}  // namespace wde

#endif  // WDE_PROCESSES_ARCH_PROCESS_HPP_
