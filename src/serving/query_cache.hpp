/// \file serving/query_cache.hpp
/// Sharded, epoch-tagged result cache for typed selectivity queries — the
/// hot-query layer of the serving engine. The typed `Query` tagged union is
/// the cache key: keys hash and compare on the BIT PATTERNS of the kind and
/// both parameter payloads, so any two byte-identical queries share an entry
/// (including dirty queries with NaN parameters, whose documented answer 0.0
/// caches like any other value) and no floating-point comparison semantics
/// leak into key identity. Every entry is tagged with the epoch of the
/// published view it was computed against; a lookup only hits when the
/// entry's epoch equals the reader's current epoch, so publishing a new view
/// invalidates the entire cache at zero cost — no sweep, no generation list.
///
/// The cache is strictly an accelerator and never a source of truth: all
/// locking is try_lock on small per-shard stripes, and contention degrades
/// to a miss (lookup) or a drop (insert) instead of blocking, so the serving
/// hot path keeps its no-lock-wait guarantee. Correctness is unaffected
/// because a published view is immutable for its epoch and query answers are
/// deterministic — a cached value is bit-identical to recomputation, which
/// tests/query_taxonomy_test.cpp (cache-on ≡ cache-off) enforces.
#ifndef WDE_SERVING_QUERY_CACHE_HPP_
#define WDE_SERVING_QUERY_CACHE_HPP_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "selectivity/selectivity_estimator.hpp"

namespace wde {
namespace serving {

/// Bitwise key hash of a query: splitmix64-style mixing over the kind and
/// axis bytes and the bit patterns of all four parameters (a/b and the
/// axis-1 interval c/d of the multi-dimensional kinds). NaN payloads hash by
/// their exact bit pattern; +0.0 and -0.0 are distinct keys (both cache
/// their — equal — answers independently, which is harmless).
uint64_t QueryKeyHash(const selectivity::Query& query);

/// Bitwise key equality: same kind and axis, same a/b/c/d bits.
bool QueryKeyEquals(const selectivity::Query& lhs,
                    const selectivity::Query& rhs);

/// Monotonic counters describing cache effectiveness (relaxed atomics; exact
/// under a quiesced service, monotone-approximate while concurrent).
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;          // probed, no current-epoch entry
  uint64_t lookup_bypasses = 0;  // stripe contended; treated as a miss
  uint64_t insert_drops = 0;     // stripe contended; value not cached
};

/// A fixed-geometry cache: `shards` independent stripes, each a direct-mapped
/// table of `slots_per_shard` entries (rounded up to a power of two). Bounded
/// memory, O(1) lookup/insert, eviction by slot overwrite. Thread-safe; see
/// the file comment for the try_lock contention policy.
class QueryResultCache {
 public:
  QueryResultCache(size_t shards, size_t slots_per_shard);

  QueryResultCache(const QueryResultCache&) = delete;
  QueryResultCache& operator=(const QueryResultCache&) = delete;

  /// True and `*out` filled when a value for `query` computed at exactly
  /// `epoch` is cached. Epoch 0 never hits (the reserved empty-slot tag).
  bool Lookup(const selectivity::Query& query, uint64_t epoch,
              double* out) const;

  /// Caches `value` for `query` at `epoch`, overwriting whatever occupied
  /// the slot. Epoch 0 is reserved and ignored. Best-effort under
  /// contention (see insert_drops).
  void Insert(const selectivity::Query& query, uint64_t epoch, double value);

  CacheStats stats() const;

  size_t shards() const { return stripes_.size(); }
  size_t slots_per_shard() const { return slot_mask_ + 1; }

 private:
  struct Slot {
    uint64_t hash = 0;
    uint64_t epoch = 0;  // 0 = empty
    selectivity::Query query;
    double value = 0.0;
  };
  /// One stripe per cache shard, padded to its own cache line so stripe
  /// mutexes never false-share.
  struct alignas(64) Stripe {
    mutable std::mutex mu;
    std::vector<Slot> slots;
  };

  const Stripe& StripeFor(uint64_t hash) const {
    // High bits pick the stripe, low bits the slot, so the two indices stay
    // independent even for hash families with weak low bits.
    return stripes_[(hash >> 48) % stripes_.size()];
  }

  std::vector<Stripe> stripes_;
  uint64_t slot_mask_ = 0;

  mutable std::atomic<uint64_t> hits_{0};
  mutable std::atomic<uint64_t> misses_{0};
  mutable std::atomic<uint64_t> lookup_bypasses_{0};
  mutable std::atomic<uint64_t> insert_drops_{0};
};

}  // namespace serving
}  // namespace wde

#endif  // WDE_SERVING_QUERY_CACHE_HPP_
