#include "serving/query_cache.hpp"

#include <bit>

#include "util/check.hpp"

namespace wde {
namespace serving {

namespace {

/// splitmix64 finalizer — cheap, well-distributed mixing for table indices.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

}  // namespace

uint64_t QueryKeyHash(const selectivity::Query& query) {
  uint64_t h = Mix64(static_cast<uint64_t>(query.kind) |
                     (static_cast<uint64_t>(query.axis) << 8));
  h = Mix64(h ^ std::bit_cast<uint64_t>(query.a));
  h = Mix64(h ^ std::bit_cast<uint64_t>(query.b));
  h = Mix64(h ^ std::bit_cast<uint64_t>(query.c));
  h = Mix64(h ^ std::bit_cast<uint64_t>(query.d));
  return h;
}

bool QueryKeyEquals(const selectivity::Query& lhs,
                    const selectivity::Query& rhs) {
  return lhs.kind == rhs.kind && lhs.axis == rhs.axis &&
         std::bit_cast<uint64_t>(lhs.a) == std::bit_cast<uint64_t>(rhs.a) &&
         std::bit_cast<uint64_t>(lhs.b) == std::bit_cast<uint64_t>(rhs.b) &&
         std::bit_cast<uint64_t>(lhs.c) == std::bit_cast<uint64_t>(rhs.c) &&
         std::bit_cast<uint64_t>(lhs.d) == std::bit_cast<uint64_t>(rhs.d);
}

QueryResultCache::QueryResultCache(size_t shards, size_t slots_per_shard) {
  WDE_CHECK(shards > 0, "QueryResultCache needs at least one shard");
  WDE_CHECK(slots_per_shard > 0, "QueryResultCache needs at least one slot");
  const size_t slots = RoundUpPow2(slots_per_shard);
  slot_mask_ = slots - 1;
  stripes_ = std::vector<Stripe>(shards);
  for (Stripe& stripe : stripes_) stripe.slots.resize(slots);
}

bool QueryResultCache::Lookup(const selectivity::Query& query, uint64_t epoch,
                              double* out) const {
  const uint64_t hash = QueryKeyHash(query);
  const Stripe& stripe = StripeFor(hash);
  std::unique_lock<std::mutex> lock(stripe.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    // Never wait on the read path: a contended stripe is just a miss.
    lookup_bypasses_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const Slot& slot = stripe.slots[hash & slot_mask_];
  if (slot.epoch == epoch && epoch != 0 && slot.hash == hash &&
      QueryKeyEquals(slot.query, query)) {
    *out = slot.value;
    hits_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void QueryResultCache::Insert(const selectivity::Query& query, uint64_t epoch,
                              double value) {
  if (epoch == 0) return;  // reserved empty-slot tag
  const uint64_t hash = QueryKeyHash(query);
  // StripeFor returns const so Lookup can share it; inserts own the stripe.
  Stripe& stripe = const_cast<Stripe&>(StripeFor(hash));
  std::unique_lock<std::mutex> lock(stripe.mu, std::try_to_lock);
  if (!lock.owns_lock()) {
    insert_drops_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = stripe.slots[hash & slot_mask_];
  slot.hash = hash;
  slot.epoch = epoch;
  slot.query = query;
  slot.value = value;
}

CacheStats QueryResultCache::stats() const {
  CacheStats stats;
  stats.hits = hits_.load(std::memory_order_relaxed);
  stats.misses = misses_.load(std::memory_order_relaxed);
  stats.lookup_bypasses = lookup_bypasses_.load(std::memory_order_relaxed);
  stats.insert_drops = insert_drops_.load(std::memory_order_relaxed);
  return stats;
}

}  // namespace serving
}  // namespace wde
