/// \file serving/estimator_service.hpp
/// Entry header of the `serving` module: a long-lived concurrent serving
/// engine over one selectivity estimator — the production shape of the
/// paper's query-optimizer use case, where a single column statistic answers
/// unbounded concurrent probes while ingest continues. The design is
/// epoch/RCU-style publication:
///
///   * WRITERS ingest into an owned estimator (typically the sharded
///     parallel engine) under one writer mutex, and every
///     `publish_interval` accepted values — or when the current view
///     exceeds the wall-clock staleness budget, or on an explicit
///     Publish() — build a fresh merged copy of the fitted state, warm its
///     lazily fitted caches with one query, and atomically swap it in as
///     the published view of a new epoch.
///   * READERS answer mixed `Answer()` batches with NO lock on the
///     steady-state hot path: each reader thread keeps a thread-local
///     pinned copy of the view, validated per batch by one atomic epoch
///     load; only the first read after a publish (or after switching
///     services on that thread) crosses a mutex, and that critical section
///     is a pointer copy — writers never hold it while doing estimator
///     work. Views are immutable after the warm-up, a held shared_ptr pins
///     its epoch for as long as the reader cares to keep it, and retired
///     views free themselves when the last reader drops out (RCU grace
///     period by refcount). This epoch-validated design is used instead of
///     std::atomic<shared_ptr> deliberately: libstdc++'s _Sp_atomic::load
///     releases its spin bit with a relaxed RMW, which gives the reader's
///     raw pointer read no happens-before edge against the next writer's
///     swap — formally a race (ThreadSanitizer agrees). Everything here is
///     ordinary mutexes and scalar atomics, verifiable end to end.
///
/// Layered on top: an epoch-invalidated, sharded hot-query result cache
/// keyed by the typed `Query` (see query_cache.hpp — strictly best-effort,
/// bit-identical to recomputation), a client-side `AdmissionBatcher` that
/// coalesces scalar point reads into batched admissions, and
/// Checkpoint/Restore through the PR 4 snapshot envelope so a warm standby
/// can restore a leader's checkpoint and begin serving at a strictly newer
/// epoch (the epoch bump on restore is a contract: no cached result or held
/// view from before the restore can be confused with post-restore state).
///
/// Staleness contract: a reader's answers lag ingest by at most the pacing
/// budget (publish_interval - 1 values, or max_staleness_ms) plus whatever
/// batch was mid-flight when its view was loaded; answers within one epoch
/// are mutually consistent because they come from one frozen fitted state.
#ifndef WDE_SERVING_ESTIMATOR_SERVICE_HPP_
#define WDE_SERVING_ESTIMATOR_SERVICE_HPP_

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "selectivity/estimator_spec.hpp"
#include "selectivity/selectivity_estimator.hpp"
#include "selectivity/sharded_selectivity.hpp"
#include "serving/query_cache.hpp"
#include "util/result.hpp"

namespace wde {
namespace serving {

/// Pacing and cache geometry of one EstimatorService.
struct ServiceOptions {
  /// Publish a fresh view once this many values arrived since the last
  /// publish (checked at write admission). 0 disables insert-paced
  /// publishing.
  size_t publish_interval = 8192;

  /// Publish at write admission when the current view is older than this
  /// wall-clock budget, even if publish_interval has not elapsed — bounds
  /// staleness under trickle ingest. 0 disables time-paced publishing.
  /// (With both pacers disabled, only explicit Publish() advances epochs.)
  int64_t max_staleness_ms = 0;

  /// Result cache geometry: `cache_shards` try_lock stripes of
  /// `cache_slots_per_shard` direct-mapped slots. cache_shards = 0 disables
  /// the cache entirely (readers always hit the view).
  size_t cache_shards = 8;
  size_t cache_slots_per_shard = 4096;
};

/// The concurrent serving engine. Writer entry points (Insert/InsertBatch/
/// Publish/Restore) may be called from any number of threads — they
/// serialize on an internal mutex. Reader entry points (Answer/CurrentView/
/// epoch) are safe from any number of threads concurrently with writers and
/// never take the writer mutex.
class EstimatorService {
 public:
  /// One published epoch: an immutable estimator plus its epoch number.
  /// Holding the shared_ptr pins the view — it stays valid and bit-stable
  /// after arbitrarily many later publishes.
  struct View {
    uint64_t epoch = 0;
    std::shared_ptr<const selectivity::SelectivityEstimator> estimator;
  };

  /// Wraps `writer` (which must support snapshots — every shipped estimator
  /// does) and publishes its empty state as epoch 1. When the writer is the
  /// sharded engine, views are extracted with ExtractMergedView (one merged
  /// single-estimator copy, cheaper to query than the wrapper); any other
  /// estimator publishes via CloneForView (a copy-on-write arena share) when
  /// it offers one, falling back to the CloneViaSnapshot deep-copy path.
  static Result<std::unique_ptr<EstimatorService>> Create(
      std::unique_ptr<selectivity::SelectivityEstimator> writer,
      const ServiceOptions& options);

  /// Builds the writer declaratively from `spec` (MakeEstimator) and wraps
  /// it. A "sharded" spec is the intended production configuration: ingest
  /// fans out across shard replicas on the spec's thread pool and views are
  /// merged extracts.
  static Result<std::unique_ptr<EstimatorService>> Create(
      const selectivity::EstimatorSpec& spec, const ServiceOptions& options);

  EstimatorService(const EstimatorService&) = delete;
  EstimatorService& operator=(const EstimatorService&) = delete;

  // ---------------------------------------------------------------- writers

  /// Ingests one value / a batch; may publish per the pacing options.
  void Insert(double x);
  void InsertBatch(std::span<const double> xs);

  /// Publishes a fresh view unconditionally; returns the new epoch.
  uint64_t Publish();

  // ---------------------------------------------------------------- readers

  /// Answers a mixed typed-query batch from the current published view,
  /// consulting the result cache when enabled: hits are served from cache,
  /// the misses of the batch are admitted to the view as ONE batched
  /// Answer() call (admission batching) and then cached. Bit-identical to
  /// answering through View::estimator directly — the cache can only change
  /// latency, never a value. Steady-state lock-free with respect to
  /// writers: one atomic epoch load validating the thread-local view pin,
  /// try_lock-only cache probes.
  void Answer(std::span<const selectivity::Query> queries,
              std::span<double> out) const;

  /// Scalar convenience overload (one-query batch through the same path).
  double Answer(const selectivity::Query& query) const;

  /// The current published view. Never empty: Create publishes epoch 1.
  View CurrentView() const;

  /// Epoch of the current published view (monotone non-decreasing; strictly
  /// bumped by every publish and by Restore).
  uint64_t epoch() const {
    return published_epoch_.load(std::memory_order_acquire);
  }

  /// Values retained by the writer estimator (takes the writer mutex).
  size_t count() const;

  /// Counters of the result cache (all zero when the cache is disabled).
  CacheStats cache_stats() const;

  // ----------------------------------------------------- checkpoint/restore

  /// Persists the service — a snapshot-format file holding a service chunk
  /// (current epoch + pacing position) and the writer estimator's envelope.
  /// Concurrent readers are unaffected; writers queue on the mutex.
  Status Checkpoint(const std::string& path) const;

  /// Restores a checkpoint written by Checkpoint() (possibly by another
  /// process — the warm-standby path): fully replaces the writer estimator,
  /// rebuilds a FRESH view from the restored state (a checkpointed view
  /// never crosses the restore boundary) and publishes it at an epoch
  /// strictly greater than both the checkpoint's epoch and every epoch this
  /// service has published — so all pre-restore cache entries and held views
  /// are invalidated by epoch. On error the service is untouched.
  Status Restore(const std::string& path);

 private:
  EstimatorService(std::unique_ptr<selectivity::SelectivityEstimator> writer,
                   const ServiceOptions& options);

  /// Extracts + warms a view of the writer's current state and swaps it in
  /// as `max(current epoch, epoch_floor) + 1`. Caller holds writer_mu_.
  uint64_t PublishLocked(uint64_t epoch_floor);

  /// The reader entry point: returns the current view, from the calling
  /// thread's pinned copy when its epoch is current, refreshing it under
  /// view_mu_ otherwise.
  View AcquireView() const;

  /// Re-derives the sharded fast path after writer_ changes.
  static selectivity::ShardedSelectivityEstimator* ShardedOf(
      selectivity::SelectivityEstimator* writer);

  void MaybePublishLocked();

  ServiceOptions options_;

  /// Writer state, all guarded by writer_mu_.
  mutable std::mutex writer_mu_;
  std::unique_ptr<selectivity::SelectivityEstimator> writer_;
  selectivity::ShardedSelectivityEstimator* sharded_ = nullptr;  // view of writer_
  size_t inserts_since_publish_ = 0;
  std::chrono::steady_clock::time_point last_publish_;

  /// The published view. view_mu_ guards only pointer copies — a publish
  /// holds it for one shared_ptr swap, a reader for one shared_ptr copy
  /// when refreshing its thread-local pin; estimator work and retired-view
  /// destruction happen outside it. published_epoch_ mirrors
  /// published_.epoch so readers can validate their pin without the lock.
  mutable std::mutex view_mu_;
  View published_;
  std::atomic<uint64_t> published_epoch_{0};

  /// Distinguishes this service in readers' thread-local pins (an address
  /// can be reused by a later service; this id never is).
  const uint64_t service_id_;

  std::unique_ptr<QueryResultCache> cache_;  // nullptr when disabled
};

/// Client-side admission batching for scalar point-read traffic: buffers
/// (query, destination) pairs and admits them to the service as one batched
/// Answer() call when `batch_size` accumulate, on Flush(), or at
/// destruction. All queries of one flush are answered at one epoch (one view
/// load), and per-query virtual dispatch, cache probing and view loading
/// amortize across the batch. Results are bit-identical to issuing each
/// query alone. Not thread-safe — one batcher per client thread.
class AdmissionBatcher {
 public:
  AdmissionBatcher(const EstimatorService& service, size_t batch_size);
  ~AdmissionBatcher() { Flush(); }

  AdmissionBatcher(const AdmissionBatcher&) = delete;
  AdmissionBatcher& operator=(const AdmissionBatcher&) = delete;

  /// Queues `query`; `*out` is written by the flush that admits it.
  void Enqueue(const selectivity::Query& query, double* out);

  /// Admits everything queued (no-op when empty).
  void Flush();

  size_t pending() const { return queries_.size(); }

 private:
  const EstimatorService& service_;
  const size_t batch_size_;
  std::vector<selectivity::Query> queries_;
  std::vector<double*> outs_;
  std::vector<double> values_;  // flush scratch
};

}  // namespace serving
}  // namespace wde

#endif  // WDE_SERVING_ESTIMATOR_SERVICE_HPP_
