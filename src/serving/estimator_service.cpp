#include "serving/estimator_service.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <utility>

#include "io/chunk.hpp"
#include "selectivity/estimator_registry.hpp"
#include "util/check.hpp"

namespace wde {
namespace serving {

namespace {

/// Chunk tag of the service checkpoint metadata ("SRVC"): epoch + pacing
/// position, framed ahead of the writer estimator's PR 4 envelope.
constexpr uint32_t kChunkServiceState = 0x43565253;

/// Monotone id source for readers' thread-local view pins; starts at 1 so a
/// default-constructed pin (id 0) never matches any service.
std::atomic<uint64_t> g_next_service_id{1};

}  // namespace

EstimatorService::EstimatorService(
    std::unique_ptr<selectivity::SelectivityEstimator> writer,
    const ServiceOptions& options)
    : options_(options),
      writer_(std::move(writer)),
      sharded_(ShardedOf(writer_.get())),
      last_publish_(std::chrono::steady_clock::now()),
      service_id_(g_next_service_id.fetch_add(1, std::memory_order_relaxed)) {
  if (options_.cache_shards != 0) {
    cache_ = std::make_unique<QueryResultCache>(options_.cache_shards,
                                                options_.cache_slots_per_shard);
  }
}

Result<std::unique_ptr<EstimatorService>> EstimatorService::Create(
    std::unique_ptr<selectivity::SelectivityEstimator> writer,
    const ServiceOptions& options) {
  if (writer == nullptr) {
    return Status::InvalidArgument("writer estimator must not be null");
  }
  if (!writer->snapshotable()) {
    return Status::FailedPrecondition(
        writer->name() +
        " does not support snapshots and cannot publish views or checkpoint");
  }
  if (options.cache_shards != 0 && options.cache_slots_per_shard == 0) {
    return Status::InvalidArgument(
        "cache_slots_per_shard must be positive when the cache is enabled");
  }
  if (options.max_staleness_ms < 0) {
    return Status::InvalidArgument("max_staleness_ms must be non-negative");
  }
  std::unique_ptr<EstimatorService> service(
      new EstimatorService(std::move(writer), options));
  {
    // Epoch 1: the writer's (empty) state, so readers always have a view.
    std::lock_guard<std::mutex> lock(service->writer_mu_);
    service->PublishLocked(0);
  }
  return service;
}

Result<std::unique_ptr<EstimatorService>> EstimatorService::Create(
    const selectivity::EstimatorSpec& spec, const ServiceOptions& options) {
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> writer =
      selectivity::MakeEstimator(spec);
  if (!writer.ok()) return writer.status();
  return Create(std::move(writer).value(), options);
}

selectivity::ShardedSelectivityEstimator* EstimatorService::ShardedOf(
    selectivity::SelectivityEstimator* writer) {
  const char* tag = writer->snapshot_type_tag();
  if (tag != nullptr && std::string_view(tag) == "sharded") {
    // Registry tags are unique per concrete type, so "sharded" IS the
    // sharded engine — the same identity argument merge tags make.
    return static_cast<selectivity::ShardedSelectivityEstimator*>(writer);
  }
  return nullptr;
}

uint64_t EstimatorService::PublishLocked(uint64_t epoch_floor) {
  std::unique_ptr<selectivity::SelectivityEstimator> fresh;
  if (sharded_ != nullptr) {
    fresh = sharded_->ExtractMergedView();
  } else if ((fresh = writer_->CloneForView()) != nullptr) {
    // The cheap path: a CoW copy sharing the writer's fitted arenas — no
    // serialize/parse round trip on the publish cadence.
  } else {
    Result<std::unique_ptr<selectivity::SelectivityEstimator>> clone =
        selectivity::CloneViaSnapshot(*writer_);
    // Create() verified the writer snapshots; a failure here is a broken
    // SaveState/LoadState implementation, not a runtime condition.
    WDE_CHECK(clone.ok(), clone.status().ToString().c_str());
    fresh = std::move(clone).value();
  }
  // Quiesce the view: bring every lazily fitted cache up to date with ALL
  // data it holds — not merely the interval-gated refresh a first query would
  // run, so a published view is always fitted at its full count — then prime
  // any remaining query-path state (e.g. a KDE's kd-tree) with one query.
  // After the swap below, concurrent readers only ever read the view.
  fresh->ForceRefit();
  (void)fresh->Answer(selectivity::Query::Cdf(fresh->Domain().hi));

  // published_epoch_ is only written here, under writer_mu_, so the relaxed
  // self-read is exact. The view swap under view_mu_ is two pointer moves;
  // the retired view leaves the critical section and dies (refcount
  // permitting) after the lock is gone, so readers refreshing their pin
  // never wait on estimator destruction.
  const uint64_t next_epoch =
      std::max(published_epoch_.load(std::memory_order_relaxed), epoch_floor) +
      1;
  std::shared_ptr<const selectivity::SelectivityEstimator> next(
      std::move(fresh));
  std::shared_ptr<const selectivity::SelectivityEstimator> retired;
  {
    std::lock_guard<std::mutex> lock(view_mu_);
    retired = std::move(published_.estimator);
    published_.epoch = next_epoch;
    published_.estimator = std::move(next);
    published_epoch_.store(next_epoch, std::memory_order_release);
  }
  retired.reset();
  inserts_since_publish_ = 0;
  last_publish_ = std::chrono::steady_clock::now();
  return next_epoch;
}

EstimatorService::View EstimatorService::AcquireView() const {
  struct ThreadPin {
    uint64_t service_id = 0;
    View view;
  };
  thread_local ThreadPin pin;
  const uint64_t epoch = published_epoch_.load(std::memory_order_acquire);
  if (pin.service_id != service_id_ || pin.view.epoch != epoch) {
    std::lock_guard<std::mutex> lock(view_mu_);
    pin.view = published_;
    pin.service_id = service_id_;
  }
  return pin.view;
}

void EstimatorService::MaybePublishLocked() {
  if (inserts_since_publish_ == 0) return;
  if (options_.publish_interval != 0 &&
      inserts_since_publish_ >= options_.publish_interval) {
    PublishLocked(0);
    return;
  }
  if (options_.max_staleness_ms > 0 &&
      std::chrono::steady_clock::now() - last_publish_ >=
          std::chrono::milliseconds(options_.max_staleness_ms)) {
    PublishLocked(0);
  }
}

void EstimatorService::Insert(double x) {
  std::lock_guard<std::mutex> lock(writer_mu_);
  writer_->Insert(x);
  ++inserts_since_publish_;
  MaybePublishLocked();
}

void EstimatorService::InsertBatch(std::span<const double> xs) {
  if (xs.empty()) return;
  std::lock_guard<std::mutex> lock(writer_mu_);
  writer_->InsertBatch(xs);
  inserts_since_publish_ += xs.size();
  MaybePublishLocked();
}

uint64_t EstimatorService::Publish() {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return PublishLocked(0);
}

EstimatorService::View EstimatorService::CurrentView() const {
  return AcquireView();
}

void EstimatorService::Answer(std::span<const selectivity::Query> queries,
                              std::span<double> out) const {
  WDE_CHECK(queries.size() == out.size(), "Answer spans must match");
  if (queries.empty()) return;
  const View view = AcquireView();
  const selectivity::SelectivityEstimator& estimator = *view.estimator;
  if (cache_ == nullptr) {
    estimator.Answer(queries, out);
    return;
  }
  const uint64_t epoch = view.epoch;
  // Probe the cache; the batch's misses are admitted to the view as ONE
  // batched Answer() call below. Bit-identity with the cache-off path holds
  // because per-query answers are independent of batch composition (the
  // batch ≡ scalar contract) and cached values were computed from the same
  // frozen epoch view.
  std::vector<size_t> miss_index;
  miss_index.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    if (!cache_->Lookup(queries[i], epoch, &out[i])) miss_index.push_back(i);
  }
  if (miss_index.empty()) return;
  if (miss_index.size() == queries.size()) {
    estimator.Answer(queries, out);
    for (size_t i = 0; i < queries.size(); ++i) {
      cache_->Insert(queries[i], epoch, out[i]);
    }
    return;
  }
  std::vector<selectivity::Query> miss_queries(miss_index.size());
  std::vector<double> miss_values(miss_index.size());
  for (size_t m = 0; m < miss_index.size(); ++m) {
    miss_queries[m] = queries[miss_index[m]];
  }
  estimator.Answer(miss_queries, miss_values);
  for (size_t m = 0; m < miss_index.size(); ++m) {
    out[miss_index[m]] = miss_values[m];
    cache_->Insert(miss_queries[m], epoch, miss_values[m]);
  }
}

double EstimatorService::Answer(const selectivity::Query& query) const {
  double out = 0.0;
  Answer(std::span<const selectivity::Query>(&query, 1),
         std::span<double>(&out, 1));
  return out;
}

size_t EstimatorService::count() const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  return writer_->count();
}

CacheStats EstimatorService::cache_stats() const {
  return cache_ != nullptr ? cache_->stats() : CacheStats{};
}

Status EstimatorService::Checkpoint(const std::string& path) const {
  std::lock_guard<std::mutex> lock(writer_mu_);
  io::VectorSink sink;
  WDE_RETURN_IF_ERROR(io::WriteSnapshotHeader(sink));
  io::VectorSink meta;
  // Publishes happen under writer_mu_ (held here), so this epoch is the one
  // the checkpointed writer state belongs to.
  WDE_RETURN_IF_ERROR(
      io::WriteU64(meta, published_epoch_.load(std::memory_order_acquire)));
  WDE_RETURN_IF_ERROR(io::WriteU64(meta, inserts_since_publish_));
  WDE_RETURN_IF_ERROR(io::WriteChunk(sink, kChunkServiceState, meta.bytes()));
  WDE_RETURN_IF_ERROR(writer_->SaveState(sink));
  // Write-then-rename so a kill or disk-full midway leaves the previous
  // checkpoint intact (the same discipline as SaveEstimatorSnapshotFile).
  const std::string tmp_path = path + ".tmp";
  Result<io::FileSink> file = io::FileSink::Open(tmp_path);
  if (!file.ok()) return file.status();
  Status written = file->Append(sink.bytes().data(), sink.bytes().size());
  if (written.ok()) written = file->Close();
  if (!written.ok()) {
    std::remove(tmp_path.c_str());
    return written;
  }
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    std::remove(tmp_path.c_str());
    return Status::Internal("cannot move finished checkpoint over '" + path +
                            "'");
  }
  return Status::OK();
}

Status EstimatorService::Restore(const std::string& path) {
  // Parse everything before mutating anything: on any error the service —
  // writer, views, epochs — is untouched.
  Result<io::FileSource> file = io::FileSource::Open(path);
  if (!file.ok()) return file.status();
  WDE_RETURN_IF_ERROR(io::ReadSnapshotHeader(*file).status());
  WDE_ASSIGN_OR_RETURN(const std::vector<uint8_t> meta,
                       io::ReadChunkExpecting(*file, kChunkServiceState));
  io::SpanSource meta_source(meta);
  WDE_ASSIGN_OR_RETURN(const uint64_t saved_epoch, io::ReadU64(meta_source));
  WDE_ASSIGN_OR_RETURN(const uint64_t pending, io::ReadU64(meta_source));
  if (meta_source.remaining() != 0) {
    return Status::InvalidArgument(
        "corrupt service checkpoint: oversized service chunk");
  }
  Result<std::unique_ptr<selectivity::SelectivityEstimator>> writer =
      selectivity::LoadEstimatorEnvelope(*file);
  if (!writer.ok()) return writer.status();
  if (file->remaining() != 0) {
    return Status::InvalidArgument("service checkpoint has trailing bytes");
  }
  // Commit. The restored writer replaces ours and a FRESH view is rebuilt
  // from it — a checkpointed (possibly pacing-stale) view never crosses the
  // restore boundary — at an epoch strictly above both the checkpoint's and
  // everything this service has published, so every pre-restore cache entry
  // and held view is invalidated by epoch comparison alone.
  std::lock_guard<std::mutex> lock(writer_mu_);
  writer_ = std::move(writer).value();
  sharded_ = ShardedOf(writer_.get());
  inserts_since_publish_ = static_cast<size_t>(pending);
  PublishLocked(saved_epoch);
  return Status::OK();
}

AdmissionBatcher::AdmissionBatcher(const EstimatorService& service,
                                   size_t batch_size)
    : service_(service), batch_size_(std::max<size_t>(1, batch_size)) {
  queries_.reserve(batch_size_);
  outs_.reserve(batch_size_);
}

void AdmissionBatcher::Enqueue(const selectivity::Query& query, double* out) {
  WDE_CHECK(out != nullptr, "Enqueue needs a destination");
  queries_.push_back(query);
  outs_.push_back(out);
  if (queries_.size() >= batch_size_) Flush();
}

void AdmissionBatcher::Flush() {
  if (queries_.empty()) return;
  values_.resize(queries_.size());
  service_.Answer(queries_, values_);
  for (size_t i = 0; i < outs_.size(); ++i) *outs_[i] = values_[i];
  queries_.clear();
  outs_.clear();
}

}  // namespace serving
}  // namespace wde
