#include "wavelet/cascade.hpp"

#include <cmath>

#include "numerics/matrix.hpp"

namespace wde {
namespace wavelet {
namespace {

constexpr double kSqrt2 = 1.4142135623730951;

}  // namespace

Result<std::vector<double>> ScalingFunctionAtIntegers(const WaveletFilter& filter) {
  const int len = filter.length();
  const std::vector<double>& h = filter.h();
  if (len == 2) {
    // Haar: φ = 1 on [0, 1) with the right-continuous convention.
    return std::vector<double>{1.0, 0.0};
  }
  // Interior integers 0..L−2 satisfy φ(m) = √2 Σ_n h_{2m−n} φ(n); φ(L−1) = 0.
  const int dim = len - 1;
  numerics::Matrix a(static_cast<size_t>(dim), static_cast<size_t>(dim));
  for (int m = 0; m < dim; ++m) {
    for (int n = 0; n < dim; ++n) {
      const int idx = 2 * m - n;
      if (idx >= 0 && idx < len) {
        a.at(static_cast<size_t>(m), static_cast<size_t>(n)) = kSqrt2 * h[idx];
      }
    }
  }
  Result<std::vector<double>> eig = numerics::UnitEigenvector(a);
  if (!eig.ok()) return eig.status();
  std::vector<double> values = std::move(eig).value();
  values.push_back(0.0);  // φ(L−1) = 0
  return values;
}

Result<CascadeTables> ComputeCascadeTables(const WaveletFilter& filter, int levels) {
  if (levels < 1 || levels > 24) {
    return Status::InvalidArgument("cascade levels must be in [1, 24]");
  }
  Result<std::vector<double>> start = ScalingFunctionAtIntegers(filter);
  if (!start.ok()) return start.status();

  const int support = filter.support_length();
  const std::vector<double>& h = filter.h();
  const std::vector<double>& g = filter.g();

  // Refine: values on grid step 2^-j -> step 2^-(j+1) via
  // φ(i/2^{j+1}) = √2 Σ_k h_k φ(i/2^j − k) (old index i − k·2^j).
  std::vector<double> phi = std::move(start).value();
  for (int j = 0; j < levels; ++j) {
    const long old_step = 1L << j;
    const long new_size = static_cast<long>(support) * (old_step * 2) + 1;
    std::vector<double> next(static_cast<size_t>(new_size), 0.0);
    const long old_size = static_cast<long>(phi.size());
    for (long i = 0; i < new_size; ++i) {
      double acc = 0.0;
      for (int k = 0; k < filter.length(); ++k) {
        const long idx = i - static_cast<long>(k) * old_step;
        if (idx >= 0 && idx < old_size) {
          acc += h[static_cast<size_t>(k)] * phi[static_cast<size_t>(idx)];
        }
      }
      next[static_cast<size_t>(i)] = kSqrt2 * acc;
    }
    phi = std::move(next);
  }

  // ψ(i/2^J) = √2 Σ_k g_k φ(2i/2^J − k); the argument lies on the same grid.
  const long scale = 1L << levels;
  const long size = static_cast<long>(phi.size());
  std::vector<double> psi(phi.size(), 0.0);
  for (long i = 0; i < size; ++i) {
    double acc = 0.0;
    for (int k = 0; k < filter.length(); ++k) {
      const long idx = 2 * i - static_cast<long>(k) * scale;
      if (idx >= 0 && idx < size) {
        acc += g[static_cast<size_t>(k)] * phi[static_cast<size_t>(idx)];
      }
    }
    psi[static_cast<size_t>(i)] = kSqrt2 * acc;
  }

  CascadeTables tables;
  tables.levels = levels;
  tables.phi = std::move(phi);
  tables.psi = std::move(psi);
  return tables;
}

}  // namespace wavelet
}  // namespace wde
