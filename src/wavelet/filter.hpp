#ifndef WDE_WAVELET_FILTER_HPP_
#define WDE_WAVELET_FILTER_HPP_

#include <string>
#include <vector>

#include "util/result.hpp"

namespace wde {
namespace wavelet {

/// An orthonormal conjugate-quadrature-mirror filter pair (h, g) defining a
/// compactly supported scaling function φ and wavelet ψ through
///   φ(x) = √2 Σ_k h_k φ(2x − k),   ψ(x) = √2 Σ_k g_k φ(2x − k),
/// with g_k = (−1)^k h_{L−1−k}. Both φ and ψ are supported on [0, L−1].
///
/// Filters are *derived*, not hard-coded: the Daubechies half-band polynomial
/// is factorized numerically (Durand–Kerner roots), giving the extremal-phase
/// family; Symmlets pick, among the 2^G reciprocal root-group selections, the
/// one whose frequency response has the most linear phase (least-asymmetric
/// family, the paper's choice with N = 8).
class WaveletFilter {
 public:
  /// Haar filter (N = 1).
  static WaveletFilter Haar();

  /// Daubechies extremal-phase filter with N vanishing moments (length 2N).
  /// Supports 1 <= N <= 10.
  static Result<WaveletFilter> Daubechies(int vanishing_moments);

  /// Least-asymmetric (Symmlet) filter with N vanishing moments (length 2N).
  /// Supports 1 <= N <= 10; N = 1 degenerates to Haar.
  static Result<WaveletFilter> Symmlet(int vanishing_moments);

  /// Rebuilds a filter from its `name()` ("haar", "dbN", "symN") — the
  /// self-describing handle snapshots store instead of raw coefficients, so
  /// restored filters are re-derived by the same construction as live ones
  /// (bit-identical within one platform). Unknown names are an error.
  static Result<WaveletFilter> FromName(const std::string& name);

  const std::vector<double>& h() const { return h_; }
  const std::vector<double>& g() const { return g_; }
  int length() const { return static_cast<int>(h_.size()); }
  /// Length of the support interval of φ and ψ: [0, support_length()].
  int support_length() const { return length() - 1; }
  int vanishing_moments() const { return vanishing_moments_; }
  const std::string& name() const { return name_; }

  /// Max deviation from the CQF orthonormality conditions
  /// Σ_k h_k h_{k+2m} = δ_{m0}; useful for tests and construction checks.
  double OrthonormalityDefect() const;

 private:
  WaveletFilter(std::vector<double> h, int vanishing_moments, std::string name);

  std::vector<double> h_;
  std::vector<double> g_;
  int vanishing_moments_;
  std::string name_;
};

}  // namespace wavelet
}  // namespace wde

#endif  // WDE_WAVELET_FILTER_HPP_
