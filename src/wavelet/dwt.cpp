#include "wavelet/dwt.hpp"

#include <cmath>

namespace wde {
namespace wavelet {
namespace {

bool IsPowerOfTwo(size_t n) { return n > 0 && (n & (n - 1)) == 0; }

/// One periodized analysis step: splits `signal` (even length) into
/// approximation and detail halves by decimated circular correlation.
void AnalysisStep(const WaveletFilter& filter, const std::vector<double>& signal,
                  std::vector<double>* approx, std::vector<double>* detail) {
  const size_t n = signal.size();
  const size_t half = n / 2;
  const std::vector<double>& h = filter.h();
  const std::vector<double>& g = filter.g();
  approx->assign(half, 0.0);
  detail->assign(half, 0.0);
  for (size_t k = 0; k < half; ++k) {
    double a = 0.0;
    double d = 0.0;
    for (int m = 0; m < filter.length(); ++m) {
      const size_t idx = (2 * k + static_cast<size_t>(m)) % n;
      a += h[static_cast<size_t>(m)] * signal[idx];
      d += g[static_cast<size_t>(m)] * signal[idx];
    }
    (*approx)[k] = a;
    (*detail)[k] = d;
  }
}

/// One periodized synthesis step (adjoint of AnalysisStep).
std::vector<double> SynthesisStep(const WaveletFilter& filter,
                                  const std::vector<double>& approx,
                                  const std::vector<double>& detail) {
  const size_t half = approx.size();
  const size_t n = half * 2;
  const std::vector<double>& h = filter.h();
  const std::vector<double>& g = filter.g();
  std::vector<double> signal(n, 0.0);
  for (size_t k = 0; k < half; ++k) {
    for (int m = 0; m < filter.length(); ++m) {
      const size_t idx = (2 * k + static_cast<size_t>(m)) % n;
      signal[idx] += h[static_cast<size_t>(m)] * approx[k] +
                     g[static_cast<size_t>(m)] * detail[k];
    }
  }
  return signal;
}

}  // namespace

Result<DwtCoefficients> ForwardDwt(const WaveletFilter& filter,
                                   const std::vector<double>& signal, int levels) {
  if (!IsPowerOfTwo(signal.size())) {
    return Status::InvalidArgument("DWT requires a power-of-two signal length");
  }
  if (levels < 1 || (signal.size() >> levels) < 1) {
    return Status::InvalidArgument("invalid number of DWT levels");
  }
  DwtCoefficients out;
  std::vector<double> current = signal;
  for (int level = 0; level < levels; ++level) {
    std::vector<double> approx;
    std::vector<double> detail;
    AnalysisStep(filter, current, &approx, &detail);
    out.details.push_back(std::move(detail));
    current = std::move(approx);
  }
  out.approximation = std::move(current);
  return out;
}

Result<std::vector<double>> InverseDwt(const WaveletFilter& filter,
                                       const DwtCoefficients& coefficients) {
  if (coefficients.details.empty()) {
    return Status::InvalidArgument("no detail levels to invert");
  }
  std::vector<double> current = coefficients.approximation;
  for (size_t level = coefficients.details.size(); level-- > 0;) {
    const std::vector<double>& detail = coefficients.details[level];
    if (detail.size() != current.size()) {
      return Status::InvalidArgument("inconsistent DWT coefficient shapes");
    }
    current = SynthesisStep(filter, current, detail);
  }
  return current;
}

}  // namespace wavelet
}  // namespace wde
