#ifndef WDE_WAVELET_DAUBECHIES_LAGARIAS_HPP_
#define WDE_WAVELET_DAUBECHIES_LAGARIAS_HPP_

#include "wavelet/filter.hpp"

namespace wde {
namespace wavelet {

/// Pointwise evaluation of φ and ψ by the Daubechies–Lagarias local
/// pyramid algorithm (products of the two refinement matrices selected by the
/// binary digits of the fractional part). Independent of the cascade tables;
/// used to cross-validate them and wherever exact point values are needed.
///
/// Evaluation costs O(digits · L²) per call, so the table-based
/// `WaveletBasis` is preferred in hot paths.
class DaubechiesLagariasEvaluator {
 public:
  explicit DaubechiesLagariasEvaluator(const WaveletFilter& filter, int digits = 40);

  /// φ(x); 0 outside [0, L−1].
  double Phi(double x) const;

  /// ψ(x) = √2 Σ_k g_k φ(2x − k); 0 outside [0, L−1].
  double Psi(double x) const;

 private:
  /// Fills values[i] = φ(t + i) for t in [0, 1), i = 0..L−2.
  void PhiVector(double t, std::vector<double>* values) const;

  WaveletFilter filter_;
  int digits_;
  int dim_;  // L − 1
  std::vector<double> a0_;  // refinement matrix for digit 0, row-major
  std::vector<double> a1_;  // refinement matrix for digit 1
};

}  // namespace wavelet
}  // namespace wde

#endif  // WDE_WAVELET_DAUBECHIES_LAGARIAS_HPP_
