#include "wavelet/filter.hpp"

#include <cmath>
#include <complex>

#include "numerics/polynomial.hpp"
#include "numerics/special_functions.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace wavelet {
namespace {

using numerics::Complex;

constexpr double kSqrt2 = 1.4142135623730951;

/// A group of roots of the half-band polynomial that must be kept together to
/// preserve real filter coefficients: either one real y-root or a complex
/// conjugate pair. Each group offers two z-domain choices (inside or outside
/// the unit circle), which all give the same |m0|² but different phases.
struct RootGroup {
  std::vector<Complex> inside;   // |z| < 1 representatives
  std::vector<Complex> outside;  // reciprocal representatives
};

/// Maps a root y of the half-band polynomial to the z-domain pair solving
/// z² − (2 − 4y) z + 1 = 0 (so that y = (2 − z − 1/z)/4, i.e.
/// sin²(ω/2) ↦ e^{−iω}). Returns the root with |z| < 1; the other is 1/z.
Complex InsideUnitCircleRoot(Complex y) {
  const Complex b = Complex(2.0, 0.0) - 4.0 * y;
  const Complex disc = std::sqrt(b * b - 4.0);
  Complex z1 = (b + disc) / 2.0;
  Complex z2 = (b - disc) / 2.0;
  return std::abs(z1) <= std::abs(z2) ? z1 : z2;
}

/// Assembles the filter h from the chosen z-roots of the "root half" and the
/// (1+z)^N factor, normalizing to Σ h = √2. Coefficients come out real up to
/// rounding; the imaginary residue is dropped.
std::vector<double> AssembleFilter(int n_moments, const std::vector<Complex>& zroots) {
  std::vector<Complex> poly{Complex(1.0, 0.0)};
  for (int i = 0; i < n_moments; ++i) {
    poly = numerics::MultiplyPolynomials(
        poly, std::vector<Complex>{Complex(1.0, 0.0), Complex(1.0, 0.0)});
  }
  for (const Complex& z : zroots) {
    poly = numerics::MultiplyPolynomials(
        poly, std::vector<Complex>{-z, Complex(1.0, 0.0)});
  }
  std::vector<double> h(poly.size());
  double sum = 0.0;
  for (size_t i = 0; i < poly.size(); ++i) {
    h[i] = poly[i].real();
    sum += h[i];
  }
  const double scale = kSqrt2 / sum;
  for (double& c : h) c *= scale;
  return h;
}

/// Weighted phase-nonlinearity score of the frequency response
/// H(ω) = Σ h_k e^{−iωk}: unwraps arg H on (0, π), removes the best-fit
/// linear-in-ω component, and returns the |H|²-weighted RMS deviation.
/// Least-asymmetric filters minimize this.
double PhaseNonlinearity(const std::vector<double>& h) {
  const int kGrid = 256;
  double prev_phase = 0.0;
  double unwrap_offset = 0.0;
  std::vector<double> omegas, phases, weights;
  omegas.reserve(kGrid);
  for (int m = 1; m < kGrid; ++m) {
    const double omega = M_PI * m / kGrid;
    Complex resp(0.0, 0.0);
    for (size_t k = 0; k < h.size(); ++k) {
      resp += h[k] * std::exp(Complex(0.0, -omega * static_cast<double>(k)));
    }
    const double mag2 = std::norm(resp);
    if (mag2 < 1e-12) continue;
    double phase = std::arg(resp);
    // Unwrap: keep phase continuous relative to the previous sample.
    while (phase + unwrap_offset - prev_phase > M_PI) unwrap_offset -= 2.0 * M_PI;
    while (phase + unwrap_offset - prev_phase < -M_PI) unwrap_offset += 2.0 * M_PI;
    phase += unwrap_offset;
    prev_phase = phase;
    omegas.push_back(omega);
    phases.push_back(phase);
    weights.push_back(mag2);
  }
  // Weighted least-squares slope through the origin.
  double num = 0.0;
  double den = 0.0;
  for (size_t i = 0; i < omegas.size(); ++i) {
    num += weights[i] * phases[i] * omegas[i];
    den += weights[i] * omegas[i] * omegas[i];
  }
  const double slope = den > 0.0 ? num / den : 0.0;
  double score = 0.0;
  double wsum = 0.0;
  for (size_t i = 0; i < omegas.size(); ++i) {
    const double dev = phases[i] - slope * omegas[i];
    score += weights[i] * dev * dev;
    wsum += weights[i];
  }
  return wsum > 0.0 ? std::sqrt(score / wsum) : 0.0;
}

/// Finds the half-band polynomial roots grouped by conjugation.
Result<std::vector<RootGroup>> HalfBandRootGroups(int n_moments) {
  // P(y) = Σ_{k=0}^{N−1} C(N−1+k, k) y^k  (Daubechies' construction).
  std::vector<double> p(static_cast<size_t>(n_moments), 0.0);
  for (int k = 0; k < n_moments; ++k) {
    p[static_cast<size_t>(k)] = numerics::BinomialCoefficient(n_moments - 1 + k, k);
  }
  Result<std::vector<Complex>> roots = numerics::FindPolynomialRoots(p);
  if (!roots.ok()) return roots.status();

  std::vector<RootGroup> groups;
  std::vector<bool> used(roots->size(), false);
  const double kImagTol = 1e-9;
  for (size_t i = 0; i < roots->size(); ++i) {
    if (used[i]) continue;
    used[i] = true;
    const Complex y = (*roots)[i];
    RootGroup group;
    if (std::fabs(y.imag()) < kImagTol) {
      const Complex z = InsideUnitCircleRoot(Complex(y.real(), 0.0));
      group.inside = {z};
      group.outside = {1.0 / z};
    } else {
      // Find and consume the conjugate partner.
      size_t partner = i;
      double best = 1e300;
      for (size_t j = i + 1; j < roots->size(); ++j) {
        if (used[j]) continue;
        const double dist = std::abs((*roots)[j] - std::conj(y));
        if (dist < best) {
          best = dist;
          partner = j;
        }
      }
      if (partner == i || best > 1e-6) {
        return Status::Internal("conjugate root pairing failed");
      }
      used[partner] = true;
      const Complex z = InsideUnitCircleRoot(y);
      group.inside = {z, std::conj(z)};
      group.outside = {1.0 / z, std::conj(1.0 / z)};
    }
    groups.push_back(std::move(group));
  }
  return groups;
}

Result<std::vector<double>> BuildCoefficients(int n_moments, bool least_asymmetric) {
  Result<std::vector<RootGroup>> groups = HalfBandRootGroups(n_moments);
  if (!groups.ok()) return groups.status();

  const size_t n_groups = groups->size();
  std::vector<double> best_filter;
  double best_score = 1e300;
  const size_t combos = least_asymmetric ? (1ULL << n_groups) : 1;
  for (size_t mask = 0; mask < combos; ++mask) {
    std::vector<Complex> zroots;
    for (size_t gi = 0; gi < n_groups; ++gi) {
      const RootGroup& g = (*groups)[gi];
      const std::vector<Complex>& chosen =
          ((mask >> gi) & 1ULL) ? g.outside : g.inside;
      zroots.insert(zroots.end(), chosen.begin(), chosen.end());
    }
    std::vector<double> h = AssembleFilter(n_moments, zroots);
    const double score = least_asymmetric ? PhaseNonlinearity(h) : 0.0;
    if (score < best_score) {
      best_score = score;
      best_filter = std::move(h);
    }
  }
  if (best_filter.empty()) return Status::Internal("filter assembly produced nothing");
  return best_filter;
}

}  // namespace

WaveletFilter::WaveletFilter(std::vector<double> h, int vanishing_moments,
                             std::string name)
    : h_(std::move(h)), vanishing_moments_(vanishing_moments), name_(std::move(name)) {
  const size_t len = h_.size();
  g_.resize(len);
  for (size_t k = 0; k < len; ++k) {
    const double sign = (k % 2 == 0) ? 1.0 : -1.0;
    g_[k] = sign * h_[len - 1 - k];
  }
}

WaveletFilter WaveletFilter::Haar() {
  return WaveletFilter({1.0 / kSqrt2, 1.0 / kSqrt2}, 1, "haar");
}

Result<WaveletFilter> WaveletFilter::Daubechies(int vanishing_moments) {
  if (vanishing_moments < 1 || vanishing_moments > 10) {
    return Status::InvalidArgument(
        Format("Daubechies order %d unsupported (want 1..10)", vanishing_moments));
  }
  if (vanishing_moments == 1) return Haar();
  Result<std::vector<double>> h = BuildCoefficients(vanishing_moments, false);
  if (!h.ok()) return h.status();
  WaveletFilter filter(std::move(h).value(), vanishing_moments,
                       Format("db%d", vanishing_moments));
  if (filter.OrthonormalityDefect() > 1e-8) {
    return Status::Internal("constructed Daubechies filter fails orthonormality");
  }
  return filter;
}

Result<WaveletFilter> WaveletFilter::Symmlet(int vanishing_moments) {
  if (vanishing_moments < 1 || vanishing_moments > 10) {
    return Status::InvalidArgument(
        Format("Symmlet order %d unsupported (want 1..10)", vanishing_moments));
  }
  if (vanishing_moments == 1) return Haar();
  Result<std::vector<double>> h = BuildCoefficients(vanishing_moments, true);
  if (!h.ok()) return h.status();
  WaveletFilter filter(std::move(h).value(), vanishing_moments,
                       Format("sym%d", vanishing_moments));
  if (filter.OrthonormalityDefect() > 1e-8) {
    return Status::Internal("constructed Symmlet filter fails orthonormality");
  }
  return filter;
}

Result<WaveletFilter> WaveletFilter::FromName(const std::string& name) {
  if (name == "haar") return Haar();
  const auto parse_order = [&name](size_t prefix_len) -> int {
    if (name.size() <= prefix_len || name.size() > prefix_len + 2) return -1;
    int order = 0;
    for (size_t i = prefix_len; i < name.size(); ++i) {
      if (name[i] < '0' || name[i] > '9') return -1;
      order = order * 10 + (name[i] - '0');
    }
    return order;
  };
  if (name.rfind("db", 0) == 0) {
    const int order = parse_order(2);
    if (order >= 1) return Daubechies(order);
  } else if (name.rfind("sym", 0) == 0) {
    const int order = parse_order(3);
    if (order >= 1) return Symmlet(order);
  }
  return Status::InvalidArgument(Format("unknown wavelet filter name '%s'",
                                        name.c_str()));
}

double WaveletFilter::OrthonormalityDefect() const {
  const int len = length();
  double defect = 0.0;
  for (int m = 0; 2 * m < len; ++m) {
    double acc = 0.0;
    for (int k = 0; k + 2 * m < len; ++k) acc += h_[k] * h_[k + 2 * m];
    const double target = (m == 0) ? 1.0 : 0.0;
    defect = std::max(defect, std::fabs(acc - target));
  }
  return defect;
}

}  // namespace wavelet
}  // namespace wde
