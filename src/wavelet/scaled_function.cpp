#include "wavelet/scaled_function.hpp"

#include <cmath>

#include "numerics/integration.hpp"
#include "util/check.hpp"

namespace wde {
namespace wavelet {

Result<WaveletBasis> WaveletBasis::Create(const WaveletFilter& filter,
                                          int table_levels) {
  if (table_levels < 4 || table_levels > 20) {
    return Status::InvalidArgument("table_levels must be in [4, 20]");
  }
  Result<CascadeTables> tables = ComputeCascadeTables(filter, table_levels);
  if (!tables.ok()) return tables.status();
  const double dx = tables->dx();
  std::vector<double> phi_cdf_values = numerics::CumulativeTrapezoid(tables->phi, dx);
  std::vector<double> psi_cdf_values = numerics::CumulativeTrapezoid(tables->psi, dx);
  auto phi = std::make_shared<const numerics::UniformGridInterpolator>(
      0.0, dx, std::move(tables->phi));
  auto psi = std::make_shared<const numerics::UniformGridInterpolator>(
      0.0, dx, std::move(tables->psi));
  auto phi_cdf = std::make_shared<const numerics::UniformGridInterpolator>(
      0.0, dx, std::move(phi_cdf_values));
  auto psi_cdf = std::make_shared<const numerics::UniformGridInterpolator>(
      0.0, dx, std::move(psi_cdf_values));
  return WaveletBasis(std::make_shared<const WaveletFilter>(filter), std::move(phi),
                      std::move(psi), std::move(phi_cdf), std::move(psi_cdf));
}

double WaveletBasis::PhiAntiderivative(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= phi_cdf_->x1()) return phi_cdf_->values().back();
  return phi_cdf_->Evaluate(x);
}

double WaveletBasis::PsiAntiderivative(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= psi_cdf_->x1()) return psi_cdf_->values().back();
  return psi_cdf_->Evaluate(x);
}

double WaveletBasis::PhiJk(int j, int k, double x) const {
  WDE_DCHECK(j >= 0 && j < 31);
  const double scale = static_cast<double>(1 << j);
  return std::sqrt(scale) * phi_->Evaluate(scale * x - static_cast<double>(k));
}

double WaveletBasis::PsiJk(int j, int k, double x) const {
  WDE_DCHECK(j >= 0 && j < 31);
  const double scale = static_cast<double>(1 << j);
  return std::sqrt(scale) * psi_->Evaluate(scale * x - static_cast<double>(k));
}

TranslationWindow WaveletBasis::LevelWindow(int j) const {
  WDE_CHECK(j >= 0 && j < 31);
  TranslationWindow w;
  w.lo = -(support_length() - 1);
  w.hi = (1 << j) - 1;
  return w;
}

TranslationWindow WaveletBasis::PointWindow(int j, double x) const {
  const TranslationWindow level = LevelWindow(j);
  const double scaled = std::ldexp(x, j);  // 2^j x
  // φ(2^j x − k) is nonzero iff 2^j x − k lies in (0, L−1), i.e.
  // k in (2^j x − (L−1), 2^j x).
  TranslationWindow w;
  w.lo = static_cast<int>(std::ceil(scaled)) - support_length();
  w.hi = static_cast<int>(std::floor(scaled));
  w.lo = std::max(w.lo, level.lo);
  w.hi = std::min(w.hi, level.hi);
  return w;
}

}  // namespace wavelet
}  // namespace wde
