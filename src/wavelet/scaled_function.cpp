#include "wavelet/scaled_function.hpp"

#include <cmath>

#include "numerics/integration.hpp"
#include "numerics/simd.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace wavelet {

namespace {

/// Exactly invertible grid steps: 1/dx is representable and multiplication
/// by it reproduces division bit-for-bit. Holds for the cascade tables
/// (dx = 2^-levels); enforced so the hoisted fast path can never silently
/// diverge from the scalar interpolator.
bool IsPowerOfTwo(double dx) {
  int exponent = 0;
  return std::frexp(dx, &exponent) == 0.5;
}

}  // namespace

ScaledLevelEvaluator::ScaledLevelEvaluator(
    int j, int support,
    std::shared_ptr<const numerics::UniformGridInterpolator> table,
    std::shared_ptr<const numerics::UniformGridInterpolator> cdf)
    : j_(j),
      support_(support),
      level_lo_(-(support - 1)),
      level_hi_((1 << j) - 1),
      scale_(static_cast<double>(1 << j)),
      sqrt_scale_(std::sqrt(scale_)),
      table_x0_(table->x0()),
      table_inv_dx_(1.0 / table->dx()),
      table_t_max_(static_cast<double>(table->values().size() - 1)),
      table_values_(table->values().data()),
      table_n_(table->values().size()),
      cdf_x0_(cdf->x0()),
      cdf_inv_dx_(1.0 / cdf->dx()),
      cdf_t_max_(static_cast<double>(cdf->values().size() - 1)),
      cdf_values_(cdf->values().data()),
      cdf_n_(cdf->values().size()),
      cdf_x1_(cdf->x1()),
      cdf_last_(cdf->values().back()),
      table_(std::move(table)),
      cdf_(std::move(cdf)) {
  WDE_CHECK(IsPowerOfTwo(table_->dx()) && IsPowerOfTwo(cdf_->dx()),
            "hoisted level evaluation requires power-of-two grid steps");
  WDE_CHECK(table_->x0() == 0.0 && cdf_->x0() == 0.0,
            "hoisted level evaluation requires zero-based grids");
}

Result<WaveletBasis> WaveletBasis::Create(const WaveletFilter& filter,
                                          int table_levels) {
  if (table_levels < 4 || table_levels > 20) {
    return Status::InvalidArgument("table_levels must be in [4, 20]");
  }
  Result<CascadeTables> tables = ComputeCascadeTables(filter, table_levels);
  if (!tables.ok()) return tables.status();
  const double dx = tables->dx();
  std::vector<double> phi_cdf_values = numerics::CumulativeTrapezoid(tables->phi, dx);
  std::vector<double> psi_cdf_values = numerics::CumulativeTrapezoid(tables->psi, dx);
  auto phi = std::make_shared<const numerics::UniformGridInterpolator>(
      0.0, dx, std::move(tables->phi));
  auto psi = std::make_shared<const numerics::UniformGridInterpolator>(
      0.0, dx, std::move(tables->psi));
  auto phi_cdf = std::make_shared<const numerics::UniformGridInterpolator>(
      0.0, dx, std::move(phi_cdf_values));
  auto psi_cdf = std::make_shared<const numerics::UniformGridInterpolator>(
      0.0, dx, std::move(psi_cdf_values));
  return WaveletBasis(std::make_shared<const WaveletFilter>(filter), table_levels,
                      std::move(phi), std::move(psi), std::move(phi_cdf),
                      std::move(psi_cdf));
}

Result<WaveletBasis> WaveletBasis::FromTables(
    const WaveletFilter& filter, int table_levels, std::span<const double> phi,
    std::span<const double> psi, std::span<const double> phi_cdf,
    std::span<const double> psi_cdf, std::shared_ptr<const void> keepalive) {
  if (table_levels < 4 || table_levels > 20) {
    return Status::InvalidArgument("table_levels must be in [4, 20]");
  }
  // The cascade grid covers [0, support_length] at step 2^-table_levels.
  const size_t expected =
      static_cast<size_t>(filter.support_length()) *
          (static_cast<size_t>(1) << table_levels) +
      1;
  if (phi.size() != expected || psi.size() != expected ||
      phi_cdf.size() != expected || psi_cdf.size() != expected) {
    return Status::InvalidArgument(
        Format("basis tables have the wrong size for %s at 2^-%d (want %zu)",
               filter.name().c_str(), table_levels, expected));
  }
  const double dx = 1.0 / static_cast<double>(1 << table_levels);
  auto phi_table = std::make_shared<const numerics::UniformGridInterpolator>(
      0.0, dx, phi, keepalive);
  auto psi_table = std::make_shared<const numerics::UniformGridInterpolator>(
      0.0, dx, psi, keepalive);
  auto phi_cdf_table =
      std::make_shared<const numerics::UniformGridInterpolator>(0.0, dx,
                                                                phi_cdf,
                                                                keepalive);
  auto psi_cdf_table =
      std::make_shared<const numerics::UniformGridInterpolator>(0.0, dx,
                                                                psi_cdf,
                                                                keepalive);
  return WaveletBasis(std::make_shared<const WaveletFilter>(filter),
                      table_levels, std::move(phi_table), std::move(psi_table),
                      std::move(phi_cdf_table), std::move(psi_cdf_table));
}

void WaveletBasis::EvaluateMany(MotherFunction f, std::span<const double> xs,
                                std::span<double> out) const {
  (f == MotherFunction::kPhi ? phi_ : psi_)->EvaluateMany(xs, out);
}

double WaveletBasis::PhiAntiderivative(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= phi_cdf_->x1()) return phi_cdf_->values().back();
  return phi_cdf_->Evaluate(x);
}

double WaveletBasis::PsiAntiderivative(double x) const {
  if (x <= 0.0) return 0.0;
  if (x >= psi_cdf_->x1()) return psi_cdf_->values().back();
  return psi_cdf_->Evaluate(x);
}

void WaveletBasis::AntiderivativeMany(MotherFunction f, std::span<const double> xs,
                                      std::span<double> out) const {
  WDE_CHECK_EQ(xs.size(), out.size(), "AntiderivativeMany spans must match");
  const numerics::UniformGridInterpolator& cdf =
      f == MotherFunction::kPhi ? *phi_cdf_ : *psi_cdf_;
  const double x0 = cdf.x0();
  const double dx = cdf.dx();
  const double* values = cdf.values().data();
  const size_t n = cdf.values().size();
  const double x1 = cdf.x1();
  const double last = cdf.values().back();
  const double t_max = static_cast<double>(n - 1);
  const size_t count = xs.size();
  // Branch-free rewrite of the scalar ladder (0 left of the support, `last`
  // right of it, EvaluateOn in between): every select uses exactly the
  // comparisons the scalar branches evaluate, out-of-range lanes read a
  // clamped valid cell and are overridden, so the loop vectorizes while
  // staying bit-identical per element.
  WDE_SIMD_LOOP
  for (size_t i = 0; i < count; ++i) {
    const double x = xs[i];
    const double t = (x - x0) / dx;
    const bool on_grid = t >= 0.0 && t <= t_max;
    const double tc = on_grid ? t : 0.0;
    size_t idx = static_cast<size_t>(tc);
    idx = idx < n - 2 ? idx : n - 2;
    const double frac = tc - static_cast<double>(idx);
    const double v = values[idx] * (1.0 - frac) + values[idx + 1] * frac;
    const double interior = !on_grid ? 0.0 : (t >= t_max ? values[n - 1] : v);
    out[i] = x <= 0.0 ? 0.0 : (x >= x1 ? last : interior);
  }
}

double WaveletBasis::PhiJk(int j, int k, double x) const {
  WDE_DCHECK(j >= 0 && j < 31);
  const double scale = static_cast<double>(1 << j);
  return std::sqrt(scale) * phi_->Evaluate(scale * x - static_cast<double>(k));
}

double WaveletBasis::PsiJk(int j, int k, double x) const {
  WDE_DCHECK(j >= 0 && j < 31);
  const double scale = static_cast<double>(1 << j);
  return std::sqrt(scale) * psi_->Evaluate(scale * x - static_cast<double>(k));
}

ScaledLevelEvaluator WaveletBasis::PhiLevel(int j) const {
  WDE_CHECK(j >= 0 && j < 31);
  return ScaledLevelEvaluator(j, support_length(), phi_, phi_cdf_);
}

ScaledLevelEvaluator WaveletBasis::PsiLevel(int j) const {
  WDE_CHECK(j >= 0 && j < 31);
  return ScaledLevelEvaluator(j, support_length(), psi_, psi_cdf_);
}

TranslationWindow WaveletBasis::LevelWindow(int j) const {
  WDE_CHECK(j >= 0 && j < 31);
  TranslationWindow w;
  w.lo = -(support_length() - 1);
  w.hi = (1 << j) - 1;
  return w;
}

TranslationWindow WaveletBasis::PointWindow(int j, double x) const {
  const TranslationWindow level = LevelWindow(j);
  const double scaled = std::ldexp(x, j);  // 2^j x
  // φ(2^j x − k) is nonzero iff 2^j x − k lies in (0, L−1), i.e.
  // k in (2^j x − (L−1), 2^j x).
  TranslationWindow w;
  w.lo = static_cast<int>(std::ceil(scaled)) - support_length();
  w.hi = static_cast<int>(std::floor(scaled));
  w.lo = std::max(w.lo, level.lo);
  w.hi = std::min(w.hi, level.hi);
  return w;
}

}  // namespace wavelet
}  // namespace wde
