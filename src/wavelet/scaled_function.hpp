#ifndef WDE_WAVELET_SCALED_FUNCTION_HPP_
#define WDE_WAVELET_SCALED_FUNCTION_HPP_

#include <memory>

#include "numerics/interpolation.hpp"
#include "util/result.hpp"
#include "wavelet/cascade.hpp"
#include "wavelet/filter.hpp"

namespace wde {
namespace wavelet {

/// Half-open translation window [lo, hi] of indices k for which δ_{j,k}(x)
/// can be nonzero.
struct TranslationWindow {
  int lo = 0;
  int hi = -1;  // empty when hi < lo
  int size() const { return hi >= lo ? hi - lo + 1 : 0; }
};

/// Fast evaluation of the dilated/translated basis functions
///   φ_{j,k}(x) = 2^{j/2} φ(2^j x − k),   ψ_{j,k}(x) = 2^{j/2} ψ(2^j x − k)
/// backed by cascade tables with linear interpolation. The table resolution
/// (default 2^-12 per unit) matches the paper's grid-approximation scheme;
/// `DaubechiesLagariasEvaluator` provides the exact reference in tests.
///
/// The basis is shared (cheaply copyable) so estimators, selectivity
/// structures and benches can reuse one table.
class WaveletBasis {
 public:
  /// Builds tables for `filter` at dyadic resolution 2^-table_levels.
  static Result<WaveletBasis> Create(const WaveletFilter& filter,
                                     int table_levels = 12);

  const WaveletFilter& filter() const { return *filter_; }
  int support_length() const { return filter_->support_length(); }

  /// Mother function values (0 outside [0, support_length]).
  double Phi(double x) const { return phi_->Evaluate(x); }
  double Psi(double x) const { return psi_->Evaluate(x); }

  /// Antiderivatives ∫_0^x φ and ∫_0^x ψ (flat outside the support:
  /// 1 resp. 0 to the right). Enable exact range integrals of estimates,
  /// which is what selectivity queries are.
  double PhiAntiderivative(double x) const;
  double PsiAntiderivative(double x) const;

  /// Scaled/translated values.
  double PhiJk(int j, int k, double x) const;
  double PsiJk(int j, int k, double x) const;

  /// Translations k with support intersecting [0, 1]:
  /// k in [−(L−2), 2^j − 1] for data on the unit interval.
  TranslationWindow LevelWindow(int j) const;

  /// Translations k for which φ_{j,k}(x) (equivalently ψ_{j,k}(x)) may be
  /// nonzero at the single point x, clamped to LevelWindow(j).
  TranslationWindow PointWindow(int j, double x) const;

 private:
  WaveletBasis(std::shared_ptr<const WaveletFilter> filter,
               std::shared_ptr<const numerics::UniformGridInterpolator> phi,
               std::shared_ptr<const numerics::UniformGridInterpolator> psi,
               std::shared_ptr<const numerics::UniformGridInterpolator> phi_cdf,
               std::shared_ptr<const numerics::UniformGridInterpolator> psi_cdf)
      : filter_(std::move(filter)),
        phi_(std::move(phi)),
        psi_(std::move(psi)),
        phi_cdf_(std::move(phi_cdf)),
        psi_cdf_(std::move(psi_cdf)) {}

  std::shared_ptr<const WaveletFilter> filter_;
  std::shared_ptr<const numerics::UniformGridInterpolator> phi_;
  std::shared_ptr<const numerics::UniformGridInterpolator> psi_;
  std::shared_ptr<const numerics::UniformGridInterpolator> phi_cdf_;
  std::shared_ptr<const numerics::UniformGridInterpolator> psi_cdf_;
};

}  // namespace wavelet
}  // namespace wde

#endif  // WDE_WAVELET_SCALED_FUNCTION_HPP_
