#ifndef WDE_WAVELET_SCALED_FUNCTION_HPP_
#define WDE_WAVELET_SCALED_FUNCTION_HPP_

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>

#include "numerics/interpolation.hpp"
#include "util/result.hpp"
#include "wavelet/cascade.hpp"
#include "wavelet/filter.hpp"

namespace wde {
namespace wavelet {

/// Half-open translation window [lo, hi] of indices k for which δ_{j,k}(x)
/// can be nonzero.
struct TranslationWindow {
  int lo = 0;
  int hi = -1;  // empty when hi < lo
  int size() const { return hi >= lo ? hi - lo + 1 : 0; }
};

/// Which mother function a batch call addresses.
enum class MotherFunction { kPhi, kPsi };

class WaveletBasis;

/// A hoisted view of one dilation level j of φ or ψ: the 2^j / 2^{j/2}
/// factors, the level translation window and the raw table parameters are
/// computed once at construction, so batch loops pay the per-evaluation setup
/// that the scalar PhiJk/PsiJk entry points redo on every call only once per
/// level. All members use the scalar paths' arithmetic — values, windows and
/// antiderivatives are bit-identical to the WaveletBasis entry points.
///
/// Holds shared ownership of the tables; cheap to create (one per level per
/// batch pass) and safe to keep across calls.
class ScaledLevelEvaluator {
 public:
  /// δ_{j,k}(x); identical to PhiJk/PsiJk(j, k, x).
  double Value(int k, double x) const {
    const double u = scale_ * x - static_cast<double>(k);
    // Inlined UniformGridInterpolator::EvaluateOn with the grid step folded
    // into a multiply: the cascade grids start at 0 with a power-of-two step
    // (asserted at construction), so (u − 0)·(1/dx) is exact and equals the
    // scalar path's (u − x0)/dx bit-for-bit.
    const double t = (u - table_x0_) * table_inv_dx_;
    if (t < 0.0 || t > table_t_max_) return 0.0;
    const auto idx = static_cast<size_t>(t);
    if (idx + 1 >= table_n_) return sqrt_scale_ * table_values_[table_n_ - 1];
    const double frac = t - static_cast<double>(idx);
    return sqrt_scale_ * (table_values_[idx] * (1.0 - frac) +
                          table_values_[idx + 1] * frac);
  }

  /// ∫_0^{2^j x − k} δ; identical to {Phi,Psi}Antiderivative(2^j x − k).
  double AntiderivativeAt(int k, double x) const {
    const double u = scale_ * x - static_cast<double>(k);
    if (u <= 0.0) return 0.0;
    if (u >= cdf_x1_) return cdf_last_;
    const double t = (u - cdf_x0_) * cdf_inv_dx_;
    if (t < 0.0 || t > cdf_t_max_) return 0.0;
    const auto idx = static_cast<size_t>(t);
    if (idx + 1 >= cdf_n_) return cdf_values_[cdf_n_ - 1];
    const double frac = t - static_cast<double>(idx);
    return cdf_values_[idx] * (1.0 - frac) + cdf_values_[idx + 1] * frac;
  }

  /// Identical to WaveletBasis::PointWindow(j, x): 2^j·x as a power-of-two
  /// multiply is exact, matching the scalar path's std::ldexp.
  TranslationWindow PointWindow(double x) const {
    const double scaled = scale_ * x;
    TranslationWindow w;
    w.lo = static_cast<int>(std::ceil(scaled)) - support_;
    w.hi = static_cast<int>(std::floor(scaled));
    w.lo = std::max(w.lo, level_lo_);
    w.hi = std::min(w.hi, level_hi_);
    return w;
  }

  /// The streaming-insert inner loop: adds δ_{j,k}(x) to s1[k − k_base] and
  /// δ²_{j,k}(x) to s2[k − k_base] for every k in PointWindow(x).
  /// Bit-identical to calling Value(k, x) per k in ascending order.
  ///
  /// Fast path: when 2^j·x − k is exactly representable across the whole
  /// window (checked by the endpoint identity below — it holds whenever the
  /// window's u-range fits in 53 mantissa bits at x's granularity, i.e. all
  /// but the coarsest levels), consecutive k walk the dyadic table at an
  /// exact integer stride sharing one interpolation weight pair, so the
  /// index/fraction arithmetic is paid once per sample instead of once per
  /// translate. Otherwise falls back to the per-k scalar expressions.
  void AccumulateValueAndSquare(double x, int k_base, double* s1,
                                double* s2) const {
    const TranslationWindow window = PointWindow(x);
    if (window.hi < window.lo) return;
    const double sx = scale_ * x;
    const double u_first = sx - static_cast<double>(window.lo);
    const double span = static_cast<double>(window.hi - window.lo);
    if (u_first - span == sx - static_cast<double>(window.hi)) {
      // Endpoint identity ⇒ u_first is exact ⇒ every u_k = u_first − m is
      // exact, and t_k = u_k·inv_dx (power-of-two step, zero-based grid)
      // reproduces the scalar interpolator bit-for-bit with a shared
      // fractional part.
      const double t_first = (u_first - table_x0_) * table_inv_dx_;
      const auto stride = static_cast<long>(table_inv_dx_);
      long idx = static_cast<long>(t_first);
      const double frac = t_first - static_cast<double>(idx);
      const double omf = 1.0 - frac;
      const long limit = static_cast<long>(table_n_);
      for (int k = window.lo; k <= window.hi; ++k, idx -= stride) {
        double value;
        if (idx >= 0 && idx + 1 < limit) {
          value = sqrt_scale_ *
                  (table_values_[idx] * omf + table_values_[idx + 1] * frac);
        } else if (idx == limit - 1 && frac == 0.0) {
          value = sqrt_scale_ * table_values_[limit - 1];  // exactly at the edge
        } else {
          value = 0.0;  // outside the mother support
        }
        const auto slot = static_cast<size_t>(k - k_base);
        s1[slot] += value;
        s2[slot] += value * value;
      }
      return;
    }
    for (int k = window.lo; k <= window.hi; ++k) {
      const double value = Value(k, x);
      const auto slot = static_cast<size_t>(k - k_base);
      s1[slot] += value;
      s2[slot] += value * value;
    }
  }

  /// The batch-evaluation inner loop: adds Σ_k coeffs[k − coeff_k_lo] ·
  /// δ_{j,k}(x) over PointWindow(x) ∩ [coeff_k_lo, coeff_k_lo + coeff_n) to
  /// *acc, in ascending k. Bit-identical to the per-k scalar loop
  /// `*acc += coeffs[k − coeff_k_lo] * Value(k, x)`: zero coefficients and
  /// out-of-support translates contribute exactly ±0.0 to an accumulator
  /// that is never −0.0 (it starts at +0.0 and IEEE sums of finite terms
  /// only produce −0.0 from all-(−0.0) inputs), so skipping them never
  /// changes a bit. Shares the interpolation weight pair across the window
  /// via the same endpoint-identity fast path as AccumulateValueAndSquare;
  /// the reduction itself stays in scalar order — vectorizing it would
  /// re-associate the sum and break the bitwise contract.
  void AccumulateWeighted(double x, const double* coeffs, int coeff_k_lo,
                          int coeff_n, double* acc) const {
    const TranslationWindow window = PointWindow(x);
    const int lo = std::max(window.lo, coeff_k_lo);
    const int hi = std::min(window.hi, coeff_k_lo + coeff_n - 1);
    if (hi < lo) return;
    const double sx = scale_ * x;
    const double u_first = sx - static_cast<double>(lo);
    const double span = static_cast<double>(hi - lo);
    double local = *acc;
    if (u_first - span == sx - static_cast<double>(hi)) {
      const double t_first = (u_first - table_x0_) * table_inv_dx_;
      const auto stride = static_cast<long>(table_inv_dx_);
      long idx = static_cast<long>(t_first);
      const double frac = t_first - static_cast<double>(idx);
      const double omf = 1.0 - frac;
      const long limit = static_cast<long>(table_n_);
      const double* cp = coeffs + (lo - coeff_k_lo);
      for (int k = lo; k <= hi; ++k, idx -= stride, ++cp) {
        const double c = *cp;
        if (c == 0.0) continue;
        double value;
        if (idx >= 0 && idx + 1 < limit) {
          value = sqrt_scale_ *
                  (table_values_[idx] * omf + table_values_[idx + 1] * frac);
        } else if (idx == limit - 1 && frac == 0.0) {
          value = sqrt_scale_ * table_values_[limit - 1];
        } else {
          continue;  // outside the mother support: scalar term is ±0.0
        }
        local += c * value;
      }
      *acc = local;
      return;
    }
    for (int k = lo; k <= hi; ++k) {
      const double c = coeffs[k - coeff_k_lo];
      if (c == 0.0) continue;
      local += c * Value(k, x);
    }
    *acc = local;
  }

  int j() const { return j_; }
  /// 2^j as a double.
  double scale() const { return scale_; }

 private:
  friend class WaveletBasis;

  ScaledLevelEvaluator(int j, int support,
                       std::shared_ptr<const numerics::UniformGridInterpolator> table,
                       std::shared_ptr<const numerics::UniformGridInterpolator> cdf);

  int j_;
  int support_;
  int level_lo_;
  int level_hi_;
  double scale_;
  double sqrt_scale_;
  double table_x0_, table_inv_dx_, table_t_max_;
  const double* table_values_;
  size_t table_n_;
  double cdf_x0_, cdf_inv_dx_, cdf_t_max_;
  const double* cdf_values_;
  size_t cdf_n_;
  double cdf_x1_;
  double cdf_last_;
  std::shared_ptr<const numerics::UniformGridInterpolator> table_;
  std::shared_ptr<const numerics::UniformGridInterpolator> cdf_;
};

/// Fast evaluation of the dilated/translated basis functions
///   φ_{j,k}(x) = 2^{j/2} φ(2^j x − k),   ψ_{j,k}(x) = 2^{j/2} ψ(2^j x − k)
/// backed by cascade tables with linear interpolation. The table resolution
/// (default 2^-12 per unit) matches the paper's grid-approximation scheme;
/// `DaubechiesLagariasEvaluator` provides the exact reference in tests.
///
/// The basis is shared (cheaply copyable) so estimators, selectivity
/// structures and benches can reuse one table.
///
/// Hot paths come in scalar and batch forms. The batch forms (`EvaluateMany`,
/// `AntiderivativeMany`, and per-level loops through `PhiLevel`/`PsiLevel`)
/// hoist the scale/translate setup out of the inner loop and are guaranteed
/// bit-identical to the scalar calls; sorted inputs additionally walk the
/// dyadic tables cache-coherently (monotone table indices).
class WaveletBasis {
 public:
  /// Builds tables for `filter` at dyadic resolution 2^-table_levels.
  static Result<WaveletBasis> Create(const WaveletFilter& filter,
                                     int table_levels = 12);

  /// Rebuilds a basis from previously computed tables — the snapshot fast
  /// path, which persists the cascade products so restore skips rerunning
  /// the cascade. The four spans must be the tables Create(filter,
  /// table_levels) produces (the cascade is deterministic, so persisted
  /// tables are bitwise the rebuilt ones); geometry is validated, and the
  /// spans are *borrowed* zero-copy with `keepalive` anchoring them.
  static Result<WaveletBasis> FromTables(const WaveletFilter& filter,
                                         int table_levels,
                                         std::span<const double> phi,
                                         std::span<const double> psi,
                                         std::span<const double> phi_cdf,
                                         std::span<const double> psi_cdf,
                                         std::shared_ptr<const void> keepalive);

  const WaveletFilter& filter() const { return *filter_; }
  int support_length() const { return filter_->support_length(); }
  /// The dyadic table resolution this basis was built at. Together with
  /// `filter().name()` this identifies the basis exactly — what snapshots
  /// store so a restored estimator rebuilds bit-identical tables.
  int table_levels() const { return table_levels_; }

  /// The raw cascade-product tables (values on the dyadic grid). What the
  /// snapshot fast path persists verbatim so FromTables can rebuild this
  /// basis without rerunning the cascade.
  std::span<const double> phi_table() const { return phi_->values(); }
  std::span<const double> psi_table() const { return psi_->values(); }
  std::span<const double> phi_cdf_table() const { return phi_cdf_->values(); }
  std::span<const double> psi_cdf_table() const { return psi_cdf_->values(); }

  /// Mother function values (0 outside [0, support_length]).
  double Phi(double x) const { return phi_->Evaluate(x); }
  double Psi(double x) const { return psi_->Evaluate(x); }

  /// Batch mother-function values: out[i] = Phi(xs[i]) (resp. Psi), with the
  /// table parameters hoisted out of the loop. Bit-identical to the scalar
  /// calls.
  void EvaluateMany(MotherFunction f, std::span<const double> xs,
                    std::span<double> out) const;

  /// Antiderivatives ∫_0^x φ and ∫_0^x ψ (flat outside the support:
  /// 1 resp. 0 to the right). Enable exact range integrals of estimates,
  /// which is what selectivity queries are.
  double PhiAntiderivative(double x) const;
  double PsiAntiderivative(double x) const;

  /// Batch antiderivatives: out[i] = {Phi,Psi}Antiderivative(xs[i]),
  /// bit-identical to the scalar calls.
  void AntiderivativeMany(MotherFunction f, std::span<const double> xs,
                          std::span<double> out) const;

  /// Scaled/translated values.
  double PhiJk(int j, int k, double x) const;
  double PsiJk(int j, int k, double x) const;

  /// Hoisted per-level evaluators for batch loops; bit-identical to
  /// PhiJk/PsiJk, PointWindow and the antiderivatives at that level.
  ScaledLevelEvaluator PhiLevel(int j) const;
  ScaledLevelEvaluator PsiLevel(int j) const;

  /// Translations k with support intersecting [0, 1]:
  /// k in [−(L−2), 2^j − 1] for data on the unit interval.
  TranslationWindow LevelWindow(int j) const;

  /// Translations k for which φ_{j,k}(x) (equivalently ψ_{j,k}(x)) may be
  /// nonzero at the single point x, clamped to LevelWindow(j).
  TranslationWindow PointWindow(int j, double x) const;

 private:
  WaveletBasis(std::shared_ptr<const WaveletFilter> filter, int table_levels,
               std::shared_ptr<const numerics::UniformGridInterpolator> phi,
               std::shared_ptr<const numerics::UniformGridInterpolator> psi,
               std::shared_ptr<const numerics::UniformGridInterpolator> phi_cdf,
               std::shared_ptr<const numerics::UniformGridInterpolator> psi_cdf)
      : filter_(std::move(filter)),
        table_levels_(table_levels),
        phi_(std::move(phi)),
        psi_(std::move(psi)),
        phi_cdf_(std::move(phi_cdf)),
        psi_cdf_(std::move(psi_cdf)) {}

  std::shared_ptr<const WaveletFilter> filter_;
  int table_levels_ = 12;
  std::shared_ptr<const numerics::UniformGridInterpolator> phi_;
  std::shared_ptr<const numerics::UniformGridInterpolator> psi_;
  std::shared_ptr<const numerics::UniformGridInterpolator> phi_cdf_;
  std::shared_ptr<const numerics::UniformGridInterpolator> psi_cdf_;
};

}  // namespace wavelet
}  // namespace wde

#endif  // WDE_WAVELET_SCALED_FUNCTION_HPP_
