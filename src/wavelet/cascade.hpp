#ifndef WDE_WAVELET_CASCADE_HPP_
#define WDE_WAVELET_CASCADE_HPP_

#include <vector>

#include "util/result.hpp"
#include "wavelet/filter.hpp"

namespace wde {
namespace wavelet {

/// Values of φ and ψ on the dyadic grid x = i / 2^levels,
/// i = 0 .. support_length * 2^levels (both functions live on [0, L−1]).
struct CascadeTables {
  int levels = 0;
  std::vector<double> phi;
  std::vector<double> psi;

  /// Grid spacing 2^-levels.
  double dx() const { return 1.0 / static_cast<double>(1 << levels); }
};

/// Runs the cascade algorithm: solves the refinement eigenproblem for the
/// values of φ at the integers, then doubles the resolution `levels` times
/// with the two-scale relation, and finally derives ψ from the φ table.
/// Fails if the filter's refinement matrix lacks a unit eigenvector.
Result<CascadeTables> ComputeCascadeTables(const WaveletFilter& filter, int levels);

/// Values of φ at the integers 0..L−1 (the cascade's starting vector,
/// normalized to Σ φ(k) = 1 by partition of unity). Exposed for tests.
Result<std::vector<double>> ScalingFunctionAtIntegers(const WaveletFilter& filter);

}  // namespace wavelet
}  // namespace wde

#endif  // WDE_WAVELET_CASCADE_HPP_
