#include "wavelet/daubechies_lagarias.hpp"

#include <cmath>
#include <vector>

#include "util/check.hpp"

namespace wde {
namespace wavelet {
namespace {

constexpr double kSqrt2 = 1.4142135623730951;

}  // namespace

DaubechiesLagariasEvaluator::DaubechiesLagariasEvaluator(const WaveletFilter& filter,
                                                         int digits)
    : filter_(filter), digits_(digits), dim_(filter.length() - 1) {
  WDE_CHECK_GE(digits_, 8);
  const std::vector<double>& h = filter_.h();
  a0_.assign(static_cast<size_t>(dim_ * dim_), 0.0);
  a1_.assign(static_cast<size_t>(dim_ * dim_), 0.0);
  // From the refinement equation, with V(x) = (φ(x), φ(x+1), ..., φ(x+L−2))
  // for x in [0,1): V(x) = A_d V(2x − d) where
  // (A_0)_{ij} = √2 h_{2i−j}, (A_1)_{ij} = √2 h_{2i+1−j}.
  for (int i = 0; i < dim_; ++i) {
    for (int j = 0; j < dim_; ++j) {
      const int k0 = 2 * i - j;
      const int k1 = 2 * i + 1 - j;
      if (k0 >= 0 && k0 < filter_.length()) {
        a0_[static_cast<size_t>(i * dim_ + j)] = kSqrt2 * h[static_cast<size_t>(k0)];
      }
      if (k1 >= 0 && k1 < filter_.length()) {
        a1_[static_cast<size_t>(i * dim_ + j)] = kSqrt2 * h[static_cast<size_t>(k1)];
      }
    }
  }
}

void DaubechiesLagariasEvaluator::PhiVector(double t, std::vector<double>* values) const {
  WDE_CHECK(t >= 0.0 && t < 1.0);
  // Accumulate P = A_{d1} A_{d2} ... A_{dm}; the product converges to a
  // matrix with constant rows whose i-th row value is φ(t + i).
  std::vector<double> prod(static_cast<size_t>(dim_ * dim_), 0.0);
  for (int i = 0; i < dim_; ++i) prod[static_cast<size_t>(i * dim_ + i)] = 1.0;
  std::vector<double> next(static_cast<size_t>(dim_ * dim_), 0.0);
  double frac = t;
  for (int step = 0; step < digits_; ++step) {
    frac *= 2.0;
    int digit = frac >= 1.0 ? 1 : 0;
    if (digit == 1) frac -= 1.0;
    const std::vector<double>& a = (digit == 1) ? a1_ : a0_;
    for (int i = 0; i < dim_; ++i) {
      for (int j = 0; j < dim_; ++j) {
        double acc = 0.0;
        for (int k = 0; k < dim_; ++k) {
          acc += prod[static_cast<size_t>(i * dim_ + k)] *
                 a[static_cast<size_t>(k * dim_ + j)];
        }
        next[static_cast<size_t>(i * dim_ + j)] = acc;
      }
    }
    prod.swap(next);
  }
  values->assign(static_cast<size_t>(dim_), 0.0);
  for (int i = 0; i < dim_; ++i) {
    double acc = 0.0;
    for (int j = 0; j < dim_; ++j) acc += prod[static_cast<size_t>(i * dim_ + j)];
    (*values)[static_cast<size_t>(i)] = acc / static_cast<double>(dim_);
  }
}

double DaubechiesLagariasEvaluator::Phi(double x) const {
  if (x <= 0.0 || x >= static_cast<double>(filter_.support_length())) {
    // Haar's φ(0) = 1 is the one discontinuous edge case worth honoring.
    if (filter_.length() == 2 && x == 0.0) return 1.0;
    return 0.0;
  }
  const double floor_x = std::floor(x);
  const int offset = static_cast<int>(floor_x);
  std::vector<double> values;
  PhiVector(x - floor_x, &values);
  if (offset < 0 || offset >= dim_) return 0.0;
  return values[static_cast<size_t>(offset)];
}

double DaubechiesLagariasEvaluator::Psi(double x) const {
  if (x < 0.0 || x > static_cast<double>(filter_.support_length())) return 0.0;
  const std::vector<double>& g = filter_.g();
  double acc = 0.0;
  for (int k = 0; k < filter_.length(); ++k) {
    acc += g[static_cast<size_t>(k)] * Phi(2.0 * x - static_cast<double>(k));
  }
  return kSqrt2 * acc;
}

}  // namespace wavelet
}  // namespace wde
