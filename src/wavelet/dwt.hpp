/// \file wavelet/dwt.hpp
/// Entry header of the `wavelet` module: the periodized Mallat pyramid used
/// by the binned fast path (core/binned.hpp) and the synopsis builder.
/// Invariants: filters are orthonormal, so InverseDwt(ForwardDwt(x)) == x up
/// to rounding and coefficient energy equals signal energy (Parseval);
/// signals must have power-of-two length ≥ 2^levels — violations return
/// Status, never UB.
#ifndef WDE_WAVELET_DWT_HPP_
#define WDE_WAVELET_DWT_HPP_

#include <vector>

#include "util/result.hpp"
#include "wavelet/filter.hpp"

namespace wde {
namespace wavelet {

/// Result of a multi-level periodized discrete wavelet transform of a signal
/// of length 2^J: approximation coefficients at the coarsest level plus
/// detail coefficients per level (finest first).
struct DwtCoefficients {
  std::vector<double> approximation;          // length 2^(J - levels)
  std::vector<std::vector<double>> details;   // details[0] finest, length 2^(J-1), ...
};

/// Periodized (circular) Mallat pyramid. `signal.size()` must be a power of
/// two and at least 2^levels.
Result<DwtCoefficients> ForwardDwt(const WaveletFilter& filter,
                                   const std::vector<double>& signal, int levels);

/// Inverse transform; reconstructs the signal exactly (orthonormal filters).
Result<std::vector<double>> InverseDwt(const WaveletFilter& filter,
                                       const DwtCoefficients& coefficients);

}  // namespace wavelet
}  // namespace wde

#endif  // WDE_WAVELET_DWT_HPP_
