/// \file io/chunk.hpp
/// Chunk framing for the versioned snapshot wire format. A snapshot is
///
///   magic "WDESNAP1" (8 bytes) · u32 format_version · chunk*
///
/// and every chunk is
///
///   u32 tag · u64 payload_size · payload bytes · u32 crc32(payload)
///
/// (all integers little-endian; CRC-32 is the IEEE/zlib polynomial). The
/// reader validates the magic, rejects versions newer than it understands,
/// bounds-checks every payload size against the bytes actually present, and
/// verifies the CRC *before* any payload byte is parsed — so truncation and
/// bit flips surface as Status errors, never as UB in a decoder. Chunks nest
/// naturally: a payload may itself contain chunks (the sharded estimator's
/// state embeds one framed envelope per shard).
#ifndef WDE_IO_CHUNK_HPP_
#define WDE_IO_CHUNK_HPP_

#include <cstdint>
#include <span>
#include <vector>

#include "io/serialize.hpp"
#include "util/result.hpp"

namespace wde {
namespace io {

/// CRC-32 (IEEE 802.3 / zlib polynomial, reflected, table-driven).
uint32_t Crc32(std::span<const uint8_t> bytes);

/// The snapshot format version this build writes and the newest it reads.
/// Policy: readers accept any version <= kSnapshotFormatVersion (older
/// writers), and reject newer ones with a descriptive error — forward
/// compatibility is explicit, never silent misparsing.
/// History: v1 — initial format; v2 — the kde-rot payload grew an optional
/// eval-tolerance tail (readers parse both tails, so v1 payloads still load);
/// v3 — estimator state may travel as one arena fast-path chunk (tag "ARNA",
/// columnar image restored by pointer fixup) instead of the portable "STAT"
/// chunk — readers dispatch on the tag, so v1/v2 payloads still load;
/// v4 — estimators may declare dims() > 1: their envelopes carry a "DIMS"
/// chunk (u32 dimensionality) between the TYPE chunk and the state chunk.
/// 1-D envelopes omit it, so their bytes equal a v3 writer's, and v1–v3
/// snapshots (necessarily 1-D) load unchanged.
inline constexpr uint32_t kSnapshotFormatVersion = 4;

/// Writes the 12-byte snapshot header (magic + format version).
Status WriteSnapshotHeader(Sink& sink);

/// Validates the magic and version; returns the version on success.
Result<uint32_t> ReadSnapshotHeader(Source& source);

/// One framed chunk, CRC-validated at read time.
struct Chunk {
  uint32_t tag = 0;
  std::vector<uint8_t> payload;
};

Status WriteChunk(Sink& sink, uint32_t tag, std::span<const uint8_t> payload);

/// Reads the next chunk: bounds-checks the payload size against
/// source.remaining() before allocating and verifies the CRC before
/// returning.
Result<Chunk> ReadChunk(Source& source);

/// Reads the next chunk and requires its tag; returns the payload.
Result<std::vector<uint8_t>> ReadChunkExpecting(Source& source, uint32_t tag);

/// One framed chunk whose payload is a *view* when the source supports
/// zero-copy (Source::View) and an owned copy otherwise. Either way the CRC
/// is verified before the payload is handed out. A viewed payload lives as
/// long as the source's buffer — anchor it with Source::backing(); an owned
/// payload moves with the struct (`payload` tracks `owned`'s heap buffer).
struct ChunkRef {
  uint32_t tag = 0;
  std::span<const uint8_t> payload;
  std::vector<uint8_t> owned;
};

/// Zero-copy counterpart of ReadChunk: identical validation, but avoids the
/// payload copy for memory-backed sources (mmap'ed snapshots restore without
/// ever duplicating the column region).
Result<ChunkRef> ReadChunkRef(Source& source);

}  // namespace io
}  // namespace wde

#endif  // WDE_IO_CHUNK_HPP_
