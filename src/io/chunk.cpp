#include "io/chunk.hpp"

#include <array>
#include <bit>
#include <cstring>

#include "util/string_util.hpp"

namespace wde {
namespace io {

namespace {

constexpr std::array<uint8_t, 8> kMagic = {'W', 'D', 'E', 'S', 'N', 'A', 'P', '1'};

/// Slicing-by-8 tables: table[0] is the classic bytewise table, table[k]
/// advances a byte through k additional zero bytes. Produces bit-identical
/// CRCs to the bytewise loop while processing 8 input bytes per iteration —
/// keeps CRC validation of multi-megabyte fast-path chunks off the restore
/// critical path.
std::array<std::array<uint32_t, 256>, 8> MakeCrcTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    tables[0][i] = crc;
  }
  for (size_t k = 1; k < 8; ++k) {
    for (uint32_t i = 0; i < 256; ++i) {
      const uint32_t prev = tables[k - 1][i];
      tables[k][i] = (prev >> 8) ^ tables[0][prev & 0xFFu];
    }
  }
  return tables;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes) {
  static const std::array<std::array<uint32_t, 256>, 8> tables = MakeCrcTables();
  uint32_t crc = 0xFFFFFFFFu;
  size_t i = 0;
  if constexpr (std::endian::native == std::endian::little) {
    for (; i + 8 <= bytes.size(); i += 8) {
      uint32_t lo;
      uint32_t hi;
      std::memcpy(&lo, bytes.data() + i, 4);
      std::memcpy(&hi, bytes.data() + i + 4, 4);
      lo ^= crc;
      crc = tables[7][lo & 0xFFu] ^ tables[6][(lo >> 8) & 0xFFu] ^
            tables[5][(lo >> 16) & 0xFFu] ^ tables[4][lo >> 24] ^
            tables[3][hi & 0xFFu] ^ tables[2][(hi >> 8) & 0xFFu] ^
            tables[1][(hi >> 16) & 0xFFu] ^ tables[0][hi >> 24];
    }
  }
  for (; i < bytes.size(); ++i) {
    crc = (crc >> 8) ^ tables[0][(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteSnapshotHeader(Sink& sink) {
  WDE_RETURN_IF_ERROR(sink.Append(kMagic.data(), kMagic.size()));
  return WriteU32(sink, kSnapshotFormatVersion);
}

Result<uint32_t> ReadSnapshotHeader(Source& source) {
  std::array<uint8_t, 8> magic{};
  WDE_RETURN_IF_ERROR(source.Read(magic.data(), magic.size()));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a WDE snapshot (bad magic)");
  }
  WDE_ASSIGN_OR_RETURN(const uint32_t version, ReadU32(source));
  if (version == 0 || version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        Format("unsupported snapshot format version %u (this build reads <= %u)",
               static_cast<unsigned>(version),
               static_cast<unsigned>(kSnapshotFormatVersion)));
  }
  return version;
}

Status WriteChunk(Sink& sink, uint32_t tag, std::span<const uint8_t> payload) {
  WDE_RETURN_IF_ERROR(WriteU32(sink, tag));
  WDE_RETURN_IF_ERROR(WriteU64(sink, payload.size()));
  WDE_RETURN_IF_ERROR(sink.Append(payload.data(), payload.size()));
  return WriteU32(sink, Crc32(payload));
}

Result<Chunk> ReadChunk(Source& source) {
  Chunk chunk;
  WDE_ASSIGN_OR_RETURN(chunk.tag, ReadU32(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t size, ReadU64(source));
  // The CRC trailer also still has to fit: catches truncation and hostile
  // sizes before any allocation.
  if (size > source.remaining() || source.remaining() - size < 4) {
    return Status::OutOfRange(
        Format("corrupt chunk size %llu exceeds remaining %zu bytes",
               static_cast<unsigned long long>(size), source.remaining()));
  }
  chunk.payload.resize(static_cast<size_t>(size));
  WDE_RETURN_IF_ERROR(source.Read(chunk.payload.data(), chunk.payload.size()));
  WDE_ASSIGN_OR_RETURN(const uint32_t crc, ReadU32(source));
  if (crc != Crc32(chunk.payload)) {
    return Status::InvalidArgument(
        Format("chunk 0x%08x failed CRC validation", chunk.tag));
  }
  return chunk;
}

Result<ChunkRef> ReadChunkRef(Source& source) {
  ChunkRef chunk;
  WDE_ASSIGN_OR_RETURN(chunk.tag, ReadU32(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t size, ReadU64(source));
  if (size > source.remaining() || source.remaining() - size < 4) {
    return Status::OutOfRange(
        Format("corrupt chunk size %llu exceeds remaining %zu bytes",
               static_cast<unsigned long long>(size), source.remaining()));
  }
  if (const uint8_t* view = source.View(static_cast<size_t>(size));
      view != nullptr || size == 0) {
    chunk.payload = {view, static_cast<size_t>(size)};
  } else {
    chunk.owned.resize(static_cast<size_t>(size));
    WDE_RETURN_IF_ERROR(source.Read(chunk.owned.data(), chunk.owned.size()));
    chunk.payload = chunk.owned;
  }
  WDE_ASSIGN_OR_RETURN(const uint32_t crc, ReadU32(source));
  if (crc != Crc32(chunk.payload)) {
    return Status::InvalidArgument(
        Format("chunk 0x%08x failed CRC validation", chunk.tag));
  }
  return chunk;
}

Result<std::vector<uint8_t>> ReadChunkExpecting(Source& source, uint32_t tag) {
  WDE_ASSIGN_OR_RETURN(Chunk chunk, ReadChunk(source));
  if (chunk.tag != tag) {
    return Status::InvalidArgument(Format("expected chunk 0x%08x, found 0x%08x",
                                          tag, chunk.tag));
  }
  return std::move(chunk.payload);
}

}  // namespace io
}  // namespace wde
