#include "io/chunk.hpp"

#include <array>

#include "util/string_util.hpp"

namespace wde {
namespace io {

namespace {

constexpr std::array<uint8_t, 8> kMagic = {'W', 'D', 'E', 'S', 'N', 'A', 'P', '1'};

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::span<const uint8_t> bytes) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t crc = 0xFFFFFFFFu;
  for (uint8_t byte : bytes) {
    crc = (crc >> 8) ^ table[(crc ^ byte) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteSnapshotHeader(Sink& sink) {
  WDE_RETURN_IF_ERROR(sink.Append(kMagic.data(), kMagic.size()));
  return WriteU32(sink, kSnapshotFormatVersion);
}

Result<uint32_t> ReadSnapshotHeader(Source& source) {
  std::array<uint8_t, 8> magic{};
  WDE_RETURN_IF_ERROR(source.Read(magic.data(), magic.size()));
  if (magic != kMagic) {
    return Status::InvalidArgument("not a WDE snapshot (bad magic)");
  }
  WDE_ASSIGN_OR_RETURN(const uint32_t version, ReadU32(source));
  if (version == 0 || version > kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        Format("unsupported snapshot format version %u (this build reads <= %u)",
               static_cast<unsigned>(version),
               static_cast<unsigned>(kSnapshotFormatVersion)));
  }
  return version;
}

Status WriteChunk(Sink& sink, uint32_t tag, std::span<const uint8_t> payload) {
  WDE_RETURN_IF_ERROR(WriteU32(sink, tag));
  WDE_RETURN_IF_ERROR(WriteU64(sink, payload.size()));
  WDE_RETURN_IF_ERROR(sink.Append(payload.data(), payload.size()));
  return WriteU32(sink, Crc32(payload));
}

Result<Chunk> ReadChunk(Source& source) {
  Chunk chunk;
  WDE_ASSIGN_OR_RETURN(chunk.tag, ReadU32(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t size, ReadU64(source));
  // The CRC trailer also still has to fit: catches truncation and hostile
  // sizes before any allocation.
  if (size > source.remaining() || source.remaining() - size < 4) {
    return Status::OutOfRange(
        Format("corrupt chunk size %llu exceeds remaining %zu bytes",
               static_cast<unsigned long long>(size), source.remaining()));
  }
  chunk.payload.resize(static_cast<size_t>(size));
  WDE_RETURN_IF_ERROR(source.Read(chunk.payload.data(), chunk.payload.size()));
  WDE_ASSIGN_OR_RETURN(const uint32_t crc, ReadU32(source));
  if (crc != Crc32(chunk.payload)) {
    return Status::InvalidArgument(
        Format("chunk 0x%08x failed CRC validation", chunk.tag));
  }
  return chunk;
}

Result<std::vector<uint8_t>> ReadChunkExpecting(Source& source, uint32_t tag) {
  WDE_ASSIGN_OR_RETURN(Chunk chunk, ReadChunk(source));
  if (chunk.tag != tag) {
    return Status::InvalidArgument(Format("expected chunk 0x%08x, found 0x%08x",
                                          tag, chunk.tag));
  }
  return std::move(chunk.payload);
}

}  // namespace io
}  // namespace wde
