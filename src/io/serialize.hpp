/// \file io/serialize.hpp
/// Entry header of the `io` module: byte sinks/sources and the
/// endianness-explicit primitive encoding every snapshot in the library is
/// built from. Invariants: all multi-byte values are little-endian on the
/// wire regardless of the host (doubles travel as their IEEE-754 bit
/// pattern, so round trips are bit-exact, including ±0.0, ±inf and NaN
/// payloads); decoding NEVER aborts or reads out of bounds — every read is
/// bounds-checked against `Source::remaining()` and returns a non-OK
/// `Status`/`Result` on truncated input, so hostile bytes degrade into
/// errors, not UB. Length-prefixed reads validate the prefix against the
/// remaining byte count *before* allocating, so a corrupt length cannot
/// trigger an OOM. Chunk framing and the snapshot header live in io/chunk.hpp.
#ifndef WDE_IO_SERIALIZE_HPP_
#define WDE_IO_SERIALIZE_HPP_

#include <cstdint>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.hpp"

namespace wde {
namespace io {

/// Destination of serialized bytes. Implementations report failures through
/// Status (the library never throws).
class Sink {
 public:
  virtual ~Sink() = default;

  /// Appends `size` bytes. Either all bytes are accepted or a non-OK status
  /// is returned.
  virtual Status Append(const void* data, size_t size) = 0;
};

/// Sink into an owned, growable byte buffer. Append never fails.
class VectorSink final : public Sink {
 public:
  Status Append(const void* data, size_t size) override;

  std::span<const uint8_t> bytes() const { return buffer_; }
  std::vector<uint8_t> TakeBytes() { return std::move(buffer_); }

 private:
  std::vector<uint8_t> buffer_;
};

/// Sink into a file (created/truncated at Open). Close() flushes and reports
/// write-back errors; the destructor closes silently.
class FileSink final : public Sink {
 public:
  static Result<FileSink> Open(const std::string& path);

  FileSink(FileSink&& other) noexcept : file_(other.file_) { other.file_ = nullptr; }
  FileSink& operator=(FileSink&& other) noexcept;
  FileSink(const FileSink&) = delete;
  FileSink& operator=(const FileSink&) = delete;
  ~FileSink();

  Status Append(const void* data, size_t size) override;
  Status Close();

 private:
  explicit FileSink(std::FILE* file) : file_(file) {}

  std::FILE* file_ = nullptr;
};

/// Origin of serialized bytes with a known end: `remaining()` lets decoders
/// validate length prefixes before allocating.
class Source {
 public:
  virtual ~Source() = default;

  /// Bytes left to read.
  virtual size_t remaining() const = 0;

  /// Reads exactly `size` bytes into `out`, or returns OutOfRange on
  /// truncated input without consuming anything.
  virtual Status Read(void* out, size_t size) = 0;

  /// Zero-copy variant of Read for memory-backed sources: returns a pointer
  /// to the next `size` bytes and consumes them, or nullptr when the source
  /// cannot vend stable views (streaming source, or fewer than `size` bytes
  /// remain — the caller falls back to Read, which reports the truncation).
  /// The pointer stays valid as long as the underlying buffer; anchor it
  /// beyond the source's lifetime with backing().
  virtual const uint8_t* View(size_t size) {
    (void)size;
    return nullptr;
  }

  /// Shared handle keeping any View() pointers alive independently of this
  /// source object; nullptr when the source has no shareable backing (then
  /// views die with the buffer the caller handed in).
  virtual std::shared_ptr<const void> backing() const { return nullptr; }
};

/// Source over caller-owned bytes (e.g. a VectorSink buffer or one chunk's
/// payload). Does not copy; the span must outlive the source. The optional
/// keepalive is surfaced through backing() so nested decoders (the sharded
/// estimator parsing per-replica envelopes out of a column) can anchor
/// zero-copy views of a mapped snapshot.
class SpanSource final : public Source {
 public:
  explicit SpanSource(std::span<const uint8_t> bytes) : bytes_(bytes) {}
  SpanSource(std::span<const uint8_t> bytes,
             std::shared_ptr<const void> keepalive)
      : bytes_(bytes), keepalive_(std::move(keepalive)) {}

  size_t remaining() const override { return bytes_.size() - offset_; }
  Status Read(void* out, size_t size) override;
  const uint8_t* View(size_t size) override;
  std::shared_ptr<const void> backing() const override { return keepalive_; }

 private:
  std::span<const uint8_t> bytes_;
  size_t offset_ = 0;
  std::shared_ptr<const void> keepalive_;
};

/// Source over a whole file. Open() loads it into memory (snapshots are
/// bounded artifacts; loading up front gives every decoder an exact
/// remaining() to validate hostile length prefixes against); OpenMapped()
/// maps it instead, so restoring a snapshot touches only the pages it
/// actually reads and zero-copy consumers (the arena fast path) borrow the
/// mapping directly. Both modes share the buffer via backing(), so views
/// outlive the source.
class FileSource final : public Source {
 public:
  static Result<FileSource> Open(const std::string& path);
  /// mmap-backed on POSIX; transparently falls back to Open() elsewhere
  /// (mapped() reports which one you got).
  static Result<FileSource> OpenMapped(const std::string& path);

  size_t remaining() const override { return size_ - offset_; }
  Status Read(void* out, size_t size) override;
  const uint8_t* View(size_t size) override;
  std::shared_ptr<const void> backing() const override { return backing_; }

  /// True when the bytes come from a live file mapping.
  bool mapped() const { return mapped_; }

 private:
  FileSource(std::shared_ptr<const void> backing, const uint8_t* data,
             size_t size, bool mapped)
      : backing_(std::move(backing)), data_(data), size_(size),
        mapped_(mapped) {}

  std::shared_ptr<const void> backing_;
  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
  size_t offset_ = 0;
  bool mapped_ = false;
};

// ------------------------------------------------------------- primitives
//
// Fixed-width little-endian encodings. Writers only fail when the sink
// fails; readers fail on truncation (and on a length prefix exceeding the
// source's remaining bytes).

Status WriteU8(Sink& sink, uint8_t value);
Status WriteU32(Sink& sink, uint32_t value);
Status WriteU64(Sink& sink, uint64_t value);
/// Two's-complement via uint32_t.
Status WriteI32(Sink& sink, int32_t value);
/// IEEE-754 bit pattern via uint64_t; round trips are bit-exact.
Status WriteDouble(Sink& sink, double value);
/// u32 byte length + raw bytes.
Status WriteString(Sink& sink, std::string_view value);
/// u64 element count + per-element doubles.
Status WriteDoubleVector(Sink& sink, std::span<const double> values);

Result<uint8_t> ReadU8(Source& source);
Result<uint32_t> ReadU32(Source& source);
Result<uint64_t> ReadU64(Source& source);
Result<int32_t> ReadI32(Source& source);
Result<double> ReadDouble(Source& source);
/// Rejects lengths beyond the remaining bytes or `max_size`.
Result<std::string> ReadString(Source& source, size_t max_size = 1 << 20);
Result<std::vector<double>> ReadDoubleVector(Source& source);

}  // namespace io
}  // namespace wde

#endif  // WDE_IO_SERIALIZE_HPP_
