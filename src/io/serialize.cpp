#include "io/serialize.hpp"

#include <bit>
#include <cstring>

#ifndef _WIN32
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#endif

#include "util/string_util.hpp"

namespace wde {
namespace io {

namespace {

/// Encodes `value` as `Bytes` little-endian bytes, independent of host order.
template <size_t Bytes, typename T>
Status WriteLittleEndian(Sink& sink, T value) {
  uint8_t bytes[Bytes];
  for (size_t i = 0; i < Bytes; ++i) {
    bytes[i] = static_cast<uint8_t>((value >> (8 * i)) & 0xFF);
  }
  return sink.Append(bytes, Bytes);
}

template <size_t Bytes, typename T>
Result<T> ReadLittleEndian(Source& source) {
  uint8_t bytes[Bytes];
  WDE_RETURN_IF_ERROR(source.Read(bytes, Bytes));
  T value = 0;
  for (size_t i = 0; i < Bytes; ++i) {
    value |= static_cast<T>(bytes[i]) << (8 * i);
  }
  return value;
}

}  // namespace

Status VectorSink::Append(const void* data, size_t size) {
  const auto* bytes = static_cast<const uint8_t*>(data);
  buffer_.insert(buffer_.end(), bytes, bytes + size);
  return Status::OK();
}

Result<FileSink> FileSink::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return Status::NotFound(Format("cannot open '%s' for writing", path.c_str()));
  }
  return FileSink(file);
}

FileSink& FileSink::operator=(FileSink&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    other.file_ = nullptr;
  }
  return *this;
}

FileSink::~FileSink() {
  if (file_ != nullptr) std::fclose(file_);
}

Status FileSink::Append(const void* data, size_t size) {
  if (file_ == nullptr) {
    return Status::FailedPrecondition("FileSink is closed");
  }
  if (size != 0 && std::fwrite(data, 1, size, file_) != size) {
    return Status::Internal("short write to snapshot file");
  }
  return Status::OK();
}

Status FileSink::Close() {
  if (file_ == nullptr) return Status::OK();
  const int rc = std::fclose(file_);
  file_ = nullptr;
  if (rc != 0) return Status::Internal("error flushing snapshot file on close");
  return Status::OK();
}

Status SpanSource::Read(void* out, size_t size) {
  if (size > remaining()) {
    return Status::OutOfRange(
        Format("truncated input: need %zu bytes, have %zu", size, remaining()));
  }
  if (size != 0) std::memcpy(out, bytes_.data() + offset_, size);
  offset_ += size;
  return Status::OK();
}

const uint8_t* SpanSource::View(size_t size) {
  if (size > remaining()) return nullptr;
  const uint8_t* view = bytes_.data() + offset_;
  offset_ += size;
  return view;
}

Result<FileSource> FileSource::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return Status::NotFound(Format("cannot open '%s' for reading", path.c_str()));
  }
  auto buffer = std::make_shared<std::vector<uint8_t>>();
  uint8_t block[1 << 16];
  size_t got;
  while ((got = std::fread(block, 1, sizeof(block), file)) > 0) {
    buffer->insert(buffer->end(), block, block + got);
  }
  const bool failed = std::ferror(file) != 0;
  std::fclose(file);
  if (failed) {
    return Status::Internal(Format("error reading '%s'", path.c_str()));
  }
  const uint8_t* data = buffer->data();
  const size_t size = buffer->size();
  return FileSource(std::move(buffer), data, size, /*mapped=*/false);
}

#ifndef _WIN32
namespace {

/// Owns one live mmap region; shared_ptr aliasing keeps it alive for every
/// zero-copy view carved out of the snapshot.
struct FileMapping {
  void* base = nullptr;
  size_t length = 0;

  ~FileMapping() {
    if (base != nullptr) ::munmap(base, length);
  }
};

}  // namespace

Result<FileSource> FileSource::OpenMapped(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::NotFound(Format("cannot open '%s' for reading", path.c_str()));
  }
  struct ::stat st;
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    return Status::Internal(Format("cannot stat '%s'", path.c_str()));
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    // mmap rejects zero-length mappings; an empty artifact needs no backing.
    ::close(fd);
    return FileSource(nullptr, nullptr, 0, /*mapped=*/true);
  }
  void* base = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    return Status::Internal(Format("cannot mmap '%s'", path.c_str()));
  }
  auto mapping = std::make_shared<FileMapping>();
  mapping->base = base;
  mapping->length = size;
  const uint8_t* data = static_cast<const uint8_t*>(base);
  return FileSource(std::move(mapping), data, size, /*mapped=*/true);
}
#else
Result<FileSource> FileSource::OpenMapped(const std::string& path) {
  return Open(path);
}
#endif

Status FileSource::Read(void* out, size_t size) {
  if (size > remaining()) {
    return Status::OutOfRange(
        Format("truncated input: need %zu bytes, have %zu", size, remaining()));
  }
  if (size != 0) std::memcpy(out, data_ + offset_, size);
  offset_ += size;
  return Status::OK();
}

const uint8_t* FileSource::View(size_t size) {
  if (size > remaining()) return nullptr;
  const uint8_t* view = data_ + offset_;
  offset_ += size;
  return view;
}

Status WriteU8(Sink& sink, uint8_t value) { return sink.Append(&value, 1); }

Status WriteU32(Sink& sink, uint32_t value) {
  return WriteLittleEndian<4>(sink, value);
}

Status WriteU64(Sink& sink, uint64_t value) {
  return WriteLittleEndian<8>(sink, value);
}

Status WriteI32(Sink& sink, int32_t value) {
  return WriteU32(sink, static_cast<uint32_t>(value));
}

Status WriteDouble(Sink& sink, double value) {
  return WriteU64(sink, std::bit_cast<uint64_t>(value));
}

Status WriteString(Sink& sink, std::string_view value) {
  if (value.size() > UINT32_MAX) {
    return Status::InvalidArgument("string too long to serialize");
  }
  WDE_RETURN_IF_ERROR(WriteU32(sink, static_cast<uint32_t>(value.size())));
  return sink.Append(value.data(), value.size());
}

Status WriteDoubleVector(Sink& sink, std::span<const double> values) {
  WDE_RETURN_IF_ERROR(WriteU64(sink, values.size()));
  if constexpr (std::endian::native == std::endian::little) {
    // The wire format *is* the host representation: one bulk append.
    return sink.Append(values.data(), values.size() * sizeof(double));
  } else {
    for (double v : values) WDE_RETURN_IF_ERROR(WriteDouble(sink, v));
    return Status::OK();
  }
}

Result<uint8_t> ReadU8(Source& source) {
  uint8_t value;
  WDE_RETURN_IF_ERROR(source.Read(&value, 1));
  return value;
}

Result<uint32_t> ReadU32(Source& source) {
  return ReadLittleEndian<4, uint32_t>(source);
}

Result<uint64_t> ReadU64(Source& source) {
  return ReadLittleEndian<8, uint64_t>(source);
}

Result<int32_t> ReadI32(Source& source) {
  WDE_ASSIGN_OR_RETURN(const uint32_t raw, ReadU32(source));
  return static_cast<int32_t>(raw);
}

Result<double> ReadDouble(Source& source) {
  WDE_ASSIGN_OR_RETURN(const uint64_t raw, ReadU64(source));
  return std::bit_cast<double>(raw);
}

Result<std::string> ReadString(Source& source, size_t max_size) {
  WDE_ASSIGN_OR_RETURN(const uint32_t size, ReadU32(source));
  if (size > source.remaining()) {
    return Status::OutOfRange(
        Format("corrupt string length %u exceeds remaining %zu bytes",
               static_cast<unsigned>(size), source.remaining()));
  }
  if (size > max_size) {
    return Status::OutOfRange(Format("string length %u exceeds limit %zu",
                                     static_cast<unsigned>(size), max_size));
  }
  std::string value(size, '\0');
  WDE_RETURN_IF_ERROR(source.Read(value.data(), size));
  return value;
}

Result<std::vector<double>> ReadDoubleVector(Source& source) {
  WDE_ASSIGN_OR_RETURN(const uint64_t count, ReadU64(source));
  if (count > source.remaining() / sizeof(double)) {
    return Status::OutOfRange(
        Format("corrupt vector length %llu exceeds remaining %zu bytes",
               static_cast<unsigned long long>(count), source.remaining()));
  }
  std::vector<double> values(static_cast<size_t>(count));
  if constexpr (std::endian::native == std::endian::little) {
    WDE_RETURN_IF_ERROR(
        source.Read(values.data(), values.size() * sizeof(double)));
  } else {
    for (double& v : values) {
      WDE_ASSIGN_OR_RETURN(v, ReadDouble(source));
    }
  }
  return values;
}

}  // namespace io
}  // namespace wde
