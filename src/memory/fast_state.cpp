#include "memory/fast_state.hpp"

#include <bit>
#include <cstring>
#include <limits>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace memory {

namespace {

/// "ARN1" as a little-endian u32.
constexpr uint32_t kFastStateMagic = 0x314E5241;

/// Bytes per column directory entry: u8 kind + u64 count.
constexpr uint64_t kDirectoryEntryBytes = 9;

Status AppendZeros(io::Sink& sink, uint64_t count) {
  // Gaps are inter-column alignment pads, always < kColumnAlignment.
  static constexpr uint8_t kZeros[kColumnAlignment] = {};
  WDE_CHECK_LE(count, sizeof(kZeros), "alignment pad exceeds one cache line");
  if (count == 0) return Status::OK();
  return sink.Append(kZeros, static_cast<size_t>(count));
}

}  // namespace

bool FastStateSupportedOnHost() {
  return std::endian::native == std::endian::little;
}

void FastStateWriter::AddF64(std::span<const double> values) {
  columns_.push_back(PendingColumn{
      ColumnSpec{ColumnKind::kF64, values.size()},
      reinterpret_cast<const uint8_t*>(values.data())});
}

void FastStateWriter::AddI64(std::span<const int64_t> values) {
  columns_.push_back(PendingColumn{
      ColumnSpec{ColumnKind::kI64, values.size()},
      reinterpret_cast<const uint8_t*>(values.data())});
}

void FastStateWriter::AddU8(std::span<const uint8_t> bytes) {
  columns_.push_back(
      PendingColumn{ColumnSpec{ColumnKind::kU8, bytes.size()}, bytes.data()});
}

void FastStateWriter::AddU8Owned(std::vector<uint8_t> bytes) {
  pinned_.push_back(std::move(bytes));
  AddU8(pinned_.back());
}

Status FastStateWriter::Finish(io::Sink& sink, uint64_t payload_offset) const {
  if (!FastStateSupportedOnHost()) {
    return Status::FailedPrecondition(
        "fast snapshot state requires a little-endian host");
  }
  std::vector<ColumnSpec> specs;
  specs.reserve(columns_.size());
  for (const PendingColumn& column : columns_) specs.push_back(column.spec);
  uint64_t region_bytes = 0;
  WDE_ASSIGN_OR_RETURN(std::vector<ColumnDesc> layout,
                       ComputeColumnLayout(specs, &region_bytes));

  const std::span<const uint8_t> head = head_.bytes();
  if (head.size() > std::numeric_limits<uint32_t>::max() ||
      columns_.size() > std::numeric_limits<uint32_t>::max()) {
    return Status::InvalidArgument("fast state head or directory too large");
  }
  // Everything before the column region; the pad is sized so the region
  // begins at a 64-byte absolute artifact offset.
  const uint64_t prefix_bytes = 4 + 4 + head.size() + 4 +
                                kDirectoryEntryBytes * columns_.size() + 8 + 4;
  const uint64_t pad_bytes =
      (kColumnAlignment - (payload_offset + prefix_bytes) % kColumnAlignment) %
      kColumnAlignment;

  WDE_RETURN_IF_ERROR(io::WriteU32(sink, kFastStateMagic));
  WDE_RETURN_IF_ERROR(io::WriteU32(sink, static_cast<uint32_t>(head.size())));
  if (!head.empty()) {
    WDE_RETURN_IF_ERROR(sink.Append(head.data(), head.size()));
  }
  WDE_RETURN_IF_ERROR(
      io::WriteU32(sink, static_cast<uint32_t>(columns_.size())));
  for (const PendingColumn& column : columns_) {
    WDE_RETURN_IF_ERROR(
        io::WriteU8(sink, static_cast<uint8_t>(column.spec.kind)));
    WDE_RETURN_IF_ERROR(io::WriteU64(sink, column.spec.count));
  }
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, region_bytes));
  WDE_RETURN_IF_ERROR(io::WriteU32(sink, static_cast<uint32_t>(pad_bytes)));
  WDE_RETURN_IF_ERROR(AppendZeros(sink, pad_bytes));

  uint64_t cursor = 0;
  for (size_t i = 0; i < layout.size(); ++i) {
    WDE_RETURN_IF_ERROR(AppendZeros(sink, layout[i].offset - cursor));
    const uint64_t bytes = layout[i].count * ColumnKindSize(layout[i].kind);
    if (bytes != 0) {
      WDE_RETURN_IF_ERROR(
          sink.Append(columns_[i].data, static_cast<size_t>(bytes)));
    }
    cursor = layout[i].offset + bytes;
  }
  return Status::OK();
}

Result<FastStateReader> FastStateReader::Parse(
    std::span<const uint8_t> payload, std::shared_ptr<const void> keepalive) {
  io::SpanSource scalars(payload);
  WDE_ASSIGN_OR_RETURN(uint32_t magic, io::ReadU32(scalars));
  if (magic != kFastStateMagic) {
    return Status::InvalidArgument("fast state payload has a bad magic");
  }
  WDE_ASSIGN_OR_RETURN(uint32_t head_bytes, io::ReadU32(scalars));
  if (head_bytes > scalars.remaining()) {
    return Status::InvalidArgument("fast state head is truncated");
  }
  const size_t head_pos = payload.size() - scalars.remaining();
  const std::span<const uint8_t> head =
      payload.subspan(head_pos, head_bytes);

  const std::span<const uint8_t> tail = payload.subspan(head_pos + head_bytes);
  io::SpanSource dir(tail);
  WDE_ASSIGN_OR_RETURN(uint32_t column_count, io::ReadU32(dir));
  if (column_count > dir.remaining() / kDirectoryEntryBytes) {
    return Status::InvalidArgument("fast state column directory is truncated");
  }
  std::vector<ColumnSpec> specs;
  specs.reserve(column_count);
  for (uint32_t i = 0; i < column_count; ++i) {
    WDE_ASSIGN_OR_RETURN(uint8_t raw_kind, io::ReadU8(dir));
    if (!IsValidColumnKind(raw_kind)) {
      return Status::InvalidArgument(
          Format("fast state column %u has invalid kind %u", i, raw_kind));
    }
    WDE_ASSIGN_OR_RETURN(uint64_t count, io::ReadU64(dir));
    specs.push_back(ColumnSpec{static_cast<ColumnKind>(raw_kind), count});
  }
  WDE_ASSIGN_OR_RETURN(uint64_t region_bytes, io::ReadU64(dir));
  WDE_ASSIGN_OR_RETURN(uint32_t pad_bytes, io::ReadU32(dir));
  if (pad_bytes >= kColumnAlignment || pad_bytes > dir.remaining()) {
    return Status::InvalidArgument("fast state pad is invalid");
  }
  const size_t region_pos = tail.size() - dir.remaining() + pad_bytes;
  const std::span<const uint8_t> region = tail.subspan(region_pos);
  // The region must account for every remaining byte (chunk payloads are
  // exact) and match the canonical layout — FromImage re-validates the
  // latter, so hostile directories degrade into a Status here or there.
  if (region.size() != region_bytes) {
    return Status::InvalidArgument(
        Format("fast state column region has %zu bytes, directory claims %llu",
               region.size(), static_cast<unsigned long long>(region_bytes)));
  }
  WDE_ASSIGN_OR_RETURN(Arena arena,
                       Arena::FromImage(specs, region, keepalive));
  return FastStateReader(io::SpanSource(head), std::move(arena),
                         std::move(keepalive));
}

bool ColumnsMatch(const Arena& arena, std::span<const ColumnSpec> specs) {
  if (arena.num_columns() != specs.size()) return false;
  for (size_t i = 0; i < specs.size(); ++i) {
    const ColumnDesc& have = arena.column(i);
    if (have.kind != specs[i].kind || have.count != specs[i].count) {
      return false;
    }
  }
  return true;
}

}  // namespace memory
}  // namespace wde
