/// \file memory/arena.hpp
/// Entry header of the `memory` module: aligned, relocatable columnar
/// storage for estimator fitted state. An `Arena` carves a fixed set of
/// typed columns (`f64`, `i64`, raw bytes) out of ONE contiguous
/// allocation, every column starting on a 64-byte boundary
/// (`kColumnAlignment`) — the layout the SIMD batch kernels and the
/// tree-over-buffer evaluation want, and exactly what the snapshot fast
/// path serializes as a single framed blob (see memory/fast_state.hpp).
///
/// Ownership is copy-on-write: copying an Arena shares the underlying
/// storage block (publishing an immutable view costs two pointer copies,
/// independent of state size), and the first mutation through a
/// `Mutable*()` accessor un-shares it by relocating into a fresh
/// allocation. Storage may also be *borrowed* from an external image (an
/// mmap'ed snapshot) with a keepalive handle; borrowed storage is
/// read-only, so the same first-mutation relocation applies. Relocation
/// never changes column offsets — only the base pointer — so the column
/// directory stays valid; raw spans cached by callers across a mutation do
/// NOT, which is why the mutable accessors re-derive the span on every
/// call.
///
/// Thread-safety matches std::shared_ptr CoW: concurrent readers of
/// Arena copies are safe; a writer mutating its own handle while other
/// handles exist relocates first (the use_count check can only
/// over-approximate sharing, never miss a live reader that was published
/// before the write).
#ifndef WDE_MEMORY_ARENA_HPP_
#define WDE_MEMORY_ARENA_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "util/result.hpp"

namespace wde {
namespace memory {

/// Every column begins at a multiple of this within the arena payload (and,
/// for owned storage, in memory — 64 bytes: one cache line, the widest
/// vector register, and the alignment the snapshot fast path pads to).
inline constexpr size_t kColumnAlignment = 64;

/// Element type of one column. The raw values are part of the snapshot wire
/// format — do not renumber.
enum class ColumnKind : uint8_t {
  kF64 = 0,
  kI64 = 1,
  kU8 = 2,
};

/// Element size in bytes; aborts on an invalid kind (validate raw bytes
/// with IsValidColumnKind first).
size_t ColumnKindSize(ColumnKind kind);
bool IsValidColumnKind(uint8_t raw);

/// Requested column: element kind + element count.
struct ColumnSpec {
  ColumnKind kind = ColumnKind::kU8;
  uint64_t count = 0;
};

/// Materialized column: spec + byte offset of the first element within the
/// arena payload. Offsets are a pure function of the spec sequence (the
/// canonical 64-byte-aligned packing of ComputeColumnLayout), which is what
/// lets the wire format ship only the specs.
struct ColumnDesc {
  ColumnKind kind = ColumnKind::kU8;
  uint64_t count = 0;
  uint64_t offset = 0;
};

/// The canonical packing: columns in declaration order, each starting at
/// the next 64-byte boundary. Returns the descriptors and writes the total
/// payload size (end of the last column, unpadded) to `*total_bytes`.
/// Fails on element-count overflow.
Result<std::vector<ColumnDesc>> ComputeColumnLayout(
    std::span<const ColumnSpec> specs, uint64_t* total_bytes);

class Arena {
 public:
  /// Empty arena: no storage, no columns.
  Arena() = default;

  /// Copies share storage (copy-on-write); moves transfer it.
  Arena(const Arena&) = default;
  Arena& operator=(const Arena&) = default;
  Arena(Arena&&) noexcept = default;
  Arena& operator=(Arena&&) noexcept = default;

  /// Owned, writable, zero-initialized storage for `specs` in the canonical
  /// layout. Aborts only on allocation failure (like every other allocation
  /// in the library); invalid specs (overflowing counts) abort too — specs
  /// from untrusted bytes must go through FromImage.
  static Arena Create(std::span<const ColumnSpec> specs);

  /// An arena over an existing serialized payload in the canonical layout
  /// for `specs`. Validates the layout against `payload.size()` first —
  /// hostile specs degrade into a Status, never UB. When `keepalive` is
  /// non-null and the payload base is 64-byte aligned, the arena *borrows*
  /// the bytes zero-copy (read-only until first mutation) and holds
  /// `keepalive` for their lifetime; otherwise the payload is copied into
  /// fresh owned storage.
  static Result<Arena> FromImage(std::span<const ColumnSpec> specs,
                                 std::span<const uint8_t> payload,
                                 std::shared_ptr<const void> keepalive);

  size_t num_columns() const { return columns_.size(); }
  std::span<const ColumnDesc> columns() const { return columns_; }
  const ColumnDesc& column(size_t i) const;

  /// Typed read-only element spans. The column's kind must match (checked).
  std::span<const double> F64(size_t i) const;
  std::span<const int64_t> I64(size_t i) const;
  std::span<const uint8_t> U8(size_t i) const;

  /// Typed writable element spans. Un-shares / un-borrows storage first
  /// (see EnsureWritable), so the returned span is exclusively owned; any
  /// previously obtained span into this arena may be invalidated.
  std::span<double> MutableF64(size_t i);
  std::span<int64_t> MutableI64(size_t i);
  std::span<uint8_t> MutableU8(size_t i);

  /// Guarantees exclusively owned, writable storage: relocates into a fresh
  /// 64-byte-aligned allocation when the current block is borrowed from an
  /// image or shared with another Arena handle. Contents are preserved
  /// bitwise; column offsets never change.
  void EnsureWritable();

  /// The contiguous payload (serialized verbatim by the snapshot fast
  /// path). Null/0 for an empty arena.
  const uint8_t* payload() const;
  size_t payload_bytes() const;

  bool empty() const { return storage_ == nullptr; }
  /// True while the storage is a zero-copy view of an external image.
  bool borrowed() const;
  /// True when both arenas view the same storage block (CoW not yet broken).
  bool shares_storage_with(const Arena& other) const;
  /// Keepalive handle for the current storage block: anything holding it
  /// (e.g. an interpolation table borrowing a column) keeps the bytes valid
  /// even after this arena relocates or dies.
  std::shared_ptr<const void> storage_keepalive() const;

 private:
  struct Storage;

  Arena(std::shared_ptr<Storage> storage, std::vector<ColumnDesc> columns)
      : storage_(std::move(storage)), columns_(std::move(columns)) {}

  static std::shared_ptr<Storage> AllocateOwned(size_t bytes);

  const uint8_t* ColumnBase(size_t i, ColumnKind kind) const;
  uint8_t* MutableColumnBase(size_t i, ColumnKind kind);

  std::shared_ptr<Storage> storage_;
  std::vector<ColumnDesc> columns_;
};

}  // namespace memory
}  // namespace wde

#endif  // WDE_MEMORY_ARENA_HPP_
