#include "memory/arena.hpp"

#include <cstdlib>
#include <cstring>
#include <limits>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace memory {

namespace {

uint64_t AlignUp(uint64_t value, uint64_t alignment) {
  return (value + alignment - 1) / alignment * alignment;
}

}  // namespace

size_t ColumnKindSize(ColumnKind kind) {
  switch (kind) {
    case ColumnKind::kF64:
      return sizeof(double);
    case ColumnKind::kI64:
      return sizeof(int64_t);
    case ColumnKind::kU8:
      return 1;
  }
  WDE_CHECK(false, "invalid ColumnKind");
  return 0;
}

bool IsValidColumnKind(uint8_t raw) {
  return raw <= static_cast<uint8_t>(ColumnKind::kU8);
}

Result<std::vector<ColumnDesc>> ComputeColumnLayout(
    std::span<const ColumnSpec> specs, uint64_t* total_bytes) {
  std::vector<ColumnDesc> columns;
  columns.reserve(specs.size());
  uint64_t offset = 0;
  for (const ColumnSpec& spec : specs) {
    if (!IsValidColumnKind(static_cast<uint8_t>(spec.kind))) {
      return Status::InvalidArgument("invalid column kind");
    }
    const uint64_t elem = ColumnKindSize(spec.kind);
    if (spec.count > std::numeric_limits<uint64_t>::max() / elem ||
        offset > std::numeric_limits<uint64_t>::max() - spec.count * elem) {
      return Status::InvalidArgument("column layout overflows");
    }
    columns.push_back(ColumnDesc{spec.kind, spec.count, offset});
    offset += spec.count * elem;
    // Next column starts at the next cache line; AlignUp cannot overflow
    // because the addend is < kColumnAlignment and offsets this close to
    // 2^64 were rejected above for any nonzero column.
    if (offset > std::numeric_limits<uint64_t>::max() - kColumnAlignment) {
      return Status::InvalidArgument("column layout overflows");
    }
    offset = AlignUp(offset, kColumnAlignment);
  }
  // Report the unpadded end of the last column: trailing pad carries no data
  // and the serializer must not be forced to ship it.
  uint64_t total = 0;
  if (!columns.empty()) {
    const ColumnDesc& last = columns.back();
    total = last.offset + last.count * ColumnKindSize(last.kind);
  }
  *total_bytes = total;
  return columns;
}

struct Arena::Storage {
  /// Base of the payload; owned (aligned allocation) or borrowed.
  const uint8_t* data = nullptr;
  size_t size = 0;
  bool writable = false;
  /// Owned mode: the allocation freed at destruction.
  void* owned = nullptr;
  /// Borrowed mode: keeps the external image alive.
  std::shared_ptr<const void> keepalive;

  ~Storage() { std::free(owned); }
};

std::shared_ptr<Arena::Storage> Arena::AllocateOwned(size_t bytes) {
  auto storage = std::make_shared<Storage>();
  // aligned_alloc requires a size that is a multiple of the alignment; the
  // pad bytes are zeroed with the rest and never serialized.
  const size_t padded =
      static_cast<size_t>(AlignUp(bytes == 0 ? 1 : bytes, kColumnAlignment));
  storage->owned = std::aligned_alloc(kColumnAlignment, padded);
  WDE_CHECK(storage->owned != nullptr, "arena allocation failed");
  std::memset(storage->owned, 0, padded);
  storage->data = static_cast<const uint8_t*>(storage->owned);
  storage->size = bytes;
  storage->writable = true;
  return storage;
}

Arena Arena::Create(std::span<const ColumnSpec> specs) {
  uint64_t total = 0;
  Result<std::vector<ColumnDesc>> columns = ComputeColumnLayout(specs, &total);
  WDE_CHECK(columns.ok(), columns.status().ToString().c_str());
  return Arena(AllocateOwned(static_cast<size_t>(total)),
               std::move(columns).value());
}

Result<Arena> Arena::FromImage(std::span<const ColumnSpec> specs,
                               std::span<const uint8_t> payload,
                               std::shared_ptr<const void> keepalive) {
  uint64_t total = 0;
  WDE_ASSIGN_OR_RETURN(std::vector<ColumnDesc> columns,
                       ComputeColumnLayout(specs, &total));
  if (total != payload.size()) {
    return Status::InvalidArgument(
        Format("arena image size %zu does not match its column layout (%llu)",
               payload.size(), static_cast<unsigned long long>(total)));
  }
  const bool aligned =
      reinterpret_cast<uintptr_t>(payload.data()) % kColumnAlignment == 0;
  if (keepalive != nullptr && aligned) {
    auto storage = std::make_shared<Storage>();
    storage->data = payload.data();
    storage->size = payload.size();
    storage->writable = false;
    storage->keepalive = std::move(keepalive);
    return Arena(std::move(storage), std::move(columns));
  }
  // Misaligned or unanchored image: copy into owned aligned storage so the
  // alignment contract holds regardless of where the bytes came from.
  std::shared_ptr<Storage> storage = AllocateOwned(payload.size());
  if (!payload.empty()) {
    std::memcpy(const_cast<uint8_t*>(storage->data), payload.data(),
                payload.size());
  }
  return Arena(std::move(storage), std::move(columns));
}

const ColumnDesc& Arena::column(size_t i) const {
  WDE_CHECK_LT(i, columns_.size(), "arena column index out of range");
  return columns_[i];
}

const uint8_t* Arena::ColumnBase(size_t i, ColumnKind kind) const {
  const ColumnDesc& desc = column(i);
  WDE_CHECK(desc.kind == kind, "arena column kind mismatch");
  WDE_CHECK(storage_ != nullptr, "arena has no storage");
  return storage_->data + desc.offset;
}

uint8_t* Arena::MutableColumnBase(size_t i, ColumnKind kind) {
  EnsureWritable();
  return const_cast<uint8_t*>(ColumnBase(i, kind));
}

std::span<const double> Arena::F64(size_t i) const {
  return {reinterpret_cast<const double*>(ColumnBase(i, ColumnKind::kF64)),
          static_cast<size_t>(column(i).count)};
}

std::span<const int64_t> Arena::I64(size_t i) const {
  return {reinterpret_cast<const int64_t*>(ColumnBase(i, ColumnKind::kI64)),
          static_cast<size_t>(column(i).count)};
}

std::span<const uint8_t> Arena::U8(size_t i) const {
  return {ColumnBase(i, ColumnKind::kU8), static_cast<size_t>(column(i).count)};
}

std::span<double> Arena::MutableF64(size_t i) {
  return {reinterpret_cast<double*>(MutableColumnBase(i, ColumnKind::kF64)),
          static_cast<size_t>(column(i).count)};
}

std::span<int64_t> Arena::MutableI64(size_t i) {
  return {reinterpret_cast<int64_t*>(MutableColumnBase(i, ColumnKind::kI64)),
          static_cast<size_t>(column(i).count)};
}

std::span<uint8_t> Arena::MutableU8(size_t i) {
  return {MutableColumnBase(i, ColumnKind::kU8),
          static_cast<size_t>(column(i).count)};
}

void Arena::EnsureWritable() {
  if (storage_ == nullptr) return;
  // use_count == 1 means this handle is the only owner: no other Arena (and
  // no keepalive-holding borrower — those hold the Storage itself via
  // storage_keepalive) can observe the mutation. The count can only
  // over-report sharing for handles being destroyed concurrently, which at
  // worst costs one redundant relocation.
  if (storage_->writable && storage_.use_count() == 1) return;
  std::shared_ptr<Storage> fresh = AllocateOwned(storage_->size);
  if (storage_->size != 0) {
    std::memcpy(const_cast<uint8_t*>(fresh->data), storage_->data,
                storage_->size);
  }
  storage_ = std::move(fresh);
}

const uint8_t* Arena::payload() const {
  return storage_ == nullptr ? nullptr : storage_->data;
}

size_t Arena::payload_bytes() const {
  return storage_ == nullptr ? 0 : storage_->size;
}

bool Arena::borrowed() const {
  return storage_ != nullptr && !storage_->writable;
}

bool Arena::shares_storage_with(const Arena& other) const {
  return storage_ != nullptr && storage_ == other.storage_;
}

std::shared_ptr<const void> Arena::storage_keepalive() const {
  return storage_;
}

}  // namespace memory
}  // namespace wde
