/// \file memory/fast_state.hpp
/// The snapshot fast path: one framed blob per estimator, restored by
/// header-validate + pointer-fixup instead of element-wise decode.
///
/// An estimator's fast state is (head, columns): the `head` carries the
/// small configuration fields through the ordinary io primitives, and each
/// column is a raw typed buffer serialized verbatim. The blob travels as
/// the payload of one `ARNA` chunk inside the standard WDESNAP1 envelope
/// (CRC-framed like every other chunk, so truncation and bit flips surface
/// as Status errors before any byte is interpreted):
///
///   u32 magic "ARN1" · u32 head_bytes · head ·
///   u32 column_count · (u8 kind · u64 count)* ·
///   u64 column_region_bytes · u32 pad_bytes · pad zeros ·
///   column region (the canonical Arena layout, columns 64-byte apart)
///
/// Column offsets are NOT on the wire: both sides derive them from the
/// (kind, count) sequence via ComputeColumnLayout, so a hostile directory
/// cannot describe overlapping or out-of-bounds columns. The writer knows
/// the absolute artifact offset its payload will land at and sizes
/// `pad_bytes` so the column region starts on a 64-byte file offset — an
/// mmap'ed snapshot (page-aligned base) then presents every column
/// 64-byte aligned in memory and the Arena borrows the mapping zero-copy.
/// When the image arrives misaligned (an in-memory buffer, a foreign
/// writer), Arena::FromImage falls back to one copy; correctness never
/// depends on alignment.
///
/// Endianness: column bytes are the host's little-endian representation.
/// On a big-endian host writers must fall back to the portable path
/// (readers reject the blob via the per-element decode they never reach);
/// the save wrappers in selectivity do this automatically.
#ifndef WDE_MEMORY_FAST_STATE_HPP_
#define WDE_MEMORY_FAST_STATE_HPP_

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "io/serialize.hpp"
#include "memory/arena.hpp"
#include "util/result.hpp"

namespace wde {
namespace memory {

/// True when the host can serialize columns verbatim (little-endian).
bool FastStateSupportedOnHost();

/// True when `arena`'s column directory is exactly `specs` — same column
/// count, kinds and element counts, in order. The first validation every
/// LoadFastStateImpl runs: the directory arrives from untrusted bytes, and
/// the typed accessors (Arena::F64 et al.) treat a kind mismatch as caller
/// error, so the shape must be proven before any column is touched.
bool ColumnsMatch(const Arena& arena, std::span<const ColumnSpec> specs);

/// Accumulates one estimator's fast state. Column spans must stay alive
/// until Finish(); use the Owned variants to pin temporaries.
class FastStateWriter {
 public:
  /// Destination for the configuration fields (io primitives).
  io::Sink& head() { return head_; }

  void AddF64(std::span<const double> values);
  void AddI64(std::span<const int64_t> values);
  void AddU8(std::span<const uint8_t> bytes);
  /// Adds a byte column whose storage the writer keeps alive itself (for
  /// buffers built on the fly, e.g. nested envelopes).
  void AddU8Owned(std::vector<uint8_t> bytes);

  /// Serializes the complete ARNA chunk *payload* into `sink`.
  /// `payload_offset` is the absolute artifact offset the payload's first
  /// byte will land at (chunk header already accounted for by the caller);
  /// the pad is sized so the column region starts at a 64-byte offset.
  Status Finish(io::Sink& sink, uint64_t payload_offset) const;

 private:
  struct PendingColumn {
    ColumnSpec spec;
    const uint8_t* data = nullptr;  // element bytes, spec.count * elem size
  };

  io::VectorSink head_;
  std::vector<PendingColumn> columns_;
  std::vector<std::vector<uint8_t>> pinned_;
};

/// Parses one ARNA chunk payload: validates the frame, re-derives the
/// column layout, and wraps the column region in an Arena (borrowed
/// zero-copy when `keepalive` anchors the bytes and they are aligned;
/// copied otherwise). Hostile input yields a non-OK Result, never UB.
class FastStateReader {
 public:
  static Result<FastStateReader> Parse(std::span<const uint8_t> payload,
                                       std::shared_ptr<const void> keepalive);

  /// The configuration fields, positioned at the start of the head.
  /// LoadFastStateImpl must consume it fully (head().remaining() == 0) as
  /// part of its validation, exactly like the portable LoadStateImpl.
  io::Source& head() { return head_; }

  const Arena& arena() const { return arena_; }
  Arena& arena() { return arena_; }

  /// The handle anchoring the underlying image (null for unanchored
  /// buffers) — pass down when parsing nested envelopes out of a column.
  const std::shared_ptr<const void>& keepalive() const { return keepalive_; }

 private:
  FastStateReader(io::SpanSource head, Arena arena,
                  std::shared_ptr<const void> keepalive)
      : head_(head), arena_(std::move(arena)), keepalive_(std::move(keepalive)) {}

  io::SpanSource head_;
  Arena arena_;
  std::shared_ptr<const void> keepalive_;
};

}  // namespace memory
}  // namespace wde

#endif  // WDE_MEMORY_FAST_STATE_HPP_
