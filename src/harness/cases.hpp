#ifndef WDE_HARNESS_CASES_HPP_
#define WDE_HARNESS_CASES_HPP_

#include <memory>

#include "processes/transformed_process.hpp"

namespace wde {
namespace harness {

/// The paper's three weak-dependence samplings (§5.2), all sharing the same
/// target marginal F:
///   Case 1 — iid;
///   Case 2 — logistic-map dynamical system (φ̃-weakly dependent);
///   Case 3 — non-causal infinite moving average (λ-weakly dependent).
enum class DependenceCase { kIid = 1, kLogisticMap = 2, kNoncausalMa = 3 };

inline constexpr DependenceCase kAllCases[] = {
    DependenceCase::kIid, DependenceCase::kLogisticMap, DependenceCase::kNoncausalMa};

const char* CaseName(DependenceCase c);

/// Builds the sampling pipeline X = F^{-1}(G(Y)) for a case and target F.
processes::TransformedProcess MakeCase(
    DependenceCase c, std::shared_ptr<const processes::TargetDensity> target);

}  // namespace harness
}  // namespace wde

#endif  // WDE_HARNESS_CASES_HPP_
