/// \file harness/monte_carlo.hpp
/// Entry header of the `harness` module: the replication engine behind every
/// paper table/figure (M replicates of an experiment, e.g. Table 1's M = 500,
/// n = 2^10 MISE runs). Invariants: replicate r receives an RNG forked
/// deterministically from (seed, r), so results are identical for any thread
/// count and machine; Summarize() treats an empty sample as all-zero stats
/// rather than NaN.
#ifndef WDE_HARNESS_MONTE_CARLO_HPP_
#define WDE_HARNESS_MONTE_CARLO_HPP_

#include <functional>
#include <span>
#include <vector>

#include "stats/rng.hpp"

namespace wde {
namespace harness {

/// Aggregates of a scalar Monte-Carlo sample.
struct SummaryStats {
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
  size_t count = 0;
};

SummaryStats Summarize(std::span<const double> values);

/// Runs `replicates` independent replicates of a scalar experiment. Each
/// replicate r receives an RNG forked deterministically from (seed, r), so
/// results are identical for any thread count.
std::vector<double> RunReplicates(int replicates, uint64_t seed, int threads,
                                  const std::function<double(stats::Rng&, int)>& body);

/// Vector-valued variant: every replicate must return `dim` values; the
/// replicate-wise mean curve is returned. Used for the paper's "mean of the
/// estimators" figures.
std::vector<double> MeanCurve(
    int replicates, uint64_t seed, int threads, size_t dim,
    const std::function<std::vector<double>(stats::Rng&, int)>& body);

/// Vector-valued variant returning all replicate rows (replicates × dim).
std::vector<std::vector<double>> CollectCurves(
    int replicates, uint64_t seed, int threads, size_t dim,
    const std::function<std::vector<double>(stats::Rng&, int)>& body);

/// Chunked parallel-for over [0, count) with at most `threads` concurrent
/// workers (serial when threads <= 1), executed on the process-wide
/// parallel::ThreadPool::Shared() executor — so the effective width is also
/// capped by that pool's size (hardware concurrency), unlike the old
/// spawn-per-call implementation which honored any `threads` value. The body
/// must be safe to run concurrently for distinct indices.
void ParallelFor(int count, int threads, const std::function<void(int)>& body);

}  // namespace harness
}  // namespace wde

#endif  // WDE_HARNESS_MONTE_CARLO_HPP_
