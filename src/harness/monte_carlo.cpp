#include "harness/monte_carlo.hpp"

#include "parallel/thread_pool.hpp"
#include "stats/descriptive.hpp"
#include "util/check.hpp"

namespace wde {
namespace harness {

SummaryStats Summarize(std::span<const double> values) {
  SummaryStats s;
  s.count = values.size();
  if (values.empty()) return s;
  s.mean = stats::Mean(values);
  s.stddev = stats::StdDev(values);
  s.min = stats::Min(values);
  s.max = stats::Max(values);
  return s;
}

void ParallelFor(int count, int threads, const std::function<void(int)>& body) {
  // Delegates to the process-wide shared executor instead of spawning (and
  // joining) a fresh thread set per call; `threads` caps the parallel width.
  // Replicate results stay identical for any thread count because each index
  // writes only its own slot (see the RNG-forking contract above).
  parallel::ThreadPool::Shared().ParallelFor(count, threads, body);
}

std::vector<double> RunReplicates(int replicates, uint64_t seed, int threads,
                                  const std::function<double(stats::Rng&, int)>& body) {
  WDE_CHECK_GT(replicates, 0);
  std::vector<double> out(static_cast<size_t>(replicates), 0.0);
  const stats::Rng root(seed);
  ParallelFor(replicates, threads, [&](int rep) {
    stats::Rng rng = root.Fork(static_cast<uint64_t>(rep));
    out[static_cast<size_t>(rep)] = body(rng, rep);
  });
  return out;
}

std::vector<std::vector<double>> CollectCurves(
    int replicates, uint64_t seed, int threads, size_t dim,
    const std::function<std::vector<double>(stats::Rng&, int)>& body) {
  WDE_CHECK_GT(replicates, 0);
  std::vector<std::vector<double>> rows(static_cast<size_t>(replicates));
  const stats::Rng root(seed);
  ParallelFor(replicates, threads, [&](int rep) {
    stats::Rng rng = root.Fork(static_cast<uint64_t>(rep));
    std::vector<double> row = body(rng, rep);
    WDE_CHECK_EQ(row.size(), dim, "replicate returned wrong curve length");
    rows[static_cast<size_t>(rep)] = std::move(row);
  });
  return rows;
}

std::vector<double> MeanCurve(
    int replicates, uint64_t seed, int threads, size_t dim,
    const std::function<std::vector<double>(stats::Rng&, int)>& body) {
  const std::vector<std::vector<double>> rows =
      CollectCurves(replicates, seed, threads, dim, body);
  std::vector<double> mean(dim, 0.0);
  for (const std::vector<double>& row : rows) {
    for (size_t i = 0; i < dim; ++i) mean[i] += row[i];
  }
  for (double& v : mean) v /= static_cast<double>(replicates);
  return mean;
}

}  // namespace harness
}  // namespace wde
