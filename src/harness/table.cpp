#include "harness/table.hpp"

#include <algorithm>
#include <iomanip>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace harness {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> row) {
  WDE_CHECK_EQ(row.size(), header_.size(), "row width mismatch");
  rows_.push_back(std::move(row));
}

void TextTable::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size(), 0);
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  const auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << "| " << std::setw(static_cast<int>(widths[c])) << std::left << row[c] << ' ';
    }
    os << "|\n";
  };
  print_row(header_);
  for (size_t c = 0; c < header_.size(); ++c) {
    os << "|" << std::string(widths[c] + 2, '-');
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

void PrintSeries(std::ostream& os, const std::string& title,
                 const std::vector<double>& x,
                 const std::vector<std::pair<std::string, std::vector<double>>>& series) {
  os << "# " << title << '\n';
  os << "x";
  for (const auto& [label, values] : series) {
    WDE_CHECK_EQ(values.size(), x.size(), "series length mismatch");
    os << ' ' << label;
  }
  os << '\n';
  for (size_t i = 0; i < x.size(); ++i) {
    os << Format("%.6g", x[i]);
    for (const auto& [label, values] : series) {
      os << ' ' << Format("%.6g", values[i]);
    }
    os << '\n';
  }
}

}  // namespace harness
}  // namespace wde
