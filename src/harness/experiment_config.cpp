#include "harness/experiment_config.hpp"

#include <thread>

#include "util/string_util.hpp"

namespace wde {
namespace harness {

ExperimentConfig ExperimentConfig::FromEnv(size_t default_n, int default_reps,
                                           size_t default_grid) {
  ExperimentConfig config;
  config.n = static_cast<size_t>(EnvInt("WDE_N", static_cast<long>(default_n)));
  config.replicates = static_cast<int>(EnvInt("WDE_REPS", default_reps));
  config.seed = static_cast<uint64_t>(EnvInt("WDE_SEED", 20061015));
  config.grid_points =
      static_cast<size_t>(EnvInt("WDE_GRID", static_cast<long>(default_grid)));
  const long hw = static_cast<long>(std::thread::hardware_concurrency());
  config.threads = static_cast<int>(EnvInt("WDE_THREADS", hw > 0 ? hw : 1));
  return config;
}

std::string ExperimentConfig::Describe() const {
  return Format("n=%zu replicates=%d seed=%llu grid=%zu threads=%d", n, replicates,
                static_cast<unsigned long long>(seed), grid_points, threads);
}

}  // namespace harness
}  // namespace wde
