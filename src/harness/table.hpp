#ifndef WDE_HARNESS_TABLE_HPP_
#define WDE_HARNESS_TABLE_HPP_

#include <ostream>
#include <string>
#include <vector>

namespace wde {
namespace harness {

/// Column-aligned text table for bench output, mirroring the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> row);
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a labelled series block, one grid point per line:
///   # <title>
///   x <label1> <label2> ...
///   0.00 1.234 ...
/// This is the machine-readable analogue of the paper's figures.
void PrintSeries(std::ostream& os, const std::string& title,
                 const std::vector<double>& x,
                 const std::vector<std::pair<std::string, std::vector<double>>>& series);

}  // namespace harness
}  // namespace wde

#endif  // WDE_HARNESS_TABLE_HPP_
