#ifndef WDE_HARNESS_EXPERIMENT_CONFIG_HPP_
#define WDE_HARNESS_EXPERIMENT_CONFIG_HPP_

#include <cstddef>
#include <cstdint>
#include <string>

namespace wde {
namespace harness {

/// Common knobs for the reproduction benches. Environment variables override
/// the paper's defaults so a full 500-replicate run and a quick smoke run use
/// the same binaries:
///   WDE_N      sample size per replicate   (paper: 1024)
///   WDE_REPS   Monte-Carlo replicates      (paper: 500)
///   WDE_SEED   root RNG seed
///   WDE_GRID   evaluation grid points
///   WDE_THREADS worker threads for replicate loops
struct ExperimentConfig {
  size_t n = 1024;
  int replicates = 500;
  uint64_t seed = 20061015;  // the paper's arXiv v1 date
  size_t grid_points = 1025;
  int threads = 1;

  /// Applies environment overrides on top of the given defaults.
  static ExperimentConfig FromEnv(size_t default_n = 1024, int default_reps = 500,
                                  size_t default_grid = 1025);

  std::string Describe() const;
};

}  // namespace harness
}  // namespace wde

#endif  // WDE_HARNESS_EXPERIMENT_CONFIG_HPP_
