#include "harness/cases.hpp"

#include "processes/iid_process.hpp"
#include "processes/logistic_map.hpp"
#include "processes/noncausal_ma.hpp"
#include "util/check.hpp"

namespace wde {
namespace harness {

const char* CaseName(DependenceCase c) {
  switch (c) {
    case DependenceCase::kIid:
      return "Case 1 (iid)";
    case DependenceCase::kLogisticMap:
      return "Case 2 (logistic map)";
    case DependenceCase::kNoncausalMa:
      return "Case 3 (non-causal MA)";
  }
  return "unknown";
}

processes::TransformedProcess MakeCase(
    DependenceCase c, std::shared_ptr<const processes::TargetDensity> target) {
  WDE_CHECK(target != nullptr);
  std::shared_ptr<const processes::RawProcess> raw;
  switch (c) {
    case DependenceCase::kIid:
      raw = std::make_shared<const processes::IidUniformProcess>();
      break;
    case DependenceCase::kLogisticMap:
      raw = std::make_shared<const processes::LogisticMapProcess>();
      break;
    case DependenceCase::kNoncausalMa:
      raw = std::make_shared<const processes::NoncausalMaProcess>();
      break;
  }
  return processes::TransformedProcess(std::move(raw), std::move(target));
}

}  // namespace harness
}  // namespace wde
