#include "selectivity/sample_selectivity.hpp"

#include <algorithm>
#include <cmath>

#include "memory/fast_state.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace selectivity {

ReservoirSampleSelectivity::ReservoirSampleSelectivity(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  WDE_CHECK_GT(capacity_, 0u);
  reservoir_.reserve(capacity_);
}

void ReservoirSampleSelectivity::Insert(double x) {
  if (!std::isfinite(x)) return;
  ++seen_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(x);
    return;
  }
  const uint64_t slot = rng_.UniformInt(seen_);
  if (slot < capacity_) reservoir_[static_cast<size_t>(slot)] = x;
}

RangeQuery ReservoirSampleSelectivity::Domain() const {
  if (reservoir_.empty()) return SelectivityEstimator::Domain();
  const auto [min_it, max_it] =
      std::minmax_element(reservoir_.begin(), reservoir_.end());
  return RangeQuery{*min_it, *max_it};
}

double ReservoirSampleSelectivity::EstimateRangeImpl(double a, double b) const {
  if (reservoir_.empty()) return 0.0;
  size_t hits = 0;
  for (double x : reservoir_) {
    if (x >= a && x <= b) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(reservoir_.size());
}

std::string ReservoirSampleSelectivity::name() const {
  return Format("reservoir(%zu)", capacity_);
}

std::unique_ptr<SelectivityEstimator> ReservoirSampleSelectivity::CloneEmpty()
    const {
  return std::make_unique<ReservoirSampleSelectivity>(capacity_, rng_.seed());
}

Status ReservoirSampleSelectivity::MergeFrom(const SelectivityEstimator& other) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const ReservoirSampleSelectivity&>(other);
  if (capacity_ != rhs.capacity_) {
    return Status::FailedPrecondition("MergeFrom: reservoir capacity mismatch");
  }
  if (rhs.seen_ <= rhs.capacity_) {
    // rhs retained its whole sub-stream: replaying it through Insert is an
    // exact continuation, no union draw needed.
    for (double x : rhs.reservoir_) Insert(x);
    return Status::OK();
  }
  // Weighted union: fill each output slot from one side with probability
  // proportional to that side's remaining stream count, drawing without
  // replacement. A uniform element of a reservoir is a uniform element of
  // its stream, and the rest stays a uniform sample of the remainder, so by
  // induction the result is a uniform capacity-sample of the concatenated
  // stream. At most capacity draws come from either side, so a pool can only
  // run dry together with its stream count.
  std::vector<double> pool_a = reservoir_;
  std::vector<double> pool_b = rhs.reservoir_;
  double n_a = static_cast<double>(seen_);
  double n_b = static_cast<double>(rhs.seen_);
  std::vector<double> merged;
  const size_t target = std::min(capacity_, seen_ + rhs.seen_);
  merged.reserve(target);
  while (merged.size() < target) {
    const bool from_a =
        !pool_a.empty() &&
        (pool_b.empty() || rng_.UniformDouble() < n_a / (n_a + n_b));
    std::vector<double>& pool = from_a ? pool_a : pool_b;
    const auto idx = static_cast<size_t>(rng_.UniformInt(pool.size()));
    merged.push_back(pool[idx]);
    pool[idx] = pool.back();
    pool.pop_back();
    (from_a ? n_a : n_b) -= 1.0;
  }
  reservoir_ = std::move(merged);
  seen_ += rhs.seen_;
  return Status::OK();
}

Status ReservoirSampleSelectivity::SaveStateImpl(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, capacity_));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, seen_));
  WDE_RETURN_IF_ERROR(io::WriteDoubleVector(sink, reservoir_));
  const stats::Rng::State rng = rng_.SaveState();
  for (uint64_t word : rng.state) WDE_RETURN_IF_ERROR(io::WriteU64(sink, word));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, rng.seed));
  WDE_RETURN_IF_ERROR(io::WriteU8(sink, rng.have_spare_gaussian ? 1 : 0));
  return io::WriteDouble(sink, rng.spare_gaussian);
}

Status ReservoirSampleSelectivity::LoadStateImpl(io::Source& source) {
  WDE_ASSIGN_OR_RETURN(const uint64_t capacity, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t seen, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(std::vector<double> reservoir,
                       io::ReadDoubleVector(source));
  stats::Rng::State rng;
  for (uint64_t& word : rng.state) {
    WDE_ASSIGN_OR_RETURN(word, io::ReadU64(source));
  }
  WDE_ASSIGN_OR_RETURN(rng.seed, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(const uint8_t have_spare, io::ReadU8(source));
  WDE_ASSIGN_OR_RETURN(rng.spare_gaussian, io::ReadDouble(source));
  rng.have_spare_gaussian = have_spare != 0;
  if (capacity == 0 ||
      reservoir.size() != std::min<uint64_t>(seen, capacity) ||
      source.remaining() != 0) {
    return Status::InvalidArgument("corrupt reservoir snapshot");
  }
  capacity_ = static_cast<size_t>(capacity);
  seen_ = static_cast<size_t>(seen);
  reservoir_ = std::move(reservoir);
  rng_.RestoreState(rng);
  return Status::OK();
}

Status ReservoirSampleSelectivity::SaveFastStateImpl(
    memory::FastStateWriter& writer) const {
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), capacity_));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), seen_));
  const stats::Rng::State rng = rng_.SaveState();
  for (uint64_t word : rng.state) {
    WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), word));
  }
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), rng.seed));
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), rng.have_spare_gaussian ? 1 : 0));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), rng.spare_gaussian));
  writer.AddF64(reservoir_);
  return Status::OK();
}

Status ReservoirSampleSelectivity::LoadFastStateImpl(
    memory::FastStateReader& reader) {
  WDE_ASSIGN_OR_RETURN(const uint64_t capacity, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t seen, io::ReadU64(reader.head()));
  stats::Rng::State rng;
  for (uint64_t& word : rng.state) {
    WDE_ASSIGN_OR_RETURN(word, io::ReadU64(reader.head()));
  }
  WDE_ASSIGN_OR_RETURN(rng.seed, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint8_t have_spare, io::ReadU8(reader.head()));
  WDE_ASSIGN_OR_RETURN(rng.spare_gaussian, io::ReadDouble(reader.head()));
  rng.have_spare_gaussian = have_spare != 0;
  const memory::ColumnSpec specs[] = {
      {memory::ColumnKind::kF64,
       static_cast<size_t>(std::min<uint64_t>(seen, capacity))}};
  if (capacity == 0 || have_spare > 1 || reader.head().remaining() != 0 ||
      !memory::ColumnsMatch(reader.arena(), specs)) {
    return Status::InvalidArgument("corrupt reservoir fast state");
  }
  const std::span<const double> sample = reader.arena().F64(0);
  capacity_ = static_cast<size_t>(capacity);
  seen_ = static_cast<size_t>(seen);
  reservoir_.assign(sample.begin(), sample.end());
  rng_.RestoreState(rng);
  return Status::OK();
}

}  // namespace selectivity
}  // namespace wde
