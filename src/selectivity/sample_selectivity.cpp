#include "selectivity/sample_selectivity.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace selectivity {

ReservoirSampleSelectivity::ReservoirSampleSelectivity(size_t capacity, uint64_t seed)
    : capacity_(capacity), rng_(seed) {
  WDE_CHECK_GT(capacity_, 0u);
  reservoir_.reserve(capacity_);
}

void ReservoirSampleSelectivity::Insert(double x) {
  if (!std::isfinite(x)) return;
  ++seen_;
  if (reservoir_.size() < capacity_) {
    reservoir_.push_back(x);
    return;
  }
  const uint64_t slot = rng_.UniformInt(seen_);
  if (slot < capacity_) reservoir_[static_cast<size_t>(slot)] = x;
}

double ReservoirSampleSelectivity::EstimateRangeImpl(double a, double b) const {
  if (reservoir_.empty()) return 0.0;
  size_t hits = 0;
  for (double x : reservoir_) {
    if (x >= a && x <= b) ++hits;
  }
  return static_cast<double>(hits) / static_cast<double>(reservoir_.size());
}

std::string ReservoirSampleSelectivity::name() const {
  return Format("reservoir(%zu)", capacity_);
}

}  // namespace selectivity
}  // namespace wde
