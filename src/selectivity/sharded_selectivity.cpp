#include "selectivity/sharded_selectivity.hpp"

#include <algorithm>
#include <utility>

#include "io/chunk.hpp"
#include "memory/fast_state.hpp"
#include "selectivity/estimator_registry.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace selectivity {

Result<ShardedSelectivityEstimator> ShardedSelectivityEstimator::Create(
    const SelectivityEstimator& prototype, const Options& options) {
  if (options.shards == 0) {
    return Status::InvalidArgument("shards must be positive");
  }
  if (options.block_size == 0) {
    return Status::InvalidArgument("block_size must be positive");
  }
  if (options.merge_refresh_interval == 0) {
    return Status::InvalidArgument("merge_refresh_interval must be positive");
  }
  if (prototype.dims() > 1 &&
      options.block_size % static_cast<size_t>(prototype.dims()) != 0) {
    return Status::InvalidArgument(
        "block_size must be a multiple of the prototype's dims() so the "
        "interleaved coordinates of one observation never split across "
        "shards");
  }
  if (!prototype.mergeable()) {
    return Status::FailedPrecondition(
        prototype.name() +
        " does not support CloneEmpty/MergeFrom and cannot be sharded");
  }
  std::unique_ptr<SelectivityEstimator> keeper = prototype.CloneEmpty();
  WDE_CHECK(keeper != nullptr, "mergeable estimator returned a null clone");
  std::vector<std::unique_ptr<SelectivityEstimator>> replicas;
  replicas.reserve(options.shards);
  for (size_t s = 0; s < options.shards; ++s) {
    replicas.push_back(prototype.CloneEmpty());
    WDE_CHECK(replicas.back() != nullptr, "mergeable estimator returned a null clone");
  }
  return ShardedSelectivityEstimator(options, std::move(keeper),
                                     std::move(replicas));
}

void ShardedSelectivityEstimator::Insert(double x) {
  ++pending_since_merge_;
  const size_t shard = (position_ / options_.block_size) % replicas_.size();
  replicas_[shard]->Insert(x);
  ++position_;
}

void ShardedSelectivityEstimator::InsertBatch(std::span<const double> xs) {
  if (xs.empty()) return;
  pending_since_merge_ += xs.size();
  const size_t K = replicas_.size();
  if (K == 1) {
    replicas_[0]->InsertBatch(xs);
    position_ += xs.size();
    return;
  }
  // Cut the batch at block boundaries and assign each run to its owning
  // shard, purely from (position, block_size, K). Every run lands in shard
  // order inside its per-shard list, so each shard replays its sub-stream in
  // stream order no matter which thread executes it.
  struct Chunk {
    size_t offset;
    size_t len;
  };
  const size_t B = options_.block_size;
  std::vector<std::vector<Chunk>> chunks(K);
  size_t offset = 0;
  size_t pos = position_;
  while (offset < xs.size()) {
    const size_t shard = (pos / B) % K;
    const size_t run = std::min(B - (pos % B), xs.size() - offset);
    chunks[shard].push_back(Chunk{offset, run});
    offset += run;
    pos += run;
  }
  position_ = pos;
  // One task per shard: tasks touch disjoint replicas, so scheduling cannot
  // affect any replica's state — the fixed-K determinism contract.
  pool().ParallelFor(static_cast<int>(K), [&](int s) {
    for (const Chunk& c : chunks[static_cast<size_t>(s)]) {
      replicas_[static_cast<size_t>(s)]->InsertBatch(xs.subspan(c.offset, c.len));
    }
  });
}

std::unique_ptr<SelectivityEstimator> ShardedSelectivityEstimator::BuildMerged()
    const {
  std::unique_ptr<SelectivityEstimator> merged = prototype_->CloneEmpty();
  WDE_CHECK(merged != nullptr, "mergeable estimator returned a null clone");
  for (const std::unique_ptr<SelectivityEstimator>& replica : replicas_) {
    // Replicas are clones of one prototype, so the merge cannot be
    // incompatible; a failure here is a broken MergeFrom implementation.
    WDE_CHECK_OK(merged->MergeFrom(*replica));
  }
  return merged;
}

void ShardedSelectivityEstimator::RefreshMerged() const {
  const bool can_tail_merge = options_.refit_mode == RefitMode::kIncremental &&
                              merged_ != nullptr &&
                              merged_hw_.size() == replicas_.size() &&
                              merged_->SupportsTailMerge();
  if (!can_tail_merge) {
    merged_ = BuildMerged();
    merged_hw_.resize(replicas_.size());
    for (size_t s = 0; s < replicas_.size(); ++s) {
      merged_hw_[s] = replicas_[s]->count();
    }
    return;
  }
  // Delta refresh: append each replica's values above the high-water mark to
  // the existing view, then refit the view once. A from-zero rebuild would
  // concatenate whole replicas in shard order, the delta path appends the
  // tails after the previous concatenation — different insertion orders of
  // the same multiset, which tail-mergeable (buffer-keeping) estimators
  // answer bit-identically (their fits depend only on the sorted multiset;
  // see the MergeTailFrom contract). The forced refit mirrors the scratch
  // path's first-query fit at the full count: without it an interval-gated
  // inner refit could keep serving the pre-delta fit and diverge.
  bool appended = false;
  for (size_t s = 0; s < replicas_.size(); ++s) {
    const size_t replica_count = replicas_[s]->count();
    if (replica_count == merged_hw_[s]) continue;
    WDE_CHECK_OK(merged_->MergeTailFrom(*replicas_[s], merged_hw_[s]));
    merged_hw_[s] = replica_count;
    appended = true;
  }
  if (appended) merged_->ForceRefit();
}

std::unique_ptr<SelectivityEstimator>
ShardedSelectivityEstimator::ExtractMergedView() const {
  const bool can_delta = options_.refit_mode == RefitMode::kIncremental &&
                         merged_ != nullptr &&
                         merged_hw_.size() == replicas_.size() &&
                         merged_->SupportsTailMerge();
  if (!can_delta) return BuildMerged();
  // Clone the engine's view copy-on-write and fold each replica's delta into
  // the CLONE, leaving the engine's own view, high-water marks, and pacing
  // budget untouched: extraction must never change what subsequent engine
  // queries answer (the scratch path's from-zero build has no side effects
  // either, and refit_equivalence_test pins the two modes bitwise across
  // schedules that query the engine after an extract). The clone's buffer is
  // [view prefix..., replica tails...] — a different insertion order of the
  // same multiset than the from-zero rebuild, which tail-mergeable
  // (buffer-keeping) estimators answer bit-identically.
  std::unique_ptr<SelectivityEstimator> view = merged_->CloneForView();
  if (view == nullptr) return BuildMerged();  // no CoW copy offered
  for (size_t s = 0; s < replicas_.size(); ++s) {
    if (replicas_[s]->count() == merged_hw_[s]) continue;
    WDE_CHECK_OK(view->MergeTailFrom(*replicas_[s], merged_hw_[s]));
  }
  return view;
}

SelectivityEstimator& ShardedSelectivityEstimator::Merged() const {
  if (merged_ == nullptr || pending_since_merge_ >= options_.merge_refresh_interval) {
    RefreshMerged();
    pending_since_merge_ = 0;
  }
  return *merged_;
}

void ShardedSelectivityEstimator::ForceRefitImpl() const {
  if (merged_ == nullptr || pending_since_merge_ != 0) {
    RefreshMerged();
    pending_since_merge_ = 0;
  }
  merged_->ForceRefit();
}

double ShardedSelectivityEstimator::EstimateRangeImpl(double a, double b) const {
  return Merged().EstimateRange(a, b);
}

void ShardedSelectivityEstimator::AnswerImpl(std::span<const Query> queries,
                                             std::span<double> out) const {
  SelectivityEstimator& merged = Merged();
  // Warm-up: the first query forces every lazily fitted cache the batch can
  // touch (refit, boundary/prefix rebuild), so the concurrent chunks below
  // are pure reads against the merged view.
  merged.Answer(queries.first(1), out.first(1));
  const size_t rest = queries.size() - 1;
  if (rest == 0) return;
  // Small batches are not worth a dispatch; one serial pass. The threshold
  // affects scheduling only — per-query answers are independent, so any
  // chunking is bit-identical.
  constexpr size_t kMinQueriesPerTask = 32;
  const size_t K = replicas_.size();
  if (K == 1 || rest < 2 * kMinQueriesPerTask) {
    merged.Answer(queries.subspan(1), out.subspan(1));
    return;
  }
  // Contiguous chunks, one per shard-width task — a pure function of
  // (batch size, K), never of the pool schedule.
  const size_t chunk = std::max(kMinQueriesPerTask, (rest + K - 1) / K);
  const auto tasks = static_cast<int>((rest + chunk - 1) / chunk);
  pool().ParallelFor(tasks, [&](int t) {
    const size_t begin = 1 + static_cast<size_t>(t) * chunk;
    const size_t len = std::min(chunk, queries.size() - begin);
    merged.Answer(queries.subspan(begin, len), out.subspan(begin, len));
  });
}

size_t ShardedSelectivityEstimator::count() const {
  size_t total = 0;
  for (const std::unique_ptr<SelectivityEstimator>& replica : replicas_) {
    total += replica->count();
  }
  return total;
}

std::string ShardedSelectivityEstimator::name() const {
  return Format("sharded(%zux%s)", replicas_.size(), prototype_->name().c_str());
}

std::unique_ptr<SelectivityEstimator> ShardedSelectivityEstimator::CloneEmpty()
    const {
  Result<ShardedSelectivityEstimator> clone = Create(*prototype_, options_);
  WDE_CHECK(clone.ok(), "options were valid at construction");
  return std::make_unique<ShardedSelectivityEstimator>(std::move(clone).value());
}

Status ShardedSelectivityEstimator::MergeFrom(const SelectivityEstimator& other) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const ShardedSelectivityEstimator&>(other);
  if (replicas_.size() != rhs.replicas_.size() ||
      options_.block_size != rhs.options_.block_size) {
    return Status::FailedPrecondition("MergeFrom: shard layout mismatch");
  }
  // Probe replica compatibility once before mutating anything (replicas are
  // homogeneous clones on both sides, so one probe covers all shards); the
  // shard-wise merges below then cannot fail halfway. Probing against rhs's
  // empty prototype keeps this configuration-only — no shard data is copied.
  std::unique_ptr<SelectivityEstimator> probe = prototype_->CloneEmpty();
  Status compatible = probe->MergeFrom(*rhs.prototype_);
  if (!compatible.ok()) return compatible;
  for (size_t s = 0; s < replicas_.size(); ++s) {
    WDE_CHECK_OK(replicas_[s]->MergeFrom(*rhs.replicas_[s]));
  }
  position_ += rhs.position_;
  // Force a from-zero rebuild regardless of the refresh cadence: the
  // shard-wise merges rewrote replica interiors, not tails, so the
  // high-water marks are meaningless too.
  merged_.reset();
  merged_hw_.clear();
  return Status::OK();
}

Status ShardedSelectivityEstimator::SaveStateImpl(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, replicas_.size()));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, options_.block_size));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, options_.merge_refresh_interval));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, position_));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, pending_since_merge_));
  WDE_RETURN_IF_ERROR(SaveEstimatorEnvelope(*prototype_, sink));
  for (const std::unique_ptr<SelectivityEstimator>& replica : replicas_) {
    WDE_RETURN_IF_ERROR(SaveEstimatorEnvelope(*replica, sink));
  }
  WDE_RETURN_IF_ERROR(io::WriteU8(sink, merged_ != nullptr ? 1 : 0));
  if (merged_ != nullptr) {
    WDE_RETURN_IF_ERROR(SaveEstimatorEnvelope(*merged_, sink));
  }
  return Status::OK();
}

Status ShardedSelectivityEstimator::LoadStateImpl(io::Source& source) {
  WDE_ASSIGN_OR_RETURN(const uint64_t shards, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t block_size, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t refresh, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t position, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t pending, io::ReadU64(source));
  if (shards == 0 || shards > 65536 || block_size == 0 || refresh == 0) {
    return Status::InvalidArgument("corrupt sharded snapshot layout");
  }
  Result<std::unique_ptr<SelectivityEstimator>> prototype =
      LoadEstimatorEnvelope(source);
  if (!prototype.ok()) return prototype.status();
  if (!(*prototype)->mergeable()) {
    return Status::InvalidArgument(
        "corrupt sharded snapshot: prototype is not mergeable");
  }
  std::vector<std::unique_ptr<SelectivityEstimator>> replicas;
  replicas.reserve(static_cast<size_t>(shards));
  for (uint64_t s = 0; s < shards; ++s) {
    Result<std::unique_ptr<SelectivityEstimator>> replica =
        LoadEstimatorEnvelope(source);
    if (!replica.ok()) return replica.status();
    if ((*replica)->merge_type_tag() != (*prototype)->merge_type_tag()) {
      return Status::InvalidArgument(
          "corrupt sharded snapshot: heterogeneous shard replicas");
    }
    replicas.push_back(std::move(replica).value());
  }
  WDE_ASSIGN_OR_RETURN(const uint8_t has_merged, io::ReadU8(source));
  std::unique_ptr<SelectivityEstimator> merged;
  if (has_merged != 0) {
    Result<std::unique_ptr<SelectivityEstimator>> loaded =
        LoadEstimatorEnvelope(source);
    if (!loaded.ok()) return loaded.status();
    if ((*loaded)->merge_type_tag() != (*prototype)->merge_type_tag()) {
      return Status::InvalidArgument(
          "corrupt sharded snapshot: merged view type mismatch");
    }
    merged = std::move(loaded).value();
  }
  if (source.remaining() != 0) {
    return Status::InvalidArgument("corrupt sharded snapshot: trailing bytes");
  }
  // A paced merged view never crosses a restore boundary: when the saved
  // view predates `pending` inserts (legal staleness while the saver was
  // running, bounded by its merge_refresh_interval), serving it in a new
  // process would extend a stale view's lifetime across the restart. Drop it
  // and let the first query rebuild from the replicas — the restored engine
  // answers at least as fresh as the saver, never staler (see Restore()).
  if (pending != 0) merged.reset();
  // Commit. The executor pool is a runtime resource, not state: keep ours.
  options_.shards = static_cast<size_t>(shards);
  options_.block_size = static_cast<size_t>(block_size);
  options_.merge_refresh_interval = static_cast<size_t>(refresh);
  prototype_ = std::move(prototype).value();
  replicas_ = std::move(replicas);
  position_ = static_cast<size_t>(position);
  pending_since_merge_ = static_cast<size_t>(pending);
  merged_ = std::move(merged);
  // Re-anchor the delta-refresh marks. A view only survives the restore when
  // pending == 0, i.e. it holds exactly the replica counts.
  merged_hw_.clear();
  if (merged_ != nullptr) {
    merged_hw_.reserve(replicas_.size());
    for (const std::unique_ptr<SelectivityEstimator>& replica : replicas_) {
      merged_hw_.push_back(replica->count());
    }
  }
  return Status::OK();
}

Status ShardedSelectivityEstimator::SaveFastStateImpl(
    memory::FastStateWriter& writer) const {
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), replicas_.size()));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), options_.block_size));
  WDE_RETURN_IF_ERROR(
      io::WriteU64(writer.head(), options_.merge_refresh_interval));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), position_));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), pending_since_merge_));
  // The prototype is an empty configuration keeper — a few dozen bytes — so
  // its portable envelope lives in the head.
  WDE_RETURN_IF_ERROR(SaveEstimatorEnvelope(*prototype_, writer.head()));
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), merged_ != nullptr ? 1 : 0));
  // One U8 column per replica, each holding that estimator's own fast
  // envelope. base_offset 0: a column starts on a 64-byte boundary of the
  // outer region, so the nested pad computed against offset 0 keeps the
  // nested column region 64-byte aligned whenever the outer one is.
  for (const std::unique_ptr<SelectivityEstimator>& replica : replicas_) {
    io::VectorSink frame;
    WDE_RETURN_IF_ERROR(replica->SaveStateFast(frame, 0));
    writer.AddU8Owned(frame.TakeBytes());
  }
  if (merged_ != nullptr) {
    io::VectorSink frame;
    WDE_RETURN_IF_ERROR(merged_->SaveStateFast(frame, 0));
    writer.AddU8Owned(frame.TakeBytes());
  }
  return Status::OK();
}

Status ShardedSelectivityEstimator::LoadFastStateImpl(
    memory::FastStateReader& reader) {
  WDE_ASSIGN_OR_RETURN(const uint64_t shards, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t block_size, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t refresh, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t position, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t pending, io::ReadU64(reader.head()));
  if (shards == 0 || shards > 65536 || block_size == 0 || refresh == 0) {
    return Status::InvalidArgument("corrupt sharded fast state layout");
  }
  Result<std::unique_ptr<SelectivityEstimator>> prototype =
      LoadEstimatorEnvelope(reader.head());
  if (!prototype.ok()) return prototype.status();
  if (!(*prototype)->mergeable()) {
    return Status::InvalidArgument(
        "corrupt sharded fast state: prototype is not mergeable");
  }
  WDE_ASSIGN_OR_RETURN(const uint8_t has_merged, io::ReadU8(reader.head()));
  if (has_merged > 1 || reader.head().remaining() != 0) {
    return Status::InvalidArgument("corrupt sharded fast state");
  }
  const memory::Arena& arena = reader.arena();
  if (arena.num_columns() != static_cast<size_t>(shards) + has_merged) {
    return Status::InvalidArgument("corrupt sharded fast state columns");
  }
  for (const memory::ColumnDesc& column : arena.columns()) {
    if (column.kind != memory::ColumnKind::kU8) {
      return Status::InvalidArgument("corrupt sharded fast state columns");
    }
  }
  std::vector<std::unique_ptr<SelectivityEstimator>> replicas;
  replicas.reserve(static_cast<size_t>(shards));
  for (uint64_t s = 0; s < shards; ++s) {
    // Pass the arena's storage keepalive down so a replica's own zero-copy
    // borrows (e.g. a KDE sample buffer) anchor the outer storage — the
    // mmapped image, or the reader's heap copy on the in-memory path.
    io::SpanSource column(arena.U8(static_cast<size_t>(s)),
                          arena.storage_keepalive());
    Result<std::unique_ptr<SelectivityEstimator>> replica =
        LoadEstimatorEnvelope(column);
    if (!replica.ok()) return replica.status();
    if (column.remaining() != 0) {
      return Status::InvalidArgument(
          "corrupt sharded fast state: trailing replica bytes");
    }
    if ((*replica)->merge_type_tag() != (*prototype)->merge_type_tag()) {
      return Status::InvalidArgument(
          "corrupt sharded fast state: heterogeneous shard replicas");
    }
    replicas.push_back(std::move(replica).value());
  }
  std::unique_ptr<SelectivityEstimator> merged;
  if (has_merged != 0) {
    io::SpanSource column(arena.U8(static_cast<size_t>(shards)),
                          arena.storage_keepalive());
    Result<std::unique_ptr<SelectivityEstimator>> loaded =
        LoadEstimatorEnvelope(column);
    if (!loaded.ok()) return loaded.status();
    if (column.remaining() != 0 ||
        (*loaded)->merge_type_tag() != (*prototype)->merge_type_tag()) {
      return Status::InvalidArgument(
          "corrupt sharded fast state: merged view mismatch");
    }
    merged = std::move(loaded).value();
  }
  // Same carve-out as the portable load: a paced merged view never crosses a
  // restore boundary.
  if (pending != 0) merged.reset();
  options_.shards = static_cast<size_t>(shards);
  options_.block_size = static_cast<size_t>(block_size);
  options_.merge_refresh_interval = static_cast<size_t>(refresh);
  prototype_ = std::move(prototype).value();
  replicas_ = std::move(replicas);
  position_ = static_cast<size_t>(position);
  pending_since_merge_ = static_cast<size_t>(pending);
  merged_ = std::move(merged);
  // Re-anchor the delta-refresh marks. A view only survives the restore when
  // pending == 0, i.e. it holds exactly the replica counts.
  merged_hw_.clear();
  if (merged_ != nullptr) {
    merged_hw_.reserve(replicas_.size());
    for (const std::unique_ptr<SelectivityEstimator>& replica : replicas_) {
      merged_hw_.push_back(replica->count());
    }
  }
  return Status::OK();
}

Status ShardedSelectivityEstimator::Checkpoint(const std::string& path) const {
  return SaveEstimatorSnapshotFile(*this, path);
}

Status ShardedSelectivityEstimator::Restore(const std::string& path) {
  // One disk read; both passes below run over the same in-memory bytes.
  Result<io::FileSource> file = io::FileSource::Open(path);
  if (!file.ok()) return file.status();
  std::vector<uint8_t> bytes(file->remaining());
  WDE_RETURN_IF_ERROR(file->Read(bytes.data(), bytes.size()));
  // Structural pass first — header, both envelope chunks (CRC-validated), no
  // trailing bytes — so the commit pass below cannot fail on framing and the
  // strong guarantee (untouched on error) holds for the whole file.
  {
    io::SpanSource probe(bytes);
    WDE_RETURN_IF_ERROR(io::ReadSnapshotHeader(probe).status());
    WDE_RETURN_IF_ERROR(
        io::ReadChunkExpecting(probe, internal::kChunkEstimatorType).status());
    // The state travels as either encoding (portable STAT or fast ARNA).
    WDE_ASSIGN_OR_RETURN(const io::Chunk state, io::ReadChunk(probe));
    if (state.tag != internal::kChunkEstimatorState &&
        state.tag != internal::kChunkEstimatorArena) {
      return Status::InvalidArgument("checkpoint has an unknown state chunk");
    }
    if (probe.remaining() != 0) {
      return Status::InvalidArgument("checkpoint has trailing bytes");
    }
  }
  io::SpanSource source(bytes);
  WDE_RETURN_IF_ERROR(io::ReadSnapshotHeader(source).status());
  return LoadState(source);
}

}  // namespace selectivity
}  // namespace wde
