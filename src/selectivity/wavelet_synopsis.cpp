#include "selectivity/wavelet_synopsis.hpp"

#include <algorithm>
#include <cmath>

#include "memory/fast_state.hpp"
#include "util/check.hpp"
#include "util/string_util.hpp"

namespace wde {
namespace selectivity {

WaveletSynopsisSelectivity::WaveletSynopsisSelectivity(const Options& options)
    : options_(options),
      haar_(wavelet::WaveletFilter::Haar()),
      counts_(1ULL << options.grid_log2, 0.0) {}

Result<WaveletSynopsisSelectivity> WaveletSynopsisSelectivity::Create(
    const Options& options) {
  if (!(options.domain_lo < options.domain_hi)) {
    return Status::InvalidArgument("empty domain");
  }
  if (options.grid_log2 < 2 || options.grid_log2 > 22) {
    return Status::InvalidArgument("grid_log2 must be in [2, 22]");
  }
  if (options.budget == 0 || options.rebuild_interval == 0) {
    return Status::InvalidArgument("budget and rebuild_interval must be positive");
  }
  return WaveletSynopsisSelectivity(options);
}

void WaveletSynopsisSelectivity::Insert(double x) {
  if (!std::isfinite(x)) return;  // dirty input: ignore, do not poison the grid
  const double t = std::clamp(
      (x - options_.domain_lo) / (options_.domain_hi - options_.domain_lo), 0.0, 1.0);
  const size_t cell = std::min(counts_.size() - 1,
                               static_cast<size_t>(t * static_cast<double>(
                                                           counts_.size())));
  counts_[cell] += 1.0;
  ++count_;
}

void WaveletSynopsisSelectivity::RebuildIfStale() const {
  if (!reconstructed_.empty() &&
      count_ - built_at_count_ < options_.rebuild_interval) {
    return;
  }
  Result<wavelet::DwtCoefficients> transform =
      wavelet::ForwardDwt(haar_, counts_, options_.grid_log2);
  WDE_CHECK_OK(transform.status());
  // Rank all detail coefficients by magnitude; keep the `budget` largest
  // (the approximation coefficient — total mass — is always kept). Ties at
  // the cutoff are broken arbitrarily but deterministically by scan order.
  std::vector<double*> slots;
  for (auto& level : transform->details) {
    for (double& d : level) slots.push_back(&d);
  }
  if (slots.size() > options_.budget) {
    std::nth_element(slots.begin(),
                     slots.begin() + static_cast<long>(options_.budget),
                     slots.end(), [](const double* a, const double* b) {
                       return std::fabs(*a) > std::fabs(*b);
                     });
    for (size_t i = options_.budget; i < slots.size(); ++i) *slots[i] = 0.0;
  }
  retained_ = 0;
  for (const double* d : slots) retained_ += (*d != 0.0);
  Result<std::vector<double>> rec = wavelet::InverseDwt(haar_, *transform);
  WDE_CHECK_OK(rec.status());
  reconstructed_ = std::move(rec).value();
  // Negative smoothed counts are meaningless; clip.
  for (double& c : reconstructed_) c = std::max(c, 0.0);
  built_at_count_ = count_;
}

std::unique_ptr<SelectivityEstimator> WaveletSynopsisSelectivity::CloneEmpty()
    const {
  return std::unique_ptr<SelectivityEstimator>(
      new WaveletSynopsisSelectivity(options_));
}

Status WaveletSynopsisSelectivity::MergeFrom(const SelectivityEstimator& other) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const WaveletSynopsisSelectivity&>(other);
  // rebuild_interval paces only the owner's staleness and is deliberately
  // not checked (same rationale as the wavelet sketch's MergeFrom). The
  // budget shapes this synopsis's own compression of the merged grid, so it
  // must agree for the merged answers to mean what the caller configured.
  if (options_.domain_lo != rhs.options_.domain_lo ||
      options_.domain_hi != rhs.options_.domain_hi ||
      options_.grid_log2 != rhs.options_.grid_log2 ||
      options_.budget != rhs.options_.budget) {
    return Status::FailedPrecondition("MergeFrom: synopsis options mismatch");
  }
  for (size_t i = 0; i < counts_.size(); ++i) counts_[i] += rhs.counts_[i];
  count_ += rhs.count_;
  reconstructed_.clear();  // force a rebuild from the merged grid
  built_at_count_ = 0;
  retained_ = 0;
  return Status::OK();
}

Status WaveletSynopsisSelectivity::SaveStateImpl(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, options_.domain_lo));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, options_.domain_hi));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, options_.grid_log2));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, options_.budget));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, options_.rebuild_interval));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, count_));
  WDE_RETURN_IF_ERROR(io::WriteDoubleVector(sink, counts_));
  WDE_RETURN_IF_ERROR(io::WriteU8(sink, reconstructed_.empty() ? 0 : 1));
  if (reconstructed_.empty()) return Status::OK();
  WDE_RETURN_IF_ERROR(io::WriteDoubleVector(sink, reconstructed_));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, retained_));
  return io::WriteU64(sink, built_at_count_);
}

Status WaveletSynopsisSelectivity::LoadStateImpl(io::Source& source) {
  Options options;
  WDE_ASSIGN_OR_RETURN(options.domain_lo, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(options.domain_hi, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(options.grid_log2, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(options.budget, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(options.rebuild_interval, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t count, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(std::vector<double> counts, io::ReadDoubleVector(source));
  if (!std::isfinite(options.domain_lo) || !std::isfinite(options.domain_hi) ||
      !(options.domain_lo < options.domain_hi) || options.grid_log2 < 2 ||
      options.grid_log2 > 22 || options.budget == 0 ||
      options.rebuild_interval == 0 ||
      counts.size() != (1ULL << options.grid_log2)) {
    return Status::InvalidArgument("corrupt synopsis snapshot");
  }
  WDE_ASSIGN_OR_RETURN(const uint8_t has_cache, io::ReadU8(source));
  std::vector<double> reconstructed;
  uint64_t retained = 0;
  uint64_t built_at_count = 0;
  if (has_cache != 0) {
    WDE_ASSIGN_OR_RETURN(reconstructed, io::ReadDoubleVector(source));
    WDE_ASSIGN_OR_RETURN(retained, io::ReadU64(source));
    WDE_ASSIGN_OR_RETURN(built_at_count, io::ReadU64(source));
    if (reconstructed.size() != counts.size() || built_at_count > count) {
      return Status::InvalidArgument("corrupt synopsis reconstruction cache");
    }
  }
  if (source.remaining() != 0) {
    return Status::InvalidArgument("corrupt synopsis snapshot: trailing bytes");
  }
  options_ = options;
  count_ = static_cast<size_t>(count);
  counts_ = std::move(counts);
  reconstructed_ = std::move(reconstructed);
  retained_ = static_cast<size_t>(retained);
  built_at_count_ = static_cast<size_t>(built_at_count);
  return Status::OK();
}

Status WaveletSynopsisSelectivity::SaveFastStateImpl(
    memory::FastStateWriter& writer) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.domain_lo));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.domain_hi));
  WDE_RETURN_IF_ERROR(io::WriteI32(writer.head(), options_.grid_log2));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), options_.budget));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), options_.rebuild_interval));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), count_));
  const bool has_cache = !reconstructed_.empty();
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), has_cache ? 1 : 0));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), retained_));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), built_at_count_));
  writer.AddF64(counts_);
  if (has_cache) writer.AddF64(reconstructed_);
  return Status::OK();
}

Status WaveletSynopsisSelectivity::LoadFastStateImpl(
    memory::FastStateReader& reader) {
  Options options;
  WDE_ASSIGN_OR_RETURN(options.domain_lo, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.domain_hi, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.grid_log2, io::ReadI32(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.budget, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.rebuild_interval, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t count, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint8_t has_cache, io::ReadU8(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t retained, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t built_at, io::ReadU64(reader.head()));
  if (!std::isfinite(options.domain_lo) || !std::isfinite(options.domain_hi) ||
      !(options.domain_lo < options.domain_hi) || options.grid_log2 < 2 ||
      options.grid_log2 > 22 || options.budget == 0 ||
      options.rebuild_interval == 0 || has_cache > 1 ||
      (has_cache != 0 && built_at > count) ||
      reader.head().remaining() != 0) {
    return Status::InvalidArgument("corrupt synopsis fast state");
  }
  const size_t cells = static_cast<size_t>(1) << options.grid_log2;
  std::vector<memory::ColumnSpec> expected = {
      {memory::ColumnKind::kF64, cells}};
  if (has_cache != 0) expected.push_back({memory::ColumnKind::kF64, cells});
  if (!memory::ColumnsMatch(reader.arena(), expected)) {
    return Status::InvalidArgument("corrupt synopsis fast state columns");
  }
  const std::span<const double> counts = reader.arena().F64(0);
  std::vector<double> reconstructed;
  if (has_cache != 0) {
    const std::span<const double> cache = reader.arena().F64(1);
    reconstructed.assign(cache.begin(), cache.end());
  }
  options_ = options;
  count_ = static_cast<size_t>(count);
  counts_.assign(counts.begin(), counts.end());
  reconstructed_ = std::move(reconstructed);
  retained_ = has_cache != 0 ? static_cast<size_t>(retained) : 0;
  built_at_count_ = has_cache != 0 ? static_cast<size_t>(built_at) : 0;
  return Status::OK();
}

double WaveletSynopsisSelectivity::EstimateRangeImpl(double a, double b) const {
  if (count_ == 0) return 0.0;
  RebuildIfStale();
  const double width = options_.domain_hi - options_.domain_lo;
  const double cells = static_cast<double>(reconstructed_.size());
  const double ta = std::clamp((a - options_.domain_lo) / width, 0.0, 1.0) * cells;
  const double tb = std::clamp((b - options_.domain_lo) / width, 0.0, 1.0) * cells;
  double acc = 0.0;
  const auto cell_lo = static_cast<size_t>(ta);
  const auto cell_hi = std::min(static_cast<size_t>(tb), reconstructed_.size() - 1);
  for (size_t i = cell_lo; i <= cell_hi; ++i) {
    const double overlap = std::min(tb, static_cast<double>(i + 1)) -
                           std::max(ta, static_cast<double>(i));
    if (overlap > 0.0) acc += reconstructed_[i] * overlap;
  }
  return acc / static_cast<double>(count_);
}

size_t WaveletSynopsisSelectivity::RetainedCoefficients() const {
  RebuildIfStale();
  return retained_;
}

std::string WaveletSynopsisSelectivity::name() const {
  return Format("haar-synopsis(B=%zu)", options_.budget);
}

}  // namespace selectivity
}  // namespace wde
