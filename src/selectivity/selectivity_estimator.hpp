/// \file selectivity/selectivity_estimator.hpp
/// Entry header of the `selectivity` module: the streaming interface every
/// range-selectivity estimator implements (wavelet sketch, wavelet synopsis,
/// KDE, equi-width/equi-depth histograms, reservoir sample) — the paper's
/// motivating database application. Invariants: Insert() never throws or
/// aborts on dirty data (non-finite values are dropped, out-of-domain values
/// clamped); EstimateRange(a, b) approximates P(a ≤ X ≤ b) and is in [0, 1]
/// up to estimator bias; implementations are not thread-safe. The scalar
/// virtuals (Insert/EstimateRange) are the extension point; the batch entry
/// points (InsertBatch/EstimateBatch) default to looping them and may be
/// overridden with genuinely batched implementations that must stay
/// bit-identical to the scalar loop (enforced by batch_equivalence_test).
#ifndef WDE_SELECTIVITY_SELECTIVITY_ESTIMATOR_HPP_
#define WDE_SELECTIVITY_SELECTIVITY_ESTIMATOR_HPP_

#include <cstddef>
#include <span>
#include <string>

#include "util/check.hpp"

namespace wde {
namespace selectivity {

/// A closed range predicate [lo, hi].
struct RangeQuery {
  double lo = 0.0;
  double hi = 0.0;
};

/// A streaming estimator of range-predicate selectivity over a single numeric
/// attribute: after observing values x_1..x_n, EstimateRange(a, b)
/// approximates P(a <= X <= b) — the fraction of rows a query optimizer
/// expects `WHERE a <= col AND col <= b` to select.
///
/// Implementations are single-writer/single-reader and not thread-safe;
/// wrap externally if shared.
class SelectivityEstimator {
 public:
  virtual ~SelectivityEstimator() = default;

  /// Ingests one value. Values outside the declared domain are clamped and
  /// non-finite values (NaN/±inf) are silently dropped — an optimizer must
  /// tolerate dirty input rather than abort.
  virtual void Insert(double x) = 0;

  /// Ingests a batch. Semantically identical to calling Insert(x) for each
  /// element in order (and bit-identical in the estimator's observable
  /// answers); overrides amortize per-sample dispatch and table setup.
  virtual void InsertBatch(std::span<const double> xs) {
    for (double x : xs) Insert(x);
  }

  /// Estimated selectivity of [a, b]; implementations return values in
  /// [0, 1] up to estimator bias (wavelet estimates may slightly overshoot).
  virtual double EstimateRange(double a, double b) const = 0;

  /// Answers a query batch: out[i] = EstimateRange(queries[i].lo,
  /// queries[i].hi), bit-identical to the scalar loop; overrides amortize
  /// staleness checks and per-level reconstruction setup across queries.
  virtual void EstimateBatch(std::span<const RangeQuery> queries,
                             std::span<double> out) const {
    WDE_CHECK_EQ(queries.size(), out.size(), "EstimateBatch spans must match");
    for (size_t i = 0; i < queries.size(); ++i) {
      out[i] = EstimateRange(queries[i].lo, queries[i].hi);
    }
  }

  virtual size_t count() const = 0;
  virtual std::string name() const = 0;
};

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_SELECTIVITY_ESTIMATOR_HPP_
