/// \file selectivity/selectivity_estimator.hpp
/// Entry header of the `selectivity` module: the streaming interface every
/// selectivity estimator implements (wavelet sketch, wavelet synopsis, KDE,
/// equi-width/equi-depth histograms, reservoir sample) — the paper's
/// motivating database application. The public query surface is the typed
/// `Query` taxonomy answered through the single non-virtual `Answer()` entry
/// point: closed ranges, equality points, one-sided predicates, CDF probes
/// and quantiles — plus, for estimators that declare dims() > 1, axis-aligned
/// rectangles, per-axis marginals and conditional probes (src/multidim holds
/// the 2-D implementations) — the query family a real optimizer mixes over
/// one fitted statistic. Invariants: Insert() never throws or aborts on dirty
/// data
/// (non-finite values are dropped, out-of-domain values clamped); mass-kind
/// answers approximate probabilities in [0, 1] up to estimator bias; all
/// edge-case normalization (inverted ranges, NaN parameters, quantile levels
/// outside [0, 1]) happens ONCE in the non-virtual wrappers, so no
/// implementation can drift on it. The scalar virtuals
/// (Insert/EstimateRangeImpl) are the minimal extension point; `AnswerImpl`
/// is the batch extension point (defaulting to the documented lowering of
/// every kind onto EstimateRangeImpl) and overrides must stay bit-identical
/// to that lowering (enforced by batch_equivalence_test and
/// query_taxonomy_test). Implementations are not thread-safe (wrap in
/// ShardedSelectivityEstimator or externally). Estimators whose state is
/// additive additionally implement the mergeability contract
/// (CloneEmpty/MergeFrom), which the sharded parallel ingest engine builds
/// on, and every shipped estimator implements the snapshot contract
/// (SaveState/LoadState over the versioned wire format of io/chunk.hpp),
/// which makes fitted state a storable, shippable artifact — restore is
/// bit-exact and merge-compatible. Estimators are constructed declaratively
/// from an `EstimatorSpec` (estimator_spec.hpp) through the spec-aware
/// factory registry (estimator_registry.hpp).
#ifndef WDE_SELECTIVITY_SELECTIVITY_ESTIMATOR_HPP_
#define WDE_SELECTIVITY_SELECTIVITY_ESTIMATOR_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "io/serialize.hpp"
#include "util/check.hpp"
#include "util/result.hpp"

namespace wde {

namespace memory {
class FastStateReader;
class FastStateWriter;
}  // namespace memory

namespace selectivity {

class SelectivityEstimator;

namespace internal {
/// Chunk tags of the estimator envelope (see io/chunk.hpp for the framing):
/// a type-tag chunk naming the concrete estimator, then one state chunk
/// whose payload is the estimator's own serialized configuration + data. The
/// state chunk comes in two interchangeable encodings: STAT carries the
/// portable io-primitive stream (any host), ARNA carries the zero-copy
/// fast-state frame of memory/fast_state.hpp (little-endian hosts; restores
/// by header validation + pointer fixup instead of element-wise decoding).
/// Every estimator reads both; which one a save emits is the caller's choice.
inline constexpr uint32_t kChunkEstimatorType = 0x45505954;   // "TYPE"
inline constexpr uint32_t kChunkEstimatorState = 0x54415453;  // "STAT"
inline constexpr uint32_t kChunkEstimatorArena = 0x414E5241;  // "ARNA"
/// Snapshot v4: estimators with dims() != 1 write one DIMS chunk (u32
/// dimensionality) between TYPE and the state chunk, so a reader rejects a
/// dimensionality mismatch before parsing any state. 1-D envelopes omit it —
/// their bytes are identical to v3 — and v1–v3 snapshots (which can only
/// contain 1-D estimators) load unchanged.
inline constexpr uint32_t kChunkEstimatorDims = 0x534D4944;  // "DIMS"
}  // namespace internal

/// Restores one estimator envelope through the tag → factory registry; see
/// estimator_registry.hpp (declared here only for the friend grant below).
Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorEnvelope(
    io::Source& source);

/// A closed range predicate [lo, hi] — the legacy query type, kept as the
/// payload of Query::Range and for the EstimateBatch compatibility wrapper.
struct RangeQuery {
  double lo = 0.0;
  double hi = 0.0;
};

/// The query taxonomy: what a query optimizer asks a column statistic. The
/// first six kinds are 1-D (they read fields a/b only); the multi-dimensional
/// kinds additionally read c/d/axis and are answered by estimators that
/// declare dims() > 1 (a 1-D estimator answers them 0.0, except the axis-0
/// marginal, which IS its range primitive).
enum class QueryKind : uint8_t {
  kRange = 0,        // P(lo <= X <= hi)
  kPoint = 1,        // P(X = x), answered via the equality-width heuristic
  kLess = 2,         // P(X <= c)
  kGreater = 3,      // P(X >= c)
  kCdf = 4,          // F(x) = P(X <= x) (alias of kLess; spelled for intent)
  kQuantile = 5,     // F^{-1}(p): the value x with F(x) ≈ p
  kRect = 6,         // P(lo0 <= X0 <= hi0, lo1 <= X1 <= hi1)
  kMarginal = 7,     // P(lo <= X_axis <= hi), other axes integrated out
  kConditional = 8,  // P(lo0 <= X0 <= hi0 | lo1 <= X1 <= hi1)
};

/// A tagged query. `a` carries the single parameter of every 1-D kind (x, c,
/// or p); ranges additionally use `b` as the upper endpoint. The
/// multi-dimensional kinds use a/b as the axis-0 interval, c/d as the axis-1
/// interval, and `axis` to select a marginal axis. Build queries with the
/// named factories — they document which field means what.
///
/// Semantics are fixed at the interface (see Answer() for the normalization
/// and the lowering rules):
///   Range(lo, hi)  — mass of [lo, hi]; inverted endpoints denote [hi, lo].
///   Point(x)       — equality mass, answered as the narrow range
///                    [x - w/2, x + w/2] with w = EqualityWidth() (the
///                    estimator's resolution; w = 0 means exact match).
///   Less(c)        — mass of (-inf, c];  Greater(c) — mass of [c, +inf).
///   Cdf(x)         — identical lowering to Less(x).
///   Quantile(p)    — inverse CDF at p in [0, 1] (out-of-range p clamps),
///                    bracketed by Domain() and found by bisection.
///   Rect(lo0, hi0, lo1, hi1)
///                  — mass of the axis-aligned rectangle
///                    [lo0, hi0] × [lo1, hi1]; each axis's inverted endpoints
///                    swap independently; ±inf endpoints denote half-planes.
///   Marginal(axis, lo, hi)
///                  — mass of [lo, hi] on one axis with every other axis
///                    integrated out. Axis 0 coincides with Range(lo, hi) for
///                    every estimator (1-D included); an axis >= dims()
///                    answers 0.0.
///   Conditional(lo0, hi0, lo1, hi1)
///                  — P(X0 ∈ [lo0, hi0] | X1 ∈ [lo1, hi1]): the rect mass
///                    over the axis-1 marginal mass, clamped to [0, 1]; a
///                    zero-mass condition answers 0.0.
struct Query {
  QueryKind kind = QueryKind::kRange;
  double a = 0.0;
  double b = 0.0;
  double c = 0.0;
  double d = 0.0;
  uint8_t axis = 0;

  static constexpr Query Range(double lo, double hi) {
    return Query{QueryKind::kRange, lo, hi};
  }
  static constexpr Query Point(double x) { return Query{QueryKind::kPoint, x, 0.0}; }
  static constexpr Query Less(double c) { return Query{QueryKind::kLess, c, 0.0}; }
  static constexpr Query Greater(double c) {
    return Query{QueryKind::kGreater, c, 0.0};
  }
  static constexpr Query Cdf(double x) { return Query{QueryKind::kCdf, x, 0.0}; }
  static constexpr Query Quantile(double p) {
    return Query{QueryKind::kQuantile, p, 0.0};
  }
  static constexpr Query Rect(double lo0, double hi0, double lo1, double hi1) {
    return Query{QueryKind::kRect, lo0, hi0, lo1, hi1};
  }
  static constexpr Query Marginal(uint8_t axis, double lo, double hi) {
    return Query{QueryKind::kMarginal, lo, hi, 0.0, 0.0, axis};
  }
  static constexpr Query Conditional(double lo0, double hi0, double lo1,
                                     double hi1) {
    return Query{QueryKind::kConditional, lo0, hi0, lo1, hi1};
  }
};

/// How an estimator rebuilds its fitted caches when they go stale.
///   kScratch     — re-derive everything from the raw retained state (full
///                  sort, full CV scan, CloneEmpty + K merges). The oracle:
///                  slow, trivially correct, retained for tests and benches.
///   kIncremental — delta-merge the previous fitted state (sort only the new
///                  tail and merge, warm-start CV from the previous ranking,
///                  tail-append replica deltas). Answers are bitwise-identical
///                  to kScratch — the standing contract, enforced by
///                  refit_equivalence_test — only the refit cost changes.
/// The mode is an evaluation/pacing knob like the thread pool: it is NOT
/// serialized, and snapshot restore preserves the live object's mode.
enum class RefitMode : uint8_t {
  kScratch = 0,
  kIncremental = 1,
};

/// A streaming estimator of selectivity over a single numeric attribute:
/// after observing values x_1..x_n, Answer() approximates the probability
/// (or quantile) each Query denotes — what a query optimizer expects
/// `WHERE`-predicates over the column to select.
///
/// Implementations are single-writer/single-reader and not thread-safe;
/// wrap externally if shared. `ShardedSelectivityEstimator` is the provided
/// wrapper that partitions ingest across replicas on a thread pool and
/// answers queries from merged state.
class SelectivityEstimator {
 public:
  virtual ~SelectivityEstimator() = default;

  /// Ingests one value. Values outside the declared domain are clamped and
  /// non-finite values (NaN/±inf) are silently dropped — an optimizer must
  /// tolerate dirty input rather than abort.
  virtual void Insert(double x) = 0;

  /// Ingests a batch. Semantically identical to calling Insert(x) for each
  /// element in order (and bit-identical in the estimator's observable
  /// answers); overrides amortize per-sample dispatch and table setup. An
  /// empty span (including a zero-length span over null data) is a no-op;
  /// overrides must preserve that fast path.
  virtual void InsertBatch(std::span<const double> xs) {
    if (xs.empty()) return;
    for (double x : xs) Insert(x);
  }

  // ------------------------------------------------------------ query surface
  //
  // One entry point for every query kind. Answer() is non-virtual: the
  // edge-case normalization lives here, once, uniformly across every
  // implementation, so AnswerImpl always sees normalized queries:
  //   * NaN in any query parameter answers 0.0 — the documented dirty-query
  //     sibling of Insert() dropping NaN — and never reaches an
  //     implementation. ±inf endpoints are legal (they denote the one-sided
  //     limits and clamp against the estimator's domain).
  //   * Inverted ranges (a > b) are swapped: one documented choice —
  //     Range(a, b) with a > b denotes the same predicate as [b, a]. Rect and
  //     conditional intervals swap per axis, independently.
  //   * Quantile levels are clamped to [0, 1].
  // Normalization never copies the whole batch: already-normalized runs are
  // handed to AnswerImpl as sub-spans of the caller's storage and only the
  // rare abnormal query is rewritten on the stack.

  /// Answers a query batch: out[i] answers queries[i], bit-identical to
  /// answering each query alone. Spans must match; an empty batch is a no-op.
  void Answer(std::span<const Query> queries, std::span<double> out) const;

  /// Scalar convenience overload.
  double Answer(const Query& query) const {
    double out = 0.0;
    Answer(std::span<const Query>(&query, 1), std::span<double>(&out, 1));
    return out;
  }

  /// Legacy range entry point: identical to Answer(Query::Range(a, b)).
  double EstimateRange(double a, double b) const {
    return Answer(Query::Range(a, b));
  }

  /// Legacy range-batch entry point: identical to Answer() over
  /// Query::Range(q.lo, q.hi) per query. Thin wrapper: ranges are converted
  /// through a fixed-size stack buffer (no heap allocation, no full-batch
  /// copy) and answered by Answer(), so both entry points share one
  /// normalization and one extension point.
  void EstimateBatch(std::span<const RangeQuery> queries,
                     std::span<double> out) const;

  /// Width of the equality interval a Point(x) query denotes: the
  /// estimator's declared resolution (bucket width, grid cell, finest
  /// wavelet cell, ...). The interface default 0 degenerates the lowering to
  /// the exact-match range [x, x] — the natural answer for sample-based
  /// estimators; continuous estimators override with their resolution.
  virtual double EqualityWidth() const { return 0.0; }

  /// The estimator's declared value domain [lo, hi]: the interval inserts
  /// are clamped to and quantile answers are bracketed by. The interface
  /// default is the library-wide default domain [0, 1]; estimators with
  /// configurable domains override. (The reservoir sample, which declares no
  /// domain, reports the span of its current sample.)
  virtual RangeQuery Domain() const { return RangeQuery{0.0, 1.0}; }

  virtual size_t count() const = 0;
  virtual std::string name() const = 0;

  /// The number of attributes this estimator models. Inserts of a dims() == D
  /// estimator consume D consecutive stream values per observation
  /// (interleaved coordinates: x0, x1, x0, x1, ...); count() reports complete
  /// observations. The interface default 1 keeps every existing estimator —
  /// and every existing answer — untouched; multi-dimensional estimators
  /// override, which routes kRect/kMarginal/kConditional queries to
  /// EstimateRectImpl (see AnswerMultiDim for the exact lowering).
  virtual int dims() const { return 1; }

  /// Brings every lazily fitted cache up to date with the data inserted so
  /// far, exactly as the first query of a batch would (see the AnswerImpl
  /// contract) — but without answering anything. Idempotent; a no-op for
  /// estimators with no lazy state. Tests use it to quiesce an estimator
  /// before bitwise comparisons, and the serving publish path uses it to pay
  /// refit cost at publish time instead of on a reader's first query.
  void ForceRefit() const { ForceRefitImpl(); }

  // ------------------------------------------------------------ mergeability
  //
  // Estimators whose internal state is additive (coefficient running sums,
  // bin counts, sample buffers) support partition-then-combine: build one
  // replica per shard with CloneEmpty(), ingest disjoint sub-streams, then
  // fold the replicas together with MergeFrom(). The contract: merging
  // replicas over disjoint sub-streams answers queries like one estimator
  // over the concatenated stream — exactly for integer-count state
  // (histograms, synopsis grids), to ~1e-12 relative for floating-point sums
  // (the wavelet sketch). Estimators without an additive representation
  // (e.g. the reservoir sample, whose unbiased merge needs fresh randomness)
  // report unsupported: CloneEmpty() returns nullptr and MergeFrom() fails.

  /// True when this estimator supports CloneEmpty()/MergeFrom().
  bool mergeable() const { return merge_type_tag() != nullptr; }

  /// A fresh estimator of the same concrete type and configuration with no
  /// data, or nullptr when the estimator does not support merging.
  virtual std::unique_ptr<SelectivityEstimator> CloneEmpty() const {
    return nullptr;
  }

  /// Folds `other`'s state into this estimator. Fails (leaving this
  /// estimator untouched) when merging is unsupported, when `other` is a
  /// different concrete type, or when the configurations are incompatible
  /// (different domain, resolution, level range, ...).
  virtual Status MergeFrom(const SelectivityEstimator& other) {
    (void)other;
    return Status::FailedPrecondition(name() + " does not support MergeFrom");
  }

  // The delta-merge refinement of MergeFrom, for estimators whose merged
  // state is a buffer that only ever appends (KDE sample buffer, equi-depth
  // retained values): after a full MergeFrom(*peer) at some earlier point,
  // MergeTailFrom(*peer, from_count) folds in only peer's values appended
  // since `from_count` — WITHOUT resetting this estimator's fitted caches,
  // so a subsequent ForceRefit() pays only the delta. The sharded engine's
  // incremental merged-view refresh builds on this with per-replica
  // high-water marks. Estimators whose state is additive sums (wavelet
  // coefficients, bin counts) do NOT support it: a+b-a != b bitwise, and
  // their full MergeFrom is already O(state), so they fall back to the full
  // rebuild.

  /// True when this estimator supports MergeTailFrom().
  virtual bool SupportsTailMerge() const { return false; }

  /// Appends `other`'s state from index `from_count` onward into this
  /// estimator, leaving fitted caches intact (stale, to be refreshed by the
  /// next refit). Requires from_count <= other.count() and passes the same
  /// peer checks as MergeFrom (self-merge and type mismatches rejected).
  virtual Status MergeTailFrom(const SelectivityEstimator& other,
                               size_t from_count) {
    (void)other;
    (void)from_count;
    return Status::FailedPrecondition(name() + " does not support MergeTailFrom");
  }

  /// Identity of the concrete type for MergeFrom compatibility checks
  /// without an RTTI requirement: mergeable estimators return the address of
  /// a class-local static (see WDE_SELECTIVITY_MERGE_TAG), so equal tags
  /// guarantee a static_cast in MergeFrom is sound. nullptr means merging is
  /// unsupported. Public because an implementation must read it through a
  /// base-class reference.
  virtual const void* merge_type_tag() const { return nullptr; }

  // -------------------------------------------------------------- snapshots
  //
  // Fitted state is persistable through the versioned, CRC-framed binary
  // envelope of io/chunk.hpp: SaveState writes a self-describing
  // [type tag | state] chunk pair, LoadState restores it into an estimator of
  // the same concrete type, fully replacing configuration and data. The
  // contract: a restored estimator answers Answer/EstimateBatch
  // bit-identically to the estimator that saved — lazily fitted caches are
  // persisted (or reconstructed from exactly the data they were fitted on),
  // so answers match even when the save landed mid refit-interval — and is
  // merge-compatible with it under the ordinary MergeFrom rules. Decoding
  // hostile bytes (truncated, bit-flipped, wrong magic, future version)
  // yields a non-OK Status, never UB or an abort, and a failed LoadState
  // leaves the estimator untouched (parse fully, then commit). The string
  // tag → factory registry (estimator_registry.hpp) restores whole snapshots
  // without naming the concrete type at the call site; the same tag keys the
  // declarative construction path (EstimatorSpec::tag).

  /// Stable wire identity of the concrete type — the registry key, parallel
  /// to merge_type_tag() (the string survives process boundaries, the
  /// pointer does not). nullptr means snapshots are unsupported.
  virtual const char* snapshot_type_tag() const { return nullptr; }

  /// True when this estimator supports SaveState()/LoadState().
  bool snapshotable() const { return snapshot_type_tag() != nullptr; }

  /// Writes this estimator's envelope (type-tag chunk + CRC-framed state
  /// chunk). Composable: callers embedding estimators in larger artifacts
  /// (e.g. the sharded checkpoint) call this per estimator; whole-file
  /// snapshots add the magic/version header via SaveEstimatorSnapshot.
  Status SaveState(io::Sink& sink) const;

  /// Restores an envelope written by SaveState. The envelope's type tag must
  /// match this estimator's; configuration and data are then fully replaced.
  /// On any error the estimator is untouched. Accepts both state encodings
  /// (portable STAT and fast ARNA); when the source is backed by stable bytes
  /// (SpanSource with a keepalive, mmapped FileSource), the fast path adopts
  /// column buffers zero-copy instead of decoding them.
  Status LoadState(io::Source& source);

  /// Saves this estimator's envelope with the fast ARNA state encoding:
  /// TYPE chunk, then one fast-state frame (memory/fast_state.hpp) holding
  /// the fitted buffers verbatim plus re-derivation products (bandwidths,
  /// prefix/boundary tables, basis tables) that the portable load would
  /// recompute. `base_offset` is the absolute artifact offset at which this
  /// envelope begins (a whole-file snapshot's header is 12 bytes, so the
  /// registry passes 12); the frame pads its column region to a 64-byte
  /// absolute offset so an mmapped artifact restores zero-copy. Answers
  /// restore bit-identically to SaveState. Falls back to the portable
  /// SaveState when the estimator has no fast impl or the host is
  /// big-endian — either way the artifact loads through LoadState.
  Status SaveStateFast(io::Sink& sink, uint64_t base_offset) const;

  /// True when the concrete estimator implements the fast-state impls.
  virtual bool supports_fast_snapshot() const { return false; }

  /// A deep, independent copy of this estimator carrying all fitted state —
  /// the cheap view-extraction path the serving layer publishes epochs from.
  /// Estimators whose fitted buffers live in a memory::Arena share them
  /// copy-on-write, so the clone costs O(columns), not O(data); the first
  /// mutation on either side un-shares. Returns nullptr when unsupported
  /// (callers fall back to CloneViaSnapshot, which is equivalent but pays a
  /// full serialize + parse).
  virtual std::unique_ptr<SelectivityEstimator> CloneForView() const {
    return nullptr;
  }

  /// Restores any registered estimator from a whole snapshot (header +
  /// envelope) and folds it into this one via MergeFrom — the cross-process
  /// distributed-merge path: N ingest processes SaveEstimatorSnapshot their
  /// partitions, one combiner MergeFromSnapshots them.
  Status MergeFromSnapshot(io::Source& source);

 protected:
  /// Snapshot extension points: serialize/restore the concrete estimator's
  /// full configuration + data as io primitives. SaveStateImpl writes into a
  /// buffering sink (the NVI wrapper frames and checksums the bytes);
  /// LoadStateImpl receives a source spanning exactly its state payload and
  /// must parse everything into locals, validate — including that the
  /// payload is fully consumed — and only then commit, so failures leave the
  /// estimator untouched. Defaults report unsupported.
  virtual Status SaveStateImpl(io::Sink& sink) const;
  virtual Status LoadStateImpl(io::Source& source);

  /// Fast-state extension points (see memory/fast_state.hpp). SaveFastStateImpl
  /// writes scalar configuration into writer.head() with io primitives and
  /// registers each bulk fitted buffer as one arena column; LoadFastStateImpl
  /// reads the head back (consuming it fully), validates, and adopts the
  /// reader's arena columns — zero-copy when the frame's keepalive anchors
  /// them (mmapped snapshot), copied otherwise. Same parse-validate-commit
  /// discipline as the portable impls: hostile bytes yield a Status and leave
  /// the estimator untouched. Defaults report unsupported; estimators that
  /// override both also override supports_fast_snapshot().
  virtual Status SaveFastStateImpl(memory::FastStateWriter& writer) const;
  virtual Status LoadFastStateImpl(memory::FastStateReader& reader);

 private:
  /// Reads the state chunk and dispatches to LoadStateImpl (shared by
  /// LoadState and the registry's restore-by-tag path, which has already
  /// consumed the type-tag chunk).
  Status LoadEnvelopeState(io::Source& source);

  friend Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorEnvelope(
      io::Source& source);

 protected:
  /// Shared MergeFrom preamble: rejects self-merge (for buffer-append state
  /// it would self-insert — UB on reallocation — and for count state it
  /// would silently double) and peers of a different concrete type (tag
  /// mismatch). After an OK return, `other` is a distinct instance of this
  /// concrete type and may be static_cast to it.
  Status CheckMergePeer(const SelectivityEstimator& other) const {
    if (&other == this) {
      return Status::InvalidArgument("cannot merge an estimator into itself");
    }
    if (merge_type_tag() == nullptr ||
        other.merge_type_tag() != merge_type_tag()) {
      return Status::FailedPrecondition("MergeFrom: " + name() + " vs " +
                                        other.name());
    }
    return Status::OK();
  }

  /// The scalar range extension point — the minimal surface a new estimator
  /// implements; every 1-D query kind lowers onto it. Called with a <= b; the
  /// endpoints may be ±inf (the one-sided limits), never NaN. For a
  /// multi-dimensional estimator this is the axis-0 marginal — identically
  /// EstimateRectImpl(a, b, -inf, +inf) — so quantiles and the 1-D kinds stay
  /// meaningful over the first attribute.
  virtual double EstimateRangeImpl(double a, double b) const = 0;

  /// The rectangle extension point for dims() == 2 estimators: the mass of
  /// [lo0, hi0] × [lo1, hi1]. Called with lo <= hi per axis; endpoints may be
  /// ±inf (half-planes and full-axis marginals), never NaN. The interface
  /// default answers 0.0 — the documented answer of a 1-D estimator to a
  /// genuinely 2-D predicate (AnswerMultiDim never calls it for dims() == 1).
  virtual double EstimateRectImpl(double lo0, double hi0, double lo1,
                                  double hi1) const {
    (void)lo0;
    (void)hi0;
    (void)lo1;
    (void)hi1;
    return 0.0;
  }

  /// The batch query extension point: called with matched spans, at least
  /// one query, and every query normalized (ranges with lo <= hi, no NaN
  /// parameters, quantile levels in [0, 1]). The default loops the canonical
  /// scalar lowering AnswerOne(); overrides amortize staleness checks and
  /// per-level reconstruction setup across queries — and may substitute
  /// genuinely cheaper per-kind paths (signed-CDF evaluation, prefix sums,
  /// windowed kernel antiderivatives) — but must stay bit-identical to the
  /// default lowering (enforced by batch_equivalence_test and
  /// query_taxonomy_test).
  ///
  /// Lazily fitted state (refit caches, prefix tables, boundary rebuilds)
  /// must be refreshed by the FIRST query dispatched, whatever its kind —
  /// never built kind-by-kind partway through a batch. Every shipped
  /// estimator routes all kinds through one staleness check, and
  /// ShardedSelectivityEstimator relies on this: it answers one warm-up
  /// query against its merged view and then fans the rest of the batch out
  /// across threads as pure reads, so kind-specific lazy caches would be a
  /// data race under the sharded wrapper.
  virtual void AnswerImpl(std::span<const Query> queries,
                          std::span<double> out) const {
    for (size_t i = 0; i < queries.size(); ++i) out[i] = AnswerOne(queries[i]);
  }

  /// The canonical lowering of one normalized query onto EstimateRangeImpl:
  /// mass kinds become range endpoints via LowerToRange(); quantiles invert
  /// the lowered CDF via QuantileByBisection(); the multi-dimensional kinds
  /// dispatch through AnswerMultiDim(). AnswerImpl overrides fall back to
  /// this for kinds they have no cheaper path for.
  double AnswerOne(const Query& query) const;

  /// Lowers a normalized 1-D mass-kind query (kRange/kPoint/kLess/kCdf/
  /// kGreater) to its range endpoints: Range passes through, Point becomes
  /// [x - EqualityWidth()/2, x + EqualityWidth()/2], Less/Cdf become
  /// (-inf, c], Greater becomes [c, +inf). kQuantile and the
  /// multi-dimensional kinds have no range lowering (route them through
  /// AnswerOne instead — AnswerImpl overrides with a default branch that
  /// calls LowerToRange directly must divert those kinds first).
  RangeQuery LowerToRange(const Query& query) const;

  /// The documented lowering of the multi-dimensional kinds, shared by
  /// AnswerOne and every AnswerImpl override:
  ///   kMarginal  — axis >= dims() answers 0.0; axis 0 is
  ///                EstimateRangeImpl(a, b) for EVERY estimator (the axis-0
  ///                marginal IS the range primitive, 1-D included); axis 1 on
  ///                a 2-D estimator is EstimateRectImpl(-inf, +inf, a, b).
  ///   kRect      — 0.0 unless dims() >= 2, else EstimateRectImpl(a,b,c,d).
  ///   kConditional — 0.0 unless dims() >= 2; else the rect mass divided by
  ///                the axis-1 marginal mass of [c, d], clamped to [0, 1],
  ///                with a non-positive denominator answering 0.0.
  double AnswerMultiDim(const Query& query) const;

  /// Extension point behind ForceRefit(): refresh every lazy cache this
  /// estimator would refresh on the first query of a batch. const because
  /// lazy caches are mutable (queries refresh them through const paths
  /// already); the default is a no-op for estimators with no lazy state.
  virtual void ForceRefitImpl() const {}

  /// The documented quantile algorithm: bisection of the lowered CDF
  /// x ↦ EstimateRangeImpl(-inf, x) over the Domain() bracket
  /// (numerics::BisectMonotone, tolerance 1e-12, 200 iterations), so
  /// quantile answers always land inside the declared domain. An estimator
  /// with no data answers 0.0. Deterministic; overrides answering kQuantile
  /// must route through this helper so batch and scalar paths agree
  /// bitwise.
  double QuantileByBisection(double p) const;
};

/// Defines the per-class merge tag used by mergeable estimators: a static
/// member function whose local static's address identifies the concrete type.
#define WDE_SELECTIVITY_MERGE_TAG()                \
  static const void* MergeTag() {                  \
    static const int tag = 0;                      \
    return &tag;                                   \
  }                                                \
  const void* merge_type_tag() const override { return MergeTag(); }

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_SELECTIVITY_ESTIMATOR_HPP_
