/// \file selectivity/selectivity_estimator.hpp
/// Entry header of the `selectivity` module: the streaming interface every
/// range-selectivity estimator implements (wavelet sketch, wavelet synopsis,
/// KDE, equi-width/equi-depth histograms, reservoir sample) — the paper's
/// motivating database application. Invariants: Insert() never throws or
/// aborts on dirty data (non-finite values are dropped, out-of-domain values
/// clamped); EstimateRange(a, b) approximates P(a ≤ X ≤ b) and is in [0, 1]
/// up to estimator bias; inverted ranges (a > b) are normalized by swapping
/// at the interface (EstimateRange and EstimateBatch are non-virtual
/// wrappers), so every implementation sees a ≤ b; implementations are not
/// thread-safe (wrap in ShardedSelectivityEstimator or externally). The
/// scalar virtuals (Insert/EstimateRangeImpl) are the extension point; the
/// batch extension points (InsertBatch/EstimateBatchImpl) default to looping
/// them (with empty spans as explicit no-ops at the public entry) and may be
/// overridden with genuinely batched implementations that must stay
/// bit-identical to the scalar loop (enforced by batch_equivalence_test).
/// Estimators whose state is additive
/// additionally implement the mergeability contract (CloneEmpty/MergeFrom),
/// which the sharded parallel ingest engine builds on, and every shipped
/// estimator implements the snapshot contract (SaveState/LoadState over the
/// versioned wire format of io/chunk.hpp), which makes fitted state a
/// storable, shippable artifact — restore is bit-exact and merge-compatible.
#ifndef WDE_SELECTIVITY_SELECTIVITY_ESTIMATOR_HPP_
#define WDE_SELECTIVITY_SELECTIVITY_ESTIMATOR_HPP_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "io/serialize.hpp"
#include "util/check.hpp"
#include "util/result.hpp"

namespace wde {
namespace selectivity {

class SelectivityEstimator;

namespace internal {
/// Chunk tags of the estimator envelope (see io/chunk.hpp for the framing):
/// a type-tag chunk naming the concrete estimator, then one state chunk
/// whose payload is the estimator's own serialized configuration + data.
inline constexpr uint32_t kChunkEstimatorType = 0x45505954;   // "TYPE"
inline constexpr uint32_t kChunkEstimatorState = 0x54415453;  // "STAT"
}  // namespace internal

/// Restores one estimator envelope through the tag → factory registry; see
/// estimator_registry.hpp (declared here only for the friend grant below).
Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorEnvelope(
    io::Source& source);

/// A closed range predicate [lo, hi].
struct RangeQuery {
  double lo = 0.0;
  double hi = 0.0;
};

/// A streaming estimator of range-predicate selectivity over a single numeric
/// attribute: after observing values x_1..x_n, EstimateRange(a, b)
/// approximates P(a <= X <= b) — the fraction of rows a query optimizer
/// expects `WHERE a <= col AND col <= b` to select.
///
/// Implementations are single-writer/single-reader and not thread-safe;
/// wrap externally if shared. `ShardedSelectivityEstimator` is the provided
/// wrapper that partitions ingest across replicas on a thread pool and
/// answers queries from merged state.
class SelectivityEstimator {
 public:
  virtual ~SelectivityEstimator() = default;

  /// Ingests one value. Values outside the declared domain are clamped and
  /// non-finite values (NaN/±inf) are silently dropped — an optimizer must
  /// tolerate dirty input rather than abort.
  virtual void Insert(double x) = 0;

  /// Ingests a batch. Semantically identical to calling Insert(x) for each
  /// element in order (and bit-identical in the estimator's observable
  /// answers); overrides amortize per-sample dispatch and table setup. An
  /// empty span (including a zero-length span over null data) is a no-op;
  /// overrides must preserve that fast path.
  virtual void InsertBatch(std::span<const double> xs) {
    if (xs.empty()) return;
    for (double x : xs) Insert(x);
  }

  /// Estimated selectivity of [a, b]; implementations return values in
  /// [0, 1] up to estimator bias (wavelet estimates may slightly overshoot).
  /// An inverted range (a > b) denotes the same predicate as [b, a] and is
  /// normalized here — one swap at the interface, uniform across every
  /// implementation — so EstimateRangeImpl always sees a <= b.
  double EstimateRange(double a, double b) const {
    if (b < a) std::swap(a, b);
    return EstimateRangeImpl(a, b);
  }

  /// Answers a query batch: out[i] = EstimateRange(queries[i].lo,
  /// queries[i].hi), bit-identical to the scalar loop. Non-virtual, like
  /// EstimateRange: the empty-span no-op and the inverted-range
  /// normalization live here (one scan; queries are copied only when some
  /// range actually is inverted), so EstimateBatchImpl always sees a
  /// non-empty batch of lo <= hi queries and implementations cannot drift
  /// on either edge case.
  void EstimateBatch(std::span<const RangeQuery> queries,
                     std::span<double> out) const {
    WDE_CHECK_EQ(queries.size(), out.size(), "EstimateBatch spans must match");
    if (queries.empty()) return;
    bool any_inverted = false;
    for (const RangeQuery& q : queries) {
      if (q.hi < q.lo) {
        any_inverted = true;
        break;
      }
    }
    if (!any_inverted) {
      EstimateBatchImpl(queries, out);
      return;
    }
    std::vector<RangeQuery> normalized(queries.begin(), queries.end());
    for (RangeQuery& q : normalized) {
      if (q.hi < q.lo) std::swap(q.lo, q.hi);
    }
    EstimateBatchImpl(normalized, out);
  }

  virtual size_t count() const = 0;
  virtual std::string name() const = 0;

  // ------------------------------------------------------------ mergeability
  //
  // Estimators whose internal state is additive (coefficient running sums,
  // bin counts, sample buffers) support partition-then-combine: build one
  // replica per shard with CloneEmpty(), ingest disjoint sub-streams, then
  // fold the replicas together with MergeFrom(). The contract: merging
  // replicas over disjoint sub-streams answers queries like one estimator
  // over the concatenated stream — exactly for integer-count state
  // (histograms, synopsis grids), to ~1e-12 relative for floating-point sums
  // (the wavelet sketch). Estimators without an additive representation
  // (e.g. the reservoir sample, whose unbiased merge needs fresh randomness)
  // report unsupported: CloneEmpty() returns nullptr and MergeFrom() fails.

  /// True when this estimator supports CloneEmpty()/MergeFrom().
  bool mergeable() const { return merge_type_tag() != nullptr; }

  /// A fresh estimator of the same concrete type and configuration with no
  /// data, or nullptr when the estimator does not support merging.
  virtual std::unique_ptr<SelectivityEstimator> CloneEmpty() const {
    return nullptr;
  }

  /// Folds `other`'s state into this estimator. Fails (leaving this
  /// estimator untouched) when merging is unsupported, when `other` is a
  /// different concrete type, or when the configurations are incompatible
  /// (different domain, resolution, level range, ...).
  virtual Status MergeFrom(const SelectivityEstimator& other) {
    (void)other;
    return Status::FailedPrecondition(name() + " does not support MergeFrom");
  }

  /// Identity of the concrete type for MergeFrom compatibility checks
  /// without an RTTI requirement: mergeable estimators return the address of
  /// a class-local static (see WDE_SELECTIVITY_MERGE_TAG), so equal tags
  /// guarantee a static_cast in MergeFrom is sound. nullptr means merging is
  /// unsupported. Public because an implementation must read it through a
  /// base-class reference.
  virtual const void* merge_type_tag() const { return nullptr; }

  // -------------------------------------------------------------- snapshots
  //
  // Fitted state is persistable through the versioned, CRC-framed binary
  // envelope of io/chunk.hpp: SaveState writes a self-describing
  // [type tag | state] chunk pair, LoadState restores it into an estimator of
  // the same concrete type, fully replacing configuration and data. The
  // contract: a restored estimator answers EstimateBatch bit-identically to
  // the estimator that saved — lazily fitted caches are persisted (or
  // reconstructed from exactly the data they were fitted on), so answers
  // match even when the save landed mid refit-interval — and is
  // merge-compatible with it under the ordinary MergeFrom rules. Decoding
  // hostile bytes (truncated, bit-flipped, wrong magic, future version)
  // yields a non-OK Status, never UB or an abort, and a failed LoadState
  // leaves the estimator untouched (parse fully, then commit). The string
  // tag → factory registry (estimator_registry.hpp) restores whole snapshots
  // without naming the concrete type at the call site.

  /// Stable wire identity of the concrete type — the registry key, parallel
  /// to merge_type_tag() (the string survives process boundaries, the
  /// pointer does not). nullptr means snapshots are unsupported.
  virtual const char* snapshot_type_tag() const { return nullptr; }

  /// True when this estimator supports SaveState()/LoadState().
  bool snapshotable() const { return snapshot_type_tag() != nullptr; }

  /// Writes this estimator's envelope (type-tag chunk + CRC-framed state
  /// chunk). Composable: callers embedding estimators in larger artifacts
  /// (e.g. the sharded checkpoint) call this per estimator; whole-file
  /// snapshots add the magic/version header via SaveEstimatorSnapshot.
  Status SaveState(io::Sink& sink) const;

  /// Restores an envelope written by SaveState. The envelope's type tag must
  /// match this estimator's; configuration and data are then fully replaced.
  /// On any error the estimator is untouched.
  Status LoadState(io::Source& source);

  /// Restores any registered estimator from a whole snapshot (header +
  /// envelope) and folds it into this one via MergeFrom — the cross-process
  /// distributed-merge path: N ingest processes SaveEstimatorSnapshot their
  /// partitions, one combiner MergeFromSnapshots them.
  Status MergeFromSnapshot(io::Source& source);

 protected:
  /// Snapshot extension points: serialize/restore the concrete estimator's
  /// full configuration + data as io primitives. SaveStateImpl writes into a
  /// buffering sink (the NVI wrapper frames and checksums the bytes);
  /// LoadStateImpl receives a source spanning exactly its state payload and
  /// must parse everything into locals, validate — including that the
  /// payload is fully consumed — and only then commit, so failures leave the
  /// estimator untouched. Defaults report unsupported.
  virtual Status SaveStateImpl(io::Sink& sink) const;
  virtual Status LoadStateImpl(io::Source& source);

 private:
  /// Reads the state chunk and dispatches to LoadStateImpl (shared by
  /// LoadState and the registry's restore-by-tag path, which has already
  /// consumed the type-tag chunk).
  Status LoadEnvelopeState(io::Source& source);

  friend Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorEnvelope(
      io::Source& source);

 protected:
  /// Shared MergeFrom preamble: rejects self-merge (for buffer-append state
  /// it would self-insert — UB on reallocation — and for count state it
  /// would silently double) and peers of a different concrete type (tag
  /// mismatch). After an OK return, `other` is a distinct instance of this
  /// concrete type and may be static_cast to it.
  Status CheckMergePeer(const SelectivityEstimator& other) const {
    if (&other == this) {
      return Status::InvalidArgument("cannot merge an estimator into itself");
    }
    if (merge_type_tag() == nullptr ||
        other.merge_type_tag() != merge_type_tag()) {
      return Status::FailedPrecondition("MergeFrom: " + name() + " vs " +
                                        other.name());
    }
    return Status::OK();
  }

  /// The scalar query extension point. Called with a <= b (the public
  /// EstimateRange wrapper normalizes inverted ranges).
  virtual double EstimateRangeImpl(double a, double b) const = 0;

  /// The batch query extension point: called with matched spans, at least
  /// one query, and every query normalized to lo <= hi. The default loops
  /// the scalar extension point; overrides amortize staleness checks and
  /// per-level reconstruction setup across queries and must stay
  /// bit-identical to the scalar loop.
  virtual void EstimateBatchImpl(std::span<const RangeQuery> queries,
                                 std::span<double> out) const {
    for (size_t i = 0; i < queries.size(); ++i) {
      out[i] = EstimateRangeImpl(queries[i].lo, queries[i].hi);
    }
  }
};

/// Defines the per-class merge tag used by mergeable estimators: a static
/// member function whose local static's address identifies the concrete type.
#define WDE_SELECTIVITY_MERGE_TAG()                \
  static const void* MergeTag() {                  \
    static const int tag = 0;                      \
    return &tag;                                   \
  }                                                \
  const void* merge_type_tag() const override { return MergeTag(); }

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_SELECTIVITY_ESTIMATOR_HPP_
