#ifndef WDE_SELECTIVITY_WAVELET_SELECTIVITY_HPP_
#define WDE_SELECTIVITY_WAVELET_SELECTIVITY_HPP_

#include <cmath>
#include <optional>
#include <vector>

#include "core/adaptive.hpp"
#include "core/cross_validation.hpp"
#include "core/estimator.hpp"
#include "selectivity/selectivity_estimator.hpp"

namespace wde {
namespace selectivity {

/// The paper's adaptive wavelet estimator packaged as a streaming selectivity
/// estimator. Because the HTCV/STCV criteria depend only on the running sums
/// (S1, S2, n) per coefficient (see `EmpiricalCoefficients`), inserts are
/// O(levels × filter_length) table lookups and *no sample buffer is kept* —
/// the estimator is a true sketch. The thresholded estimate is re-derived
/// from the sums when stale (every `refit_interval` inserts, or lazily at
/// query time), and range queries use exact basis antiderivatives.
///
/// Crucially for streams, the cross-validated thresholds adapt to the
/// dependence structure of the stream (the paper's point): no mixing
/// constants need to be known.
class StreamingWaveletSelectivity : public SelectivityEstimator {
 public:
  struct Options {
    double domain_lo = 0.0;
    double domain_hi = 1.0;
    int j0 = 2;
    int j_max = 11;  // level budget fixed up front (memory O(2^j_max))
    core::ThresholdKind kind = core::ThresholdKind::kSoft;
    size_t refit_interval = 1024;
    /// kIncremental (default) warm-starts each refit's cross-validation from
    /// the previous coefficient ranking (core::CvCache): only coefficients
    /// whose (S1, S2) sums changed since the last fit are re-sorted into the
    /// ranking, so the per-level O(K log K) sort is paid only for levels a
    /// delta actually touched. kScratch re-ranks every level from zero.
    /// Identical results either way (the cache never changes the canonical
    /// order, only how it is produced); reconstruction is full in both modes.
    /// A pacing knob like refit_interval: not serialized; restore preserves
    /// the live mode and cold-starts the cache.
    RefitMode refit_mode = RefitMode::kIncremental;
  };

  static Result<StreamingWaveletSelectivity> Create(
      const wavelet::WaveletBasis& basis, const Options& options);

  void Insert(double x) override;

  /// Genuinely batched insert: cleans the batch (drop non-finite, clamp),
  /// then feeds the coefficient accumulator level-by-level with hoisted
  /// table setup instead of per-sample. The periodic-refit cadence is
  /// replayed at the same stream positions as the scalar loop, so observable
  /// behavior is bit-identical.
  void InsertBatch(std::span<const double> xs) override;

  size_t count() const override { return fit_.count(); }
  std::string name() const override;

  /// Mergeable: the sketch state is the (S1, S2, n) running sums, which are
  /// additive — see `EmpiricalCoefficients::Merge`. A merged sketch refits
  /// from the combined sums at the next query and matches the sequential
  /// sketch (refit at the same count) to ~1e-12 relative.
  std::unique_ptr<SelectivityEstimator> CloneEmpty() const override;
  /// Folds `other`'s coefficient sums into this sketch and invalidates the
  /// cached estimate; requires identical options and a compatible basis.
  Status MergeFrom(const SelectivityEstimator& other) override;
  WDE_SELECTIVITY_MERGE_TAG()
  const char* snapshot_type_tag() const override { return "wavelet-cv"; }

  /// Brings the cached estimate up to date with the sums (CV +
  /// reconstruction); normally lazy. No-op when already fitted at the
  /// current count: every mutation of the sums also advances count(), so an
  /// unchanged count implies unchanged sums and an identical re-derivation.
  void Refit() const;

  /// Point density estimate (refits lazily like EstimateRange).
  double EstimateDensity(double x) const;

  /// The most recent cross-validation result, if any refit has happened.
  const std::optional<core::CrossValidationResult>& last_cv() const { return cv_; }

  /// One finest-level cell: the sketch resolves nothing narrower than
  /// 2^-j_max of its domain.
  double EqualityWidth() const override {
    return (options_.domain_hi - options_.domain_lo) *
           std::ldexp(1.0, -options_.j_max);
  }
  RangeQuery Domain() const override {
    return RangeQuery{options_.domain_lo, options_.domain_hi};
  }

  bool supports_fast_snapshot() const override { return true; }

  /// O(levels), not O(coefficients): the copy shares the (S1, S2) sums
  /// arena copy-on-write (see EmpiricalCoefficients's copy constructor).
  std::unique_ptr<SelectivityEstimator> CloneForView() const override {
    return std::make_unique<StreamingWaveletSelectivity>(*this);
  }

 protected:
  double EstimateRangeImpl(double a, double b) const override;

  /// Genuinely batched queries: one staleness check, then every mass kind
  /// (ranges, points, one-sided, CDF — the latter two as signed-CDF
  /// evaluations of the thresholded expansion) lowers to range endpoints
  /// answered in one pass per reconstruction level across the whole batch
  /// (exact basis antiderivatives); quantiles run the shared bisection.
  /// Bit-identical to the scalar lowering loop.
  void AnswerImpl(std::span<const Query> queries,
                  std::span<double> out) const override;

  /// Quiesce: run the (possibly warm-started) refit now.
  void ForceRefitImpl() const override { Refit(); }

  /// Persists the options, the (S1, S2, n) sums (with the basis identity —
  /// filter name + table resolution — so restore rebuilds bit-identical
  /// tables), and the cached thresholded estimate + CV result. The cache
  /// cannot be re-derived once the sums have moved past the fit point, so
  /// persisting it keeps mid-refit-interval saves bit-identical on restore.
  Status SaveStateImpl(io::Sink& sink) const override;
  Status LoadStateImpl(io::Source& source) override;
  /// Fast state persists the basis cascade-product tables (φ, ψ and their
  /// antiderivatives) and the per-level (S1, S2) sums as bulk F64 columns,
  /// so restore skips the cascade re-derivation entirely: the tables are
  /// borrowed zero-copy from an mmapped image via WaveletBasis::FromTables.
  Status SaveFastStateImpl(memory::FastStateWriter& writer) const override;
  Status LoadFastStateImpl(memory::FastStateReader& reader) override;

 private:
  StreamingWaveletSelectivity(core::WaveletDensityFit fit, const Options& options)
      : options_(options), fit_(std::move(fit)) {}

  void RefitIfStale() const;

  Options options_;
  core::WaveletDensityFit fit_;
  std::vector<double> insert_scratch_;  // cleaned batch, reused across calls
  mutable std::optional<core::WaveletEstimate> estimate_;
  mutable std::optional<core::CrossValidationResult> cv_;
  /// CV warm-start state (kIncremental only). Never serialized: a restored
  /// sketch cold-starts its first refit. Copied by value with the estimator,
  /// so CloneForView copies diverge without sharing.
  mutable core::CvCache cv_cache_;
  mutable size_t fitted_at_count_ = 0;
};

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_WAVELET_SELECTIVITY_HPP_
