/// \file selectivity/estimator_registry.hpp
/// The string-tag → factory registry behind both construction surfaces of
/// the selectivity layer. Factories are spec-aware: each maps an
/// `EstimatorSpec` to a fully configured estimator (validating the fields it
/// consumes), so one registration serves live construction
/// (MakeEstimator(spec)), sharded prototype building, AND snapshot restore —
/// a snapshot names its estimator by `snapshot_type_tag()` (== spec.tag) and
/// the registry rebuilds the concrete type from the minimal shell spec
/// before LoadState replaces its configuration and data. Every shipped
/// estimator is pre-registered in Global(); user-defined estimators register
/// their own tag + factory once at startup. The whole-file helpers add and
/// validate the magic/version snapshot header around one estimator envelope
/// (see io/chunk.hpp for the framing and docs/ARCHITECTURE.md "Persistence &
/// wire format" / "Query taxonomy & estimator specs").
#ifndef WDE_SELECTIVITY_ESTIMATOR_REGISTRY_HPP_
#define WDE_SELECTIVITY_ESTIMATOR_REGISTRY_HPP_

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "io/serialize.hpp"
#include "selectivity/estimator_spec.hpp"
#include "selectivity/selectivity_estimator.hpp"
#include "util/result.hpp"

namespace wde {
namespace selectivity {

/// Maps snapshot type tags to spec-aware factories. Thread-safe (lookups and
/// registrations may race across loader threads).
class EstimatorRegistry {
 public:
  /// Builds a fully configured estimator from `spec`, or a non-OK Result
  /// when the fields the tag consumes are invalid. Factories must not abort
  /// on bad specs.
  using Factory =
      std::function<Result<std::unique_ptr<SelectivityEstimator>>(
          const EstimatorSpec&)>;

  /// The process-wide registry, with every shipped estimator pre-registered.
  static EstimatorRegistry& Global();

  /// Registers a factory for `tag`; a duplicate tag is an error. `dims` is
  /// the tag's native dimensionality (what NativeDims reports and ShellFor
  /// stamps into shell specs); factories validate spec.dims against it.
  Status Register(const std::string& tag, Factory factory, int dims = 1);

  bool Contains(const std::string& tag) const;

  /// The native dimensionality the tag was registered with, or 0 for an
  /// unknown tag. Tests and workload builders use it to stamp spec.dims (and
  /// pick per-tag workloads) when iterating Tags().
  int NativeDims(const std::string& tag) const;

  /// All registered tags, sorted (what the round-trip and spec-construction
  /// tests iterate).
  std::vector<std::string> Tags() const;

  /// Builds the estimator `spec.tag` names from `spec`. NotFound for an
  /// unregistered tag.
  Result<std::unique_ptr<SelectivityEstimator>> Make(
      const EstimatorSpec& spec) const;

  /// A shell instance for `tag` — the factory applied to
  /// EstimatorSpec::ShellFor(tag) — or nullptr when the tag is unknown.
  /// LoadState then replaces the shell's configuration and data with a
  /// snapshot's.
  std::unique_ptr<SelectivityEstimator> MakeShell(const std::string& tag) const;

 private:
  EstimatorRegistry() = default;

  struct Entry {
    Factory factory;
    int dims = 1;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Entry> factories_;
};

/// Writes one estimator envelope (no snapshot header) — what nested
/// serialization uses; equivalent to estimator.SaveState(sink).
Status SaveEstimatorEnvelope(const SelectivityEstimator& estimator,
                             io::Sink& sink);

/// Restores one estimator envelope through the registry: reads the type-tag
/// chunk, builds the registered shell, loads the state chunk into it.
Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorEnvelope(
    io::Source& source);

/// Whole snapshot = magic/version header + one estimator envelope.
Status SaveEstimatorSnapshot(const SelectivityEstimator& estimator,
                             io::Sink& sink);

/// Restores a whole snapshot; trailing bytes after the envelope are an error.
Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorSnapshot(
    io::Source& source);

/// File convenience wrappers over Save/LoadEstimatorSnapshot.
Status SaveEstimatorSnapshotFile(const SelectivityEstimator& estimator,
                                 const std::string& path);
Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorSnapshotFile(
    const std::string& path);

/// Fast-encoding counterparts: the snapshot carries the estimator's state as
/// one ARNA fast-state chunk (see memory/fast_state.hpp) whose column region
/// lands 64-byte aligned in the file, so LoadEstimatorSnapshotFileMapped can
/// restore by header validation + pointer fixup into the mapping — no
/// element-wise decode, no buffer copy, no refit. Estimators without a fast
/// impl (and big-endian hosts) transparently save the portable envelope
/// instead; every snapshot, fast or portable, loads through every loader.
Status SaveEstimatorSnapshotFast(const SelectivityEstimator& estimator,
                                 io::Sink& sink);
Status SaveEstimatorSnapshotFastFile(const SelectivityEstimator& estimator,
                                     const std::string& path);

/// Restores a whole-snapshot file through an mmap-backed source (POSIX;
/// falls back to an ordinary read elsewhere). The returned estimator may
/// borrow its fitted buffers from the mapping — the mapping stays alive for
/// the estimator's lifetime via its keepalive handle.
Result<std::unique_ptr<SelectivityEstimator>> LoadEstimatorSnapshotFileMapped(
    const std::string& path);

/// Deep-copies any snapshotable estimator through an in-memory envelope
/// round trip (SaveState into a buffer, registry-restore out of it). By the
/// restore-fidelity contract the copy answers Answer/EstimateBatch
/// bit-identically to the original and shares no state with it — what the
/// serving layer publishes as immutable epoch views for estimators that lack
/// a cheaper view-extraction path (the sharded engine's ExtractMergedView).
/// FailedPrecondition when the estimator does not support snapshots.
Result<std::unique_ptr<SelectivityEstimator>> CloneViaSnapshot(
    const SelectivityEstimator& estimator);

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_ESTIMATOR_REGISTRY_HPP_
