#include "selectivity/selectivity_estimator.hpp"

#include <string_view>

#include "io/chunk.hpp"

namespace wde {
namespace selectivity {

Status SelectivityEstimator::SaveState(io::Sink& sink) const {
  if (!snapshotable()) {
    return Status::FailedPrecondition(name() + " does not support snapshots");
  }
  const std::string_view tag = snapshot_type_tag();
  WDE_RETURN_IF_ERROR(io::WriteChunk(
      sink, internal::kChunkEstimatorType,
      std::span(reinterpret_cast<const uint8_t*>(tag.data()), tag.size())));
  // Buffer the state so the chunk framing can length-prefix and checksum it.
  io::VectorSink state;
  WDE_RETURN_IF_ERROR(SaveStateImpl(state));
  return io::WriteChunk(sink, internal::kChunkEstimatorState, state.bytes());
}

Status SelectivityEstimator::LoadState(io::Source& source) {
  if (!snapshotable()) {
    return Status::FailedPrecondition(name() + " does not support snapshots");
  }
  WDE_ASSIGN_OR_RETURN(
      const std::vector<uint8_t> tag_bytes,
      io::ReadChunkExpecting(source, internal::kChunkEstimatorType));
  const std::string tag(tag_bytes.begin(), tag_bytes.end());
  if (tag != snapshot_type_tag()) {
    return Status::FailedPrecondition("snapshot of type '" + tag +
                                      "' cannot restore into " + name());
  }
  return LoadEnvelopeState(source);
}

Status SelectivityEstimator::LoadEnvelopeState(io::Source& source) {
  WDE_ASSIGN_OR_RETURN(
      const std::vector<uint8_t> payload,
      io::ReadChunkExpecting(source, internal::kChunkEstimatorState));
  io::SpanSource state(payload);
  // Payload exhaustion is part of the LoadStateImpl contract and must be
  // validated there BEFORE committing (a wrapper-side check here would fire
  // only after the implementation already replaced the estimator's state,
  // silently breaking the untouched-on-error guarantee).
  return LoadStateImpl(state);
}

Status SelectivityEstimator::SaveStateImpl(io::Sink& sink) const {
  (void)sink;
  return Status::FailedPrecondition(name() + " does not implement SaveStateImpl");
}

Status SelectivityEstimator::LoadStateImpl(io::Source& source) {
  (void)source;
  return Status::FailedPrecondition(name() + " does not implement LoadStateImpl");
}

}  // namespace selectivity
}  // namespace wde
