#include "selectivity/selectivity_estimator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <string_view>

#include "io/chunk.hpp"
#include "memory/fast_state.hpp"
#include "numerics/optimize.hpp"

namespace wde {
namespace selectivity {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// True when the query may be handed to AnswerImpl as-is: no NaN in any used
/// parameter, ranges ordered, quantile levels inside [0, 1]. (NaN fails every
/// ordered comparison, so the kRange and kQuantile predicates subsume the
/// NaN checks for their parameters.)
bool IsNormalized(const Query& q) {
  switch (q.kind) {
    case QueryKind::kRange:
      return q.a <= q.b;
    case QueryKind::kQuantile:
      return q.a >= 0.0 && q.a <= 1.0;
    default:
      return !std::isnan(q.a);
  }
}

/// True when the abnormal query is answered 0.0 at the interface (NaN in a
/// used parameter) rather than rewritten and dispatched.
bool AnswersZero(const Query& q) {
  switch (q.kind) {
    case QueryKind::kRange:
      return std::isnan(q.a) || std::isnan(q.b);
    default:
      return std::isnan(q.a);
  }
}

/// Rewrites the one abnormal non-NaN form per kind: inverted ranges swap,
/// out-of-range quantile levels clamp.
Query Normalize(const Query& q) {
  Query fixed = q;
  if (q.kind == QueryKind::kRange) {
    std::swap(fixed.a, fixed.b);
  } else if (q.kind == QueryKind::kQuantile) {
    fixed.a = std::clamp(q.a, 0.0, 1.0);
  }
  return fixed;
}

}  // namespace

void SelectivityEstimator::Answer(std::span<const Query> queries,
                                  std::span<double> out) const {
  WDE_CHECK_EQ(queries.size(), out.size(), "Answer spans must match");
  if (queries.empty()) return;
  // One scan; maximal already-normalized runs go to AnswerImpl as sub-spans
  // of the caller's storage (no copy, however many queries need fixing), and
  // each abnormal query is either answered 0.0 here (NaN) or rewritten on
  // the stack and dispatched alone.
  size_t run_start = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    if (IsNormalized(q)) continue;
    if (i > run_start) {
      AnswerImpl(queries.subspan(run_start, i - run_start),
                 out.subspan(run_start, i - run_start));
    }
    run_start = i + 1;
    if (AnswersZero(q)) {
      out[i] = 0.0;
      continue;
    }
    const Query fixed = Normalize(q);
    AnswerImpl(std::span<const Query>(&fixed, 1), out.subspan(i, 1));
  }
  if (run_start < queries.size()) {
    AnswerImpl(queries.subspan(run_start), out.subspan(run_start));
  }
}

void SelectivityEstimator::EstimateBatch(std::span<const RangeQuery> queries,
                                         std::span<double> out) const {
  WDE_CHECK_EQ(queries.size(), out.size(), "EstimateBatch spans must match");
  if (queries.empty()) return;
  // Chunked conversion through a stack buffer: bounded storage regardless of
  // batch size, and Answer() runs its normalization per chunk (query answers
  // are independent, so chunking cannot change them).
  std::array<Query, 256> buffer;
  size_t offset = 0;
  while (offset < queries.size()) {
    const size_t n = std::min(buffer.size(), queries.size() - offset);
    for (size_t i = 0; i < n; ++i) {
      buffer[i] = Query::Range(queries[offset + i].lo, queries[offset + i].hi);
    }
    Answer(std::span<const Query>(buffer.data(), n), out.subspan(offset, n));
    offset += n;
  }
}

RangeQuery SelectivityEstimator::LowerToRange(const Query& query) const {
  switch (query.kind) {
    case QueryKind::kRange:
      return RangeQuery{query.a, query.b};
    case QueryKind::kPoint: {
      const double half = 0.5 * EqualityWidth();
      return RangeQuery{query.a - half, query.a + half};
    }
    case QueryKind::kLess:
    case QueryKind::kCdf:
      return RangeQuery{-kInf, query.a};
    case QueryKind::kGreater:
      return RangeQuery{query.a, kInf};
    case QueryKind::kQuantile:
      break;
  }
  WDE_CHECK(false, "kQuantile has no range lowering");
  return RangeQuery{};
}

double SelectivityEstimator::AnswerOne(const Query& query) const {
  if (query.kind == QueryKind::kQuantile) return QuantileByBisection(query.a);
  const RangeQuery range = LowerToRange(query);
  return EstimateRangeImpl(range.lo, range.hi);
}

double SelectivityEstimator::QuantileByBisection(double p) const {
  if (count() == 0) return 0.0;
  const RangeQuery domain = Domain();
  return numerics::BisectMonotone(
      [this](double x) { return EstimateRangeImpl(-kInf, x); }, p, domain.lo,
      domain.hi);
}

Status SelectivityEstimator::SaveState(io::Sink& sink) const {
  if (!snapshotable()) {
    return Status::FailedPrecondition(name() + " does not support snapshots");
  }
  const std::string_view tag = snapshot_type_tag();
  WDE_RETURN_IF_ERROR(io::WriteChunk(
      sink, internal::kChunkEstimatorType,
      std::span(reinterpret_cast<const uint8_t*>(tag.data()), tag.size())));
  // Buffer the state so the chunk framing can length-prefix and checksum it.
  io::VectorSink state;
  WDE_RETURN_IF_ERROR(SaveStateImpl(state));
  return io::WriteChunk(sink, internal::kChunkEstimatorState, state.bytes());
}

Status SelectivityEstimator::SaveStateFast(io::Sink& sink,
                                           uint64_t base_offset) const {
  // The fast encoding is an optimization, never a capability: estimators
  // without a fast impl — and big-endian hosts, whose column bytes would not
  // be the wire's little-endian — transparently write the portable envelope,
  // which every reader accepts through the same LoadState dispatch.
  if (!supports_fast_snapshot() || !memory::FastStateSupportedOnHost()) {
    return SaveState(sink);
  }
  if (!snapshotable()) {
    return Status::FailedPrecondition(name() + " does not support snapshots");
  }
  const std::string_view tag = snapshot_type_tag();
  WDE_RETURN_IF_ERROR(io::WriteChunk(
      sink, internal::kChunkEstimatorType,
      std::span(reinterpret_cast<const uint8_t*>(tag.data()), tag.size())));
  memory::FastStateWriter writer;
  WDE_RETURN_IF_ERROR(SaveFastStateImpl(writer));
  // The ARNA payload starts after the TYPE chunk (16 bytes of framing + the
  // tag) and the ARNA chunk's own 12-byte tag/size header; the writer pads
  // its column region to a 64-byte offset relative to that absolute
  // position, so an mmapped artifact presents the columns aligned.
  const uint64_t payload_offset = base_offset + 16 + tag.size() + 12;
  io::VectorSink frame;
  WDE_RETURN_IF_ERROR(writer.Finish(frame, payload_offset));
  return io::WriteChunk(sink, internal::kChunkEstimatorArena, frame.bytes());
}

Status SelectivityEstimator::LoadState(io::Source& source) {
  if (!snapshotable()) {
    return Status::FailedPrecondition(name() + " does not support snapshots");
  }
  WDE_ASSIGN_OR_RETURN(
      const std::vector<uint8_t> tag_bytes,
      io::ReadChunkExpecting(source, internal::kChunkEstimatorType));
  const std::string tag(tag_bytes.begin(), tag_bytes.end());
  if (tag != snapshot_type_tag()) {
    return Status::FailedPrecondition("snapshot of type '" + tag +
                                      "' cannot restore into " + name());
  }
  return LoadEnvelopeState(source);
}

Status SelectivityEstimator::LoadEnvelopeState(io::Source& source) {
  // Zero-copy read: for memory-backed sources (SpanSource over a blob, the
  // mmapped FileSource) the payload is a view into the source's buffer,
  // anchored below by source.backing(); only byte-stream sources pay a copy.
  WDE_ASSIGN_OR_RETURN(io::ChunkRef chunk, io::ReadChunkRef(source));
  if (chunk.tag == internal::kChunkEstimatorState) {
    io::SpanSource state(chunk.payload);
    // Payload exhaustion is part of the LoadStateImpl contract and must be
    // validated there BEFORE committing (a wrapper-side check here would fire
    // only after the implementation already replaced the estimator's state,
    // silently breaking the untouched-on-error guarantee).
    return LoadStateImpl(state);
  }
  if (chunk.tag == internal::kChunkEstimatorArena) {
    // Anchor the payload bytes for the life of the restored estimator: the
    // fast path hands column spans straight into fitted state, so the image
    // must outlive this call. A viewed payload borrows the source's backing
    // (the mmap or caller-owned blob); a copied payload is promoted into a
    // shared buffer the reader keeps alive.
    std::shared_ptr<const void> keepalive;
    if (!chunk.owned.empty()) {
      // Moving the vector relocates the struct, not the heap buffer, so
      // chunk.payload keeps pointing at the promoted bytes.
      keepalive = std::make_shared<const std::vector<uint8_t>>(
          std::move(chunk.owned));
    } else {
      keepalive = source.backing();
    }
    WDE_ASSIGN_OR_RETURN(
        memory::FastStateReader reader,
        memory::FastStateReader::Parse(chunk.payload, std::move(keepalive)));
    // Same parse-validate-commit contract as the portable branch, including
    // full consumption of reader.head().
    return LoadFastStateImpl(reader);
  }
  return Status::InvalidArgument("estimator envelope has an unknown state chunk");
}

Status SelectivityEstimator::SaveStateImpl(io::Sink& sink) const {
  (void)sink;
  return Status::FailedPrecondition(name() + " does not implement SaveStateImpl");
}

Status SelectivityEstimator::LoadStateImpl(io::Source& source) {
  (void)source;
  return Status::FailedPrecondition(name() + " does not implement LoadStateImpl");
}

Status SelectivityEstimator::SaveFastStateImpl(
    memory::FastStateWriter& writer) const {
  (void)writer;
  return Status::FailedPrecondition(name() +
                                    " does not implement SaveFastStateImpl");
}

Status SelectivityEstimator::LoadFastStateImpl(memory::FastStateReader& reader) {
  (void)reader;
  return Status::FailedPrecondition(name() +
                                    " does not implement LoadFastStateImpl");
}

}  // namespace selectivity
}  // namespace wde
