#include "selectivity/selectivity_estimator.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <string_view>

#include "io/chunk.hpp"
#include "memory/fast_state.hpp"
#include "numerics/optimize.hpp"

namespace wde {
namespace selectivity {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// True when the query may be handed to AnswerImpl as-is: no NaN in any used
/// parameter, ranges ordered, quantile levels inside [0, 1]. (NaN fails every
/// ordered comparison, so the kRange and kQuantile predicates subsume the
/// NaN checks for their parameters.)
bool IsNormalized(const Query& q) {
  switch (q.kind) {
    case QueryKind::kRange:
      return q.a <= q.b;
    case QueryKind::kQuantile:
      return q.a >= 0.0 && q.a <= 1.0;
    case QueryKind::kRect:
    case QueryKind::kConditional:
      // Both axis intervals ordered; NaN fails either comparison.
      return q.a <= q.b && q.c <= q.d;
    case QueryKind::kMarginal:
      return q.a <= q.b;
    default:
      return !std::isnan(q.a);
  }
}

/// True when the abnormal query is answered 0.0 at the interface (NaN in a
/// used parameter) rather than rewritten and dispatched.
bool AnswersZero(const Query& q) {
  switch (q.kind) {
    case QueryKind::kRange:
    case QueryKind::kMarginal:
      return std::isnan(q.a) || std::isnan(q.b);
    case QueryKind::kRect:
    case QueryKind::kConditional:
      return std::isnan(q.a) || std::isnan(q.b) || std::isnan(q.c) ||
             std::isnan(q.d);
    default:
      return std::isnan(q.a);
  }
}

/// Rewrites the one abnormal non-NaN form per kind: inverted ranges swap
/// (independently per axis for the two-interval kinds), out-of-range quantile
/// levels clamp.
Query Normalize(const Query& q) {
  Query fixed = q;
  switch (q.kind) {
    case QueryKind::kRange:
    case QueryKind::kMarginal:
      std::swap(fixed.a, fixed.b);
      break;
    case QueryKind::kQuantile:
      fixed.a = std::clamp(q.a, 0.0, 1.0);
      break;
    case QueryKind::kRect:
    case QueryKind::kConditional:
      // Each axis swaps only when inverted: Normalize() runs whenever EITHER
      // axis is abnormal, so the in-order axis must pass through untouched.
      if (q.a > q.b) std::swap(fixed.a, fixed.b);
      if (q.c > q.d) std::swap(fixed.c, fixed.d);
      break;
    default:
      break;
  }
  return fixed;
}

/// The 4-byte DIMS chunk payload: one little-endian u32 dimensionality.
Status WriteDimsChunk(io::Sink& sink, int dims) {
  io::VectorSink payload;
  WDE_RETURN_IF_ERROR(io::WriteU32(payload, static_cast<uint32_t>(dims)));
  return io::WriteChunk(sink, internal::kChunkEstimatorDims, payload.bytes());
}

}  // namespace

void SelectivityEstimator::Answer(std::span<const Query> queries,
                                  std::span<double> out) const {
  WDE_CHECK_EQ(queries.size(), out.size(), "Answer spans must match");
  if (queries.empty()) return;
  // One scan; maximal already-normalized runs go to AnswerImpl as sub-spans
  // of the caller's storage (no copy, however many queries need fixing), and
  // each abnormal query is either answered 0.0 here (NaN) or rewritten on
  // the stack and dispatched alone.
  size_t run_start = 0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    if (IsNormalized(q)) continue;
    if (i > run_start) {
      AnswerImpl(queries.subspan(run_start, i - run_start),
                 out.subspan(run_start, i - run_start));
    }
    run_start = i + 1;
    if (AnswersZero(q)) {
      out[i] = 0.0;
      continue;
    }
    const Query fixed = Normalize(q);
    AnswerImpl(std::span<const Query>(&fixed, 1), out.subspan(i, 1));
  }
  if (run_start < queries.size()) {
    AnswerImpl(queries.subspan(run_start), out.subspan(run_start));
  }
}

void SelectivityEstimator::EstimateBatch(std::span<const RangeQuery> queries,
                                         std::span<double> out) const {
  WDE_CHECK_EQ(queries.size(), out.size(), "EstimateBatch spans must match");
  if (queries.empty()) return;
  // Chunked conversion through a stack buffer: bounded storage regardless of
  // batch size, and Answer() runs its normalization per chunk (query answers
  // are independent, so chunking cannot change them).
  std::array<Query, 256> buffer;
  size_t offset = 0;
  while (offset < queries.size()) {
    const size_t n = std::min(buffer.size(), queries.size() - offset);
    for (size_t i = 0; i < n; ++i) {
      buffer[i] = Query::Range(queries[offset + i].lo, queries[offset + i].hi);
    }
    Answer(std::span<const Query>(buffer.data(), n), out.subspan(offset, n));
    offset += n;
  }
}

RangeQuery SelectivityEstimator::LowerToRange(const Query& query) const {
  switch (query.kind) {
    case QueryKind::kRange:
      return RangeQuery{query.a, query.b};
    case QueryKind::kPoint: {
      const double half = 0.5 * EqualityWidth();
      return RangeQuery{query.a - half, query.a + half};
    }
    case QueryKind::kLess:
    case QueryKind::kCdf:
      return RangeQuery{-kInf, query.a};
    case QueryKind::kGreater:
      return RangeQuery{query.a, kInf};
    case QueryKind::kQuantile:
    case QueryKind::kRect:
    case QueryKind::kMarginal:
    case QueryKind::kConditional:
      break;
  }
  WDE_CHECK(false, "query kind has no 1-D range lowering");
  return RangeQuery{};
}

double SelectivityEstimator::AnswerMultiDim(const Query& query) const {
  switch (query.kind) {
    case QueryKind::kMarginal:
      if (query.axis >= dims()) return 0.0;
      // Axis 0 IS the range primitive — for every estimator, 1-D included —
      // so Marginal(0, a, b) and Range(a, b) are one code path, bitwise.
      if (query.axis == 0) return EstimateRangeImpl(query.a, query.b);
      return EstimateRectImpl(-kInf, kInf, query.a, query.b);
    case QueryKind::kRect:
      if (dims() < 2) return 0.0;
      return EstimateRectImpl(query.a, query.b, query.c, query.d);
    case QueryKind::kConditional: {
      if (dims() < 2) return 0.0;
      const double condition = EstimateRectImpl(-kInf, kInf, query.c, query.d);
      if (!(condition > 0.0)) return 0.0;
      const double joint =
          EstimateRectImpl(query.a, query.b, query.c, query.d);
      return std::clamp(joint / condition, 0.0, 1.0);
    }
    default:
      break;
  }
  WDE_CHECK(false, "AnswerMultiDim dispatched a 1-D query kind");
  return 0.0;
}

double SelectivityEstimator::AnswerOne(const Query& query) const {
  switch (query.kind) {
    case QueryKind::kQuantile:
      return QuantileByBisection(query.a);
    case QueryKind::kRect:
    case QueryKind::kMarginal:
    case QueryKind::kConditional:
      return AnswerMultiDim(query);
    default:
      break;
  }
  const RangeQuery range = LowerToRange(query);
  return EstimateRangeImpl(range.lo, range.hi);
}

double SelectivityEstimator::QuantileByBisection(double p) const {
  if (count() == 0) return 0.0;
  const RangeQuery domain = Domain();
  return numerics::BisectMonotone(
      [this](double x) { return EstimateRangeImpl(-kInf, x); }, p, domain.lo,
      domain.hi);
}

Status SelectivityEstimator::SaveState(io::Sink& sink) const {
  if (!snapshotable()) {
    return Status::FailedPrecondition(name() + " does not support snapshots");
  }
  const std::string_view tag = snapshot_type_tag();
  WDE_RETURN_IF_ERROR(io::WriteChunk(
      sink, internal::kChunkEstimatorType,
      std::span(reinterpret_cast<const uint8_t*>(tag.data()), tag.size())));
  // Multi-dimensional envelopes carry their dimensionality ahead of the
  // state (snapshot v4); 1-D envelopes omit the chunk and stay byte-for-byte
  // what a v3 writer produced.
  if (dims() != 1) WDE_RETURN_IF_ERROR(WriteDimsChunk(sink, dims()));
  // Buffer the state so the chunk framing can length-prefix and checksum it.
  io::VectorSink state;
  WDE_RETURN_IF_ERROR(SaveStateImpl(state));
  return io::WriteChunk(sink, internal::kChunkEstimatorState, state.bytes());
}

Status SelectivityEstimator::SaveStateFast(io::Sink& sink,
                                           uint64_t base_offset) const {
  // The fast encoding is an optimization, never a capability: estimators
  // without a fast impl — and big-endian hosts, whose column bytes would not
  // be the wire's little-endian — transparently write the portable envelope,
  // which every reader accepts through the same LoadState dispatch.
  if (!supports_fast_snapshot() || !memory::FastStateSupportedOnHost()) {
    return SaveState(sink);
  }
  if (!snapshotable()) {
    return Status::FailedPrecondition(name() + " does not support snapshots");
  }
  const std::string_view tag = snapshot_type_tag();
  WDE_RETURN_IF_ERROR(io::WriteChunk(
      sink, internal::kChunkEstimatorType,
      std::span(reinterpret_cast<const uint8_t*>(tag.data()), tag.size())));
  if (dims() != 1) WDE_RETURN_IF_ERROR(WriteDimsChunk(sink, dims()));
  memory::FastStateWriter writer;
  WDE_RETURN_IF_ERROR(SaveFastStateImpl(writer));
  // The ARNA payload starts after the TYPE chunk (16 bytes of framing + the
  // tag), the 20-byte DIMS chunk when present, and the ARNA chunk's own
  // 12-byte tag/size header; the writer pads its column region to a 64-byte
  // offset relative to that absolute position, so an mmapped artifact
  // presents the columns aligned.
  const uint64_t payload_offset = base_offset + 16 + tag.size() +
                                  (dims() != 1 ? 20 : 0) + 12;
  io::VectorSink frame;
  WDE_RETURN_IF_ERROR(writer.Finish(frame, payload_offset));
  return io::WriteChunk(sink, internal::kChunkEstimatorArena, frame.bytes());
}

Status SelectivityEstimator::LoadState(io::Source& source) {
  if (!snapshotable()) {
    return Status::FailedPrecondition(name() + " does not support snapshots");
  }
  WDE_ASSIGN_OR_RETURN(
      const std::vector<uint8_t> tag_bytes,
      io::ReadChunkExpecting(source, internal::kChunkEstimatorType));
  const std::string tag(tag_bytes.begin(), tag_bytes.end());
  if (tag != snapshot_type_tag()) {
    return Status::FailedPrecondition("snapshot of type '" + tag +
                                      "' cannot restore into " + name());
  }
  return LoadEnvelopeState(source);
}

Status SelectivityEstimator::LoadEnvelopeState(io::Source& source) {
  // Zero-copy read: for memory-backed sources (SpanSource over a blob, the
  // mmapped FileSource) the payload is a view into the source's buffer,
  // anchored below by source.backing(); only byte-stream sources pay a copy.
  WDE_ASSIGN_OR_RETURN(io::ChunkRef chunk, io::ReadChunkRef(source));
  if (chunk.tag == internal::kChunkEstimatorDims) {
    // Snapshot v4 dimensionality tag: validated against the target BEFORE
    // any state byte is parsed. Absence (every v1–v3 envelope, and every
    // v4 1-D envelope) implies dimensionality 1, checked below.
    if (chunk.payload.size() != 4) {
      return Status::InvalidArgument("malformed estimator DIMS chunk");
    }
    io::SpanSource dims_source(chunk.payload);
    WDE_ASSIGN_OR_RETURN(const uint32_t snapshot_dims,
                         io::ReadU32(dims_source));
    if (snapshot_dims != static_cast<uint32_t>(dims())) {
      return Status::FailedPrecondition(
          "snapshot dimensionality does not match " + name());
    }
    WDE_ASSIGN_OR_RETURN(chunk, io::ReadChunkRef(source));
  } else if (dims() != 1) {
    return Status::FailedPrecondition(
        "snapshot lacks the dimensionality tag required by " + name());
  }
  if (chunk.tag == internal::kChunkEstimatorState) {
    io::SpanSource state(chunk.payload);
    // Payload exhaustion is part of the LoadStateImpl contract and must be
    // validated there BEFORE committing (a wrapper-side check here would fire
    // only after the implementation already replaced the estimator's state,
    // silently breaking the untouched-on-error guarantee).
    return LoadStateImpl(state);
  }
  if (chunk.tag == internal::kChunkEstimatorArena) {
    // Anchor the payload bytes for the life of the restored estimator: the
    // fast path hands column spans straight into fitted state, so the image
    // must outlive this call. A viewed payload borrows the source's backing
    // (the mmap or caller-owned blob); a copied payload is promoted into a
    // shared buffer the reader keeps alive.
    std::shared_ptr<const void> keepalive;
    if (!chunk.owned.empty()) {
      // Moving the vector relocates the struct, not the heap buffer, so
      // chunk.payload keeps pointing at the promoted bytes.
      keepalive = std::make_shared<const std::vector<uint8_t>>(
          std::move(chunk.owned));
    } else {
      keepalive = source.backing();
    }
    WDE_ASSIGN_OR_RETURN(
        memory::FastStateReader reader,
        memory::FastStateReader::Parse(chunk.payload, std::move(keepalive)));
    // Same parse-validate-commit contract as the portable branch, including
    // full consumption of reader.head().
    return LoadFastStateImpl(reader);
  }
  return Status::InvalidArgument("estimator envelope has an unknown state chunk");
}

Status SelectivityEstimator::SaveStateImpl(io::Sink& sink) const {
  (void)sink;
  return Status::FailedPrecondition(name() + " does not implement SaveStateImpl");
}

Status SelectivityEstimator::LoadStateImpl(io::Source& source) {
  (void)source;
  return Status::FailedPrecondition(name() + " does not implement LoadStateImpl");
}

Status SelectivityEstimator::SaveFastStateImpl(
    memory::FastStateWriter& writer) const {
  (void)writer;
  return Status::FailedPrecondition(name() +
                                    " does not implement SaveFastStateImpl");
}

Status SelectivityEstimator::LoadFastStateImpl(memory::FastStateReader& reader) {
  (void)reader;
  return Status::FailedPrecondition(name() +
                                    " does not implement LoadFastStateImpl");
}

}  // namespace selectivity
}  // namespace wde
