#include "selectivity/wavelet_selectivity.hpp"

#include <algorithm>
#include <cmath>

#include "util/string_util.hpp"

namespace wde {
namespace selectivity {

Result<StreamingWaveletSelectivity> StreamingWaveletSelectivity::Create(
    const wavelet::WaveletBasis& basis, const Options& options) {
  Result<core::WaveletDensityFit> fit = core::WaveletDensityFit::CreateStreaming(
      basis, options.j0, options.j_max, options.domain_lo, options.domain_hi);
  if (!fit.ok()) return fit.status();
  if (options.refit_interval == 0) {
    return Status::InvalidArgument("refit_interval must be positive");
  }
  return StreamingWaveletSelectivity(std::move(fit).value(), options);
}

void StreamingWaveletSelectivity::Insert(double x) {
  if (!std::isfinite(x)) return;
  fit_.Add(std::clamp(x, options_.domain_lo, options_.domain_hi));
  if (fit_.count() - fitted_at_count_ >= options_.refit_interval) RefitIfStale();
}

void StreamingWaveletSelectivity::InsertBatch(std::span<const double> xs) {
  if (xs.empty()) return;
  insert_scratch_.clear();
  insert_scratch_.reserve(xs.size());
  for (double x : xs) {
    if (!std::isfinite(x)) continue;  // drop dirty input, as Insert does
    insert_scratch_.push_back(std::clamp(x, options_.domain_lo, options_.domain_hi));
  }
  // Feed the accumulator in chunks that end exactly where the scalar loop
  // would have refit, so the cached estimate goes through the same sequence
  // of (refit point, coefficient state) pairs as per-point insertion.
  std::span<const double> rest(insert_scratch_);
  while (!rest.empty()) {
    const size_t since_refit = fit_.count() - fitted_at_count_;
    const size_t until_refit =
        since_refit >= options_.refit_interval ? 1
                                               : options_.refit_interval - since_refit;
    const size_t chunk = std::min(until_refit, rest.size());
    fit_.AddBatch(rest.first(chunk));
    rest = rest.subspan(chunk);
    if (fit_.count() - fitted_at_count_ >= options_.refit_interval) RefitIfStale();
  }
}

void StreamingWaveletSelectivity::Refit() const {
  if (fit_.count() < 2) return;
  cv_ = core::CrossValidate(fit_.coefficients(), options_.kind);
  estimate_ = fit_.Estimate(cv_->Schedule(), options_.kind);
  fitted_at_count_ = fit_.count();
}

void StreamingWaveletSelectivity::RefitIfStale() const {
  if (!estimate_.has_value() ||
      fit_.count() - fitted_at_count_ >= options_.refit_interval) {
    Refit();
  }
}

double StreamingWaveletSelectivity::EstimateRangeImpl(double a, double b) const {
  if (fit_.count() < 2) return 0.0;
  RefitIfStale();
  if (!estimate_.has_value()) return 0.0;
  // Clamp to [0, 1]: the thresholded expansion is a near-density but not a
  // guaranteed one.
  return std::clamp(estimate_->IntegrateRange(a, b), 0.0, 1.0);
}

std::unique_ptr<SelectivityEstimator> StreamingWaveletSelectivity::CloneEmpty()
    const {
  Result<StreamingWaveletSelectivity> clone =
      Create(fit_.coefficients().basis(), options_);
  WDE_CHECK(clone.ok(), "options were valid at construction");
  return std::make_unique<StreamingWaveletSelectivity>(std::move(clone).value());
}

Status StreamingWaveletSelectivity::MergeFrom(const SelectivityEstimator& other) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const StreamingWaveletSelectivity&>(other);
  // Domain and threshold kind must agree (they shape what the merged sums
  // mean and how this sketch reconstructs from them); the coefficient merge
  // below checks the basis and level range. refit_interval is deliberately
  // NOT checked: it only paces this sketch's own staleness, so replicas may
  // run with refits disabled (huge interval) and still merge into a
  // normally-paced target — the recommended sharded-ingest configuration.
  if (options_.domain_lo != rhs.options_.domain_lo ||
      options_.domain_hi != rhs.options_.domain_hi ||
      options_.kind != rhs.options_.kind) {
    return Status::FailedPrecondition("MergeFrom: sketch options mismatch");
  }
  Status merged = fit_.Merge(rhs.fit_);
  if (!merged.ok()) return merged;
  // The cached estimate no longer reflects the sums; rebuild lazily from the
  // merged coefficients at the next query.
  estimate_.reset();
  cv_.reset();
  fitted_at_count_ = 0;
  return Status::OK();
}

void StreamingWaveletSelectivity::EstimateBatchImpl(
    std::span<const RangeQuery> queries, std::span<double> out) const {
  // The public wrapper guarantees matched spans, a non-empty batch (so the
  // refit below mirrors the scalar path) and normalized queries.
  if (fit_.count() < 2) {
    for (double& o : out) o = 0.0;
    return;
  }
  RefitIfStale();  // no inserts between queries: staleness is checked once
  if (!estimate_.has_value()) {
    for (double& o : out) o = 0.0;
    return;
  }
  std::vector<double> a(queries.size()), b(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    a[i] = queries[i].lo;
    b[i] = queries[i].hi;
  }
  estimate_->IntegrateRangeMany(a, b, out);
  for (double& o : out) o = std::clamp(o, 0.0, 1.0);
}

double StreamingWaveletSelectivity::EstimateDensity(double x) const {
  if (fit_.count() < 2) return 0.0;
  RefitIfStale();
  return estimate_.has_value() ? estimate_->Evaluate(x) : 0.0;
}

std::string StreamingWaveletSelectivity::name() const {
  return Format("wavelet-%scv(j0=%d,j*=%d)",
                options_.kind == core::ThresholdKind::kSoft ? "st" : "ht",
                options_.j0, options_.j_max);
}

}  // namespace selectivity
}  // namespace wde
