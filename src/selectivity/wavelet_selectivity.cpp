#include "selectivity/wavelet_selectivity.hpp"

#include <algorithm>
#include <cmath>

#include "memory/fast_state.hpp"
#include "util/string_util.hpp"
#include "wavelet/filter.hpp"

namespace wde {
namespace selectivity {

Result<StreamingWaveletSelectivity> StreamingWaveletSelectivity::Create(
    const wavelet::WaveletBasis& basis, const Options& options) {
  Result<core::WaveletDensityFit> fit = core::WaveletDensityFit::CreateStreaming(
      basis, options.j0, options.j_max, options.domain_lo, options.domain_hi);
  if (!fit.ok()) return fit.status();
  if (options.refit_interval == 0) {
    return Status::InvalidArgument("refit_interval must be positive");
  }
  return StreamingWaveletSelectivity(std::move(fit).value(), options);
}

void StreamingWaveletSelectivity::Insert(double x) {
  if (!std::isfinite(x)) return;
  fit_.Add(std::clamp(x, options_.domain_lo, options_.domain_hi));
  if (fit_.count() - fitted_at_count_ >= options_.refit_interval) RefitIfStale();
}

void StreamingWaveletSelectivity::InsertBatch(std::span<const double> xs) {
  if (xs.empty()) return;
  insert_scratch_.clear();
  insert_scratch_.reserve(xs.size());
  for (double x : xs) {
    if (!std::isfinite(x)) continue;  // drop dirty input, as Insert does
    insert_scratch_.push_back(std::clamp(x, options_.domain_lo, options_.domain_hi));
  }
  // Feed the accumulator in chunks that end exactly where the scalar loop
  // would have refit, so the cached estimate goes through the same sequence
  // of (refit point, coefficient state) pairs as per-point insertion.
  std::span<const double> rest(insert_scratch_);
  while (!rest.empty()) {
    const size_t since_refit = fit_.count() - fitted_at_count_;
    const size_t until_refit =
        since_refit >= options_.refit_interval ? 1
                                               : options_.refit_interval - since_refit;
    const size_t chunk = std::min(until_refit, rest.size());
    fit_.AddBatch(rest.first(chunk));
    rest = rest.subspan(chunk);
    if (fit_.count() - fitted_at_count_ >= options_.refit_interval) RefitIfStale();
  }
}

void StreamingWaveletSelectivity::Refit() const {
  if (fit_.count() < 2) return;
  // Every sum mutation (Add/AddBatch/Merge) advances count(), so an
  // unchanged count means unchanged sums and a bit-identical re-derivation:
  // skip it. This is what makes ForceRefit idempotent.
  if (estimate_.has_value() && cv_.has_value() &&
      fitted_at_count_ == fit_.count()) {
    return;
  }
  const core::CvStabilization stabilization =
      options_.kind == core::ThresholdKind::kHard
          ? core::CvStabilization::kUniversalFloor
          : core::CvStabilization::kNone;
  core::CvCache* cache = options_.refit_mode == RefitMode::kIncremental
                             ? &cv_cache_
                             : nullptr;
  cv_ = core::CrossValidate(fit_.coefficients(), options_.kind, stabilization,
                            cache);
  estimate_ = fit_.Estimate(cv_->Schedule(), options_.kind);
  fitted_at_count_ = fit_.count();
}

void StreamingWaveletSelectivity::RefitIfStale() const {
  if (!estimate_.has_value() ||
      fit_.count() - fitted_at_count_ >= options_.refit_interval) {
    Refit();
  }
}

double StreamingWaveletSelectivity::EstimateRangeImpl(double a, double b) const {
  if (fit_.count() < 2) return 0.0;
  RefitIfStale();
  if (!estimate_.has_value()) return 0.0;
  // Clamp to [0, 1]: the thresholded expansion is a near-density but not a
  // guaranteed one.
  return std::clamp(estimate_->IntegrateRange(a, b), 0.0, 1.0);
}

std::unique_ptr<SelectivityEstimator> StreamingWaveletSelectivity::CloneEmpty()
    const {
  Result<StreamingWaveletSelectivity> clone =
      Create(fit_.coefficients().basis(), options_);
  WDE_CHECK(clone.ok(), "options were valid at construction");
  return std::make_unique<StreamingWaveletSelectivity>(std::move(clone).value());
}

Status StreamingWaveletSelectivity::MergeFrom(const SelectivityEstimator& other) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const StreamingWaveletSelectivity&>(other);
  // Domain and threshold kind must agree (they shape what the merged sums
  // mean and how this sketch reconstructs from them); the coefficient merge
  // below checks the basis and level range. refit_interval is deliberately
  // NOT checked: it only paces this sketch's own staleness, so replicas may
  // run with refits disabled (huge interval) and still merge into a
  // normally-paced target — the recommended sharded-ingest configuration.
  if (options_.domain_lo != rhs.options_.domain_lo ||
      options_.domain_hi != rhs.options_.domain_hi ||
      options_.kind != rhs.options_.kind) {
    return Status::FailedPrecondition("MergeFrom: sketch options mismatch");
  }
  Status merged = fit_.Merge(rhs.fit_);
  if (!merged.ok()) return merged;
  // The cached estimate no longer reflects the sums; rebuild lazily from the
  // merged coefficients at the next query.
  estimate_.reset();
  cv_.reset();
  fitted_at_count_ = 0;
  return Status::OK();
}

void StreamingWaveletSelectivity::AnswerImpl(std::span<const Query> queries,
                                             std::span<double> out) const {
  // The public wrapper guarantees matched spans, a non-empty batch (so the
  // refit below mirrors the scalar path) and normalized queries.
  if (fit_.count() < 2) {
    // Matches the scalar lowering: every mass kind answers 0.0 through
    // EstimateRangeImpl's empty check, and quantiles answer 0.0 only when
    // count() == 0 — a 1-point sketch still bisects its (flat-zero) CDF.
    for (size_t i = 0; i < queries.size(); ++i) out[i] = AnswerOne(queries[i]);
    return;
  }
  RefitIfStale();  // no inserts between queries: staleness is checked once
  if (!estimate_.has_value()) {
    for (size_t i = 0; i < queries.size(); ++i) out[i] = AnswerOne(queries[i]);
    return;
  }
  // Lower every mass kind to range endpoints (Less/Cdf become signed-CDF
  // evaluations over (-inf, x], which the clamped antiderivative pass
  // handles exactly) and integrate the whole batch one level pass at a time;
  // quantiles run the shared bisection against the now-fresh estimate.
  std::vector<double> a, b, integrated;
  std::vector<size_t> position;
  a.reserve(queries.size());
  b.reserve(queries.size());
  position.reserve(queries.size());
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    if (q.kind == QueryKind::kQuantile) {
      out[i] = QuantileByBisection(q.a);
      continue;
    }
    if (q.kind == QueryKind::kRect || q.kind == QueryKind::kMarginal ||
        q.kind == QueryKind::kConditional) {
      // No range lowering exists for these; the shared multi-dim dispatch
      // (0.0 / axis-0 marginal for this 1-D estimator) is the contract.
      out[i] = AnswerOne(q);
      continue;
    }
    const RangeQuery r = LowerToRange(q);
    a.push_back(r.lo);
    b.push_back(r.hi);
    position.push_back(i);
  }
  if (position.empty()) return;
  integrated.resize(position.size());
  estimate_->IntegrateRangeMany(a, b, integrated);
  for (size_t j = 0; j < position.size(); ++j) {
    out[position[j]] = std::clamp(integrated[j], 0.0, 1.0);
  }
}

namespace {

Status SerializeCvResult(const core::CrossValidationResult& cv, io::Sink& sink) {
  WDE_RETURN_IF_ERROR(io::WriteU8(sink, static_cast<uint8_t>(cv.kind)));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, cv.j0));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, cv.j_star));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, cv.j1_hat));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, cv.levels.size()));
  for (const core::LevelCvResult& level : cv.levels) {
    WDE_RETURN_IF_ERROR(io::WriteI32(sink, level.j));
    WDE_RETURN_IF_ERROR(io::WriteDouble(sink, level.lambda_hat));
    WDE_RETURN_IF_ERROR(io::WriteDouble(sink, level.cv_value));
    WDE_RETURN_IF_ERROR(io::WriteI32(sink, level.kept));
    WDE_RETURN_IF_ERROR(io::WriteI32(sink, level.total));
    WDE_RETURN_IF_ERROR(io::WriteDouble(sink, level.max_magnitude));
  }
  return Status::OK();
}

Result<core::CrossValidationResult> DeserializeCvResult(io::Source& source) {
  core::CrossValidationResult cv;
  WDE_ASSIGN_OR_RETURN(const uint8_t kind, io::ReadU8(source));
  if (kind > 1) return Status::InvalidArgument("corrupt CV threshold kind");
  cv.kind = static_cast<core::ThresholdKind>(kind);
  WDE_ASSIGN_OR_RETURN(cv.j0, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(cv.j_star, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(cv.j1_hat, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t n_levels, io::ReadU64(source));
  if (n_levels > 64) return Status::InvalidArgument("corrupt CV level count");
  cv.levels.reserve(static_cast<size_t>(n_levels));
  for (uint64_t i = 0; i < n_levels; ++i) {
    core::LevelCvResult level;
    WDE_ASSIGN_OR_RETURN(level.j, io::ReadI32(source));
    WDE_ASSIGN_OR_RETURN(level.lambda_hat, io::ReadDouble(source));
    WDE_ASSIGN_OR_RETURN(level.cv_value, io::ReadDouble(source));
    WDE_ASSIGN_OR_RETURN(level.kept, io::ReadI32(source));
    WDE_ASSIGN_OR_RETURN(level.total, io::ReadI32(source));
    WDE_ASSIGN_OR_RETURN(level.max_magnitude, io::ReadDouble(source));
    cv.levels.push_back(level);
  }
  return cv;
}

}  // namespace

Status StreamingWaveletSelectivity::SaveStateImpl(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, options_.domain_lo));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, options_.domain_hi));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, options_.j0));
  WDE_RETURN_IF_ERROR(io::WriteI32(sink, options_.j_max));
  WDE_RETURN_IF_ERROR(io::WriteU8(sink, static_cast<uint8_t>(options_.kind)));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, options_.refit_interval));
  WDE_RETURN_IF_ERROR(fit_.Serialize(sink));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, fitted_at_count_));
  WDE_RETURN_IF_ERROR(io::WriteU8(sink, estimate_.has_value() ? 1 : 0));
  if (estimate_.has_value()) WDE_RETURN_IF_ERROR(estimate_->Serialize(sink));
  WDE_RETURN_IF_ERROR(io::WriteU8(sink, cv_.has_value() ? 1 : 0));
  if (cv_.has_value()) WDE_RETURN_IF_ERROR(SerializeCvResult(*cv_, sink));
  return Status::OK();
}

Status StreamingWaveletSelectivity::LoadStateImpl(io::Source& source) {
  Options options;
  WDE_ASSIGN_OR_RETURN(options.domain_lo, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(options.domain_hi, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(options.j0, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(options.j_max, io::ReadI32(source));
  WDE_ASSIGN_OR_RETURN(const uint8_t kind, io::ReadU8(source));
  WDE_ASSIGN_OR_RETURN(options.refit_interval, io::ReadU64(source));
  if (!std::isfinite(options.domain_lo) || !std::isfinite(options.domain_hi) ||
      !(options.domain_lo < options.domain_hi) || kind > 1 ||
      options.refit_interval == 0) {
    return Status::InvalidArgument("corrupt wavelet sketch options");
  }
  options.kind = static_cast<core::ThresholdKind>(kind);
  Result<core::WaveletDensityFit> fit = core::WaveletDensityFit::Deserialize(source);
  if (!fit.ok()) return fit.status();
  if (fit->domain_lo() != options.domain_lo ||
      fit->domain_hi() != options.domain_hi ||
      fit->coefficients().j0() != options.j0 ||
      fit->coefficients().j_max() != options.j_max) {
    return Status::InvalidArgument(
        "corrupt wavelet sketch: options disagree with fit");
  }
  WDE_ASSIGN_OR_RETURN(const uint64_t fitted_at_count, io::ReadU64(source));
  if (fitted_at_count > fit->count()) {
    return Status::InvalidArgument("corrupt wavelet sketch fit point");
  }
  WDE_ASSIGN_OR_RETURN(const uint8_t has_estimate, io::ReadU8(source));
  std::optional<core::WaveletEstimate> estimate;
  if (has_estimate != 0) {
    Result<core::WaveletEstimate> loaded =
        core::WaveletEstimate::Deserialize(fit->coefficients().basis(), source);
    if (!loaded.ok()) return loaded.status();
    estimate = std::move(loaded).value();
  }
  WDE_ASSIGN_OR_RETURN(const uint8_t has_cv, io::ReadU8(source));
  std::optional<core::CrossValidationResult> cv;
  if (has_cv != 0) {
    Result<core::CrossValidationResult> loaded = DeserializeCvResult(source);
    if (!loaded.ok()) return loaded.status();
    cv = std::move(loaded).value();
  }
  if (source.remaining() != 0) {
    return Status::InvalidArgument("corrupt wavelet sketch snapshot: trailing bytes");
  }
  options.refit_mode = options_.refit_mode;  // pacing knob, never serialized
  options_ = options;
  fit_ = std::move(fit).value();
  fitted_at_count_ = static_cast<size_t>(fitted_at_count);
  estimate_ = std::move(estimate);
  cv_ = std::move(cv);
  cv_cache_ = core::CvCache{};  // cold start: the first refit re-ranks fully
  insert_scratch_.clear();
  return Status::OK();
}

Status StreamingWaveletSelectivity::SaveFastStateImpl(
    memory::FastStateWriter& writer) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.domain_lo));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.domain_hi));
  WDE_RETURN_IF_ERROR(io::WriteI32(writer.head(), options_.j0));
  WDE_RETURN_IF_ERROR(io::WriteI32(writer.head(), options_.j_max));
  WDE_RETURN_IF_ERROR(
      io::WriteU8(writer.head(), static_cast<uint8_t>(options_.kind)));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), options_.refit_interval));
  const wavelet::WaveletBasis& basis = fit_.coefficients().basis();
  WDE_RETURN_IF_ERROR(io::WriteString(writer.head(), basis.filter().name()));
  WDE_RETURN_IF_ERROR(
      io::WriteU32(writer.head(), static_cast<uint32_t>(basis.table_levels())));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), fit_.count()));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), fitted_at_count_));
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), estimate_.has_value() ? 1 : 0));
  if (estimate_.has_value()) {
    WDE_RETURN_IF_ERROR(estimate_->Serialize(writer.head()));
  }
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), cv_.has_value() ? 1 : 0));
  if (cv_.has_value()) {
    WDE_RETURN_IF_ERROR(SerializeCvResult(*cv_, writer.head()));
  }
  // Columns 0-3: the cascade-product tables, so restore never reruns the
  // cascade. Columns 4+: the (S1, S2) running sums, scaling level first,
  // then each detail level in order.
  writer.AddF64(basis.phi_table());
  writer.AddF64(basis.psi_table());
  writer.AddF64(basis.phi_cdf_table());
  writer.AddF64(basis.psi_cdf_table());
  const core::EmpiricalCoefficients& coeffs = fit_.coefficients();
  writer.AddF64(coeffs.scaling_level().s1);
  writer.AddF64(coeffs.scaling_level().s2);
  for (int j = coeffs.j0(); j <= coeffs.j_max(); ++j) {
    writer.AddF64(coeffs.detail_level(j).s1);
    writer.AddF64(coeffs.detail_level(j).s2);
  }
  return Status::OK();
}

Status StreamingWaveletSelectivity::LoadFastStateImpl(
    memory::FastStateReader& reader) {
  Options options;
  WDE_ASSIGN_OR_RETURN(options.domain_lo, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.domain_hi, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.j0, io::ReadI32(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.j_max, io::ReadI32(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint8_t kind, io::ReadU8(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.refit_interval, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const std::string filter_name,
                       io::ReadString(reader.head(), 64));
  WDE_ASSIGN_OR_RETURN(const uint32_t table_levels, io::ReadU32(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t count, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t fitted_at_count, io::ReadU64(reader.head()));
  if (!std::isfinite(options.domain_lo) || !std::isfinite(options.domain_hi) ||
      !(options.domain_lo < options.domain_hi) || kind > 1 ||
      options.refit_interval == 0 || options.j0 < 0 ||
      options.j_max < options.j0 || options.j_max > 26 || table_levels < 1 ||
      table_levels > 20 || fitted_at_count > count) {
    return Status::InvalidArgument("corrupt wavelet sketch fast state");
  }
  options.kind = static_cast<core::ThresholdKind>(kind);
  // Column geometry: 4 basis tables + (S1, S2) per level (scaling + each
  // detail level). Kinds are checked by hand before any typed access; the
  // table and sum sizes are re-validated by FromTables / RestoreSums.
  const size_t n_sum_columns =
      2 * (static_cast<size_t>(options.j_max - options.j0) + 2);
  const memory::Arena& arena = reader.arena();
  if (arena.num_columns() != 4 + n_sum_columns) {
    return Status::InvalidArgument("corrupt wavelet sketch fast state columns");
  }
  for (const memory::ColumnDesc& column : arena.columns()) {
    if (column.kind != memory::ColumnKind::kF64) {
      return Status::InvalidArgument("corrupt wavelet sketch fast state columns");
    }
  }
  WDE_ASSIGN_OR_RETURN(const wavelet::WaveletFilter filter,
                       wavelet::WaveletFilter::FromName(filter_name));
  WDE_ASSIGN_OR_RETURN(
      const wavelet::WaveletBasis basis,
      wavelet::WaveletBasis::FromTables(
          filter, static_cast<int>(table_levels), arena.F64(0), arena.F64(1),
          arena.F64(2), arena.F64(3), arena.storage_keepalive()));
  std::vector<std::span<const double>> sums;
  sums.reserve(n_sum_columns);
  for (size_t i = 0; i < n_sum_columns; ++i) sums.push_back(arena.F64(4 + i));
  WDE_ASSIGN_OR_RETURN(
      core::WaveletDensityFit fit,
      core::WaveletDensityFit::FromRestoredSums(
          basis, options.j0, options.j_max, options.domain_lo,
          options.domain_hi, count, sums));
  WDE_ASSIGN_OR_RETURN(const uint8_t has_estimate, io::ReadU8(reader.head()));
  if (has_estimate > 1) {
    return Status::InvalidArgument("corrupt wavelet sketch fast state");
  }
  std::optional<core::WaveletEstimate> estimate;
  if (has_estimate != 0) {
    WDE_ASSIGN_OR_RETURN(estimate, core::WaveletEstimate::Deserialize(
                                       fit.coefficients().basis(), reader.head()));
  }
  WDE_ASSIGN_OR_RETURN(const uint8_t has_cv, io::ReadU8(reader.head()));
  if (has_cv > 1) {
    return Status::InvalidArgument("corrupt wavelet sketch fast state");
  }
  std::optional<core::CrossValidationResult> cv;
  if (has_cv != 0) {
    WDE_ASSIGN_OR_RETURN(cv, DeserializeCvResult(reader.head()));
  }
  if (reader.head().remaining() != 0) {
    return Status::InvalidArgument(
        "corrupt wavelet sketch fast state: trailing bytes");
  }
  options.refit_mode = options_.refit_mode;  // pacing knob, never serialized
  options_ = options;
  fit_ = std::move(fit);
  fitted_at_count_ = static_cast<size_t>(fitted_at_count);
  estimate_ = std::move(estimate);
  cv_ = std::move(cv);
  cv_cache_ = core::CvCache{};  // cold start: the first refit re-ranks fully
  insert_scratch_.clear();
  return Status::OK();
}

double StreamingWaveletSelectivity::EstimateDensity(double x) const {
  if (fit_.count() < 2) return 0.0;
  RefitIfStale();
  return estimate_.has_value() ? estimate_->Evaluate(x) : 0.0;
}

std::string StreamingWaveletSelectivity::name() const {
  return Format("wavelet-%scv(j0=%d,j*=%d)",
                options_.kind == core::ThresholdKind::kSoft ? "st" : "ht",
                options_.j0, options_.j_max);
}

}  // namespace selectivity
}  // namespace wde
