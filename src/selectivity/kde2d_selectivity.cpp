#include "selectivity/kde2d_selectivity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "kernel/bandwidth.hpp"
#include "memory/fast_state.hpp"
#include "multidim/prod_kde2d.hpp"
#include "util/check.hpp"

namespace wde {
namespace selectivity {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
/// Below this many observations the exact-fraction fallback answers (the
/// same threshold as the 1-D KDE's refit guard).
constexpr size_t kMinFitSample = 4;
/// Pilot grid resolution for the adaptive factors: 32 × 32.
constexpr int kPilotLog2 = 5;
/// Least-squares CV runs on at most this many evenly strided sorted points;
/// the result rescales to the full sample by (m/n)^{1/5}.
constexpr size_t kCvSubsampleCap = 512;

/// CV-refined bandwidth off an ascending-sorted coordinate array: LSCV over
/// an evenly strided subsample (deterministic indices (j·n)/m, ascending,
/// so the subsample is itself sorted), rescaled by the n^{-1/5} bandwidth
/// law. Falls back to `rot` when the CV answer degenerates.
double CvRefinedBandwidth(const kernel::Kernel& kernel,
                          std::span<const double> sorted, double rot) {
  const size_t n = sorted.size();
  const size_t m = std::min(n, kCvSubsampleCap);
  std::vector<double> sub(m);
  for (size_t j = 0; j < m; ++j) sub[j] = sorted[j * n / m];
  const double cv = kernel::LeastSquaresCvBandwidth(kernel, sub);
  if (!std::isfinite(cv) || !(cv > 0.0)) return rot;
  return cv * std::pow(static_cast<double>(m) / static_cast<double>(n), 0.2);
}

}  // namespace

Kde2dSelectivity::Kde2dSelectivity(const Options& options)
    : options_(options), kernel_(kernel::KernelType::kEpanechnikov) {
  WDE_CHECK_LT(options.domain_lo0, options.domain_hi0);
  WDE_CHECK_LT(options.domain_lo1, options.domain_hi1);
  WDE_CHECK_GT(options.refit_interval, 0u);
}

void Kde2dSelectivity::Insert(double x) {
  if (!have_pending_) {
    // First coordinate: buffer raw — even non-finite, or the interleave
    // parity would shift and pair later coordinates wrongly.
    pending_ = x;
    have_pending_ = true;
    return;
  }
  const double px = pending_;
  have_pending_ = false;
  if (!std::isfinite(px) || !std::isfinite(x)) return;  // drop the whole point
  xs_.push_back(std::clamp(px, options_.domain_lo0, options_.domain_hi0));
  ys_.push_back(std::clamp(x, options_.domain_lo1, options_.domain_hi1));
}

void Kde2dSelectivity::RefitIfStale() const {
  if (xs_.size() < kMinFitSample) return;
  if (fitted_.has_value() &&
      xs_.size() - fitted_at_count_ < options_.refit_interval) {
    return;
  }
  Refit();
}

void Kde2dSelectivity::ForceRefitImpl() const {
  if (xs_.size() < kMinFitSample) return;
  if (fitted_.has_value() && fitted_at_count_ == xs_.size()) return;
  Refit();
}

void Kde2dSelectivity::Refit() const {
  const bool incremental = options_.refit_mode == RefitMode::kIncremental &&
                           fitted_.has_value() &&
                           fitted_->n == fitted_at_count_ &&
                           fitted_at_count_ <= xs_.size();
  std::optional<Fitted> fit =
      BuildFit(xs_.size(), incremental ? &*fitted_ : nullptr);
  if (fit.has_value()) {
    fitted_ = std::move(fit);
    fitted_at_count_ = xs_.size();
  }
}

std::optional<Kde2dSelectivity::Fitted> Kde2dSelectivity::BuildFit(
    size_t fit_n, const Fitted* prev) const {
  // Every fit builds a NEW arena: the previous fitted columns may be shared
  // with CloneForView copies or borrowed zero-copy from a snapshot arena.
  const memory::ColumnSpec specs[] = {{memory::ColumnKind::kF64, fit_n},
                                      {memory::ColumnKind::kF64, fit_n},
                                      {memory::ColumnKind::kF64, fit_n},
                                      {memory::ColumnKind::kF64, fit_n}};
  memory::Arena arena = memory::Arena::Create(specs);
  const std::span<double> sx = arena.MutableF64(0);
  const std::span<double> sy = arena.MutableF64(1);
  const std::span<double> ty = arena.MutableF64(2);
  const std::span<double> lambdas = arena.MutableF64(3);
  if (prev != nullptr && prev->n <= fit_n) {
    // The previous fitted arrays are the sorted permutations of the
    // observation prefix [0, prev->n) (the buffers only ever append): copy
    // them, append the unfitted tail, sort only the tail, one stable merge.
    std::copy(prev->sx().begin(), prev->sx().end(), sx.begin());
    std::copy(prev->sy().begin(), prev->sy().end(), sy.begin());
    std::copy(xs_.begin() + static_cast<ptrdiff_t>(prev->n),
              xs_.begin() + static_cast<ptrdiff_t>(fit_n),
              sx.begin() + static_cast<ptrdiff_t>(prev->n));
    std::copy(ys_.begin() + static_cast<ptrdiff_t>(prev->n),
              ys_.begin() + static_cast<ptrdiff_t>(fit_n),
              sy.begin() + static_cast<ptrdiff_t>(prev->n));
    multidim::MergeSortedTailLex(sx, sy, prev->n);
    std::copy(prev->ty().begin(), prev->ty().end(), ty.begin());
    std::copy(ys_.begin() + static_cast<ptrdiff_t>(prev->n),
              ys_.begin() + static_cast<ptrdiff_t>(fit_n),
              ty.begin() + static_cast<ptrdiff_t>(prev->n));
    const auto mid = ty.begin() + static_cast<ptrdiff_t>(prev->n);
    std::sort(mid, ty.end());
    std::inplace_merge(ty.begin(), mid, ty.end());
  } else {
    std::copy(xs_.begin(), xs_.begin() + static_cast<ptrdiff_t>(fit_n),
              sx.begin());
    std::copy(ys_.begin(), ys_.begin() + static_cast<ptrdiff_t>(fit_n),
              sy.begin());
    multidim::SortPointsLex(sx, sy);
    std::copy(ys_.begin(), ys_.begin() + static_cast<ptrdiff_t>(fit_n),
              ty.begin());
    std::sort(ty.begin(), ty.end());
  }
  // Bandwidths from sorted order statistics (sx is ascending in x by lex
  // order; ty is the sorted axis-1 shadow): bitwise-reproducible from the
  // sorted multiset alone, so both refit modes — and the snapshot-restore
  // re-fit — derive identical values.
  double hx = kernel::RuleOfThumbBandwidthSorted(sx);
  double hy = kernel::RuleOfThumbBandwidthSorted(ty);
  if (options_.cv_bandwidths && fit_n >= 16) {
    hx = CvRefinedBandwidth(kernel_, sx, hx);
    hy = CvRefinedBandwidth(kernel_, ty, hy);
  }
  if (!std::isfinite(hx) || !(hx > 0.0) || !std::isfinite(hy) || !(hy > 0.0)) {
    return std::nullopt;  // degenerate sample; keep the previous fit/fallback
  }
  Fitted fit;
  fit.lambda_max = multidim::AdaptiveLambdas(
      sx, sy, options_.domain_lo0, options_.domain_hi0, options_.domain_lo1,
      options_.domain_hi1, options_.alpha, kPilotLog2, lambdas);
  fit.arena = std::move(arena);
  fit.col0 = 0;
  fit.n = fit_n;
  fit.hx = hx;
  fit.hy = hy;
  return fit;
}

double Kde2dSelectivity::EstimateRectImpl(double lo0, double hi0, double lo1,
                                          double hi1) const {
  RefitIfStale();
  if (!fitted_.has_value()) {
    // Tiny-sample (or degenerate-bandwidth) fallback: exact fraction of the
    // buffered observations inside the rectangle.
    if (xs_.empty()) return 0.0;
    size_t hits = 0;
    for (size_t i = 0; i < xs_.size(); ++i) {
      if (xs_[i] >= lo0 && xs_[i] <= hi0 && ys_[i] >= lo1 && ys_[i] <= hi1) {
        ++hits;
      }
    }
    return static_cast<double>(hits) / static_cast<double>(xs_.size());
  }
  // Scratch lives on this call's stack: concurrent readers over one fitted
  // state (the sharded engine fans batch chunks across threads) never share
  // mutable buffers.
  multidim::ProdKde2dScratch scratch;
  const double sum = multidim::ProdKde2dRectSum(
      kernel_, fitted_->sx(), fitted_->sy(), fitted_->lambdas(), fitted_->hx,
      fitted_->hy, fitted_->lambda_max, lo0, hi0, lo1, hi1, scratch);
  return std::clamp(sum / static_cast<double>(fitted_->n), 0.0, 1.0);
}

double Kde2dSelectivity::EstimateRangeImpl(double a, double b) const {
  // The axis-0 marginal IS the range primitive of a 2-D estimator.
  return EstimateRectImpl(a, b, -kInf, kInf);
}

std::unique_ptr<SelectivityEstimator> Kde2dSelectivity::CloneEmpty() const {
  return std::make_unique<Kde2dSelectivity>(options_);
}

Status Kde2dSelectivity::MergeFrom(const SelectivityEstimator& other) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const Kde2dSelectivity&>(other);
  // refit_interval/refit_mode pace only the owner's staleness; domains, α
  // and the CV flag shape answers and must match.
  if (options_.domain_lo0 != rhs.options_.domain_lo0 ||
      options_.domain_hi0 != rhs.options_.domain_hi0 ||
      options_.domain_lo1 != rhs.options_.domain_lo1 ||
      options_.domain_hi1 != rhs.options_.domain_hi1 ||
      options_.alpha != rhs.options_.alpha ||
      options_.cv_bandwidths != rhs.options_.cv_bandwidths) {
    return Status::FailedPrecondition("MergeFrom: kde2d options mismatch");
  }
  xs_.insert(xs_.end(), rhs.xs_.begin(), rhs.xs_.end());
  ys_.insert(ys_.end(), rhs.ys_.begin(), rhs.ys_.end());
  fitted_.reset();  // refit from the merged buffers at the next query
  fitted_at_count_ = 0;
  return Status::OK();
}

Status Kde2dSelectivity::MergeTailFrom(const SelectivityEstimator& other,
                                       size_t from_count) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const Kde2dSelectivity&>(other);
  if (options_.domain_lo0 != rhs.options_.domain_lo0 ||
      options_.domain_hi0 != rhs.options_.domain_hi0 ||
      options_.domain_lo1 != rhs.options_.domain_lo1 ||
      options_.domain_hi1 != rhs.options_.domain_hi1 ||
      options_.alpha != rhs.options_.alpha ||
      options_.cv_bandwidths != rhs.options_.cv_bandwidths) {
    return Status::FailedPrecondition("MergeTailFrom: kde2d options mismatch");
  }
  if (from_count > rhs.xs_.size()) {
    return Status::InvalidArgument("MergeTailFrom: from_count past peer count");
  }
  // Append only the peer's tail observations; the fitted state stays
  // (stale) so the next refit delta-merges instead of rebuilding.
  xs_.insert(xs_.end(), rhs.xs_.begin() + static_cast<ptrdiff_t>(from_count),
             rhs.xs_.end());
  ys_.insert(ys_.end(), rhs.ys_.begin() + static_cast<ptrdiff_t>(from_count),
             rhs.ys_.end());
  return Status::OK();
}

Status Kde2dSelectivity::SaveStateImpl(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, options_.domain_lo0));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, options_.domain_hi0));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, options_.domain_lo1));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, options_.domain_hi1));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, options_.refit_interval));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, options_.alpha));
  WDE_RETURN_IF_ERROR(io::WriteU8(sink, options_.cv_bandwidths ? 1 : 0));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, fitted_at_count_));
  WDE_RETURN_IF_ERROR(io::WriteU8(sink, have_pending_ ? 1 : 0));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, pending_));
  WDE_RETURN_IF_ERROR(io::WriteDoubleVector(sink, xs_));
  return io::WriteDoubleVector(sink, ys_);
}

Status Kde2dSelectivity::LoadStateImpl(io::Source& source) {
  Options options;
  WDE_ASSIGN_OR_RETURN(options.domain_lo0, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(options.domain_hi0, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(options.domain_lo1, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(options.domain_hi1, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(options.refit_interval, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(options.alpha, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(const uint8_t cv, io::ReadU8(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t fitted_at_count, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(const uint8_t have_pending, io::ReadU8(source));
  WDE_ASSIGN_OR_RETURN(const double pending, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(std::vector<double> xs, io::ReadDoubleVector(source));
  WDE_ASSIGN_OR_RETURN(std::vector<double> ys, io::ReadDoubleVector(source));
  if (!std::isfinite(options.domain_lo0) || !std::isfinite(options.domain_hi0) ||
      !(options.domain_lo0 < options.domain_hi0) ||
      !std::isfinite(options.domain_lo1) || !std::isfinite(options.domain_hi1) ||
      !(options.domain_lo1 < options.domain_hi1) ||
      options.refit_interval == 0 || !std::isfinite(options.alpha) ||
      options.alpha < 0.0 || options.alpha > 1.0 || cv > 1 ||
      have_pending > 1 || xs.size() != ys.size() ||
      fitted_at_count > xs.size() || source.remaining() != 0) {
    return Status::InvalidArgument("corrupt kde2d snapshot");
  }
  options.cv_bandwidths = cv != 0;
  options.refit_mode = options_.refit_mode;  // pacing knob, never serialized
  options_ = options;
  xs_ = std::move(xs);
  ys_ = std::move(ys);
  have_pending_ = have_pending != 0;
  pending_ = pending;
  fitted_.reset();
  fitted_at_count_ = 0;
  // Re-fit over the prefix the saved estimator had fitted on: the fit is a
  // deterministic function of the prefix multiset, and the saved
  // fitted_at_count only ever advances on a successful (non-degenerate)
  // fit, so this reproduces the saved fitted state — bandwidths, adaptive
  // factors and all — bit-exactly.
  if (fitted_at_count >= kMinFitSample) {
    std::optional<Fitted> fit =
        BuildFit(static_cast<size_t>(fitted_at_count), nullptr);
    if (fit.has_value()) {
      fitted_ = std::move(fit);
      fitted_at_count_ = static_cast<size_t>(fitted_at_count);
    }
  }
  return Status::OK();
}

Status Kde2dSelectivity::SaveFastStateImpl(memory::FastStateWriter& writer) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.domain_lo0));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.domain_hi0));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.domain_lo1));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.domain_hi1));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), options_.refit_interval));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.alpha));
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), options_.cv_bandwidths ? 1 : 0));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), fitted_at_count_));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), xs_.size()));
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), have_pending_ ? 1 : 0));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), pending_));
  const bool has_fit = fitted_.has_value();
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), has_fit ? 1 : 0));
  writer.AddF64(xs_);
  writer.AddF64(ys_);
  if (has_fit) {
    // The fitted columns plus both bandwidths: restore adopts everything
    // verbatim instead of re-sorting and re-deriving (λ_max is re-derived —
    // one max over the λ column — rather than trusted from the wire).
    WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), fitted_->hx));
    WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), fitted_->hy));
    writer.AddF64(fitted_->sx());
    writer.AddF64(fitted_->sy());
    writer.AddF64(fitted_->ty());
    writer.AddF64(fitted_->lambdas());
  }
  return Status::OK();
}

Status Kde2dSelectivity::LoadFastStateImpl(memory::FastStateReader& reader) {
  Options options;
  WDE_ASSIGN_OR_RETURN(options.domain_lo0, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.domain_hi0, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.domain_lo1, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.domain_hi1, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.refit_interval, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.alpha, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint8_t cv, io::ReadU8(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t fitted_at, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t n_values, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint8_t have_pending, io::ReadU8(reader.head()));
  WDE_ASSIGN_OR_RETURN(const double pending, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint8_t has_fit, io::ReadU8(reader.head()));
  double hx = 0.0;
  double hy = 0.0;
  if (has_fit == 1) {
    WDE_ASSIGN_OR_RETURN(hx, io::ReadDouble(reader.head()));
    WDE_ASSIGN_OR_RETURN(hy, io::ReadDouble(reader.head()));
  }
  std::vector<memory::ColumnSpec> expected = {
      {memory::ColumnKind::kF64, static_cast<size_t>(n_values)},
      {memory::ColumnKind::kF64, static_cast<size_t>(n_values)}};
  if (has_fit == 1) {
    for (int c = 0; c < 4; ++c) {
      expected.push_back(
          {memory::ColumnKind::kF64, static_cast<size_t>(fitted_at)});
    }
  }
  if (!std::isfinite(options.domain_lo0) || !std::isfinite(options.domain_hi0) ||
      !(options.domain_lo0 < options.domain_hi0) ||
      !std::isfinite(options.domain_lo1) || !std::isfinite(options.domain_hi1) ||
      !(options.domain_lo1 < options.domain_hi1) ||
      options.refit_interval == 0 || !std::isfinite(options.alpha) ||
      options.alpha < 0.0 || options.alpha > 1.0 || cv > 1 ||
      have_pending > 1 || has_fit > 1 || fitted_at > n_values ||
      (has_fit == 1 && fitted_at < kMinFitSample) ||
      (has_fit == 1 &&
       !(std::isfinite(hx) && hx > 0.0 && std::isfinite(hy) && hy > 0.0)) ||
      reader.head().remaining() != 0 ||
      !memory::ColumnsMatch(reader.arena(), expected)) {
    return Status::InvalidArgument("corrupt kde2d fast state");
  }
  double lambda_max = 1.0;
  if (has_fit == 1) {
    // The fitted columns are consumed by binary search (sx), the bandwidth
    // rule (ty) and per-point scaling (λ): hostile orderings or non-finite
    // entries must be rejected, not served.
    const std::span<const double> sx = reader.arena().F64(2);
    const std::span<const double> sy = reader.arena().F64(3);
    const std::span<const double> ty = reader.arena().F64(4);
    const std::span<const double> lambdas = reader.arena().F64(5);
    if (!multidim::IsLexSorted(sx, sy)) {
      return Status::InvalidArgument("corrupt kde2d fitted columns");
    }
    lambda_max = 0.0;
    for (size_t i = 0; i < ty.size(); ++i) {
      if (!std::isfinite(ty[i]) || (i > 0 && ty[i] < ty[i - 1]) ||
          !std::isfinite(lambdas[i]) || !(lambdas[i] > 0.0)) {
        return Status::InvalidArgument("corrupt kde2d fitted columns");
      }
      lambda_max = std::max(lambda_max, lambdas[i]);
    }
  }
  const std::span<const double> xs = reader.arena().F64(0);
  const std::span<const double> ys = reader.arena().F64(1);
  options.cv_bandwidths = cv != 0;
  options.refit_mode = options_.refit_mode;  // pacing knob, never serialized
  options_ = options;
  xs_.assign(xs.begin(), xs.end());
  ys_.assign(ys.begin(), ys.end());
  have_pending_ = have_pending != 0;
  pending_ = pending;
  if (has_fit == 1) {
    // Adopt the fitted columns in place (columns 2..5 of the parsed arena) —
    // borrowed zero-copy from an mmapped image; refits build new arenas, so
    // the mapping is never written through.
    Fitted fit;
    fit.arena = std::move(reader.arena());
    fit.col0 = 2;
    fit.n = static_cast<size_t>(fitted_at);
    fit.hx = hx;
    fit.hy = hy;
    fit.lambda_max = lambda_max;
    fitted_ = std::move(fit);
    fitted_at_count_ = static_cast<size_t>(fitted_at);
  } else {
    fitted_.reset();
    fitted_at_count_ = 0;
  }
  return Status::OK();
}

}  // namespace selectivity
}  // namespace wde
