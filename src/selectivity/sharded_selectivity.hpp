#ifndef WDE_SELECTIVITY_SHARDED_SELECTIVITY_HPP_
#define WDE_SELECTIVITY_SHARDED_SELECTIVITY_HPP_

#include <memory>
#include <vector>

#include "parallel/thread_pool.hpp"
#include "selectivity/selectivity_estimator.hpp"
#include "util/result.hpp"

namespace wde {
namespace selectivity {

/// Sharded parallel ingest over any mergeable SelectivityEstimator: K replica
/// estimators (built with the prototype's CloneEmpty) each own a deterministic
/// slice of the stream, batch inserts fan out across the replicas on a
/// ThreadPool, and queries are answered from a lazily refreshed merged view —
/// delta-appended from per-replica high-water marks by default, rebuilt from
/// zero under Options::refit_mode == kScratch (see Options).
///
/// Partitioning rule: stream position p (the running count of values offered,
/// including dropped non-finite ones) maps to shard (p / block_size) mod K —
/// contiguous blocks, round-robin across shards. The rule is a pure function
/// of (K, block_size, stream position), NOT of the thread count or schedule,
/// and each shard replica is touched by exactly one task per batch, so for a
/// fixed K the entire estimator state — and every query answer — is
/// bit-identical across runs, thread counts and pool sizes. Merging replicas
/// reorders floating-point accumulation relative to the sequential estimator,
/// so merged answers match a sequential estimator over the same stream
/// exactly for integer-count state and to ~1e-12 relative for running-sum
/// state (see the interface's mergeability contract).
///
/// Like every estimator, the wrapper is single-writer/single-reader; the
/// parallelism is internal to InsertBatch.
class ShardedSelectivityEstimator : public SelectivityEstimator {
 public:
  struct Options {
    /// Number of shard replicas K (>= 1).
    size_t shards = 4;
    /// Contiguous stream positions per block (>= 1). Larger blocks amortize
    /// per-chunk dispatch; smaller blocks balance skewed batch sizes.
    size_t block_size = 4096;
    /// Executor for the per-shard ingest tasks; nullptr uses
    /// parallel::ThreadPool::Shared(). The pool choice affects scheduling
    /// only, never results.
    parallel::ThreadPool* pool = nullptr;
    /// The merged query view is rebuilt once at least this many values
    /// (>= 1) arrived since it was last built. The default 1 rebuilds
    /// whenever any insert intervened — always-fresh answers, but a
    /// CloneEmpty + K MergeFrom rebuild per insert/query alternation. For
    /// interleaved workloads set this to the prototype's refit cadence:
    /// queries then answer from a view at most merge_refresh_interval - 1
    /// values stale, exactly like the sequential sketch between refits.
    /// Staleness depends only on stream positions, so determinism is
    /// unaffected.
    size_t merge_refresh_interval = 1;
    /// kScratch rebuilds the stale merged view from zero every time:
    /// CloneEmpty + K full MergeFrom — O(total data) per refresh. With
    /// kIncremental (the default) the engine tracks a per-replica high-water
    /// mark (the replica count folded into the current view) and, when the
    /// inner type supports MergeTailFrom, refreshes the existing view by
    /// appending only each replica's delta and force-refitting once —
    /// O(view + Δ log Δ) instead of O(n log n). Types without tail merges
    /// (additive-sum sketches, where a full re-merge is already O(state))
    /// fall back to the scratch rebuild. Answers are bitwise-identical in
    /// both modes (refit_equivalence_test).
    RefitMode refit_mode = RefitMode::kIncremental;
  };

  /// Builds K empty replicas of `prototype` (which contributes configuration
  /// only, not data). Fails if the prototype does not support merging or the
  /// options are degenerate.
  ///
  /// Replicas are exact clones, so a prototype with periodic refits (e.g.
  /// the wavelet sketch's refit_interval) runs those refits inside every
  /// shard even though queries read only the merged view. For pure sharded
  /// ingest, disable the prototype's refit cadence (huge refit_interval) —
  /// the merged view refits on demand after each rebuild regardless — and
  /// pace answer freshness with merge_refresh_interval instead.
  static Result<ShardedSelectivityEstimator> Create(
      const SelectivityEstimator& prototype, const Options& options);

  /// Routes one value to the shard owning the current stream position.
  void Insert(double x) override;

  /// Splits the batch at block boundaries, hands each shard its chunks in
  /// stream order, and runs the K shard-ingest tasks on the pool. Empty
  /// spans are a no-op.
  void InsertBatch(std::span<const double> xs) override;

  /// Sum of the shard counts (values retained, not positions offered).
  size_t count() const override;
  std::string name() const override;

  /// Query semantics are the prototype's: resolution and domain forward to
  /// the configuration keeper, so a sharded estimator lowers point and
  /// quantile queries exactly like its underlying type.
  double EqualityWidth() const override { return prototype_->EqualityWidth(); }
  RangeQuery Domain() const override { return prototype_->Domain(); }
  /// A sharded multi-dimensional estimator is itself multi-dimensional:
  /// Create() requires block_size % dims == 0, so blocks begin at observation
  /// boundaries and the interleaved coordinates of one observation always
  /// land in the same shard.
  int dims() const override { return prototype_->dims(); }

  /// Sharded estimators merge shard-wise with a sharded estimator of the
  /// same K/block size and compatible replicas — the distributed-node merge
  /// path.
  std::unique_ptr<SelectivityEstimator> CloneEmpty() const override;
  Status MergeFrom(const SelectivityEstimator& other) override;
  WDE_SELECTIVITY_MERGE_TAG()
  const char* snapshot_type_tag() const override { return "sharded"; }

  /// Writes a whole-file snapshot of this engine — partition metadata
  /// (K, block size, refresh cadence, stream position) plus one nested
  /// envelope per shard replica and the merged query view when present — so
  /// an ingest node can persist its state and a restart (or another process)
  /// can Restore() and continue ingesting at the exact stream position, with
  /// bit-identical answers.
  Status Checkpoint(const std::string& path) const;

  /// Restores a checkpoint written by Checkpoint(): fully replaces shard
  /// layout and state (the executor pool is a runtime resource and is kept).
  /// On any error this estimator is untouched.
  ///
  /// A paced merged view never crosses a restore boundary: when the
  /// checkpoint's view predates pending inserts (it was stale within the
  /// merge_refresh_interval budget when saved), the restored engine discards
  /// it and rebuilds from the replicas on first query, so a restart can only
  /// tighten staleness, never extend a stale view's lifetime into the new
  /// process. This is the one deliberate carve-out from bit-identical
  /// restore: it changes answers only in the mid-pacing-window case, and
  /// only to the fresher answers a rebuild gives.
  Status Restore(const std::string& path);

  size_t shards() const { return replicas_.size(); }
  const SelectivityEstimator& shard(size_t i) const { return *replicas_[i]; }
  /// The merged estimator queries are answered from (rebuilds if stale).
  const SelectivityEstimator& MergedView() const { return Merged(); }

  /// Returns a fully merged copy of the current shard state — always up to
  /// date with the live replicas regardless of the pacing cadence — as an
  /// independent estimator of the prototype's concrete type. The caller owns
  /// the result, so it can be frozen and shared (the serving layer publishes
  /// these as immutable epoch views). Under kScratch this is a from-zero
  /// CloneEmpty + MergeFrom over every replica; under kIncremental it
  /// CloneForView-copies the engine's merged view (copy-on-write arena
  /// share — fitted state is never mutated by later refreshes, which build
  /// new buffers) and folds each replica's tail above the high-water mark
  /// into the clone. Neither path touches the engine's own view or pacing
  /// budget, so extraction never changes what subsequent engine queries
  /// answer. Answers are bit-identical either way.
  std::unique_ptr<SelectivityEstimator> ExtractMergedView() const;

  bool supports_fast_snapshot() const override { return true; }

 protected:
  double EstimateRangeImpl(double a, double b) const override;

  /// Answers the whole mixed-kind batch from the merged view — one merge,
  /// then the merged estimator's own batched query path, fanned out across
  /// the pool in deterministic contiguous chunks for large batches. Queries
  /// are answered by the MERGED state, never by combining per-shard answers:
  /// mass kinds would combine, but quantiles of per-shard sub-streams do not
  /// compose into the global quantile. The first query is answered alone to
  /// warm the merged view's lazily fitted caches (refit/rebuild/prefix
  /// tables), so the parallel chunks only read; this leans on the AnswerImpl
  /// contract that the first dispatched query of a batch refreshes ALL lazy
  /// state regardless of kind (see selectivity_estimator.hpp). Answers are
  /// independent per query, so chunking is bit-identical to one serial pass.
  void AnswerImpl(std::span<const Query> queries,
                  std::span<double> out) const override;

  /// Nested envelopes: partition metadata, then prototype, replicas and the
  /// optional merged view through the registry's envelope framing.
  Status SaveStateImpl(io::Sink& sink) const override;
  Status LoadStateImpl(io::Source& source) override;
  /// Fast state: partition metadata and the (config-only) prototype envelope
  /// in the head; each replica — and the merged view when present — rides as
  /// one U8 column holding that estimator's own fast envelope, so the per-
  /// shard columns restore through the same zero-copy path as a standalone
  /// snapshot.
  Status SaveFastStateImpl(memory::FastStateWriter& writer) const override;
  Status LoadFastStateImpl(memory::FastStateReader& reader) override;

  /// Quiesce: refresh the merged view to the live replica state (resetting
  /// the pacing budget) and force-refit it, so subsequent queries are pure
  /// reads of an up-to-date view.
  void ForceRefitImpl() const override;

 private:
  ShardedSelectivityEstimator(const Options& options,
                              std::unique_ptr<SelectivityEstimator> prototype,
                              std::vector<std::unique_ptr<SelectivityEstimator>> replicas)
      : options_(options),
        prototype_(std::move(prototype)),
        replicas_(std::move(replicas)) {}

  parallel::ThreadPool& pool() const {
    return options_.pool != nullptr ? *options_.pool
                                    : parallel::ThreadPool::Shared();
  }
  SelectivityEstimator& Merged() const;
  std::unique_ptr<SelectivityEstimator> BuildMerged() const;
  /// Brings merged_ up to date with the live replicas: per-replica
  /// MergeTailFrom above the high-water marks + one forced refit on the
  /// incremental path, from-zero BuildMerged otherwise (kScratch, no prior
  /// view, stale/absent marks, or an inner type without tail merges). Does
  /// NOT touch pending_since_merge_ — callers own the pacing budget.
  void RefreshMerged() const;

  Options options_;
  std::unique_ptr<SelectivityEstimator> prototype_;  // empty; config keeper
  std::vector<std::unique_ptr<SelectivityEstimator>> replicas_;
  size_t position_ = 0;  // stream positions offered so far
  mutable std::unique_ptr<SelectivityEstimator> merged_;
  mutable size_t pending_since_merge_ = 0;  // values since merged_ was built
  /// Per-replica counts already folded into merged_ (kIncremental only).
  /// Not serialized: the loads reconstruct it — a merged view only survives
  /// a restore when pending == 0, i.e. when it holds exactly the replica
  /// counts — and MergeFrom clears it along with the view.
  mutable std::vector<size_t> merged_hw_;
};

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_SHARDED_SELECTIVITY_HPP_
