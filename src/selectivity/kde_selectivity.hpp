#ifndef WDE_SELECTIVITY_KDE_SELECTIVITY_HPP_
#define WDE_SELECTIVITY_KDE_SELECTIVITY_HPP_

#include <optional>
#include <vector>

#include "kernel/kde.hpp"
#include "selectivity/selectivity_estimator.hpp"

namespace wde {
namespace selectivity {

/// Kernel-density selectivity baseline: buffers the stream (unlike the
/// wavelet sketch it is NOT bounded-memory), rebuilds an Epanechnikov KDE
/// with the rule-of-thumb bandwidth when stale, and answers every range as a
/// difference of windowed kernel antiderivatives
/// (KernelDensityEstimator::CdfAt — O(log n + window) per endpoint instead
/// of the former O(n) per-sample IntegrateRange sum; one-sided/CDF kinds use
/// a single endpoint, bit-identical to the (-inf, x] lowering).
///
/// With `Options::eval_tolerance > 0` the endpoints run tree-pruned under
/// the kd-tree's certified bound (kde_tree.hpp), so a range answer deviates
/// from the exact kernel CDF difference by at most 2·eval_tolerance (one
/// bound per endpoint) before clamping. Tolerance 0 — the default, and what
/// every equivalence suite pins — is bit-identical to the exact path.
///
/// Mergeable: the sample buffers concatenate in merge order and the KDE
/// refits from the merged buffer. Answers depend only on the *sorted
/// multiset* of buffered values — the rule-of-thumb bandwidth is derived
/// from sorted order statistics (RuleOfThumbBandwidthSorted) — so merges in
/// any order, including the sharded wrapper's round-robin partition, answer
/// bit-identically to sequential ingest of the same multiset (the only
/// possible buffer difference is the placement of ±0.0 among equal keys,
/// which every downstream expression treats identically).
///
/// Refits honor Options::refit_mode. kScratch re-sorts the whole buffer per
/// refit; kIncremental (the default) reuses the previously fitted KDE's
/// sorted sample buffer as a sorted prefix, sorts only the new tail and does
/// one stable in-place merge — O(Δ log Δ + n) instead of O(n log n) — into a
/// freshly allocated buffer (fitted buffers are shared copy-on-write with
/// CloneForView copies and snapshot arenas, so a refit never mutates them).
/// Both modes derive the bandwidth from the same sorted sequence, so their
/// answers are bitwise-identical (refit_equivalence_test).
class KdeSelectivity : public SelectivityEstimator {
 public:
  struct Options {
    double domain_lo = 0.0;
    double domain_hi = 1.0;
    size_t refit_interval = 1024;
    /// Certified absolute error budget per CDF endpoint for tree-pruned
    /// evaluation; 0 (default) answers exactly. Like refit_interval this is
    /// an evaluation knob, not part of the merge-compatibility key.
    double eval_tolerance = 0.0;
    /// How refits rebuild the sorted sample buffer (see the class comment).
    /// A pacing knob like refit_interval: not serialized, not part of the
    /// merge-compatibility key; snapshot restore preserves the live mode.
    RefitMode refit_mode = RefitMode::kIncremental;
  };

  explicit KdeSelectivity(const Options& options) : options_(options) {}

  void Insert(double x) override;

  /// Batched append: one reservation for the clean subset; identical buffer
  /// contents to the scalar loop.
  void InsertBatch(std::span<const double> xs) override;

  size_t count() const override { return values_.size(); }
  std::string name() const override { return "kde-rot"; }

  /// The KDE's natural resolution is its bandwidth, but the bandwidth moves
  /// with refits; the declared equality width is the static domain fraction
  /// 1/1024 so point-query answers do not change meaning across refits.
  double EqualityWidth() const override {
    return (options_.domain_hi - options_.domain_lo) / 1024.0;
  }
  RangeQuery Domain() const override {
    return RangeQuery{options_.domain_lo, options_.domain_hi};
  }

  std::unique_ptr<SelectivityEstimator> CloneEmpty() const override;
  /// Appends `other`'s buffered values and invalidates the fitted KDE;
  /// requires identical options.
  Status MergeFrom(const SelectivityEstimator& other) override;
  /// Tail-merge support for the sharded incremental merged-view refresh:
  /// appends only other's values from `from_count` onward and leaves the
  /// fitted KDE intact (stale) for the next refit to delta-merge.
  bool SupportsTailMerge() const override { return true; }
  Status MergeTailFrom(const SelectivityEstimator& other,
                       size_t from_count) override;
  WDE_SELECTIVITY_MERGE_TAG()
  const char* snapshot_type_tag() const override { return "kde-rot"; }

  bool supports_fast_snapshot() const override { return true; }

  /// The copy shares the fitted KDE's sorted sample arena copy-on-write
  /// (and its lazily built kd-tree, which copies share by design).
  std::unique_ptr<SelectivityEstimator> CloneForView() const override {
    return std::make_unique<KdeSelectivity>(*this);
  }

 protected:
  /// clamp(F̂(b) − F̂(a)) from the windowed (or tree-pruned, when
  /// eval_tolerance > 0) kernel CDF; a (-inf, x] range (the Less/Cdf
  /// lowering) is a single endpoint.
  double EstimateRangeImpl(double a, double b) const override;
  Status SaveStateImpl(io::Sink& sink) const override;
  Status LoadStateImpl(io::Source& source) override;
  /// Fast state persists the fitted KDE's *sorted* sample buffer and
  /// bandwidth alongside the raw values, so restore adopts it via
  /// KernelDensityEstimator::FromSorted — no re-sort, no bandwidth
  /// re-derivation, and from an mmapped snapshot the sorted buffer is
  /// borrowed zero-copy.
  Status SaveFastStateImpl(memory::FastStateWriter& writer) const override;
  Status LoadFastStateImpl(memory::FastStateReader& reader) override;

  /// Batched queries: one staleness check/refit, then kernel-CDF integrals
  /// (windowed for one-sided kinds) straight off the fitted KDE; quantiles
  /// through the shared bisection. Bit-identical to the scalar loop.
  void AnswerImpl(std::span<const Query> queries,
                  std::span<double> out) const override;

  /// Refits whenever any unfitted tail exists (not just past the interval),
  /// so a quiesced estimator is fitted at its full count — exactly the state
  /// a fresh rebuild reaches on its first query.
  void ForceRefitImpl() const override;

 private:
  void RefitIfStale() const;
  /// Unconditional refit at the current count, honoring refit_mode.
  void Refit() const;
  /// Fitted kernel CDF at x, honoring eval_tolerance. Requires kde_.
  double FittedCdf(double x) const;

  Options options_;
  std::vector<double> values_;
  mutable std::optional<kernel::KernelDensityEstimator> kde_;
  mutable size_t fitted_at_count_ = 0;
};

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_KDE_SELECTIVITY_HPP_
