#ifndef WDE_SELECTIVITY_WAVELET_SYNOPSIS_HPP_
#define WDE_SELECTIVITY_WAVELET_SYNOPSIS_HPP_

#include <vector>

#include "selectivity/selectivity_estimator.hpp"
#include "util/result.hpp"
#include "wavelet/dwt.hpp"
#include "wavelet/filter.hpp"

namespace wde {
namespace selectivity {

/// The classic database "wavelet synopsis" (Matias–Vitter–Wang, SIGMOD'98):
/// take the Haar DWT of the equi-width frequency vector and keep only the
/// `budget` largest-magnitude coefficients. This is the standard DB
/// compression baseline the paper's estimator should be compared against:
/// the synopsis thresholds by a fixed *count* (space budget), whereas the
/// adaptive estimator thresholds by cross-validated per-level *levels*
/// (statistical risk). Tests and the selectivity benches put them side by
/// side.
///
/// Maintains the count grid incrementally; the compressed transform is
/// rebuilt lazily when stale.
///
/// Mergeable: the frequency grid is exact integer cell counts, so merging
/// replicas over disjoint sub-streams is bit-identical to one synopsis over
/// the concatenated stream (the top-B compression reruns on the merged grid).
class WaveletSynopsisSelectivity : public SelectivityEstimator {
 public:
  struct Options {
    double domain_lo = 0.0;
    double domain_hi = 1.0;
    int grid_log2 = 10;      // 2^10 base cells
    size_t budget = 64;      // coefficients retained
    size_t rebuild_interval = 1024;
  };

  static Result<WaveletSynopsisSelectivity> Create(const Options& options);

  void Insert(double x) override;
  size_t count() const override { return count_; }
  std::string name() const override;

  /// One grid cell: the synopsis resolves nothing narrower than its base
  /// frequency grid.
  double EqualityWidth() const override {
    return (options_.domain_hi - options_.domain_lo) /
           static_cast<double>(counts_.size());
  }
  RangeQuery Domain() const override {
    return RangeQuery{options_.domain_lo, options_.domain_hi};
  }

  std::unique_ptr<SelectivityEstimator> CloneEmpty() const override;
  /// Adds `other`'s cell counts element-wise and invalidates the compressed
  /// transform; requires identical options.
  Status MergeFrom(const SelectivityEstimator& other) override;
  WDE_SELECTIVITY_MERGE_TAG()
  const char* snapshot_type_tag() const override { return "haar-synopsis"; }

  /// Number of non-zero retained coefficients after the last rebuild.
  size_t RetainedCoefficients() const;

  bool supports_fast_snapshot() const override { return true; }

  std::unique_ptr<SelectivityEstimator> CloneForView() const override {
    return std::unique_ptr<SelectivityEstimator>(
        new WaveletSynopsisSelectivity(*this));
  }

 protected:
  double EstimateRangeImpl(double a, double b) const override;
  /// Persists the integer count grid bit-exactly plus, when present, the
  /// compressed reconstruction cache (it cannot be re-derived once the grid
  /// has moved on), so a mid-rebuild-interval save restores to the same —
  /// possibly stale — answers the saved synopsis was serving.
  Status SaveStateImpl(io::Sink& sink) const override;
  Status LoadStateImpl(io::Source& source) override;
  /// Fast state: grid and reconstruction cache as bulk F64 columns (the
  /// cache rides along just as in the portable format — it cannot be
  /// re-derived once the grid has moved on).
  Status SaveFastStateImpl(memory::FastStateWriter& writer) const override;
  Status LoadFastStateImpl(memory::FastStateReader& reader) override;
  /// Quiesce: rebuild the compressed transform at the current count (the
  /// interval gate of RebuildIfStale does not apply to a forced refit).
  void ForceRefitImpl() const override {
    if (!reconstructed_.empty() && built_at_count_ == count_) return;
    reconstructed_.clear();  // defeat the interval gate; rebuild runs now
    RebuildIfStale();
  }

 private:
  explicit WaveletSynopsisSelectivity(const Options& options);

  void RebuildIfStale() const;

  Options options_;
  wavelet::WaveletFilter haar_;
  std::vector<double> counts_;
  size_t count_ = 0;
  mutable std::vector<double> reconstructed_;  // smoothed counts after top-B
  mutable size_t built_at_count_ = 0;
  mutable size_t retained_ = 0;
};

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_WAVELET_SYNOPSIS_HPP_
