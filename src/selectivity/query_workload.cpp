#include "selectivity/query_workload.hpp"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <utility>

#include "util/check.hpp"

namespace wde {
namespace selectivity {

std::vector<RangeQuery> UniformRangeWorkload(stats::Rng& rng, size_t count,
                                             double domain_lo, double domain_hi) {
  WDE_CHECK_LT(domain_lo, domain_hi);
  std::vector<RangeQuery> out(count);
  for (RangeQuery& q : out) {
    double a = rng.Uniform(domain_lo, domain_hi);
    double b = rng.Uniform(domain_lo, domain_hi);
    if (b < a) std::swap(a, b);
    q = {a, b};
  }
  return out;
}

std::vector<RangeQuery> CenteredRangeWorkload(stats::Rng& rng, size_t count,
                                              double domain_lo, double domain_hi,
                                              double min_width, double max_width) {
  WDE_CHECK_LT(domain_lo, domain_hi);
  WDE_CHECK(min_width > 0.0 && max_width >= min_width);
  std::vector<RangeQuery> out(count);
  for (RangeQuery& q : out) {
    const double width = rng.Uniform(min_width, max_width);
    const double center = rng.Uniform(domain_lo, domain_hi);
    q.lo = std::max(domain_lo, center - width / 2.0);
    q.hi = std::min(domain_hi, center + width / 2.0);
  }
  return out;
}

std::vector<Query> MixedQueryWorkload(stats::Rng& rng, size_t count,
                                      double domain_lo, double domain_hi,
                                      const QueryKindMix& mix) {
  WDE_CHECK_LT(domain_lo, domain_hi);
  const double weights[] = {mix.range,    mix.point, mix.less,
                            mix.greater,  mix.cdf,   mix.quantile,
                            mix.rect,     mix.marginal,
                            mix.conditional};
  double total = 0.0;
  for (double w : weights) {
    WDE_CHECK(w >= 0.0, "kind weights must be nonnegative");
    total += w;
  }
  WDE_CHECK(total > 0.0, "at least one kind weight must be positive");
  std::vector<Query> out(count);
  for (Query& q : out) {
    double draw = rng.UniformDouble() * total;
    size_t kind = 0;
    while (kind + 1 < std::size(weights) && draw >= weights[kind]) {
      draw -= weights[kind];
      ++kind;
    }
    switch (static_cast<QueryKind>(kind)) {
      case QueryKind::kRange: {
        double a = rng.Uniform(domain_lo, domain_hi);
        double b = rng.Uniform(domain_lo, domain_hi);
        if (b < a) std::swap(a, b);
        q = Query::Range(a, b);
        break;
      }
      case QueryKind::kPoint:
        q = Query::Point(rng.Uniform(domain_lo, domain_hi));
        break;
      case QueryKind::kLess:
        q = Query::Less(rng.Uniform(domain_lo, domain_hi));
        break;
      case QueryKind::kGreater:
        q = Query::Greater(rng.Uniform(domain_lo, domain_hi));
        break;
      case QueryKind::kCdf:
        q = Query::Cdf(rng.Uniform(domain_lo, domain_hi));
        break;
      case QueryKind::kQuantile:
        q = Query::Quantile(rng.UniformDouble());
        break;
      case QueryKind::kRect: {
        double a = rng.Uniform(domain_lo, domain_hi);
        double b = rng.Uniform(domain_lo, domain_hi);
        if (b < a) std::swap(a, b);
        double c = rng.Uniform(domain_lo, domain_hi);
        double d = rng.Uniform(domain_lo, domain_hi);
        if (d < c) std::swap(c, d);
        q = Query::Rect(a, b, c, d);
        break;
      }
      case QueryKind::kMarginal: {
        const uint8_t axis = rng.UniformDouble() < 0.5 ? 0 : 1;
        double a = rng.Uniform(domain_lo, domain_hi);
        double b = rng.Uniform(domain_lo, domain_hi);
        if (b < a) std::swap(a, b);
        q = Query::Marginal(axis, a, b);
        break;
      }
      case QueryKind::kConditional: {
        double a = rng.Uniform(domain_lo, domain_hi);
        double b = rng.Uniform(domain_lo, domain_hi);
        if (b < a) std::swap(a, b);
        double c = rng.Uniform(domain_lo, domain_hi);
        double d = rng.Uniform(domain_lo, domain_hi);
        if (d < c) std::swap(c, d);
        q = Query::Conditional(a, b, c, d);
        break;
      }
    }
  }
  return out;
}

SelectivityAccuracy EvaluateAccuracy(
    const SelectivityEstimator& estimator, std::span<const RangeQuery> queries,
    const std::function<double(const RangeQuery&)>& truth, double qerror_floor) {
  SelectivityAccuracy acc;
  acc.queries = queries.size();
  if (queries.empty()) return acc;
  std::vector<double> estimates(queries.size());
  estimator.EstimateBatch(queries, estimates);
  double sq_sum = 0.0;
  for (size_t i = 0; i < queries.size(); ++i) {
    const RangeQuery& q = queries[i];
    const double est = estimates[i];
    const double ref = truth(q);
    const double abs_err = std::fabs(est - ref);
    acc.mean_abs_error += abs_err;
    sq_sum += abs_err * abs_err;
    const double lo = std::max(std::min(est, ref), qerror_floor);
    const double hi = std::max(std::max(est, ref), qerror_floor);
    const double qerr = hi / lo;
    acc.mean_qerror += qerr;
    acc.max_qerror = std::max(acc.max_qerror, qerr);
  }
  const double n = static_cast<double>(queries.size());
  acc.mean_abs_error /= n;
  acc.rmse = std::sqrt(sq_sum / n);
  acc.mean_qerror /= n;
  return acc;
}

}  // namespace selectivity
}  // namespace wde
