#include "selectivity/kde_selectivity.hpp"

#include <algorithm>
#include <cmath>

#include "kernel/bandwidth.hpp"

namespace wde {
namespace selectivity {

void KdeSelectivity::Insert(double x) {
  if (!std::isfinite(x)) return;
  values_.push_back(std::clamp(x, options_.domain_lo, options_.domain_hi));
}

void KdeSelectivity::InsertBatch(std::span<const double> xs) {
  // No exact-fit reserve: amortized vector growth beats a
  // reallocate-per-chunk pattern under repeated batch ingestion.
  for (double x : xs) {
    if (!std::isfinite(x)) continue;
    values_.push_back(std::clamp(x, options_.domain_lo, options_.domain_hi));
  }
}

void KdeSelectivity::RefitIfStale() const {
  if (values_.size() < 4) return;
  if (kde_.has_value() && values_.size() - fitted_at_count_ < options_.refit_interval) {
    return;
  }
  const double bandwidth = kernel::RuleOfThumbBandwidth(values_);
  Result<kernel::KernelDensityEstimator> kde = kernel::KernelDensityEstimator::Create(
      kernel::Kernel(kernel::KernelType::kEpanechnikov), bandwidth, values_);
  if (kde.ok()) {
    kde_ = std::move(kde).value();
    fitted_at_count_ = values_.size();
  }
}

double KdeSelectivity::EstimateRange(double a, double b) const {
  RefitIfStale();
  if (!kde_.has_value()) {
    // Tiny-sample fallback: exact fraction of buffered values.
    if (values_.empty()) return 0.0;
    if (b < a) std::swap(a, b);
    size_t hits = 0;
    for (double x : values_) {
      if (x >= a && x <= b) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(values_.size());
  }
  return std::clamp(kde_->IntegrateRange(a, b), 0.0, 1.0);
}

void KdeSelectivity::EstimateBatch(std::span<const RangeQuery> queries,
                                   std::span<double> out) const {
  WDE_CHECK_EQ(queries.size(), out.size(), "EstimateBatch spans must match");
  if (queries.empty()) return;  // scalar loop would not touch the fit at all
  RefitIfStale();  // no inserts between queries: staleness is checked once
  if (!kde_.has_value()) {
    // Tiny-sample fallback, matching the scalar path per query.
    for (size_t i = 0; i < queries.size(); ++i) {
      out[i] = EstimateRange(queries[i].lo, queries[i].hi);
    }
    return;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    double a = queries[i].lo;
    double b = queries[i].hi;
    out[i] = std::clamp(kde_->IntegrateRange(a, b), 0.0, 1.0);
  }
}

}  // namespace selectivity
}  // namespace wde
