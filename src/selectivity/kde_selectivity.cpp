#include "selectivity/kde_selectivity.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "kernel/bandwidth.hpp"
#include "memory/fast_state.hpp"

namespace wde {
namespace selectivity {

void KdeSelectivity::Insert(double x) {
  if (!std::isfinite(x)) return;
  values_.push_back(std::clamp(x, options_.domain_lo, options_.domain_hi));
}

void KdeSelectivity::InsertBatch(std::span<const double> xs) {
  if (xs.empty()) return;
  // No exact-fit reserve: amortized vector growth beats a
  // reallocate-per-chunk pattern under repeated batch ingestion.
  for (double x : xs) {
    if (!std::isfinite(x)) continue;
    values_.push_back(std::clamp(x, options_.domain_lo, options_.domain_hi));
  }
}

void KdeSelectivity::RefitIfStale() const {
  if (values_.size() < 4) return;
  if (kde_.has_value() && values_.size() - fitted_at_count_ < options_.refit_interval) {
    return;
  }
  Refit();
}

void KdeSelectivity::ForceRefitImpl() const {
  if (values_.size() < 4) return;
  if (kde_.has_value() && fitted_at_count_ == values_.size()) return;
  Refit();
}

void KdeSelectivity::Refit() const {
  // Every refit builds a NEW owned buffer: the previous fitted buffer may be
  // shared with CloneForView copies (published serving views) or borrowed
  // zero-copy from a snapshot arena, so it must never be mutated in place.
  auto buffer = std::make_shared<std::vector<double>>();
  buffer->reserve(values_.size());
  const bool incremental = options_.refit_mode == RefitMode::kIncremental &&
                           kde_.has_value() &&
                           kde_->samples().size() == fitted_at_count_ &&
                           fitted_at_count_ <= values_.size();
  if (incremental) {
    // The previous fitted buffer is the sorted permutation of
    // values_[0..fitted_at_count_) (the buffer only ever appends): copy it,
    // append the unfitted tail, sort only the tail, one stable merge.
    // O(Δ log Δ + n) instead of O(n log n), identical sorted sequence.
    const std::span<const double> prev = kde_->samples();
    buffer->assign(prev.begin(), prev.end());
    buffer->insert(buffer->end(), values_.begin() + prev.size(), values_.end());
    const auto mid = buffer->begin() + static_cast<ptrdiff_t>(prev.size());
    std::sort(mid, buffer->end());
    std::inplace_merge(buffer->begin(), mid, buffer->end());
  } else {
    buffer->assign(values_.begin(), values_.end());
    std::sort(buffer->begin(), buffer->end());
  }
  // Bandwidth from sorted order statistics: O(1) quartiles off the buffer
  // both modes just built, and bitwise-reproducible from the sorted multiset
  // alone (insertion order never enters).
  const double bandwidth = kernel::RuleOfThumbBandwidthSorted(*buffer);
  Result<kernel::KernelDensityEstimator> kde =
      kernel::KernelDensityEstimator::FromSorted(
          kernel::Kernel(kernel::KernelType::kEpanechnikov), bandwidth,
          std::span<const double>(buffer->data(), buffer->size()), buffer);
  if (kde.ok()) {
    kde_ = std::move(kde).value();
    fitted_at_count_ = values_.size();
  }
}

double KdeSelectivity::FittedCdf(double x) const {
  return options_.eval_tolerance > 0.0
             ? kde_->CdfAt(x, options_.eval_tolerance)
             : kde_->CdfAt(x);
}

double KdeSelectivity::EstimateRangeImpl(double a, double b) const {
  RefitIfStale();
  if (!kde_.has_value()) {
    // Tiny-sample fallback: exact fraction of buffered values.
    if (values_.empty()) return 0.0;
    size_t hits = 0;
    for (double x : values_) {
      if (x >= a && x <= b) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(values_.size());
  }
  if (a == -std::numeric_limits<double>::infinity()) {
    // The Less/Cdf lowering: the windowed kernel antiderivative is
    // bit-identical to IntegrateRange(-inf, b) (see CdfAt) and touches only
    // the samples inside the kernel support around b.
    return std::clamp(FittedCdf(b), 0.0, 1.0);
  }
  // CDF difference instead of the per-sample IntegrateRange sum: each
  // endpoint touches only its kernel window (O(log n + window) vs O(n));
  // the difference-of-sums vs sum-of-differences reassociation moves the
  // result by at most n·ulp, well inside every accuracy contract, and the
  // batch path below uses the identical expression.
  return std::clamp(FittedCdf(b) - FittedCdf(a), 0.0, 1.0);
}

std::unique_ptr<SelectivityEstimator> KdeSelectivity::CloneEmpty() const {
  return std::make_unique<KdeSelectivity>(options_);
}

Status KdeSelectivity::MergeFrom(const SelectivityEstimator& other) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const KdeSelectivity&>(other);
  // refit_interval paces only the owner's staleness and is deliberately not
  // checked (same rationale as the wavelet sketch's MergeFrom).
  if (options_.domain_lo != rhs.options_.domain_lo ||
      options_.domain_hi != rhs.options_.domain_hi) {
    return Status::FailedPrecondition("MergeFrom: kde options mismatch");
  }
  values_.insert(values_.end(), rhs.values_.begin(), rhs.values_.end());
  kde_.reset();  // refit from the merged buffer at the next query
  fitted_at_count_ = 0;
  return Status::OK();
}

Status KdeSelectivity::MergeTailFrom(const SelectivityEstimator& other,
                                     size_t from_count) {
  Status peer = CheckMergePeer(other);
  if (!peer.ok()) return peer;
  const auto& rhs = static_cast<const KdeSelectivity&>(other);
  if (options_.domain_lo != rhs.options_.domain_lo ||
      options_.domain_hi != rhs.options_.domain_hi) {
    return Status::FailedPrecondition("MergeTailFrom: kde options mismatch");
  }
  if (from_count > rhs.values_.size()) {
    return Status::InvalidArgument("MergeTailFrom: from_count past peer count");
  }
  // Append only the peer's tail; the fitted KDE stays (stale) so the next
  // refit delta-merges instead of rebuilding.
  values_.insert(values_.end(), rhs.values_.begin() + static_cast<ptrdiff_t>(from_count),
                 rhs.values_.end());
  return Status::OK();
}

Status KdeSelectivity::SaveStateImpl(io::Sink& sink) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, options_.domain_lo));
  WDE_RETURN_IF_ERROR(io::WriteDouble(sink, options_.domain_hi));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, options_.refit_interval));
  WDE_RETURN_IF_ERROR(io::WriteU64(sink, fitted_at_count_));
  WDE_RETURN_IF_ERROR(io::WriteDoubleVector(sink, values_));
  // Format v2 tail (the kd-tree itself is never persisted — it rebuilds
  // lazily from the restored buffer); v1 payloads simply end at the vector
  // and load with the tolerance defaulted to exact.
  return io::WriteDouble(sink, options_.eval_tolerance);
}

Status KdeSelectivity::LoadStateImpl(io::Source& source) {
  Options options;
  WDE_ASSIGN_OR_RETURN(options.domain_lo, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(options.domain_hi, io::ReadDouble(source));
  WDE_ASSIGN_OR_RETURN(options.refit_interval, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(const uint64_t fitted_at_count, io::ReadU64(source));
  WDE_ASSIGN_OR_RETURN(std::vector<double> values, io::ReadDoubleVector(source));
  if (source.remaining() != 0) {  // v2 tail; absent in v1 payloads
    WDE_ASSIGN_OR_RETURN(options.eval_tolerance, io::ReadDouble(source));
  }
  if (!std::isfinite(options.domain_lo) || !std::isfinite(options.domain_hi) ||
      !(options.domain_lo < options.domain_hi) || options.refit_interval == 0 ||
      !std::isfinite(options.eval_tolerance) || options.eval_tolerance < 0.0 ||
      fitted_at_count > values.size() || source.remaining() != 0) {
    return Status::InvalidArgument("corrupt kde snapshot");
  }
  options.refit_mode = options_.refit_mode;  // pacing knob, never serialized
  options_ = options;
  values_ = std::move(values);
  kde_.reset();
  fitted_at_count_ = 0;
  // Refit from the prefix the saved estimator had fitted on (the buffer only
  // ever appends), reproducing its cached KDE — bandwidth and all — exactly:
  // sort the prefix and run the same sorted-order-statistics recipe the live
  // refit uses, so even the degenerate StdDev fallback sums in the same
  // (sorted) order and the restored bandwidth is bit-exact.
  if (fitted_at_count >= 4) {
    auto buffer = std::make_shared<std::vector<double>>(
        values_.begin(), values_.begin() + static_cast<ptrdiff_t>(fitted_at_count));
    std::sort(buffer->begin(), buffer->end());
    const double bandwidth = kernel::RuleOfThumbBandwidthSorted(*buffer);
    Result<kernel::KernelDensityEstimator> kde =
        kernel::KernelDensityEstimator::FromSorted(
            kernel::Kernel(kernel::KernelType::kEpanechnikov), bandwidth,
            std::span<const double>(buffer->data(), buffer->size()), buffer);
    if (kde.ok()) {
      kde_ = std::move(kde).value();
      fitted_at_count_ = static_cast<size_t>(fitted_at_count);
    }
  }
  return Status::OK();
}

Status KdeSelectivity::SaveFastStateImpl(memory::FastStateWriter& writer) const {
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.domain_lo));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.domain_hi));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), options_.refit_interval));
  WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), options_.eval_tolerance));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), fitted_at_count_));
  WDE_RETURN_IF_ERROR(io::WriteU64(writer.head(), values_.size()));
  const bool has_kde = kde_.has_value();
  WDE_RETURN_IF_ERROR(io::WriteU8(writer.head(), has_kde ? 1 : 0));
  writer.AddF64(values_);
  if (has_kde) {
    // The already-sorted fitted buffer plus its bandwidth: restore adopts
    // both verbatim instead of re-sorting and re-deriving.
    WDE_RETURN_IF_ERROR(io::WriteDouble(writer.head(), kde_->bandwidth()));
    writer.AddF64(kde_->samples());
  }
  return Status::OK();
}

Status KdeSelectivity::LoadFastStateImpl(memory::FastStateReader& reader) {
  Options options;
  WDE_ASSIGN_OR_RETURN(options.domain_lo, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.domain_hi, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.refit_interval, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(options.eval_tolerance, io::ReadDouble(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t fitted_at, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint64_t n_values, io::ReadU64(reader.head()));
  WDE_ASSIGN_OR_RETURN(const uint8_t has_kde, io::ReadU8(reader.head()));
  double bandwidth = 0.0;
  if (has_kde == 1) {
    WDE_ASSIGN_OR_RETURN(bandwidth, io::ReadDouble(reader.head()));
  }
  std::vector<memory::ColumnSpec> expected = {
      {memory::ColumnKind::kF64, static_cast<size_t>(n_values)}};
  if (has_kde == 1) {
    expected.push_back({memory::ColumnKind::kF64, static_cast<size_t>(fitted_at)});
  }
  if (!std::isfinite(options.domain_lo) || !std::isfinite(options.domain_hi) ||
      !(options.domain_lo < options.domain_hi) || options.refit_interval == 0 ||
      !std::isfinite(options.eval_tolerance) || options.eval_tolerance < 0.0 ||
      has_kde > 1 || fitted_at > n_values ||
      (has_kde == 1 && !(std::isfinite(bandwidth) && bandwidth > 0.0)) ||
      reader.head().remaining() != 0 ||
      !memory::ColumnsMatch(reader.arena(), expected)) {
    return Status::InvalidArgument("corrupt kde fast state");
  }
  std::optional<kernel::KernelDensityEstimator> kde;
  if (has_kde == 1) {
    // FromSorted verifies ascending order in O(n) — the only scan the fast
    // restore pays — and borrows the column zero-copy; the arena's storage
    // keepalive anchors the bytes whether they live in an mmapped image or
    // in the reader's own heap copy.
    WDE_ASSIGN_OR_RETURN(
        kde, kernel::KernelDensityEstimator::FromSorted(
                 kernel::Kernel(kernel::KernelType::kEpanechnikov), bandwidth,
                 reader.arena().F64(1), reader.arena().storage_keepalive()));
  }
  const std::span<const double> values = reader.arena().F64(0);
  options.refit_mode = options_.refit_mode;  // pacing knob, never serialized
  options_ = options;
  values_.assign(values.begin(), values.end());
  kde_ = std::move(kde);
  fitted_at_count_ = kde_.has_value() ? static_cast<size_t>(fitted_at) : 0;
  return Status::OK();
}

void KdeSelectivity::AnswerImpl(std::span<const Query> queries,
                               std::span<double> out) const {
  // The public wrapper guarantees matched spans, a non-empty batch and
  // normalized queries.
  RefitIfStale();  // no inserts between queries: staleness is checked once
  if (!kde_.has_value()) {
    // Tiny-sample fallback, matching the scalar lowering per query.
    for (size_t i = 0; i < queries.size(); ++i) out[i] = AnswerOne(queries[i]);
    return;
  }
  for (size_t i = 0; i < queries.size(); ++i) {
    const Query& q = queries[i];
    switch (q.kind) {
      case QueryKind::kLess:
      case QueryKind::kCdf:
        out[i] = std::clamp(FittedCdf(q.a), 0.0, 1.0);
        break;
      case QueryKind::kQuantile:
        out[i] = QuantileByBisection(q.a);
        break;
      case QueryKind::kRect:
      case QueryKind::kMarginal:
      case QueryKind::kConditional:
        // No range lowering exists for these; the shared multi-dim dispatch
        // (0.0 / axis-0 marginal for this 1-D estimator) is the contract.
        out[i] = AnswerOne(q);
        break;
      default: {
        const RangeQuery r = LowerToRange(q);
        out[i] = std::clamp(FittedCdf(r.hi) - FittedCdf(r.lo), 0.0, 1.0);
        break;
      }
    }
  }
}

}  // namespace selectivity
}  // namespace wde
