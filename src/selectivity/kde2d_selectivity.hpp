#ifndef WDE_SELECTIVITY_KDE2D_SELECTIVITY_HPP_
#define WDE_SELECTIVITY_KDE2D_SELECTIVITY_HPP_

#include <optional>
#include <span>
#include <vector>

#include "kernel/kernels.hpp"
#include "memory/arena.hpp"
#include "selectivity/selectivity_estimator.hpp"

namespace wde {
namespace selectivity {

/// Product/adaptive 2-D KDE in the ProdAdaKde2d style: per-dimension
/// Epanechnikov bandwidths from the paper's rule of thumb (optionally
/// refined by least-squares CV on a deterministic subsample), sharpened per
/// point by Abramson-style adaptive factors λ_i from a binned pilot density
/// (multidim/prod_kde2d.hpp). Every rectangle answers as
///   (1/n) Σ_i [axis-0 kernel-CDF difference] · [axis-1 kernel-CDF difference]
/// over an x-window binary-searched out of the lex-sorted fitted sample —
/// bit-exact pruning thanks to the kernel's compact support — with the
/// per-axis CDF arguments running through the SIMD-annotated CdfMany batch
/// kernels. 1-D kinds lower onto the axis-0 marginal
/// EstimateRangeImpl(a, b) = EstimateRectImpl(a, b, -inf, +inf).
///
/// Ingest is interleaved (x0, y0, x1, y1, ...): the first coordinate of an
/// observation is buffered raw, the second completes it — the whole
/// observation is dropped if EITHER coordinate is non-finite (dropping one
/// value alone would shift the interleave parity), otherwise each
/// coordinate clamps to its axis domain. count() reports complete
/// observations.
///
/// Mergeable: the coordinate buffers concatenate and the KDE refits from
/// the merged buffers. Answers depend only on the *multiset* of
/// observations — the fitted state is a function of the lex-sorted
/// coordinate arrays — so merges in any order answer bit-identically to
/// sequential ingest of the same multiset. A peer's pending half-observation
/// is not data and does not travel.
///
/// Refits honor Options::refit_mode: kScratch re-sorts everything per
/// refit; kIncremental (the default) reuses the previous fitted arrays as a
/// lex-sorted prefix, sorts only the appended tail and merges —
/// O(Δ log Δ + n) instead of O(n log n), bitwise-identical answers
/// (refit_equivalence_test). Every refit builds a fresh arena: fitted
/// columns may be shared with CloneForView copies or borrowed from a
/// snapshot mapping, and are never mutated in place. The adaptive factors
/// and bandwidths are recomputed O(n) per refit in BOTH modes — they are
/// global functions of the sorted sample, not mergeable state; the
/// incremental win is the sort, not the fit.
class Kde2dSelectivity : public SelectivityEstimator {
 public:
  struct Options {
    double domain_lo0 = 0.0;
    double domain_hi0 = 1.0;
    double domain_lo1 = 0.0;
    double domain_hi1 = 1.0;
    size_t refit_interval = 1024;
    /// Adaptive-bandwidth sensitivity α ∈ [0, 1]: λ_i = (pilot_i/ḡ)^(−α)
    /// clamped to [1/4, 4]; 0 disables adaptivity (λ ≡ 1).
    double alpha = 0.5;
    /// Refine the per-dimension rule-of-thumb bandwidths with a
    /// least-squares CV pass over a deterministic subsample (≤ 512 points,
    /// evenly strided out of the sorted sample, result rescaled by
    /// (m/n)^{1/5}).
    bool cv_bandwidths = false;
    /// How refits rebuild the lex-sorted sample (see the class comment). A
    /// pacing knob like refit_interval: not serialized, not part of the
    /// merge-compatibility key; snapshot restore preserves the live mode.
    RefitMode refit_mode = RefitMode::kIncremental;
  };

  explicit Kde2dSelectivity(const Options& options);

  void Insert(double x) override;

  size_t count() const override { return xs_.size(); }
  std::string name() const override { return "kde2d-prod"; }

  /// Same convention as the 1-D KDE: the declared resolution is the static
  /// axis-0 domain fraction 1/1024, so point-query answers do not change
  /// meaning across refits.
  double EqualityWidth() const override {
    return (options_.domain_hi0 - options_.domain_lo0) / 1024.0;
  }
  RangeQuery Domain() const override {
    return RangeQuery{options_.domain_lo0, options_.domain_hi0};
  }
  int dims() const override { return 2; }

  std::unique_ptr<SelectivityEstimator> CloneEmpty() const override;
  /// Appends `other`'s observations and invalidates the fitted state;
  /// requires identical domains, α and CV setting (they shape answers, not
  /// just pacing). The peer's pending coordinate is ignored — see the class
  /// comment.
  Status MergeFrom(const SelectivityEstimator& other) override;
  /// Tail-merge support for the sharded incremental merged-view refresh:
  /// appends only other's observations from `from_count` onward and leaves
  /// the fitted state intact (stale) for the next refit to delta-merge.
  bool SupportsTailMerge() const override { return true; }
  Status MergeTailFrom(const SelectivityEstimator& other,
                       size_t from_count) override;
  WDE_SELECTIVITY_MERGE_TAG()
  const char* snapshot_type_tag() const override { return "kde2d-prod"; }

  bool supports_fast_snapshot() const override { return true; }

  /// The copy shares the fitted arena (sorted coordinates, adaptive
  /// factors) copy-on-write; refits never mutate shared columns.
  std::unique_ptr<SelectivityEstimator> CloneForView() const override {
    return std::make_unique<Kde2dSelectivity>(*this);
  }

 protected:
  /// The axis-0 marginal: EstimateRectImpl(a, b, -inf, +inf).
  double EstimateRangeImpl(double a, double b) const override;
  /// clamp((1/n) · product-kernel rectangle sum); exact-fraction fallback
  /// below the minimum fit sample (or under degenerate bandwidths).
  double EstimateRectImpl(double lo0, double hi0, double lo1,
                          double hi1) const override;
  Status SaveStateImpl(io::Sink& sink) const override;
  Status LoadStateImpl(io::Source& source) override;
  /// Fast state persists the raw coordinate buffers plus the fitted columns
  /// (lex-sorted sx/sy, the sorted axis-1 shadow ty, the adaptive λ_i) and
  /// both bandwidths, so restore adopts the fit verbatim — no re-sort, no
  /// CV re-run, zero-copy from an mmapped snapshot.
  Status SaveFastStateImpl(memory::FastStateWriter& writer) const override;
  Status LoadFastStateImpl(memory::FastStateReader& reader) override;

  /// Refits whenever any unfitted tail exists (not just past the interval),
  /// so a quiesced estimator is fitted at its full count.
  void ForceRefitImpl() const override;

 private:
  /// The fitted state: one arena of four parallel F64 columns starting at
  /// `col0` — sx/sy (lex-sorted coordinates), ty (the ascending-sorted
  /// axis-1 shadow the bandwidth rule reads), λ (adaptive factors) — plus
  /// the derived scalars. Never mutated after commit; copies share the
  /// arena copy-on-write.
  struct Fitted {
    memory::Arena arena;
    size_t col0 = 0;
    size_t n = 0;
    double hx = 0.0;
    double hy = 0.0;
    double lambda_max = 1.0;

    std::span<const double> sx() const { return arena.F64(col0 + 0); }
    std::span<const double> sy() const { return arena.F64(col0 + 1); }
    std::span<const double> ty() const { return arena.F64(col0 + 2); }
    std::span<const double> lambdas() const { return arena.F64(col0 + 3); }
  };

  void RefitIfStale() const;
  /// Unconditional refit at the current count, honoring refit_mode.
  void Refit() const;
  /// Builds the fitted state over the observation prefix [0, fit_n):
  /// lex-sort (delta-merged off `prev` when given), the sorted axis-1
  /// shadow, rule-of-thumb (+ optional CV) bandwidths, adaptive factors.
  /// Empty on degenerate bandwidths (all-equal coordinates) — callers then
  /// keep serving the previous fit or the exact-fraction fallback. A
  /// deterministic function of the observation prefix multiset, so snapshot
  /// restore reproduces the saved fit bit-exactly by re-running it.
  std::optional<Fitted> BuildFit(size_t fit_n, const Fitted* prev) const;

  Options options_;
  kernel::Kernel kernel_;
  std::vector<double> xs_;
  std::vector<double> ys_;
  bool have_pending_ = false;
  double pending_ = 0.0;  // raw first coordinate of a half-received observation
  mutable std::optional<Fitted> fitted_;
  mutable size_t fitted_at_count_ = 0;
};

}  // namespace selectivity
}  // namespace wde

#endif  // WDE_SELECTIVITY_KDE2D_SELECTIVITY_HPP_
